// Package client is the importable Go client for chronosd. It speaks every
// /v1 endpoint with typed requests and responses, decodes the unified error
// envelope into *client.Error, and — given the fleet's replica URLs — hashes
// plan keys locally on the same consistent-hash ring the servers use, so
// single-plan and admission requests go straight to the owning replica
// instead of paying a server-side forward hop.
//
// Client-side routing is a fast path, not a correctness requirement: the
// servers verify ownership on every request and forward at most one hop, so
// a stale fleet view or a tenant-routed request whose econ defaults the
// client cannot see merely costs that hop. Keyless endpoints (batch,
// simulate, replay) are spread round-robin across the fleet.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"

	"chronos"
	"chronos/internal/plankey"
	"chronos/internal/ring"
)

// Client talks to one chronosd replica or a fleet of them. Safe for
// concurrent use.
type Client struct {
	replicas []string
	ring     *ring.Ring // nil for a single replica (no client-side routing)
	http     *http.Client
	rr       atomic.Uint64
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles). The default is http.DefaultClient.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithVirtualNodes overrides the per-replica virtual-node count of the
// client-side ring. It must match the fleet's -ring-vnodes for client-side
// routing to agree with the servers; the default matches the server default.
func WithVirtualNodes(n int) Option {
	return func(c *Client) {
		if len(c.replicas) > 1 {
			c.ring = ring.New(c.replicas, n)
		}
	}
}

// New returns a client for a single chronosd instance at baseURL (e.g.
// "http://localhost:8080"). It panics if baseURL is empty or whitespace —
// a construction-time configuration bug; use NewFleet to handle the error
// instead.
func New(baseURL string, opts ...Option) *Client {
	c, err := NewFleet([]string{baseURL}, opts...)
	if err != nil {
		panic(fmt.Sprintf("client.New(%q): %v", baseURL, err))
	}
	return c
}

// NewFleet returns a client that routes across a sharded fleet: plan-keyed
// requests go to the ring owner of their key, everything else round-robins.
// The replica URLs must be the fleet's advertised base URLs (the servers'
// -self values), or ownership will not line up and every request pays a
// forward hop.
func NewFleet(replicas []string, opts ...Option) (*Client, error) {
	cleaned := make([]string, 0, len(replicas))
	for _, r := range replicas {
		r = strings.TrimRight(strings.TrimSpace(r), "/")
		if r != "" {
			cleaned = append(cleaned, r)
		}
	}
	if len(cleaned) == 0 {
		return nil, errors.New("client: at least one replica URL is required")
	}
	c := &Client{replicas: cleaned, http: http.DefaultClient}
	if len(cleaned) > 1 {
		c.ring = ring.New(cleaned, 0)
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Replicas returns the configured replica base URLs.
func (c *Client) Replicas() []string {
	out := make([]string, len(c.replicas))
	copy(out, c.replicas)
	return out
}

// Error is a non-2xx chronosd answer, decoded from the unified error
// envelope. TraceID joins the failure to the server's logs and
// /debug/traces.
type Error struct {
	Status  int    // HTTP status code
	Code    string // stable machine-readable class ("bad_request", ...)
	TraceID string
	Message string
}

func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("chronosd: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("chronosd: %s (HTTP %d)", e.Message, e.Status)
}

// CodeBudgetExhausted is the envelope code of a tenant-ledger rejection
// (HTTP 429); poll again after the pool refills.
const CodeBudgetExhausted = "budget_exhausted"

// --- wire types -----------------------------------------------------------

// PlanRequest asks for one job's optimal speculation plan.
type PlanRequest struct {
	Job      chronos.JobParams `json:"job"`
	Econ     chronos.Econ      `json:"econ"`
	Strategy string            `json:"strategy,omitempty"` // empty or "best" = best-of-three
	Tenant   string            `json:"tenant,omitempty"`
}

// PlanResponse is the /v1/plan answer.
type PlanResponse struct {
	Plan            chronos.Plan `json:"plan"`
	Cached          bool         `json:"cached"`
	BudgetRemaining *float64     `json:"budgetRemaining,omitempty"`
}

// BatchJob is one member of a shared-budget batch.
type BatchJob struct {
	Strategy string            `json:"strategy,omitempty"`
	Job      chronos.JobParams `json:"job"`
	RMin     float64           `json:"rmin,omitempty"`
}

// BatchRequest plans a job set under one shared machine-time budget.
type BatchRequest struct {
	Jobs   []BatchJob   `json:"jobs"`
	Budget float64      `json:"budget"`
	Econ   chronos.Econ `json:"econ,omitempty"`
	Tenant string       `json:"tenant,omitempty"`
}

// BatchPlan is one job's slice of a batch allocation.
type BatchPlan struct {
	Strategy    chronos.Strategy `json:"strategy"`
	R           int              `json:"r"`
	PoCD        float64          `json:"pocd"`
	MachineTime float64          `json:"machineTime"`
}

// BatchResponse is the /v1/plan/batch answer.
type BatchResponse struct {
	Plans            []BatchPlan `json:"plans"`
	TotalMachineTime float64     `json:"totalMachineTime"`
	Budget           float64     `json:"budget"`
	BudgetRemaining  *float64    `json:"budgetRemaining,omitempty"`
}

// AdmitRequest asks for an online admission decision.
type AdmitRequest struct {
	Tenant   string            `json:"tenant"`
	Job      chronos.JobParams `json:"job"`
	Strategy string            `json:"strategy,omitempty"`
	Econ     chronos.Econ      `json:"econ,omitempty"`
}

// AdmitResponse is the /v1/admit decision.
type AdmitResponse struct {
	Admitted        bool          `json:"admitted"`
	Tenant          string        `json:"tenant"`
	Plan            *chronos.Plan `json:"plan,omitempty"`
	Reason          string        `json:"reason,omitempty"`
	BudgetRemaining float64       `json:"budgetRemaining"`
}

// AdmitBatchJob is one arriving job in a batch admission.
type AdmitBatchJob struct {
	Job      chronos.JobParams `json:"job"`
	Strategy string            `json:"strategy,omitempty"`
}

// AdmitBatchRequest asks for admission decisions for several same-tenant
// jobs, settled against the tenant's budget in one ledger debit per server
// contacted.
type AdmitBatchRequest struct {
	Tenant string          `json:"tenant"`
	Jobs   []AdmitBatchJob `json:"jobs"`
	Econ   chronos.Econ    `json:"econ,omitempty"`
}

// AdmitBatchResult is one job's decision, in request order.
type AdmitBatchResult struct {
	Admitted bool          `json:"admitted"`
	Plan     *chronos.Plan `json:"plan,omitempty"`
	Reason   string        `json:"reason,omitempty"`
}

// AdmitBatchResponse is the /v1/admit/batch answer.
type AdmitBatchResponse struct {
	Tenant          string             `json:"tenant"`
	Results         []AdmitBatchResult `json:"results"`
	Admitted        int                `json:"admitted"`
	BudgetRemaining float64            `json:"budgetRemaining"`
}

// SimulateRequest runs a bounded Monte-Carlo what-if.
type SimulateRequest struct {
	Config chronos.SimConfig `json:"config"`
	Jobs   []chronos.SimJob  `json:"jobs"`
}

// SimulateResponse is the /v1/simulate answer.
type SimulateResponse struct {
	Jobs            int         `json:"jobs"`
	PoCD            float64     `json:"pocd"`
	MeanMachineTime float64     `json:"meanMachineTime"`
	MeanCost        float64     `json:"meanCost"`
	Utility         *float64    `json:"utility,omitempty"`
	RHistogram      map[int]int `json:"rHistogram,omitempty"`
}

// TradeoffPoint is one r on the PoCD/cost frontier.
type TradeoffPoint struct {
	R           int      `json:"r"`
	PoCD        float64  `json:"pocd"`
	MachineTime float64  `json:"machineTime"`
	Cost        float64  `json:"cost"`
	Utility     *float64 `json:"utility"`
}

// TradeoffResponse is the /v1/tradeoff answer.
type TradeoffResponse struct {
	Strategy chronos.Strategy `json:"strategy"`
	Points   []TradeoffPoint  `json:"points"`
}

// ReplayTrace generates a synthetic Google-like job stream server-side.
type ReplayTrace struct {
	Jobs           int     `json:"jobs"`
	HorizonSeconds float64 `json:"horizonSeconds,omitempty"`
	DeadlineRatio  float64 `json:"deadlineRatio,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
}

// ReplayRequest streams a trace-driven simulation over /v1/replay. Exactly
// one of Jobs, Trace, or Benchmark supplies the job stream.
type ReplayRequest struct {
	Config        chronos.SimConfig `json:"config"`
	Jobs          []chronos.SimJob  `json:"jobs,omitempty"`
	Trace         *ReplayTrace      `json:"trace,omitempty"`
	Benchmark     json.RawMessage   `json:"benchmark,omitempty"`
	Tenant        string            `json:"tenant,omitempty"`
	WindowSeconds float64           `json:"windowSeconds,omitempty"`
}

// --- endpoint methods -----------------------------------------------------

// Plan asks for one job's plan, routed client-side to the ring owner of its
// plan key, failing over to the key's ring successors on transport errors
// (the replicas that hold the key's warm copies when the fleet runs with a
// replication factor).
func (c *Client) Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	var resp PlanResponse
	if err := c.postPlanKeyed(ctx, req.Strategy, req.Job, req.Econ, "/v1/plan", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Admit asks for an online admission decision, routed like Plan (the
// servers key admission by the same plan key).
func (c *Client) Admit(ctx context.Context, req AdmitRequest) (*AdmitResponse, error) {
	var resp AdmitResponse
	if err := c.postPlanKeyed(ctx, req.Strategy, req.Job, req.Econ, "/v1/admit", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// postPlanKeyed posts a plan-keyed request to its ring owner, retrying the
// key's next ring successors on transport errors. An HTTP-level error
// (*Error) is a live replica's answer and is returned as-is; only a replica
// we could not talk to at all triggers failover, and a dead context stops
// the walk (the caller gave up, not the replica).
func (c *Client) postPlanKeyed(ctx context.Context, strategy string, job chronos.JobParams, econ chronos.Econ, path string, req, resp any) error {
	targets := c.planTargets(strategy, job, econ)
	var err error
	for _, base := range targets {
		err = c.postJSON(ctx, base, path, req, resp)
		var httpErr *Error
		if err == nil || errors.As(err, &httpErr) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// planTargets resolves the replicas for a plan-keyed request in preference
// order: the ring owner of the key followed by its successors (the fleet's
// replica set for the key). Requests whose key cannot be computed (unknown
// strategy name — the server will answer 400 anyway) and single-replica
// clients get one round-robin target.
func (c *Client) planTargets(strategy string, job chronos.JobParams, econ chronos.Econ) []string {
	if c.ring == nil {
		return c.replicas[:1:1]
	}
	canon, ok := plankey.CanonicalStrategy(strategy)
	if !ok {
		return []string{c.next()}
	}
	// Two targets: the owner plus its first successor. Matches the smallest
	// useful server-side replication factor; with R = 1 the successor still
	// answers correctly (one forward hop or a local fallback).
	if targets := c.ring.Successors(plankey.Key(canon, job, econ), 2); len(targets) > 0 {
		return targets
	}
	return []string{c.next()}
}

// AdmitBatch asks for admission decisions for several same-tenant jobs.
// Against a fleet it groups the jobs by the ring owner of their plan key and
// posts one sub-batch per owning replica — each sub-batch is decided on the
// replica whose cache holds its plans and settled in a single ledger debit —
// then reassembles the per-job results in input order. BudgetRemaining in
// the merged response is the lowest level any contacted replica reported
// (the most conservative fleet view). The first transport or HTTP error
// aborts the whole call; jobs in sub-batches already decided by then may
// have been admitted and debited.
func (c *Client) AdmitBatch(ctx context.Context, req AdmitBatchRequest) (*AdmitBatchResponse, error) {
	if c.ring == nil || len(req.Jobs) == 0 {
		var resp AdmitBatchResponse
		if err := c.postJSON(ctx, c.replicas[0], "/v1/admit/batch", req, &resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}
	// Group job indices by owning replica, preserving input order per group.
	groups := make(map[string][]int)
	var order []string
	for i, j := range req.Jobs {
		base := c.planTarget(j.Strategy, j.Job, req.Econ)
		if _, seen := groups[base]; !seen {
			order = append(order, base)
		}
		groups[base] = append(groups[base], i)
	}
	merged := &AdmitBatchResponse{
		Tenant:  req.Tenant,
		Results: make([]AdmitBatchResult, len(req.Jobs)),
	}
	first := true
	for _, base := range order {
		idxs := groups[base]
		sub := AdmitBatchRequest{
			Tenant: req.Tenant,
			Jobs:   make([]AdmitBatchJob, 0, len(idxs)),
			Econ:   req.Econ,
		}
		for _, i := range idxs {
			sub.Jobs = append(sub.Jobs, req.Jobs[i])
		}
		var resp AdmitBatchResponse
		if err := c.postJSON(ctx, base, "/v1/admit/batch", sub, &resp); err != nil {
			return nil, err
		}
		if len(resp.Results) != len(idxs) {
			return nil, fmt.Errorf("chronosd: admit batch: replica %s answered %d results for %d jobs",
				base, len(resp.Results), len(idxs))
		}
		for k, i := range idxs {
			merged.Results[i] = resp.Results[k]
		}
		merged.Admitted += resp.Admitted
		if first || resp.BudgetRemaining < merged.BudgetRemaining {
			merged.BudgetRemaining = resp.BudgetRemaining
		}
		first = false
	}
	return merged, nil
}

// PlanBatch plans a shared-budget batch on the next replica in round-robin
// order (a batch spans many plan keys, so there is no single owner).
func (c *Client) PlanBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.postJSON(ctx, c.next(), "/v1/plan/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Simulate runs a what-if simulation on the next replica in round-robin
// order.
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	var resp SimulateResponse
	if err := c.postJSON(ctx, c.next(), "/v1/simulate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Tradeoff fetches the PoCD/cost frontier of one strategy for a job. maxR
// caps the curve; zero takes the server default.
func (c *Client) Tradeoff(ctx context.Context, strategy string, job chronos.JobParams, econ chronos.Econ, maxR int) (*TradeoffResponse, error) {
	q := url.Values{}
	q.Set("strategy", strategy)
	q.Set("tasks", strconv.Itoa(job.Tasks))
	setF := func(k string, v float64) {
		if v != 0 {
			q.Set(k, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	setF("deadline", job.Deadline)
	setF("tmin", job.TMin)
	setF("beta", job.Beta)
	setF("tauEst", job.TauEst)
	setF("tauKill", job.TauKill)
	setF("phiEst", job.PhiEst)
	setF("theta", econ.Theta)
	setF("price", econ.UnitPrice)
	setF("rmin", econ.RMin)
	if maxR > 0 {
		q.Set("maxR", strconv.Itoa(maxR))
	}
	var resp TradeoffResponse
	if err := c.getJSON(ctx, c.next(), "/v1/tradeoff?"+q.Encode(), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Replay streams one trace-driven simulation, invoking onEvent for every
// NDJSON event in order (a nil onEvent skips the callback), and returns the
// stream's final replay_summary. An error event ends the stream as an
// error; onEvent returning an error aborts it.
func (c *Client) Replay(ctx context.Context, req ReplayRequest, onEvent func(*chronos.ReplayEvent) error) (*chronos.ReplaySummary, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.next()+"/v1/replay", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, decodeError(httpResp)
	}
	var summary *chronos.ReplaySummary
	dec := json.NewDecoder(httpResp.Body)
	for {
		var ev chronos.ReplayEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if ev.Kind == chronos.EventError {
			return nil, fmt.Errorf("chronosd: replay: %s", ev.Error)
		}
		if ev.Kind == chronos.EventReplaySummary {
			summary = ev.Summary
		}
		if onEvent != nil {
			if err := onEvent(&ev); err != nil {
				return nil, err
			}
		}
	}
	if summary == nil {
		return nil, errors.New("chronosd: replay stream ended without a summary")
	}
	return summary, nil
}

// Metrics fetches one replica's Prometheus exposition text (the first
// replica unless the round-robin cursor says otherwise).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.next()+"/metrics", nil)
	if err != nil {
		return "", err
	}
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return "", err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return "", err
	}
	if httpResp.StatusCode != http.StatusOK {
		return "", &Error{Status: httpResp.StatusCode, Message: strings.TrimSpace(string(raw))}
	}
	return string(raw), nil
}

// --- transport ------------------------------------------------------------

// planTarget resolves the replica that owns a plan-keyed request; requests
// the key cannot be computed for (unknown strategy name — the server will
// answer 400 anyway) and single-replica clients fall back to round-robin.
func (c *Client) planTarget(strategy string, job chronos.JobParams, econ chronos.Econ) string {
	if c.ring == nil {
		return c.replicas[0]
	}
	canon, ok := plankey.CanonicalStrategy(strategy)
	if !ok {
		return c.next()
	}
	owner, ok := c.ring.Owner(plankey.Key(canon, job, econ))
	if !ok {
		return c.next()
	}
	return owner
}

// next returns the round-robin replica for keyless requests.
func (c *Client) next() string {
	if len(c.replicas) == 1 {
		return c.replicas[0]
	}
	return c.replicas[(c.rr.Add(1)-1)%uint64(len(c.replicas))]
}

func (c *Client) postJSON(ctx context.Context, base, path string, req, resp any) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	return c.do(httpReq, resp)
}

func (c *Client) getJSON(ctx context.Context, base, pathAndQuery string, resp any) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+pathAndQuery, nil)
	if err != nil {
		return err
	}
	return c.do(httpReq, resp)
}

func (c *Client) do(req *http.Request, resp any) error {
	httpResp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return decodeError(httpResp)
	}
	return json.NewDecoder(httpResp.Body).Decode(resp)
}

// decodeError turns a non-200 answer into *Error, tolerating non-envelope
// bodies (proxies, panics) by carrying the raw text.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	e := &Error{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	var env struct {
		Error   string `json:"error"`
		Code    string `json:"code"`
		TraceID string `json:"traceId"`
	}
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != "" {
		e.Message, e.Code, e.TraceID = env.Error, env.Code, env.TraceID
	}
	return e
}
