package hotjson

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"unicode/utf8"

	"chronos"
)

const hexDigits = "0123456789abcdef"

// appendFloat appends f exactly as encoding/json does: ES6 number-to-string
// conversion ('f' format, switching to 'e' outside [1e-6, 1e21) with the
// zero-padded exponent trimmed). Inf and NaN are an error, as in
// json.Marshal.
func appendFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, fmt.Errorf("hotjson: unsupported float value %s", strconv.FormatFloat(f, 'g', -1, 64))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// appendString appends s as a quoted JSON string with encoding/json's
// default escaping: control characters, quote and backslash, the
// HTML-sensitive < > &, U+2028/U+2029, and � for invalid UTF-8.
func appendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		// U+2028 (line separator) and U+2029 (paragraph separator) are
		// valid JSON but break JSONP; encoding/json escapes them
		// unconditionally.
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// appendStrategy appends the strategy's canonical quoted name, erroring on
// out-of-range values exactly like Strategy.MarshalJSON.
func appendStrategy(dst []byte, s chronos.Strategy) ([]byte, error) {
	if s < chronos.Clone || s > chronos.LATE {
		return dst, fmt.Errorf("chronos: cannot marshal invalid strategy %d", int(s))
	}
	dst = append(dst, '"')
	dst = append(dst, s.String()...)
	return append(dst, '"'), nil
}

func appendJobParams(dst []byte, p *chronos.JobParams) ([]byte, error) {
	var err error
	dst = append(dst, `{"tasks":`...)
	dst = strconv.AppendInt(dst, int64(p.Tasks), 10)
	dst = append(dst, `,"deadline":`...)
	if dst, err = appendFloat(dst, p.Deadline); err != nil {
		return dst, err
	}
	dst = append(dst, `,"tmin":`...)
	if dst, err = appendFloat(dst, p.TMin); err != nil {
		return dst, err
	}
	dst = append(dst, `,"beta":`...)
	if dst, err = appendFloat(dst, p.Beta); err != nil {
		return dst, err
	}
	dst = append(dst, `,"tauEst":`...)
	if dst, err = appendFloat(dst, p.TauEst); err != nil {
		return dst, err
	}
	dst = append(dst, `,"tauKill":`...)
	if dst, err = appendFloat(dst, p.TauKill); err != nil {
		return dst, err
	}
	if p.PhiEst != 0 {
		dst = append(dst, `,"phiEst":`...)
		if dst, err = appendFloat(dst, p.PhiEst); err != nil {
			return dst, err
		}
	}
	return append(dst, '}'), nil
}

func appendEcon(dst []byte, e *chronos.Econ) ([]byte, error) {
	var err error
	dst = append(dst, `{"theta":`...)
	if dst, err = appendFloat(dst, e.Theta); err != nil {
		return dst, err
	}
	dst = append(dst, `,"unitPrice":`...)
	if dst, err = appendFloat(dst, e.UnitPrice); err != nil {
		return dst, err
	}
	if e.RMin != 0 {
		dst = append(dst, `,"rmin":`...)
		if dst, err = appendFloat(dst, e.RMin); err != nil {
			return dst, err
		}
	}
	return append(dst, '}'), nil
}

// AppendPlan appends p as json.Marshal would, byte for byte.
func AppendPlan(dst []byte, p *chronos.Plan) ([]byte, error) {
	var err error
	dst = append(dst, `{"strategy":`...)
	if dst, err = appendStrategy(dst, p.Strategy); err != nil {
		return dst, err
	}
	dst = append(dst, `,"r":`...)
	dst = strconv.AppendInt(dst, int64(p.R), 10)
	dst = append(dst, `,"pocd":`...)
	if dst, err = appendFloat(dst, p.PoCD); err != nil {
		return dst, err
	}
	dst = append(dst, `,"machineTime":`...)
	if dst, err = appendFloat(dst, p.MachineTime); err != nil {
		return dst, err
	}
	dst = append(dst, `,"cost":`...)
	if dst, err = appendFloat(dst, p.Cost); err != nil {
		return dst, err
	}
	dst = append(dst, `,"utility":`...)
	if dst, err = appendFloat(dst, p.Utility); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

// AppendPlanRequest appends r as json.Marshal would, byte for byte.
func AppendPlanRequest(dst []byte, r *PlanRequest) ([]byte, error) {
	var err error
	dst = append(dst, `{"job":`...)
	if dst, err = appendJobParams(dst, &r.Job); err != nil {
		return dst, err
	}
	dst = append(dst, `,"econ":`...)
	if dst, err = appendEcon(dst, &r.Econ); err != nil {
		return dst, err
	}
	if r.Strategy != "" {
		dst = append(dst, `,"strategy":`...)
		dst = appendString(dst, r.Strategy)
	}
	if r.Tenant != "" {
		dst = append(dst, `,"tenant":`...)
		dst = appendString(dst, r.Tenant)
	}
	return append(dst, '}'), nil
}

// AppendPlanResponse appends r as json.Marshal would, byte for byte.
func AppendPlanResponse(dst []byte, r *PlanResponse) ([]byte, error) {
	var err error
	dst = append(dst, `{"plan":`...)
	if dst, err = AppendPlan(dst, &r.Plan); err != nil {
		return dst, err
	}
	dst = append(dst, `,"cached":`...)
	dst = strconv.AppendBool(dst, r.Cached)
	if r.BudgetRemaining != nil {
		dst = append(dst, `,"budgetRemaining":`...)
		if dst, err = appendFloat(dst, *r.BudgetRemaining); err != nil {
			return dst, err
		}
	}
	return append(dst, '}'), nil
}

// AppendAdmitRequest appends r as json.Marshal would, byte for byte.
func AppendAdmitRequest(dst []byte, r *AdmitRequest) ([]byte, error) {
	var err error
	dst = append(dst, `{"tenant":`...)
	dst = appendString(dst, r.Tenant)
	dst = append(dst, `,"job":`...)
	if dst, err = appendJobParams(dst, &r.Job); err != nil {
		return dst, err
	}
	if r.Strategy != "" {
		dst = append(dst, `,"strategy":`...)
		dst = appendString(dst, r.Strategy)
	}
	// Econ carries omitempty, but struct values are never empty to
	// encoding/json, so it is always present.
	dst = append(dst, `,"econ":`...)
	if dst, err = appendEcon(dst, &r.Econ); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

// AppendAdmitResponse appends r as json.Marshal would, byte for byte.
func AppendAdmitResponse(dst []byte, r *AdmitResponse) ([]byte, error) {
	var err error
	dst = append(dst, `{"admitted":`...)
	dst = strconv.AppendBool(dst, r.Admitted)
	dst = append(dst, `,"tenant":`...)
	dst = appendString(dst, r.Tenant)
	if r.Plan != nil {
		dst = append(dst, `,"plan":`...)
		if dst, err = AppendPlan(dst, r.Plan); err != nil {
			return dst, err
		}
	}
	if r.Reason != "" {
		dst = append(dst, `,"reason":`...)
		dst = appendString(dst, r.Reason)
	}
	dst = append(dst, `,"budgetRemaining":`...)
	if dst, err = appendFloat(dst, r.BudgetRemaining); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

func appendJobEvent(dst []byte, ev *chronos.ReplayJobEvent) ([]byte, error) {
	var err error
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendInt(dst, int64(ev.ID), 10)
	dst = append(dst, `,"strategy":`...)
	dst = appendString(dst, ev.Strategy)
	dst = append(dst, `,"tasks":`...)
	dst = strconv.AppendInt(dst, int64(ev.Tasks), 10)
	if ev.ReduceTasks != 0 {
		dst = append(dst, `,"reduceTasks":`...)
		dst = strconv.AppendInt(dst, int64(ev.ReduceTasks), 10)
	}
	dst = append(dst, `,"arrival":`...)
	if dst, err = appendFloat(dst, ev.Arrival); err != nil {
		return dst, err
	}
	dst = append(dst, `,"deadline":`...)
	if dst, err = appendFloat(dst, ev.Deadline); err != nil {
		return dst, err
	}
	if ev.R != nil {
		dst = append(dst, `,"r":`...)
		dst = strconv.AppendInt(dst, int64(*ev.R), 10)
	}
	if ev.ReduceR != nil {
		dst = append(dst, `,"reduceR":`...)
		dst = strconv.AppendInt(dst, int64(*ev.ReduceR), 10)
	}
	return append(dst, '}'), nil
}

func appendOutcome(dst []byte, o *chronos.ReplayOutcome) ([]byte, error) {
	var err error
	dst = append(dst, `{"finish":`...)
	if dst, err = appendFloat(dst, o.Finish); err != nil {
		return dst, err
	}
	dst = append(dst, `,"metDeadline":`...)
	dst = strconv.AppendBool(dst, o.MetDeadline)
	dst = append(dst, `,"lateness":`...)
	if dst, err = appendFloat(dst, o.Lateness); err != nil {
		return dst, err
	}
	dst = append(dst, `,"machineTime":`...)
	if dst, err = appendFloat(dst, o.MachineTime); err != nil {
		return dst, err
	}
	dst = append(dst, `,"cost":`...)
	if dst, err = appendFloat(dst, o.Cost); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

// appendIntIntMap appends m with keys sorted by their decimal string form,
// matching encoding/json's map key ordering.
func appendIntIntMap(dst []byte, m map[int]int) []byte {
	type kv struct {
		s string
		v int
	}
	kvs := make([]kv, 0, len(m))
	for k, v := range m {
		kvs = append(kvs, kv{strconv.Itoa(k), v})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].s < kvs[j].s })
	dst = append(dst, '{')
	for i := range kvs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, '"')
		dst = append(dst, kvs[i].s...)
		dst = append(dst, `":`...)
		dst = strconv.AppendInt(dst, int64(kvs[i].v), 10)
	}
	return append(dst, '}')
}

func appendSummary(dst []byte, s *chronos.ReplaySummary) ([]byte, error) {
	var err error
	dst = append(dst, `{"jobs":`...)
	dst = strconv.AppendInt(dst, int64(s.Jobs), 10)
	dst = append(dst, `,"submitted":`...)
	dst = strconv.AppendInt(dst, int64(s.Submitted), 10)
	dst = append(dst, `,"met":`...)
	dst = strconv.AppendInt(dst, int64(s.Met), 10)
	dst = append(dst, `,"pocd":`...)
	if dst, err = appendFloat(dst, s.PoCD); err != nil {
		return dst, err
	}
	dst = append(dst, `,"meanMachineTime":`...)
	if dst, err = appendFloat(dst, s.MeanMachineTime); err != nil {
		return dst, err
	}
	dst = append(dst, `,"meanCost":`...)
	if dst, err = appendFloat(dst, s.MeanCost); err != nil {
		return dst, err
	}
	if len(s.RHistogram) != 0 {
		dst = append(dst, `,"rHistogram":`...)
		dst = appendIntIntMap(dst, s.RHistogram)
	}
	return append(dst, '}'), nil
}

func appendWindow(dst []byte, w *chronos.ReplayWindow) ([]byte, error) {
	var err error
	dst = append(dst, `{"index":`...)
	dst = strconv.AppendInt(dst, int64(w.Index), 10)
	dst = append(dst, `,"start":`...)
	if dst, err = appendFloat(dst, w.Start); err != nil {
		return dst, err
	}
	dst = append(dst, `,"end":`...)
	if dst, err = appendFloat(dst, w.End); err != nil {
		return dst, err
	}
	dst = append(dst, `,"completed":`...)
	dst = strconv.AppendInt(dst, int64(w.Completed), 10)
	dst = append(dst, `,"running":`...)
	if dst, err = appendSummary(dst, &w.Running); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

// AppendReplayEvent appends ev as json.Marshal would, byte for byte.
func AppendReplayEvent(dst []byte, ev *chronos.ReplayEvent) ([]byte, error) {
	var err error
	dst = append(dst, `{"event":`...)
	dst = appendString(dst, string(ev.Kind))
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, ev.Seq, 10)
	dst = append(dst, `,"time":`...)
	if dst, err = appendFloat(dst, ev.Time); err != nil {
		return dst, err
	}
	if ev.Job != nil {
		dst = append(dst, `,"job":`...)
		if dst, err = appendJobEvent(dst, ev.Job); err != nil {
			return dst, err
		}
	}
	if ev.Outcome != nil {
		dst = append(dst, `,"outcome":`...)
		if dst, err = appendOutcome(dst, ev.Outcome); err != nil {
			return dst, err
		}
	}
	if ev.PoCD != nil {
		dst = append(dst, `,"pocd":`...)
		if dst, err = appendFloat(dst, *ev.PoCD); err != nil {
			return dst, err
		}
	}
	if ev.Window != nil {
		dst = append(dst, `,"window":`...)
		if dst, err = appendWindow(dst, ev.Window); err != nil {
			return dst, err
		}
	}
	if ev.Summary != nil {
		dst = append(dst, `,"summary":`...)
		if dst, err = appendSummary(dst, ev.Summary); err != nil {
			return dst, err
		}
	}
	if ev.TraceID != "" {
		dst = append(dst, `,"traceId":`...)
		dst = appendString(dst, ev.TraceID)
	}
	if ev.Tenant != "" {
		dst = append(dst, `,"tenant":`...)
		dst = appendString(dst, ev.Tenant)
	}
	if ev.Needed != 0 {
		dst = append(dst, `,"needed":`...)
		if dst, err = appendFloat(dst, ev.Needed); err != nil {
			return dst, err
		}
	}
	if ev.Remaining != nil {
		dst = append(dst, `,"remaining":`...)
		if dst, err = appendFloat(dst, *ev.Remaining); err != nil {
			return dst, err
		}
	}
	if ev.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendString(dst, ev.Error)
	}
	return append(dst, '}'), nil
}
