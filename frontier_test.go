package chronos

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// budgetSweep builds the budgets that matter for one cell: zero, tiny,
// huge, NaN, and values bracketing every machine time the solver can
// return, so the sweep crosses each affordability threshold.
func budgetSweep(un Plan) []float64 {
	mt := un.MachineTime
	return []float64{
		math.NaN(), 0, 1e-9, mt * 0.1, mt * 0.5, mt * 0.9, mt * 0.99,
		mt, mt * 1.01, mt * 2, math.Inf(1), 1e18,
	}
}

func checkFrontierAgainst(t *testing.T, bf *BudgetFrontier, budget float64,
	refPlan Plan, refErr error) {
	t.Helper()
	gotPlan, gotErr := bf.PlanWithinBudget(budget)
	if (refErr == nil) != (gotErr == nil) {
		t.Fatalf("budget %v: error disagreement: optimizer %v, frontier %v", budget, refErr, gotErr)
	}
	if refErr != nil {
		if refErr.Error() != gotErr.Error() {
			t.Fatalf("budget %v: error text differs:\noptimizer: %v\nfrontier:  %v", budget, refErr, gotErr)
		}
		return
	}
	if !reflect.DeepEqual(refPlan, gotPlan) {
		t.Fatalf("budget %v: plan differs:\noptimizer: %+v\nfrontier:  %+v", budget, refPlan, gotPlan)
	}
}

func TestBudgetFrontierMatchesOptimizeWithinBudget(t *testing.T) {
	p := apiParams()
	e := apiEcon()
	for _, s := range ChronosStrategies() {
		bf, err := NewBudgetFrontier(s, p, e)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		un, err := Optimize(s, p, e)
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range budgetSweep(un) {
			refPlan, refErr := OptimizeWithinBudget(s, p, e, budget)
			checkFrontierAgainst(t, bf, budget, refPlan, refErr)
		}
	}
}

func TestBudgetFrontierBestMatchesOptimizeBestWithinBudget(t *testing.T) {
	p := apiParams()
	e := apiEcon()
	bf, err := NewBudgetFrontierBest(p, e)
	if err != nil {
		t.Fatal(err)
	}
	un, err := OptimizeBest(p, e)
	if err != nil {
		t.Fatal(err)
	}
	if got := bf.Unconstrained(); !reflect.DeepEqual(un, got) {
		t.Fatalf("Unconstrained differs: optimizer %+v, frontier %+v", un, got)
	}
	for _, budget := range budgetSweep(un) {
		refPlan, refErr := OptimizeBestWithinBudget(p, e, budget)
		checkFrontierAgainst(t, bf, budget, refPlan, refErr)
	}
}

// TestBudgetFrontierRandomCells sweeps random parameter cells, including
// ones with a binding RMin (a real infeasible prefix to bisect) and jobs
// whose frontiers differ per strategy.
func TestBudgetFrontierRandomCells(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cells := 0
	for i := 0; i < 60; i++ {
		p := JobParams{
			Tasks:    1 + rng.Intn(50),
			Deadline: 20 + rng.Float64()*400,
			TMin:     1 + rng.Float64()*15,
			Beta:     1.05 + rng.Float64()*2,
			TauEst:   rng.Float64() * 60,
			TauKill:  rng.Float64() * 90,
			PhiEst:   rng.Float64() * 0.8,
		}
		e := Econ{
			Theta:     math.Pow(10, -5+3*rng.Float64()),
			UnitPrice: 0.1 + rng.Float64()*5,
			RMin:      []float64{0, 0.5, 0.9, 0.99}[rng.Intn(4)],
		}
		bf, err := NewBudgetFrontierBest(p, e)
		if err != nil {
			// The optimizer must agree the cell is hopeless (any finite
			// budget — the frontier only fails on budget-independent
			// grounds).
			if _, refErr := OptimizeBestWithinBudget(p, e, 1e18); refErr == nil {
				t.Fatalf("cell %d: frontier build failed (%v) but optimizer succeeded", i, err)
			}
			continue
		}
		cells++
		un := bf.Unconstrained()
		for _, budget := range budgetSweep(un) {
			refPlan, refErr := OptimizeBestWithinBudget(p, e, budget)
			checkFrontierAgainst(t, bf, budget, refPlan, refErr)
		}
	}
	if cells < 20 {
		t.Fatalf("only %d feasible random cells — sweep too weak", cells)
	}
}

func TestBudgetFrontierInfeasibleStrategy(t *testing.T) {
	// LATE is not analytically optimizable; a pinned frontier must report
	// the same error the optimizer does.
	if _, err := NewBudgetFrontier(LATE, apiParams(), apiEcon()); err == nil {
		t.Fatal("NewBudgetFrontier(LATE) succeeded")
	}
	// An unreachable RMin makes every strategy infeasible.
	e := apiEcon()
	e.RMin = 0.999999999999
	p := apiParams()
	p.Deadline = 10.5
	p.TMin = 10
	if _, err := NewBudgetFrontierBest(p, e); err != nil {
		if _, refErr := OptimizeBestWithinBudget(p, e, 1e18); refErr == nil {
			t.Fatalf("frontier build failed (%v) but optimizer succeeded", err)
		}
	}
}

// TestBudgetFrontierSolveZeroAlloc: a warm-table capped solve performs no
// allocation (errors on the rejection path may allocate; admits must not).
func TestBudgetFrontierSolveZeroAlloc(t *testing.T) {
	bf, err := NewBudgetFrontierBest(apiParams(), apiEcon())
	if err != nil {
		t.Fatal(err)
	}
	budget := bf.Unconstrained().MachineTime * 0.6
	if _, err := bf.PlanWithinBudget(budget); err != nil {
		t.Skipf("cell has no affordable squeeze at %v: %v", budget, err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := bf.PlanWithinBudget(budget); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("warm capped solve allocates %.1f times per op", avg)
	}
}
