package sim

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("fired %d events, want 5", len(got))
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %v, want 5", e.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var at float64
	e.Schedule(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Errorf("After(5) from t=10 fired at %v, want 15", at)
	}
}

func TestSchedulingFromHandlers(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run()
	if count != 100 {
		t.Errorf("recurrent event fired %d times, want 100", count)
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v, want 100", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at NaN did not panic")
		}
	}()
	e.Schedule(math.NaN(), func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	timer := e.Schedule(1, func() { fired = true })
	if !timer.Pending() {
		t.Error("timer not pending after Schedule")
	}
	if !timer.Cancel() {
		t.Error("Cancel returned false for pending timer")
	}
	if timer.Cancel() {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Processed() != 0 {
		t.Errorf("Processed() = %d, want 0", e.Processed())
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	timer := e.Schedule(1, func() {})
	e.Run()
	if timer.Pending() {
		t.Error("fired timer still pending")
	}
	if timer.Cancel() {
		t.Error("Cancel after fire returned true")
	}
}

func TestNilTimerCancel(t *testing.T) {
	var timer *Timer
	if timer.Cancel() {
		t.Error("nil timer Cancel returned true")
	}
	if timer.Pending() {
		t.Error("nil timer Pending returned true")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Errorf("RunUntil(3) fired %d events, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Errorf("after RunUntil(10) fired %d events, want 5", len(fired))
	}
	if e.Now() != 10 {
		t.Errorf("Now() = %v, want clock advanced to 10", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("fired %d events after Stop, want 3", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false")
	}
	if e.Step() {
		t.Error("Step on stopped engine returned true")
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("Pending() after Run = %d, want 0", e.Pending())
	}
}

// TestHeapStress exercises the queue with random interleaved schedule and
// cancel operations, verifying global time order.
func TestHeapStress(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewPCG(1, 2))
	var fired []float64
	var timers []*Timer
	for i := 0; i < 5000; i++ {
		at := rng.Float64() * 1000
		timers = append(timers, e.Schedule(at, func() { fired = append(fired, at) }))
	}
	// Cancel a random third.
	cancelled := 0
	for _, timer := range timers {
		if rng.Float64() < 0.33 && timer.Cancel() {
			cancelled++
		}
	}
	e.Run()
	if len(fired) != 5000-cancelled {
		t.Errorf("fired %d events, want %d", len(fired), 5000-cancelled)
	}
	if !sort.Float64sAreSorted(fired) {
		t.Error("stress run fired events out of order")
	}
}

// TestNextAt covers the peek API the streaming replay loop drives windows
// with: it must see through cancelled heads and never advance the clock.
func TestNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Error("NextAt on empty queue reported an event")
	}
	first := e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	if at, ok := e.NextAt(); !ok || at != 10 {
		t.Errorf("NextAt = %v, %v, want 10, true", at, ok)
	}
	if e.Now() != 0 {
		t.Errorf("NextAt advanced the clock to %v", e.Now())
	}
	first.Cancel()
	if at, ok := e.NextAt(); !ok || at != 20 {
		t.Errorf("NextAt after cancelling head = %v, %v, want 20, true", at, ok)
	}
	e.Run()
	if _, ok := e.NextAt(); ok {
		t.Error("NextAt after drain reported an event")
	}
}
