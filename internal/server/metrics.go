package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"chronos/internal/metrics"
	"chronos/internal/obs"
	"chronos/internal/tenant"
)

// stageBuckets covers the per-stage span range: a sharded cache lookup is
// ~100 ns, a cold three-strategy solve ~500 µs, a cross-replica forward or a
// long replay's cumulative event writes can reach seconds. The default
// request-latency buckets bottom out at 100 µs — far too coarse here.
func stageBuckets() []float64 {
	return []float64{
		1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5,
	}
}

// serverMetrics aggregates the serving-side observability state: request
// counts and latency histograms per endpoint, plans served per strategy,
// and per-tenant admission counters. Rendering follows the Prometheus text
// exposition format.
type serverMetrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	plans     map[string]*metrics.Counter
	tenants   map[string]*tenantMetrics

	// Streaming-replay series: lifetime starts, currently-open streams, and
	// cumulative jobs/events pushed over /v1/replay.
	replaysStarted metrics.Counter
	replaysActive  atomic.Int64
	replayJobs     metrics.Counter
	replayEvents   metrics.Counter

	// Ring series: per-peer forwards and forward failures, plus the
	// aggregate fallback/guard counters of the sharded serving path.
	ringForwards map[string]*metrics.Counter // by peer URL
	ringErrors   map[string]*metrics.Counter // by peer URL
	// ringLocalFallbacks counts requests computed locally although another
	// replica owned the key (circuit open, forward failed, or owner 5xx).
	ringLocalFallbacks metrics.Counter
	// ringReceivedForwards counts requests that arrived with the single-hop
	// guard header and were therefore computed locally.
	ringReceivedForwards metrics.Counter

	// Fleet-health series. ringHeartbeatFails counts failed liveness probes
	// per configured member; ringEvictions/ringReadmits count suspect/alive
	// membership transitions this replica applied to its effective ring.
	ringHeartbeatFails map[string]*metrics.Counter // by peer URL
	ringEvictions      metrics.Counter
	ringReadmits       metrics.Counter
	// ringReplicaReads counts plan-keyed requests answered from a replica
	// copy (local or remote) while the key's owner was unreachable;
	// ringHandoffEntries counts cache entries streamed to their new owners
	// on membership changes.
	ringReplicaReads   metrics.Counter
	ringHandoffEntries metrics.Counter

	// encodeFailures counts responses whose JSON encoding failed (answered
	// as HTTP 500 and logged at warn with the trace ID).
	encodeFailures metrics.Counter

	// Singleflight series: cold-miss solves actually run (leaders) and
	// requests that piggybacked on a concurrent identical solve (waiters).
	// waiters/(leaders+waiters) is the fraction of cold traffic the miss
	// collapse absorbed.
	flightLeaders metrics.Counter
	flightWaiters metrics.Counter

	// Escrow series: per-tenant grants issued (owner side), lease top-ups
	// performed (holder side), and expired-lease reclamations (owner side).
	escrowGrants   map[string]*metrics.Counter // by tenant
	escrowTopups   map[string]*metrics.Counter // by tenant
	escrowReclaims map[string]*metrics.Counter // by tenant

	// stageSeconds histograms the per-request time spent in each hot-path
	// stage (chronosd_stage_seconds{stage=...}); each request contributes
	// its accumulated span per stage that fired.
	stageSeconds [obs.NumStages]*metrics.LatencyHistogram

	start time.Time
}

// observeStages folds one finished request's span breakdown into the
// per-stage histograms. Stages that never fired contribute nothing, so
// endpoint mix does not flatten the distributions.
func (m *serverMetrics) observeStages(snap *obs.Snapshot) {
	if snap == nil {
		return
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if snap.StageCounts[s] != 0 {
			m.stageSeconds[s].Observe(snap.StageSeconds(s))
		}
	}
}

// peerCounter returns the per-peer counter in byPeer, creating it on first
// use.
func (m *serverMetrics) peerCounter(byPeer map[string]*metrics.Counter, peer string) *metrics.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := byPeer[peer]
	if !ok {
		c = &metrics.Counter{}
		byPeer[peer] = c
	}
	return c
}

// ringForwarded counts one successfully proxied request to peer.
func (m *serverMetrics) ringForwarded(peer string) {
	m.peerCounter(m.ringForwards, peer).Inc()
}

// ringPeerError counts one failed forward attempt to peer.
func (m *serverMetrics) ringPeerError(peer string) {
	m.peerCounter(m.ringErrors, peer).Inc()
}

// ringHeartbeatFailure counts one failed liveness probe of member.
func (m *serverMetrics) ringHeartbeatFailure(member string) {
	m.peerCounter(m.ringHeartbeatFails, member).Inc()
}

// replayStarted marks one /v1/replay stream opening; the returned func
// closes it. Jobs and events emitted mid-stream are counted via replayEmit.
func (m *serverMetrics) replayStarted() (done func()) {
	m.replaysStarted.Inc()
	m.replaysActive.Add(1)
	return func() { m.replaysActive.Add(-1) }
}

// replayEmit counts one streamed event (and, for job completions, one
// replayed job).
func (m *serverMetrics) replayEmit(jobCompleted bool) {
	m.replayEvents.Inc()
	if jobCompleted {
		m.replayJobs.Inc()
	}
}

// escrowCount increments one per-tenant escrow counter (grants, top-ups, or
// reclaims), creating it on first use.
func (m *serverMetrics) escrowCount(byTenant map[string]*metrics.Counter, tenant string) {
	m.peerCounter(byTenant, tenant).Inc()
}

// tenantMetrics accumulates one tenant's admission-control counters.
type tenantMetrics struct {
	mu      sync.Mutex
	admits  metrics.Counter
	rejects map[string]*metrics.Counter // by structured reason
	plans   map[string]*metrics.Counter // by strategy
}

type endpointMetrics struct {
	mu      sync.Mutex
	codes   map[int]*metrics.Counter
	latency *metrics.LatencyHistogram
}

func newServerMetrics() *serverMetrics {
	m := &serverMetrics{
		endpoints:          make(map[string]*endpointMetrics),
		plans:              make(map[string]*metrics.Counter),
		tenants:            make(map[string]*tenantMetrics),
		ringForwards:       make(map[string]*metrics.Counter),
		ringErrors:         make(map[string]*metrics.Counter),
		ringHeartbeatFails: make(map[string]*metrics.Counter),
		escrowGrants:       make(map[string]*metrics.Counter),
		escrowTopups:       make(map[string]*metrics.Counter),
		escrowReclaims:     make(map[string]*metrics.Counter),
		start:              time.Now(),
	}
	for s := range m.stageSeconds {
		m.stageSeconds[s] = metrics.NewLatencyHistogram(stageBuckets()...)
	}
	return m
}

// endpoint returns the per-endpoint accumulator, creating it on first use.
func (m *serverMetrics) endpoint(path string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.endpoints[path]
	if !ok {
		em = &endpointMetrics{
			codes:   make(map[int]*metrics.Counter),
			latency: metrics.NewLatencyHistogram(),
		}
		m.endpoints[path] = em
	}
	return em
}

// observe records one finished request.
func (em *endpointMetrics) observe(code int, seconds float64) {
	em.mu.Lock()
	c, ok := em.codes[code]
	if !ok {
		c = &metrics.Counter{}
		em.codes[code] = c
	}
	em.mu.Unlock()
	c.Inc()
	em.latency.Observe(seconds)
}

// planServed counts one plan handed out for the named strategy.
func (m *serverMetrics) planServed(strategy string) {
	m.mu.Lock()
	c, ok := m.plans[strategy]
	if !ok {
		c = &metrics.Counter{}
		m.plans[strategy] = c
	}
	m.mu.Unlock()
	c.Inc()
}

// tenant returns the per-tenant accumulator, creating it on first use.
func (m *serverMetrics) tenant(name string) *tenantMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	tm, ok := m.tenants[name]
	if !ok {
		tm = &tenantMetrics{
			rejects: make(map[string]*metrics.Counter),
			plans:   make(map[string]*metrics.Counter),
		}
		m.tenants[name] = tm
	}
	return tm
}

// tenantAdmit counts one ledger-debited plan for the tenant.
func (m *serverMetrics) tenantAdmit(name, strategy string) {
	tm := m.tenant(name)
	tm.admits.Inc()
	tm.mu.Lock()
	c, ok := tm.plans[strategy]
	if !ok {
		c = &metrics.Counter{}
		tm.plans[strategy] = c
	}
	tm.mu.Unlock()
	c.Inc()
}

// tenantReject counts one admission rejection with its structured reason.
func (m *serverMetrics) tenantReject(name, reason string) {
	tm := m.tenant(name)
	tm.mu.Lock()
	c, ok := tm.rejects[reason]
	if !ok {
		c = &metrics.Counter{}
		tm.rejects[reason] = c
	}
	tm.mu.Unlock()
	c.Inc()
}

// writeTenantLabeled renders one per-tenant counter family whose second
// label (reason, strategy, ...) keys the map sel selects, snapshotting each
// tenant's counts under its lock before printing.
func (m *serverMetrics) writeTenantLabeled(w io.Writer, metric, label string, tenantNames []string, sel func(*tenantMetrics) map[string]*metrics.Counter) {
	for _, name := range tenantNames {
		tm := m.tenant(name)
		tm.mu.Lock()
		byLabel := sel(tm)
		keys := make([]string, 0, len(byLabel))
		for k := range byLabel {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		counts := make(map[string]uint64, len(keys))
		for _, k := range keys {
			counts[k] = byLabel[k].Value()
		}
		tm.mu.Unlock()
		for _, k := range keys {
			fmt.Fprintf(w, "%s{tenant=%q,%s=%q} %d\n", metric, name, label, k, counts[k])
		}
	}
}

// writePeerLabeled renders one per-peer counter family, snapshotting the map
// under the metrics lock before printing.
func (m *serverMetrics) writePeerLabeled(w io.Writer, metric string, byPeer map[string]*metrics.Counter) {
	m.writePeerLabeledAs(w, metric, "peer", byPeer)
}

// writePeerLabeledAs is writePeerLabeled with the label name chosen by the
// caller (the escrow families key the same map shape by tenant).
func (m *serverMetrics) writePeerLabeledAs(w io.Writer, metric, label string, byKey map[string]*metrics.Counter) {
	m.mu.Lock()
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := make(map[string]uint64, len(keys))
	for _, k := range keys {
		counts[k] = byKey[k].Value()
	}
	m.mu.Unlock()
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", metric, label, k, counts[k])
	}
}

// writeTenantGauges renders one per-tenant gauge family from a snapshot map.
func writeTenantGauges(w io.Writer, metric string, byTenant map[string]float64) {
	names := make([]string, 0, len(byTenant))
	for n := range byTenant {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%s{tenant=%q} %g\n", metric, n, byTenant[n])
	}
}

// writePrometheus renders every metric in the text exposition format. The
// cache, tenant registry, ring view, and escrow manager are passed in so
// their gauges reflect live state (reg, rs, and esc may be nil when
// unconfigured).
func (m *serverMetrics) writePrometheus(w io.Writer, cache *planCache, reg *tenant.Registry, rs *ringState, esc *escrowManager) {
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.endpoints))
	for p := range m.endpoints {
		endpoints = append(endpoints, p)
	}
	sort.Strings(endpoints)
	strategies := make([]string, 0, len(m.plans))
	for s := range m.plans {
		strategies = append(strategies, s)
	}
	sort.Strings(strategies)
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP chronosd_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE chronosd_requests_total counter")
	for _, path := range endpoints {
		em := m.endpoint(path)
		em.mu.Lock()
		codes := make([]int, 0, len(em.codes))
		for c := range em.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		counts := make(map[int]uint64, len(codes))
		for _, c := range codes {
			counts[c] = em.codes[c].Value()
		}
		em.mu.Unlock()
		for _, c := range codes {
			fmt.Fprintf(w, "chronosd_requests_total{endpoint=%q,code=%q} %d\n",
				path, strconv.Itoa(c), counts[c])
		}
	}

	fmt.Fprintln(w, "# HELP chronosd_request_duration_seconds Request latency, by endpoint.")
	fmt.Fprintln(w, "# TYPE chronosd_request_duration_seconds histogram")
	for _, path := range endpoints {
		snap := m.endpoint(path).latency.Snapshot()
		for i, bound := range snap.Bounds {
			fmt.Fprintf(w, "chronosd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				path, strconv.FormatFloat(bound, 'g', -1, 64), snap.Cumulative[i])
		}
		fmt.Fprintf(w, "chronosd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n",
			path, snap.Count)
		fmt.Fprintf(w, "chronosd_request_duration_seconds_sum{endpoint=%q} %g\n", path, snap.Sum)
		fmt.Fprintf(w, "chronosd_request_duration_seconds_count{endpoint=%q} %d\n", path, snap.Count)
	}

	fmt.Fprintln(w, "# HELP chronosd_stage_seconds Per-request time in each hot-path stage.")
	fmt.Fprintln(w, "# TYPE chronosd_stage_seconds histogram")
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		snap := m.stageSeconds[s].Snapshot()
		stage := s.String()
		for i, bound := range snap.Bounds {
			fmt.Fprintf(w, "chronosd_stage_seconds_bucket{stage=%q,le=%q} %d\n",
				stage, strconv.FormatFloat(bound, 'g', -1, 64), snap.Cumulative[i])
		}
		fmt.Fprintf(w, "chronosd_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, snap.Count)
		fmt.Fprintf(w, "chronosd_stage_seconds_sum{stage=%q} %g\n", stage, snap.Sum)
		fmt.Fprintf(w, "chronosd_stage_seconds_count{stage=%q} %d\n", stage, snap.Count)
	}

	fmt.Fprintln(w, "# HELP chronosd_plans_total Plans served, by winning strategy.")
	fmt.Fprintln(w, "# TYPE chronosd_plans_total counter")
	for _, s := range strategies {
		m.mu.Lock()
		v := m.plans[s].Value()
		m.mu.Unlock()
		fmt.Fprintf(w, "chronosd_plans_total{strategy=%q} %d\n", s, v)
	}

	hits, misses := cache.stats()
	fmt.Fprintln(w, "# HELP chronosd_plan_cache_hits_total Plan cache hits.")
	fmt.Fprintln(w, "# TYPE chronosd_plan_cache_hits_total counter")
	fmt.Fprintf(w, "chronosd_plan_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP chronosd_plan_cache_misses_total Plan cache misses.")
	fmt.Fprintln(w, "# TYPE chronosd_plan_cache_misses_total counter")
	fmt.Fprintf(w, "chronosd_plan_cache_misses_total %d\n", misses)
	fmt.Fprintln(w, "# HELP chronosd_plan_cache_entries Plans currently cached.")
	fmt.Fprintln(w, "# TYPE chronosd_plan_cache_entries gauge")
	fmt.Fprintf(w, "chronosd_plan_cache_entries %d\n", cache.len())
	fmt.Fprintln(w, "# HELP chronosd_plan_singleflight_leaders_total Cold-miss solves run as singleflight leaders.")
	fmt.Fprintln(w, "# TYPE chronosd_plan_singleflight_leaders_total counter")
	fmt.Fprintf(w, "chronosd_plan_singleflight_leaders_total %d\n", m.flightLeaders.Value())
	fmt.Fprintln(w, "# HELP chronosd_plan_singleflight_waiters_total Cold misses that piggybacked on a concurrent identical solve.")
	fmt.Fprintln(w, "# TYPE chronosd_plan_singleflight_waiters_total counter")
	fmt.Fprintf(w, "chronosd_plan_singleflight_waiters_total %d\n", m.flightWaiters.Value())

	m.mu.Lock()
	tenantNames := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		tenantNames = append(tenantNames, name)
	}
	m.mu.Unlock()
	sort.Strings(tenantNames)

	fmt.Fprintln(w, "# HELP chronosd_tenant_admits_total Ledger-debited plans, by tenant.")
	fmt.Fprintln(w, "# TYPE chronosd_tenant_admits_total counter")
	for _, name := range tenantNames {
		fmt.Fprintf(w, "chronosd_tenant_admits_total{tenant=%q} %d\n",
			name, m.tenant(name).admits.Value())
	}

	fmt.Fprintln(w, "# HELP chronosd_tenant_rejects_total Admission rejections, by tenant and reason.")
	fmt.Fprintln(w, "# TYPE chronosd_tenant_rejects_total counter")
	m.writeTenantLabeled(w, "chronosd_tenant_rejects_total", "reason", tenantNames,
		func(tm *tenantMetrics) map[string]*metrics.Counter { return tm.rejects })

	fmt.Fprintln(w, "# HELP chronosd_tenant_plans_total Admitted plans, by tenant and strategy.")
	fmt.Fprintln(w, "# TYPE chronosd_tenant_plans_total counter")
	m.writeTenantLabeled(w, "chronosd_tenant_plans_total", "strategy", tenantNames,
		func(tm *tenantMetrics) map[string]*metrics.Counter { return tm.plans })

	fmt.Fprintln(w, "# HELP chronosd_tenant_budget_remaining Machine-seconds left in each pool.")
	fmt.Fprintln(w, "# TYPE chronosd_tenant_budget_remaining gauge")
	for _, p := range reg.Pools() {
		fmt.Fprintf(w, "chronosd_tenant_budget_remaining{tenant=%q} %g\n",
			p.Name(), p.Remaining())
	}

	if esc != nil {
		outstanding, leaseLevels := esc.escrowStats(reg)
		fmt.Fprintln(w, "# HELP chronosd_escrow_outstanding Machine-seconds escrowed in outstanding leases, by owned tenant.")
		fmt.Fprintln(w, "# TYPE chronosd_escrow_outstanding gauge")
		writeTenantGauges(w, "chronosd_escrow_outstanding", outstanding)
		fmt.Fprintln(w, "# HELP chronosd_escrow_lease_level Machine-seconds available in this replica's local leases, by tenant.")
		fmt.Fprintln(w, "# TYPE chronosd_escrow_lease_level gauge")
		writeTenantGauges(w, "chronosd_escrow_lease_level", leaseLevels)
		fmt.Fprintln(w, "# HELP chronosd_escrow_grants_total Escrow grants issued by this replica as pool owner, by tenant.")
		fmt.Fprintln(w, "# TYPE chronosd_escrow_grants_total counter")
		m.writePeerLabeledAs(w, "chronosd_escrow_grants_total", "tenant", m.escrowGrants)
		fmt.Fprintln(w, "# HELP chronosd_escrow_topups_total Lease top-ups performed by this replica as holder, by tenant.")
		fmt.Fprintln(w, "# TYPE chronosd_escrow_topups_total counter")
		m.writePeerLabeledAs(w, "chronosd_escrow_topups_total", "tenant", m.escrowTopups)
		fmt.Fprintln(w, "# HELP chronosd_escrow_reclaims_total Expired leases reclaimed by this replica as pool owner, by tenant.")
		fmt.Fprintln(w, "# TYPE chronosd_escrow_reclaims_total counter")
		m.writePeerLabeledAs(w, "chronosd_escrow_reclaims_total", "tenant", m.escrowReclaims)
		walFails, _ := esc.led.WALFailures()
		fmt.Fprintln(w, "# HELP chronosd_escrow_wal_append_failures_total Ledger records the WAL failed to persist; nonzero means recovery after a restart would resurrect spent budget.")
		fmt.Fprintln(w, "# TYPE chronosd_escrow_wal_append_failures_total counter")
		fmt.Fprintf(w, "chronosd_escrow_wal_append_failures_total %d\n", walFails)
	}

	fmt.Fprintln(w, "# HELP chronosd_replays_total Streaming replays started over /v1/replay.")
	fmt.Fprintln(w, "# TYPE chronosd_replays_total counter")
	fmt.Fprintf(w, "chronosd_replays_total %d\n", m.replaysStarted.Value())
	fmt.Fprintln(w, "# HELP chronosd_replays_active Replay streams currently open.")
	fmt.Fprintln(w, "# TYPE chronosd_replays_active gauge")
	fmt.Fprintf(w, "chronosd_replays_active %d\n", m.replaysActive.Load())
	fmt.Fprintln(w, "# HELP chronosd_replay_jobs_total Jobs replayed to completion over /v1/replay.")
	fmt.Fprintln(w, "# TYPE chronosd_replay_jobs_total counter")
	fmt.Fprintf(w, "chronosd_replay_jobs_total %d\n", m.replayJobs.Value())
	fmt.Fprintln(w, "# HELP chronosd_replay_events_total NDJSON events emitted over /v1/replay.")
	fmt.Fprintln(w, "# TYPE chronosd_replay_events_total counter")
	fmt.Fprintf(w, "chronosd_replay_events_total %d\n", m.replayEvents.Value())

	fmt.Fprintln(w, "# HELP chronosd_ring_nodes Replicas in the consistent-hash ring (0 = sharding off).")
	fmt.Fprintln(w, "# TYPE chronosd_ring_nodes gauge")
	nodes := 0
	if rs != nil {
		nodes = rs.ring.Len()
	}
	fmt.Fprintf(w, "chronosd_ring_nodes %d\n", nodes)
	if rs != nil {
		fmt.Fprintln(w, "# HELP chronosd_ring_owned_fraction Fraction of the plan keyspace this replica owns.")
		fmt.Fprintln(w, "# TYPE chronosd_ring_owned_fraction gauge")
		fmt.Fprintf(w, "chronosd_ring_owned_fraction %g\n", rs.ring.OwnedFraction(rs.self))
	}
	fmt.Fprintln(w, "# HELP chronosd_ring_forwarded_total Requests proxied to the owning replica, by peer.")
	fmt.Fprintln(w, "# TYPE chronosd_ring_forwarded_total counter")
	m.writePeerLabeled(w, "chronosd_ring_forwarded_total", m.ringForwards)
	fmt.Fprintln(w, "# HELP chronosd_ring_peer_errors_total Failed forward attempts, by peer.")
	fmt.Fprintln(w, "# TYPE chronosd_ring_peer_errors_total counter")
	m.writePeerLabeled(w, "chronosd_ring_peer_errors_total", m.ringErrors)
	fmt.Fprintln(w, "# HELP chronosd_ring_local_fallbacks_total Non-owned keys computed locally because the owner was unreachable.")
	fmt.Fprintln(w, "# TYPE chronosd_ring_local_fallbacks_total counter")
	fmt.Fprintf(w, "chronosd_ring_local_fallbacks_total %d\n", m.ringLocalFallbacks.Value())
	fmt.Fprintln(w, "# HELP chronosd_ring_received_forwards_total Requests served under the single-hop forwarding guard.")
	fmt.Fprintln(w, "# TYPE chronosd_ring_received_forwards_total counter")
	fmt.Fprintf(w, "chronosd_ring_received_forwards_total %d\n", m.ringReceivedForwards.Value())
	fmt.Fprintln(w, "# HELP chronosd_ring_heartbeat_failures_total Failed liveness probes, by configured member.")
	fmt.Fprintln(w, "# TYPE chronosd_ring_heartbeat_failures_total counter")
	m.writePeerLabeled(w, "chronosd_ring_heartbeat_failures_total", m.ringHeartbeatFails)
	fmt.Fprintln(w, "# HELP chronosd_ring_evictions_total Members evicted from this replica's effective ring by the health monitor.")
	fmt.Fprintln(w, "# TYPE chronosd_ring_evictions_total counter")
	fmt.Fprintf(w, "chronosd_ring_evictions_total %d\n", m.ringEvictions.Value())
	fmt.Fprintln(w, "# HELP chronosd_ring_readmits_total Suspected members re-admitted after recovery.")
	fmt.Fprintln(w, "# TYPE chronosd_ring_readmits_total counter")
	fmt.Fprintf(w, "chronosd_ring_readmits_total %d\n", m.ringReadmits.Value())
	fmt.Fprintln(w, "# HELP chronosd_ring_replica_reads_total Plan-keyed requests answered from a replica copy while the owner was unreachable.")
	fmt.Fprintln(w, "# TYPE chronosd_ring_replica_reads_total counter")
	fmt.Fprintf(w, "chronosd_ring_replica_reads_total %d\n", m.ringReplicaReads.Value())
	fmt.Fprintln(w, "# HELP chronosd_ring_handoff_entries_total Cache entries streamed to their new owners on membership changes.")
	fmt.Fprintln(w, "# TYPE chronosd_ring_handoff_entries_total counter")
	fmt.Fprintf(w, "chronosd_ring_handoff_entries_total %d\n", m.ringHandoffEntries.Value())

	fmt.Fprintln(w, "# HELP chronosd_response_encode_failures_total Responses whose JSON encoding failed (answered as HTTP 500).")
	fmt.Fprintln(w, "# TYPE chronosd_response_encode_failures_total counter")
	fmt.Fprintf(w, "chronosd_response_encode_failures_total %d\n", m.encodeFailures.Value())

	fmt.Fprintln(w, "# HELP chronosd_uptime_seconds Seconds since the server started.")
	fmt.Fprintln(w, "# TYPE chronosd_uptime_seconds gauge")
	fmt.Fprintf(w, "chronosd_uptime_seconds %g\n", time.Since(m.start).Seconds())
}
