// Package plankey owns the canonical plan-key format: the quantized string
// that identifies one optimization request across the whole fleet. The
// serving layer keys its sharded plan cache and its consistent-hash ring
// with it, and the client package hashes it locally to route requests
// straight to the owning replica — both sides must build byte-identical
// keys, which is why the format lives in one package instead of two.
package plankey

import (
	"fmt"
	"strings"

	"chronos"
)

// Key builds the plan key for one optimization request. Floats are
// quantized to six significant digits, so jobs whose parameters differ only
// in measurement noise below that resolution share a plan — the point of
// the plan cache: schedulers see streams of near-identical jobs (same
// benchmark, same SLA tier) and Algorithm 1 is invariant under sub-ppm
// perturbations. strategy is the canonical strategy component from
// CanonicalStrategy ("" for best-of-three planning).
func Key(strategy string, p chronos.JobParams, e chronos.Econ) string {
	return fmt.Sprintf("%s|%d|%.6g|%.6g|%.6g|%.6g|%.6g|%.6g|%.6g|%.6g|%.6g",
		strategy, p.Tasks, p.Deadline, p.TMin, p.Beta, p.TauEst, p.TauKill,
		p.PhiEst, e.Theta, e.UnitPrice, e.RMin)
}

// CanonicalStrategy maps a request's strategy selector — empty or "best"
// for best-of-three, otherwise a strategy name in any case — onto the key's
// strategy component. ok is false for unparseable names.
func CanonicalStrategy(name string) (canonical string, ok bool) {
	name = strings.TrimSpace(name)
	if name == "" || strings.EqualFold(name, "best") {
		return "", true
	}
	s, err := chronos.ParseStrategy(name)
	if err != nil {
		return "", false
	}
	return s.String(), true
}
