package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"

	"chronos"
)

func TestPlanKeyQuantization(t *testing.T) {
	base := testJob()
	econ := testEcon()

	jittered := base
	jittered.Deadline = base.Deadline * (1 + 1e-9) // sub-quantum measurement noise
	if planKey("", base, econ) != planKey("", jittered, econ) {
		t.Error("sub-quantum jitter should map to the same cache key")
	}

	different := base
	different.Deadline = base.Deadline * 1.01
	if planKey("", base, econ) == planKey("", different, econ) {
		t.Error("1% deadline change should map to a different cache key")
	}

	otherEcon := econ
	otherEcon.Theta = econ.Theta * 10
	if planKey("", base, econ) == planKey("", base, otherEcon) {
		t.Error("10x theta change should map to a different cache key")
	}

	if planKey("Clone", base, econ) == planKey("", base, econ) {
		t.Error("pinned and best-of-three plans must not share keys")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newPlanCache(1, 2) // single shard, capacity 2
	plan := chronos.Plan{Strategy: chronos.Clone, R: 1}
	c.put("a", plan)
	c.put("b", plan)
	if _, ok := c.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a should be cached")
	}
	c.put("c", plan)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a was refreshed and should survive")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c was just inserted and should be cached")
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newPlanCache(4, -1)
	if c != nil {
		t.Fatal("negative capacity should disable the cache")
	}
	c.put("k", chronos.Plan{})
	if _, ok := c.get("k"); ok {
		t.Error("disabled cache should never hit")
	}
	if c.len() != 0 {
		t.Error("disabled cache should be empty")
	}
}

// TestCacheConcurrentStress hammers every shard from many goroutines; run
// under -race it validates the locking discipline.
func TestCacheConcurrentStress(t *testing.T) {
	c := newPlanCache(8, 128)
	const goroutines = 16
	const opsPerG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				key := fmt.Sprintf("job-%d", (g*opsPerG+i)%200)
				if i%3 == 0 {
					c.put(key, chronos.Plan{Strategy: chronos.Clone, R: i % 8})
				} else {
					c.get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.len(); got > 128 {
		t.Errorf("cache holds %d entries, capacity 128", got)
	}
	hits, misses := c.stats()
	// Per goroutine, i%3 == 0 holds for 167 of the 500 ops (puts); the
	// other 333 are gets.
	wantGets := uint64(goroutines * 333)
	if hits+misses != wantGets {
		t.Errorf("hits %d + misses %d = %d, want %d gets", hits, misses, hits+misses, wantGets)
	}
}

// TestPlanHandlerConcurrent drives the full handler stack from many
// goroutines against a handful of distinct jobs; under -race this covers
// the cache, pool, and metrics paths end to end.
func TestPlanHandlerConcurrent(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheShards: 4, CacheCapacity: 64})
	const goroutines = 8
	const requestsPerG = 25
	bodies := make([][]byte, 5)
	for i := range bodies {
		job := testJob()
		job.Deadline = 100 + float64(i)*10
		raw, err := json.Marshal(planRequest{Job: job, Econ: testEcon()})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = raw
	}
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requestsPerG; i++ {
				resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
					bytes.NewReader(bodies[(g+i)%len(bodies)]))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	hits, misses, entries := srv.CacheStats()
	total := uint64(goroutines * requestsPerG)
	if hits+misses != total {
		t.Errorf("hits %d + misses %d != %d requests", hits, misses, total)
	}
	// All but the first-arrival races should hit: 5 distinct jobs.
	if hits < total-20 {
		t.Errorf("only %d/%d cache hits for 5 distinct jobs", hits, total)
	}
	if entries != 5 {
		t.Errorf("cache entries = %d, want 5", entries)
	}
}

// TestBatchHandlerConcurrent exercises the worker-pool fan-out under -race.
func TestBatchHandlerConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	jobs := make([]batchJobRequest, 16)
	for i := range jobs {
		job := testJob()
		job.Tasks = 5 + i
		jobs[i] = batchJobRequest{Job: job}
	}
	raw, err := json.Marshal(batchRequest{Jobs: jobs, Budget: 100000, Econ: testEcon()})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/plan/batch", "application/json",
				bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d, want 200", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
}

// TestServeGraceful verifies Serve drains and returns nil when the context
// is cancelled.
func TestServeGraceful(t *testing.T) {
	s := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	if err := <-done; err != nil {
		t.Errorf("Serve returned %v after graceful shutdown, want nil", err)
	}
}
