package speculate

import (
	"math"
	"testing"

	"chronos/internal/analysis"
	"chronos/internal/cluster"
	"chronos/internal/mapreduce"
	"chronos/internal/pareto"
	"chronos/internal/sim"
)

// TestConservationInvariants checks the accounting identities that must
// hold for every strategy on every run:
//
//  1. job machine time equals the sum of its attempts' occupancy;
//  2. the cluster meter equals the sum of job machine times;
//  3. no attempt ends before it launches, and every attempt reaches a
//     terminal state;
//  4. exactly one attempt finishes per task (without
//     KillSiblingsOnFinish, others may finish late but the task records
//     the first);
//  5. task and job finish times are consistent.
func TestConservationInvariants(t *testing.T) {
	strategies := []mapreduce.Strategy{
		HadoopNS{}, HadoopS{}, Mantri{}, LATE{},
		Clone{Config: chronosCfg()}, Restart{Config: chronosCfg()}, Resume{Config: chronosCfg()},
	}
	for _, strat := range strategies {
		eng := sim.NewEngine()
		cl, err := cluster.New(eng, cluster.Config{
			Nodes: 8, SlotsPerNode: 4, // deliberately tight: queueing happens
			Contention: cluster.HotspotContention{P: 0.3, Mean: 2},
			Seed:       7,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt := mapreduce.NewRuntime(eng, cl, mapreduce.Config{Seed: 7})
		var jobs []*mapreduce.Job
		for i := 0; i < 20; i++ {
			spec := baseSpec()
			spec.ID = i
			spec.Arrival = float64(i) * 50 // overlapping jobs
			job, err := rt.Submit(spec, strat)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job)
		}
		eng.Run()

		var totalMachine float64
		for _, job := range jobs {
			if !job.Done {
				t.Fatalf("%s: job %d incomplete", strat.Name(), job.Spec.ID)
			}
			var jobSum float64
			for _, task := range job.Tasks {
				if !task.Done {
					t.Fatalf("%s: task not done in done job", strat.Name())
				}
				finishes := 0
				var firstFinish float64 = math.Inf(1)
				for _, a := range task.Attempts {
					switch a.State {
					case mapreduce.AttemptQueued, mapreduce.AttemptRunning:
						t.Errorf("%s: attempt still %v after drain", strat.Name(), a.State)
					case mapreduce.AttemptFinished:
						finishes++
						if a.EndTime < firstFinish {
							firstFinish = a.EndTime
						}
					}
					// Attempts that actually ran have a sampled intrinsic
					// time; killed-while-queued ones never consumed a
					// container.
					if a.Intrinsic > 0 {
						if a.EndTime < a.LaunchTime-1e-9 {
							t.Errorf("%s: attempt ended %v before launch %v",
								strat.Name(), a.EndTime, a.LaunchTime)
						}
						jobSum += a.EndTime - a.LaunchTime
					}
				}
				if finishes == 0 {
					t.Errorf("%s: task completed without a finished attempt", strat.Name())
				}
				if math.Abs(task.FinishTime-firstFinish) > 1e-9 {
					t.Errorf("%s: task finish %v != first attempt finish %v",
						strat.Name(), task.FinishTime, firstFinish)
				}
				if task.FinishTime > job.FinishTime+1e-9 {
					t.Errorf("%s: task finished %v after job %v",
						strat.Name(), task.FinishTime, job.FinishTime)
				}
			}
			// Killed-while-queued attempts never ran; they contribute zero.
			if math.Abs(job.MachineTime-jobSum) > 1e-6 {
				t.Errorf("%s: job machine time %v, attempt sum %v",
					strat.Name(), job.MachineTime, jobSum)
			}
			totalMachine += job.MachineTime
		}
		if meter := cl.Meter().MachineTime(); math.Abs(meter-totalMachine) > 1e-6 {
			t.Errorf("%s: cluster meter %v, job sum %v", strat.Name(), meter, totalMachine)
		}
		if cl.InUse() != 0 {
			t.Errorf("%s: %d containers leaked", strat.Name(), cl.InUse())
		}
	}
}

// TestWaveBoundAgainstDES validates the multi-wave analytic bound: the
// synchronized-wave PoCD approximation is a lower bound, because the real
// (simulated) cluster overlaps waves as slots free up task by task.
func TestWaveBoundAgainstDES(t *testing.T) {
	const (
		tasks = 40
		slots = 40 // Clone at r=1 needs 80 => 2 synchronized waves
		r     = 1
		jobs  = 300
	)
	p := analysis.Params{
		N:        tasks,
		Deadline: 400,
		Task:     pareto.MustNew(10, 1.5),
		TauEst:   60,
		TauKill:  120,
	}
	wave, err := analysis.NewWaveModel(analysis.Clone{P: p}, slots)
	if err != nil {
		t.Fatal(err)
	}
	bound := wave.PoCD(r)

	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: slots, SlotsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt := mapreduce.NewRuntime(eng, cl, mapreduce.Config{Seed: 5})
	cfg := ChronosConfig{TauEst: p.TauEst, TauKill: p.TauKill, FixedR: r}
	var sims []*mapreduce.Job
	for i := 0; i < jobs; i++ {
		spec := mapreduce.JobSpec{
			ID: i, Name: "wave", NumTasks: tasks, Deadline: p.Deadline,
			Dist: p.Task, SplitBytes: 1 << 20, UnitPrice: 1,
			Arrival: float64(i) * p.Deadline * 10,
		}
		job, err := rt.Submit(spec, Clone{Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		sims = append(sims, job)
	}
	eng.Run()

	met := 0
	for _, j := range sims {
		if !j.Done {
			t.Fatal("wave job incomplete")
		}
		if j.MetDeadline() {
			met++
		}
	}
	des := float64(met) / jobs
	// The DES overlaps waves, so it should meet at least the synchronized
	// bound (minus MC noise).
	if des < bound-0.05 {
		t.Errorf("DES PoCD %v below synchronized-wave bound %v", des, bound)
	}
}

// TestPlanSlotsUsesWaveModel checks wave-aware planning: with PlanSlots
// set, the chosen r must be near-optimal for the slot-constrained
// (WaveModel) utility, not the unconstrained one. Note the wave model can
// legitimately pick a *larger* r than the unconstrained plan: several short
// waves of heavily-replicated tasks can beat one long wave of single
// attempts.
func TestPlanSlotsUsesWaveModel(t *testing.T) {
	spec := baseSpec()
	spec.NumTasks = 40
	spec.Deadline = 120

	cfg := chronosCfg()
	cfg.TauEst, cfg.TauKill = 20, 40
	cfg.PlanSlots = 40
	got := cfg.chooseR(analysis.StrategyClone, spec)

	inner := analysis.Clone{P: analysis.Params{
		N: spec.NumTasks, Deadline: spec.Deadline, Task: spec.Dist,
		TauEst: cfg.TauEst, TauKill: cfg.TauKill,
	}}
	wave, err := analysis.NewWaveModel(inner, cfg.PlanSlots)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := cfg.Opt
	ocfg.UnitPrice = spec.UnitPrice
	bestU, bestR := math.Inf(-1), -1
	for r := 0; r <= 30; r++ {
		if u := ocfg.Utility(wave, r); u > bestU {
			bestU, bestR = u, r
		}
	}
	// The wave utility is not globally unimodal (wave-count steps), so the
	// hybrid optimizer may land on a local plateau; accept anything within
	// a small utility gap of the brute-force optimum.
	if gotU := ocfg.Utility(wave, got); gotU < bestU-0.05 {
		t.Errorf("slot-aware choice r=%d (U=%v) far from brute-force r=%d (U=%v)",
			got, gotU, bestR, bestU)
	}
}
