// Package chronos is a Go implementation of "Chronos: A Unifying
// Optimization Framework for Speculative Execution of Deadline-critical
// MapReduce Jobs" (Xu, Alamro, Lan, Subramaniam — ICDCS 2018).
//
// Chronos mitigates straggler tasks in deadline-critical MapReduce jobs by
// launching speculative or clone task attempts, and — unlike LATE, Mantri,
// or default Hadoop speculation — chooses how many attempts to launch by
// solving a joint optimization of the Probability of Completion before
// Deadline (PoCD) against the machine-time cost of the extra attempts.
//
// The package exposes three layers:
//
//   - Analytics: closed-form PoCD and expected machine time for the Clone,
//     Speculative-Restart, and Speculative-Resume strategies under Pareto
//     task times (Theorems 1-6 of the paper), via PoCD and ExpectedMachineTime.
//   - Optimization: the net-utility maximization U(r) = log10(R(r)-Rmin) -
//     theta*C*E(T) solved exactly by Algorithm 1, via Optimize, OptimizeBest,
//     MinCostForPoCD, and TradeoffCurve.
//   - Simulation: a discrete-event MapReduce cluster that executes job
//     streams under any of the seven strategies (the three Chronos
//     strategies plus the Hadoop-NS, Hadoop-S, Mantri, and LATE baselines),
//     via Simulate, Benchmarks, and SyntheticTrace.
package chronos

import (
	"errors"
	"fmt"

	"chronos/internal/analysis"
	"chronos/internal/optimize"
	"chronos/internal/pareto"
)

// Strategy selects a speculation policy.
type Strategy int

// The seven policies: three Chronos strategies and four baselines.
const (
	// Clone proactively launches r+1 attempts of every task at submission.
	Clone Strategy = iota + 1
	// SpeculativeRestart launches r from-scratch attempts for each detected
	// straggler at tauEst.
	SpeculativeRestart
	// SpeculativeResume kills each detected straggler and launches r+1
	// attempts resuming from the last processed byte offset.
	SpeculativeResume
	// HadoopNS is default Hadoop without speculation.
	HadoopNS
	// HadoopS is default Hadoop speculation.
	HadoopS
	// Mantri is the OSDI'10 outlier-mitigation baseline.
	Mantri
	// LATE is the OSDI'08 Longest-Approximate-Time-to-End baseline.
	LATE
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Clone:
		return "Clone"
	case SpeculativeRestart:
		return "Speculative-Restart"
	case SpeculativeResume:
		return "Speculative-Resume"
	case HadoopNS:
		return "Hadoop-NS"
	case HadoopS:
		return "Hadoop-S"
	case Mantri:
		return "Mantri"
	case LATE:
		return "LATE"
	default:
		return "Unknown"
	}
}

// ChronosStrategies returns the three analytically optimizable strategies.
func ChronosStrategies() []Strategy {
	return []Strategy{Clone, SpeculativeRestart, SpeculativeResume}
}

// ErrNotAnalytic reports a strategy without closed-form PoCD/cost models
// (the baselines are simulation-only).
var ErrNotAnalytic = errors.New("chronos: strategy has no closed-form model; use Simulate")

// JobParams describes one job for the analytic layer: N parallel tasks with
// i.i.d. Pareto(TMin, Beta) attempt execution times and a deadline D.
type JobParams struct {
	// Tasks is the number of parallel tasks N.
	Tasks int `json:"tasks"`
	// Deadline is D, in seconds from job start.
	Deadline float64 `json:"deadline"`
	// TMin and Beta are the Pareto scale and tail index of a single
	// attempt's execution time. Beta must exceed 1 (finite mean).
	TMin float64 `json:"tmin"`
	Beta float64 `json:"beta"`
	// TauEst is the straggler-detection instant (ignored by Clone).
	TauEst float64 `json:"tauEst"`
	// TauKill is the attempt-pruning instant.
	TauKill float64 `json:"tauKill"`
	// PhiEst is the expected progress of a straggler at TauEst; zero means
	// "derive from the model" (see analysis.Params.DefaultPhiEst).
	PhiEst float64 `json:"phiEst,omitempty"`
}

// Econ carries the economic parameters of the joint optimization.
type Econ struct {
	// Theta is the PoCD/cost tradeoff factor (>0).
	Theta float64 `json:"theta"`
	// UnitPrice is the VM price C per unit machine time (>0).
	UnitPrice float64 `json:"unitPrice"`
	// RMin is the minimum acceptable PoCD; utility is -Inf below it.
	RMin float64 `json:"rmin,omitempty"`
}

// Plan is an optimized speculation configuration.
type Plan struct {
	// Strategy is the planned policy.
	Strategy Strategy `json:"strategy"`
	// R is the optimal number of extra attempts.
	R int `json:"r"`
	// PoCD, MachineTime, Cost and Utility evaluate the plan.
	PoCD        float64 `json:"pocd"`
	MachineTime float64 `json:"machineTime"`
	Cost        float64 `json:"cost"`
	Utility     float64 `json:"utility"`
}

// TradeoffPoint is one sample of the PoCD/cost frontier.
type TradeoffPoint struct {
	R           int     `json:"r"`
	PoCD        float64 `json:"pocd"`
	MachineTime float64 `json:"machineTime"`
	Cost        float64 `json:"cost"`
	Utility     float64 `json:"utility"`
}

// toAnalysis converts the public params to the internal model, validating.
func (p JobParams) toAnalysis() (analysis.Params, error) {
	dist, err := pareto.New(p.TMin, p.Beta)
	if err != nil {
		return analysis.Params{}, err
	}
	ap := analysis.Params{
		N:        p.Tasks,
		Deadline: p.Deadline,
		Task:     dist,
		TauEst:   p.TauEst,
		TauKill:  p.TauKill,
		PhiEst:   p.PhiEst,
	}
	if err := ap.Validate(); err != nil {
		return analysis.Params{}, err
	}
	return ap, nil
}

// analyticKind maps public strategies onto internal analytic models.
func analyticKind(s Strategy) (analysis.Strategy, error) {
	switch s {
	case Clone:
		return analysis.StrategyClone, nil
	case SpeculativeRestart:
		return analysis.StrategyRestart, nil
	case SpeculativeResume:
		return analysis.StrategyResume, nil
	default:
		return 0, fmt.Errorf("%w: %v", ErrNotAnalytic, s)
	}
}

// PoCD returns the closed-form probability that the job completes before
// its deadline when the strategy uses r extra attempts (Theorems 1, 3, 5).
func PoCD(s Strategy, p JobParams, r int) (float64, error) {
	kind, err := analyticKind(s)
	if err != nil {
		return 0, err
	}
	ap, err := p.toAnalysis()
	if err != nil {
		return 0, err
	}
	if r < 0 {
		return 0, fmt.Errorf("chronos: negative r %d", r)
	}
	return analysis.NewModel(kind, ap).PoCD(r), nil
}

// ExpectedMachineTime returns the closed-form expected total machine
// running time of the job (Theorems 2, 4, 6).
func ExpectedMachineTime(s Strategy, p JobParams, r int) (float64, error) {
	kind, err := analyticKind(s)
	if err != nil {
		return 0, err
	}
	ap, err := p.toAnalysis()
	if err != nil {
		return 0, err
	}
	if r < 0 {
		return 0, fmt.Errorf("chronos: negative r %d", r)
	}
	return analysis.NewModel(kind, ap).MachineTime(r), nil
}

// Optimize solves the joint PoCD/cost optimization (Algorithm 1) for one
// strategy and returns the globally optimal plan.
func Optimize(s Strategy, p JobParams, e Econ) (Plan, error) {
	kind, err := analyticKind(s)
	if err != nil {
		return Plan{}, err
	}
	ap, err := p.toAnalysis()
	if err != nil {
		return Plan{}, err
	}
	res, err := optimize.SolveStrategy(kind, ap, optimize.Config(e))
	if err != nil {
		return Plan{}, err
	}
	return planFromResult(s, res), nil
}

// OptimizeBest optimizes all three Chronos strategies and returns the one
// with the highest net utility.
func OptimizeBest(p JobParams, e Econ) (Plan, error) {
	best := Plan{}
	found := false
	for _, s := range ChronosStrategies() {
		plan, err := Optimize(s, p, e)
		if err != nil {
			if errors.Is(err, optimize.ErrInfeasible) {
				continue
			}
			return Plan{}, err
		}
		if !found || plan.Utility > best.Utility {
			best, found = plan, true
		}
	}
	if !found {
		return Plan{}, optimize.ErrInfeasible
	}
	return best, nil
}

// OptimizeWithinBudget solves the joint optimization for one strategy
// subject to an expected-machine-time cap — the admission-control form of
// Algorithm 1, where an arriving job may only spend what its tenant's
// ledger still holds. Returns ErrInfeasible when no r reaches PoCD above
// RMin regardless of budget, and ErrBudgetTooSmall (both from the optimize
// package) when feasible plans exist but none fits the budget.
func OptimizeWithinBudget(s Strategy, p JobParams, e Econ, budget float64) (Plan, error) {
	kind, err := analyticKind(s)
	if err != nil {
		return Plan{}, err
	}
	ap, err := p.toAnalysis()
	if err != nil {
		return Plan{}, err
	}
	res, err := optimize.SolveCappedStrategy(kind, ap, optimize.Config(e), budget)
	if err != nil {
		return Plan{}, err
	}
	return planFromResult(s, res), nil
}

// OptimizeBestWithinBudget runs OptimizeWithinBudget for all three Chronos
// strategies and returns the affordable plan with the highest net utility.
// When every strategy fails, ErrBudgetTooSmall is preferred over
// ErrInfeasible if any strategy was merely unaffordable (a bigger budget
// would have admitted it).
func OptimizeBestWithinBudget(p JobParams, e Econ, budget float64) (Plan, error) {
	best := Plan{}
	found, sawBudget := false, false
	for _, s := range ChronosStrategies() {
		plan, err := OptimizeWithinBudget(s, p, e, budget)
		switch {
		case errors.Is(err, optimize.ErrBudgetTooSmall):
			sawBudget = true
			continue
		case errors.Is(err, optimize.ErrInfeasible):
			continue
		case err != nil:
			return Plan{}, err
		}
		if !found || plan.Utility > best.Utility {
			best, found = plan, true
		}
	}
	if !found {
		if sawBudget {
			return Plan{}, optimize.ErrBudgetTooSmall
		}
		return Plan{}, optimize.ErrInfeasible
	}
	return best, nil
}

// MinCostForPoCD returns the cheapest plan for the strategy that reaches
// the PoCD target — the "budget for a desired SLA" direction of the
// tradeoff.
func MinCostForPoCD(s Strategy, p JobParams, e Econ, target float64) (Plan, error) {
	kind, err := analyticKind(s)
	if err != nil {
		return Plan{}, err
	}
	ap, err := p.toAnalysis()
	if err != nil {
		return Plan{}, err
	}
	res, err := optimize.MinCostForPoCD(analysis.NewModel(kind, ap), optimize.Config(e), target)
	if err != nil {
		return Plan{}, err
	}
	return planFromResult(s, res), nil
}

// TradeoffCurve samples the PoCD/cost frontier for r = 0..maxR.
func TradeoffCurve(s Strategy, p JobParams, e Econ, maxR int) ([]TradeoffPoint, error) {
	kind, err := analyticKind(s)
	if err != nil {
		return nil, err
	}
	ap, err := p.toAnalysis()
	if err != nil {
		return nil, err
	}
	pts := optimize.CurveStrategy(kind, ap, optimize.Config(e), maxR)
	out := make([]TradeoffPoint, len(pts))
	for i, pt := range pts {
		out[i] = TradeoffPoint{
			R: pt.R, PoCD: pt.PoCD, MachineTime: pt.MachineTime,
			Cost: pt.Cost, Utility: pt.Utility,
		}
	}
	return out, nil
}

func planFromResult(s Strategy, res optimize.Result) Plan {
	return Plan{
		Strategy:    s,
		R:           res.R,
		PoCD:        res.PoCD,
		MachineTime: res.MachineTime,
		Cost:        res.Cost,
		Utility:     res.Utility,
	}
}

// CompletionCDF returns P(job completes by t) for the strategy with r extra
// attempts — the full completion-time distribution behind the PoCD point
// value.
func CompletionCDF(s Strategy, p JobParams, r int, t float64) (float64, error) {
	kind, err := analyticKind(s)
	if err != nil {
		return 0, err
	}
	ap, err := p.toAnalysis()
	if err != nil {
		return 0, err
	}
	return analysis.CompletionCDF(analysis.NewModel(kind, ap), r, t), nil
}

// DeadlineQuantile returns the tightest deadline the strategy can promise
// with probability target using r extra attempts — the SLA-quoting
// direction of the model ("what D can I sign at the 99.9th percentile?").
func DeadlineQuantile(s Strategy, p JobParams, r int, target float64) (float64, error) {
	kind, err := analyticKind(s)
	if err != nil {
		return 0, err
	}
	ap, err := p.toAnalysis()
	if err != nil {
		return 0, err
	}
	return analysis.DeadlineForPoCD(analysis.NewModel(kind, ap), r, target), nil
}

// BatchJob pairs a job with its strategy for shared-budget planning.
type BatchJob struct {
	// Strategy must be one of the three Chronos strategies.
	Strategy Strategy `json:"strategy"`
	// Params describes the job.
	Params JobParams `json:"params"`
	// RMin is the job's minimum acceptable PoCD.
	RMin float64 `json:"rmin,omitempty"`
}

// BatchPlan is the allocation for one batch job.
type BatchPlan struct {
	// R is the number of extra attempts granted to the job.
	R int `json:"r"`
	// PoCD and MachineTime evaluate the grant.
	PoCD        float64 `json:"pocd"`
	MachineTime float64 `json:"machineTime"`
}

// PlanBatch allocates a shared machine-time budget across M concurrent jobs
// (the paper's multi-job setting, Section III): it greedily grants extra
// attempts where they buy the most log-PoCD per machine-second, stopping at
// the budget. Returns ErrBudgetTooSmall (from the optimize package) when the
// budget cannot even cover r=0 for every job.
func PlanBatch(jobs []BatchJob, budget float64) ([]BatchPlan, error) {
	batch := make([]optimize.BatchJob, len(jobs))
	for i, j := range jobs {
		kind, err := analyticKind(j.Strategy)
		if err != nil {
			return nil, err
		}
		ap, err := j.Params.toAnalysis()
		if err != nil {
			return nil, err
		}
		batch[i] = optimize.BatchJob{Model: analysis.NewModel(kind, ap), RMin: j.RMin}
	}
	results, err := optimize.BatchSolve(batch, budget)
	if err != nil {
		return nil, err
	}
	out := make([]BatchPlan, len(results))
	for i, r := range results {
		out[i] = BatchPlan{R: r.R, PoCD: r.PoCD, MachineTime: r.MachineTime}
	}
	return out, nil
}
