// Package trace provides the trace-driven-simulation substrate of the
// paper's large-scale evaluation: a synthetic generator of Google-trace-like
// MapReduce job streams, Pareto fitting of empirical task-time samples, and
// an EC2-like spot-price series.
//
// Substitution note (see DESIGN.md): the paper replays 30 hours of the 2011
// Google cluster trace (2700 jobs, ~1M tasks), extracting per job only the
// start time, task count, and an execution-time distribution it then
// re-samples as Pareto. The synthetic generator below emits exactly that
// tuple stream with the published shape characteristics — Poisson-ish
// arrivals, heavy-tailed task counts, per-job Pareto parameters — so every
// downstream code path (per-job optimization, strategy simulation, cost
// accounting against spot prices) is exercised identically.
package trace

import (
	"fmt"
	"math"
	"sort"

	"chronos/internal/pareto"
)

// JobRecord is one job extracted from (or generated in place of) the trace:
// the tuple the paper's simulator consumes.
type JobRecord struct {
	// ID is the trace job identifier.
	ID int
	// Arrival is the submission time in seconds from trace start.
	Arrival float64
	// NumTasks is the job's task count.
	NumTasks int
	// Dist is the fitted per-attempt execution time distribution.
	Dist pareto.Dist
	// Deadline is the job deadline in seconds after arrival.
	Deadline float64
}

// GeneratorConfig shapes the synthetic trace.
type GeneratorConfig struct {
	// Jobs is the number of jobs to generate (2700 in the paper's run).
	Jobs int
	// Horizon is the arrival window in seconds (30 h in the paper's run).
	Horizon float64
	// MinTasks/MaxTasks bound the per-job task count; counts are drawn
	// log-uniformly, giving the heavy-tailed job-size mix of the Google
	// trace.
	MinTasks, MaxTasks int
	// TMinLow/TMinHigh bound the per-job Pareto scale (uniform draw).
	TMinLow, TMinHigh float64
	// BetaLow/BetaHigh bound the per-job Pareto tail index (uniform draw);
	// the paper's measurements give beta < 2.
	BetaLow, BetaHigh float64
	// DeadlineRatio sets Deadline = ratio * mean task execution time
	// (the Figure 4 simulations use 2).
	DeadlineRatio float64
	// Seed drives all draws.
	Seed uint64
}

// DefaultGeneratorConfig mirrors the paper's simulation at 1/10 scale: 270
// jobs over 3 hours. Scale Jobs and Horizon together to reach the full
// 2700-job run.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Jobs:     270,
		Horizon:  3 * 3600,
		MinTasks: 5,
		MaxTasks: 2000,
		// TMinLow stays above the JVM-startup scale (1-3 s) so that
		// tau instants expressed as fractions of tmin land after the
		// first progress reports, as on the paper's testbed where
		// tmin >> JVM delay.
		TMinLow:       15,
		TMinHigh:      50,
		BetaLow:       1.1,
		BetaHigh:      1.9,
		DeadlineRatio: 2,
		Seed:          1,
	}
}

// Validate reports configuration errors.
func (c GeneratorConfig) Validate() error {
	if c.Jobs < 1 {
		return fmt.Errorf("trace: jobs %d < 1", c.Jobs)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("trace: horizon %v <= 0", c.Horizon)
	}
	if c.MinTasks < 1 || c.MaxTasks < c.MinTasks {
		return fmt.Errorf("trace: task bounds [%d, %d]", c.MinTasks, c.MaxTasks)
	}
	if c.TMinLow <= 0 || c.TMinHigh < c.TMinLow {
		return fmt.Errorf("trace: tmin bounds [%v, %v]", c.TMinLow, c.TMinHigh)
	}
	if c.BetaLow <= 1 || c.BetaHigh < c.BetaLow {
		return fmt.Errorf("trace: beta bounds (%v, %v] must exceed 1", c.BetaLow, c.BetaHigh)
	}
	if c.DeadlineRatio <= 1 {
		return fmt.Errorf("trace: deadline ratio %v must exceed 1", c.DeadlineRatio)
	}
	return nil
}

// Generate produces the synthetic job stream, sorted by arrival.
func Generate(cfg GeneratorConfig) ([]JobRecord, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := pareto.NewStream(cfg.Seed, 0xC0FFEE)
	jobs := make([]JobRecord, cfg.Jobs)
	logMin, logMax := math.Log(float64(cfg.MinTasks)), math.Log(float64(cfg.MaxTasks))
	for i := range jobs {
		tasks := int(math.Exp(logMin + rng.Float64()*(logMax-logMin)))
		if tasks < cfg.MinTasks {
			tasks = cfg.MinTasks
		}
		if tasks > cfg.MaxTasks {
			tasks = cfg.MaxTasks
		}
		tmin := cfg.TMinLow + rng.Float64()*(cfg.TMinHigh-cfg.TMinLow)
		beta := cfg.BetaLow + rng.Float64()*(cfg.BetaHigh-cfg.BetaLow)
		dist := pareto.Dist{TMin: tmin, Beta: beta}
		jobs[i] = JobRecord{
			ID:       i,
			Arrival:  rng.Float64() * cfg.Horizon,
			NumTasks: tasks,
			Dist:     dist,
			Deadline: cfg.DeadlineRatio * dist.Mean(),
		}
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	for i := range jobs {
		jobs[i].ID = i // re-key in arrival order
	}
	return jobs, nil
}

// TotalTasks sums the task counts of a job stream.
func TotalTasks(jobs []JobRecord) int {
	total := 0
	for _, j := range jobs {
		total += j.NumTasks
	}
	return total
}
