package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"chronos/internal/tenant"
)

// These tests pin the PR-8 tentpole: the cached plan and admit paths perform
// ZERO heap allocations in the handler itself. They call the handlers
// directly — net/http's connection goroutine, its response bookkeeping, and
// the routing middleware are outside the claim — with a rewindable body and
// a reusable ResponseWriter so the harness allocates nothing either.

// rewindBody is an io.ReadCloser over a fixed payload that rewinds without
// allocating.
type rewindBody struct {
	data []byte
	off  int
}

func (b *rewindBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *rewindBody) Close() error { return nil }

// reuseRW is a ResponseWriter whose header map persists across requests, the
// way a real keep-alive connection's does.
type reuseRW struct {
	h    http.Header
	code int
}

func (w *reuseRW) Header() http.Header         { return w.h }
func (w *reuseRW) WriteHeader(code int)        { w.code = code }
func (w *reuseRW) Write(p []byte) (int, error) { return len(p), nil }

// zeroAllocRequest builds the reusable request/writer pair for one handler
// (shared with the direct-handler benchmarks in bench_test.go).
func zeroAllocRequest(t testing.TB, path string, payload any) (*rewindBody, *http.Request, *reuseRW) {
	t.Helper()
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	body := &rewindBody{data: raw}
	req := httptest.NewRequest(http.MethodPost, path, body)
	return body, req, &reuseRW{h: make(http.Header, 4)}
}

// assertZeroAlloc warms the path once (cache fill, pool priming, header-map
// entries), then measures.
func assertZeroAlloc(t *testing.T, name string, body *rewindBody, w *reuseRW, serve func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("race instrumentation allocates and defeats sync.Pool; alloc counts only hold without -race")
	}
	serve()
	if w.code != http.StatusOK {
		t.Fatalf("%s warmup: status = %d, want 200", name, w.code)
	}
	allocs := testing.AllocsPerRun(200, func() {
		body.off = 0
		w.code = 0
		serve()
	})
	if w.code != http.StatusOK {
		t.Fatalf("%s: status = %d, want 200", name, w.code)
	}
	if allocs != 0 {
		t.Errorf("%s: %g allocs/op on the cached path, want 0", name, allocs)
	}
}

func TestPlanHandlerCachedZeroAlloc(t *testing.T) {
	s := New(Config{})
	body, req, w := zeroAllocRequest(t, "/v1/plan",
		planRequest{Job: testJob(), Econ: testEcon()})
	assertZeroAlloc(t, "handlePlan", body, w, func() { s.handlePlan(w, req) })
	if hits, _, _ := s.CacheStats(); hits == 0 {
		t.Fatal("measured requests never hit the plan cache")
	}
}

func TestAdmitHandlerCachedZeroAlloc(t *testing.T) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"bench": {Budget: 1e18},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Tenants: reg})
	body, req, w := zeroAllocRequest(t, "/v1/admit",
		admitRequest{Tenant: "bench", Job: testJob(), Econ: testEcon()})
	assertZeroAlloc(t, "handleAdmit", body, w, func() { s.handleAdmit(w, req) })
	if hits, _, _ := s.CacheStats(); hits == 0 {
		t.Fatal("measured requests never hit the plan cache")
	}
}
