package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chronos/internal/ring"
)

// newRingFleet boots n in-process replicas and joins them into one
// consistent-hash ring. Each replica gets its own Server (cache, metrics,
// optional tenant registry via mkCfg) fronted by an httptest listener; ring
// membership is applied after the listeners exist because the URLs are not
// known before.
func newRingFleet(t *testing.T, n int, mkCfg func(i int) Config) ([]*Server, []*httptest.Server) {
	t.Helper()
	servers := make([]*Server, n)
	listeners := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		servers[i] = New(mkCfg(i))
		listeners[i] = httptest.NewServer(servers[i].Handler())
		t.Cleanup(listeners[i].Close)
		urls[i] = listeners[i].URL
	}
	for i := 0; i < n; i++ {
		if err := servers[i].SetRing(ring.Membership{Self: urls[i], Peers: urls}); err != nil {
			t.Fatalf("SetRing(replica %d): %v", i, err)
		}
	}
	return servers, listeners
}

// fleetOwner resolves which replica index owns the plan key of req on
// replica 0's ring view (all views agree by construction).
func fleetOwner(t *testing.T, servers []*Server, listeners []*httptest.Server, req planRequest) int {
	t.Helper()
	strat, best, ok := keyStrategy(req.Strategy)
	if !ok {
		t.Fatalf("bad strategy %q", req.Strategy)
	}
	key := planKey(cacheStrategyName(strat, best), req.Job, req.Econ)
	rs := servers[0].ringSt.Load()
	owner, ok := rs.ring.Owner(key)
	if !ok {
		t.Fatal("ring has no owner")
	}
	for i, ts := range listeners {
		if ts.URL == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a fleet member", owner)
	return -1
}

func getMetricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// postJSONErr is postJSON without the t.Fatal, safe to call from worker
// goroutines (which must not terminate the test directly).
func postJSONErr(url string, body any) (*http.Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return http.Post(url, "application/json", bytes.NewReader(raw))
}

// metricValue extracts the value of the first metrics line starting with
// prefix ("" when absent).
func metricValue(text, prefix string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			return fields[len(fields)-1]
		}
	}
	return ""
}

// TestFleetCrossReplicaCacheHit is the acceptance scenario: a key planned
// through replica A is a cache hit when requested through replica B, because
// both forward to the single owning replica instead of each computing and
// caching independently.
func TestFleetCrossReplicaCacheHit(t *testing.T) {
	servers, listeners := newRingFleet(t, 3, func(int) Config { return Config{} })
	req := planRequest{Job: testJob(), Econ: testEcon()}
	owner := fleetOwner(t, servers, listeners, req)

	// Route the two requests through two replicas that are not required to
	// be the owner (with 3 replicas at least one of A, B is a forwarder).
	respA := postJSON(t, listeners[0].URL+"/v1/plan", req)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("plan via A: status = %d, want 200", respA.StatusCode)
	}
	if got := respA.Header.Get(ServedByHeader); got != listeners[owner].URL {
		t.Errorf("plan via A served by %q, want owner %q", got, listeners[owner].URL)
	}
	first := decodeBody[planResponse](t, respA)
	if first.Cached {
		t.Error("first fleet request should not be cached")
	}

	respB := postJSON(t, listeners[1].URL+"/v1/plan", req)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("plan via B: status = %d, want 200", respB.StatusCode)
	}
	if got := respB.Header.Get(ServedByHeader); got != listeners[owner].URL {
		t.Errorf("plan via B served by %q, want owner %q", got, listeners[owner].URL)
	}
	second := decodeBody[planResponse](t, respB)
	if !second.Cached {
		t.Error("request via B should hit the owner's cache entry planned via A")
	}
	if second.Plan != first.Plan {
		t.Errorf("cross-replica plan %+v differs from original %+v", second.Plan, first.Plan)
	}

	// Exactly the owner holds the entry: the fleet caches partition the
	// keyspace instead of overlapping.
	for i, s := range servers {
		_, _, entries := s.CacheStats()
		want := 0
		if i == owner {
			want = 1
		}
		if entries != want {
			t.Errorf("replica %d caches %d entries, want %d", i, entries, want)
		}
	}
}

// TestFleetConcurrentMixedTraffic hammers every replica with a mix of
// owned and forwarded keys under -race: concurrent forwarded and local
// plans must not data-race, and every request must succeed.
func TestFleetConcurrentMixedTraffic(t *testing.T) {
	_, listeners := newRingFleet(t, 3, func(int) Config { return Config{} })
	const workers = 6
	const perWorker = 20
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				job := testJob()
				job.Deadline = 100 + float64((w*perWorker+i)%17) // spread keys over owners
				req := planRequest{Job: job, Econ: testEcon()}
				resp := postJSON(t, listeners[(w+i)%3].URL+"/v1/plan", req)
				if resp.StatusCode != http.StatusOK {
					errs <- resp.Status
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for status := range errs {
		t.Errorf("concurrent fleet plan failed: %s", status)
	}
}

// TestFleetOwnerDownLocalFallback kills the owning replica: requests routed
// through the survivors must still succeed via local computation, and the
// failure must be visible as chronosd_ring_peer_errors_total.
func TestFleetOwnerDownLocalFallback(t *testing.T) {
	servers, listeners := newRingFleet(t, 3, func(int) Config {
		return Config{BreakerThreshold: 100} // keep the circuit closed; every request attempts the forward
	})
	req := planRequest{Job: testJob(), Econ: testEcon()}
	owner := fleetOwner(t, servers, listeners, req)
	via := (owner + 1) % 3
	listeners[owner].Close()

	resp := postJSON(t, listeners[via].URL+"/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback plan: status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(ServedByHeader); got != listeners[via].URL {
		t.Errorf("fallback served by %q, want local replica %q", got, listeners[via].URL)
	}
	out := decodeBody[planResponse](t, resp)
	if out.Cached {
		t.Error("fallback plan cannot be a cache hit")
	}

	text := getMetricsText(t, listeners[via].URL)
	errLine := "chronosd_ring_peer_errors_total{peer=\"" + listeners[owner].URL + "\"}"
	if got := metricValue(text, errLine); got != "1" {
		t.Errorf("%s = %q, want 1", errLine, got)
	}
	if got := metricValue(text, "chronosd_ring_local_fallbacks_total"); got != "1" {
		t.Errorf("chronosd_ring_local_fallbacks_total = %q, want 1", got)
	}
}

// TestFleetBreakerSkipsDeadOwner verifies per-peer circuit breaking: after
// the threshold of consecutive failures the replica stops attempting
// forwards to the dead owner (no new peer errors) but keeps serving
// locally.
func TestFleetBreakerSkipsDeadOwner(t *testing.T) {
	servers, listeners := newRingFleet(t, 3, func(int) Config {
		return Config{BreakerThreshold: 1, BreakerCooldown: time.Hour}
	})
	req := planRequest{Job: testJob(), Econ: testEcon()}
	owner := fleetOwner(t, servers, listeners, req)
	via := (owner + 1) % 3
	listeners[owner].Close()

	for i := 0; i < 3; i++ {
		resp := postJSON(t, listeners[via].URL+"/v1/plan", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d, want 200", i, resp.StatusCode)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	text := getMetricsText(t, listeners[via].URL)
	errLine := "chronosd_ring_peer_errors_total{peer=\"" + listeners[owner].URL + "\"}"
	if got := metricValue(text, errLine); got != "1" {
		t.Errorf("%s = %q, want 1 (breaker must stop attempts after the first failure)", errLine, got)
	}
	if got := metricValue(text, "chronosd_ring_local_fallbacks_total"); got != "3" {
		t.Errorf("chronosd_ring_local_fallbacks_total = %q, want 3", got)
	}
}

// TestForwardLoopGuard sends a request carrying the forwarded marker
// straight to a replica that does NOT own its key: the replica must answer
// locally instead of forwarding again.
func TestForwardLoopGuard(t *testing.T) {
	servers, listeners := newRingFleet(t, 3, func(int) Config { return Config{} })
	req := planRequest{Job: testJob(), Econ: testEcon()}
	owner := fleetOwner(t, servers, listeners, req)
	via := (owner + 1) % 3

	raw := `{"job":{"tasks":10,"deadline":100,"tmin":10,"beta":1.5,"tauEst":30,"tauKill":60},` +
		`"econ":{"theta":1e-4,"unitPrice":1}}`
	hreq, err := http.NewRequest(http.MethodPost, listeners[via].URL+"/v1/plan", strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ForwardedFromHeader, "http://elsewhere:1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(ServedByHeader); got != listeners[via].URL {
		t.Errorf("guarded request served by %q, want local replica %q", got, listeners[via].URL)
	}
	out := decodeBody[planResponse](t, resp)
	if out.Cached {
		t.Error("guarded request computed locally cannot be a cache hit")
	}
	// The non-owner computed and cached locally; the owner never saw it.
	if _, _, entries := servers[owner].CacheStats(); entries != 0 {
		t.Errorf("owner cached %d entries for a request it never received", entries)
	}
	text := getMetricsText(t, listeners[via].URL)
	if got := metricValue(text, "chronosd_ring_received_forwards_total"); got != "1" {
		t.Errorf("chronosd_ring_received_forwards_total = %q, want 1", got)
	}
	if got := metricValue(text, "chronosd_ring_forwarded_total{"); got != "" {
		t.Errorf("guarded request must not be forwarded again, got forwarded counter %q", got)
	}
}

// TestFleetAdmitForwarded routes admission control through the ring: the
// decision (and the ledger debit) lands on the owning replica, whose cache
// then serves the repeated admit.
func TestFleetAdmitForwarded(t *testing.T) {
	servers, listeners := newRingFleet(t, 3, func(int) Config {
		return Config{Tenants: testRegistry(t, "etl", 1e9)}
	})
	areq := admitRequest{Tenant: "etl", Job: testJob()}

	resp := postJSON(t, listeners[0].URL+"/v1/admit", areq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit: status = %d, want 200", resp.StatusCode)
	}
	servedBy := resp.Header.Get(ServedByHeader)
	dec := decodeBody[admitResponse](t, resp)
	if !dec.Admitted {
		t.Fatalf("admit rejected: %+v", dec)
	}

	// The serving replica — and only it — debited its ledger and cached the
	// unconstrained optimum.
	debited := 0
	for i, s := range servers {
		rem := s.Tenants().Get("etl").Remaining()
		if rem < 1e9 {
			debited++
			if listeners[i].URL != servedBy {
				t.Errorf("replica %d debited but %q served", i, servedBy)
			}
		}
	}
	if debited != 1 {
		t.Errorf("%d replicas debited the admit, want exactly 1", debited)
	}

	// A second admit through another replica reuses the owner's cached plan:
	// its cache stats show a hit.
	resp2 := postJSON(t, listeners[1].URL+"/v1/admit", areq)
	dec2 := decodeBody[admitResponse](t, resp2)
	if !dec2.Admitted {
		t.Fatalf("second admit rejected: %+v", dec2)
	}
	hitSomewhere := false
	for _, s := range servers {
		if hits, _, _ := s.CacheStats(); hits > 0 {
			hitSomewhere = true
		}
	}
	if !hitSomewhere {
		t.Error("repeated admit did not hit any plan cache")
	}
}

// TestFleetTenantDriftFallsBackLocally models a rolling tenant-config
// rollout: the owner does not know the tenant yet (404), so the replica
// that already resolved it serves — and debits — locally instead of
// relaying the owner's 404.
func TestFleetTenantDriftFallsBackLocally(t *testing.T) {
	servers, listeners := newRingFleet(t, 3, func(i int) Config {
		return Config{Tenants: testRegistry(t, "etl", 1e9)}
	})
	req := planRequest{Job: testJob(), Econ: testEcon(), Tenant: "etl"}
	owner := fleetOwner(t, servers, listeners, req)
	via := (owner + 1) % 3
	// The owner's registry loses the tenant (drifted config).
	servers[owner].SetTenants(testRegistry(t, "other", 1))

	resp := postJSON(t, listeners[via].URL+"/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drift fallback: status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(ServedByHeader); got != listeners[via].URL {
		t.Errorf("drift fallback served by %q, want local replica %q", got, listeners[via].URL)
	}
	out := decodeBody[planResponse](t, resp)
	if out.BudgetRemaining == nil || *out.BudgetRemaining >= 1e9 {
		t.Errorf("local fallback did not debit the local ledger: %+v", out)
	}
	text := getMetricsText(t, listeners[via].URL)
	if got := metricValue(text, "chronosd_ring_local_fallbacks_total"); got != "1" {
		t.Errorf("chronosd_ring_local_fallbacks_total = %q, want 1", got)
	}
	// The owner is healthy — the drift must not charge its breaker.
	errLine := "chronosd_ring_peer_errors_total{peer=\"" + listeners[owner].URL + "\"}"
	if got := metricValue(text, errLine); got != "" {
		t.Errorf("%s = %q, want absent", errLine, got)
	}
}

// TestSetRingLifecycle covers reload semantics: enabling, swapping, and
// disabling membership on a live server.
func TestSetRingLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if self, members := s.RingMembers(); self != "" || members != nil {
		t.Fatalf("fresh server has ring state %q %v", self, members)
	}

	if err := s.SetRing(ring.Membership{Peers: []string{"http://b:1"}}); err == nil {
		t.Fatal("SetRing accepted peers without self")
	}

	if err := s.SetRing(ring.Membership{Self: ts.URL, Peers: []string{"http://b:1"}}); err != nil {
		t.Fatal(err)
	}
	self, members := s.RingMembers()
	if self != ts.URL || len(members) != 2 {
		t.Fatalf("RingMembers = %q %v", self, members)
	}

	// Requests keep working against a one-sided membership (the other
	// member may own keys; it is unreachable, so they fall back locally).
	resp := postJSON(t, ts.URL+"/v1/plan", planRequest{Job: testJob(), Econ: testEcon()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan with unreachable peer: status = %d", resp.StatusCode)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if err := s.SetRing(ring.Membership{}); err != nil {
		t.Fatal(err)
	}
	if self, members := s.RingMembers(); self != "" || members != nil {
		t.Fatalf("disabled ring still reports %q %v", self, members)
	}
	resp = postJSON(t, ts.URL+"/v1/plan", planRequest{Job: testJob(), Econ: testEcon()})
	if got := resp.Header.Get(ServedByHeader); got != "" {
		t.Errorf("ringless response carries %s=%q", ServedByHeader, got)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// TestNewPanicsOnInvalidRingConfig pins the startup contract: a Config with
// peers but no self is a misconfiguration, not a silent no-op.
func TestNewPanicsOnInvalidRingConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted peers without self")
		}
	}()
	New(Config{Peers: []string{"http://b:1"}})
}

// TestRingMetricsGauges checks the membership gauges a fleet dashboard
// scrapes: node count and this replica's owned-keyspace share.
func TestRingMetricsGauges(t *testing.T) {
	_, listeners := newRingFleet(t, 3, func(int) Config { return Config{} })
	text := getMetricsText(t, listeners[0].URL)
	if got := metricValue(text, "chronosd_ring_nodes"); got != "3" {
		t.Errorf("chronosd_ring_nodes = %q, want 3", got)
	}
	frac := metricValue(text, "chronosd_ring_owned_fraction")
	if frac == "" {
		t.Fatal("chronosd_ring_owned_fraction missing")
	}
	f, err := strconv.ParseFloat(frac, 64)
	if err != nil || f <= 0.05 || f >= 0.95 {
		t.Errorf("chronosd_ring_owned_fraction = %q, want a proper share of a 3-replica ring", frac)
	}
}

// TestFleetPinnedStrategyRoutesConsistently pins a strategy and requests
// the same key through every replica: all three answers must come from one
// owning replica, the in-process mirror of the scripts/ring-demo.sh smoke.
func TestFleetPinnedStrategyRoutesConsistently(t *testing.T) {
	_, listeners := newRingFleet(t, 3, func(int) Config { return Config{} })
	req := planRequest{Job: testJob(), Econ: testEcon(), Strategy: "clone"}
	served := make(map[string]bool)
	for _, ts := range listeners {
		resp := postJSON(t, ts.URL+"/v1/plan", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		served[resp.Header.Get(ServedByHeader)] = true
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if len(served) != 1 {
		t.Errorf("pinned-strategy key served by %d replicas, want exactly 1: %v", len(served), served)
	}
}

// reqOwnedBy scans deadlines until it finds a plan request whose cache key
// is owned by the given member on s's current ring view.
func reqOwnedBy(t *testing.T, s *Server, owner string) planRequest {
	t.Helper()
	rs := s.ringSt.Load()
	for d := 0; d < 4096; d++ {
		job := testJob()
		job.Deadline = 100 + float64(d)
		if o, ok := rs.ring.Owner(planKey("", job, testEcon())); ok && o == owner {
			return planRequest{Job: job, Econ: testEcon()}
		}
	}
	t.Fatalf("no key owned by %q in 4096 candidates", owner)
	return planRequest{}
}

// --- breaker state machine ------------------------------------------------

// TestBreakerConcurrentTripOpensOnce races many failures into one breaker
// under -race: the counter advances by CAS and the trip is a single
// closed→open CAS, so no interleaving may leave the circuit closed past the
// threshold.
func TestBreakerConcurrentTripOpensOnce(t *testing.T) {
	b := &breaker{threshold: 8, cooldown: time.Hour}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.fail()
		}()
	}
	wg.Wait()
	if b.allow() {
		t.Fatal("32 concurrent failures against threshold 8 left the circuit closed")
	}
}

// TestBreakerStragglerDoesNotExtendOpenWindow pins the fix for the old
// Add-then-Store counter: a failure landing while the circuit is already
// open (an in-flight straggler) must not push the open deadline out, or a
// trickle of stragglers postpones the half-open probe forever.
func TestBreakerStragglerDoesNotExtendOpenWindow(t *testing.T) {
	b := &breaker{threshold: 1, cooldown: 150 * time.Millisecond}
	b.fail() // trips: open for one cooldown from now
	if b.allow() {
		t.Fatal("circuit must be open immediately after tripping")
	}
	time.Sleep(90 * time.Millisecond)
	b.fail() // straggler from a forward that was in flight at trip time
	time.Sleep(90 * time.Millisecond)
	// 180 ms since the trip: the original window expired, and the straggler
	// must not have started a new one.
	if !b.allow() {
		t.Fatal("straggler failure extended the open window")
	}
	b.abort()
}

// TestBreakerHalfOpenSingleProbe: when the cooldown expires, exactly one
// caller wins the probe slot; a failed probe re-opens the circuit, a
// successful one closes it for everyone.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: 50 * time.Millisecond}
	for i := 0; i < 3; i++ {
		b.fail()
	}
	if b.allow() {
		t.Fatal("circuit should be open after threshold failures")
	}
	time.Sleep(60 * time.Millisecond)
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.allow() {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := wins.Load(); got != 1 {
		t.Fatalf("%d callers claimed the half-open probe, want exactly 1", got)
	}
	b.fail() // probe verdict: still dead
	if b.allow() {
		t.Fatal("failed probe must re-open the circuit")
	}
	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("next cooldown expiry must admit a fresh probe")
	}
	b.success() // probe verdict: recovered
	if !b.allow() || !b.allow() {
		t.Fatal("successful probe must close the circuit for all callers")
	}
}

// TestBreakerAbortReleasesProbeSlot: a probe whose client disconnected
// proves nothing about the peer; aborting must hand the slot to the next
// caller instead of leaking it.
func TestBreakerAbortReleasesProbeSlot(t *testing.T) {
	b := &breaker{threshold: 1, cooldown: 30 * time.Millisecond}
	b.fail()
	time.Sleep(40 * time.Millisecond)
	if !b.allow() {
		t.Fatal("expired cooldown must admit a probe")
	}
	if b.allow() {
		t.Fatal("probe slot handed out twice")
	}
	b.abort()
	if !b.allow() {
		t.Fatal("aborted probe must release the slot to the next caller")
	}
}

// TestFleetHalfOpenProbesOncePerCooldown is the end-to-end half-open
// acceptance test: once a peer's circuit opens, each cooldown window admits
// exactly ONE forward attempt — the pre-fix breaker reset its counter on
// expiry and let a full threshold of requests hammer the dead peer per
// window.
func TestFleetHalfOpenProbesOncePerCooldown(t *testing.T) {
	const cooldown = 400 * time.Millisecond

	// The peer is a real replica behind a fault injector: while unhealthy,
	// /v1/plan answers 500; the rest (e.g. /healthz) passes through.
	peerSrv := New(Config{})
	peerHandler := peerSrv.Handler()
	var planHits atomic.Int32
	var healthy atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/plan" {
			planHits.Add(1)
			if !healthy.Load() {
				w.WriteHeader(http.StatusInternalServerError)
				return
			}
		}
		peerHandler.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	s, ts := newTestServer(t, Config{BreakerThreshold: 3, BreakerCooldown: cooldown})
	if err := s.SetRing(ring.Membership{Self: ts.URL, Peers: []string{flaky.URL}}); err != nil {
		t.Fatal(err)
	}
	if err := peerSrv.SetRing(ring.Membership{Self: flaky.URL, Peers: []string{ts.URL}}); err != nil {
		t.Fatal(err)
	}
	req := reqOwnedBy(t, s, flaky.URL)
	post := func() error {
		resp, err := postJSONErr(ts.URL+"/v1/plan", req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}

	// Phase 1: threshold consecutive peer failures trip the circuit; every
	// request still answers 200 via local fallback.
	for i := 0; i < 3; i++ {
		if err := post(); err != nil {
			t.Fatal(err)
		}
	}
	if got := planHits.Load(); got != 3 {
		t.Fatalf("peer saw %d plan forwards before the trip, want 3", got)
	}

	// Phase 2: the open circuit skips the peer entirely.
	for i := 0; i < 5; i++ {
		if err := post(); err != nil {
			t.Fatal(err)
		}
	}
	if got := planHits.Load(); got != 3 {
		t.Fatalf("open circuit forwarded anyway: peer saw %d requests, want 3", got)
	}

	// Phase 3: after the cooldown, a concurrent burst gets exactly one
	// half-open probe; its failure re-opens the circuit for everyone else.
	time.Sleep(cooldown + 50*time.Millisecond)
	var wg sync.WaitGroup
	errs := make(chan error, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- post()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := planHits.Load(); got != 4 {
		t.Fatalf("half-open window admitted %d probes, want exactly 1", got-3)
	}
	if err := post(); err != nil {
		t.Fatal(err)
	}
	if got := planHits.Load(); got != 4 {
		t.Fatal("failed probe did not re-open the circuit")
	}

	// Phase 4: the peer recovers; the next probe succeeds, closes the
	// circuit, and traffic forwards to the owner again.
	healthy.Store(true)
	time.Sleep(cooldown + 50*time.Millisecond)
	for i := 0; i < 2; i++ {
		resp, err := postJSONErr(ts.URL+"/v1/plan", req)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get(ServedByHeader); got != flaky.URL {
			t.Fatalf("request %d after recovery served by %q, want owner %q", i, got, flaky.URL)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := planHits.Load(); got != 6 {
		t.Fatalf("peer saw %d plan requests after recovery, want 6", got)
	}
}

// TestForwardClientDisconnectDoesNotChargeBreaker: a client that gives up
// mid-forward proves nothing about the peer, so the aborted attempt must
// leave the peer's breaker untouched (threshold 1 would otherwise open it)
// and must not count as a peer error.
func TestForwardClientDisconnectDoesNotChargeBreaker(t *testing.T) {
	peerGot := make(chan struct{})
	hanging := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: net/http only watches for the peer closing
		// the connection once the handler consumed the request.
		_, _ = io.Copy(io.Discard, r.Body)
		close(peerGot)
		<-r.Context().Done()
	}))
	t.Cleanup(hanging.Close)

	s, ts := newTestServer(t, Config{BreakerThreshold: 1, ForwardTimeout: 10 * time.Second})
	if err := s.SetRing(ring.Membership{Self: ts.URL, Peers: []string{hanging.URL}}); err != nil {
		t.Fatal(err)
	}
	req := reqOwnedBy(t, s, hanging.URL)
	strat, best, _ := keyStrategy(req.Strategy)
	key := planKey(cacheStrategyName(strat, best), req.Job, req.Econ)

	hreq := httptest.NewRequest(http.MethodPost, "/v1/plan", nil)
	ctx, cancel := context.WithCancel(hreq.Context())
	hreq = hreq.WithContext(ctx)
	go func() {
		<-peerGot
		cancel()
	}()

	if done := s.forwardToOwner(httptest.NewRecorder(), hreq, "/v1/plan", []byte(key), req); !done {
		t.Fatal("client disconnect mid-forward must consume the request, not fall back locally")
	}
	peer := s.ringSt.Load().peers[hanging.URL]
	if peer == nil {
		t.Fatal("peer state missing for the hanging owner")
	}
	if got := peer.breaker.failures.Load(); got != 0 {
		t.Fatalf("disconnect charged the breaker with %d failures, want 0", got)
	}
	if !peer.breaker.allow() {
		t.Fatal("disconnect opened the peer's circuit")
	}
	text := getMetricsText(t, ts.URL)
	errLine := "chronosd_ring_peer_errors_total{peer=\"" + hanging.URL + "\"}"
	if got := metricValue(text, errLine); got != "" {
		t.Errorf("%s = %q, want absent (the peer did nothing wrong)", errLine, got)
	}
}
