package chronos

import (
	"errors"
	"math"
	"testing"

	"chronos/internal/optimize"
)

func apiParams() JobParams {
	return JobParams{
		Tasks:    10,
		Deadline: 100,
		TMin:     10,
		Beta:     1.5,
		TauEst:   30,
		TauKill:  60,
	}
}

func apiEcon() Econ {
	return Econ{Theta: 1e-4, UnitPrice: 1}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		Clone:              "Clone",
		SpeculativeRestart: "Speculative-Restart",
		SpeculativeResume:  "Speculative-Resume",
		HadoopNS:           "Hadoop-NS",
		HadoopS:            "Hadoop-S",
		Mantri:             "Mantri",
		LATE:               "LATE",
		Strategy(0):        "Unknown",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestPoCDClosedForm(t *testing.T) {
	// Theorem 1 by hand: [1 - (tmin/D)^(beta*(r+1))]^N.
	got, err := PoCD(Clone, apiParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1-math.Pow(0.1, 3.0), 10)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PoCD = %v, want %v", got, want)
	}
}

func TestPoCDErrors(t *testing.T) {
	if _, err := PoCD(Mantri, apiParams(), 1); !errors.Is(err, ErrNotAnalytic) {
		t.Errorf("PoCD(Mantri) err = %v, want ErrNotAnalytic", err)
	}
	bad := apiParams()
	bad.Beta = 0.5
	if _, err := PoCD(Clone, bad, 1); err == nil {
		t.Error("PoCD accepted beta <= 1")
	}
	if _, err := PoCD(Clone, apiParams(), -1); err == nil {
		t.Error("PoCD accepted negative r")
	}
}

func TestExpectedMachineTime(t *testing.T) {
	got, err := ExpectedMachineTime(Clone, apiParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// r=0: N * mean = 10 * 30.
	if math.Abs(got-300) > 1e-9 {
		t.Errorf("ExpectedMachineTime = %v, want 300", got)
	}
	if _, err := ExpectedMachineTime(HadoopS, apiParams(), 0); !errors.Is(err, ErrNotAnalytic) {
		t.Errorf("err = %v, want ErrNotAnalytic", err)
	}
	if _, err := ExpectedMachineTime(Clone, apiParams(), -2); err == nil {
		t.Error("accepted negative r")
	}
}

func TestOptimizeMatchesCurve(t *testing.T) {
	for _, s := range ChronosStrategies() {
		plan, err := Optimize(s, apiParams(), apiEcon())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		curve, err := TradeoffCurve(s, apiParams(), apiEcon(), plan.R+20)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range curve {
			if pt.Utility > plan.Utility+1e-12 {
				t.Errorf("%v: curve point r=%d beats the plan", s, pt.R)
			}
		}
		if plan.Strategy != s {
			t.Errorf("plan strategy = %v, want %v", plan.Strategy, s)
		}
	}
}

func TestOptimizeBest(t *testing.T) {
	best, err := OptimizeBest(apiParams(), apiEcon())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ChronosStrategies() {
		plan, err := Optimize(s, apiParams(), apiEcon())
		if err != nil {
			t.Fatal(err)
		}
		if plan.Utility > best.Utility+1e-12 {
			t.Errorf("OptimizeBest missed %v with utility %v > %v", s, plan.Utility, best.Utility)
		}
	}
}

func TestOptimizeWithinBudget(t *testing.T) {
	un, err := OptimizeBest(apiParams(), apiEcon())
	if err != nil {
		t.Fatal(err)
	}
	// Loose budget: identical to the unconstrained solve.
	got, err := OptimizeBestWithinBudget(apiParams(), apiEcon(), un.MachineTime*2)
	if err != nil {
		t.Fatal(err)
	}
	if got != un {
		t.Errorf("loose budget changed the plan: got %+v, want %+v", got, un)
	}
	// Tight budget: the plan must fit.
	r0, err := ExpectedMachineTime(un.Strategy, apiParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := (r0 + un.MachineTime) / 2
	got, err = OptimizeBestWithinBudget(apiParams(), apiEcon(), budget)
	if err != nil {
		t.Fatal(err)
	}
	if got.MachineTime > budget {
		t.Errorf("plan costs %v, budget %v", got.MachineTime, budget)
	}
	// Unpayable budget.
	if _, err := OptimizeBestWithinBudget(apiParams(), apiEcon(), 1e-9); !errors.Is(err, optimize.ErrBudgetTooSmall) {
		t.Errorf("tiny budget: err = %v, want ErrBudgetTooSmall", err)
	}
	if _, err := OptimizeWithinBudget(LATE, apiParams(), apiEcon(), 1e9); !errors.Is(err, ErrNotAnalytic) {
		t.Errorf("baseline accepted: %v", err)
	}
}

func TestOptimizeBaselineRejected(t *testing.T) {
	if _, err := Optimize(LATE, apiParams(), apiEcon()); !errors.Is(err, ErrNotAnalytic) {
		t.Errorf("Optimize(LATE) err = %v", err)
	}
}

func TestMinCostForPoCD(t *testing.T) {
	plan, err := MinCostForPoCD(SpeculativeResume, apiParams(), apiEcon(), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PoCD < 0.99 {
		t.Errorf("plan PoCD %v below target", plan.PoCD)
	}
	if _, err := MinCostForPoCD(Mantri, apiParams(), apiEcon(), 0.9); !errors.Is(err, ErrNotAnalytic) {
		t.Errorf("baseline accepted: %v", err)
	}
}

func TestSimulateQuickstart(t *testing.T) {
	jobs := Benchmarks()[0].Jobs(100, 10, 400)
	rep, err := Simulate(SimConfig{
		Strategy: SpeculativeResume,
		Seed:     7,
		TauEst:   40,
		TauKill:  80,
		TauScale: TauAbsolute,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 100 {
		t.Errorf("Jobs = %d, want 100", rep.Jobs)
	}
	if rep.PoCD <= 0 || rep.PoCD > 1 {
		t.Errorf("PoCD = %v", rep.PoCD)
	}
	if rep.MeanCost <= 0 || rep.MeanMachineTime <= 0 {
		t.Errorf("cost/machine time not positive: %+v", rep)
	}
	if len(rep.RHistogram) == 0 {
		t.Error("missing r histogram for a Chronos strategy")
	}
	// Baseline comparison on common random numbers: speculation helps.
	ns, err := Simulate(SimConfig{Strategy: HadoopNS, Seed: 7}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PoCD < ns.PoCD {
		t.Errorf("S-Resume PoCD %v below Hadoop-NS %v", rep.PoCD, ns.PoCD)
	}
	if len(ns.RHistogram) != 0 {
		t.Error("baseline reported an r histogram")
	}
}

func TestSimulateAllStrategiesRun(t *testing.T) {
	jobs := []SimJob{{Tasks: 5, Deadline: 100, TMin: 10, Beta: 1.5}}
	for _, s := range []Strategy{Clone, SpeculativeRestart, SpeculativeResume, HadoopNS, HadoopS, Mantri, LATE} {
		rep, err := Simulate(SimConfig{Strategy: s, Seed: 3}, jobs)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rep.Jobs != 1 {
			t.Errorf("%v: Jobs = %d", s, rep.Jobs)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(SimConfig{Strategy: Clone}, nil); err == nil {
		t.Error("empty job list accepted")
	}
	if _, err := Simulate(SimConfig{Strategy: Strategy(42)},
		[]SimJob{{Tasks: 1, Deadline: 10, TMin: 1, Beta: 1.5}}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := Simulate(SimConfig{Strategy: Clone},
		[]SimJob{{Tasks: 1, Deadline: 10, TMin: 0, Beta: 1.5}}); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestSimulateFixedRZero(t *testing.T) {
	jobs := []SimJob{{Tasks: 4, Deadline: 100, TMin: 10, Beta: 1.5}}
	rep, err := Simulate(SimConfig{
		Strategy:  Clone,
		Seed:      5,
		UseFixedR: true,
		FixedR:    0,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RHistogram[0] != 1 {
		t.Errorf("FixedR=0 not honoured: hist %v", rep.RHistogram)
	}
}

func TestSimulateContention(t *testing.T) {
	jobs := Benchmarks()[0].Jobs(50, 10, 400)
	clean, err := Simulate(SimConfig{Strategy: HadoopNS, Seed: 11}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Simulate(SimConfig{
		Strategy: HadoopNS, Seed: 11,
		ContentionP: 0.4, ContentionMean: 3,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.MeanMachineTime <= clean.MeanMachineTime {
		t.Errorf("contention did not inflate machine time: %v vs %v",
			noisy.MeanMachineTime, clean.MeanMachineTime)
	}
	if noisy.PoCD > clean.PoCD {
		t.Errorf("contention improved PoCD: %v vs %v", noisy.PoCD, clean.PoCD)
	}
}

func TestBenchmarks(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.Name] = true
		if b.TMin <= 0 || b.Beta <= 1 || b.Deadline <= 0 {
			t.Errorf("benchmark %s has bad params: %+v", b.Name, b)
		}
	}
	for _, want := range []string{"Sort", "SecondarySort", "TeraSort", "WordCount"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestSyntheticTrace(t *testing.T) {
	jobs, err := SyntheticTrace(TraceConfig{Jobs: 50, HorizonSeconds: 3600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 50 {
		t.Fatalf("got %d jobs, want 50", len(jobs))
	}
	for _, j := range jobs {
		if j.Tasks < 1 || j.Deadline <= 0 || j.TMin <= 0 || j.Beta <= 1 {
			t.Errorf("bad trace job %+v", j)
		}
		if j.Arrival < 0 || j.Arrival > 3600 {
			t.Errorf("arrival %v outside horizon", j.Arrival)
		}
	}
	// Trace jobs run end to end.
	rep, err := Simulate(SimConfig{Strategy: SpeculativeResume, Seed: 4}, jobs[:10])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 10 {
		t.Errorf("simulated %d trace jobs, want 10", rep.Jobs)
	}
}

func TestPlanBatch(t *testing.T) {
	jobs := []BatchJob{
		{Strategy: Clone, Params: apiParams()},
		{Strategy: SpeculativeResume, Params: apiParams()},
	}
	var base float64
	for _, j := range jobs {
		mt, err := ExpectedMachineTime(j.Strategy, j.Params, 0)
		if err != nil {
			t.Fatal(err)
		}
		base += mt
	}
	plans, err := PlanBatch(jobs, base*2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("got %d plans, want 2", len(plans))
	}
	var spent float64
	granted := 0
	for _, p := range plans {
		spent += p.MachineTime
		granted += p.R
	}
	if spent > base*2+1e-6 {
		t.Errorf("batch spends %v over budget %v", spent, base*2)
	}
	if granted == 0 {
		t.Error("no speculation granted with 2x headroom")
	}
	// Baselines are rejected.
	if _, err := PlanBatch([]BatchJob{{Strategy: Mantri, Params: apiParams()}}, 1e9); !errors.Is(err, ErrNotAnalytic) {
		t.Errorf("PlanBatch(Mantri) err = %v", err)
	}
	// Bad params are rejected.
	bad := apiParams()
	bad.Tasks = 0
	if _, err := PlanBatch([]BatchJob{{Strategy: Clone, Params: bad}}, 1e9); err == nil {
		t.Error("PlanBatch accepted invalid params")
	}
}

func TestSimulateHadoopEstimatorAblation(t *testing.T) {
	jobs := Benchmarks()[0].Jobs(60, 10, 400)
	base := SimConfig{
		Strategy: SpeculativeResume, Seed: 21,
		TauEst: 40, TauKill: 80, TauScale: TauAbsolute,
	}
	exact, err := Simulate(base, jobs)
	if err != nil {
		t.Fatal(err)
	}
	hcfg := base
	hcfg.UseHadoopEstimator = true
	hadoop, err := Simulate(hcfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// The JVM-oblivious estimator overestimates completion, flagging more
	// false stragglers: it must cost at least as much as Eq. 30.
	if hadoop.MeanCost < exact.MeanCost*0.98 {
		t.Errorf("hadoop-estimator cost %v below chronos-estimator %v",
			hadoop.MeanCost, exact.MeanCost)
	}
}

func TestSimulateNodeFailures(t *testing.T) {
	jobs := Benchmarks()[0].Jobs(40, 10, 400)
	stable, err := Simulate(SimConfig{
		Strategy: SpeculativeRestart, Seed: 33,
		Nodes: 16, SlotsPerNode: 8,
		TauEst: 40, TauKill: 80, TauScale: TauAbsolute,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	failing, err := Simulate(SimConfig{
		Strategy: SpeculativeRestart, Seed: 33,
		Nodes: 16, SlotsPerNode: 8,
		TauEst: 40, TauKill: 80, TauScale: TauAbsolute,
		Failures: &FailureModel{MTBF: 600, MTTR: 60},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Every job still completes under failures; PoCD may only degrade.
	if failing.Jobs != stable.Jobs {
		t.Errorf("failures lost jobs: %d vs %d", failing.Jobs, stable.Jobs)
	}
	if failing.PoCD > stable.PoCD+0.05 {
		t.Errorf("failures improved PoCD: %v vs %v", failing.PoCD, stable.PoCD)
	}
}

func TestCompletionCDFAndDeadlineQuantile(t *testing.T) {
	p := apiParams()
	// CDF at the deadline equals the PoCD.
	pocd, err := PoCD(SpeculativeResume, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := CompletionCDF(SpeculativeResume, p, 2, p.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf-pocd) > 1e-12 {
		t.Errorf("CDF(D) = %v, PoCD = %v", cdf, pocd)
	}
	// The quotable deadline at the 99.9th percentile actually delivers it.
	d, err := DeadlineQuantile(SpeculativeResume, p, 2, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	check, err := CompletionCDF(SpeculativeResume, p, 2, d)
	if err != nil {
		t.Fatal(err)
	}
	if check < 0.999-1e-6 {
		t.Errorf("quoted deadline %v reaches only %v", d, check)
	}
	// Baselines have no closed form.
	if _, err := CompletionCDF(LATE, p, 1, 50); !errors.Is(err, ErrNotAnalytic) {
		t.Errorf("CompletionCDF(LATE) err = %v", err)
	}
	if _, err := DeadlineQuantile(Mantri, p, 1, 0.9); !errors.Is(err, ErrNotAnalytic) {
		t.Errorf("DeadlineQuantile(Mantri) err = %v", err)
	}
}
