// Package sim provides a minimal deterministic discrete-event simulation
// engine: a virtual clock, a priority event queue with stable FIFO ordering
// for simultaneous events, and cancellable timers. The cluster and MapReduce
// substrates are built on top of it.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all event handlers run on the caller's goroutine inside
// Run/Step.
type Engine struct {
	now     float64
	queue   eventQueue
	seq     uint64
	stopped bool
	// processed counts executed events, for introspection and tests.
	processed uint64
}

// Timer is a handle on a scheduled event; Cancel prevents a pending event
// from firing.
type Timer struct {
	item *eventItem
}

// Cancel deschedules the event. Cancelling an already-fired or
// already-cancelled timer is a no-op. Returns whether the event was pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.item == nil || t.item.cancelled || t.item.fired {
		return false
	}
	t.item.cancelled = true
	return true
}

// Pending reports whether the event is still scheduled.
func (t *Timer) Pending() bool {
	return t != nil && t.item != nil && !t.item.cancelled && !t.item.fired
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule enqueues fn to run at absolute simulation time at. Scheduling in
// the past (before Now) panics: it is always a logic bug in the model.
func (e *Engine) Schedule(at float64, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if math.IsNaN(at) {
		panic("sim: schedule at NaN")
	}
	item := &eventItem{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, item)
	return &Timer{item: item}
}

// After enqueues fn to run delay units from now.
func (e *Engine) After(delay float64, fn func()) *Timer {
	return e.Schedule(e.now+delay, fn)
}

// peek returns the next live event without executing it, discarding
// cancelled entries from the head of the queue as a side effect. Returns nil
// when no live event remains.
func (e *Engine) peek() *eventItem {
	for e.queue.Len() > 0 {
		if item := e.queue.items[0]; !item.cancelled {
			return item
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// NextAt reports the timestamp of the next live event, or ok == false when
// the queue holds none. It does not advance the clock. Stream consumers (the
// replay engine) use it to emit window boundaries that fall inside the gap
// before the next event.
func (e *Engine) NextAt() (at float64, ok bool) {
	item := e.peek()
	if item == nil {
		return 0, false
	}
	return item.at, true
}

// Step executes the next pending event and returns true, or returns false if
// the queue is empty or the engine is stopped.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	item := e.peek()
	if item == nil {
		return false
	}
	heap.Pop(&e.queue)
	e.now = item.at
	item.fired = true
	e.processed++
	item.fn()
	return true
}

// Run drains the event queue (or stops early if Stop is called from a
// handler).
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to exactly t (even if no event lands there).
func (e *Engine) RunUntil(t float64) {
	for !e.stopped {
		next := e.peek()
		if next == nil || next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current handler returns. Pending events
// stay queued; a stopped engine can not be restarted.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return e.queue.Len() }

// eventItem is one queue entry; seq breaks timestamp ties FIFO.
type eventItem struct {
	at        float64
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue struct {
	items []*eventItem
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *eventQueue) Push(x any) {
	item := x.(*eventItem)
	item.index = len(q.items)
	q.items = append(q.items, item)
}

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return item
}
