package tenant

import (
	"math"
	"sync"
	"testing"
	"time"
)

func newTestLedger(t *testing.T, budget float64, store *Store, ttl time.Duration) (*EscrowLedger, *Registry) {
	t.Helper()
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: budget}})
	return NewEscrowLedger(reg, store, ttl), reg
}

func TestEscrowGrantDebitsPoolFirst(t *testing.T) {
	e, reg := newTestLedger(t, 100, nil, 0)
	granted, remaining, err := e.Grant("etl", "http://h1", 0, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	if granted != 30 || remaining != 70 {
		t.Fatalf("Grant = (%v, %v), want (30, 70)", granted, remaining)
	}
	if got := reg.Get("etl").Remaining(); got != 70 {
		t.Errorf("pool remaining = %v, want 70", got)
	}
	holders, escrow := e.Outstanding("etl")
	if holders != 1 || escrow != 30 {
		t.Errorf("Outstanding = (%d, %v), want (1, 30)", holders, escrow)
	}
}

func TestEscrowGrantPartialWhenPoolLow(t *testing.T) {
	e, _ := newTestLedger(t, 100, nil, 0)
	if g, _, _ := e.Grant("etl", "h1", 0, 80, false); g != 80 {
		t.Fatalf("first grant = %v, want 80", g)
	}
	// Only 20 left: a 50 request gets the remainder, never more.
	if g, rem, _ := e.Grant("etl", "h2", 0, 50, false); g != 20 || rem != 0 {
		t.Fatalf("second grant = (%v, %v), want (20, 0)", g, rem)
	}
	if g, _, _ := e.Grant("etl", "h3", 0, 10, false); g != 0 {
		t.Fatalf("dry-pool grant = %v, want 0", g)
	}
}

func TestEscrowSpentShrinksOutstandingNotPool(t *testing.T) {
	e, reg := newTestLedger(t, 100, nil, 0)
	_, _, _ = e.Grant("etl", "h1", 0, 40, false)
	// Report 15 spent, ask for nothing more.
	if _, _, err := e.Grant("etl", "h1", 15, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, escrow := e.Outstanding("etl"); escrow != 25 {
		t.Errorf("outstanding escrow = %v, want 25", escrow)
	}
	if got := reg.Get("etl").Remaining(); got != 60 {
		t.Errorf("pool remaining = %v, want 60 (spent reports must not credit the pool)", got)
	}
}

func TestEscrowReleaseCreditsUnspent(t *testing.T) {
	e, reg := newTestLedger(t, 100, nil, 0)
	_, _, _ = e.Grant("etl", "h1", 0, 40, false)
	// Spend 10, release the rest: 30 returns to the pool.
	if _, rem, err := e.Grant("etl", "h1", 10, 0, true); err != nil || rem != 90 {
		t.Fatalf("release = (rem %v, err %v), want (90, nil)", rem, err)
	}
	if got := reg.Get("etl").Remaining(); got != 90 {
		t.Errorf("pool remaining = %v, want 90", got)
	}
	if holders, _ := e.Outstanding("etl"); holders != 0 {
		t.Errorf("lease survived release")
	}
}

func TestEscrowReclaimForfeitsEscrow(t *testing.T) {
	e, reg := newTestLedger(t, 100, nil, time.Second)
	now := time.Unix(1000, 0)
	e.now = func() time.Time { return now }
	_, _, _ = e.Grant("etl", "h1", 0, 40, false)
	if rec := e.ReclaimExpired(); len(rec) != 0 {
		t.Fatalf("live lease reclaimed: %v", rec)
	}
	now = now.Add(2 * time.Second)
	rec := e.ReclaimExpired()
	if len(rec) != 1 || rec[0].Holder != "h1" || rec[0].Escrow != 40 {
		t.Fatalf("reclaim = %+v, want h1/40", rec)
	}
	// Conservative: the forfeited escrow does NOT return to the pool.
	if got := reg.Get("etl").Remaining(); got != 60 {
		t.Errorf("pool remaining after reclaim = %v, want 60", got)
	}
}

func TestEscrowRenewExtendsExpiry(t *testing.T) {
	e, _ := newTestLedger(t, 100, nil, time.Second)
	now := time.Unix(1000, 0)
	e.now = func() time.Time { return now }
	_, _, _ = e.Grant("etl", "h1", 0, 40, false)
	now = now.Add(900 * time.Millisecond)
	_, _, _ = e.Grant("etl", "h1", 0, 1, false) // renewal
	now = now.Add(900 * time.Millisecond)
	if rec := e.ReclaimExpired(); len(rec) != 0 {
		t.Fatalf("renewed lease reclaimed: %+v", rec)
	}
}

func TestEscrowRejectsBadInput(t *testing.T) {
	e, _ := newTestLedger(t, 100, nil, 0)
	if _, _, err := e.Grant("nope", "h1", 0, 1, false); err == nil {
		t.Error("unknown tenant accepted")
	}
	if _, _, err := e.Grant("etl", "", 0, 1, false); err == nil {
		t.Error("empty holder accepted")
	}
	if _, _, err := e.Grant("etl", "h1", -1, 0, false); err == nil {
		t.Error("negative spent accepted")
	}
	if _, _, err := e.Grant("etl", "h1", 0, math.NaN(), false); err == nil {
		t.Error("NaN want accepted")
	}
}

// TestEscrowConcurrentGrantsNeverOvercommit is the core invariant: the sum
// of all grants plus owner-local debits can never exceed the pool budget.
func TestEscrowConcurrentGrantsNeverOvercommit(t *testing.T) {
	const budget = 1000.0
	e, _ := newTestLedger(t, budget, nil, 0)
	var mu sync.Mutex
	var total float64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			holder := string(rune('a' + w))
			for i := 0; i < 200; i++ {
				var got float64
				if i%3 == 0 {
					if ok, _ := e.DebitLocal("etl", 1.5); ok {
						got = 1.5
					}
				} else {
					g, _, _ := e.Grant("etl", holder, 0, 2, false)
					got = g
				}
				mu.Lock()
				total += got
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if total > budget+1e-6 {
		t.Fatalf("handed out %v machine-seconds from a %v pool", total, budget)
	}
}

func TestEscrowRebaseFreshLedgerReReservesLeases(t *testing.T) {
	old := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(old, nil, 0)
	_, _, _ = e.Grant("etl", "h1", 0, 40, false)

	// Budget reshaped: the reloaded pool starts full at 200 and must have
	// the outstanding 40 re-debited, or the fleet could spend 200 + 40.
	fresh := mustRegistry(t, map[string]Limits{"etl": {Budget: 200}})
	fresh.Rebase(old)
	e.Rebase(old, fresh)
	if got := fresh.Get("etl").Remaining(); got != 160 {
		t.Errorf("reshaped pool remaining = %v, want 160", got)
	}
	if _, escrow := e.Outstanding("etl"); escrow != 40 {
		t.Errorf("outstanding escrow = %v, want 40", escrow)
	}
}

func TestEscrowRebaseSharedLedgerUntouched(t *testing.T) {
	old := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(old, nil, 0)
	_, _, _ = e.Grant("etl", "h1", 0, 40, false)

	// Same budget shape: Rebase shares the bucket, which already sits at 60.
	fresh := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	fresh.Rebase(old)
	e.Rebase(old, fresh)
	if got := fresh.Get("etl").Remaining(); got != 60 {
		t.Errorf("carried pool remaining = %v, want 60 (no double re-reserve)", got)
	}
}

func TestEscrowRebaseDropsVanishedTenants(t *testing.T) {
	old := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(old, nil, 0)
	_, _, _ = e.Grant("etl", "h1", 0, 40, false)
	fresh := mustRegistry(t, map[string]Limits{"other": {Budget: 10}})
	fresh.Rebase(old)
	e.Rebase(old, fresh)
	if holders, _ := e.Outstanding("etl"); holders != 0 {
		t.Errorf("vanished tenant kept %d leases", holders)
	}
}

// --- holder-side lease ----------------------------------------------------

func TestLeaseDebitAndSpent(t *testing.T) {
	var l Lease
	l.Fund(10)
	ok, rem := l.TryDebit(4)
	if !ok || rem != 6 {
		t.Fatalf("TryDebit = (%v, %v), want (true, 6)", ok, rem)
	}
	if ok, _ := l.TryDebit(7); ok {
		t.Fatal("overdraft allowed")
	}
	if got := l.TakeSpent(); got != 4 {
		t.Errorf("TakeSpent = %v, want 4", got)
	}
	if got := l.TakeSpent(); got != 0 {
		t.Errorf("second TakeSpent = %v, want 0", got)
	}
	l.Refund(4)
	if got := l.TakeSpent(); got != 4 {
		t.Errorf("refunded TakeSpent = %v, want 4", got)
	}
}

func TestLeaseDebitRoundsUp(t *testing.T) {
	var l Lease
	l.Fund(1)
	// A sub-micro cost still charges one micro machine-second.
	if ok, rem := l.TryDebit(1e-9); !ok || rem >= 1 {
		t.Fatalf("TryDebit(1e-9) = (%v, %v)", ok, rem)
	}
}

func TestLeaseConcurrentDebitNeverOverdraws(t *testing.T) {
	var l Lease
	l.Fund(100)
	var wg sync.WaitGroup
	var mu sync.Mutex
	spent := 0.0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if ok, _ := l.TryDebit(0.05); ok {
					mu.Lock()
					spent += 0.05
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if spent > 100+1e-6 {
		t.Fatalf("spent %v from a 100 lease", spent)
	}
	if lvl := l.Level(); lvl < 0 {
		t.Fatalf("lease level went negative: %v", lvl)
	}
}

// TestEscrowDryPoolRenewalPersistsExpiry: a renewal that finds the pool dry
// grants nothing but still extends the lease in memory; the extension must
// reach the WAL too, or a restarted owner restores the lease with a stale
// expiry and reclaims escrow the live holder is still spending.
func TestEscrowDryPoolRenewalPersistsExpiry(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: 50}})
	e := NewEscrowLedger(reg, st, time.Second)
	now := time.Unix(1000, 0)
	e.now = func() time.Time { return now }
	if g, _, _ := e.Grant("etl", "h1", 0, 50, false); g != 50 {
		t.Fatal("grant did not drain the pool")
	}
	now = now.Add(900 * time.Millisecond)
	if g, _, err := e.Grant("etl", "h1", 0, 10, false); err != nil || g != 0 {
		t.Fatalf("dry renewal = (%v, %v), want a zero grant", g, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	state := st2.State()
	if len(state.Leases) != 1 {
		t.Fatalf("recovered leases = %+v, want one", state.Leases)
	}
	want := now.Add(time.Second).UnixNano()
	if got := state.Leases[0].ExpiryUnixNano; got != want {
		t.Errorf("recovered expiry = %d, want %d (dry renewal extension lost)", got, want)
	}
}
