package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"

	"chronos/internal/obs"
)

// Plan-cache warmth across restarts. The cache is pure derived state, so it
// needs none of the ledger's WAL ceremony — two best-effort paths rebuild it
// after a restart instead:
//
//   - On Close the hot entries are dumped to <data-dir>/plancache.json and
//     reloaded by the next boot (same replica, same disk).
//   - A replica joining a fleet can bulk-fetch the keys it owns on the ring
//     from every peer's cache over GET /v1/cache/owned (WarmFromPeers), so
//     ownership that moved to it in a reshard arrives pre-solved.
//
// Both paths lose nothing on failure: a cold entry is re-solved on first
// use.

// cacheDumpFile sits next to the escrow snapshot under -data-dir.
const cacheDumpFile = "plancache.json"

// maxCacheWarmEntries bounds one /v1/cache/owned response so a huge cache
// cannot make the warm call a memory event on either side.
const maxCacheWarmEntries = 4096

// cacheOwnedResponse is the GET /v1/cache/owned payload.
type cacheOwnedResponse struct {
	Plans []savedPlan `json:"plans"`
}

func (s *Server) cacheDumpPath() string {
	if s.cfg.Store == nil {
		return ""
	}
	return filepath.Join(s.cfg.Store.Dir(), cacheDumpFile)
}

// saveCache dumps the plan cache under the data dir. The write is durable,
// not just atomic: temp file, File.Sync, rename, then a directory fsync —
// a rename alone only orders the metadata in the page cache, so a power
// loss right after Close could otherwise surface an empty or missing dump
// despite the rename ceremony.
func (s *Server) saveCache() {
	path := s.cacheDumpPath()
	if path == "" {
		return
	}
	entries := s.cache.dump()
	raw, err := json.Marshal(entries)
	if err != nil {
		s.logOp().Error("plan cache dump encode failed", "error", err.Error())
		return
	}
	if err := writeFileDurable(path, raw); err != nil {
		s.logOp().Error("plan cache dump failed", "error", err.Error())
		return
	}
	s.logOp().Info("plan cache dumped", "entries", len(entries), "path", path)
}

// writeFileDurable writes data to path via temp+rename, fsyncing both the
// file (contents reach disk before the rename can) and its directory (the
// rename itself reaches disk).
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// loadCache warms the cache from the previous run's dump; absence is just a
// first boot, corruption is logged and skipped (the cache re-fills itself).
func (s *Server) loadCache() {
	path := s.cacheDumpPath()
	if path == "" {
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var entries []savedPlan
	if err := json.Unmarshal(raw, &entries); err != nil {
		s.logOp().Warn("plan cache dump unreadable", "path", path, "error", err.Error())
		return
	}
	s.logOp().Info("plan cache warmed from disk", "entries", s.cache.load(entries))
}

// handleCacheOwned serves GET /v1/cache/owned?holder=<base-url>: the cached
// plans whose keys the named replica owns on this replica's current ring
// view. A booting replica calls this on every peer to arrive pre-solved for
// its keyspace share. Without a ring there is no ownership to filter by and
// the answer is empty.
func (s *Server) handleCacheOwned(w http.ResponseWriter, r *http.Request) {
	holder := r.URL.Query().Get("holder")
	if holder == "" {
		s.apiError(w, r, http.StatusBadRequest, "holder query parameter is required")
		return
	}
	resp := cacheOwnedResponse{Plans: []savedPlan{}}
	if rs := s.ringSt.Load(); rs != nil {
		for _, e := range s.cache.dump() {
			if owner, ok := rs.ring.Owner(e.Key); ok && owner == holder {
				resp.Plans = append(resp.Plans, e)
				if len(resp.Plans) >= maxCacheWarmEntries {
					break
				}
			}
		}
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// WarmFromPeers bulk-fetches the plans this replica owns from every peer's
// cache. cmd/chronosd calls it once at boot, after the ring is configured
// and before (or concurrently with) serving traffic; failures are logged
// and skipped — a peer that cannot answer just means those keys are solved
// on first use. Returns the number of plans loaded.
func (s *Server) WarmFromPeers(ctx context.Context) int {
	rs := s.ringSt.Load()
	if rs == nil {
		return 0
	}
	total := 0
	for peer := range rs.peers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			peer+"/v1/cache/owned?holder="+url.QueryEscape(rs.self), nil)
		if err != nil {
			continue
		}
		req.Header.Set(obs.TraceHeader, obs.MintID())
		httpResp, err := s.forwardClient.Do(req)
		if err != nil {
			s.logOp().Warn("cache warm: peer unreachable", "peer", peer, "error", err.Error())
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(httpResp.Body, s.cfg.MaxBodyBytes*16))
		httpResp.Body.Close()
		if err != nil || httpResp.StatusCode != http.StatusOK {
			s.logOp().Warn("cache warm: peer answered badly", "peer", peer, "status", httpResp.StatusCode)
			continue
		}
		var resp cacheOwnedResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			continue
		}
		total += s.cache.load(resp.Plans)
	}
	if total > 0 {
		s.logOp().Info("plan cache warmed from peers", "entries", total)
	}
	return total
}
