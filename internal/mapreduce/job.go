// Package mapreduce implements the MapReduce execution substrate Chronos is
// evaluated on: jobs split into parallel tasks, task attempts with JVM
// startup delays and byte-offset resume, progress scores, completion-time
// estimators (Hadoop's default and the improved Chronos estimator of Eq. 30),
// and an application-master-style runtime that launches attempts on cluster
// containers and drives speculation strategies.
package mapreduce

import (
	"fmt"

	"chronos/internal/pareto"
)

// JVMModel describes the JVM/container startup delay added before an attempt
// begins processing data. The delay is sampled uniformly in [Min, Max]
// (constant when Min == Max). The paper's Eq. 30 exists precisely because
// this delay breaks Hadoop's completion-time estimator.
type JVMModel struct {
	Min float64
	Max float64
}

// Sample draws one startup delay.
func (m JVMModel) Sample(rng interface{ Float64() float64 }) float64 {
	if m.Max <= m.Min {
		return m.Min
	}
	return m.Min + rng.Float64()*(m.Max-m.Min)
}

// StageKind distinguishes map from reduce tasks.
type StageKind int

// The two MapReduce stages.
const (
	// StageMap tasks run from job start.
	StageMap StageKind = iota
	// StageReduce tasks become runnable when every map task has finished.
	StageReduce
)

// String implements fmt.Stringer.
func (k StageKind) String() string {
	if k == StageReduce {
		return "reduce"
	}
	return "map"
}

// ReduceSpec optionally adds a reduce stage to a job. The paper's analysis
// "applies to MapReduce jobs, whose PoCD for map and reduce stages can be
// optimized separately" (Section I); strategies re-plan r for the reduce
// stage when it becomes runnable, against the remaining deadline budget.
type ReduceSpec struct {
	// NumTasks is the number of reduce tasks (0 disables the stage).
	NumTasks int
	// Dist is the intrinsic reduce-task processing-time distribution.
	Dist pareto.Dist
	// SplitBytes is the shuffled input per reduce task.
	SplitBytes int64
}

// Enabled reports whether the job has a reduce stage.
func (r ReduceSpec) Enabled() bool { return r.NumTasks > 0 }

// JobSpec is the immutable description of a submitted job.
type JobSpec struct {
	// ID uniquely identifies the job; it keys the random streams.
	ID int
	// Name is a human label (benchmark name, trace job id).
	Name string
	// NumTasks is the number of parallel map tasks.
	NumTasks int
	// Deadline is the job deadline in seconds after arrival.
	Deadline float64
	// Dist is the intrinsic full-split processing-time distribution of one
	// map attempt (before contention slowdown).
	Dist pareto.Dist
	// SplitBytes is the input split size per map task, used by the
	// byte-offset bookkeeping of Speculative-Resume.
	SplitBytes int64
	// JVM is the attempt startup-delay model.
	JVM JVMModel
	// UnitPrice is the per-unit-machine-time VM price C for this job.
	UnitPrice float64
	// Arrival is the submission time.
	Arrival float64
	// Reduce optionally adds a reduce stage gated on map completion.
	Reduce ReduceSpec
	// MapDeadlineFrac is the fraction of the deadline budgeted to the map
	// stage when planning (only meaningful with a reduce stage; default
	// 0.5).
	MapDeadlineFrac float64
}

// Validate reports spec errors.
func (s JobSpec) Validate() error {
	if s.NumTasks < 1 {
		return fmt.Errorf("mapreduce: job %d has %d tasks", s.ID, s.NumTasks)
	}
	if err := s.Dist.Validate(); err != nil {
		return fmt.Errorf("mapreduce: job %d: %w", s.ID, err)
	}
	if s.Deadline <= 0 {
		return fmt.Errorf("mapreduce: job %d deadline %v <= 0", s.ID, s.Deadline)
	}
	if s.SplitBytes <= 0 {
		return fmt.Errorf("mapreduce: job %d split bytes %d <= 0", s.ID, s.SplitBytes)
	}
	if s.JVM.Min < 0 || s.JVM.Max < s.JVM.Min {
		return fmt.Errorf("mapreduce: job %d invalid JVM delay [%v, %v]", s.ID, s.JVM.Min, s.JVM.Max)
	}
	if s.Arrival < 0 {
		return fmt.Errorf("mapreduce: job %d negative arrival %v", s.ID, s.Arrival)
	}
	if s.Reduce.Enabled() {
		if err := s.Reduce.Dist.Validate(); err != nil {
			return fmt.Errorf("mapreduce: job %d reduce stage: %w", s.ID, err)
		}
		if s.Reduce.SplitBytes <= 0 {
			return fmt.Errorf("mapreduce: job %d reduce split bytes %d <= 0", s.ID, s.Reduce.SplitBytes)
		}
		if s.MapDeadlineFrac < 0 || s.MapDeadlineFrac >= 1 {
			return fmt.Errorf("mapreduce: job %d map deadline fraction %v outside [0, 1)", s.ID, s.MapDeadlineFrac)
		}
	}
	return nil
}

// MapBudget returns the planning deadline for the map stage: the full
// deadline for map-only jobs, MapDeadlineFrac (default 0.5) of it when a
// reduce stage follows.
func (s JobSpec) MapBudget() float64 {
	if !s.Reduce.Enabled() {
		return s.Deadline
	}
	frac := s.MapDeadlineFrac
	if frac == 0 {
		frac = 0.5
	}
	return frac * s.Deadline
}

// Job is the runtime state of one submitted job.
type Job struct {
	// Spec is the submitted description.
	Spec JobSpec
	// Tasks are the job's parallel tasks: map tasks first, then reduce
	// tasks (if any).
	Tasks []*Task
	// Done flips when the last task completes.
	Done bool
	// FinishTime is the completion instant (valid when Done).
	FinishTime float64
	// MapDone flips when every map task has completed (always before Done).
	MapDone bool
	// MapFinishTime is the map-stage completion instant (valid when
	// MapDone).
	MapFinishTime float64
	// MachineTime accumulates container occupancy across all attempts of
	// the job, the paper's execution-cost measure.
	MachineTime float64
	// SpotCost accumulates the spot-priced cost of that occupancy when the
	// runtime is configured with a spot-price series (zero otherwise).
	SpotCost float64
	// ChosenR records the r selected by the strategy's optimizer for the
	// map stage, for the Figure 5 histograms. -1 when the strategy does
	// not optimize r.
	ChosenR int
	// ChosenReduceR records the reduce-stage r (-1 if unset).
	ChosenReduceR int

	doneTasks    int
	doneMapTasks int
	// liveAttempts counts attempts that are queued or running; the job
	// settles (accounting final) when it is Done and this reaches zero.
	liveAttempts int
	settled      bool
	strategy     Strategy
	rt           *Runtime
}

// Settled reports whether the job's accounting is final: Done with no
// attempt still queued or running, so MachineTime and Cost cannot change.
func (j *Job) Settled() bool { return j.settled }

// StrategyName returns the driving strategy's name ("" before Submit).
func (j *Job) StrategyName() string {
	if j.strategy == nil {
		return ""
	}
	return j.strategy.Name()
}

// Deadline returns the absolute deadline instant.
func (j *Job) Deadline() float64 { return j.Spec.Arrival + j.Spec.Deadline }

// MetDeadline reports whether the job finished before its deadline.
func (j *Job) MetDeadline() bool {
	return j.Done && j.FinishTime <= j.Deadline()+1e-9
}

// Cost returns the job's execution cost: the exact spot-market cost when
// the runtime prices against a spot series, otherwise the paper's fixed
// UnitPrice times machine time.
func (j *Job) Cost() float64 {
	if j.rt != nil && j.rt.cfg.SpotIntegral != nil {
		return j.SpotCost
	}
	return j.Spec.UnitPrice * j.MachineTime
}

// DoneTasks returns the number of completed tasks.
func (j *Job) DoneTasks() int { return j.doneTasks }

// MapTasks returns the map-stage tasks.
func (j *Job) MapTasks() []*Task { return j.Tasks[:j.Spec.NumTasks] }

// ReduceTasks returns the reduce-stage tasks (empty for map-only jobs).
func (j *Job) ReduceTasks() []*Task { return j.Tasks[j.Spec.NumTasks:] }

// Task is one parallel unit of work of a job.
type Task struct {
	// Job backlink.
	Job *Job
	// ID is the task index within the job (map tasks first).
	ID int
	// Stage is the task's MapReduce stage.
	Stage StageKind
	// Attempts lists every attempt ever launched for the task, in launch
	// order (index 0 is the original).
	Attempts []*Attempt
	// Done flips when the first attempt finishes.
	Done bool
	// FinishTime is the completion instant (valid when Done).
	FinishTime float64

	nextAttempt int
}

// Running returns the attempts currently holding a container and processing.
func (t *Task) Running() []*Attempt {
	var out []*Attempt
	for _, a := range t.Attempts {
		if a.State == AttemptRunning {
			out = append(out, a)
		}
	}
	return out
}

// Active returns attempts that are queued or running.
func (t *Task) Active() []*Attempt {
	var out []*Attempt
	for _, a := range t.Attempts {
		if a.State == AttemptQueued || a.State == AttemptRunning {
			out = append(out, a)
		}
	}
	return out
}

// BestRunning returns the running attempt with the smallest estimated
// completion time under the estimator, or nil if none is running. This is
// the "attempt with the best progress" kept alive at tauKill.
func (t *Task) BestRunning(now float64, est Estimator) *Attempt {
	var best *Attempt
	bestEst := 0.0
	for _, a := range t.Running() {
		e := est(a, now)
		if best == nil || e < bestEst {
			best, bestEst = a, e
		}
	}
	return best
}

// MaxProgress returns the highest task-level progress across attempts
// (completed tasks report 1).
func (t *Task) MaxProgress(now float64) float64 {
	if t.Done {
		return 1
	}
	best := 0.0
	for _, a := range t.Attempts {
		if p := a.Progress(now); p > best {
			best = p
		}
	}
	return best
}
