package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestStoreRoundTripThroughWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(reg, st, time.Hour)
	if err := e.Compact(); err != nil { // anchor snapshot, as boot does
		t.Fatal(err)
	}
	if ok, _ := e.DebitLocal("etl", 10); !ok {
		t.Fatal("debit failed")
	}
	if g, _, _ := e.Grant("etl", "h1", 0, 30, false); g != 30 {
		t.Fatal("grant failed")
	}
	if _, _, err := e.Grant("etl", "h1", 5, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process: replay the WAL (no snapshot was ever compacted).
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	state := st2.State()
	if got := state.Pools["etl"]; got != 60 {
		t.Errorf("replayed pool level = %v, want 60 (100 - 10 debit - 30 grant)", got)
	}
	if len(state.Leases) != 1 || state.Leases[0].Escrow != 25 {
		t.Errorf("replayed leases = %+v, want one h1 lease with escrow 25", state.Leases)
	}
}

func TestStoreSnapshotPlusTailReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(reg, st, time.Hour)
	_, _, _ = e.Grant("etl", "h1", 0, 30, false)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations land in the (now truncated) WAL.
	if ok, _ := e.DebitLocal("etl", 7); !ok {
		t.Fatal("debit failed")
	}
	_, _, _ = e.Grant("etl", "h1", 30, 0, true) // spend everything, release
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	state := st2.State()
	if got := state.Pools["etl"]; got != 63 {
		t.Errorf("recovered level = %v, want 63 (70 snapshot - 7 debit; release returned 0)", got)
	}
	if len(state.Leases) != 0 {
		t.Errorf("released lease survived recovery: %+v", state.Leases)
	}
}

// TestStoreDuplicateReplayImpossible simulates the crash window between
// snapshot rename and WAL truncation: records already folded into the
// snapshot must not be applied twice.
func TestStoreDuplicateReplayImpossible(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(reg, st, time.Hour)
	if ok, _ := e.DebitLocal("etl", 40); !ok {
		t.Fatal("debit failed")
	}
	// Snapshot the state but "crash" before truncation: rewrite the WAL
	// with its pre-compaction contents.
	walPath := filepath.Join(dir, walFile)
	pre, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, pre, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.State().Pools["etl"]; got != 60 {
		t.Errorf("level after duplicate-replay crash = %v, want 60 (debit applied once)", got)
	}
}

func TestStoreTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(reg, st, time.Hour)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	_, _ = e.DebitLocal("etl", 10)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn final append: half a JSON object with no newline.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"op":"debit","ten`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("torn WAL tail should not fail boot: %v", err)
	}
	defer st2.Close()
	if got := st2.State().Pools["etl"]; got != 90 {
		t.Errorf("level = %v, want 90 (intact prefix applied, torn tail dropped)", got)
	}
}

func TestStoreSequencesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = st.Append(Record{Op: OpDebit, Tenant: "etl", Amount: 1})
	_ = st.Append(Record{Op: OpDebit, Tenant: "etl", Amount: 1})
	st.Close()
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = st2.Append(Record{Op: OpDebit, Tenant: "etl", Amount: 1})
	st2.Close()
	raw, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"seq":3`) {
		t.Errorf("reopened store did not continue the sequence:\n%s", raw)
	}
}
