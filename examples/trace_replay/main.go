// trace_replay: a large-scale, trace-driven comparison.
//
// This example mirrors the paper's Section VII-B evaluation: generate a
// Google-trace-like stream of MapReduce jobs (heavy-tailed task counts and
// per-job Pareto task-time distributions, deadlines at 2x the mean task
// time) and replay it under every strategy on the simulated datacenter,
// reporting PoCD, cost, and net utility.
//
// Run with:
//
//	go run ./examples/trace_replay
package main

import (
	"fmt"
	"log"
	"sort"

	"chronos"
)

func main() {
	stream, err := chronos.SyntheticTrace(chronos.TraceConfig{
		Jobs:           150,
		HorizonSeconds: 2 * 3600,
		DeadlineRatio:  2,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	totalTasks := 0
	for _, j := range stream {
		totalTasks += j.Tasks
	}
	fmt.Printf("replaying %d jobs (%d tasks) over 2 simulated hours\n\n", len(stream), totalTasks)

	econ := chronos.Econ{Theta: 1e-4, UnitPrice: 1}
	results := make(map[chronos.Strategy]chronos.Report)
	order := []chronos.Strategy{
		chronos.HadoopNS, chronos.HadoopS, chronos.LATE, chronos.Mantri,
		chronos.Clone, chronos.SpeculativeRestart, chronos.SpeculativeResume,
	}
	for _, s := range order {
		rep, err := chronos.Simulate(chronos.SimConfig{
			Strategy: s,
			Seed:     7, // common random numbers across strategies
			Econ:     econ,
			// Ample capacity, as in the paper's trace-driven simulator:
			// large jobs (up to 2000 tasks) plus their clones must not
			// serialize behind each other.
			Nodes:        2048,
			SlotsPerNode: 8,
		}, stream)
		if err != nil {
			log.Fatal(err)
		}
		results[s] = rep
	}

	fmt.Printf("%-22s %-8s %-12s %-10s\n", "strategy", "PoCD", "mean cost", "utility")
	for _, s := range order {
		rep := results[s]
		fmt.Printf("%-22s %-8.3f %-12.1f %-10.3f\n", s, rep.PoCD, rep.MeanCost, rep.Utility)
	}

	// The distribution of optimizer-chosen r for the work-preserving
	// strategy (the Figure 5 view).
	resume := results[chronos.SpeculativeResume]
	var rs []int
	for r := range resume.RHistogram {
		rs = append(rs, r)
	}
	sort.Ints(rs)
	fmt.Println("\nSpeculative-Resume optimal-r distribution:")
	for _, r := range rs {
		fmt.Printf("  r=%d: %d jobs\n", r, resume.RHistogram[r])
	}
}
