package server

import "sync"

// workerPool bounds the total optimization concurrency across every
// in-flight request, so a burst of large batch calls degrades into queueing
// instead of spawning unbounded goroutines that thrash the scheduler.
type workerPool struct {
	sem chan struct{}
}

func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	return &workerPool{sem: make(chan struct{}, workers)}
}

// fanOut runs fn(0..n-1) with at most the pool's worker count in flight and
// returns when all calls finish. Multiple concurrent fanOut calls share the
// same bound.
func (p *workerPool) fanOut(n int, fn func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.sem <- struct{}{}
		go func(i int) {
			defer func() {
				<-p.sem
				wg.Done()
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
}
