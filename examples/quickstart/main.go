// Quickstart: plan speculative execution for one deadline-critical
// MapReduce job, then verify the plan on the discrete-event simulator.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chronos"
)

func main() {
	// A job of 10 parallel map tasks whose attempt execution times are
	// heavy-tailed (Pareto with tmin = 10 s and tail index 1.5, as measured
	// on contended clusters), with a 100 s deadline. Stragglers are
	// detected at t = 30 s and redundant attempts pruned at t = 60 s.
	job := chronos.JobParams{
		Tasks:    10,
		Deadline: 100,
		TMin:     10,
		Beta:     1.5,
		TauEst:   30,
		TauKill:  60,
	}
	// The economics: every 1% of PoCD is worth 100 machine-seconds of
	// spend (theta = 1e-4 at unit price 1).
	econ := chronos.Econ{Theta: 1e-4, UnitPrice: 1}

	// 1. Ask the optimizer (Algorithm 1 of the paper) for the best
	// strategy and number of extra attempts r.
	plan, err := chronos.OptimizeBest(job, econ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned: %s with r=%d extra attempts\n", plan.Strategy, plan.R)
	fmt.Printf("  predicted PoCD     = %.4f\n", plan.PoCD)
	fmt.Printf("  predicted E[cost]  = %.1f machine-seconds\n", plan.MachineTime)
	fmt.Printf("  net utility        = %.4f\n\n", plan.Utility)

	// 2. Replay 200 such jobs on the simulated cluster under that plan and
	// compare against running with no speculation at all.
	jobs := make([]chronos.SimJob, 200)
	for i := range jobs {
		jobs[i] = chronos.SimJob{
			Tasks:    job.Tasks,
			Deadline: job.Deadline,
			TMin:     job.TMin,
			Beta:     job.Beta,
			Arrival:  float64(i) * 400,
		}
	}
	cfg := chronos.SimConfig{
		Strategy: plan.Strategy,
		Seed:     1,
		TauEst:   job.TauEst,
		TauKill:  job.TauKill,
		TauScale: chronos.TauAbsolute,
		Econ:     econ,
	}
	got, err := chronos.Simulate(cfg, jobs)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Strategy = chronos.HadoopNS
	baseline, err := chronos.Simulate(cfg, jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated over %d jobs:\n", got.Jobs)
	fmt.Printf("  %-22s PoCD=%.3f  cost=%.1f\n", plan.Strategy, got.PoCD, got.MeanCost)
	fmt.Printf("  %-22s PoCD=%.3f  cost=%.1f\n", chronos.HadoopNS, baseline.PoCD, baseline.MeanCost)
	fmt.Printf("\nspeculation lifted PoCD by %.0f%% for %.0f%% of the no-speculation cost\n",
		100*(got.PoCD-baseline.PoCD), 100*got.MeanCost/baseline.MeanCost)
}
