// Package speculate implements the speculation strategies evaluated in the
// Chronos paper on top of the mapreduce substrate:
//
//   - the three Chronos strategies — Clone, Speculative-Restart and
//     Speculative-Resume — each of which picks its number of extra attempts r
//     by solving the joint PoCD/cost optimization (Algorithm 1) at job
//     submission;
//   - the baselines — Hadoop-NS (no speculation), Hadoop-S (default Hadoop
//     speculation), Mantri, and LATE (an extension).
package speculate

import (
	"math"

	"chronos/internal/analysis"
	"chronos/internal/mapreduce"
	"chronos/internal/optimize"
)

// ChronosConfig is shared by the three Chronos strategies.
type ChronosConfig struct {
	// TauEst is the straggler-detection instant, in seconds after job
	// arrival. Ignored by Clone.
	TauEst float64
	// TauKill is the instant at which all but the best attempt of each
	// unfinished task are killed, in seconds after job arrival.
	TauKill float64
	// Opt carries theta and RMin for the net-utility optimization. The
	// unit price is taken from each job's spec; Opt.UnitPrice is ignored.
	Opt optimize.Config
	// FixedR, when >= 0, bypasses the optimizer and uses the given number
	// of extra attempts. Used by ablation benchmarks. Default -1.
	FixedR int
	// Estimator predicts attempt completion times; defaults to the
	// improved Chronos estimator (Eq. 30).
	Estimator mapreduce.Estimator
	// PlanSlots, when > 0, makes the optimizer account for slot-limited
	// multi-wave execution: a job whose N*(r+1) attempts exceed PlanSlots
	// runs in sequential waves, so the per-wave deadline shrinks (the
	// analysis.WaveModel bound). Zero plans as if capacity were unlimited,
	// the paper's setting.
	PlanSlots int
}

// withDefaults fills zero values.
func (c ChronosConfig) withDefaults() ChronosConfig {
	if c.Estimator == nil {
		c.Estimator = mapreduce.ChronosEstimator
	}
	return c
}

// chooseStageR solves the joint optimization for one stage of a job, as the
// AM does in the paper's prototype (and again at reduce-stage start, against
// the remaining deadline budget). On optimizer failure (infeasible RMin,
// degenerate parameters such as an exhausted budget) it falls back to r = 1,
// which mirrors Hadoop's single speculative copy.
func (c ChronosConfig) chooseStageR(s analysis.Strategy, job *mapreduce.Job, st stage) int {
	if c.FixedR >= 0 {
		return c.FixedR
	}
	cfg := c.Opt
	cfg.UnitPrice = job.Spec.UnitPrice
	var model analysis.Model = analysis.NewModel(s, stageParams(job, st, c))
	if c.PlanSlots > 0 {
		wave, err := analysis.NewWaveModel(model, c.PlanSlots)
		if err == nil {
			model = wave
		}
	}
	res, err := optimize.Solve(model, cfg)
	if err != nil {
		return 1
	}
	return res.R
}

// chooseR solves the map-stage optimization for a spec; kept as the
// submission-time planning entry point used by tests and tools.
func (c ChronosConfig) chooseR(s analysis.Strategy, spec mapreduce.JobSpec) int {
	job := &mapreduce.Job{Spec: spec}
	st := stage{kind: mapreduce.StageMap, budget: spec.MapBudget()}
	st.tasks = make([]*mapreduce.Task, spec.NumTasks)
	return c.chooseStageR(s, job, st)
}

// launchStaged starts one original attempt per map task now and, if the job
// has a reduce stage, one per reduce task when the map stage commits. The
// baselines use this; the Chronos strategies drive stages through their own
// per-stage planning.
func launchStaged(ctl *mapreduce.Controller) {
	job := ctl.Job()
	for _, t := range job.MapTasks() {
		ctl.Launch(t, 0)
	}
	if job.Spec.Reduce.Enabled() {
		ctl.OnMapStageDone(func() {
			for _, t := range job.ReduceTasks() {
				ctl.Launch(t, 0)
			}
		})
	}
}

// killLeftoversOnTaskDone mirrors production Hadoop: the moment a task
// commits, its redundant attempts are killed. The baselines (Hadoop-S,
// Mantri, LATE) use this; the Chronos strategies instead follow the paper's
// model and clean up at tauKill.
func killLeftoversOnTaskDone(ctl *mapreduce.Controller) {
	ctl.OnTaskDone(func(t *mapreduce.Task) {
		for _, a := range t.Active() {
			ctl.Kill(a)
		}
	})
}

// keepBestKillRest retains the attempt with the smallest estimated
// completion among the task's running attempts and kills every other active
// attempt (including queued ones). For tasks that already completed, every
// leftover redundant attempt is killed.
func keepBestKillRest(ctl *mapreduce.Controller, t *mapreduce.Task, est mapreduce.Estimator) {
	var best *mapreduce.Attempt
	if !t.Done {
		best = t.BestRunning(ctl.Now(), est)
		// If nothing is running yet (all attempts queued behind a saturated
		// cluster), killing would wedge the task forever.
		if best == nil {
			return
		}
		// If no attempt has produced a progress report yet (every estimate
		// is +Inf), killing would be a blind pick among indistinguishable
		// attempts — possibly discarding the fastest. Defer to natural
		// completion instead.
		if math.IsInf(est(best, ctl.Now()), 1) {
			return
		}
	}
	for _, a := range t.Active() {
		if a != best {
			ctl.Kill(a)
		}
	}
}
