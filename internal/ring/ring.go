// Package ring implements the consistent-hash ring that shards the chronosd
// plan-key space across a fleet of replicas. Each member is placed at many
// virtual points on a 64-bit hash circle; a key belongs to the first virtual
// point at or clockwise of the key's hash. Placement is fully deterministic
// (FNV-1a, no per-process seed), so every replica given the same membership
// computes the same owner for every key — the property that lets N replicas
// act as one large distributed plan cache instead of N overlapping small
// ones. The astronomically rare case of two members' virtual points
// colliding on the same circle position is broken per key by rendezvous
// hashing (highest combined key+member hash wins), which keeps ownership
// deterministic without privileging whichever member sorted first.
package ring

import (
	"sort"
	"strconv"
)

// FNV-1a parameters, inlined: hash/fnv's New64a hands back its state behind
// an interface, which makes every Owner lookup allocate. The inlined loops
// produce bit-identical hashes, so placement is unchanged.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// DefaultVirtualNodes is the per-member virtual-node count used when New is
// given a non-positive count. 512 keeps every member's keyspace share within
// roughly ±10% of uniform for fleets up to a few dozen replicas (share
// spread shrinks as 1/sqrt(virtual nodes)); construction stays well under a
// millisecond and lookups are a binary search over members×512 points.
const DefaultVirtualNodes = 512

// Ring is an immutable consistent-hash ring over a member set. Build a new
// Ring for every membership change; lookups on an existing Ring are safe for
// concurrent use.
type Ring struct {
	nodes  []string
	points []point // sorted by hash
}

// point is one virtual node: a position on the hash circle and the member it
// maps to.
type point struct {
	hash uint64
	node string
}

// hash64 is the ring's placement hash: FNV-1a run through a 64-bit
// finalizer. FNV is in the standard library and — critically —
// deterministic across processes and restarts (unlike hash/maphash), but
// its raw output diffuses the high bits poorly for short, nearly identical
// inputs like "host:8080#17", which skews arc widths badly; the
// MurmurHash3-style fmix64 finalizer restores full avalanche.
func hash64(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return fmix64(h)
}

func hash64Bytes(key []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return fmix64(h)
}

// fmix64 is the MurmurHash3 64-bit finalizer: a bijective mixer with full
// avalanche (every input bit flips each output bit with ~1/2 probability).
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rendezvousScore combines a key with a member name for tie-breaking. The
// NUL separator keeps distinct (key, node) pairs from concatenating to the
// same bytes.
func rendezvousScore(key, node string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	h *= fnvPrime64 // NUL separator: h ^= 0 is a no-op
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= fnvPrime64
	}
	return fmix64(h)
}

// New builds a ring over nodes with the given virtual-node count per member
// (non-positive means DefaultVirtualNodes). Duplicate and empty member names
// are dropped. An empty member set yields an empty ring whose Owner always
// reports no owner.
func New(nodes []string, virtualNodes int) *Ring {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	members := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		members = append(members, n)
	}
	sort.Strings(members)

	r := &Ring{
		nodes:  members,
		points: make([]point, 0, len(members)*virtualNodes),
	}
	// Virtual point i of member m is hash(m + "#" + i). The textual index
	// (not a binary encoding) keeps the placement trivially reproducible by
	// operators debugging ownership from a shell.
	var buf []byte
	for _, n := range members {
		for i := 0; i < virtualNodes; i++ {
			buf = buf[:0]
			buf = append(buf, n...)
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(i), 10)
			r.points = append(r.points, point{hash: hash64Bytes(buf), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the sorted member set (a copy).
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Owner returns the member that owns key. ok is false only on an empty
// ring.
func (r *Ring) Owner(key string) (owner string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	idx, end := r.span(hash64(key))
	if end == idx {
		return r.points[idx].node, true
	}
	return r.breakTie(key, idx, end), true
}

// OwnerBytes is Owner for a key still sitting in a pooled request buffer.
// It allocates nothing on the common path; the string form of the key is
// materialized only inside the astronomically rare collision tie-break.
func (r *Ring) OwnerBytes(key []byte) (owner string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	idx, end := r.span(hash64Bytes(key))
	if end == idx {
		return r.points[idx].node, true
	}
	return r.breakTie(string(key), idx, end), true
}

// Successors returns up to n distinct members in ring order starting at the
// virtual point that owns key: the owner first, then the members whose
// virtual points follow clockwise — exactly the members that inherit the
// key's arc, in order, as their predecessors leave the ring. This is the
// placement rule behind hot-key replication: a key's R−1 backup copies live
// on Successors(key, R)[1:], so when the owner is evicted the remapped owner
// already holds the entry. n is clamped to the member count. In the
// astronomically rare collision case the first element is resolved by the
// same rendezvous tie-break as Owner, so the two always agree.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	idx, end := r.span(hash64(key))
	out := r.walkSuccessors(idx, n)
	if end != idx {
		promote(out, r.breakTie(key, idx, end))
	}
	return out
}

// SuccessorsBytes is Successors for a key still in a pooled request buffer.
func (r *Ring) SuccessorsBytes(key []byte, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	idx, end := r.span(hash64Bytes(key))
	out := r.walkSuccessors(idx, n)
	if end != idx {
		promote(out, r.breakTie(string(key), idx, end))
	}
	return out
}

// promote moves owner to the front of nodes, preserving the relative order
// of the rest. A collision span's rendezvous winner may sit anywhere in the
// first few positions of the clockwise walk; it must lead the successor list
// so list[0] always agrees with Owner.
func promote(nodes []string, owner string) {
	for i, n := range nodes {
		if n == owner {
			copy(nodes[1:i+1], nodes[:i])
			nodes[0] = owner
			return
		}
	}
	// The winner fell outside the clamped walk (possible only when n was
	// smaller than the collision span); displace the head.
	if len(nodes) > 0 {
		nodes[0] = owner
	}
}

// walkSuccessors collects up to n distinct members walking clockwise from
// points[idx]. n is small (a replication factor), so the distinctness check
// is a linear scan.
func (r *Ring) walkSuccessors(idx, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		node := r.points[(idx+i)%len(r.points)].node
		dup := false
		for _, seen := range out {
			if seen == node {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, node)
		}
	}
	return out
}

// span locates the owning virtual point for hash h and extends across any
// colliding points at the same circle position, returning the [idx, end]
// index range (end == idx in the no-collision common case).
func (r *Ring) span(h uint64) (idx, end int) {
	idx = sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	if idx == len(r.points) {
		idx = 0 // wrap: keys past the last point belong to the first
	}
	end = idx
	for end+1 < len(r.points) && r.points[end+1].hash == r.points[end].hash {
		end++
	}
	return idx, end
}

// breakTie resolves a collision span — distinct members' virtual points at
// the same circle position — by rendezvous hashing, so ownership of the
// contested arc is split deterministically per key instead of granted to
// the lexicographically first member.
func (r *Ring) breakTie(key string, idx, end int) string {
	best, bestScore := r.points[idx].node, rendezvousScore(key, r.points[idx].node)
	for i := idx + 1; i <= end; i++ {
		n := r.points[i].node
		if n == best {
			continue
		}
		if sc := rendezvousScore(key, n); sc > bestScore || (sc == bestScore && n < best) {
			best, bestScore = n, sc
		}
	}
	return best
}

// OwnedFraction returns the fraction of the 64-bit keyspace owned by node:
// the summed width of the arcs whose clockwise endpoint is one of node's
// virtual points. Replicas export it as the chronosd_ring_owned_fraction
// gauge, so a fleet dashboard shows immediately when placement has drifted
// from uniform (or when a replica's membership view disagrees with its
// peers': the fleet-wide sum stops adding up to 1).
func (r *Ring) OwnedFraction(node string) float64 {
	if len(r.points) == 0 {
		return 0
	}
	if len(r.points) == 1 {
		// One virtual point owns the whole circle; the arc-width loop below
		// would compute a zero-width self-arc.
		if r.points[0].node == node {
			return 1
		}
		return 0
	}
	const keyspace = float64(1<<63) * 2 // 2^64
	var owned float64
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		// Width of (prev, p.hash] with wraparound; uint64 subtraction is
		// exactly arithmetic mod 2^64.
		width := p.hash - prev
		if p.node == node {
			owned += float64(width)
		}
		prev = p.hash
	}
	return owned / keyspace
}
