package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// Logger is the structured request logger: a slog JSON logger plus a 1-in-N
// sampler for per-request lines, so full-fidelity logging can be turned on
// for debugging while the default keeps the ~12µs cached plan path from
// paying a JSON encode per request. Operational (non-request) logs bypass
// the sampler via Op. A nil *Logger disables logging entirely.
type Logger struct {
	sl     *slog.Logger
	sample uint64
	seq    atomic.Uint64
}

// NewLogger builds a request logger writing JSON lines to w at the given
// level, logging every sample-th request line (sample <= 1 logs all).
func NewLogger(w io.Writer, level slog.Level, sample int) *Logger {
	return FromSlog(slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})), sample)
}

// FromSlog wraps an existing slog logger (cmd/chronosd builds one for its
// operational logs and shares it with the server) with request sampling.
func FromSlog(sl *slog.Logger, sample int) *Logger {
	if sl == nil {
		return nil
	}
	if sample < 1 {
		sample = 1
	}
	return &Logger{sl: sl, sample: uint64(sample)}
}

// Op returns the underlying unsampled slog logger for operational events
// (startup, reloads, shutdown), or nil on a nil receiver.
func (l *Logger) Op() *slog.Logger {
	if l == nil {
		return nil
	}
	return l.sl
}

// Request emits one sampled request line from a finished snapshot. Server
// errors (5xx) always log — when something broke, the trail matters more
// than the sampling budget; other lines log 1-in-sample. The stage breakdown
// is attached as a group with per-stage seconds, so a logged line carries
// the same decomposition /debug/traces shows.
func (l *Logger) Request(snap *Snapshot) {
	if l == nil || snap == nil {
		return
	}
	if snap.Status < 500 && l.seq.Add(1)%l.sample != 0 {
		return
	}
	if !l.sl.Enabled(context.Background(), slog.LevelInfo) {
		return
	}
	attrs := make([]slog.Attr, 0, 8+int(NumStages))
	attrs = append(attrs,
		slog.String("traceId", snap.ID),
		slog.String("route", snap.Route),
		slog.Int("status", snap.Status),
		slog.Float64("seconds", snap.Seconds),
	)
	if snap.Tenant != "" {
		attrs = append(attrs, slog.String("tenant", snap.Tenant))
	}
	if snap.Cached != nil {
		attrs = append(attrs, slog.Bool("cached", *snap.Cached))
	}
	if snap.ServedBy != "" {
		attrs = append(attrs, slog.String("servedBy", snap.ServedBy))
	}
	if snap.ForwardHop {
		attrs = append(attrs, slog.Bool("forwardHop", true))
	}
	var stages []any
	for s := Stage(0); s < NumStages; s++ {
		if snap.StageCounts[s] != 0 {
			stages = append(stages, slog.Float64(s.String(), snap.StageSeconds(s)))
		}
	}
	if stages != nil {
		attrs = append(attrs, slog.Group("stages", stages...))
	}
	level := slog.LevelInfo
	if snap.Status >= 500 {
		level = slog.LevelError
	}
	l.sl.LogAttrs(context.Background(), level, "request", attrs...)
}

// ParseLevel maps the -log-level flag vocabulary onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}
