package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 25
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("round-trip returned %d jobs, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		if got[i] != jobs[i] {
			t.Errorf("job %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], jobs[i])
		}
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	in := "id,arrival,tasks,tmin,beta,deadline\n1,0,5,10,1.5,100\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Error("bad header accepted")
	}
}

func TestReadCSVRejectsBadRecords(t *testing.T) {
	header := "id,arrival,num_tasks,tmin,beta,deadline\n"
	bad := []string{
		"x,0,5,10,1.5,100",  // bad id
		"1,-5,5,10,1.5,100", // negative arrival
		"1,0,0,10,1.5,100",  // zero tasks
		"1,0,5,0,1.5,100",   // zero tmin
		"1,0,5,10,0.9,100",  // beta <= 1
		"1,0,5,10,1.5,0",    // zero deadline
		"1,0,5,10,1.5",      // short record
		"1,zz,5,10,1.5,100", // bad float
		"1,0,zz,10,1.5,100", // bad int
		"1,0,5,zz,1.5,100",  // bad tmin
		"1,0,5,10,zz,100",   // bad beta
		"1,0,5,10,1.5,zz",   // bad deadline
	}
	for _, row := range bad {
		if _, err := ReadCSV(strings.NewReader(header + row + "\n")); err == nil {
			t.Errorf("bad record accepted: %q", row)
		}
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	in := "id,arrival,num_tasks,tmin,beta,deadline\n"
	jobs, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("empty body returned %d jobs", len(jobs))
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

// FuzzReadCSV exercises the parser with arbitrary input: it must never
// panic, and anything it accepts must round-trip through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,arrival,num_tasks,tmin,beta,deadline\n1,0,5,10,1.5,100\n")
	f.Add("id,arrival,num_tasks,tmin,beta,deadline\n")
	f.Add("")
	f.Add("id,arrival,num_tasks,tmin,beta,deadline\n1,0,5,10,1.5,100\n2,3.5,7,20,1.9,50\n")
	f.Fuzz(func(t *testing.T, in string) {
		jobs, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, jobs); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip of accepted trace failed: %v", err)
		}
		if len(again) != len(jobs) {
			t.Fatalf("round-trip changed job count: %d -> %d", len(jobs), len(again))
		}
	})
}
