package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"chronos"
	"chronos/internal/ring"
	"chronos/internal/server"
	"chronos/internal/tenant"
)

// newFleet boots n in-process chronosd replicas wired into one ring and
// returns a fleet client over them.
func newFleet(t *testing.T, n int, mkCfg func(i int) server.Config) (*Client, []*server.Server) {
	t.Helper()
	servers := make([]*server.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		servers[i] = server.New(mkCfg(i))
		ts := httptest.NewServer(servers[i].Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	for i := 0; i < n; i++ {
		if err := servers[i].SetRing(ring.Membership{Self: urls[i], Peers: urls}); err != nil {
			t.Fatalf("SetRing(replica %d): %v", i, err)
		}
	}
	c, err := NewFleet(urls)
	if err != nil {
		t.Fatal(err)
	}
	return c, servers
}

// TestFleetClientRoutesToOwner is the client package's core property: the
// client-side ring agrees with the server-side ring, so plan requests land
// on the owning replica directly and the servers never pay a forward hop.
func TestFleetClientRoutesToOwner(t *testing.T) {
	c, _ := newFleet(t, 3, func(i int) server.Config { return server.Config{} })
	ctx := context.Background()
	econ := chronos.Econ{Theta: 1e-4, UnitPrice: 1}
	for i := 0; i < 12; i++ {
		job := chronos.JobParams{
			Tasks: 10 + i, Deadline: 100, TMin: 10, Beta: 1.5,
			TauEst: 30, TauKill: 60,
		}
		if _, err := c.Plan(ctx, PlanRequest{Job: job, Econ: econ}); err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
	}
	// If the client mis-routed anything, some replica would report a
	// received forward or an outbound forward.
	for i, base := range c.Replicas() {
		text, err := metricsAt(ctx, c, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, metric := range []string{
			"chronosd_ring_received_forwards_total",
			"chronosd_ring_forwarded_total",
		} {
			for _, line := range strings.Split(text, "\n") {
				if strings.HasPrefix(line, metric) && !strings.HasSuffix(line, " 0") {
					t.Errorf("replica %d: client-side routing missed the owner: %s", i, line)
				}
			}
		}
	}
}

// metricsAt fetches one specific replica's metrics (Metrics() round-robins,
// which the routing assertion must not depend on).
func metricsAt(ctx context.Context, c *Client, base string) (string, error) {
	solo := New(base, WithHTTPClient(c.http))
	return solo.Metrics(ctx)
}

// TestClientDecodesErrorEnvelope: a 429 tenant rejection surfaces as
// *client.Error carrying the unified envelope's code and trace ID.
func TestClientDecodesErrorEnvelope(t *testing.T) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"tiny": {Budget: 1, Theta: 1e-4, UnitPrice: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Tenants: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(ts.URL)

	job := chronos.JobParams{Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5, TauEst: 30, TauKill: 60}
	_, err = c.Plan(context.Background(), PlanRequest{Tenant: "tiny", Job: job})
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *client.Error, got %v", err)
	}
	if apiErr.Status != 429 {
		t.Errorf("status = %d, want 429", apiErr.Status)
	}
	if apiErr.Code != CodeBudgetExhausted {
		t.Errorf("code = %q, want %q", apiErr.Code, CodeBudgetExhausted)
	}
	if apiErr.TraceID == "" {
		t.Error("trace ID missing from error envelope")
	}
	if !strings.Contains(apiErr.Message, "tiny") {
		t.Errorf("message %q does not name the tenant", apiErr.Message)
	}
}

// TestClientAdmitAndBatch exercises the remaining typed endpoints against a
// solo replica.
func TestClientAdmitAndBatch(t *testing.T) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"team": {Budget: 5000, Theta: 1e-4, UnitPrice: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Tenants: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	job := chronos.JobParams{Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5, TauEst: 30, TauKill: 60}
	dec, err := c.Admit(ctx, AdmitRequest{Tenant: "team", Job: job})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted || dec.Plan == nil {
		t.Fatalf("admit = %+v, want admitted with a plan", dec)
	}

	batch, err := c.PlanBatch(ctx, BatchRequest{
		Jobs:   []BatchJob{{Job: job}, {Job: job, Strategy: "clone"}},
		Budget: 5000,
		Econ:   chronos.Econ{Theta: 1e-4, UnitPrice: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Plans) != 2 {
		t.Fatalf("batch plans = %d, want 2", len(batch.Plans))
	}
	if batch.TotalMachineTime > batch.Budget {
		t.Errorf("allocation %g exceeds budget %g", batch.TotalMachineTime, batch.Budget)
	}
}

// TestClientAdmitBatchFleet scatters one admission batch across a 3-replica
// fleet: the client splits jobs by plan-key owner, each replica decides its
// sub-batch locally (no forwards), and the merged results come back in
// input order with every job's plan.
func TestClientAdmitBatchFleet(t *testing.T) {
	mkReg := func() *tenant.Registry {
		reg, err := tenant.NewRegistry(map[string]tenant.Limits{
			"team": {Budget: 1e6, Theta: 1e-4, UnitPrice: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return reg
	}
	c, _ := newFleet(t, 3, func(i int) server.Config {
		return server.Config{Tenants: mkReg()}
	})
	ctx := context.Background()

	// Distinct job shapes spread plan keys over several owners.
	jobs := make([]AdmitBatchJob, 9)
	for i := range jobs {
		jobs[i] = AdmitBatchJob{Job: chronos.JobParams{
			Tasks: 10 + i, Deadline: 100, TMin: 10, Beta: 1.5,
			TauEst: 30, TauKill: 60,
		}}
	}
	resp, err := c.AdmitBatch(ctx, AdmitBatchRequest{Tenant: "team", Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(resp.Results), len(jobs))
	}
	if resp.Admitted != len(jobs) {
		t.Fatalf("admitted %d of %d under a huge budget", resp.Admitted, len(jobs))
	}
	for i, res := range resp.Results {
		if !res.Admitted || res.Plan == nil {
			t.Fatalf("job %d: %+v, want admitted with a plan", i, res)
		}
		// Each job shape has a distinct optimal plan; recompute it to prove
		// the scatter/gather preserved input order.
		want, err := chronos.OptimizeBest(jobs[i].Job, chronos.Econ{Theta: 1e-4, UnitPrice: 1})
		if err != nil {
			t.Fatal(err)
		}
		if *res.Plan != want {
			t.Errorf("job %d: plan %+v, want %+v — scatter/gather reordered results",
				i, *res.Plan, want)
		}
	}
	if resp.BudgetRemaining <= 0 || resp.BudgetRemaining >= 1e6 {
		t.Errorf("merged budgetRemaining = %g, want in (0, 1e6)", resp.BudgetRemaining)
	}

	// The client-side split means no replica should have paid a forward hop.
	for i, base := range c.Replicas() {
		text, err := metricsAt(ctx, c, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "chronosd_ring_forwarded_total") && !strings.HasSuffix(line, " 0") {
				t.Errorf("replica %d forwarded during a grouped batch: %s", i, line)
			}
		}
	}
}

func TestNewPanicsOnEmptyURL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal(`New("   ") returned instead of panicking`)
		}
	}()
	_ = New("   ")
}
