// Package tenant implements multi-tenant machine-time budget pools for the
// chronosd serving layer. The paper's setting is online: jobs arrive one at
// a time and the operator must decide, under a machine-time budget, whether
// to admit each job and with which speculation plan. A Pool is one named
// budget — a concurrent token-bucket ledger denominated in expected machine
// seconds, with per-tenant planning defaults (theta, unit price, RMin) for
// requests that do not spell out their own economics. A Registry is an
// immutable snapshot of every configured pool; hot reloads build a new
// Registry from the config file and carry live ledgers over with Rebase.
package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Planning defaults applied to limits that leave the field zero.
const (
	// DefaultTheta is the PoCD/cost tradeoff factor used when a pool does
	// not declare one.
	DefaultTheta = 1e-4
	// DefaultUnitPrice is the machine-time price used when a pool does not
	// declare one.
	DefaultUnitPrice = 1.0
)

// Limits declares one pool: its ledger parameters and the planning defaults
// applied to requests that omit their own economics.
type Limits struct {
	// Budget is the pool's machine-time capacity in expected machine
	// seconds. The ledger starts full and never exceeds this level.
	Budget float64 `json:"budget"`
	// RefillPerSec restores budget continuously at this rate (machine
	// seconds of budget per wall-clock second), up to Budget. Zero means a
	// fixed, non-replenishing budget.
	RefillPerSec float64 `json:"refillPerSec,omitempty"`
	// Theta is the tenant's default PoCD/cost tradeoff factor. Zero means
	// DefaultTheta.
	Theta float64 `json:"theta,omitempty"`
	// UnitPrice is the tenant's default machine-time price. Zero means
	// DefaultUnitPrice.
	UnitPrice float64 `json:"unitPrice,omitempty"`
	// RMin is the tenant's default minimum acceptable PoCD, in [0, 1).
	RMin float64 `json:"rmin,omitempty"`
}

// withDefaults fills zero planning fields.
func (l Limits) withDefaults() Limits {
	if l.Theta == 0 {
		l.Theta = DefaultTheta
	}
	if l.UnitPrice == 0 {
		l.UnitPrice = DefaultUnitPrice
	}
	return l
}

// validate reports whether the limits describe a well-posed pool.
func (l Limits) validate() error {
	if !(l.Budget > 0) {
		return fmt.Errorf("budget must be positive, got %v", l.Budget)
	}
	if l.RefillPerSec < 0 {
		return fmt.Errorf("refillPerSec must be >= 0, got %v", l.RefillPerSec)
	}
	if l.Theta < 0 {
		return fmt.Errorf("theta must be >= 0, got %v", l.Theta)
	}
	if l.UnitPrice < 0 {
		return fmt.Errorf("unitPrice must be >= 0, got %v", l.UnitPrice)
	}
	if l.RMin < 0 || l.RMin >= 1 {
		return fmt.Errorf("rmin must be in [0, 1), got %v", l.RMin)
	}
	return nil
}

// ledger is the mutable token-bucket state. It is held by pointer so that
// Rebase can share one ledger between the pool generations of a hot
// reload: requests still holding the pre-reload *Pool debit the same
// bucket the post-reload Pool reads, and no grant is ever lost or doubled
// across the swap.
type ledger struct {
	budget float64 // capacity
	refill float64 // machine seconds of budget per wall-clock second

	mu    sync.Mutex
	level float64   // remaining budget at time last
	last  time.Time // instant level was last settled
	now   func() time.Time
}

func newLedger(budget, refill float64) *ledger {
	l := &ledger{budget: budget, refill: refill, level: budget, now: time.Now}
	l.last = l.now()
	return l
}

// refillLocked advances the ledger to now. Callers hold l.mu.
func (l *ledger) refillLocked() {
	t := l.now()
	if dt := t.Sub(l.last).Seconds(); dt > 0 && l.refill > 0 {
		l.level += dt * l.refill
		if l.level > l.budget {
			l.level = l.budget
		}
	}
	l.last = t
}

// Pool is one tenant's budget pool: planning defaults plus a token-bucket
// ledger denominated in expected machine seconds. All methods are safe for
// concurrent use.
type Pool struct {
	name   string
	limits Limits
	led    *ledger
}

// newPool builds a full pool. limits must already be validated/defaulted.
func newPool(name string, limits Limits) *Pool {
	return &Pool{
		name:   name,
		limits: limits,
		led:    newLedger(limits.Budget, limits.RefillPerSec),
	}
}

// Name returns the pool's tenant name.
func (p *Pool) Name() string { return p.name }

// Limits returns the pool's declared parameters (defaults filled).
func (p *Pool) Limits() Limits { return p.limits }

// Remaining returns the budget currently available, after refill.
func (p *Pool) Remaining() float64 {
	p.led.mu.Lock()
	defer p.led.mu.Unlock()
	p.led.refillLocked()
	return p.led.level
}

// TryDebit atomically deducts cost if the (refilled) level covers it, and
// reports whether the debit happened along with the post-debit remainder.
// The check and the deduction share one critical section, so concurrent
// debitors can never over-commit the pool.
func (p *Pool) TryDebit(cost float64) (ok bool, remaining float64) {
	if cost < 0 {
		cost = 0
	}
	p.led.mu.Lock()
	defer p.led.mu.Unlock()
	p.led.refillLocked()
	if cost > p.led.level {
		return false, p.led.level
	}
	p.led.level -= cost
	return true, p.led.level
}

// DebitUpTo deducts min(want, level) and returns the amount actually
// debited. It is the escrow grant primitive: a lease request for more budget
// than the pool holds gets the remainder rather than nothing, and the sum of
// partial grants can never exceed what the pool had.
func (p *Pool) DebitUpTo(want float64) (debited, remaining float64) {
	if want < 0 {
		want = 0
	}
	p.led.mu.Lock()
	defer p.led.mu.Unlock()
	p.led.refillLocked()
	if want > p.led.level {
		want = p.led.level
	}
	if want < 0 {
		want = 0
	}
	p.led.level -= want
	return want, p.led.level
}

// ForceDebit deducts amount unconditionally, flooring the level at zero. It
// exists for WAL replay, where the debit already happened in a previous
// process life and must be reproduced exactly, not re-negotiated.
func (p *Pool) ForceDebit(amount float64) {
	if amount <= 0 {
		return
	}
	p.led.mu.Lock()
	defer p.led.mu.Unlock()
	p.led.refillLocked()
	p.led.level -= amount
	if p.led.level < 0 {
		p.led.level = 0
	}
}

// Credit returns amount to the pool, capped at the pool's capacity. Used
// when a leaseholder releases unspent escrow back to the owner.
func (p *Pool) Credit(amount float64) {
	if amount <= 0 {
		return
	}
	p.led.mu.Lock()
	defer p.led.mu.Unlock()
	p.led.refillLocked()
	p.led.level += amount
	if p.led.level > p.led.budget {
		p.led.level = p.led.budget
	}
}

// SetLevel pins the ledger to level (clamped to [0, budget]) as of now. It
// exists for snapshot restore at boot; refill resumes from the restore
// instant, so budget that would have refilled while the process was down is
// conservatively not granted.
func (p *Pool) SetLevel(level float64) {
	if level < 0 {
		level = 0
	}
	if level > p.led.budget {
		level = p.led.budget
	}
	p.led.mu.Lock()
	defer p.led.mu.Unlock()
	p.led.level = level
	p.led.last = p.led.now()
}

// SharesLedger reports whether p and other debit the same underlying
// ledger — true across a Rebase that carried the bucket over. The escrow
// layer uses it to decide whether outstanding leases are already reflected
// in a reloaded pool's level or must be re-reserved.
func (p *Pool) SharesLedger(other *Pool) bool {
	return other != nil && p.led == other.led
}

// Registry is an immutable set of pools keyed by tenant name. The pool map
// never changes after construction — hot reloads swap whole registries — so
// lookups need no locking; only the per-pool ledgers are mutable.
type Registry struct {
	pools map[string]*Pool
	names []string // sorted, for stable metrics iteration
}

// ErrDuplicate reports two pools declared with the same name.
var ErrDuplicate = errors.New("tenant: duplicate pool name")

// NewRegistry builds a registry from named limits. Every entry is validated
// and zero planning fields take package defaults.
func NewRegistry(limits map[string]Limits) (*Registry, error) {
	r := &Registry{pools: make(map[string]*Pool, len(limits))}
	for name, l := range limits {
		if name == "" {
			return nil, errors.New("tenant: pool name must be non-empty")
		}
		l = l.withDefaults()
		if err := l.validate(); err != nil {
			return nil, fmt.Errorf("tenant: pool %q: %w", name, err)
		}
		r.pools[name] = newPool(name, l)
		r.names = append(r.names, name)
	}
	sort.Strings(r.names)
	return r, nil
}

// Get returns the named pool, or nil. Safe on a nil registry.
func (r *Registry) Get(name string) *Pool {
	if r == nil {
		return nil
	}
	return r.pools[name]
}

// GetBytes is Get for a tenant name still sitting in a pooled request
// buffer: the string(b) map probe compiles to a no-allocation lookup.
func (r *Registry) GetBytes(b []byte) *Pool {
	if r == nil {
		return nil
	}
	return r.pools[string(b)]
}

// Pools returns every pool in name order. Safe on a nil registry.
func (r *Registry) Pools() []*Pool {
	if r == nil {
		return nil
	}
	out := make([]*Pool, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.pools[n])
	}
	return out
}

// Len returns the pool count. Safe on a nil registry.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.pools)
}

// Rebase carries live ledgers over from old for pools that kept the same
// name and ledger shape (Budget and RefillPerSec), so a SIGHUP reload does
// not hand every tenant a fresh budget. The ledger object itself is shared,
// not copied: requests still holding a pre-reload Pool keep debiting the
// same bucket the rebased Pool reads, so no grant is lost across the swap.
// Pools that are new, or whose ledger parameters changed, start full.
// Planning defaults (theta, unit price, RMin) always come from the new
// declaration. Safe when old is nil. Call before publishing r.
func (r *Registry) Rebase(old *Registry) {
	if r == nil || old == nil {
		return
	}
	for name, p := range r.pools {
		prev := old.pools[name]
		if prev == nil {
			continue
		}
		if prev.limits.Budget != p.limits.Budget ||
			prev.limits.RefillPerSec != p.limits.RefillPerSec {
			continue
		}
		p.led = prev.led
	}
}
