// strategy_compare: the four testbed benchmarks under every strategy.
//
// A compact version of the paper's Figure 2 experiment: for each of Sort,
// SecondarySort, TeraSort, and WordCount (calibrated to their measured
// heavy-tailed task-time profiles and paper deadlines), run all seven
// strategies — the three Chronos strategies plus the four baselines — under
// identical random numbers and background contention, and print the PoCD /
// cost outcome per cell.
//
// Run with:
//
//	go run ./examples/strategy_compare
package main

import (
	"fmt"
	"log"

	"chronos"
)

func main() {
	econ := chronos.Econ{Theta: 1e-4, UnitPrice: 1}
	strategies := []chronos.Strategy{
		chronos.HadoopNS, chronos.HadoopS, chronos.LATE, chronos.Mantri,
		chronos.Clone, chronos.SpeculativeRestart, chronos.SpeculativeResume,
	}

	for _, bench := range chronos.Benchmarks() {
		kind := "I/O-bound"
		if bench.CPUBound {
			kind = "CPU-bound"
		}
		fmt.Printf("%s (%s, D=%.0fs, tasks ~ Pareto(%.0f, %.2f))\n",
			bench.Name, kind, bench.Deadline, bench.TMin, bench.Beta)

		jobs := bench.Jobs(60 /* jobs */, 10 /* tasks */, 4*bench.Deadline)
		for _, s := range strategies {
			rep, err := chronos.Simulate(chronos.SimConfig{
				Strategy: s,
				Seed:     3,
				TauEst:   40,
				TauKill:  80,
				TauScale: chronos.TauAbsolute,
				Econ:     econ,
				// Background load, as injected with Stress on the paper's
				// testbed.
				ContentionP:    0.15,
				ContentionMean: 2,
			}, jobs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-22s PoCD=%.3f  cost=%8.1f  utility=%7.3f\n",
				s, rep.PoCD, rep.MeanCost, rep.Utility)
		}
		fmt.Println()
	}
}
