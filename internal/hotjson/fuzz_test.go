package hotjson

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// The fuzz targets hold hotjson to its contract: decoding accepts exactly
// what encoding/json accepts and produces the same struct, and encoding is
// byte-identical to json.Marshal. Seeds mirror testdata/fuzz committed for
// the root package's FuzzPlanRequestJSON plus shapes that exercise every
// field kind (pointers, maps, escapes, folds, duplicate keys).

// checkDecode decodes data with both decoders and fails on any
// success/failure or value disagreement. Returns true when both succeeded.
func checkDecode[T any](t *testing.T, data []byte, hot func([]byte, *T) error) (T, bool) {
	t.Helper()
	var ref, got T
	refErr := json.Unmarshal(data, &ref)
	hotErr := hot(data, &got)
	if (refErr == nil) != (hotErr == nil) {
		t.Fatalf("decode disagreement on %q:\nencoding/json: %v\nhotjson: %v", data, refErr, hotErr)
	}
	if refErr != nil {
		return ref, false
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("decoded values differ on %q:\nencoding/json: %+v\nhotjson: %+v", data, ref, got)
	}
	return ref, true
}

// checkEncode marshals v with both encoders and fails on any disagreement.
func checkEncode[T any](t *testing.T, v *T, hot func([]byte, *T) ([]byte, error)) {
	t.Helper()
	want, refErr := json.Marshal(v)
	got, hotErr := hot(nil, v)
	if (refErr == nil) != (hotErr == nil) {
		t.Fatalf("encode disagreement on %+v:\nencoding/json: %v\nhotjson: %v", v, refErr, hotErr)
	}
	if refErr != nil {
		return
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("encoded bytes differ on %+v:\nencoding/json: %s\nhotjson: %s", v, want, got)
	}
}

func FuzzPlanRequest(f *testing.F) {
	f.Add([]byte(`{"job":{"tasks":10,"deadline":100,"tmin":10,"beta":1.5},"econ":{"theta":0.0001,"unitPrice":1},"strategy":"clone"}`))
	f.Add([]byte(`{"job":{"deadline":1e308,"beta":-1e308}}`))
	f.Add([]byte(`{"JOB":{"Tasks":3},"tenant":"acme","strategy":"best","x":[{"deep":[1,2,{}]}]}`))
	f.Add([]byte(`{"job":null,"econ":{"rmin":0.25,"theta":1e-7},"tenant":"a\u0062c"}`))
	f.Add([]byte(` {"job":{"tasks":1,"tasks":2}} `))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, ok := checkDecode(t, data, func(b []byte, v *PlanRequest) error {
			return DecodePlanRequest(b, v, nil)
		})
		if !ok {
			return
		}
		// Interning must not change the decoded value.
		var interned PlanRequest
		if err := DecodePlanRequest(data, &interned, testInterner{}); err != nil || !reflect.DeepEqual(v, interned) {
			t.Fatalf("interned decode differs: %v / %+v vs %+v", err, interned, v)
		}
		checkEncode(t, &v, AppendPlanRequest)
	})
}

func FuzzAdmitRequest(f *testing.F) {
	f.Add([]byte(`{"tenant":"analytics","job":{"tasks":20,"deadline":300,"tmin":60,"beta":1.2},"strategy":"resume","econ":{"theta":0.001}}`))
	f.Add([]byte(`{"tenant":"","job":{},"econ":null}`))
	f.Add([]byte(`{"Tenant":"fold","job":{"phiEst":0.5},"unknown":{"a":"b"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, ok := checkDecode(t, data, func(b []byte, v *AdmitRequest) error {
			return DecodeAdmitRequest(b, v, nil)
		})
		if !ok {
			return
		}
		var interned AdmitRequest
		if err := DecodeAdmitRequest(data, &interned, testInterner{}); err != nil || !reflect.DeepEqual(v, interned) {
			t.Fatalf("interned decode differs: %v / %+v vs %+v", err, interned, v)
		}
		checkEncode(t, &v, AppendAdmitRequest)
	})
}

func FuzzPlan(f *testing.F) {
	f.Add([]byte(`{"strategy":"LATE","r":3,"pocd":0.5,"machineTime":1,"cost":1,"utility":-1}`))
	f.Add([]byte(`{"strategy":2,"r":-1,"pocd":1e-9,"machineTime":1e21,"cost":6.123e-9,"utility":0}`))
	f.Add([]byte(`{"strategy":"unknown"}`))
	f.Add([]byte(`{"strategy":null}`))
	f.Add([]byte(`{"strategy":" clone "}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, ok := checkDecode(t, data, DecodePlan)
		if !ok {
			return
		}
		checkEncode(t, &v, AppendPlan)
	})
}

func FuzzPlanResponse(f *testing.F) {
	f.Add([]byte(`{"plan":{"strategy":"Clone","r":2,"pocd":0.9999,"machineTime":123.4,"cost":12.3,"utility":3.21},"cached":true}`))
	f.Add([]byte(`{"plan":{"strategy":"Mantri","r":0,"pocd":0,"machineTime":0,"cost":0,"utility":0},"cached":false,"budgetRemaining":17.5}`))
	f.Add([]byte(`{"budgetRemaining":null,"cached":true}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, ok := checkDecode(t, data, DecodePlanResponse)
		if !ok {
			return
		}
		checkEncode(t, &v, AppendPlanResponse)
	})
}

func FuzzAdmitResponse(f *testing.F) {
	f.Add([]byte(`{"admitted":true,"tenant":"analytics","plan":{"strategy":"Speculative-Resume","r":1,"pocd":0.99,"machineTime":10,"cost":1,"utility":0.5},"budgetRemaining":90}`))
	f.Add([]byte(`{"admitted":false,"tenant":"t","reason":"budget_exhausted","budgetRemaining":0.25}`))
	f.Add([]byte(`{"plan":null,"budgetRemaining":-0}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, ok := checkDecode(t, data, DecodeAdmitResponse)
		if !ok {
			return
		}
		checkEncode(t, &v, AppendAdmitResponse)
	})
}

func FuzzReplayEvent(f *testing.F) {
	f.Add([]byte(`{"event":"job_planned","seq":1,"time":0.5,"job":{"id":7,"strategy":"Clone","tasks":10,"arrival":0.5,"deadline":300,"r":2},"traceId":"abc123"}`))
	f.Add([]byte(`{"event":"job_completed","seq":2,"time":310,"job":{"id":7,"strategy":"Clone","tasks":10,"arrival":0.5,"deadline":300},"outcome":{"finish":290,"metDeadline":true,"lateness":0,"machineTime":123,"cost":12.3},"pocd":1}`))
	f.Add([]byte(`{"event":"window_summary","seq":3,"time":600,"window":{"index":0,"start":0,"end":600,"completed":4,"running":{"jobs":4,"submitted":6,"met":3,"pocd":0.75,"meanMachineTime":100,"meanCost":10}}}`))
	f.Add([]byte(`{"event":"replay_summary","seq":9,"time":9000,"summary":{"jobs":10,"submitted":10,"met":9,"pocd":0.9,"meanMachineTime":90,"meanCost":9,"rHistogram":{"2":7,"10":3,"-1":1}}}`))
	f.Add([]byte(`{"event":"budget_exhausted","seq":4,"time":12,"tenant":"t","needed":3.5,"remaining":0.5,"error":"x"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, ok := checkDecode(t, data, DecodeReplayEvent)
		if !ok {
			return
		}
		checkEncode(t, &v, AppendReplayEvent)
	})
}

// testInterner interns through a private map, standing in for the server's
// tenant-registry interner.
type testInterner struct{}

func (testInterner) InternString(b []byte) (string, bool) {
	known := map[string]string{"analytics": "analytics", "acme": "acme", "abc": "abc"}
	s, ok := known[string(b)]
	return s, ok
}

var _ Interner = testInterner{}

// FuzzFloatFormat pins appendFloat to encoding/json's ES6 float format on
// raw bit patterns, not just floats reachable by decoding.
func FuzzFloatFormat(f *testing.F) {
	f.Add(0.0)
	f.Add(-0.0)
	f.Add(1e-6)
	f.Add(9.999999e-7)
	f.Add(1e21)
	f.Add(6.123e-9)
	f.Add(1.7976931348623157e308)
	f.Add(5e-324)
	f.Fuzz(func(t *testing.T, v float64) {
		want, refErr := json.Marshal(v)
		got, hotErr := appendFloat(nil, v)
		if (refErr == nil) != (hotErr == nil) {
			t.Fatalf("float %v: encoding/json err %v, hotjson err %v", v, refErr, hotErr)
		}
		if refErr == nil && !bytes.Equal(want, got) {
			t.Fatalf("float %v: encoding/json %s, hotjson %s", v, want, got)
		}
	})
}

// FuzzStringEscape pins appendString to encoding/json's escaping on
// arbitrary strings (HTML characters, control bytes, invalid UTF-8,
// U+2028/U+2029).
func FuzzStringEscape(f *testing.F) {
	f.Add("plain")
	f.Add(`quote " backslash \ slash /`)
	f.Add("<script>&amp;</script>")
	f.Add("ctrl \x01 \b\f\n\r\t \x7f")
	f.Add("bad utf8 \xff\xfe ok \u2028\u2029 é")
	f.Fuzz(func(t *testing.T, s string) {
		want, err := json.Marshal(s)
		if err != nil {
			t.Skip()
		}
		got := appendString(nil, s)
		if !bytes.Equal(want, got) {
			t.Fatalf("string %q: encoding/json %s, hotjson %s", s, want, got)
		}
	})
}
