package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chronos"
)

// testJob returns parameters with a real straggler problem, so the
// optimizer has something to do.
func testJob() chronos.JobParams {
	return chronos.JobParams{
		Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5,
		TauEst: 30, TauKill: 60,
	}
}

func testEcon() chronos.Econ {
	return chronos.Econ{Theta: 1e-4, UnitPrice: 1}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body := decodeBody[map[string]string](t, resp)
	if body["status"] != "ok" {
		t.Errorf("status field = %q, want ok", body["status"])
	}
}

func TestPlanEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := planRequest{Job: testJob(), Econ: testEcon()}

	resp := postJSON(t, ts.URL+"/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	first := decodeBody[planResponse](t, resp)
	if first.Cached {
		t.Error("first request should not be cached")
	}
	isChronos := false
	for _, s := range chronos.ChronosStrategies() {
		if first.Plan.Strategy == s {
			isChronos = true
		}
	}
	if !isChronos {
		t.Errorf("plan strategy = %v, want a Chronos strategy", first.Plan.Strategy)
	}
	if first.Plan.PoCD <= 0 || first.Plan.PoCD > 1 {
		t.Errorf("PoCD = %v, want in (0, 1]", first.Plan.PoCD)
	}

	// The identical request must short-circuit through the plan cache.
	second := decodeBody[planResponse](t, postJSON(t, ts.URL+"/v1/plan", req))
	if !second.Cached {
		t.Error("repeated request should be served from cache")
	}
	if second.Plan != first.Plan {
		t.Errorf("cached plan %+v differs from computed plan %+v", second.Plan, first.Plan)
	}
	hits, misses, entries := srv.CacheStats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Errorf("cache stats hits=%d misses=%d entries=%d, want 1/1/1", hits, misses, entries)
	}
}

func TestPlanPinnedStrategy(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := planRequest{Job: testJob(), Econ: testEcon(), Strategy: "clone"}
	got := decodeBody[planResponse](t, postJSON(t, ts.URL+"/v1/plan", req))
	if got.Plan.Strategy != chronos.Clone {
		t.Errorf("strategy = %v, want Clone", got.Plan.Strategy)
	}
}

func TestPlanErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})

	t.Run("malformed JSON", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
			strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("invalid params", func(t *testing.T) {
		bad := testJob()
		bad.Beta = 0.5 // infinite-mean Pareto: rejected by validation
		resp := postJSON(t, ts.URL+"/v1/plan", planRequest{Job: bad, Econ: testEcon()})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("unknown strategy", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/plan",
			planRequest{Job: testJob(), Econ: testEcon(), Strategy: "dolly"})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("infeasible", func(t *testing.T) {
		// A valid but unsatisfiable problem: deadline barely above tmin
		// and an RMin no attempt count can reach.
		impossible := chronos.JobParams{
			Tasks: 10, Deadline: 10.5, TMin: 10, Beta: 1.5,
			TauEst: 3, TauKill: 6,
		}
		econ := testEcon()
		econ.RMin = 0.999999999
		resp := postJSON(t, ts.URL+"/v1/plan",
			planRequest{Job: impossible, Econ: econ})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("status = %d, want 422", resp.StatusCode)
		}
	})

	t.Run("oversize body", func(t *testing.T) {
		big := fmt.Sprintf(`{"job": {"tasks": 10}, "pad": %q}`,
			strings.Repeat("x", 2048))
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
			strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status = %d, want 413", resp.StatusCode)
		}
	})

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/plan")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status = %d, want 405", resp.StatusCode)
		}
	})
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	jobs := []batchJobRequest{
		{Job: testJob()},                       // best-of-three
		{Job: testJob(), Strategy: "clone"},    // pinned
		{Job: testJob(), Strategy: "s-resume"}, // pinned short form
		{Job: testJob(), RMin: 0.5},            // with a PoCD floor
	}
	req := batchRequest{Jobs: jobs, Budget: 5000, Econ: testEcon()}
	resp := postJSON(t, ts.URL+"/v1/plan/batch", req)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 200 (%s)", resp.StatusCode, body)
	}
	got := decodeBody[batchResponse](t, resp)
	if len(got.Plans) != len(jobs) {
		t.Fatalf("got %d plans, want %d", len(got.Plans), len(jobs))
	}
	if got.TotalMachineTime > req.Budget {
		t.Errorf("allocation %v exceeds budget %v", got.TotalMachineTime, req.Budget)
	}
	if got.Plans[1].Strategy != chronos.Clone {
		t.Errorf("pinned job strategy = %v, want Clone", got.Plans[1].Strategy)
	}
	if got.Plans[2].Strategy != chronos.SpeculativeResume {
		t.Errorf("pinned job strategy = %v, want Speculative-Resume", got.Plans[2].Strategy)
	}
	if got.Plans[3].PoCD <= 0.5 {
		t.Errorf("job with rmin 0.5 got PoCD %v", got.Plans[3].PoCD)
	}
}

func TestBatchErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchJobs: 2})

	t.Run("no jobs", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/plan/batch", batchRequest{Budget: 100})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("too many jobs", func(t *testing.T) {
		jobs := []batchJobRequest{{Job: testJob()}, {Job: testJob()}, {Job: testJob()}}
		resp := postJSON(t, ts.URL+"/v1/plan/batch",
			batchRequest{Jobs: jobs, Budget: 5000, Econ: testEcon()})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("missing budget", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/plan/batch",
			batchRequest{Jobs: []batchJobRequest{{Job: testJob()}}, Econ: testEcon()})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("budget too small", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/plan/batch", batchRequest{
			Jobs:   []batchJobRequest{{Job: testJob(), Strategy: "clone"}},
			Budget: 1, Econ: testEcon(),
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("status = %d, want 422", resp.StatusCode)
		}
	})
}

func TestTradeoffEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/tradeoff?strategy=clone&tasks=10&deadline=100&tmin=10&beta=1.5&tauEst=30&tauKill=60&theta=1e-4&price=1&maxR=6"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 200 (%s)", resp.StatusCode, body)
	}
	got := decodeBody[tradeoffResponse](t, resp)
	if len(got.Points) != 7 {
		t.Fatalf("got %d points, want 7", len(got.Points))
	}
	for i := 1; i < len(got.Points); i++ {
		if got.Points[i].PoCD < got.Points[i-1].PoCD {
			t.Errorf("PoCD not monotone at r=%d: %v < %v",
				i, got.Points[i].PoCD, got.Points[i-1].PoCD)
		}
		if got.Points[i].MachineTime <= got.Points[i-1].MachineTime {
			t.Errorf("machine time not increasing at r=%d", i)
		}
	}

	t.Run("missing strategy", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/tradeoff?tasks=10")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("bad number", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/tradeoff?strategy=clone&tasks=ten")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("maxR over cap", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/tradeoff?strategy=clone&tasks=10&deadline=100&tmin=10&beta=1.5&tauEst=30&tauKill=60&maxR=100000")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSimJobs: 10, MaxSimTasks: 50, MaxSimTotalTasks: 100})
	cfg := chronos.SimConfig{
		Strategy: chronos.SpeculativeResume, Seed: 7,
		TauEst: 40, TauKill: 80, TauScale: chronos.TauAbsolute,
	}
	jobs := []chronos.SimJob{
		{Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5},
		{Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5, Arrival: 50},
	}
	resp := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Config: cfg, Jobs: jobs})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 200 (%s)", resp.StatusCode, body)
	}
	got := decodeBody[simulateResponse](t, resp)
	if got.Jobs != 2 {
		t.Errorf("jobs = %d, want 2", got.Jobs)
	}
	if got.PoCD < 0 || got.PoCD > 1 {
		t.Errorf("PoCD = %v, want in [0, 1]", got.PoCD)
	}
	if got.MeanMachineTime <= 0 {
		t.Errorf("mean machine time = %v, want > 0", got.MeanMachineTime)
	}

	t.Run("no jobs", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Config: cfg})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("job too large", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{
			Config: cfg,
			Jobs:   []chronos.SimJob{{Tasks: 51, Deadline: 100, TMin: 10, Beta: 1.5}},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("too many total tasks", func(t *testing.T) {
		many := make([]chronos.SimJob, 5)
		for i := range many {
			many[i] = chronos.SimJob{Tasks: 30, Deadline: 100, TMin: 10, Beta: 1.5}
		}
		resp := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Config: cfg, Jobs: many})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("negative reduce tasks cannot bypass caps", func(t *testing.T) {
		// 100 map tasks disguised as 100 + (-60): the sum is under the
		// 50-task cap, but the negative reduce count must be rejected.
		resp := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{
			Config: cfg,
			Jobs:   []chronos.SimJob{{Tasks: 100, ReduceTasks: -60, Deadline: 100, TMin: 10, Beta: 1.5}},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("oversized cluster", func(t *testing.T) {
		huge := cfg
		huge.Nodes = 500_000_000
		resp := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{
			Config: huge,
			Jobs:   []chronos.SimJob{{Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5}},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("extreme deadline", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{
			Config: cfg,
			Jobs:   []chronos.SimJob{{Tasks: 10, Deadline: 1e18, TMin: 10, Beta: 1.5}},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := planRequest{Job: testJob(), Econ: testEcon()}
	postJSON(t, ts.URL+"/v1/plan", req).Body.Close()
	postJSON(t, ts.URL+"/v1/plan", req).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		`chronosd_requests_total{endpoint="/v1/plan",code="200"} 2`,
		"chronosd_plan_cache_hits_total 1",
		"chronosd_plan_cache_misses_total 1",
		"chronosd_plan_cache_entries 1",
		`chronosd_request_duration_seconds_bucket{endpoint="/v1/plan",le="+Inf"} 2`,
		"chronosd_plans_total{strategy=",
		"chronosd_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n--- got:\n%s", want, body)
		}
	}
}

func TestNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v2/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}
