package pareto

import "math"

// Quadrature defaults. The closed-form cost expressions of the paper contain
// one non-elementary integral (Theorem 4); these tolerances keep its error
// far below the Monte-Carlo noise floor of the simulations it is compared to.
const (
	quadTol      = 1e-10
	quadMaxDepth = 52
)

// Integrate computes the definite integral of f over [a, b] using adaptive
// Simpson quadrature. b may be math.Inf(1), in which case the semi-infinite
// interval is mapped to (0, 1] via the substitution t = a + x/(1-x).
func Integrate(f func(float64) float64, a, b float64) float64 {
	if a == b {
		return 0
	}
	if math.IsInf(b, 1) {
		// t = a + x/(1-x); dt = dx/(1-x)^2; x in (0, 1).
		g := func(x float64) float64 {
			om := 1 - x
			t := a + x/om
			return f(t) / (om * om)
		}
		// Avoid the endpoints where the transform is singular.
		const eps = 1e-12
		return simpsonAdaptive(g, eps, 1-eps)
	}
	if b < a {
		return -Integrate(f, b, a)
	}
	return simpsonAdaptive(f, a, b)
}

// simpsonAdaptive runs classic adaptive Simpson with a recursion-depth cap.
func simpsonAdaptive(f func(float64) float64, a, b float64) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	whole := simpsonRule(a, b, fa, fc, fb)
	return simpsonRecurse(f, a, b, fa, fb, fc, whole, quadTol, quadMaxDepth)
}

func simpsonRule(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func simpsonRecurse(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := (a + b) / 2
	l, r := (a+c)/2, (c+b)/2
	fl, fr := f(l), f(r)
	left := simpsonRule(a, c, fa, fl, fc)
	right := simpsonRule(c, b, fc, fr, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return simpsonRecurse(f, a, c, fa, fc, fl, left, tol/2, depth-1) +
		simpsonRecurse(f, c, b, fc, fb, fr, right, tol/2, depth-1)
}
