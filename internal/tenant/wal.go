package tenant

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Store is the durability layer under one chronosd -data-dir: a point-in-time
// snapshot of every pool level and outstanding escrow lease, plus an
// append-only WAL of the authoritative ledger mutations since that snapshot.
// On boot the snapshot is loaded and the WAL replayed on top, so a restarted
// pool owner resumes with exactly the levels and leases it had — no lost and
// no duplicated debits.
//
// WAL records are deltas relative to the snapshot they follow, so the owner
// must Compact an anchor snapshot once at boot (after EscrowLedger.Restore)
// before serving; from then on every record replays against known levels.
// Records carry a monotonic sequence number and the snapshot remembers the
// last sequence it folded in, so a crash between "snapshot written" and "WAL
// truncated" replays nothing twice. WAL appends are flushed to the OS per
// record but not fsynced: the crash window this leaves open is a handful of
// grants, each of which errs toward *under*-counting pool spend never being
// restored as extra budget (grants debit the pool before they are logged, so
// a lost record surfaces as a reclaimable lease, not free budget).
type Store struct {
	mu   sync.Mutex
	dir  string
	wal  *os.File
	w    *bufio.Writer
	seq  uint64
	snap Snapshot // state as recovered at OpenStore time

	// Append-failure latch: a record that could not be written means the next
	// boot restores state above its true spend — the serving layer surfaces
	// this as a health condition rather than silently resurrecting budget.
	appendFails atomic.Uint64
	appendErr   error // last failure, under mu
}

// Op names one WAL record type.
type Op string

const (
	// OpDebit is an authoritative local debit against a pool (an admit or
	// plan served by the pool owner itself).
	OpDebit Op = "debit"
	// OpCredit returns budget to a pool (a released lease's unspent escrow).
	OpCredit Op = "credit"
	// OpGrant escrows budget from a pool into a holder's lease.
	OpGrant Op = "grant"
	// OpSpent acknowledges a holder's report of lease budget spent; the pool
	// level is unchanged (the grant already debited it), only the
	// outstanding escrow shrinks.
	OpSpent Op = "spent"
	// OpRenew extends a lease's expiry without granting budget (a renewal
	// that found the pool dry). Pool level and escrow are unchanged.
	OpRenew Op = "renew"
	// OpRelease ends a lease, crediting its unspent escrow back to the pool.
	OpRelease Op = "release"
	// OpReclaim ends a lease whose holder went silent past its TTL. The
	// outstanding escrow is conservatively treated as spent (no credit), so
	// an untracked holder can never cause fleet-wide over-commit.
	OpReclaim Op = "reclaim"
)

// Record is one WAL entry.
type Record struct {
	Seq    uint64  `json:"seq"`
	Op     Op      `json:"op"`
	Tenant string  `json:"tenant"`
	Holder string  `json:"holder,omitempty"`
	Amount float64 `json:"amount,omitempty"`
	// ExpiryUnixNano is the lease expiry for OpGrant records.
	ExpiryUnixNano int64 `json:"expiry,omitempty"`
}

// LeaseRecord is one outstanding lease in a snapshot.
type LeaseRecord struct {
	Tenant string  `json:"tenant"`
	Holder string  `json:"holder"`
	Escrow float64 `json:"escrow"`
	// ExpiryUnixNano is when the lease lapses if not renewed.
	ExpiryUnixNano int64 `json:"expiry"`
}

// Snapshot is the durable point-in-time ledger state.
type Snapshot struct {
	// Seq is the last WAL sequence folded into this snapshot; replay skips
	// records at or below it.
	Seq uint64 `json:"seq"`
	// AtUnixNano stamps when the snapshot was taken.
	AtUnixNano int64 `json:"at"`
	// Pools maps tenant name to ledger level.
	Pools map[string]float64 `json:"pools"`
	// Leases are the outstanding escrow grants.
	Leases []LeaseRecord `json:"leases,omitempty"`
}

const (
	snapshotFile = "escrow-snapshot.json"
	walFile      = "escrow-wal.ndjson"
)

// OpenStore opens (creating if needed) the durability directory, recovers the
// snapshot+WAL state, and leaves the WAL open for appends. The recovered
// state is available via State until the next Compact.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tenant: data dir: %w", err)
	}
	s := &Store{dir: dir}
	if err := s.recover(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tenant: wal: %w", err)
	}
	s.wal = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// Dir returns the durability directory (the serving layer derives sibling
// files, e.g. the plan-cache dump, from it).
func (s *Store) Dir() string { return s.dir }

// State returns the ledger state recovered at open: pool levels and
// outstanding leases with WAL replay already applied.
func (s *Store) State() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// recover loads the snapshot file and folds the WAL into it.
func (s *Store) recover() error {
	snap := Snapshot{Pools: map[string]float64{}}
	raw, err := os.ReadFile(filepath.Join(s.dir, snapshotFile))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &snap); err != nil {
			return fmt.Errorf("tenant: snapshot %s: %w", snapshotFile, err)
		}
		if snap.Pools == nil {
			snap.Pools = map[string]float64{}
		}
	case errors.Is(err, os.ErrNotExist):
		// First boot: empty state.
	default:
		return fmt.Errorf("tenant: snapshot: %w", err)
	}
	s.seq = snap.Seq

	walPath := filepath.Join(s.dir, walFile)
	f, err := os.Open(walPath)
	if errors.Is(err, os.ErrNotExist) {
		s.snap = snap
		return nil
	}
	if err != nil {
		return fmt.Errorf("tenant: wal: %w", err)
	}
	defer f.Close()
	leases := leaseIndex(snap.Leases)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final append from a crash; everything before it is
			// intact, so stop here rather than failing the boot.
			break
		}
		if rec.Seq <= snap.Seq {
			continue // already folded into the snapshot
		}
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		applyRecord(&snap, leases, rec)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("tenant: wal replay: %w", err)
	}
	snap.Leases = flattenLeases(leases)
	s.snap = snap
	return nil
}

// leaseKey indexes a lease by tenant and holder.
type leaseKey struct{ tenant, holder string }

func leaseIndex(recs []LeaseRecord) map[leaseKey]*LeaseRecord {
	idx := make(map[leaseKey]*LeaseRecord, len(recs))
	for i := range recs {
		r := recs[i]
		idx[leaseKey{r.Tenant, r.Holder}] = &r
	}
	return idx
}

func flattenLeases(idx map[leaseKey]*LeaseRecord) []LeaseRecord {
	out := make([]LeaseRecord, 0, len(idx))
	for _, r := range idx {
		if r.Escrow > 0 {
			out = append(out, *r)
		}
	}
	return out
}

// applyRecord folds one WAL record into the in-memory snapshot state. Pool
// levels here are raw numbers; clamping to [0, budget] happens when the
// state is loaded into a live Registry (whose config may have changed since
// the record was written).
func applyRecord(snap *Snapshot, leases map[leaseKey]*LeaseRecord, rec Record) {
	switch rec.Op {
	case OpDebit, OpGrant:
		snap.Pools[rec.Tenant] -= rec.Amount
		if snap.Pools[rec.Tenant] < 0 {
			snap.Pools[rec.Tenant] = 0
		}
		if rec.Op == OpGrant {
			k := leaseKey{rec.Tenant, rec.Holder}
			l := leases[k]
			if l == nil {
				l = &LeaseRecord{Tenant: rec.Tenant, Holder: rec.Holder}
				leases[k] = l
			}
			l.Escrow += rec.Amount
			l.ExpiryUnixNano = rec.ExpiryUnixNano
		}
	case OpCredit:
		snap.Pools[rec.Tenant] += rec.Amount
	case OpSpent:
		if l := leases[leaseKey{rec.Tenant, rec.Holder}]; l != nil {
			l.Escrow -= rec.Amount
			if l.Escrow < 0 {
				l.Escrow = 0
			}
		}
	case OpRenew:
		if l := leases[leaseKey{rec.Tenant, rec.Holder}]; l != nil {
			l.ExpiryUnixNano = rec.ExpiryUnixNano
		}
	case OpRelease:
		// The credited remainder is its own OpCredit record; here only the
		// lease ends.
		delete(leases, leaseKey{rec.Tenant, rec.Holder})
	case OpReclaim:
		delete(leases, leaseKey{rec.Tenant, rec.Holder})
	}
}

// Append writes one record to the WAL, assigning its sequence number. A
// failure is latched (see AppendFailures) as well as returned: the in-memory
// ledger has already mutated by the time it logs, so a dropped record cannot
// be rolled back, only surfaced.
func (s *Store) Append(rec Record) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	rec.Seq = s.seq
	err := s.appendLocked(rec)
	if err != nil {
		s.appendFails.Add(1)
		s.appendErr = err
	}
	return err
}

func (s *Store) appendLocked(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return err
	}
	return s.w.Flush()
}

// AppendFailures reports how many WAL appends have failed since open, with
// the most recent error. Nonzero means the durable state under-records spend
// and a restart can resurrect spent budget. Nil-safe.
func (s *Store) AppendFailures() (uint64, error) {
	if s == nil {
		return 0, nil
	}
	n := s.appendFails.Load()
	if n == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return n, s.appendErr
}

// Compact writes a fresh snapshot of the given state and truncates the WAL.
// The snapshot lands via write-to-temp + rename, so a crash mid-compaction
// leaves either the old snapshot (plus the intact WAL) or the new one; the
// stored sequence number makes leftover WAL records idempotent.
func (s *Store) Compact(pools map[string]float64, leases []LeaseRecord) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Seq:        s.seq,
		AtUnixNano: time.Now().UnixNano(),
		Pools:      pools,
		Leases:     leases,
	}
	raw, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return err
	}
	s.w.Reset(s.wal)
	return nil
}

// Close flushes and closes the WAL. The caller should Compact first on a
// graceful shutdown so boot does not replay the whole log.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
