package pareto

import "math/rand/v2"

// Stream derivation: experiments must be reproducible and, more importantly,
// strategies must be compared on common random numbers — the same
// (job, task, attempt) triple must see the same Pareto draw regardless of
// which strategy is being simulated. We derive independent PCG streams from a
// root seed and a list of integer keys using a SplitMix64 mixing chain.

// splitmix64 advances a SplitMix64 state and returns the next output.
func splitmix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed folds keys into seed, producing a well-mixed 64-bit value that
// is stable across runs and platforms.
func DeriveSeed(seed uint64, keys ...uint64) uint64 {
	s := splitmix64(seed)
	for _, k := range keys {
		s = splitmix64(s ^ splitmix64(k))
	}
	return s
}

// NewStream returns a deterministic PCG-backed *rand.Rand derived from seed
// and keys via DeriveSeed.
func NewStream(seed uint64, keys ...uint64) *rand.Rand {
	s := DeriveSeed(seed, keys...)
	return rand.New(rand.NewPCG(s, splitmix64(s)))
}
