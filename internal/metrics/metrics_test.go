package metrics

import (
	"math"
	"strings"
	"testing"

	"chronos/internal/mapreduce"
	"chronos/internal/optimize"
	"chronos/internal/pareto"
)

// doneJob fabricates a completed job with the given outcome.
func doneJob(id int, met bool, machineTime, price float64, chosenR int) *mapreduce.Job {
	deadline := 100.0
	finish := deadline - 1
	if !met {
		finish = deadline + 50
	}
	j := &mapreduce.Job{
		Spec: mapreduce.JobSpec{
			ID: id, NumTasks: 1, Deadline: deadline,
			Dist: pareto.MustNew(1, 1.5), SplitBytes: 1, UnitPrice: price,
		},
		Done:        true,
		FinishTime:  finish,
		MachineTime: machineTime,
		ChosenR:     chosenR,
	}
	return j
}

func TestStrategyStatsAggregation(t *testing.T) {
	s := NewStrategyStats("X")
	s.Observe(doneJob(1, true, 100, 2, 1))
	s.Observe(doneJob(2, false, 300, 2, 3))
	s.Observe(doneJob(3, true, 200, 2, 1))
	if s.Jobs() != 3 || s.Finished() != 3 {
		t.Errorf("Jobs=%d Finished=%d, want 3/3", s.Jobs(), s.Finished())
	}
	if got := s.PoCD(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("PoCD = %v, want 2/3", got)
	}
	if got := s.MeanMachineTime(); got != 200 {
		t.Errorf("MeanMachineTime = %v, want 200", got)
	}
	if got := s.MeanCost(); got != 400 {
		t.Errorf("MeanCost = %v, want 400", got)
	}
	h := s.RHistogram()
	if h.Count(1) != 2 || h.Count(3) != 1 {
		t.Errorf("r histogram = %v", h)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := NewStrategyStats("empty")
	if s.PoCD() != 0 || s.MeanCost() != 0 || s.MeanMachineTime() != 0 {
		t.Error("empty stats must be all zero")
	}
}

func TestUnoptimizedJobsSkipHistogram(t *testing.T) {
	s := NewStrategyStats("ns")
	s.Observe(doneJob(1, true, 10, 1, -1))
	if s.RHistogram().Total() != 0 {
		t.Error("ChosenR=-1 polluted the r histogram")
	}
}

func TestUtilityAndSummarize(t *testing.T) {
	cfg := optimize.Config{Theta: 1e-4, UnitPrice: 1, RMin: 0}
	s := NewStrategyStats("X")
	s.Observe(doneJob(1, true, 1000, 1, 0))
	want := math.Log10(1.0) - 1e-4*1000
	if got := s.Utility(cfg); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utility = %v, want %v", got, want)
	}
	sum := s.Summarize(cfg)
	if sum.Strategy != "X" || sum.Jobs != 1 || sum.PoCD != 1 || sum.Cost != 1000 {
		t.Errorf("Summarize = %+v", sum)
	}
	// Below RMin: -Inf, as for Hadoop-NS in Figure 2(c).
	cfg.RMin = 0.9999
	s2 := NewStrategyStats("Y")
	s2.Observe(doneJob(1, false, 10, 1, 0))
	if got := s2.Utility(cfg); !math.IsInf(got, -1) {
		t.Errorf("Utility below RMin = %v, want -Inf", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{2, 2, 2, 4, 4, 1} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if mode, ok := h.Mode(); !ok || mode != 2 {
		t.Errorf("Mode = %d, %v", mode, ok)
	}
	if got := h.Mean(); math.Abs(got-15.0/6) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if keys := h.Keys(); len(keys) != 3 || keys[0] != 1 || keys[2] != 4 {
		t.Errorf("Keys = %v", keys)
	}
	if got := h.String(); got != "1:1 2:3 4:2" {
		t.Errorf("String = %q", got)
	}
	empty := NewHistogram()
	if _, ok := empty.Mode(); ok {
		t.Error("empty histogram has a mode")
	}
	if empty.Mean() != 0 {
		t.Error("empty histogram mean != 0")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", w.StdDev())
	}
	var empty Welford
	if empty.Variance() != 0 {
		t.Error("empty Welford variance != 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Strategy", "PoCD", "Cost", "Utility")
	tab.AddSummaryRow(Summary{Strategy: "Clone", PoCD: 0.93212, Cost: 9373.21, Utility: -0.376})
	tab.AddSummaryRow(Summary{Strategy: "Hadoop-NS", PoCD: 0.1, Cost: 100, Utility: math.Inf(-1)})
	tab.AddRow("short")
	out := tab.String()
	if tab.Rows() != 3 {
		t.Errorf("Rows = %d", tab.Rows())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + separator + 3 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Strategy") || !strings.Contains(lines[0], "Utility") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "0.932") || !strings.Contains(out, "9373.2") {
		t.Errorf("missing formatted values:\n%s", out)
	}
	if !strings.Contains(out, "-inf") {
		t.Errorf("missing -inf rendering:\n%s", out)
	}
	// All lines aligned to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("header and separator widths differ:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	if got := FormatFloat(math.Inf(1), 2); got != "+inf" {
		t.Errorf("FormatFloat(+inf) = %q", got)
	}
	if got := FormatFloat(1.23456, 2); got != "1.23" {
		t.Errorf("FormatFloat = %q", got)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("PoCD per strategy")
	c.Add("Hadoop-NS", 0.1)
	c.Add("S-Resume", 0.98)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "PoCD per strategy") {
		t.Errorf("missing title: %q", lines[0])
	}
	// The larger value gets the longer bar.
	nsBar := strings.Count(lines[1], "#")
	resumeBar := strings.Count(lines[2], "#")
	if resumeBar <= nsBar {
		t.Errorf("bar lengths not proportional: %d vs %d", nsBar, resumeBar)
	}
	if !strings.Contains(out, "0.980") {
		t.Errorf("missing value rendering:\n%s", out)
	}
	empty := NewBarChart("x")
	if !strings.Contains(empty.String(), "no data") {
		t.Error("empty chart missing placeholder")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := NewBarChart("")
	c.Add("a", 0)
	c.Add("b", 0)
	out := c.String()
	if strings.Contains(out, "#") {
		t.Errorf("zero values rendered bars:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{1, 2, 3, 4})
	if runeLen := len([]rune(got)); runeLen != 4 {
		t.Fatalf("sparkline length %d, want 4", runeLen)
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline extremes wrong: %q", got)
	}
	// Constant series renders the lowest block everywhere.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline = %q", string(flat))
			break
		}
	}
}
