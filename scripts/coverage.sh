#!/usr/bin/env bash
# coverage.sh — per-package coverage report plus a gate on the serving
# layer: internal/server, internal/tenant, internal/replay, internal/ring
# and internal/obs together must stay at or above THRESHOLD percent
# statement coverage. One `go test -race` run doubles as
# the race gate and produces both the per-package report and the profile
# the coverage gate is computed from, so CI never executes the suite twice.
# Used by `make cover` and the CI test step, so local runs match the
# workflow exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${COVERAGE_THRESHOLD:-78}"
PROFILE="${COVERAGE_PROFILE:-coverage.out}"

echo "== per-package coverage (with -race) =="
go test -race -coverprofile="$PROFILE" ./...

echo
echo "== gated packages (>= ${THRESHOLD}%): internal/server + internal/tenant + internal/replay + internal/ring + internal/obs =="
gated="$(mktemp)"
trap 'rm -f "$gated"' EXIT
head -n 1 "$PROFILE" > "$gated" # the "mode:" line
grep -E '^chronos/internal/(server|tenant|replay|ring|obs)/' "$PROFILE" >> "$gated"
total="$(go tool cover -func="$gated" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
echo "combined statement coverage: ${total}%"
awk -v got="$total" -v want="$THRESHOLD" 'BEGIN {
    if (got + 0 < want + 0) {
        printf "FAIL: coverage %.1f%% is below the %.1f%% gate\n", got, want
        exit 1
    }
    printf "OK: coverage %.1f%% meets the %.1f%% gate\n", got, want
}'
