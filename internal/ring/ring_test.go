package ring

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// sampleKeys returns a deterministic 10k-key sample shaped like real plan
// keys (strategy|tasks|floats), so the distribution properties are measured
// on the key population the ring actually shards.
func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("|%d|%.6g|%.6g|40|1.6|300|600|0|0.0001|1|0",
			100+i%400, 1800.0+float64(i), 30.0+float64(i%97))
	}
	return keys
}

func fleet(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return nodes
}

func TestNewDedupesAndSorts(t *testing.T) {
	r := New([]string{"b", "", "a", "b", "a"}, 8)
	got := r.Nodes()
	want := []string{"a", "b"}
	if len(got) != len(want) || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Nodes() = %v, want %v", got, want)
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", r.Len())
	}
}

func TestEmptyRingHasNoOwner(t *testing.T) {
	r := New(nil, 0)
	if owner, ok := r.Owner("key"); ok {
		t.Fatalf("empty ring returned owner %q", owner)
	}
	if f := r.OwnedFraction("anyone"); f != 0 {
		t.Fatalf("empty ring OwnedFraction = %g, want 0", f)
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r := New([]string{"solo"}, 0)
	for _, key := range sampleKeys(100) {
		owner, ok := r.Owner(key)
		if !ok || owner != "solo" {
			t.Fatalf("Owner(%q) = %q, %v; want solo, true", key, owner, ok)
		}
	}
	if f := r.OwnedFraction("solo"); math.Abs(f-1) > 1e-9 {
		t.Fatalf("OwnedFraction(solo) = %g, want 1", f)
	}
	if f := r.OwnedFraction("other"); f != 0 {
		t.Fatalf("OwnedFraction(other) = %g, want 0", f)
	}
}

func TestOwnerIsDeterministicAcrossConstructions(t *testing.T) {
	nodes := fleet(5)
	a, b := New(nodes, 0), New(nodes, 0)
	for _, key := range sampleKeys(1000) {
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("Owner(%q) differs between identical rings: %q vs %q", key, oa, ob)
		}
	}
}

func TestOwnerIgnoresMemberOrder(t *testing.T) {
	nodes := fleet(6)
	shuffled := []string{nodes[3], nodes[0], nodes[5], nodes[1], nodes[4], nodes[2]}
	a, b := New(nodes, 0), New(shuffled, 0)
	for _, key := range sampleKeys(1000) {
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("Owner(%q) depends on construction order: %q vs %q", key, oa, ob)
		}
	}
}

// TestKeyDistributionNearUniform is the load-balance property the serving
// layer depends on: across fleet sizes 3–16, every replica's share of a
// 10k-key sample stays within ±15% of uniform.
func TestKeyDistributionNearUniform(t *testing.T) {
	keys := sampleKeys(10000)
	for n := 3; n <= 16; n++ {
		nodes := fleet(n)
		r := New(nodes, 0)
		counts := make(map[string]int, n)
		for _, key := range keys {
			owner, ok := r.Owner(key)
			if !ok {
				t.Fatalf("n=%d: no owner for %q", n, key)
			}
			counts[owner]++
		}
		uniform := float64(len(keys)) / float64(n)
		for _, node := range nodes {
			dev := (float64(counts[node]) - uniform) / uniform
			if math.Abs(dev) > 0.15 {
				t.Errorf("n=%d: %s owns %d keys, %.1f%% from uniform %g (limit ±15%%)",
					n, node, counts[node], 100*dev, uniform)
			}
		}
	}
}

// TestOwnedFractionMatchesSampledShare cross-checks the analytic arc-width
// gauge against the empirical key distribution and confirms the fractions
// partition the keyspace (sum to 1).
func TestOwnedFractionMatchesSampledShare(t *testing.T) {
	keys := sampleKeys(10000)
	for _, n := range []int{3, 8, 16} {
		nodes := fleet(n)
		r := New(nodes, 0)
		counts := make(map[string]int, n)
		for _, key := range keys {
			owner, _ := r.Owner(key)
			counts[owner]++
		}
		var sum float64
		for _, node := range nodes {
			f := r.OwnedFraction(node)
			sum += f
			sampled := float64(counts[node]) / float64(len(keys))
			if math.Abs(f-sampled) > 0.03 {
				t.Errorf("n=%d: %s OwnedFraction %.4f vs sampled share %.4f", n, node, f, sampled)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: fractions sum to %.12f, want 1", n, sum)
		}
	}
}

// TestMembershipChangeRemapsFewKeys is the consistency property: growing or
// shrinking the fleet by one replica remaps fewer than 2/N of the keys — no
// full reshuffle, so a rolling resize keeps most of the fleet cache warm.
func TestMembershipChangeRemapsFewKeys(t *testing.T) {
	keys := sampleKeys(10000)
	for _, n := range []int{3, 4, 8, 15} {
		grown := fleet(n + 1)
		base := grown[:n]
		before := New(base, 0)
		after := New(grown, 0)

		moved := 0
		for _, key := range keys {
			ob, _ := before.Owner(key)
			oa, _ := after.Owner(key)
			if ob != oa {
				moved++
			}
		}
		limit := 2 * len(keys) / (n + 1)
		if moved >= limit {
			t.Errorf("adding 1 node to %d remapped %d/%d keys, limit %d",
				n, moved, len(keys), limit)
		}

		// Removal is the inverse comparison: everything the departed node
		// owned must move, and (almost) nothing else.
		moved = 0
		for _, key := range keys {
			ob, _ := after.Owner(key)
			oa, _ := before.Owner(key)
			if ob != oa {
				moved++
			}
		}
		limit = 2 * len(keys) / (n + 1)
		if moved >= limit {
			t.Errorf("removing 1 node from %d remapped %d/%d keys, limit %d",
				n+1, moved, len(keys), limit)
		}
	}
}

// TestRendezvousTieBreak drives the collision path directly: two members'
// virtual points on the same circle position must split the contested arc
// deterministically by rendezvous score, not hand it all to the
// lexicographically first member.
func TestRendezvousTieBreak(t *testing.T) {
	r := &Ring{
		nodes: []string{"a", "b"},
		points: []point{
			{hash: 1 << 32, node: "a"},
			{hash: 1 << 32, node: "b"},
		},
	}
	counts := map[string]int{}
	for _, key := range sampleKeys(2000) {
		owner, ok := r.Owner(key)
		if !ok {
			t.Fatal("tied ring returned no owner")
		}
		want := "a"
		if sb := rendezvousScore(key, "b"); sb > rendezvousScore(key, "a") {
			want = "b"
		}
		if owner != want {
			t.Fatalf("Owner(%q) = %q, rendezvous says %q", key, owner, want)
		}
		counts[owner]++
	}
	if counts["a"] == 0 || counts["b"] == 0 {
		t.Fatalf("tie-break never chose one side: %v", counts)
	}
}

// --- successor placement --------------------------------------------------

// TestSuccessorsLeadWithOwner is the agreement property replication depends
// on: for every key the successor list starts with exactly the member Owner
// reports, and contains n distinct members.
func TestSuccessorsLeadWithOwner(t *testing.T) {
	r := New(fleet(5), 0)
	for _, key := range sampleKeys(2000) {
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 3) = %v, want 3 members", key, succ)
		}
		owner, _ := r.Owner(key)
		if succ[0] != owner {
			t.Fatalf("Successors(%q)[0] = %q, Owner says %q", key, succ[0], owner)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Successors(%q, 3) repeats %q: %v", key, n, succ)
			}
			seen[n] = true
		}
		if b := r.SuccessorsBytes([]byte(key), 3); len(b) != 3 ||
			b[0] != succ[0] || b[1] != succ[1] || b[2] != succ[2] {
			t.Fatalf("SuccessorsBytes(%q) = %v, Successors = %v", key, b, succ)
		}
	}
}

// TestSuccessorInheritsOnEviction is the failover property: when a key's
// owner leaves the ring, the new owner is the old first successor — exactly
// the member holding the key's replica copy under R=2 placement.
func TestSuccessorInheritsOnEviction(t *testing.T) {
	nodes := fleet(5)
	r := New(nodes, 0)
	for _, key := range sampleKeys(2000) {
		succ := r.Successors(key, 2)
		if len(succ) != 2 {
			t.Fatalf("Successors(%q, 2) = %v", key, succ)
		}
		survivors := make([]string, 0, len(nodes)-1)
		for _, n := range nodes {
			if n != succ[0] {
				survivors = append(survivors, n)
			}
		}
		newOwner, ok := New(survivors, 0).Owner(key)
		if !ok || newOwner != succ[1] {
			t.Fatalf("after evicting %s, Owner(%q) = %q, want first successor %q",
				succ[0], key, newOwner, succ[1])
		}
	}
}

// TestSuccessorsClamp covers the edges: n above the member count is clamped,
// an empty ring and non-positive n yield nil.
func TestSuccessorsClamp(t *testing.T) {
	r := New(fleet(3), 0)
	if got := r.Successors("key", 10); len(got) != 3 {
		t.Fatalf("Successors(key, 10) on a 3-ring = %v, want all 3 members", got)
	}
	if got := r.Successors("key", 0); got != nil {
		t.Fatalf("Successors(key, 0) = %v, want nil", got)
	}
	if got := New(nil, 0).Successors("key", 2); got != nil {
		t.Fatalf("empty ring Successors = %v, want nil", got)
	}
}

// TestSuccessorsCollisionTieBreak drives the same tied-point ring as
// TestRendezvousTieBreak through Successors: the rendezvous winner must lead
// the list without duplicating itself further down.
func TestSuccessorsCollisionTieBreak(t *testing.T) {
	r := &Ring{
		nodes: []string{"a", "b"},
		points: []point{
			{hash: 1 << 32, node: "a"},
			{hash: 1 << 32, node: "b"},
		},
	}
	for _, key := range sampleKeys(2000) {
		succ := r.Successors(key, 2)
		owner, _ := r.Owner(key)
		if len(succ) != 2 || succ[0] != owner {
			t.Fatalf("Successors(%q, 2) = %v, Owner = %q", key, succ, owner)
		}
		if succ[0] == succ[1] {
			t.Fatalf("Successors(%q, 2) duplicated the tie-break winner: %v", key, succ)
		}
	}
}

// --- membership config ----------------------------------------------------

func TestMembershipMembers(t *testing.T) {
	m := Membership{
		Self:  "http://a:1/",
		Peers: []string{"http://b:2", "http://a:1", " http://c:3/ ", ""},
	}
	got := m.Members()
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(got) != len(want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members() = %v, want %v", got, want)
		}
	}
}

func TestMembershipValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       Membership
		wantErr bool
	}{
		{"zero is valid (sharding off)", Membership{}, false},
		{"self only", Membership{Self: "http://a:1"}, false},
		{"self with peers", Membership{Self: "http://a:1", Peers: []string{"http://b:2"}}, false},
		{"peers without self", Membership{Peers: []string{"http://b:2"}}, true},
		{"blank peer", Membership{Self: "http://a:1", Peers: []string{"  "}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestParsePeers(t *testing.T) {
	got := ParsePeers(" http://a:1 ,,http://b:2, ")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("ParsePeers = %v", got)
	}
	if got := ParsePeers(""); got != nil {
		t.Fatalf("ParsePeers(\"\") = %v, want nil", got)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "ring.json")
	if err := os.WriteFile(good, []byte(`{"self":"http://a:1","peers":["http://b:2"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadFile(good)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if m.Self != "http://a:1" || len(m.Peers) != 1 {
		t.Fatalf("LoadFile = %+v", m)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"self":"","peers":["http://b:2"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("LoadFile accepted peers without self")
	}

	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"self":"http://a:1","nodes":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(unknown); err == nil {
		t.Fatal("LoadFile accepted unknown fields")
	}

	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("LoadFile accepted a missing file")
	}
}

func BenchmarkOwner(b *testing.B) {
	r := New(fleet(8), 0)
	keys := sampleKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = r.Owner(keys[i&1023])
	}
}
