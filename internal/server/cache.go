package server

import (
	"container/list"
	"strings"
	"sync"

	"chronos"
	"chronos/internal/metrics"
	"chronos/internal/plankey"
)

// planKey builds the cache/ring key for one optimization request. The
// format lives in internal/plankey so the ring-aware client package builds
// byte-identical keys and routes straight to the owning replica.
func planKey(strategy string, p chronos.JobParams, e chronos.Econ) string {
	return plankey.Key(strategy, p, e)
}

// FNV-1a, inlined: hash/fnv's New64a allocates its state on every call,
// which is the plan cache's only allocation on a hit.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a(key []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

func fnv1aString(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// planCache is a sharded LRU over optimized plans. Each shard has its own
// mutex, map, and recency list; the FNV-1a hash of the key picks the shard,
// so concurrent planners contend only 1/shards of the time.
type planCache struct {
	shards []cacheShard
	mask   uint64

	hits   metrics.Counter
	misses metrics.Counter
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
}

type cacheEntry struct {
	key  string
	plan chronos.Plan
	// frontier is the cell's precomputed capped-solve table, attached
	// lazily by the first budget-squeezed admit against this entry; later
	// squeezes in the warm cell skip the feasibility bisection entirely.
	// Guarded by the shard mutex like the rest of the entry.
	frontier *chronos.BudgetFrontier
}

// newPlanCache builds a cache with the given shard count (rounded up to a
// power of two) and total capacity. Nil is returned when capacity < 0
// (cache disabled); planCache methods tolerate a nil receiver.
func newPlanCache(shards, capacity int) *planCache {
	if capacity < 0 {
		return nil
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &planCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			capacity: perShard,
			entries:  make(map[string]*list.Element, perShard),
			order:    list.New(),
		}
	}
	return c
}

func (c *planCache) shard(key string) *cacheShard {
	return &c.shards[fnv1aString(key)&c.mask]
}

// get returns the cached plan for key and marks it most recently used.
func (c *planCache) get(key string) (chronos.Plan, bool) {
	if c == nil {
		return chronos.Plan{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		c.misses.Inc()
		return chronos.Plan{}, false
	}
	s.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).plan, true
}

// getBytes is get for a key still in its pooled request buffer: the
// string(key) map probe does not allocate, so a cache hit costs no heap.
func (c *planCache) getBytes(key []byte) (chronos.Plan, bool) {
	if c == nil {
		return chronos.Plan{}, false
	}
	s := &c.shards[fnv1a(key)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[string(key)]
	if !ok {
		c.misses.Inc()
		return chronos.Plan{}, false
	}
	s.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).plan, true
}

// peekBytes reports whether key is cached without touching recency or the
// hit/miss counters. The replica-read path uses it to decide whether a
// local replica copy can answer for a dead owner; the actual serve goes
// through getBytes, which does the accounting.
func (c *planCache) peekBytes(key []byte) bool {
	if c == nil {
		return false
	}
	s := &c.shards[fnv1a(key)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[string(key)]
	return ok
}

// frontierBytes returns the entry's precomputed capped-solve table, nil
// when the key is cold or no squeeze has built one yet. Does not touch
// recency or hit counters: every caller just did a getBytes for the same
// key.
func (c *planCache) frontierBytes(key []byte) *chronos.BudgetFrontier {
	if c == nil {
		return nil
	}
	s := &c.shards[fnv1a(key)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[string(key)]; ok {
		return el.Value.(*cacheEntry).frontier
	}
	return nil
}

// setFrontier attaches a capped-solve table to the key's entry, if the key
// is still cached (an evicted entry simply drops the table). Concurrent
// squeezes may race to build the same table; both are correct, last one
// wins.
func (c *planCache) setFrontier(key string, f *chronos.BudgetFrontier) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).frontier = f
	}
}

// put inserts or refreshes key, evicting the shard's least recently used
// entry when full.
func (c *planCache) put(key string, plan chronos.Plan) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).plan = plan
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, plan: plan})
}

// flush empties every shard. Called when the tenant config is hot-reloaded,
// so no plan computed under the old defaults outlives the config change.
func (c *planCache) flush() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*list.Element, s.capacity)
		s.order.Init()
		s.mu.Unlock()
	}
}

// len sums the shard sizes.
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.order.Len()
		s.mu.Unlock()
	}
	return total
}

// stats returns cumulative hit/miss counts.
func (c *planCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Value(), c.misses.Value()
}

// savedPlan is one persisted plan-cache entry: the disk/wire form shared by
// the shutdown dump under -data-dir and the GET /v1/cache/owned peer-warm
// surface.
type savedPlan struct {
	Key  string       `json:"key"`
	Plan chronos.Plan `json:"plan"`
}

// dump snapshots every cached entry, per shard in recency order, for
// persistence or peer warm-up.
func (c *planCache) dump() []savedPlan {
	if c == nil {
		return nil
	}
	out := make([]savedPlan, 0, c.len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			out = append(out, savedPlan{Key: e.key, Plan: e.plan})
		}
		s.mu.Unlock()
	}
	return out
}

// load inserts saved entries — the boot-time warm path. Plans are a pure
// function of their key, so overwriting a concurrently computed entry is
// harmless.
func (c *planCache) load(entries []savedPlan) int {
	if c == nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if e.Key == "" {
			continue
		}
		c.put(e.Key, e.Plan)
		n++
	}
	return n
}

// keyStrategy resolves the optional per-request strategy selector: empty or
// "best" means best-of-three (best == true); otherwise strat holds the
// pinned strategy. ok is false for unparseable names.
func keyStrategy(name string) (strat chronos.Strategy, best, ok bool) {
	name = strings.TrimSpace(name)
	if name == "" || strings.EqualFold(name, "best") {
		return 0, true, true
	}
	s, err := chronos.ParseStrategy(name)
	if err != nil {
		return 0, false, false
	}
	return s, false, true
}

// cacheStrategyName is the strategy component of a plan cache key: the
// canonical name for pinned plans, "" for best-of-three.
func cacheStrategyName(strat chronos.Strategy, best bool) string {
	if best {
		return ""
	}
	return strat.String()
}
