package hotjson

import (
	"bytes"
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"

	"chronos"
)

// maxNestingDepth matches encoding/json's scanner limit: the decoder
// errors once more than this many objects/arrays are open at once.
const maxNestingDepth = 10000

// decoder is a single-pass JSON scanner over one request body. It lives on
// the caller's stack; scratch is only touched when a string needs
// unescaping or UTF-8 repair, so hot numeric bodies never allocate.
type decoder struct {
	data    []byte
	off     int
	depth   int
	intern  Interner
	scratch []byte
}

func (d *decoder) syntaxf(format string, args ...any) error {
	return fmt.Errorf("hotjson: "+format+" at offset %d", append(args, d.off)...)
}

var errUnexpectedEnd = fmt.Errorf("hotjson: unexpected end of JSON input")

// peek returns the next non-whitespace byte without consuming it.
func (d *decoder) peek() (byte, error) {
	for d.off < len(d.data) {
		switch c := d.data[d.off]; c {
		case ' ', '\t', '\n', '\r':
			d.off++
		default:
			return c, nil
		}
	}
	return 0, errUnexpectedEnd
}

func (d *decoder) literal(lit string) error {
	if len(d.data)-d.off < len(lit) || string(d.data[d.off:d.off+len(lit)]) != lit {
		return d.syntaxf("invalid literal")
	}
	d.off += len(lit)
	return nil
}

// end verifies only whitespace remains, as json.Unmarshal does after the
// top-level value.
func (d *decoder) end() error {
	if _, err := d.peek(); err == nil {
		return d.syntaxf("invalid character after top-level value")
	}
	return nil
}

// stringBytes decodes a JSON string starting at the opening quote. The
// returned slice aliases either the input (fast path: printable ASCII, no
// escapes) or d.scratch, and is valid until the next stringBytes call.
// Escapes and UTF-8 repair follow encoding/json: surrogate pairs combine,
// unpaired surrogates and invalid UTF-8 become U+FFFD.
func (d *decoder) stringBytes() ([]byte, error) {
	if d.off >= len(d.data) || d.data[d.off] != '"' {
		return nil, d.syntaxf("expected string")
	}
	start := d.off + 1
	i := start
	for i < len(d.data) {
		c := d.data[i]
		if c == '"' {
			d.off = i + 1
			return d.data[start:i], nil
		}
		if c == '\\' || c < ' ' || c >= utf8.RuneSelf {
			return d.stringBytesSlow(start, i)
		}
		i++
	}
	return nil, errUnexpectedEnd
}

// stringBytesSlow finishes a string that needs escape processing or UTF-8
// validation, writing the decoded form into d.scratch. start is the index
// just past the opening quote; clean is the index of the first byte that
// needs attention (everything in [start, clean) is plain ASCII).
func (d *decoder) stringBytesSlow(start, clean int) ([]byte, error) {
	b := append(d.scratch[:0], d.data[start:clean]...)
	s := d.data
	r := clean
	for r < len(s) {
		switch c := s[r]; {
		case c == '"':
			d.off = r + 1
			d.scratch = b
			return b, nil
		case c == '\\':
			r++
			if r >= len(s) {
				return nil, errUnexpectedEnd
			}
			switch s[r] {
			case '"', '\\', '/':
				b = append(b, s[r])
				r++
			case 'b':
				b = append(b, '\b')
				r++
			case 'f':
				b = append(b, '\f')
				r++
			case 'n':
				b = append(b, '\n')
				r++
			case 'r':
				b = append(b, '\r')
				r++
			case 't':
				b = append(b, '\t')
				r++
			case 'u':
				r--
				rr := getu4(s[r:])
				if rr < 0 {
					return nil, d.syntaxf("invalid \\u escape")
				}
				r += 6
				if utf16.IsSurrogate(rr) {
					rr1 := getu4(s[r:])
					if dec := utf16.DecodeRune(rr, rr1); dec != utf8.RuneError {
						// A valid pair; consume both halves.
						r += 6
						b = utf8.AppendRune(b, dec)
						break
					}
					// Unpaired surrogate: replacement rune, second
					// escape (if any) processed on its own.
					rr = utf8.RuneError
				}
				b = utf8.AppendRune(b, rr)
			default:
				return nil, d.syntaxf("invalid escape character")
			}
		case c < ' ':
			return nil, d.syntaxf("invalid control character in string")
		case c < utf8.RuneSelf:
			b = append(b, c)
			r++
		default:
			rr, size := utf8.DecodeRune(s[r:])
			if rr == utf8.RuneError && size == 1 {
				b = utf8.AppendRune(b, utf8.RuneError)
				r++
				break
			}
			b = append(b, s[r:r+size]...)
			r += size
		}
	}
	return nil, errUnexpectedEnd
}

// getu4 decodes \uXXXX from the start of s, returning -1 on malformed
// input — a direct port of encoding/json's helper.
func getu4(s []byte) rune {
	if len(s) < 6 || s[0] != '\\' || s[1] != 'u' {
		return -1
	}
	var r rune
	for _, c := range s[2:6] {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// numberToken consumes one number per the JSON grammar and returns its raw
// bytes.
func (d *decoder) numberToken() ([]byte, error) {
	s := d.data
	i := d.off
	start := i
	if i < len(s) && s[i] == '-' {
		i++
	}
	switch {
	case i < len(s) && s[i] == '0':
		i++
	case i < len(s) && '1' <= s[i] && s[i] <= '9':
		i++
		for i < len(s) && '0' <= s[i] && s[i] <= '9' {
			i++
		}
	default:
		return nil, d.syntaxf("invalid number")
	}
	if i < len(s) && s[i] == '.' {
		i++
		if i >= len(s) || s[i] < '0' || s[i] > '9' {
			return nil, d.syntaxf("invalid number")
		}
		for i < len(s) && '0' <= s[i] && s[i] <= '9' {
			i++
		}
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			i++
		}
		if i >= len(s) || s[i] < '0' || s[i] > '9' {
			return nil, d.syntaxf("invalid number")
		}
		for i < len(s) && '0' <= s[i] && s[i] <= '9' {
			i++
		}
	}
	d.off = i
	return s[start:i], nil
}

// enterObject consumes the opening brace of an object, or an entire null
// (reported via isNull so struct fields keep encoding/json's null-is-no-op
// semantics).
func (d *decoder) enterObject() (isNull bool, err error) {
	c, err := d.peek()
	if err != nil {
		return false, err
	}
	if c == 'n' {
		return true, d.literal("null")
	}
	if c != '{' {
		return false, d.syntaxf("expected object")
	}
	d.off++
	d.depth++
	if d.depth > maxNestingDepth {
		return false, d.syntaxf("exceeded max depth")
	}
	return false, nil
}

// objectKey advances to the next key of the current object. done reports
// the closing brace was consumed. The returned key is decoded (unescaped)
// and only valid until the next string decode.
func (d *decoder) objectKey(first *bool) (key []byte, done bool, err error) {
	c, err := d.peek()
	if err != nil {
		return nil, false, err
	}
	if *first {
		*first = false
		if c == '}' {
			d.off++
			d.depth--
			return nil, true, nil
		}
	} else {
		switch c {
		case '}':
			d.off++
			d.depth--
			return nil, true, nil
		case ',':
			d.off++
			if c, err = d.peek(); err != nil {
				return nil, false, err
			}
		default:
			return nil, false, d.syntaxf("expected ',' or '}' in object")
		}
	}
	if c != '"' {
		return nil, false, d.syntaxf("expected object key string")
	}
	key, err = d.stringBytes()
	if err != nil {
		return nil, false, err
	}
	if c, err = d.peek(); err != nil {
		return nil, false, err
	}
	if c != ':' {
		return nil, false, d.syntaxf("expected ':' after object key")
	}
	d.off++
	return key, false, nil
}

// fieldIs matches a decoded key against a field name with encoding/json's
// resolution: exact bytes, or a case-fold match as fallback (the caller
// tries exact matches for all fields before folded ones).
func fieldIs(key []byte, name string) bool {
	return string(key) == name
}

func fieldFoldIs(key []byte, name string) bool {
	return bytes.EqualFold(key, []byte(name))
}

// skipValue validates and discards one JSON value of any type.
func (d *decoder) skipValue() error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case '{':
		d.off++
		d.depth++
		if d.depth > maxNestingDepth {
			return d.syntaxf("exceeded max depth")
		}
		first := true
		for {
			_, done, err := d.objectKey(&first)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			if err := d.skipValue(); err != nil {
				return err
			}
		}
	case '[':
		d.off++
		d.depth++
		if d.depth > maxNestingDepth {
			return d.syntaxf("exceeded max depth")
		}
		if c, err = d.peek(); err != nil {
			return err
		}
		if c == ']' {
			d.off++
			d.depth--
			return nil
		}
		for {
			if err := d.skipValue(); err != nil {
				return err
			}
			if c, err = d.peek(); err != nil {
				return err
			}
			switch c {
			case ']':
				d.off++
				d.depth--
				return nil
			case ',':
				d.off++
			default:
				return d.syntaxf("expected ',' or ']' in array")
			}
		}
	case '"':
		_, err := d.stringBytes()
		return err
	case 't':
		return d.literal("true")
	case 'f':
		return d.literal("false")
	case 'n':
		return d.literal("null")
	default:
		_, err := d.numberToken()
		return err
	}
}

// floatField decodes a JSON number into dst; null is a no-op, anything
// else is an error — matching encoding/json for a float64 struct field.
func (d *decoder) floatField(dst *float64) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.literal("null")
	}
	tok, err := d.numberToken()
	if err != nil {
		return err
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return d.syntaxf("number %s out of range", tok)
	}
	*dst = f
	return nil
}

func (d *decoder) intField(dst *int) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.literal("null")
	}
	tok, err := d.numberToken()
	if err != nil {
		return err
	}
	n, err := strconv.ParseInt(string(tok), 10, 64)
	if err != nil {
		return d.syntaxf("cannot decode number %s into int", tok)
	}
	*dst = int(n)
	return nil
}

func (d *decoder) uintField(dst *uint64) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.literal("null")
	}
	tok, err := d.numberToken()
	if err != nil {
		return err
	}
	n, err := strconv.ParseUint(string(tok), 10, 64)
	if err != nil {
		return d.syntaxf("cannot decode number %s into uint64", tok)
	}
	*dst = n
	return nil
}

func (d *decoder) boolField(dst *bool) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case 't':
		if err := d.literal("true"); err != nil {
			return err
		}
		*dst = true
		return nil
	case 'f':
		if err := d.literal("false"); err != nil {
			return err
		}
		*dst = false
		return nil
	case 'n':
		return d.literal("null")
	default:
		return d.syntaxf("expected boolean")
	}
}

// internedString resolves decoded bytes to a string, consulting the common
// vocabulary and the caller's Interner before allocating.
func (d *decoder) internedString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := commonStrings[string(b)]; ok {
		return s
	}
	if d.intern != nil {
		if s, ok := d.intern.InternString(b); ok {
			return s
		}
	}
	return string(b)
}

func (d *decoder) stringField(dst *string) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.literal("null")
	}
	b, err := d.stringBytes()
	if err != nil {
		return err
	}
	*dst = d.internedString(b)
	return nil
}

// floatPtrField decodes into a *float64 field: null sets the pointer to
// nil, a number allocates (or reuses) the pointee.
func (d *decoder) floatPtrField(dst **float64) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if *dst == nil {
		*dst = new(float64)
	}
	return d.floatField(*dst)
}

func (d *decoder) intPtrField(dst **int) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if *dst == nil {
		*dst = new(int)
	}
	return d.intField(*dst)
}

// strategyField replicates chronos.Strategy.UnmarshalJSON: a strategy name
// (preferred), a raw enum integer, or an error.
func (d *decoder) strategyField(dst *chronos.Strategy) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch {
	case c == '"':
		b, err := d.stringBytes()
		if err != nil {
			return err
		}
		parsed, perr := chronos.ParseStrategy(string(b))
		if perr != nil {
			return perr
		}
		*dst = parsed
		return nil
	case c == 'n':
		if err := d.literal("null"); err != nil {
			return err
		}
		// Unmarshal(null, &name) succeeds with name == "", so
		// Strategy.UnmarshalJSON fails in ParseStrategy("").
		_, perr := chronos.ParseStrategy("")
		return perr
	case c == '-' || ('0' <= c && c <= '9'):
		tok, err := d.numberToken()
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(string(tok), 10, 64)
		if err != nil {
			return fmt.Errorf("chronos: strategy must be a name or integer: %w", err)
		}
		if n < int64(chronos.Clone) || n > int64(chronos.LATE) {
			return fmt.Errorf("chronos: strategy %d out of range", n)
		}
		*dst = chronos.Strategy(n)
		return nil
	default:
		return fmt.Errorf("chronos: strategy must be a name or integer")
	}
}

func (d *decoder) decodeJobParams(v *chronos.JobParams) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "tasks"):
			err = d.intField(&v.Tasks)
		case fieldIs(key, "deadline"):
			err = d.floatField(&v.Deadline)
		case fieldIs(key, "tmin"):
			err = d.floatField(&v.TMin)
		case fieldIs(key, "beta"):
			err = d.floatField(&v.Beta)
		case fieldIs(key, "tauEst"):
			err = d.floatField(&v.TauEst)
		case fieldIs(key, "tauKill"):
			err = d.floatField(&v.TauKill)
		case fieldIs(key, "phiEst"):
			err = d.floatField(&v.PhiEst)
		case fieldFoldIs(key, "tasks"):
			err = d.intField(&v.Tasks)
		case fieldFoldIs(key, "deadline"):
			err = d.floatField(&v.Deadline)
		case fieldFoldIs(key, "tmin"):
			err = d.floatField(&v.TMin)
		case fieldFoldIs(key, "beta"):
			err = d.floatField(&v.Beta)
		case fieldFoldIs(key, "tauEst"):
			err = d.floatField(&v.TauEst)
		case fieldFoldIs(key, "tauKill"):
			err = d.floatField(&v.TauKill)
		case fieldFoldIs(key, "phiEst"):
			err = d.floatField(&v.PhiEst)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (d *decoder) decodeEcon(v *chronos.Econ) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "theta"):
			err = d.floatField(&v.Theta)
		case fieldIs(key, "unitPrice"):
			err = d.floatField(&v.UnitPrice)
		case fieldIs(key, "rmin"):
			err = d.floatField(&v.RMin)
		case fieldFoldIs(key, "theta"):
			err = d.floatField(&v.Theta)
		case fieldFoldIs(key, "unitPrice"):
			err = d.floatField(&v.UnitPrice)
		case fieldFoldIs(key, "rmin"):
			err = d.floatField(&v.RMin)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (d *decoder) decodePlan(v *chronos.Plan) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "strategy"):
			err = d.strategyField(&v.Strategy)
		case fieldIs(key, "r"):
			err = d.intField(&v.R)
		case fieldIs(key, "pocd"):
			err = d.floatField(&v.PoCD)
		case fieldIs(key, "machineTime"):
			err = d.floatField(&v.MachineTime)
		case fieldIs(key, "cost"):
			err = d.floatField(&v.Cost)
		case fieldIs(key, "utility"):
			err = d.floatField(&v.Utility)
		case fieldFoldIs(key, "strategy"):
			err = d.strategyField(&v.Strategy)
		case fieldFoldIs(key, "r"):
			err = d.intField(&v.R)
		case fieldFoldIs(key, "pocd"):
			err = d.floatField(&v.PoCD)
		case fieldFoldIs(key, "machineTime"):
			err = d.floatField(&v.MachineTime)
		case fieldFoldIs(key, "cost"):
			err = d.floatField(&v.Cost)
		case fieldFoldIs(key, "utility"):
			err = d.floatField(&v.Utility)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

// DecodePlanRequest decodes data into v with encoding/json's semantics for
// the same struct. in may be nil.
func DecodePlanRequest(data []byte, v *PlanRequest, in Interner) error {
	d := decoder{data: data, intern: in}
	if err := d.decodePlanRequest(v); err != nil {
		return err
	}
	return d.end()
}

func (d *decoder) decodePlanRequest(v *PlanRequest) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "job"):
			err = d.decodeJobParams(&v.Job)
		case fieldIs(key, "econ"):
			err = d.decodeEcon(&v.Econ)
		case fieldIs(key, "strategy"):
			err = d.stringField(&v.Strategy)
		case fieldIs(key, "tenant"):
			err = d.stringField(&v.Tenant)
		case fieldFoldIs(key, "job"):
			err = d.decodeJobParams(&v.Job)
		case fieldFoldIs(key, "econ"):
			err = d.decodeEcon(&v.Econ)
		case fieldFoldIs(key, "strategy"):
			err = d.stringField(&v.Strategy)
		case fieldFoldIs(key, "tenant"):
			err = d.stringField(&v.Tenant)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

// DecodeAdmitRequest decodes data into v with encoding/json's semantics
// for the same struct. in may be nil.
func DecodeAdmitRequest(data []byte, v *AdmitRequest, in Interner) error {
	d := decoder{data: data, intern: in}
	if err := d.decodeAdmitRequest(v); err != nil {
		return err
	}
	return d.end()
}

func (d *decoder) decodeAdmitRequest(v *AdmitRequest) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "tenant"):
			err = d.stringField(&v.Tenant)
		case fieldIs(key, "job"):
			err = d.decodeJobParams(&v.Job)
		case fieldIs(key, "strategy"):
			err = d.stringField(&v.Strategy)
		case fieldIs(key, "econ"):
			err = d.decodeEcon(&v.Econ)
		case fieldFoldIs(key, "tenant"):
			err = d.stringField(&v.Tenant)
		case fieldFoldIs(key, "job"):
			err = d.decodeJobParams(&v.Job)
		case fieldFoldIs(key, "strategy"):
			err = d.stringField(&v.Strategy)
		case fieldFoldIs(key, "econ"):
			err = d.decodeEcon(&v.Econ)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

// DecodePlan decodes data into v with encoding/json's semantics for
// chronos.Plan, including Strategy's name-or-integer unmarshaling.
func DecodePlan(data []byte, v *chronos.Plan) error {
	d := decoder{data: data}
	if err := d.decodePlan(v); err != nil {
		return err
	}
	return d.end()
}

// DecodePlanResponse decodes data into v with encoding/json's semantics
// for the same struct.
func DecodePlanResponse(data []byte, v *PlanResponse) error {
	d := decoder{data: data}
	if err := d.decodePlanResponse(v); err != nil {
		return err
	}
	return d.end()
}

func (d *decoder) decodePlanResponse(v *PlanResponse) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "plan"):
			err = d.decodePlan(&v.Plan)
		case fieldIs(key, "cached"):
			err = d.boolField(&v.Cached)
		case fieldIs(key, "budgetRemaining"):
			err = d.floatPtrField(&v.BudgetRemaining)
		case fieldFoldIs(key, "plan"):
			err = d.decodePlan(&v.Plan)
		case fieldFoldIs(key, "cached"):
			err = d.boolField(&v.Cached)
		case fieldFoldIs(key, "budgetRemaining"):
			err = d.floatPtrField(&v.BudgetRemaining)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

// DecodeAdmitResponse decodes data into v with encoding/json's semantics
// for the same struct.
func DecodeAdmitResponse(data []byte, v *AdmitResponse) error {
	d := decoder{data: data}
	if err := d.decodeAdmitResponse(v); err != nil {
		return err
	}
	return d.end()
}

func (d *decoder) decodeAdmitResponse(v *AdmitResponse) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "admitted"):
			err = d.boolField(&v.Admitted)
		case fieldIs(key, "tenant"):
			err = d.stringField(&v.Tenant)
		case fieldIs(key, "plan"):
			err = d.planPtrField(&v.Plan)
		case fieldIs(key, "reason"):
			err = d.stringField(&v.Reason)
		case fieldIs(key, "budgetRemaining"):
			err = d.floatField(&v.BudgetRemaining)
		case fieldFoldIs(key, "admitted"):
			err = d.boolField(&v.Admitted)
		case fieldFoldIs(key, "tenant"):
			err = d.stringField(&v.Tenant)
		case fieldFoldIs(key, "plan"):
			err = d.planPtrField(&v.Plan)
		case fieldFoldIs(key, "reason"):
			err = d.stringField(&v.Reason)
		case fieldFoldIs(key, "budgetRemaining"):
			err = d.floatField(&v.BudgetRemaining)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (d *decoder) planPtrField(dst **chronos.Plan) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if *dst == nil {
		*dst = new(chronos.Plan)
	}
	return d.decodePlan(*dst)
}

// intIntMap decodes an object with integer keys, matching encoding/json's
// map semantics: null sets the map to nil, {} allocates an empty map, and
// keys parse with ParseInt.
func (d *decoder) intIntMap(dst *map[int]int) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if c != '{' {
		return d.syntaxf("expected object")
	}
	d.off++
	d.depth++
	if d.depth > maxNestingDepth {
		return d.syntaxf("exceeded max depth")
	}
	if *dst == nil {
		*dst = make(map[int]int)
	}
	m := *dst
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		k, err := strconv.ParseInt(string(key), 10, 64)
		if err != nil {
			return d.syntaxf("cannot decode object key %q into int", key)
		}
		var v int
		if err := d.intField(&v); err != nil {
			return err
		}
		m[int(k)] = v
	}
}

// DecodeReplayEvent decodes data into ev with encoding/json's semantics
// for the same struct.
func DecodeReplayEvent(data []byte, ev *chronos.ReplayEvent) error {
	d := decoder{data: data}
	if err := d.decodeReplayEvent(ev); err != nil {
		return err
	}
	return d.end()
}

func (d *decoder) decodeReplayEvent(ev *chronos.ReplayEvent) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "event"):
			err = d.stringField((*string)(&ev.Kind))
		case fieldIs(key, "seq"):
			err = d.uintField(&ev.Seq)
		case fieldIs(key, "time"):
			err = d.floatField(&ev.Time)
		case fieldIs(key, "job"):
			err = d.jobEventPtrField(&ev.Job)
		case fieldIs(key, "outcome"):
			err = d.outcomePtrField(&ev.Outcome)
		case fieldIs(key, "pocd"):
			err = d.floatPtrField(&ev.PoCD)
		case fieldIs(key, "window"):
			err = d.windowPtrField(&ev.Window)
		case fieldIs(key, "summary"):
			err = d.summaryPtrField(&ev.Summary)
		case fieldIs(key, "traceId"):
			err = d.stringField(&ev.TraceID)
		case fieldIs(key, "tenant"):
			err = d.stringField(&ev.Tenant)
		case fieldIs(key, "needed"):
			err = d.floatField(&ev.Needed)
		case fieldIs(key, "remaining"):
			err = d.floatPtrField(&ev.Remaining)
		case fieldIs(key, "error"):
			err = d.stringField(&ev.Error)
		case fieldFoldIs(key, "event"):
			err = d.stringField((*string)(&ev.Kind))
		case fieldFoldIs(key, "seq"):
			err = d.uintField(&ev.Seq)
		case fieldFoldIs(key, "time"):
			err = d.floatField(&ev.Time)
		case fieldFoldIs(key, "job"):
			err = d.jobEventPtrField(&ev.Job)
		case fieldFoldIs(key, "outcome"):
			err = d.outcomePtrField(&ev.Outcome)
		case fieldFoldIs(key, "pocd"):
			err = d.floatPtrField(&ev.PoCD)
		case fieldFoldIs(key, "window"):
			err = d.windowPtrField(&ev.Window)
		case fieldFoldIs(key, "summary"):
			err = d.summaryPtrField(&ev.Summary)
		case fieldFoldIs(key, "traceId"):
			err = d.stringField(&ev.TraceID)
		case fieldFoldIs(key, "tenant"):
			err = d.stringField(&ev.Tenant)
		case fieldFoldIs(key, "needed"):
			err = d.floatField(&ev.Needed)
		case fieldFoldIs(key, "remaining"):
			err = d.floatPtrField(&ev.Remaining)
		case fieldFoldIs(key, "error"):
			err = d.stringField(&ev.Error)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (d *decoder) jobEventPtrField(dst **chronos.ReplayJobEvent) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if *dst == nil {
		*dst = new(chronos.ReplayJobEvent)
	}
	return d.decodeJobEvent(*dst)
}

func (d *decoder) decodeJobEvent(v *chronos.ReplayJobEvent) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "id"):
			err = d.intField(&v.ID)
		case fieldIs(key, "strategy"):
			err = d.stringField(&v.Strategy)
		case fieldIs(key, "tasks"):
			err = d.intField(&v.Tasks)
		case fieldIs(key, "reduceTasks"):
			err = d.intField(&v.ReduceTasks)
		case fieldIs(key, "arrival"):
			err = d.floatField(&v.Arrival)
		case fieldIs(key, "deadline"):
			err = d.floatField(&v.Deadline)
		case fieldIs(key, "r"):
			err = d.intPtrField(&v.R)
		case fieldIs(key, "reduceR"):
			err = d.intPtrField(&v.ReduceR)
		case fieldFoldIs(key, "id"):
			err = d.intField(&v.ID)
		case fieldFoldIs(key, "strategy"):
			err = d.stringField(&v.Strategy)
		case fieldFoldIs(key, "tasks"):
			err = d.intField(&v.Tasks)
		case fieldFoldIs(key, "reduceTasks"):
			err = d.intField(&v.ReduceTasks)
		case fieldFoldIs(key, "arrival"):
			err = d.floatField(&v.Arrival)
		case fieldFoldIs(key, "deadline"):
			err = d.floatField(&v.Deadline)
		case fieldFoldIs(key, "r"):
			err = d.intPtrField(&v.R)
		case fieldFoldIs(key, "reduceR"):
			err = d.intPtrField(&v.ReduceR)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (d *decoder) outcomePtrField(dst **chronos.ReplayOutcome) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if *dst == nil {
		*dst = new(chronos.ReplayOutcome)
	}
	return d.decodeOutcome(*dst)
}

func (d *decoder) decodeOutcome(v *chronos.ReplayOutcome) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "finish"):
			err = d.floatField(&v.Finish)
		case fieldIs(key, "metDeadline"):
			err = d.boolField(&v.MetDeadline)
		case fieldIs(key, "lateness"):
			err = d.floatField(&v.Lateness)
		case fieldIs(key, "machineTime"):
			err = d.floatField(&v.MachineTime)
		case fieldIs(key, "cost"):
			err = d.floatField(&v.Cost)
		case fieldFoldIs(key, "finish"):
			err = d.floatField(&v.Finish)
		case fieldFoldIs(key, "metDeadline"):
			err = d.boolField(&v.MetDeadline)
		case fieldFoldIs(key, "lateness"):
			err = d.floatField(&v.Lateness)
		case fieldFoldIs(key, "machineTime"):
			err = d.floatField(&v.MachineTime)
		case fieldFoldIs(key, "cost"):
			err = d.floatField(&v.Cost)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (d *decoder) windowPtrField(dst **chronos.ReplayWindow) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if *dst == nil {
		*dst = new(chronos.ReplayWindow)
	}
	return d.decodeWindow(*dst)
}

func (d *decoder) decodeWindow(v *chronos.ReplayWindow) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "index"):
			err = d.intField(&v.Index)
		case fieldIs(key, "start"):
			err = d.floatField(&v.Start)
		case fieldIs(key, "end"):
			err = d.floatField(&v.End)
		case fieldIs(key, "completed"):
			err = d.intField(&v.Completed)
		case fieldIs(key, "running"):
			err = d.decodeSummary(&v.Running)
		case fieldFoldIs(key, "index"):
			err = d.intField(&v.Index)
		case fieldFoldIs(key, "start"):
			err = d.floatField(&v.Start)
		case fieldFoldIs(key, "end"):
			err = d.floatField(&v.End)
		case fieldFoldIs(key, "completed"):
			err = d.intField(&v.Completed)
		case fieldFoldIs(key, "running"):
			err = d.decodeSummary(&v.Running)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (d *decoder) summaryPtrField(dst **chronos.ReplaySummary) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if *dst == nil {
		*dst = new(chronos.ReplaySummary)
	}
	return d.decodeSummary(*dst)
}

func (d *decoder) decodeSummary(v *chronos.ReplaySummary) error {
	isNull, err := d.enterObject()
	if isNull || err != nil {
		return err
	}
	first := true
	for {
		key, done, err := d.objectKey(&first)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		switch {
		case fieldIs(key, "jobs"):
			err = d.intField(&v.Jobs)
		case fieldIs(key, "submitted"):
			err = d.intField(&v.Submitted)
		case fieldIs(key, "met"):
			err = d.intField(&v.Met)
		case fieldIs(key, "pocd"):
			err = d.floatField(&v.PoCD)
		case fieldIs(key, "meanMachineTime"):
			err = d.floatField(&v.MeanMachineTime)
		case fieldIs(key, "meanCost"):
			err = d.floatField(&v.MeanCost)
		case fieldIs(key, "rHistogram"):
			err = d.intIntMap(&v.RHistogram)
		case fieldFoldIs(key, "jobs"):
			err = d.intField(&v.Jobs)
		case fieldFoldIs(key, "submitted"):
			err = d.intField(&v.Submitted)
		case fieldFoldIs(key, "met"):
			err = d.intField(&v.Met)
		case fieldFoldIs(key, "pocd"):
			err = d.floatField(&v.PoCD)
		case fieldFoldIs(key, "meanMachineTime"):
			err = d.floatField(&v.MeanMachineTime)
		case fieldFoldIs(key, "meanCost"):
			err = d.floatField(&v.MeanCost)
		case fieldFoldIs(key, "rHistogram"):
			err = d.intIntMap(&v.RHistogram)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
	}
}
