package workload

import "chronos/internal/pareto"

// DeadlinePolicy assigns a deadline to a job given its task-time
// distribution, the way Morpheus/Jockey-style SLO systems derive deadlines
// from history. The paper sets deadlines both as fixed SLA values (Fig. 2)
// and as ratios of the average execution time (Fig. 4).
type DeadlinePolicy interface {
	Deadline(dist pareto.Dist, numTasks int) float64
}

// FixedDeadline always returns D.
type FixedDeadline struct {
	// D is the deadline in seconds.
	D float64
}

// Deadline implements DeadlinePolicy.
func (f FixedDeadline) Deadline(pareto.Dist, int) float64 { return f.D }

// MeanRatioDeadline returns Ratio * E[task time] — the Figure 4 setting uses
// Ratio = 2.
type MeanRatioDeadline struct {
	// Ratio multiplies the mean single-attempt execution time.
	Ratio float64
}

// Deadline implements DeadlinePolicy.
func (m MeanRatioDeadline) Deadline(dist pareto.Dist, _ int) float64 {
	return m.Ratio * dist.Mean()
}

// QuantileDeadline sets the deadline at the q-th quantile of a single task's
// execution time — deadlines calibrated to a desired per-task miss rate.
type QuantileDeadline struct {
	// Q is the quantile in (0, 1).
	Q float64
}

// Deadline implements DeadlinePolicy.
func (q QuantileDeadline) Deadline(dist pareto.Dist, _ int) float64 {
	return dist.Quantile(q.Q)
}
