package cluster

// Meter accumulates machine running time across all released containers.
// Cost conversion (machine time x unit spot price) happens at the metrics
// layer, where per-job prices are known; the cluster-level meter is the
// ground truth for total VM occupancy.
type Meter struct {
	machineTime float64
	releases    uint64
}

func (m *Meter) charge(duration float64) {
	if duration < 0 {
		panic("cluster: negative container occupancy")
	}
	m.machineTime += duration
	m.releases++
}

// MachineTime returns the total container occupancy charged so far.
func (m *Meter) MachineTime() float64 { return m.machineTime }

// Releases returns the number of containers released so far.
func (m *Meter) Releases() uint64 { return m.releases }
