package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStoreRoundTripThroughWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(reg, st, time.Hour)
	if err := e.Compact(); err != nil { // anchor snapshot, as boot does
		t.Fatal(err)
	}
	if ok, _ := e.DebitLocal("etl", 10); !ok {
		t.Fatal("debit failed")
	}
	if g, _, _ := e.Grant("etl", "h1", 0, 30, false); g != 30 {
		t.Fatal("grant failed")
	}
	if _, _, err := e.Grant("etl", "h1", 5, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process: replay the WAL (no snapshot was ever compacted).
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	state := st2.State()
	if got := state.Pools["etl"]; got != 60 {
		t.Errorf("replayed pool level = %v, want 60 (100 - 10 debit - 30 grant)", got)
	}
	if len(state.Leases) != 1 || state.Leases[0].Escrow != 25 {
		t.Errorf("replayed leases = %+v, want one h1 lease with escrow 25", state.Leases)
	}
}

func TestStoreSnapshotPlusTailReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(reg, st, time.Hour)
	_, _, _ = e.Grant("etl", "h1", 0, 30, false)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations land in the (now truncated) WAL.
	if ok, _ := e.DebitLocal("etl", 7); !ok {
		t.Fatal("debit failed")
	}
	_, _, _ = e.Grant("etl", "h1", 30, 0, true) // spend everything, release
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	state := st2.State()
	if got := state.Pools["etl"]; got != 63 {
		t.Errorf("recovered level = %v, want 63 (70 snapshot - 7 debit; release returned 0)", got)
	}
	if len(state.Leases) != 0 {
		t.Errorf("released lease survived recovery: %+v", state.Leases)
	}
}

// TestStoreDuplicateReplayImpossible simulates the crash window between
// snapshot rename and WAL truncation: records already folded into the
// snapshot must not be applied twice.
func TestStoreDuplicateReplayImpossible(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(reg, st, time.Hour)
	if ok, _ := e.DebitLocal("etl", 40); !ok {
		t.Fatal("debit failed")
	}
	// Snapshot the state but "crash" before truncation: rewrite the WAL
	// with its pre-compaction contents.
	walPath := filepath.Join(dir, walFile)
	pre, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, pre, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.State().Pools["etl"]; got != 60 {
		t.Errorf("level after duplicate-replay crash = %v, want 60 (debit applied once)", got)
	}
}

func TestStoreTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: 100}})
	e := NewEscrowLedger(reg, st, time.Hour)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	_, _ = e.DebitLocal("etl", 10)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn final append: half a JSON object with no newline.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"op":"debit","ten`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("torn WAL tail should not fail boot: %v", err)
	}
	defer st2.Close()
	if got := st2.State().Pools["etl"]; got != 90 {
		t.Errorf("level = %v, want 90 (intact prefix applied, torn tail dropped)", got)
	}
}

func TestStoreSequencesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = st.Append(Record{Op: OpDebit, Tenant: "etl", Amount: 1})
	_ = st.Append(Record{Op: OpDebit, Tenant: "etl", Amount: 1})
	st.Close()
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = st2.Append(Record{Op: OpDebit, Tenant: "etl", Amount: 1})
	st2.Close()
	raw, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"seq":3`) {
		t.Errorf("reopened store did not continue the sequence:\n%s", raw)
	}
}

// TestStoreCompactConcurrentMutationsExact races compactions against ledger
// mutations. Any debit or grant landing "inside" a compaction must be either
// folded into the snapshot or left alive in the WAL — exactly one of the two
// — so recovery reproduces the live state bit-exactly. (All amounts are
// binary fractions, so float comparison below really is exact.)
func TestStoreCompactConcurrentMutationsExact(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mustRegistry(t, map[string]Limits{"etl": {Budget: 4096}})
	e := NewEscrowLedger(reg, st, time.Hour)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	compactDone := make(chan struct{})
	go func() {
		defer close(compactDone)
		for {
			select {
			case <-stop:
				return
			default:
				if err := e.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			holder := string(rune('a' + w))
			for i := 0; i < 300; i++ {
				switch i % 3 {
				case 0:
					e.DebitLocal("etl", 0.25)
				case 1:
					_, _, _ = e.Grant("etl", holder, 0, 0.5, false)
				case 2:
					_, _, _ = e.Grant("etl", holder, 0.25, 0, false)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-compactDone

	wantPool := reg.Get("etl").Remaining()
	_, wantEscrow := e.Outstanding("etl")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	state := st2.State()
	if got := state.Pools["etl"]; got != wantPool {
		t.Errorf("recovered pool level = %v, want exactly %v", got, wantPool)
	}
	var gotEscrow float64
	for _, l := range state.Leases {
		gotEscrow += l.Escrow
	}
	if gotEscrow != wantEscrow {
		t.Errorf("recovered escrow = %v, want exactly %v", gotEscrow, wantEscrow)
	}
}

// TestStoreAppendFailureLatched: a record the WAL cannot persist must be
// counted and its error kept, because the in-memory ledger has already
// mutated — silent loss would resurrect spent budget at the next boot.
func TestStoreAppendFailureLatched(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{Op: OpDebit, Tenant: "etl", Amount: 1}); err != nil {
		t.Fatal(err)
	}
	if n, lastErr := st.AppendFailures(); n != 0 || lastErr != nil {
		t.Fatalf("healthy store reports failures: (%d, %v)", n, lastErr)
	}
	// Sever the file under the store: appends from here on must fail loudly.
	st.wal.Close()
	if err := st.Append(Record{Op: OpDebit, Tenant: "etl", Amount: 1}); err == nil {
		t.Fatal("append to a closed WAL reported success")
	}
	if n, lastErr := st.AppendFailures(); n != 1 || lastErr == nil {
		t.Errorf("AppendFailures = (%d, %v), want (1, non-nil)", n, lastErr)
	}
}
