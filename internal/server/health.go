package server

import (
	"net/http"
	"sync"
	"time"

	"chronos/internal/obs"
	"chronos/internal/ring"
)

// Health-driven fleet membership. A static ring (-self/-peers + SIGHUP) means
// a dead replica keeps owning its arc: every request for its keys pays a
// breaker trip and a cold local fallback until an operator edits the config.
// The heartbeat monitor closes that loop without any SWIM-style gossip: each
// replica probes every configured member's GET /healthz on a fixed interval,
// evicts a member from its EFFECTIVE ring view after SuspectAfter
// consecutive failures, and re-admits it after ReadmitAfter consecutive
// successes. Eviction remaps each of the dead member's keys to the key's
// first ring successor — exactly the replica that holds its hot copy when
// the replication factor is >1 — and re-admission triggers the warm handoff
// that streams the remapped entries back (see applyRing).
//
// Views are per-replica and eventually consistent: two replicas may briefly
// disagree about a flapping member, which costs at most the usual one-hop
// forward + ownership-drift fallback, never a wrong answer.

// healthState is the monitor's view of the fleet: the operator-configured
// membership plus per-member probe counters and the current suspect set.
// Guarded by mu; the effective ring derived from it is published through
// Server.ringSt by applyRing.
type healthState struct {
	mu         sync.Mutex
	configured ring.Membership
	suspects   map[string]bool
	fails      map[string]int
	oks        map[string]int
}

// pruneLocked drops probe state for members no longer configured. Caller
// holds mu.
func (h *healthState) pruneLocked(members []string) {
	keep := make(map[string]bool, len(members))
	for _, m := range members {
		keep[m] = true
	}
	for m := range h.suspects {
		if !keep[m] {
			delete(h.suspects, m)
		}
	}
	for m := range h.fails {
		if !keep[m] {
			delete(h.fails, m)
		}
	}
	for m := range h.oks {
		if !keep[m] {
			delete(h.oks, m)
		}
	}
}

// effectiveLocked returns the configured members minus current suspects;
// self is never suspect. Caller holds mu.
func (h *healthState) effectiveLocked(self string) []string {
	all := h.configured.Members()
	out := make([]string, 0, len(all))
	for _, m := range all {
		if m != self && h.suspects[m] {
			continue
		}
		out = append(out, m)
	}
	return out
}

// runHealthMonitor is the heartbeat loop, started by New when
// cfg.HeartbeatInterval > 0 and stopped by Close. It idles cheaply while no
// ring is configured, so chronosd can always run it.
func (s *Server) runHealthMonitor() {
	defer close(s.healthDone)
	// Probes get their own short-timeout client: a probe slower than the
	// interval is as good as failed, and sharing forwardClient would let a
	// wedged peer consume its connection pool.
	probeClient := &http.Client{Timeout: s.cfg.HeartbeatInterval}
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.healthStop:
			return
		case <-ticker.C:
			s.heartbeatRound(probeClient)
		}
	}
}

// heartbeatRound probes every configured member once and applies any
// suspect/alive transitions to the effective ring. The whole round is one
// StageHeartbeat observation, so probe latency inflation (a peer answering
// slowly but in time) is visible before it becomes an eviction.
func (s *Server) heartbeatRound(probeClient *http.Client) {
	s.health.mu.Lock()
	m := s.health.configured
	s.health.mu.Unlock()
	if !m.Enabled() {
		return
	}
	start := time.Now()
	self := ring.NormalizeURL(m.Self)
	changed := false
	for _, member := range m.Members() {
		if member == self {
			continue
		}
		changed = s.recordProbe(member, s.probe(probeClient, member)) || changed
	}
	if changed {
		s.health.mu.Lock()
		members := s.health.effectiveLocked(self)
		s.health.mu.Unlock()
		s.applyRing(self, members)
	}
	s.metrics.stageSeconds[obs.StageHeartbeat].Observe(time.Since(start).Seconds())
}

// probe performs one GET /healthz liveness check.
func (s *Server) probe(client *http.Client, member string) bool {
	req, err := http.NewRequest(http.MethodGet, member+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// recordProbe folds one probe result into the member's counters and reports
// whether its suspect status flipped. Transitions are logged and counted:
// the eviction/re-admission lines are what the ring demo (and an operator's
// log search) keys on.
func (s *Server) recordProbe(member string, alive bool) bool {
	s.health.mu.Lock()
	defer s.health.mu.Unlock()
	if s.health.suspects == nil {
		s.health.suspects = make(map[string]bool)
		s.health.fails = make(map[string]int)
		s.health.oks = make(map[string]int)
	}
	if alive {
		s.health.fails[member] = 0
		s.health.oks[member]++
		if s.health.suspects[member] && s.health.oks[member] >= s.cfg.ReadmitAfter {
			delete(s.health.suspects, member)
			s.metrics.ringReadmits.Inc()
			s.logOp().Info("ring member recovered, re-admitting",
				"member", member, "okProbes", s.health.oks[member])
			return true
		}
		return false
	}
	s.health.oks[member] = 0
	s.health.fails[member]++
	s.metrics.ringHeartbeatFailure(member)
	if !s.health.suspects[member] && s.health.fails[member] >= s.cfg.SuspectAfter {
		s.health.suspects[member] = true
		s.metrics.ringEvictions.Inc()
		s.logOp().Warn("ring member suspected, evicting",
			"member", member, "failedProbes", s.health.fails[member])
		return true
	}
	return false
}
