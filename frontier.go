package chronos

import (
	"errors"
	"fmt"
	"math"

	"chronos/internal/optimize"
)

// BudgetFrontier is the precomputed form of OptimizeWithinBudget /
// OptimizeBestWithinBudget for one (job, econ, strategy-selector) cell. An
// admission controller squeezing repeated quantization-equal jobs against a
// draining ledger re-derives the same feasibility frontier on every
// request; building it once turns each subsequent capped solve into a scan
// of an in-memory table with no model evaluations.
//
// PlanWithinBudget returns bit-identical plans and errors to the
// corresponding Optimize*WithinBudget call for every budget.
type BudgetFrontier struct {
	// strategies holds the per-strategy tables in ChronosStrategies order
	// for best-of-three, or exactly one entry for a pinned strategy. A nil
	// entry marks a strategy that is infeasible regardless of budget.
	strategies []frontierEntry
	best       bool
}

type frontierEntry struct {
	strategy Strategy
	frontier *optimize.Frontier // nil: infeasible at any budget
}

// NewBudgetFrontier precomputes the capped-solve table for one pinned
// strategy. Errors are OptimizeWithinBudget's budget-independent ones:
// ErrNotAnalytic, parameter validation, ErrInfeasible.
func NewBudgetFrontier(s Strategy, p JobParams, e Econ) (*BudgetFrontier, error) {
	kind, err := analyticKind(s)
	if err != nil {
		return nil, err
	}
	ap, err := p.toAnalysis()
	if err != nil {
		return nil, err
	}
	f, err := optimize.NewFrontierStrategy(kind, ap, optimize.Config(e))
	if err != nil {
		return nil, err
	}
	return &BudgetFrontier{strategies: []frontierEntry{{strategy: s, frontier: f}}}, nil
}

// NewBudgetFrontierBest precomputes the capped-solve tables for all three
// Chronos strategies. Strategies that are infeasible at any budget are
// recorded as such (PlanWithinBudget skips them exactly like
// OptimizeBestWithinBudget does); the constructor fails only when a
// budget-independent hard error occurs or every strategy is infeasible.
func NewBudgetFrontierBest(p JobParams, e Econ) (*BudgetFrontier, error) {
	bf := &BudgetFrontier{best: true}
	feasible := false
	for _, s := range ChronosStrategies() {
		f, err := NewBudgetFrontier(s, p, e)
		switch {
		case errors.Is(err, optimize.ErrInfeasible):
			bf.strategies = append(bf.strategies, frontierEntry{strategy: s})
			continue
		case err != nil:
			return nil, err
		}
		bf.strategies = append(bf.strategies, frontierEntry{strategy: s, frontier: f.strategies[0].frontier})
		feasible = true
	}
	if !feasible {
		return nil, optimize.ErrInfeasible
	}
	return bf, nil
}

// PlanWithinBudget answers OptimizeWithinBudget (pinned construction) or
// OptimizeBestWithinBudget (best-of-three construction) from the tables.
func (bf *BudgetFrontier) PlanWithinBudget(budget float64) (Plan, error) {
	if math.IsNaN(budget) {
		// SolveCapped rejects a NaN budget before solving, so even cells
		// whose strategies are all infeasible report this first.
		return Plan{}, fmt.Errorf("optimize: budget is NaN")
	}
	best := Plan{}
	found, sawBudget := false, false
	for _, ent := range bf.strategies {
		if ent.frontier == nil {
			continue
		}
		res, err := ent.frontier.Solve(budget)
		switch {
		case errors.Is(err, optimize.ErrBudgetTooSmall):
			if !bf.best {
				return Plan{}, err
			}
			sawBudget = true
			continue
		case err != nil:
			return Plan{}, err
		}
		plan := planFromResult(ent.strategy, res)
		if !found || plan.Utility > best.Utility {
			best, found = plan, true
		}
	}
	if !found {
		if sawBudget {
			return Plan{}, optimize.ErrBudgetTooSmall
		}
		return Plan{}, optimize.ErrInfeasible
	}
	return best, nil
}

// Unconstrained returns the best unconstrained plan across the tables —
// what PlanWithinBudget returns for any budget that covers it, and the
// plan OptimizeBest / Optimize would compute for the same cell.
func (bf *BudgetFrontier) Unconstrained() Plan {
	best := Plan{}
	found := false
	for _, ent := range bf.strategies {
		if ent.frontier == nil {
			continue
		}
		plan := planFromResult(ent.strategy, ent.frontier.Unconstrained())
		if !found || plan.Utility > best.Utility {
			best, found = plan, true
		}
	}
	return best
}
