package optimize

import (
	"errors"
	"math"
	"testing"

	"chronos/internal/analysis"
	"chronos/internal/pareto"
)

func testParams() analysis.Params {
	return analysis.Params{
		N:        10,
		Deadline: 100,
		Task:     pareto.MustNew(10, 1.5),
		TauEst:   30,
		TauKill:  60,
	}
}

func testConfig() Config {
	return Config{Theta: 1e-4, UnitPrice: 1, RMin: 0}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		want error
	}{
		{"valid", Config{Theta: 1e-4, UnitPrice: 1, RMin: 0.5}, nil},
		{"zero theta", Config{Theta: 0, UnitPrice: 1}, ErrBadTheta},
		{"negative theta", Config{Theta: -1, UnitPrice: 1}, ErrBadTheta},
		{"zero price", Config{Theta: 1, UnitPrice: 0}, ErrBadPrice},
		{"rmin one", Config{Theta: 1, UnitPrice: 1, RMin: 1}, ErrBadRMin},
		{"rmin negative", Config{Theta: 1, UnitPrice: 1, RMin: -0.1}, ErrBadRMin},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.want == nil && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Fatalf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestUtilityNegInfBelowRMin(t *testing.T) {
	cfg := Config{Theta: 1e-4, UnitPrice: 1, RMin: 0.99}
	m := analysis.NewModel(analysis.StrategyClone, testParams())
	if u := cfg.Utility(m, 0); !math.IsInf(u, -1) {
		t.Errorf("Utility below RMin = %v, want -Inf", u)
	}
}

func TestUtilityFromMeasured(t *testing.T) {
	cfg := Config{Theta: 1e-4, UnitPrice: 1, RMin: 0.1}
	got := cfg.UtilityFromMeasured(0.9, 1000)
	want := math.Log10(0.8) - 1e-4*1000
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("UtilityFromMeasured = %v, want %v", got, want)
	}
	if u := cfg.UtilityFromMeasured(0.05, 10); !math.IsInf(u, -1) {
		t.Errorf("UtilityFromMeasured below RMin = %v, want -Inf", u)
	}
}

// TestSolveMatchesBruteForce is the central optimality check (Theorem 9):
// Algorithm 1 must return exactly the brute-force argmax over a wide grid of
// parameters and tradeoff factors.
func TestSolveMatchesBruteForce(t *testing.T) {
	thetas := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	betas := []float64{1.1, 1.3, 1.5, 1.9}
	ns := []int{1, 10, 100}
	for _, s := range analysis.Strategies() {
		for _, theta := range thetas {
			for _, beta := range betas {
				for _, n := range ns {
					p := testParams()
					p.Task.Beta = beta
					p.N = n
					cfg := Config{Theta: theta, UnitPrice: 1, RMin: 0}
					m := analysis.NewModel(s, p)

					got, err := Solve(m, cfg)
					if err != nil {
						t.Fatalf("%v theta=%v beta=%v n=%d: Solve error %v", s, theta, beta, n, err)
					}

					// Brute force over a generous range.
					bestU, bestR := math.Inf(-1), -1
					for r := 0; r <= 200; r++ {
						if u := cfg.Utility(m, r); u > bestU {
							bestU, bestR = u, r
						}
					}
					if got.R != bestR {
						t.Errorf("%v theta=%v beta=%v n=%d: Solve r=%d (U=%v), brute force r=%d (U=%v)",
							s, theta, beta, n, got.R, got.Utility, bestR, bestU)
					}
				}
			}
		}
	}
}

func TestSolveRejectsBadConfig(t *testing.T) {
	m := analysis.NewModel(analysis.StrategyClone, testParams())
	if _, err := Solve(m, Config{Theta: 0, UnitPrice: 1}); !errors.Is(err, ErrBadTheta) {
		t.Errorf("Solve with theta=0: err = %v, want ErrBadTheta", err)
	}
}

func TestSolveRejectsBadParams(t *testing.T) {
	p := testParams()
	p.N = 0
	m := analysis.NewModel(analysis.StrategyClone, p)
	if _, err := Solve(m, testConfig()); err == nil {
		t.Error("Solve with invalid params succeeded")
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := testParams()
	p.Deadline = 10.5 // nearly impossible deadline
	p.TauEst = 0.2
	p.TauKill = 0.4
	cfg := Config{Theta: 1e-4, UnitPrice: 1, RMin: 0.999999}
	m := analysis.NewModel(analysis.StrategyRestart, p)
	if _, err := Solve(m, cfg); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Solve on infeasible problem: err = %v, want ErrInfeasible", err)
	}
}

// TestOptimalRDecreasesInTheta reproduces the qualitative behaviour behind
// Figure 5: as theta grows, cost is weighted more and the optimal r shrinks.
func TestOptimalRDecreasesInTheta(t *testing.T) {
	p := testParams()
	for _, s := range analysis.Strategies() {
		prevR := math.MaxInt
		for _, theta := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
			res, err := Solve(analysis.NewModel(s, p), Config{Theta: theta, UnitPrice: 1})
			if err != nil {
				t.Fatalf("%v theta=%v: %v", s, theta, err)
			}
			if res.R > prevR {
				t.Errorf("%v: optimal r increased from %d to %d as theta grew to %v",
					s, prevR, res.R, theta)
			}
			prevR = res.R
		}
	}
}

// TestOptimalRDecreasesInBeta mirrors Figure 4's discussion: lighter tails
// (larger beta) need fewer speculative copies.
func TestOptimalRDecreasesInBeta(t *testing.T) {
	for _, s := range analysis.Strategies() {
		prevR := -1
		for _, beta := range []float64{1.1, 1.3, 1.5, 1.7, 1.9} {
			p := testParams()
			p.Task.Beta = beta
			// Deadline = 2x mean task time, as in the Figure 4 setup; the
			// tau instants scale with the deadline.
			p.Deadline = 2 * p.Task.Mean()
			p.TauEst = 0.3 * p.Deadline
			p.TauKill = 0.6 * p.Deadline
			res, err := Solve(analysis.NewModel(s, p), Config{Theta: 1e-4, UnitPrice: 1})
			if err != nil {
				t.Fatalf("%v beta=%v: %v", s, beta, err)
			}
			if prevR >= 0 && res.R > prevR+1 { // one step of slack for integer effects
				t.Errorf("%v: optimal r grew from %d to %d as beta grew to %v",
					s, prevR, res.R, beta)
			}
			prevR = res.R
		}
	}
}

func TestNonDeadlineSensitiveJobsGetZeroR(t *testing.T) {
	// Section V: as deadlines become very large, the optimal r approaches 0.
	// For the reactive strategies r=1 can remain marginally profitable even
	// then, because killing a heavy-tailed straggler truncates its unbounded
	// expected running time; allow r <= 1 for those.
	p := testParams()
	p.Deadline = 1e7
	p.TauKill = 1000
	p.TauEst = 500
	for _, s := range analysis.Strategies() {
		res, err := Solve(analysis.NewModel(s, p), testConfig())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		limit := 0
		if s != analysis.StrategyClone {
			limit = 1
		}
		if res.R > limit {
			t.Errorf("%v: huge deadline should give r<=%d, got %d", s, limit, res.R)
		}
	}
}

func TestSolveAllAndBest(t *testing.T) {
	p := testParams()
	cfg := testConfig()
	all := SolveAll(p, cfg)
	if len(all) != 3 {
		t.Fatalf("SolveAll returned %d results, want 3", len(all))
	}
	best, err := Best(p, cfg)
	if err != nil {
		t.Fatalf("Best: %v", err)
	}
	for _, r := range all {
		if r.Utility > best.Utility {
			t.Errorf("Best (%v, U=%v) is not the max (%v has U=%v)",
				best.Strategy, best.Utility, r.Strategy, r.Utility)
		}
	}
}

func TestBestInfeasible(t *testing.T) {
	p := testParams()
	cfg := Config{Theta: 1e-4, UnitPrice: 1, RMin: 0.9999999}
	p.Deadline = 10.2
	if _, err := Best(p, cfg); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Best on infeasible problem: err = %v, want ErrInfeasible", err)
	}
}

func TestCurve(t *testing.T) {
	m := analysis.NewModel(analysis.StrategyClone, testParams())
	pts := Curve(m, testConfig(), 5)
	if len(pts) != 6 {
		t.Fatalf("Curve returned %d points, want 6", len(pts))
	}
	for i, pt := range pts {
		if pt.R != i {
			t.Errorf("point %d has R=%d", i, pt.R)
		}
		if pt.Cost != pt.MachineTime*testConfig().UnitPrice {
			t.Errorf("point %d cost inconsistent", i)
		}
		if i > 0 && pts[i].PoCD < pts[i-1].PoCD {
			t.Errorf("PoCD decreasing along curve at %d", i)
		}
	}
}

func TestMinCostForPoCD(t *testing.T) {
	m := analysis.NewModel(analysis.StrategyClone, testParams())
	cfg := testConfig()
	res, err := MinCostForPoCD(m, cfg, 0.95)
	if err != nil {
		t.Fatalf("MinCostForPoCD: %v", err)
	}
	if res.PoCD < 0.95 {
		t.Errorf("result PoCD %v below target", res.PoCD)
	}
	if res.R > 0 && m.PoCD(res.R-1) >= 0.95 {
		t.Errorf("r=%d is not minimal", res.R)
	}
}

func TestMinCostForPoCDUnreachable(t *testing.T) {
	m := analysis.NewModel(analysis.StrategyClone, testParams())
	for _, target := range []float64{0, -1, 1.5} {
		if _, err := MinCostForPoCD(m, testConfig(), target); !errors.Is(err, ErrUnreachablePoCD) {
			t.Errorf("target %v: err = %v, want ErrUnreachablePoCD", target, err)
		}
	}
}

func TestCheapestStrategyForPoCD(t *testing.T) {
	p := testParams()
	cfg := testConfig()
	res, err := CheapestStrategyForPoCD(p, cfg, 0.9)
	if err != nil {
		t.Fatalf("CheapestStrategyForPoCD: %v", err)
	}
	if res.PoCD < 0.9 {
		t.Errorf("PoCD %v below target", res.PoCD)
	}
	// No other strategy meets the target at lower cost.
	for _, s := range analysis.Strategies() {
		other, err := MinCostForPoCD(analysis.NewModel(s, p), cfg, 0.9)
		if err != nil {
			continue
		}
		if other.Cost < res.Cost {
			t.Errorf("%v meets target at cost %v < chosen %v (%v)",
				s, other.Cost, res.Cost, res.Strategy)
		}
	}
}

func TestMaxPoCDForBudget(t *testing.T) {
	m := analysis.NewModel(analysis.StrategyResume, testParams())
	cfg := testConfig()
	baseline := m.MachineTime(0) * cfg.UnitPrice
	res, err := MaxPoCDForBudget(m, cfg, baseline*3)
	if err != nil {
		t.Fatalf("MaxPoCDForBudget: %v", err)
	}
	if res.Cost > baseline*3 {
		t.Errorf("cost %v exceeds budget %v", res.Cost, baseline*3)
	}
	if res.PoCD < m.PoCD(0) {
		t.Errorf("budget solution PoCD %v worse than free r=0 %v", res.PoCD, m.PoCD(0))
	}
	// Budget below the r=0 cost is an error.
	if _, err := MaxPoCDForBudget(m, cfg, baseline/2); err == nil {
		t.Error("expected error for budget below r=0 cost")
	}
}

func TestConcaveArgmax(t *testing.T) {
	// Quadratic with peak at 17.
	u := func(r int) float64 { x := float64(r - 17); return -x * x }
	if got := concaveArgmax(u, 0); got != 17 {
		t.Errorf("concaveArgmax = %d, want 17", got)
	}
	// Peak below start: start is returned.
	if got := concaveArgmax(u, 40); got != 40 {
		t.Errorf("concaveArgmax with start past peak = %d, want 40", got)
	}
	// Peak exactly at start.
	if got := concaveArgmax(u, 17); got != 17 {
		t.Errorf("concaveArgmax at peak = %d, want 17", got)
	}
	// Large peak found in logarithmic steps.
	u2 := func(r int) float64 { x := float64(r - 5000); return -x * x }
	if got := concaveArgmax(u2, 3); got != 5000 {
		t.Errorf("concaveArgmax far peak = %d, want 5000", got)
	}
}
