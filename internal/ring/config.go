package ring

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Membership names this replica and its fleet. It is the unit of ring
// reconfiguration: chronosd builds it from the -self/-peers flags or loads
// it from the -ring JSON file, and SIGHUP swaps a freshly loaded Membership
// into the serving layer.
type Membership struct {
	// Self is this replica's own base URL as the fleet addresses it
	// (scheme://host:port, no trailing slash).
	Self string `json:"self"`
	// Peers are the fleet members' base URLs. Self may be included or not;
	// Members always adds it.
	Peers []string `json:"peers"`
}

// Enabled reports whether the membership describes a ring at all. A zero
// Membership disables sharding.
func (m Membership) Enabled() bool {
	return m.Self != "" || len(m.Peers) > 0
}

// Validate checks the invariants the serving layer depends on: a ring with
// peers must know its own identity, and every member must be a non-empty
// base URL.
func (m Membership) Validate() error {
	if !m.Enabled() {
		return nil
	}
	if m.Self == "" {
		return fmt.Errorf("ring: peers configured but self is empty")
	}
	for _, p := range m.Peers {
		if strings.TrimSpace(p) == "" {
			return fmt.Errorf("ring: empty peer URL in membership")
		}
	}
	return nil
}

// Members returns the full deduplicated member set — peers plus self, each
// normalized with NormalizeURL — sorted for determinism.
func (m Membership) Members() []string {
	seen := make(map[string]bool, len(m.Peers)+1)
	out := make([]string, 0, len(m.Peers)+1)
	add := func(u string) {
		u = NormalizeURL(u)
		if u == "" || seen[u] {
			return
		}
		seen[u] = true
		out = append(out, u)
	}
	add(m.Self)
	for _, p := range m.Peers {
		add(p)
	}
	sort.Strings(out)
	return out
}

// NormalizeURL canonicalizes a member URL so that textual variants of the
// same address ("http://a:1/" vs "http://a:1") hash to the same ring
// placement on every replica.
func NormalizeURL(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// ParsePeers splits a comma-separated -peers flag value, dropping empty
// elements.
func ParsePeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// LoadFile reads a Membership from a JSON file of the form
// {"self": "http://...", "peers": ["http://...", ...]} and validates it.
func LoadFile(path string) (Membership, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Membership{}, fmt.Errorf("ring: %w", err)
	}
	var m Membership
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Membership{}, fmt.Errorf("ring: parse %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return Membership{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return m, nil
}
