package metrics

import (
	"fmt"
	"math"
	"strings"
)

// The paper's evaluation is presented as figures; the harness renders the
// same series as ASCII charts so `chronos-bench` output can be eyeballed
// against the published plots without leaving the terminal.

// BarChart renders labeled horizontal bars scaled to the maximum value.
type BarChart struct {
	// Title is printed above the bars.
	Title string
	// Width is the maximum bar width in characters (default 40).
	Width int

	labels []string
	values []float64
}

// NewBarChart starts an empty chart.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title, Width: 40}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// String renders the chart.
func (c *BarChart) String() string {
	if len(c.values) == 0 {
		return c.Title + " (no data)\n"
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxVal, maxLabel := 0.0, 0
	for i, v := range c.values {
		if v > maxVal {
			maxVal = v
		}
		if len(c.labels[i]) > maxLabel {
			maxLabel = len(c.labels[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for i, v := range c.values {
		bar := 0
		if maxVal > 0 && v > 0 {
			bar = int(math.Round(v / maxVal * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n",
			maxLabel, c.labels[i], strings.Repeat("#", bar), FormatFloat(v, 3))
	}
	return b.String()
}

// Sparkline condenses a numeric series into a one-line block-character
// profile — the shape of a sweep (cost vs theta, PoCD vs beta) at a glance.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
