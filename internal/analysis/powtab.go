package analysis

// powTabBits sizes the squares table: exponents up to 2^powTabBits - 1 are
// answered from the table, which covers the optimizer's r safety cap (1<<20)
// with room for the +1 offsets in the PoCD formulas.
const powTabBits = 21

// powTab caches x^(2^i) for i in [0, powTabBits). powInt computes these same
// squarings on every call before selecting the set-bit factors; the table
// computes them once per Reset, so a probe costs only popcount(n) multiplies.
//
// pow is bit-identical to powInt by construction: powInt's running result is
// the product of exactly these square values, multiplied in LSB-first bit
// order starting from 1.0, and floating-point multiplication by the literal
// 1.0 is exact — so replaying the same factors in the same order from the
// table reproduces every intermediate rounding.
type powTab struct {
	t [powTabBits]float64
}

// init fills the table for base x.
func (p *powTab) init(x float64) {
	p.t[0] = x
	for i := 1; i < powTabBits; i++ {
		p.t[i] = p.t[i-1] * p.t[i-1]
	}
}

// pow returns the base raised to n, bit-identical to powInt(base, n).
func (p *powTab) pow(n int) float64 {
	if n < 0 || n >= 1<<powTabBits {
		return powInt(p.t[0], n)
	}
	result := 1.0
	for i := 0; n > 0; i++ {
		if n&1 == 1 {
			result *= p.t[i]
		}
		n >>= 1
	}
	return result
}
