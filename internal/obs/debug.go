package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// TracesHandler serves GET /debug/traces: the retained request snapshots,
// slowest first, as a JSON array. ?n=K limits the answer to the K slowest
// (default 32, n=0 returns the whole retained window).
func TracesHandler(ring *TraceRing) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := 32
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"error": "n must be a non-negative integer",
				})
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		_ = json.NewEncoder(w).Encode(ring.Slowest(n))
	}
}

// DebugMux is the debug surface chronosd serves on its -debug-addr listener:
// net/http/pprof under /debug/pprof/ plus the slow-trace buffer under
// /debug/traces. It is deliberately a separate mux so profiling — whose
// handlers can run for 30 s and perturb the process — never shares the
// serving listener or its timeouts.
func DebugMux(ring *TraceRing) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/traces", TracesHandler(ring))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
