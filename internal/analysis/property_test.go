package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"chronos/internal/pareto"
)

// propParams folds arbitrary quick-check inputs into a valid parameter
// point in the paper's regime.
func propParams(nRaw, dRaw, bRaw, tRaw uint32) Params {
	n := int(nRaw%200) + 1
	beta := 1.05 + float64(bRaw%95)/100 // (1.05, 2.0)
	tmin := 5 + float64(tRaw%46)        // [5, 50]
	// Deadline between 1.2x and 6x tmin.
	d := tmin * (1.2 + float64(dRaw%48)/10)
	return Params{
		N:        n,
		Deadline: d,
		Task:     pareto.Dist{TMin: tmin, Beta: beta},
		TauEst:   0.25 * d,
		TauKill:  0.5 * d,
	}
}

// TestPropertyPoCDBounds: every strategy's PoCD stays in [0,1] and is
// non-decreasing in r across random parameter points.
func TestPropertyPoCDBounds(t *testing.T) {
	f := func(nRaw, dRaw, bRaw, tRaw uint32, rRaw uint8) bool {
		p := propParams(nRaw, dRaw, bRaw, tRaw)
		if p.Validate() != nil {
			return true // out-of-regime fold, skip
		}
		r := int(rRaw % 10)
		for _, s := range Strategies() {
			m := NewModel(s, p)
			a, b := m.PoCD(r), m.PoCD(r+1)
			if a < 0 || a > 1 || math.IsNaN(a) {
				return false
			}
			if b < a-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTheorem7: Clone and Resume dominate Restart at equal r on
// random parameter points.
func TestPropertyTheorem7(t *testing.T) {
	f := func(nRaw, dRaw, bRaw, tRaw uint32, rRaw uint8) bool {
		p := propParams(nRaw, dRaw, bRaw, tRaw)
		if p.Validate() != nil {
			return true
		}
		r := int(rRaw%6) + 1
		cmp := CompareAtR(p, r)
		return cmp.CloneOverRestart && cmp.ResumeOverRestart
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMachineTimePositive: expected machine time is positive and
// finite wherever PoCD is defined.
func TestPropertyMachineTimePositive(t *testing.T) {
	f := func(nRaw, dRaw, bRaw, tRaw uint32, rRaw uint8) bool {
		p := propParams(nRaw, dRaw, bRaw, tRaw)
		if p.Validate() != nil {
			return true
		}
		r := int(rRaw % 8)
		for _, s := range Strategies() {
			mt := NewModel(s, p).MachineTime(r)
			if mt <= 0 || math.IsNaN(mt) || math.IsInf(mt, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCDFConsistency: for every strategy, CompletionCDF is within
// [0,1] and agrees with PoCD at the configured deadline.
func TestPropertyCDFConsistency(t *testing.T) {
	f := func(nRaw, dRaw, bRaw, tRaw uint32, rRaw uint8) bool {
		p := propParams(nRaw, dRaw, bRaw, tRaw)
		if p.Validate() != nil {
			return true
		}
		r := int(rRaw % 5)
		for _, s := range Strategies() {
			m := NewModel(s, p)
			cdf := CompletionCDF(m, r, p.Deadline)
			if cdf < 0 || cdf > 1 || math.Abs(cdf-m.PoCD(r)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
