package replay

// Kind names one streamed replay event. The string values are the wire
// vocabulary of the NDJSON stream served by POST /v1/replay and printed by
// the CLIs' event modes.
type Kind string

// The event catalog. The first four are emitted by the replay core itself;
// the last two are reserved for the serving layer, which shares this wire
// format for its own stream entries.
const (
	// KindJobPlanned fires when a job arrives and its strategy has chosen
	// a speculation plan (Outcome is absent; Job.R carries the chosen r for
	// the Chronos strategies).
	KindJobPlanned Kind = "job_planned"
	// KindJobCompleted fires when a job's accounting settles: every task is
	// done and no attempt still occupies a container, so machine time and
	// cost are final. Outcome carries the result; PoCD is the running
	// deadline-hit fraction over settled jobs.
	KindJobCompleted Kind = "job_completed"
	// KindWindowSummary fires at sim-time window boundaries (windows with
	// no submissions or completions are coalesced away).
	KindWindowSummary Kind = "window_summary"
	// KindReplaySummary is the final event of a successful replay.
	KindReplaySummary Kind = "replay_summary"
	// KindBudgetExhausted is emitted by the serving layer when a tenant
	// pool can no longer cover a completed job's machine time; the stream
	// ends after it.
	KindBudgetExhausted Kind = "budget_exhausted"
	// KindError is emitted by the serving layer when a replay fails after
	// the stream has started (the HTTP status is already written).
	KindError Kind = "error"
)

// Event is one entry of the replay stream. Exactly one of the payload
// pointers is set, matching Kind.
type Event struct {
	// Kind discriminates the payload.
	Kind Kind `json:"event"`
	// Seq numbers events within one replay, from 0, with no gaps.
	Seq uint64 `json:"seq"`
	// Time is the simulation clock at emission (seconds).
	Time float64 `json:"time"`

	// Job describes the subject job (job_planned, job_completed).
	Job *JobEvent `json:"job,omitempty"`
	// Outcome carries the final accounting (job_completed only).
	Outcome *Outcome `json:"outcome,omitempty"`
	// PoCD is the running deadline-hit fraction over settled jobs
	// (job_completed only).
	PoCD *float64 `json:"pocd,omitempty"`
	// Window carries the periodic aggregates (window_summary only).
	Window *Window `json:"window,omitempty"`
	// Summary carries the final aggregates (replay_summary only).
	Summary *Summary `json:"summary,omitempty"`

	// TraceID is the serving request's trace ID, stamped by the serving
	// layer on the final replay_summary so a streamed replay correlates
	// with the server's structured logs and /debug/traces entry. Absent on
	// library and CLI replays.
	TraceID string `json:"traceId,omitempty"`

	// Tenant, Needed and Remaining describe a ledger failure
	// (budget_exhausted only, set by the serving layer).
	Tenant    string   `json:"tenant,omitempty"`
	Needed    float64  `json:"needed,omitempty"`
	Remaining *float64 `json:"remaining,omitempty"`
	// Error is the failure message (error events only).
	Error string `json:"error,omitempty"`
}

// JobEvent identifies one job of the stream.
type JobEvent struct {
	// ID is the job's index in the submitted stream.
	ID int `json:"id"`
	// Strategy is the speculation policy driving the job.
	Strategy string `json:"strategy"`
	// Tasks and ReduceTasks are the stage widths.
	Tasks       int `json:"tasks"`
	ReduceTasks int `json:"reduceTasks,omitempty"`
	// Arrival is the submission instant; Deadline is relative to it.
	Arrival  float64 `json:"arrival"`
	Deadline float64 `json:"deadline"`
	// R is the optimizer-chosen number of extra attempts for the map stage;
	// absent for strategies that do not plan r (the Hadoop/LATE/Mantri
	// baselines).
	R *int `json:"r,omitempty"`
	// ReduceR is the reduce-stage r, when a reduce stage was planned.
	ReduceR *int `json:"reduceR,omitempty"`
}

// Outcome is the settled accounting of one completed job.
type Outcome struct {
	// Finish is the completion instant (the settle instant is Event.Time,
	// which can be later when redundant attempts outlive completion).
	Finish float64 `json:"finish"`
	// MetDeadline reports whether Finish beat Arrival + Deadline.
	MetDeadline bool `json:"metDeadline"`
	// Lateness is Finish minus the absolute deadline; negative means early.
	Lateness float64 `json:"lateness"`
	// MachineTime is the job's total container occupancy (seconds).
	MachineTime float64 `json:"machineTime"`
	// Cost is the priced machine time (spot-priced when configured).
	Cost float64 `json:"cost"`
}

// Window is one periodic aggregate over the stream so far.
type Window struct {
	// Index is the window ordinal: the window spans
	// (Index*width, (Index+1)*width] in sim time.
	Index int `json:"index"`
	// Start and End bound the window (End is the boundary just reached).
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Completed counts jobs settled inside this window.
	Completed int `json:"completed"`
	// Running holds the cumulative aggregates at the boundary.
	Running Summary `json:"running"`
}

// Summary aggregates the stream: the streaming counterpart of the one-shot
// simulation report. PoCD, MeanMachineTime and MeanCost are over settled
// jobs.
type Summary struct {
	// Jobs is the number of settled jobs; Submitted the number admitted to
	// the cluster so far.
	Jobs      int `json:"jobs"`
	Submitted int `json:"submitted"`
	// Met counts jobs that finished before their deadline.
	Met int `json:"met"`
	// PoCD is Met / Jobs.
	PoCD float64 `json:"pocd"`
	// MeanMachineTime and MeanCost are per-settled-job averages.
	MeanMachineTime float64 `json:"meanMachineTime"`
	MeanCost        float64 `json:"meanCost"`
	// RHistogram counts optimizer-chosen map-stage r values. Populated on
	// the final replay_summary only (window summaries stay light).
	RHistogram map[int]int `json:"rHistogram,omitempty"`
}

// Observer receives every event of a replay, in emission order, on the
// replay goroutine. Returning a non-nil error aborts the replay, which
// returns that error — the serving layer uses this to stop promptly when the
// HTTP client disconnects mid-stream.
type Observer interface {
	OnEvent(*Event) error
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(*Event) error

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e *Event) error { return f(e) }
