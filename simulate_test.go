package chronos

import (
	"math"
	"testing"
)

func TestSimulateReduceStage(t *testing.T) {
	jobs := []SimJob{
		{Tasks: 8, Deadline: 300, TMin: 10, Beta: 1.5, ReduceTasks: 4},
		{Tasks: 6, Deadline: 300, TMin: 10, Beta: 1.5, ReduceTasks: 3,
			ReduceTMin: 5, ReduceBeta: 1.8, Arrival: 500},
	}
	for _, s := range []Strategy{HadoopNS, HadoopS, Mantri, Clone, SpeculativeRestart, SpeculativeResume} {
		rep, err := Simulate(SimConfig{Strategy: s, Seed: 31}, jobs)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rep.Jobs != 2 {
			t.Errorf("%v: Jobs = %d, want 2", s, rep.Jobs)
		}
		if rep.MeanMachineTime <= 0 {
			t.Errorf("%v: machine time %v", s, rep.MeanMachineTime)
		}
	}
}

func TestSimulateReduceValidation(t *testing.T) {
	jobs := []SimJob{{Tasks: 2, Deadline: 100, TMin: 10, Beta: 1.5,
		ReduceTasks: 1, ReduceBeta: -1}}
	if _, err := Simulate(SimConfig{Strategy: HadoopNS}, jobs); err == nil {
		t.Error("invalid reduce beta accepted")
	}
}

func TestSimulateSpotPricing(t *testing.T) {
	jobs := Benchmarks()[0].Jobs(60, 10, 400)
	fixed, err := Simulate(SimConfig{Strategy: HadoopNS, Seed: 13}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	spot, err := Simulate(SimConfig{
		Strategy: HadoopNS, Seed: 13,
		Spot: &SpotMarket{Mean: 1, Volatility: 0.3},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Identical seeds: same schedule, same machine time; only pricing
	// differs.
	if fixed.MeanMachineTime != spot.MeanMachineTime {
		t.Errorf("spot pricing changed the schedule: %v vs %v",
			fixed.MeanMachineTime, spot.MeanMachineTime)
	}
	if spot.MeanCost == fixed.MeanCost {
		t.Error("spot cost identical to fixed cost; series had no effect")
	}
	// Mean-reverting around the same mean: costs within a band.
	ratio := spot.MeanCost / fixed.MeanCost
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("spot/fixed cost ratio %v implausible", ratio)
	}
}

func TestSimulateSpotDefaultsFromEcon(t *testing.T) {
	jobs := []SimJob{{Tasks: 2, Deadline: 100, TMin: 10, Beta: 1.5}}
	rep, err := Simulate(SimConfig{
		Strategy: HadoopNS, Seed: 17,
		Econ: Econ{Theta: 1e-4, UnitPrice: 2},
		Spot: &SpotMarket{}, // mean defaults to Econ.UnitPrice
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanCost <= 0 {
		t.Errorf("spot-priced cost = %v", rep.MeanCost)
	}
	// Cost should be near 2x machine time (mean price 2).
	ratio := rep.MeanCost / rep.MeanMachineTime
	if math.Abs(ratio-2) > 1 {
		t.Errorf("cost/machine-time ratio %v, want ~2", ratio)
	}
}
