package experiment

import (
	"math"
	"testing"
)

// fastTrace shrinks the default trace so tests stay fast.
const fastTraceJobs = 80

func TestRunFigure2Shape(t *testing.T) {
	r := DefaultRunner()
	cfg := DefaultFig2Config()
	cfg.Jobs = 60 // keep the unit test quick; the bench runs the full 100
	rows, err := RunFigure2(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*5 {
		t.Fatalf("got %d rows, want 20 (4 benchmarks x 5 strategies)", len(rows))
	}

	// Index rows by benchmark and strategy.
	idx := make(map[string]map[string]Fig2Row)
	for _, row := range rows {
		if idx[row.Benchmark] == nil {
			idx[row.Benchmark] = make(map[string]Fig2Row)
		}
		idx[row.Benchmark][row.Strategy] = row
		if row.PoCD < 0 || row.PoCD > 1 {
			t.Errorf("%s/%s PoCD = %v", row.Benchmark, row.Strategy, row.PoCD)
		}
		if row.Cost <= 0 {
			t.Errorf("%s/%s cost = %v", row.Benchmark, row.Strategy, row.Cost)
		}
	}

	for bench, byStrat := range idx {
		ns := byStrat["Hadoop-NS"]
		// Figure 2(a): Hadoop-NS has the lowest PoCD.
		for name, row := range byStrat {
			if name == "Hadoop-NS" {
				continue
			}
			if row.PoCD < ns.PoCD-0.05 {
				t.Errorf("%s: %s PoCD %v below Hadoop-NS %v", bench, name, row.PoCD, ns.PoCD)
			}
		}
		// Figure 2(c): Hadoop-NS utility is -Inf by construction.
		if !math.IsInf(ns.Utility, -1) {
			t.Errorf("%s: Hadoop-NS utility = %v, want -Inf", bench, ns.Utility)
		}
		// Chronos strategies beat Hadoop-NS on PoCD decisively.
		for _, name := range []string{"Clone", "Speculative-Restart", "Speculative-Resume"} {
			if byStrat[name].PoCD <= ns.PoCD {
				t.Errorf("%s: %s PoCD %v not above Hadoop-NS %v",
					bench, name, byStrat[name].PoCD, ns.PoCD)
			}
		}
		// Clone is the costliest Chronos strategy (launches clones for all
		// tasks up front).
		clone := byStrat["Clone"]
		resume := byStrat["Speculative-Resume"]
		if resume.Cost > clone.Cost*1.05 {
			t.Errorf("%s: S-Resume cost %v above Clone %v", bench, resume.Cost, clone.Cost)
		}
	}
}

func TestFig2Table(t *testing.T) {
	rows := []Fig2Row{{Benchmark: "Sort", Strategy: "Clone", PoCD: 0.9, Cost: 100, Utility: -0.3}}
	out := Fig2Table(rows).String()
	if len(out) == 0 || Fig2Table(rows).Rows() != 1 {
		t.Error("Fig2Table rendering broken")
	}
}

func TestRunTable1Shape(t *testing.T) {
	r := DefaultRunner()
	cfg := DefaultTableConfig()
	cfg.Trace = scaledTrace(fastTraceJobs)
	rows, err := RunTable1(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 Clone row + 3 each for S-Restart and S-Resume.
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	if rows[0].Strategy != "Clone" || rows[0].TauEstFactor != 0 {
		t.Errorf("first row must be Clone at tauEst=0, got %+v", rows[0])
	}
	for _, row := range rows {
		if row.PoCD < 0 || row.PoCD > 1 || row.Cost <= 0 {
			t.Errorf("row %+v out of range", row)
		}
		if row.Strategy != "Clone" && row.TauKillFactor-row.TauEstFactor != 0.5 {
			t.Errorf("tauKill - tauEst = %v, want 0.5", row.TauKillFactor-row.TauEstFactor)
		}
	}
	// The speculative strategies dominate Clone on PoCD in this sweep
	// (Table I shows ~0.99 vs 0.72): check the direction loosely.
	var cloneP, bestSpecP float64
	for _, row := range rows {
		if row.Strategy == "Clone" {
			cloneP = row.PoCD
		} else if row.PoCD > bestSpecP {
			bestSpecP = row.PoCD
		}
	}
	if bestSpecP < cloneP-0.05 {
		t.Errorf("best speculative PoCD %v well below Clone %v", bestSpecP, cloneP)
	}
}

func TestRunTable2Shape(t *testing.T) {
	r := DefaultRunner()
	cfg := DefaultTableConfig()
	cfg.Trace = scaledTrace(fastTraceJobs)
	rows, err := RunTable2(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	// Costs increase with tauKill within each strategy (later kills mean
	// longer-running clones/speculative attempts).
	byStrat := map[string][]TableRow{}
	for _, row := range rows {
		byStrat[row.Strategy] = append(byStrat[row.Strategy], row)
	}
	for name, series := range byStrat {
		for i := 1; i < len(series); i++ {
			if series[i].TauKillFactor < series[i-1].TauKillFactor {
				t.Errorf("%s rows out of sweep order", name)
			}
		}
	}
	if out := TableText(rows).String(); len(out) == 0 {
		t.Error("TableText rendering broken")
	}
}

func TestRunFigure3Shape(t *testing.T) {
	r := DefaultRunner()
	cfg := DefaultFig3Config()
	cfg.Trace = scaledTrace(fastTraceJobs)
	rows, err := RunFigure3(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*4 {
		t.Fatalf("got %d rows, want 16", len(rows))
	}
	series := map[string][]Fig3Row{}
	for _, row := range rows {
		series[row.Strategy] = append(series[row.Strategy], row)
		if row.Strategy == "Mantri" && row.RHist != nil {
			t.Error("Mantri must not report an r histogram")
		}
		if row.Strategy != "Mantri" && row.RHist == nil {
			t.Errorf("%s missing r histogram", row.Strategy)
		}
	}
	// Figure 3(b): for the Chronos strategies cost is non-increasing in
	// theta (higher theta -> smaller optimal r -> cheaper).
	for _, name := range []string{"Clone", "Speculative-Restart", "Speculative-Resume"} {
		s := series[name]
		for i := 1; i < len(s); i++ {
			if s[i].Cost > s[i-1].Cost*1.05 {
				t.Errorf("%s cost increased from %v to %v as theta grew to %v",
					name, s[i-1].Cost, s[i].Cost, s[i].Theta)
			}
		}
	}
	// Figure 3(b): Mantri does not adapt to theta — its cost is flat across
	// the sweep and at least matches the reactive Chronos strategies'.
	mantri := series["Mantri"]
	minC, maxC := mantri[0].Cost, mantri[0].Cost
	for _, row := range mantri {
		minC = math.Min(minC, row.Cost)
		maxC = math.Max(maxC, row.Cost)
	}
	if maxC > minC*1.01 {
		t.Errorf("Mantri cost varies with theta: [%v, %v]", minC, maxC)
	}
	for i, row := range mantri {
		for _, name := range []string{"Speculative-Restart", "Speculative-Resume"} {
			if row.Cost < series[name][i].Cost*0.97 {
				t.Errorf("theta=%v: Mantri cost %v below %s cost %v",
					row.Theta, row.Cost, name, series[name][i].Cost)
			}
		}
	}
	// Figure 3(c): S-Resume attains the best net utility among the four
	// strategies at every theta (small slack for MC noise).
	for i, row := range series["Speculative-Resume"] {
		for _, name := range []string{"Mantri", "Clone", "Speculative-Restart"} {
			if row.Utility < series[name][i].Utility-0.02 {
				t.Errorf("theta=%v: S-Resume utility %v below %s utility %v",
					row.Theta, row.Utility, name, series[name][i].Utility)
			}
		}
	}
	if out := Fig3Table(rows).String(); len(out) == 0 {
		t.Error("Fig3Table rendering broken")
	}
}

func TestRunFigure4Shape(t *testing.T) {
	r := DefaultRunner()
	cfg := DefaultFig4Config()
	cfg.Jobs = 80
	cfg.Betas = []float64{1.1, 1.5, 1.9}
	rows, err := RunFigure4(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*5 {
		t.Fatalf("got %d rows, want 15", len(rows))
	}
	series := map[string][]Fig4Row{}
	for _, row := range rows {
		series[row.Strategy] = append(series[row.Strategy], row)
	}
	// Figure 4(b): cost decreases with beta for every strategy (mean task
	// time shrinks).
	for name, s := range series {
		for i := 1; i < len(s); i++ {
			if s[i].Cost > s[i-1].Cost*1.05 {
				t.Errorf("%s cost grew from %v to %v as beta rose to %v",
					name, s[i-1].Cost, s[i].Cost, s[i].Beta)
			}
		}
	}
	// Figure 4(a)/(c): the Chronos strategies dominate Hadoop-NS on PoCD at
	// every beta.
	for i := range series["Hadoop-NS"] {
		ns := series["Hadoop-NS"][i]
		for _, name := range []string{"Clone", "Speculative-Restart", "Speculative-Resume"} {
			if series[name][i].PoCD < ns.PoCD-0.03 {
				t.Errorf("beta=%v: %s PoCD %v below Hadoop-NS %v",
					ns.Beta, name, series[name][i].PoCD, ns.PoCD)
			}
		}
	}
	if out := Fig4Table(rows).String(); len(out) == 0 {
		t.Error("Fig4Table rendering broken")
	}
}

func TestRunFigure5Shape(t *testing.T) {
	r := DefaultRunner()
	cfg := DefaultFig5Config()
	cfg.Fig3.Trace = scaledTrace(fastTraceJobs)
	series, err := RunFigure5(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Clone and S-Resume at two thetas each.
	if len(series) != 4 {
		t.Fatalf("got %d series, want 4", len(series))
	}
	modes := map[string]map[float64]int{}
	for _, s := range series {
		if s.Hist == nil || s.Hist.Total() == 0 {
			t.Fatalf("%s@%v: empty histogram", s.Strategy, s.Theta)
		}
		mode, _ := s.Hist.Mode()
		if modes[s.Strategy] == nil {
			modes[s.Strategy] = map[float64]int{}
		}
		modes[s.Strategy][s.Theta] = mode
	}
	// Figure 5: the dominant r shifts down as theta increases.
	for name, byTheta := range modes {
		if byTheta[1e-4] > byTheta[1e-5] {
			t.Errorf("%s: mode r at theta=1e-4 (%d) above theta=1e-5 (%d)",
				name, byTheta[1e-4], byTheta[1e-5])
		}
	}
	if out := Fig5Table(series).String(); len(out) == 0 {
		t.Error("Fig5Table rendering broken")
	}
}

func TestRunnerRejectsBadShape(t *testing.T) {
	r := Runner{Nodes: 0, SlotsPerNode: 0}
	if _, err := r.run("x", nil); err == nil {
		t.Error("bad runner accepted")
	}
}

func TestRunFailuresShape(t *testing.T) {
	r := DefaultRunner()
	r.Nodes = 32 // small cluster so failures actually bite
	cfg := DefaultFailureConfig()
	cfg.Jobs = 40
	rows, err := RunFailures(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.MTBFs)*3 {
		t.Fatalf("got %d rows, want %d", len(rows), len(cfg.MTBFs)*3)
	}
	byStrat := map[string][]FailureRow{}
	for _, row := range rows {
		byStrat[row.Strategy] = append(byStrat[row.Strategy], row)
		if row.PoCD < 0 || row.PoCD > 1 || row.Cost <= 0 {
			t.Errorf("row %+v out of range", row)
		}
	}
	for name, series := range byStrat {
		// The no-failure column loses no attempts; intense failure rates do.
		if series[0].MTBF != 0 {
			t.Fatalf("%s: first row MTBF = %v, want 0", name, series[0].MTBF)
		}
		if series[0].Relaunches != 0 {
			t.Errorf("%s: lost %d attempts with no failures", name, series[0].Relaunches)
		}
		last := series[len(series)-1]
		if last.Relaunches == 0 {
			t.Errorf("%s: no attempts lost at MTBF=%v", name, last.MTBF)
		}
		// PoCD degrades (weakly) under the most intense failures compared
		// with the stable cluster.
		if last.PoCD > series[0].PoCD+0.05 {
			t.Errorf("%s: PoCD improved under failures: %v -> %v",
				name, series[0].PoCD, last.PoCD)
		}
	}
	// The speculative strategies stay far above Hadoop-NS even while
	// failing.
	for i := range byStrat["Hadoop-NS"] {
		ns := byStrat["Hadoop-NS"][i]
		for _, name := range []string{"Speculative-Restart", "Speculative-Resume"} {
			if byStrat[name][i].PoCD < ns.PoCD {
				t.Errorf("MTBF=%v: %s PoCD %v below Hadoop-NS %v",
					ns.MTBF, name, byStrat[name][i].PoCD, ns.PoCD)
			}
		}
	}
	if out := FailureTable(rows).String(); len(out) == 0 {
		t.Error("FailureTable rendering broken")
	}
}
