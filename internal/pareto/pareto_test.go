package pareto

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(1, scale)
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		tmin    float64
		beta    float64
		wantErr bool
	}{
		{name: "valid", tmin: 1, beta: 1.5},
		{name: "zero tmin", tmin: 0, beta: 1.5, wantErr: true},
		{name: "negative tmin", tmin: -2, beta: 1.5, wantErr: true},
		{name: "zero beta", tmin: 1, beta: 0, wantErr: true},
		{name: "negative beta", tmin: 1, beta: -1, wantErr: true},
		{name: "nan tmin", tmin: math.NaN(), beta: 1.5, wantErr: true},
		{name: "inf beta", tmin: 1, beta: math.Inf(1), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.tmin, tt.beta)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%v, %v) error = %v, wantErr %v", tt.tmin, tt.beta, err, tt.wantErr)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0, 1) did not panic")
		}
	}()
	MustNew(0, 1)
}

func TestPDFIntegratesToOne(t *testing.T) {
	for _, d := range []Dist{MustNew(1, 1.1), MustNew(10, 1.5), MustNew(40, 1.9), MustNew(2, 3)} {
		got := Integrate(d.PDF, d.TMin, math.Inf(1))
		if !almostEqual(got, 1, 1e-6) {
			t.Errorf("%v: integral of PDF = %v, want 1", d, got)
		}
	}
}

func TestCDFSurvivalComplement(t *testing.T) {
	d := MustNew(10, 1.5)
	for _, x := range []float64{5, 10, 11, 20, 100, 1e6} {
		if got := d.CDF(x) + d.Survival(x); !almostEqual(got, 1, 1e-12) {
			t.Errorf("CDF(%v)+Survival(%v) = %v, want 1", x, x, got)
		}
	}
}

func TestCDFBelowTMinIsZero(t *testing.T) {
	d := MustNew(10, 1.5)
	if d.CDF(9.999) != 0 {
		t.Errorf("CDF below tmin = %v, want 0", d.CDF(9.999))
	}
	if d.Survival(3) != 1 {
		t.Errorf("Survival below tmin = %v, want 1", d.Survival(3))
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	d := MustNew(7, 1.3)
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1)) // fold into [0,1)
		q := d.Quantile(p)
		return almostEqual(d.CDF(q), p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileEdges(t *testing.T) {
	d := MustNew(5, 2)
	if got := d.Quantile(0); got != 5 {
		t.Errorf("Quantile(0) = %v, want 5", got)
	}
	if got := d.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("Quantile(1) = %v, want +Inf", got)
	}
}

func TestMeanMatchesQuadrature(t *testing.T) {
	// Betas well above 1 so the tail of t*f(t) decays fast enough for the
	// semi-infinite transform to capture it.
	for _, d := range []Dist{MustNew(40, 1.8), MustNew(3, 2.5), MustNew(1, 4)} {
		want := Integrate(func(t float64) float64 { return t * d.PDF(t) }, d.TMin, math.Inf(1))
		if !almostEqual(d.Mean(), want, 1e-3) {
			t.Errorf("%v: Mean() = %v, quadrature %v", d, d.Mean(), want)
		}
	}
}

func TestMeanInfiniteForSmallBeta(t *testing.T) {
	if got := MustNew(1, 0.9).Mean(); !math.IsInf(got, 1) {
		t.Errorf("Mean with beta<=1 = %v, want +Inf", got)
	}
	if got := MustNew(1, 1.5).Variance(); !math.IsInf(got, 1) {
		t.Errorf("Variance with beta<=2 = %v, want +Inf", got)
	}
}

func TestVarianceFinite(t *testing.T) {
	d := MustNew(2, 3)
	meanSq := Integrate(func(t float64) float64 { return t * t * d.PDF(t) }, d.TMin, math.Inf(1))
	want := meanSq - d.Mean()*d.Mean()
	if !almostEqual(d.Variance(), want, 1e-4) {
		t.Errorf("Variance() = %v, quadrature %v", d.Variance(), want)
	}
}

func TestSampleRespectsSupport(t *testing.T) {
	d := MustNew(10, 1.5)
	rng := NewStream(1)
	for i := 0; i < 10000; i++ {
		if x := d.Sample(rng); x < d.TMin || math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("Sample() = %v outside support [tmin, inf)", x)
		}
	}
}

func TestSampleEmpiricalCDF(t *testing.T) {
	d := MustNew(10, 1.5)
	rng := NewStream(42)
	const n = 200000
	var below float64
	cut := d.Quantile(0.7)
	for i := 0; i < n; i++ {
		if d.Sample(rng) <= cut {
			below++
		}
	}
	if got := below / n; math.Abs(got-0.7) > 0.01 {
		t.Errorf("empirical CDF at q70 = %v, want ~0.7", got)
	}
}

func TestSampleN(t *testing.T) {
	d := MustNew(1, 2)
	xs := d.SampleN(NewStream(9), 17)
	if len(xs) != 17 {
		t.Fatalf("SampleN returned %d samples, want 17", len(xs))
	}
}

func TestScaled(t *testing.T) {
	d := MustNew(10, 1.5)
	s := d.Scaled(0.25)
	if s.TMin != 2.5 || s.Beta != 1.5 {
		t.Errorf("Scaled(0.25) = %v, want Pareto(2.5, 1.5)", s)
	}
	// P(cT > t) must equal Scaled survival.
	for _, x := range []float64{3, 5, 50} {
		want := d.Survival(x / 0.25)
		if got := s.Survival(x); !almostEqual(got, want, 1e-12) {
			t.Errorf("Scaled survival(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestConditionedAbove(t *testing.T) {
	d := MustNew(10, 1.5)
	c := d.ConditionedAbove(25)
	if c.TMin != 25 || c.Beta != d.Beta {
		t.Fatalf("ConditionedAbove(25) = %v, want Pareto(25, 1.5)", c)
	}
	// P(T > x | T > 25) = Survival(x)/Survival(25) for x >= 25.
	for _, x := range []float64{25, 40, 100} {
		want := d.Survival(x) / d.Survival(25)
		if got := c.Survival(x); !almostEqual(got, want, 1e-12) {
			t.Errorf("conditional survival(%v) = %v, want %v", x, got, want)
		}
	}
	// Conditioning below tmin is a no-op.
	if got := d.ConditionedAbove(1); got != d {
		t.Errorf("ConditionedAbove(1) = %v, want %v", got, d)
	}
}

func TestMinOfDistribution(t *testing.T) {
	d := MustNew(10, 1.5)
	m := d.MinOf(4)
	// P(min > t) = Survival(t)^4.
	for _, x := range []float64{12, 30, 200} {
		want := math.Pow(d.Survival(x), 4)
		if got := m.Survival(x); !almostEqual(got, want, 1e-12) {
			t.Errorf("MinOf(4).Survival(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestLemma1 checks E[min of n] = tmin*n*beta/(n*beta-1) against Monte Carlo.
func TestLemma1(t *testing.T) {
	rng := NewStream(7)
	// n*beta must be comfortably above 2 so the sample mean of the minimum
	// has finite variance and Monte Carlo converges at the usual rate.
	for _, tc := range []struct {
		d Dist
		n int
	}{
		{MustNew(10, 3), 1},
		{MustNew(10, 1.5), 2},
		{MustNew(10, 1.5), 3},
		{MustNew(10, 1.5), 5},
	} {
		const trials = 100000
		var sum float64
		for i := 0; i < trials; i++ {
			m := math.Inf(1)
			for k := 0; k < tc.n; k++ {
				if x := tc.d.Sample(rng); x < m {
					m = x
				}
			}
			sum += m
		}
		got := sum / trials
		want := tc.d.ExpectedMin(tc.n)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("%v n=%d: Monte-Carlo E[min] = %v, Lemma 1 gives %v", tc.d, tc.n, got, want)
		}
	}
}

func TestExpectedMinInfinite(t *testing.T) {
	d := MustNew(1, 0.5)
	if got := d.ExpectedMin(2); got != math.Inf(1) {
		t.Errorf("ExpectedMin with n*beta<=1 = %v, want +Inf", got)
	}
}

func TestMeanBelowQuadrature(t *testing.T) {
	for _, tc := range []struct {
		d Dist
		D float64
	}{
		{MustNew(10, 1.5), 100},
		{MustNew(40, 1.2), 100},
		{MustNew(1, 1.0), 7}, // beta == 1 singular branch
		{MustNew(5, 2.5), 30},
	} {
		d, D := tc.d, tc.D
		// E[T | T<=D] = int_tmin^D t f(t) dt / P(T<=D).
		num := Integrate(func(t float64) float64 { return t * d.PDF(t) }, d.TMin, D)
		want := num / d.CDF(D)
		if got := d.MeanBelow(D); !almostEqual(got, want, 1e-6) {
			t.Errorf("%v MeanBelow(%v) = %v, quadrature %v", d, D, got, want)
		}
	}
}

func TestMeanBelowDegenerate(t *testing.T) {
	d := MustNew(10, 1.5)
	if got := d.MeanBelow(10); got != 10 {
		t.Errorf("MeanBelow(tmin) = %v, want tmin", got)
	}
}

func TestMeanAbove(t *testing.T) {
	d := MustNew(10, 1.5)
	// Lemma 3: E[T | T > 50] is the mean of Pareto(50, 1.5).
	if got, want := d.MeanAbove(50), 50*1.5/0.5; !almostEqual(got, want, 1e-12) {
		t.Errorf("MeanAbove(50) = %v, want %v", got, want)
	}
	if got := MustNew(1, 1).MeanAbove(5); !math.IsInf(got, 1) {
		t.Errorf("MeanAbove with beta<=1 = %v, want +Inf", got)
	}
}

// TestTotalExpectation verifies E[T] = E[T|T<=D]P(T<=D) + E[T|T>D]P(T>D),
// the decomposition Theorems 4 and 6 rely on.
func TestTotalExpectation(t *testing.T) {
	d := MustNew(10, 1.5)
	D := 100.0
	got := d.MeanBelow(D)*d.CDF(D) + d.MeanAbove(D)*d.Survival(D)
	if !almostEqual(got, d.Mean(), 1e-9) {
		t.Errorf("law of total expectation: %v, want %v", got, d.Mean())
	}
}

func TestString(t *testing.T) {
	if got := MustNew(10, 1.5).String(); got != "Pareto(tmin=10, beta=1.5)" {
		t.Errorf("String() = %q", got)
	}
}

func TestIntegrateFinite(t *testing.T) {
	got := Integrate(func(x float64) float64 { return x * x }, 0, 3)
	if !almostEqual(got, 9, 1e-9) {
		t.Errorf("int_0^3 x^2 = %v, want 9", got)
	}
	if got := Integrate(math.Sin, 2, 2); got != 0 {
		t.Errorf("zero-width integral = %v, want 0", got)
	}
	// Reversed bounds negate.
	fwd := Integrate(math.Exp, 0, 1)
	rev := Integrate(math.Exp, 1, 0)
	if !almostEqual(fwd, -rev, 1e-9) {
		t.Errorf("reversed bounds: %v vs %v", fwd, rev)
	}
}

func TestIntegrateSemiInfinite(t *testing.T) {
	// int_0^inf e^-x dx = 1.
	got := Integrate(func(x float64) float64 { return math.Exp(-x) }, 0, math.Inf(1))
	if !almostEqual(got, 1, 1e-6) {
		t.Errorf("int_0^inf e^-x = %v, want 1", got)
	}
	// int_1^inf x^-2 dx = 1.
	got = Integrate(func(x float64) float64 { return 1 / (x * x) }, 1, math.Inf(1))
	if !almostEqual(got, 1, 1e-6) {
		t.Errorf("int_1^inf x^-2 = %v, want 1", got)
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(1, 2, 3)
	b := DeriveSeed(1, 2, 3)
	if a != b {
		t.Error("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Error("DeriveSeed ignores key order")
	}
	if DeriveSeed(1) == DeriveSeed(2) {
		t.Error("DeriveSeed ignores root seed")
	}
}

func TestNewStreamIndependence(t *testing.T) {
	r1 := NewStream(1, 10)
	r2 := NewStream(1, 11)
	same := 0
	for i := 0; i < 100; i++ {
		if r1.Uint64() == r2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different keys collided %d/100 times", same)
	}
	// Identical keys replay identically.
	r3 := NewStream(1, 10)
	r4 := NewStream(1, 10)
	for i := 0; i < 100; i++ {
		if r3.Uint64() != r4.Uint64() {
			t.Fatal("identical streams diverged")
		}
	}
}

func TestSurvivalMonotoneProperty(t *testing.T) {
	d := MustNew(3, 1.7)
	f := func(a, b float64) bool {
		a, b = math.Abs(a)+3, math.Abs(b)+3
		if a > b {
			a, b = b, a
		}
		return d.Survival(a) >= d.Survival(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
