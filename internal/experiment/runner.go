// Package experiment contains one driver per table and figure of the
// paper's evaluation (Section VII). Each driver builds the workload, runs
// every strategy on a common-random-numbers simulation, and returns rows
// matching the paper's reported series:
//
//	Figure 2  — PoCD / Cost / Utility per benchmark (testbed experiment)
//	Table I   — sweep of tauEst with tauKill - tauEst fixed
//	Table II  — sweep of tauKill with tauEst fixed
//	Figure 3  — PoCD / Cost / Utility vs tradeoff factor theta (trace-driven)
//	Figure 4  — PoCD / Cost / Utility vs Pareto tail index beta
//	Figure 5  — histogram of the optimal r for Clone and S-Resume
package experiment

import (
	"fmt"

	"chronos/internal/cluster"
	"chronos/internal/mapreduce"
	"chronos/internal/metrics"
	"chronos/internal/sim"
)

// Runner holds the cluster-shape and seeding shared by all experiments.
type Runner struct {
	// Nodes and SlotsPerNode size the simulated cluster. The defaults
	// (DefaultRunner) keep capacity ample, matching the paper's
	// trace-driven simulator.
	Nodes        int
	SlotsPerNode int
	// Contention optionally injects background load (the "Stress"
	// emulation of the testbed experiments).
	Contention cluster.ContentionModel
	// ReportInterval and ReportNoise configure the AM's progress
	// observation (periodic, noisy reports, as in real Hadoop); zeros mean
	// continuous exact observation.
	ReportInterval, ReportNoise float64
	// Seed drives all randomness; two runs with equal seeds are identical,
	// and all strategies see common random numbers.
	Seed uint64
}

// DefaultRunner returns a generously provisioned, uncontended cluster.
func DefaultRunner() Runner {
	return Runner{Nodes: 512, SlotsPerNode: 8, Seed: 1}
}

// submission pairs a job spec with the strategy instance driving it
// (strategies may be configured per job, e.g. job-relative tauEst).
type submission struct {
	spec  mapreduce.JobSpec
	strat mapreduce.Strategy
}

// run executes one batch of submissions and aggregates outcomes.
func (r Runner) run(name string, subs []submission) (*metrics.StrategyStats, error) {
	if r.Nodes < 1 || r.SlotsPerNode < 1 {
		return nil, fmt.Errorf("experiment: bad cluster shape %dx%d", r.Nodes, r.SlotsPerNode)
	}
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:        r.Nodes,
		SlotsPerNode: r.SlotsPerNode,
		Contention:   r.Contention,
		Seed:         r.Seed ^ 0xC10C0,
	})
	if err != nil {
		return nil, err
	}
	rt := mapreduce.NewRuntime(eng, cl, mapreduce.Config{
		Seed:           r.Seed,
		ReportInterval: r.ReportInterval,
		ReportNoise:    r.ReportNoise,
	})
	jobs := make([]*mapreduce.Job, 0, len(subs))
	for _, sub := range subs {
		job, err := rt.Submit(sub.spec, sub.strat)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
	}
	eng.Run()

	stats := metrics.NewStrategyStats(name)
	for _, j := range jobs {
		if !j.Done {
			return nil, fmt.Errorf("experiment: job %d (%s) did not complete", j.Spec.ID, name)
		}
		stats.Observe(j)
	}
	return stats, nil
}
