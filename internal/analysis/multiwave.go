package analysis

import (
	"fmt"
	"math"
)

// Multi-wave execution — the paper's stated future work ("Multi-wave
// executions will be considered in our future work") — arises when a job's
// N tasks exceed the S container slots available to it: tasks run in
// W = ceil(N/S) sequential waves, and the deadline budget must be divided
// across waves.
//
// WaveModel approximates a multi-wave job by planning each wave as an
// independent sub-job of at most S tasks with deadline D/W, which is exact
// when waves are synchronized (every wave starts when the previous one
// finishes) and conservative otherwise: real waves overlap because slots
// free up task by task, so the true PoCD is at least the model's.

// WaveModel wraps a single-wave strategy model with slot-limited waves.
type WaveModel struct {
	// Inner is the single-wave analytic model; its Params.N must be the
	// job's total task count.
	Inner Model
	// Slots is the number of containers available to the job per wave.
	// Clone-style strategies consume (r+1) slots per task, which the model
	// accounts for in WavesAtR.
	Slots int
}

// NewWaveModel validates and builds the wave wrapper.
func NewWaveModel(inner Model, slots int) (WaveModel, error) {
	if slots < 1 {
		return WaveModel{}, fmt.Errorf("analysis: wave model needs slots >= 1, got %d", slots)
	}
	return WaveModel{Inner: inner, Slots: slots}, nil
}

// WavesAtR returns the number of sequential waves needed when every task
// runs r+1 parallel attempts: ceil(N*(r+1) / Slots), at least 1.
func (w WaveModel) WavesAtR(r int) int {
	n := w.Inner.Params().N * (r + 1)
	waves := (n + w.Slots - 1) / w.Slots
	if waves < 1 {
		waves = 1
	}
	return waves
}

// waveParams shrinks the inner params to one wave: tasksInWave tasks and a
// deadline slice D/waves, with the tau instants scaled by the same factor so
// the control points stay proportionally placed within the wave.
func (w WaveModel) waveParams(waves int) Params {
	p := w.Inner.Params()
	scale := 1 / float64(waves)
	p.Deadline *= scale
	p.TauEst *= scale
	p.TauKill *= scale
	return p
}

// PoCD returns the synchronized-wave approximation: the job meets its
// deadline if every wave finishes within its D/W slice. Tasks are split as
// evenly as possible across waves; since per-task misses are i.i.d., the
// product over waves equals the full-N single-wave formula evaluated at the
// sliced deadline.
func (w WaveModel) PoCD(r int) float64 {
	waves := w.WavesAtR(r)
	if waves == 1 {
		return w.Inner.PoCD(r)
	}
	p := w.waveParams(waves)
	if p.Deadline <= p.Task.TMin || p.TauKill > p.Deadline {
		return 0 // a wave slice below tmin cannot complete in time
	}
	var e Evaluator
	e.Reset(strategyOf(w.Inner), p)
	return e.PoCD(r)
}

// MachineTime returns the expected machine time across waves. Machine time
// is additive over tasks and unaffected by wave scheduling, except that the
// tau-dependent terms use the per-wave control instants.
func (w WaveModel) MachineTime(r int) float64 {
	waves := w.WavesAtR(r)
	if waves == 1 {
		return w.Inner.MachineTime(r)
	}
	p := w.waveParams(waves)
	if p.Deadline <= p.Task.TMin {
		// Degenerate slice: fall back to the unsliced cost (tasks still
		// run; they just miss the deadline).
		return w.Inner.MachineTime(r)
	}
	var e Evaluator
	e.Reset(strategyOf(w.Inner), p)
	return e.MachineTime(r)
}

// Name implements Model.
func (w WaveModel) Name() string {
	return w.Inner.Name() + " (multi-wave)"
}

// Params implements Model, exposing the inner single-wave parameters.
func (w WaveModel) Params() Params { return w.Inner.Params() }

// Gamma implements Model: the concavity threshold of the wave-sliced
// problem is conservative — use the maximum over the wave counts reachable
// for small r, falling back to the inner threshold.
func (w WaveModel) Gamma() float64 {
	gamma := w.Inner.Gamma()
	// Wave slicing shrinks the deadline, which can only raise the
	// threshold; probe the first few r values.
	var e Evaluator
	for r := 0; r <= 8; r++ {
		waves := w.WavesAtR(r)
		if waves == 1 {
			continue
		}
		p := w.waveParams(waves)
		if p.Deadline <= p.Task.TMin || p.TauKill > p.Deadline {
			continue
		}
		e.Reset(strategyOf(w.Inner), p)
		if g := e.Gamma(); g > gamma {
			gamma = g
		}
	}
	return gamma
}

var _ Model = WaveModel{}

// strategyOf recovers the strategy enum from a model instance.
func strategyOf(m Model) Strategy {
	switch m.(type) {
	case Clone:
		return StrategyClone
	case Restart:
		return StrategyRestart
	case Resume:
		return StrategyResume
	case WaveModel:
		return strategyOf(m.(WaveModel).Inner)
	default:
		panic(fmt.Sprintf("analysis: unknown model type %T", m))
	}
}

// SlotsForWaves returns the minimum slot allocation that keeps the job at
// the given wave count for attempts-per-task a = r+1; useful for capacity
// planning ("how many containers keep this job single-wave?").
func SlotsForWaves(n, r, waves int) int {
	if waves < 1 {
		waves = 1
	}
	total := n * (r + 1)
	return int(math.Ceil(float64(total) / float64(waves)))
}
