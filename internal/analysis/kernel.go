package analysis

import "math"

// Evaluator is the recurrence kernel behind the Model interface: a
// per-(strategy, Params) evaluation state that hoists every r-invariant term
// of the closed forms — the deadline-miss probabilities, the geometric ratio
// and its squares table, the truncated-Pareto mean, the concavity threshold —
// out of the per-probe path, so each PoCD/MachineTime probe costs a handful
// of multiply-adds plus at most one math.Pow.
//
// The contract that makes an Evaluator safe to substitute for the plain
// models (cache keys, goldens, and frontier tables all depend on it) is BIT
// IDENTITY: for every r, an Evaluator reset to (s, p) returns exactly the
// float64 the corresponding Clone/Restart/Resume model returns. Hoisting a
// subexpression preserves bits only when the cached value is produced by the
// same operations on the same operands, so every branch below replicates the
// model's operation order literally; the property tests in
// kernel_property_test.go pin this across randomized Params.
//
// The zero Evaluator is not usable; call Reset first. An Evaluator is not
// safe for concurrent use.
type Evaluator struct {
	strat Strategy
	p     Params

	nF       float64 // float64(p.N), conversion is exact
	gamma    float64 // Theorem 8 threshold, fixed per (strategy, Params)
	failOrig float64 // P(original attempt misses D); Clone: single-attempt miss
	// failExtra is the geometric ratio rho of q(r) = A*rho^(r+c): the miss
	// probability of one extra attempt (Clone: same as failOrig).
	failExtra float64
	powExtra  powTab  // squares table over failExtra, see powtab.go
	hitTerm   float64 // meanHit * (1 - pMiss), the non-straggler cost term
	meanAll   float64 // N * E[T], Restart's r == 0 machine time
	tauDiff   float64 // TauKill - TauEst
	omPhi     float64 // 1 - phi (Resume only)

	cursor int // next r returned by Advance
}

var _ Model = (*Evaluator)(nil)

// Reset binds the evaluator to a strategy and parameter set, computing every
// r-invariant term once. It performs no validation; callers that need the
// closed forms' preconditions enforced should Validate the Params first.
func (e *Evaluator) Reset(s Strategy, p Params) {
	*e = Evaluator{strat: s, p: p, nF: float64(p.N)}

	failOrig := p.Task.Survival(p.Deadline)
	e.failOrig = failOrig

	switch s {
	case StrategyClone:
		e.failExtra = failOrig
		e.gamma = concavityThreshold(1, failOrig, 1, p.N)
	case StrategyRestart:
		failExtra := clampProb(p.Task.Survival(p.Deadline - p.TauEst))
		if p.Deadline-p.TauEst <= p.Task.TMin {
			failExtra = 1 // a restarted attempt cannot finish in time
		}
		e.failExtra = failExtra
		e.gamma = concavityThreshold(failOrig, failExtra, 0, p.N)
		e.meanAll = float64(p.N) * p.Task.Mean()
	case StrategyResume:
		phi := p.phi()
		e.omPhi = 1 - phi
		remaining := p.Task.Scaled(1 - phi)
		failExtra := clampProb(remaining.Survival(p.Deadline - p.TauEst))
		if p.Deadline-p.TauEst <= remaining.TMin {
			failExtra = 1
		}
		e.failExtra = failExtra
		e.gamma = concavityThreshold(failOrig, failExtra, 1, p.N)
	default:
		panic("analysis: unknown strategy")
	}

	e.powExtra.init(e.failExtra)

	// Straggler-branch invariants shared by Restart and Resume MachineTime.
	// pMiss is the same Survival(D) expression as failOrig, and hitTerm
	// caches the meanHit*(1-pMiss) product the models form on every probe.
	meanHit := p.Task.MeanBelow(p.Deadline)
	e.hitTerm = meanHit * (1 - failOrig)
	e.tauDiff = p.TauKill - p.TauEst
}

// Name implements Model.
func (e *Evaluator) Name() string { return e.strat.String() }

// Params implements Model.
func (e *Evaluator) Params() Params { return e.p }

// Strategy returns the bound strategy.
func (e *Evaluator) Strategy() Strategy { return e.strat }

// Gamma implements Model; the threshold is computed once at Reset.
func (e *Evaluator) Gamma() float64 { return e.gamma }

// PoCD implements Model (Theorems 1, 3, 5). The per-task failure probability
// q(r) = A*rho^(r+c) is assembled from the cached A and the squares table;
// the only remaining transcendental is pocdFromTaskFailure's (1-q)^N.
func (e *Evaluator) PoCD(r int) float64 {
	var q float64
	switch e.strat {
	case StrategyClone:
		q = e.powExtra.pow(r + 1)
	case StrategyRestart:
		q = e.failOrig * e.powExtra.pow(r)
	default: // StrategyResume
		q = e.failOrig * e.powExtra.pow(r+1)
	}
	return pocdFromTaskFailure(q, e.p.N)
}

// MachineTime implements Model (Theorems 2, 4, 6), replicating each model's
// branch structure with the r-invariant terms read from the cache.
func (e *Evaluator) MachineTime(r int) float64 {
	p := e.p
	switch e.strat {
	case StrategyClone:
		perTask := float64(r)*p.TauKill + p.Task.ExpectedMin(r+1)
		return e.nF * perTask
	case StrategyRestart:
		if r == 0 {
			return e.meanAll
		}
		straggler := p.TauEst + float64(r)*e.tauDiff + restartSurvivor(p, r)
		perTask := e.hitTerm + straggler*e.failOrig
		return e.nF * perTask
	default: // StrategyResume
		if r < 0 {
			r = 0
		}
		straggler := p.TauEst + float64(r)*e.tauDiff + resumeSurvivor(p.Task.TMin, p.Task.Beta, e.omPhi, r)
		perTask := e.hitTerm + straggler*e.failOrig
		return e.nF * perTask
	}
}

// Probe bundles both sides of the tradeoff at one replication level.
type Probe struct {
	R           int
	PoCD        float64
	MachineTime float64
}

// Seek positions the cursor so the next Advance evaluates r.
func (e *Evaluator) Seek(r int) { e.cursor = r }

// Advance evaluates both metrics at the cursor and moves it one step
// forward. This is the incremental path for sequential searches (frontier
// construction, capped scans, the below-Gamma exhaustive phase): the squares
// table built at Reset makes each step a popcount(r)-multiply replay of
// powInt's exact sequence. A naive running product q(r+1) = q(r)*rho would
// be cheaper still, but drifts from powInt's rounding by r = 4 and would
// break the bit-identity contract.
func (e *Evaluator) Advance() Probe {
	r := e.cursor
	e.cursor++
	return Probe{R: r, PoCD: e.PoCD(r), MachineTime: e.MachineTime(r)}
}

// resumeSurvivor is Resume.MachineTime's straggler survivor term, shared so
// the model and the Evaluator produce it with identical operations.
func resumeSurvivor(tm, b, omPhi float64, r int) float64 {
	brp := b * float64(r+1)
	return tm + tm*math.Pow(omPhi, brp)/(brp-1)
}
