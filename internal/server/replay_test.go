package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"chronos"
	"chronos/internal/tenant"
)

// tinyStream builds n cheap one-task jobs arriving steadily.
func tinyStream(n int) []chronos.SimJob {
	jobs := make([]chronos.SimJob, n)
	for i := range jobs {
		jobs[i] = chronos.SimJob{
			Tasks: 1, Deadline: 120, TMin: 5, Beta: 1.5,
			Arrival: float64(i),
		}
	}
	return jobs
}

func smallSimConfig() chronos.SimConfig {
	return chronos.SimConfig{
		Strategy: chronos.SpeculativeResume, Seed: 9,
		Nodes: 8, SlotsPerNode: 8,
	}
}

// readEvents decodes every NDJSON line of the response body.
func readEvents(t *testing.T, resp *http.Response) []chronos.ReplayEvent {
	t.Helper()
	defer resp.Body.Close()
	var events []chronos.ReplayEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev chronos.ReplayEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestReplayStreamsBeyondSimulateCap replays a stream larger than the
// /v1/simulate job ceiling and checks the full event protocol.
func TestReplayStreamsBeyondSimulateCap(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	n := s.cfg.MaxSimJobs + 100 // over the one-shot cap by construction

	resp := postJSON(t, ts.URL+"/v1/replay", map[string]any{
		"config":        smallSimConfig(),
		"jobs":          tinyStream(n),
		"windowSeconds": 60,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readEvents(t, resp)

	completed, windows := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case chronos.EventJobCompleted:
			completed++
		case chronos.EventWindowSummary:
			windows++
		}
	}
	if completed != n {
		t.Fatalf("completed events = %d, want %d", completed, n)
	}
	if windows == 0 {
		t.Fatal("no window summaries streamed")
	}
	final := events[len(events)-1]
	if final.Kind != chronos.EventReplaySummary || final.Summary == nil || final.Summary.Jobs != n {
		t.Fatalf("bad final event: %+v", final)
	}
	if got := s.metrics.replayJobs.Value(); got != uint64(n) {
		t.Fatalf("replay jobs metric = %d, want %d", got, n)
	}
	if s.metrics.replaysActive.Load() != 0 {
		t.Fatal("active replays gauge not back to zero")
	}
}

// TestReplayServerSideGeneration exercises both generation sources.
func TestReplayServerSideGeneration(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/replay", map[string]any{
		"config": smallSimConfig(),
		"trace":  map[string]any{"jobs": 30, "horizonSeconds": 1200, "deadlineRatio": 2, "seed": 5},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	events := readEvents(t, resp)
	if final := events[len(events)-1]; final.Kind != chronos.EventReplaySummary || final.Summary.Jobs != 30 {
		t.Fatalf("trace replay final: %+v", final)
	}

	resp = postJSON(t, ts.URL+"/v1/replay", map[string]any{
		"config":    smallSimConfig(),
		"benchmark": map[string]any{"name": "wordcount", "jobs": 5, "tasks": 8, "spacingSeconds": 200},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("benchmark status = %d", resp.StatusCode)
	}
	events = readEvents(t, resp)
	if final := events[len(events)-1]; final.Kind != chronos.EventReplaySummary || final.Summary.Jobs != 5 {
		t.Fatalf("benchmark replay final: %+v", final)
	}
}

func TestReplayValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxReplayJobs: 50})
	cases := []map[string]any{
		{"config": smallSimConfig()}, // no source
		{"config": smallSimConfig(), "jobs": tinyStream(3),
			"trace": map[string]any{"jobs": 5}}, // two sources
		{"config": smallSimConfig(), "trace": map[string]any{"jobs": 51}},                                // over cap
		{"config": smallSimConfig(), "benchmark": map[string]any{"name": "nope", "jobs": 2, "tasks": 2}}, // unknown benchmark
		{"config": smallSimConfig(), "jobs": tinyStream(3), "windowSeconds": -1},                         // bad window
		{"config": smallSimConfig(), "jobs": tinyStream(3), "windowSeconds": 1e-9},                       // degenerate window
		{"config": chronos.SimConfig{Strategy: chronos.Clone, Nodes: 1 << 20},
			"jobs": tinyStream(3)}, // cluster bound
	}
	for i, body := range cases {
		resp := postJSON(t, ts.URL+"/v1/replay", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
}

// TestReplayClientDisconnect cancels the request mid-stream and checks the
// server abandons the replay promptly instead of running it to completion.
func TestReplayClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Far more work than the few events the client reads; generated
	// server-side, so the request body stays tiny.
	n := 20000

	body, err := json.Marshal(map[string]any{
		"config":    smallSimConfig(),
		"benchmark": map[string]any{"name": "WordCount", "jobs": n, "tasks": 4, "spacingSeconds": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/replay", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// Read a handful of events, then vanish.
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 5 && sc.Scan(); i++ {
	}
	cancel()

	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.replaysActive.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("replay still active 5s after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.metrics.replayJobs.Value(); got >= uint64(n) {
		t.Fatalf("replay ran to completion (%d jobs) despite disconnect", got)
	}
}

// TestReplayConcurrencyCap holds one stream open and checks the next is
// turned away with 503 instead of stacking unbounded CPU commitments.
func TestReplayConcurrencyCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxActiveReplays: 1})
	body, err := json.Marshal(map[string]any{
		"config":    smallSimConfig(),
		"benchmark": map[string]any{"name": "WordCount", "jobs": 20000, "tasks": 4, "spacingSeconds": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/replay", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() { // the stream is live and holding the only slot
		t.Fatal("first replay produced no events")
	}

	second := postJSON(t, ts.URL+"/v1/replay", map[string]any{
		"config": smallSimConfig(), "jobs": tinyStream(3),
	})
	second.Body.Close()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second replay status = %d, want 503", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
}

// TestReplayTenantExhaustion drains a small pool mid-replay and expects a
// budget_exhausted event to end the stream.
func TestReplayTenantExhaustion(t *testing.T) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"etl": {Budget: 2000}, // a few tiny jobs' worth of machine time
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Tenants: reg})

	resp := postJSON(t, ts.URL+"/v1/replay", map[string]any{
		"config": smallSimConfig(),
		"jobs":   tinyStream(300),
		"tenant": "etl",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	events := readEvents(t, resp)
	final := events[len(events)-1]
	if final.Kind != chronos.EventBudgetExhausted {
		t.Fatalf("final event %q, want budget_exhausted", final.Kind)
	}
	if final.Tenant != "etl" || final.Remaining == nil || final.Needed <= *final.Remaining {
		t.Fatalf("bad budget_exhausted payload: %+v", final)
	}
	completed := 0
	for _, ev := range events {
		if ev.Kind == chronos.EventJobCompleted {
			completed++
		}
	}
	if completed == 0 || completed >= 300 {
		t.Fatalf("completed %d jobs before exhaustion, want some but not all", completed)
	}
	if rem := reg.Get("etl").Remaining(); rem >= 2000 {
		t.Fatalf("pool was never debited: %g remaining", rem)
	}

	resp = postJSON(t, ts.URL+"/v1/replay", map[string]any{
		"config": smallSimConfig(), "jobs": tinyStream(3), "tenant": "ghost",
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status = %d, want 404", resp.StatusCode)
	}
}

// TestSimulateHonorsContext pins the satellite bugfix: /v1/simulate no
// longer runs to completion for a client that is already gone.
func TestSimulateHonorsContext(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, err := json.Marshal(simulateRequest{Config: smallSimConfig(), Jobs: tinyStream(50)})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Body.Len() != 0 {
		t.Fatalf("cancelled simulate wrote a body: %q", rec.Body.String())
	}
}
