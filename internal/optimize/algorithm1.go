package optimize

import (
	"math"

	"chronos/internal/analysis"
)

// rSafetyCap bounds the search range. U(r) is eventually strictly decreasing
// (cost grows linearly in r while log10(R - Rmin) is bounded above), so the
// optimum is far below this; the cap only guards degenerate inputs.
const rSafetyCap = 1 << 20

// Result is the outcome of the joint optimization for one strategy.
type Result struct {
	// Strategy names the optimized model.
	Strategy string
	// R is the optimal number of extra attempts.
	R int
	// Utility is U(R).
	Utility float64
	// PoCD and MachineTime are the two tradeoff components at R.
	PoCD        float64
	MachineTime float64
	// Cost is UnitPrice * MachineTime.
	Cost float64
}

// Solve runs Algorithm 1 of the paper for one strategy model: an ascent
// search over the provably concave region r > Gamma (Phase 1) combined with
// an exhaustive scan of the integers 0 <= r < ceil(Gamma) (Phase 2). By
// Theorem 9 the combination returns a global maximizer of U.
func Solve(m analysis.Model, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.Params().Validate(); err != nil {
		return Result{}, err
	}
	// The bracketing and binary-search phases revisit r values; cache the
	// closed-form evaluations for the duration of the solve.
	mm, pooled := acquire(m)
	if pooled {
		defer mm.release()
	}
	return solveMemoized(mm, cfg)
}

// SolveStrategy is Solve for a (strategy, params) pair: the model is bound
// directly to a pooled recurrence kernel, so the entire solve performs no
// heap allocation.
func SolveStrategy(s analysis.Strategy, p analysis.Params, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	mm := acquireStrategy(s, p)
	defer mm.release()
	return solveMemoized(mm, cfg)
}

// solveMemoized is Solve after validation and memoization, shared with
// SolveCapped so a constrained solve reuses the same model evaluations.
func solveMemoized(m *memoModel, cfg Config) (Result, error) {
	gamma := m.Gamma()
	start := int(math.Ceil(gamma))
	if start < 0 {
		start = 0
	}

	// Phase 1: U is concave (hence unimodal) on r >= start. Bracket the peak
	// by exponential probing, then binary-search the first difference. The
	// closure does not escape concaveArgmax, so it stays on the stack.
	bestR := concaveArgmax(func(r int) float64 { return cfg.Utility(m, r) }, start)
	bestU := cfg.Utility(m, bestR)

	// Phase 2: exhaustive scan below the concavity threshold, riding the
	// kernel's sequential Advance cursor.
	for r := 0; r < start; r++ {
		if _, _, u := m.scanProbe(cfg, r); u > bestU {
			bestU, bestR = u, r
		}
	}

	if math.IsInf(bestU, -1) {
		return Result{}, ErrInfeasible
	}
	mt := m.MachineTime(bestR)
	return Result{
		Strategy:    m.Name(),
		R:           bestR,
		Utility:     bestU,
		PoCD:        m.PoCD(bestR),
		MachineTime: mt,
		Cost:        cfg.UnitPrice * mt,
	}, nil
}

// concaveArgmax maximizes a unimodal (discretely concave) function over the
// integers r >= start in O(log(peak)) evaluations: exponential search to
// bracket the peak, then binary search on the sign of the first difference.
func concaveArgmax(u func(int) float64, start int) int {
	// If the function is already non-increasing at start, start is optimal
	// within the concave region.
	if u(start+1) <= u(start) {
		return start
	}
	// Exponential bracketing: find hi with u(hi+1) <= u(hi).
	lo, step := start, 1
	hi := start + 1
	for u(hi+1) > u(hi) {
		lo = hi
		step *= 2
		hi += step
		if hi > rSafetyCap {
			return rSafetyCap
		}
	}
	// Invariant: u is increasing at lo, non-increasing at hi; peak in
	// (lo, hi]. Binary search the first r with u(r+1) <= u(r).
	for lo < hi {
		mid := lo + (hi-lo)/2
		if u(mid+1) > u(mid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SolveAll optimizes every Chronos strategy for the same parameters and
// returns the per-strategy results keyed by paper order (Clone, S-Restart,
// S-Resume). Strategies that are infeasible (PoCD never exceeds RMin) are
// reported with Utility = -Inf and R = -1.
func SolveAll(p analysis.Params, cfg Config) []Result {
	out := make([]Result, 0, 3)
	for _, s := range analysis.Strategies() {
		res, err := SolveStrategy(s, p, cfg)
		if err != nil {
			res = Result{Strategy: s.String(), R: -1, Utility: math.Inf(-1)}
		}
		out = append(out, res)
	}
	return out
}

// Best returns the strategy result with the highest utility from SolveAll,
// and ErrInfeasible if none is feasible.
func Best(p analysis.Params, cfg Config) (Result, error) {
	results := SolveAll(p, cfg)
	best := results[0]
	for _, r := range results[1:] {
		if r.Utility > best.Utility {
			best = r
		}
	}
	if math.IsInf(best.Utility, -1) {
		return Result{}, ErrInfeasible
	}
	return best, nil
}
