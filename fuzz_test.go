package chronos

import (
	"encoding/json"
	"testing"
)

// FuzzParseStrategy hardens the name parser every wire surface funnels
// through (CLI flags, chronosd requests, round-tripped plans): arbitrary
// input must either parse to a strategy whose canonical name re-parses to
// itself, or fail cleanly.
func FuzzParseStrategy(f *testing.F) {
	for _, seed := range []string{
		"clone", "Clone", " CLONE ", "speculative-restart", "s-restart",
		"restart", "resume", "hadoop-ns", "hadoopS", "mantri", "late",
		"best", "", "c\x00lone", "Speculative-Resume",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		s, err := ParseStrategy(name)
		if err != nil {
			return
		}
		back, err := ParseStrategy(s.String())
		if err != nil || back != s {
			t.Fatalf("ParseStrategy(%q) = %v, but canonical %q does not re-parse: %v",
				name, s, s.String(), err)
		}
	})
}

// FuzzStrategyJSON drives Strategy's custom (un)marshaling with arbitrary
// JSON: decoding must never panic, and anything that decodes must survive a
// marshal/unmarshal round trip unchanged.
func FuzzStrategyJSON(f *testing.F) {
	for _, seed := range []string{
		`"clone"`, `"Speculative-Resume"`, `"LATE"`, `0`, `6`, `-1`, `7`,
		`3.5`, `null`, `{}`, `[]`, `"best"`, `""`, `1e999`,
		`" "`, `18446744073709551616`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Strategy
		if err := s.UnmarshalJSON(data); err != nil {
			return
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("strategy %v decoded from %q but does not marshal: %v", s, data, err)
		}
		var back Strategy
		if err := json.Unmarshal(out, &back); err != nil || back != s {
			t.Fatalf("strategy %v round-trips through %s to %v (err %v)", s, out, back, err)
		}
	})
}

// planRequestWire mirrors the chronosd /v1/plan request body using the root
// API types, so the fuzzer exercises exactly the decode path an untrusted
// client reaches.
type planRequestWire struct {
	Job      JobParams `json:"job"`
	Econ     Econ      `json:"econ"`
	Strategy string    `json:"strategy,omitempty"`
	Tenant   string    `json:"tenant,omitempty"`
}

// FuzzPlanRequestJSON feeds arbitrary bytes through the plan-request decode
// plus a Plan round trip: no input may panic the decoder, and any decodable
// request must re-encode losslessly.
func FuzzPlanRequestJSON(f *testing.F) {
	for _, seed := range []string{
		`{"job":{"tasks":10,"deadline":100,"tmin":10,"beta":1.5,"tauEst":30,"tauKill":60},"econ":{"theta":1e-4,"unitPrice":1}}`,
		`{"job":{"tasks":-1},"strategy":"clone"}`,
		`{"job":{"deadline":1e308,"beta":-1e308},"econ":{"rmin":2}}`,
		`{"strategy":"nope","tenant":"etl"}`,
		`{"job":null,"econ":null}`,
		`{}`, `[]`, `""`, `0`,
		`{"plan":{"strategy":"LATE","r":3,"pocd":0.5,"machineTime":1,"cost":1,"utility":-1}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req planRequestWire
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("request decoded from %q but does not marshal: %v", data, err)
		}
		var back planRequestWire
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-encoded request %s does not decode: %v", out, err)
		}
		if back != req {
			t.Fatalf("plan request round-trip changed: %+v -> %+v", req, back)
		}

		// A Plan embeds the custom Strategy coding; round-trip it too when
		// the input happens to decode as one. A JSON object without a
		// "strategy" member leaves the zero (invalid) Strategy in place —
		// Go never calls UnmarshalJSON for absent fields — and such a Plan
		// must refuse to marshal rather than emit undecodable "Unknown".
		var plan Plan
		if err := json.Unmarshal(data, &plan); err != nil {
			return
		}
		out, err = json.Marshal(plan)
		if plan.Strategy < Clone || plan.Strategy > LATE {
			if err == nil {
				t.Fatalf("invalid strategy %d marshaled to %s", plan.Strategy, out)
			}
			return
		}
		if err != nil {
			t.Fatalf("plan decoded from %q but does not marshal: %v", data, err)
		}
		var planBack Plan
		if err := json.Unmarshal(out, &planBack); err != nil || planBack != plan {
			t.Fatalf("plan round-trips through %s to %+v (err %v)", out, planBack, err)
		}
	})
}
