package optimize

import (
	"testing"

	"chronos/internal/analysis"
	"chronos/internal/pareto"
)

// countingModel wraps a model and counts underlying evaluations.
type countingModel struct {
	analysis.Model
	pocdCalls, mtCalls int
}

func (c *countingModel) PoCD(r int) float64 {
	c.pocdCalls++
	return c.Model.PoCD(r)
}

func (c *countingModel) MachineTime(r int) float64 {
	c.mtCalls++
	return c.Model.MachineTime(r)
}

func testModel(t *testing.T) analysis.Model {
	t.Helper()
	return analysis.NewModel(analysis.StrategyResume, analysis.Params{
		N: 100, Deadline: 100, Task: pareto.MustNew(10, 1.5),
		TauEst: 30, TauKill: 60,
	})
}

// TestMemoizeTransparent verifies the wrapper returns identical values.
func TestMemoizeTransparent(t *testing.T) {
	base := testModel(t)
	memo := Memoize(base)
	for r := 0; r <= 8; r++ {
		if got, want := memo.PoCD(r), base.PoCD(r); got != want {
			t.Errorf("PoCD(%d): memoized %v != direct %v", r, got, want)
		}
		if got, want := memo.MachineTime(r), base.MachineTime(r); got != want {
			t.Errorf("MachineTime(%d): memoized %v != direct %v", r, got, want)
		}
	}
}

// TestMemoizeCachesRepeats verifies each (r) is evaluated at most once.
func TestMemoizeCachesRepeats(t *testing.T) {
	counter := &countingModel{Model: testModel(t)}
	memo := Memoize(counter)
	for i := 0; i < 10; i++ {
		memo.PoCD(3)
		memo.MachineTime(3)
	}
	if counter.pocdCalls != 1 || counter.mtCalls != 1 {
		t.Errorf("got %d PoCD / %d MachineTime evaluations, want 1 / 1",
			counter.pocdCalls, counter.mtCalls)
	}
	if again := Memoize(memo); again != memo {
		t.Error("Memoize(Memoize(m)) should return the same wrapper")
	}
}

// TestBatchSolveMemoized verifies the batch allocator does not re-evaluate
// the closed forms more than once per (job, r) pair.
func TestBatchSolveMemoized(t *testing.T) {
	counters := make([]*countingModel, 4)
	jobs := make([]BatchJob, 4)
	for i := range jobs {
		counters[i] = &countingModel{Model: testModel(t)}
		jobs[i] = BatchJob{Model: counters[i]}
	}
	results, err := BatchSolve(jobs, 40000)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		// Each distinct r in 0..R+1 is evaluated at most once per closed
		// form (the loop probes one step past the final grant).
		maxCalls := res.R + 2
		if counters[i].pocdCalls > maxCalls || counters[i].mtCalls > maxCalls {
			t.Errorf("job %d (r=%d): %d PoCD / %d MachineTime evaluations, want <= %d each",
				i, res.R, counters[i].pocdCalls, counters[i].mtCalls, maxCalls)
		}
	}
}
