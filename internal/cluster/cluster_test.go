package cluster

import (
	"errors"
	"testing"

	"chronos/internal/sim"
)

func newTestCluster(t *testing.T, nodes, slots int) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := New(eng, Config{Nodes: nodes, SlotsPerNode: slots})
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Nodes: 0, SlotsPerNode: 1}).Validate(); err == nil {
		t.Error("zero nodes accepted")
	}
	if err := (Config{Nodes: 1, SlotsPerNode: 0}).Validate(); err == nil {
		t.Error("zero slots accepted")
	}
	if err := (Config{Nodes: 4, SlotsPerNode: 8}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(sim.NewEngine(), Config{}); err == nil {
		t.Error("New accepted empty config")
	}
}

func TestAllocateUntilFull(t *testing.T) {
	_, c := newTestCluster(t, 2, 3)
	if c.Capacity() != 6 {
		t.Fatalf("Capacity() = %d, want 6", c.Capacity())
	}
	var grants []*Container
	for i := 0; i < 6; i++ {
		ctr, err := c.Allocate()
		if err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
		grants = append(grants, ctr)
	}
	if _, err := c.Allocate(); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("over-allocation error = %v, want ErrNoCapacity", err)
	}
	if c.InUse() != 6 {
		t.Errorf("InUse() = %d, want 6", c.InUse())
	}
	for _, g := range grants {
		c.Release(g)
	}
	if c.InUse() != 0 {
		t.Errorf("InUse() after releases = %d, want 0", c.InUse())
	}
}

func TestAllocateSpreadsLoad(t *testing.T) {
	_, c := newTestCluster(t, 4, 2)
	seen := make(map[int]int)
	for i := 0; i < 4; i++ {
		ctr, err := c.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		seen[ctr.Node.ID]++
	}
	// Least-loaded-first placement puts the first 4 containers on 4 nodes.
	if len(seen) != 4 {
		t.Errorf("4 allocations used %d nodes, want 4 (spreading)", len(seen))
	}
}

func TestRequestQueuesFIFO(t *testing.T) {
	_, c := newTestCluster(t, 1, 1)
	first, err := c.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.Request(func(ctr *Container) {
			order = append(order, i)
			c.Release(ctr)
		})
	}
	if c.QueueLength() != 3 {
		t.Fatalf("QueueLength() = %d, want 3", c.QueueLength())
	}
	// Releasing the held container lets the whole chain drain in order.
	c.Release(first)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("grant order = %v, want [0 1 2]", order)
	}
}

func TestRequestImmediateWhenFree(t *testing.T) {
	_, c := newTestCluster(t, 1, 1)
	granted := false
	c.Request(func(ctr *Container) {
		granted = true
		c.Release(ctr)
	})
	if !granted {
		t.Error("Request with free capacity did not grant synchronously")
	}
}

func TestMeterCharging(t *testing.T) {
	eng, c := newTestCluster(t, 1, 2)
	a, _ := c.Allocate()
	eng.Schedule(10, func() { c.Release(a) })
	b := 0.0
	eng.Schedule(3, func() {
		ctr, err := c.Allocate()
		if err != nil {
			t.Errorf("allocate at t=3: %v", err)
			return
		}
		eng.Schedule(7, func() {
			c.Release(ctr)
			b = eng.Now() - ctr.AcquiredAt
		})
	})
	eng.Run()
	// a held [0,10] = 10; b held [3,7] = 4.
	if got := c.Meter().MachineTime(); got != 14 {
		t.Errorf("MachineTime() = %v, want 14", got)
	}
	if c.Meter().Releases() != 2 {
		t.Errorf("Releases() = %d, want 2", c.Meter().Releases())
	}
	if b != 4 {
		t.Errorf("second container occupancy = %v, want 4", b)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	_, c := newTestCluster(t, 1, 1)
	ctr, _ := c.Allocate()
	c.Release(ctr)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	c.Release(ctr)
}

func TestFailNodeRevokes(t *testing.T) {
	_, c := newTestCluster(t, 2, 2)
	var revoked []*Container
	var grants []*Container
	for i := 0; i < 4; i++ {
		ctr, err := c.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		grants = append(grants, ctr)
		ctr.SetRevokeHandler(func() {
			revoked = append(revoked, ctr)
			c.Release(ctr)
		})
	}
	n, err := c.FailNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("FailNode revoked %d containers, want 2", n)
	}
	if len(revoked) != 2 {
		t.Errorf("revoke handlers ran %d times, want 2", len(revoked))
	}
	// Failed node is out of capacity.
	if c.Capacity() != 2 {
		t.Errorf("Capacity() after failure = %d, want 2", c.Capacity())
	}
	// Containers on the healthy node are untouched.
	for _, g := range grants {
		if g.Node.ID != 0 && g.released {
			t.Error("container on healthy node was revoked")
		}
	}
	// Failing again is a no-op.
	if n, _ := c.FailNode(0); n != 0 {
		t.Errorf("second FailNode revoked %d, want 0", n)
	}
	// Out-of-range node id errors.
	if _, err := c.FailNode(99); err == nil {
		t.Error("FailNode(99) succeeded")
	}
}

func TestAllocationSkipsFailedNodes(t *testing.T) {
	_, c := newTestCluster(t, 2, 1)
	if _, err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	ctr, err := c.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Node.ID != 1 {
		t.Errorf("allocation landed on failed node %d", ctr.Node.ID)
	}
}

func TestNoContentionSlowdown(t *testing.T) {
	if got := (NoContention{}).Slowdown(0, 0, 1); got != 1 {
		t.Errorf("NoContention slowdown = %v, want 1", got)
	}
}

func TestHotspotContention(t *testing.T) {
	h := HotspotContention{P: 0.3, Mean: 3}
	slowed, total := 0, 20000
	var sum float64
	for i := 0; i < total; i++ {
		s := h.Slowdown(0, 0, uint64(i))
		if s < 1 {
			t.Fatalf("slowdown %v < 1", s)
		}
		if s > 1 {
			slowed++
			sum += s
		}
	}
	frac := float64(slowed) / float64(total)
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("contended fraction = %v, want ~0.3", frac)
	}
	if mean := sum / float64(slowed); mean < 2.8 || mean > 3.2 {
		t.Errorf("mean contended slowdown = %v, want ~3", mean)
	}
	// Degenerate mean <= 1 never slows down.
	if got := (HotspotContention{P: 1, Mean: 1}).Slowdown(0, 0, 5); got != 1 {
		t.Errorf("degenerate hotspot slowdown = %v, want 1", got)
	}
}

func TestDiurnalContention(t *testing.T) {
	d := DiurnalContention{Amplitude: 0.5, Period: 100}
	// Peak of sin at t=25: slowdown = 1 + 0.5*(1+1)/2 = 1.5.
	if got := d.Slowdown(25, 0, 1); got < 1.49 || got > 1.51 {
		t.Errorf("diurnal peak slowdown = %v, want ~1.5", got)
	}
	// Trough at t=75: 1.0.
	if got := d.Slowdown(75, 0, 1); got < 0.99 || got > 1.01 {
		t.Errorf("diurnal trough slowdown = %v, want ~1", got)
	}
	withJitter := DiurnalContention{Amplitude: 0, Period: 0, Jitter: 0.2}
	if got := withJitter.Slowdown(0, 0, 7); got < 1 || got >= 1.2 {
		t.Errorf("jittered slowdown = %v, want in [1, 1.2)", got)
	}
}

func TestContentionAppliedAtAllocate(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Nodes: 1, SlotsPerNode: 4,
		Contention: HotspotContention{P: 1, Mean: 2},
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := c.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Slowdown <= 1 {
		t.Errorf("Slowdown = %v, want > 1 under P=1 contention", ctr.Slowdown)
	}
}
