package experiment

import (
	"chronos/internal/mapreduce"
	"chronos/internal/metrics"
	"chronos/internal/optimize"
	"chronos/internal/speculate"
	"chronos/internal/trace"
)

// Fig3Config parameterizes the theta sweep of Figure 3 (and, via the
// recorded r histograms, Figure 5).
type Fig3Config struct {
	// Trace shapes the synthetic job stream.
	Trace trace.GeneratorConfig
	// Thetas is the sweep (paper: 1e-6, 1e-5, 1e-4, 1e-3).
	Thetas []float64
	// TauEstFactor and TauKillFactor position the control instants in
	// units of each job's tmin (0.3 and 0.6, the best points of Tables
	// I/II).
	TauEstFactor, TauKillFactor float64
	// UnitPrice is the per-machine-second VM price C.
	UnitPrice float64
	// RMin enters the measured utility.
	RMin float64
}

// DefaultFig3Config mirrors the paper's sweep at reduced trace scale.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		Trace:         scaledTrace(120),
		Thetas:        []float64{1e-6, 1e-5, 1e-4, 1e-3},
		TauEstFactor:  0.3,
		TauKillFactor: 0.6,
		UnitPrice:     1,
	}
}

// Fig3Row is one (theta, strategy) point of Figures 3(a)-(c).
type Fig3Row struct {
	Theta    float64
	Strategy string
	PoCD     float64
	Cost     float64
	Utility  float64
	// RHist records the optimizer-chosen r distribution (Figure 5 input);
	// nil for Mantri, which does not optimize r.
	RHist *metrics.Histogram
}

// RunFigure3 sweeps theta over Mantri, Clone, S-Restart, and S-Resume on a
// common trace.
func RunFigure3(r Runner, cfg Fig3Config) ([]Fig3Row, error) {
	jobs, err := trace.Generate(cfg.Trace)
	if err != nil {
		return nil, err
	}
	var rows []Fig3Row
	for _, theta := range cfg.Thetas {
		for _, name := range []string{"Mantri", "Clone", "Speculative-Restart", "Speculative-Resume"} {
			subs := make([]submission, len(jobs))
			for i, rec := range jobs {
				spec := traceSpec(rec, cfg.UnitPrice)
				var strat mapreduce.Strategy
				if name == "Mantri" {
					strat = speculate.Mantri{}
				} else {
					strat = chronosByName(name, speculate.ChronosConfig{
						TauEst:  cfg.TauEstFactor * rec.Dist.TMin,
						TauKill: cfg.TauKillFactor * rec.Dist.TMin,
						Opt:     optimize.Config{Theta: theta, RMin: cfg.RMin, UnitPrice: cfg.UnitPrice},
						FixedR:  -1,
					})
				}
				subs[i] = submission{spec: spec, strat: strat}
			}
			stats, err := r.run(name, subs)
			if err != nil {
				return nil, err
			}
			ucfg := optimize.Config{Theta: theta, RMin: cfg.RMin, UnitPrice: cfg.UnitPrice}
			row := Fig3Row{
				Theta:    theta,
				Strategy: name,
				PoCD:     stats.PoCD(),
				Cost:     stats.MeanCost(),
				Utility:  stats.Utility(ucfg),
			}
			if name != "Mantri" {
				row.RHist = stats.RHistogram()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig3Table renders the theta sweep.
func Fig3Table(rows []Fig3Row) *metrics.Table {
	t := metrics.NewTable("theta", "Strategy", "PoCD", "Cost", "Utility")
	for _, row := range rows {
		t.AddRow(
			metrics.FormatFloat(row.Theta, 6),
			row.Strategy,
			metrics.FormatFloat(row.PoCD, 3),
			metrics.FormatFloat(row.Cost, 1),
			metrics.FormatFloat(row.Utility, 3))
	}
	return t
}
