package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMintIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := MintID()
		if len(id) != 32 {
			t.Fatalf("MintID() = %q, want 32 hex chars", id)
		}
		if !ValidID(id) {
			t.Fatalf("MintID() = %q is not a valid inbound ID", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestValidID(t *testing.T) {
	cases := []struct {
		id string
		ok bool
	}{
		{"abc-DEF_0.9", true},
		{"", false},
		{strings.Repeat("a", 64), true},
		{strings.Repeat("a", 65), false},
		{"has space", false},
		{"new\nline", false},
		{"quote\"", false},
	}
	for _, c := range cases {
		if got := ValidID(c.id); got != c.ok {
			t.Errorf("ValidID(%q) = %v, want %v", c.id, got, c.ok)
		}
	}
}

func TestNewTraceHonorsAndMints(t *testing.T) {
	tr := NewTrace("caller-chosen", "/v1/plan")
	if tr.ID != "caller-chosen" {
		t.Errorf("honored ID = %q, want caller-chosen", tr.ID)
	}
	tr = NewTrace("bad id\n", "/v1/plan")
	if tr.ID == "bad id\n" || len(tr.ID) != 32 {
		t.Errorf("unusable inbound ID should be replaced, got %q", tr.ID)
	}
}

func TestTraceSnapshotStages(t *testing.T) {
	tr := NewTrace("", "/v1/plan")
	tr.Observe(StageCache, 100*time.Microsecond)
	tr.Observe(StageSolve, 2*time.Millisecond)
	tr.Observe(StageSolve, 3*time.Millisecond)
	tr.SetTenant("acme")
	tr.SetCached(false)
	snap := tr.Finish(200, 6*time.Millisecond, "http://a", true)
	if snap.StageCounts[StageCache] != 1 || snap.StageCounts[StageSolve] != 2 {
		t.Fatalf("stage counts = %v", snap.StageCounts)
	}
	if got := snap.StageSeconds(StageSolve); got < 0.0049 || got > 0.0051 {
		t.Errorf("solve seconds = %g, want ~0.005", got)
	}
	if snap.Tenant != "acme" || snap.Cached == nil || *snap.Cached || !snap.ForwardHop {
		t.Errorf("metadata not carried: %+v", snap)
	}

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	stages, ok := wire["stages"].(map[string]any)
	if !ok {
		t.Fatalf("no stages object in %s", raw)
	}
	if _, ok := stages["solve"]; !ok {
		t.Errorf("solve stage missing from %s", raw)
	}
	if _, ok := stages["debit"]; ok {
		t.Errorf("unfired debit stage should be omitted: %s", raw)
	}
}

// TestNilTraceIsInert: the nil receiver contract every call site relies on.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.Observe(StageSolve, time.Second)
	tr.SetTenant("x")
	tr.SetCached(true)
	if snap := tr.Finish(200, time.Second, "", false); snap != nil {
		t.Errorf("nil trace Finish = %+v, want nil", snap)
	}
	if got := FromContext(t.Context()); got != nil {
		t.Errorf("FromContext(plain) = %v, want nil", got)
	}
}

// TestConcurrentSpansStayIsolated drives many goroutines, each with its own
// trace, every one also hammered by inner workers (the batch fan-out shape).
// Under -race this is the data-race gate; the assertions check that no span
// data leaked across traces.
func TestConcurrentSpansStayIsolated(t *testing.T) {
	const traces, workers, perWorker = 32, 8, 50
	var wg sync.WaitGroup
	snaps := make([]*Snapshot, traces)
	for i := 0; i < traces; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := NewTrace("", "/v1/plan/batch")
			var inner sync.WaitGroup
			for w := 0; w < workers; w++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					for k := 0; k < perWorker; k++ {
						tr.Observe(StageSolve, time.Microsecond)
					}
				}()
			}
			inner.Wait()
			snaps[i] = tr.Finish(200, time.Millisecond, "", false)
		}(i)
	}
	wg.Wait()
	ids := make(map[string]bool)
	for i, snap := range snaps {
		if got := snap.StageCounts[StageSolve]; got != workers*perWorker {
			t.Errorf("trace %d solve count = %d, want %d", i, got, workers*perWorker)
		}
		if ids[snap.ID] {
			t.Errorf("trace ID %q reused", snap.ID)
		}
		ids[snap.ID] = true
	}
}

func TestTraceRingEvictionAndSlowest(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 6; i++ {
		r.Add(&Snapshot{ID: string(rune('a' + i - 1)), Seconds: float64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	slow := r.Slowest(0)
	if len(slow) != 4 || slow[0].Seconds != 6 || slow[3].Seconds != 3 {
		t.Fatalf("Slowest(0) = %+v, want 6..3 (oldest evicted)", slow)
	}
	if top := r.Slowest(2); len(top) != 2 || top[0].Seconds != 6 {
		t.Fatalf("Slowest(2) = %+v", top)
	}
	if got := r.Find("f"); got == nil || got.Seconds != 6 {
		t.Errorf("Find(f) = %+v", got)
	}
	if got := r.Find("a"); got != nil {
		t.Errorf("Find(evicted) = %+v, want nil", got)
	}
	var nilRing *TraceRing
	nilRing.Add(&Snapshot{})
	if nilRing.Slowest(1) != nil || nilRing.Find("x") != nil || nilRing.Len() != 0 {
		t.Error("nil ring should be inert")
	}
}

func TestLoggerSamplingAndFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo, 10)
	snap := &Snapshot{ID: "t1", Route: "/v1/plan", Status: 200, Seconds: 0.001}
	for i := 0; i < 40; i++ {
		l.Request(snap)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 4 {
		t.Errorf("sampled 1-in-10: got %d lines over 40 requests, want 4", lines)
	}

	// 5xx bypasses sampling.
	buf.Reset()
	l.Request(&Snapshot{ID: "boom", Route: "/v1/plan", Status: 500})
	if !strings.Contains(buf.String(), `"boom"`) || !strings.Contains(buf.String(), `"ERROR"`) {
		t.Errorf("5xx line should always log at error level, got %q", buf.String())
	}

	// Field catalog on an unsampled logger.
	buf.Reset()
	full := NewLogger(&buf, slog.LevelInfo, 1)
	hit := true
	rich := &Snapshot{
		ID: "t2", Route: "/v1/plan", Status: 200, Seconds: 0.002,
		Tenant: "acme", Cached: &hit, ServedBy: "http://owner", ForwardHop: true,
	}
	rich.StageNanos[StageCache] = 1500
	rich.StageCounts[StageCache] = 1
	full.Request(rich)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("request line is not JSON: %v (%q)", err, buf.String())
	}
	for _, key := range []string{"traceId", "route", "status", "seconds", "tenant", "cached", "servedBy", "forwardHop", "stages"} {
		if _, ok := line[key]; !ok {
			t.Errorf("request line missing %q: %s", key, buf.String())
		}
	}
	var nilLogger *Logger
	nilLogger.Request(rich) // must not panic
	if nilLogger.Op() != nil {
		t.Error("nil logger Op() should be nil")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}

func TestDebugMux(t *testing.T) {
	ring := NewTraceRing(8)
	ring.Add(&Snapshot{ID: "slow", Route: "/v1/replay", Status: 200, Seconds: 2.5})
	mux := DebugMux(ring)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces status = %d", rec.Code)
	}
	var snaps []json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &snaps); err != nil || len(snaps) != 1 {
		t.Fatalf("/debug/traces body = %q (err %v)", rec.Body, err)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status = %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index: status %d, body %.80q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("pprof cmdline status = %d", rec.Code)
	}
}
