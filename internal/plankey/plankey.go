// Package plankey owns the canonical plan-key format: the quantized string
// that identifies one optimization request across the whole fleet. The
// serving layer keys its sharded plan cache and its consistent-hash ring
// with it, and the client package hashes it locally to route requests
// straight to the owning replica — both sides must build byte-identical
// keys, which is why the format lives in one package instead of two.
package plankey

import (
	"strconv"
	"strings"

	"chronos"
)

// Key builds the plan key for one optimization request. Floats are
// quantized to six significant digits, so jobs whose parameters differ only
// in measurement noise below that resolution share a plan — the point of
// the plan cache: schedulers see streams of near-identical jobs (same
// benchmark, same SLA tier) and Algorithm 1 is invariant under sub-ppm
// perturbations. strategy is the canonical strategy component from
// CanonicalStrategy ("" for best-of-three planning).
func Key(strategy string, p chronos.JobParams, e chronos.Econ) string {
	return string(AppendKey(nil, strategy, p, e))
}

// AppendKey appends the plan key to dst and returns the extended slice —
// Key for the serving hot path, which reuses a pooled buffer instead of
// allocating a string per request. The output is byte-identical to Key
// (historically fmt.Sprintf with %.6g), which persisted cache dumps and
// fleet-wide ring placement both depend on.
func AppendKey(dst []byte, strategy string, p chronos.JobParams, e chronos.Econ) []byte {
	dst = append(dst, strategy...)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(p.Tasks), 10)
	for _, f := range [...]float64{p.Deadline, p.TMin, p.Beta, p.TauEst,
		p.TauKill, p.PhiEst, e.Theta, e.UnitPrice, e.RMin} {
		dst = append(dst, '|')
		// strconv's 'g' with precision 6 is exactly fmt's %.6g; fmt itself
		// defers to this call for float verbs.
		dst = strconv.AppendFloat(dst, f, 'g', 6, 64)
	}
	return dst
}

// CanonicalStrategy maps a request's strategy selector — empty or "best"
// for best-of-three, otherwise a strategy name in any case — onto the key's
// strategy component. ok is false for unparseable names.
func CanonicalStrategy(name string) (canonical string, ok bool) {
	name = strings.TrimSpace(name)
	if name == "" || strings.EqualFold(name, "best") {
		return "", true
	}
	s, err := chronos.ParseStrategy(name)
	if err != nil {
		return "", false
	}
	return s.String(), true
}
