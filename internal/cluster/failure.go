package cluster

import (
	"fmt"
	"math"

	"chronos/internal/pareto"
	"chronos/internal/sim"
)

// RecoverNode returns a failed node to service; its slots become allocatable
// again and queued requests are dispatched onto it.
func (c *Cluster) RecoverNode(id int) error {
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", id)
	}
	n := c.nodes[id]
	if !n.failed {
		return nil
	}
	n.failed = false
	n.used = len(n.live)
	c.dispatch()
	return nil
}

// FailureInjector schedules random node failures (and recoveries) on the
// engine, modelling the hardware/software faults the paper lists as a root
// cause of stragglers. Failures arrive per node as a Poisson process with
// the given MTBF; failed nodes return after MTTR (exponentially
// distributed). Containers on a failing node are revoked through their
// revoke handlers, which the mapreduce runtime translates into
// attempt-failed events.
type FailureInjector struct {
	// MTBF is the per-node mean time between failures (seconds). Zero or
	// negative disables injection.
	MTBF float64
	// MTTR is the mean node repair time (seconds); zero means nodes never
	// recover.
	MTTR float64
	// Horizon bounds injection: no failures are scheduled after it.
	Horizon float64
	// Seed drives the failure process.
	Seed uint64
}

// Install arms the injector: each node gets an independent failure clock.
// Returns the number of nodes armed.
func (fi FailureInjector) Install(eng *sim.Engine, c *Cluster) int {
	if fi.MTBF <= 0 || fi.Horizon <= 0 {
		return 0
	}
	for _, n := range c.nodes {
		rng := pareto.NewStream(fi.Seed, 0xFA11, uint64(n.ID))
		fi.scheduleNext(eng, c, n.ID, rng, eng.Now())
	}
	return len(c.nodes)
}

// scheduleNext arms the next failure of one node.
func (fi FailureInjector) scheduleNext(eng *sim.Engine, c *Cluster, id int, rng expSource, from float64) {
	at := from + exp(rng, fi.MTBF)
	if at > fi.Horizon {
		return
	}
	eng.Schedule(at, func() {
		// The node may still be down from a previous failure whose repair
		// is pending; FailNode is a no-op then.
		_, _ = c.FailNode(id)
		if fi.MTTR > 0 {
			repair := exp(rng, fi.MTTR)
			eng.After(repair, func() {
				_ = c.RecoverNode(id)
			})
		}
		fi.scheduleNext(eng, c, id, rng, eng.Now())
	})
}

// expSource is the subset of rand.Rand the injector draws from.
type expSource interface{ ExpFloat64() float64 }

// exp draws an exponential variate with the given mean, guarding against
// pathological zero draws.
func exp(rng expSource, mean float64) float64 {
	return math.Max(1e-9, rng.ExpFloat64()*mean)
}
