package replay_test

import (
	"context"
	"testing"

	"chronos"
)

// BenchmarkReplayThroughput measures the streaming core end to end — lazy
// submission, event emission, per-job settlement — and reports jobs/sec,
// the capacity number that bounds how far /v1/replay streams can scale on
// one instance. Runs in the CI bench-smoke job.
func BenchmarkReplayThroughput(b *testing.B) {
	const jobs = 200
	stream := make([]chronos.SimJob, jobs)
	for i := range stream {
		stream[i] = chronos.SimJob{
			Tasks: 8, Deadline: 300, TMin: 10, Beta: 1.5,
			Arrival: float64(i) * 5,
		}
	}
	cfg := chronos.SimConfig{
		Strategy: chronos.SpeculativeResume, Seed: 1,
		Nodes: 64, SlotsPerNode: 8,
	}
	obs := chronos.ReplayObserverFunc(func(*chronos.ReplayEvent) error { return nil })

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chronos.Replay(context.Background(), cfg, stream,
			chronos.ReplayOptions{WindowSeconds: 300, Observer: obs}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/sec")
}
