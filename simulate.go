package chronos

import (
	"context"
	"math"

	"fmt"

	"chronos/internal/mapreduce"
	"chronos/internal/optimize"
	"chronos/internal/pareto"
	"chronos/internal/speculate"
	"chronos/internal/trace"
	"chronos/internal/workload"
)

// SimJob is one job of a simulated stream.
type SimJob struct {
	// Tasks is the number of parallel map tasks.
	Tasks int `json:"tasks"`
	// Deadline is the job deadline in seconds after arrival.
	Deadline float64 `json:"deadline"`
	// TMin and Beta parameterize the Pareto attempt execution times.
	TMin float64 `json:"tmin"`
	Beta float64 `json:"beta"`
	// Arrival is the submission time (seconds from simulation start).
	Arrival float64 `json:"arrival,omitempty"`
	// UnitPrice is the per-machine-second VM price; 0 means 1.
	UnitPrice float64 `json:"unitPrice,omitempty"`
	// ReduceTasks optionally adds a reduce stage gated on map completion;
	// 0 means a map-only job.
	ReduceTasks int `json:"reduceTasks,omitempty"`
	// ReduceTMin and ReduceBeta parameterize reduce-task times; zeros
	// inherit the map-stage values.
	ReduceTMin float64 `json:"reduceTMin,omitempty"`
	ReduceBeta float64 `json:"reduceBeta,omitempty"`
}

// TauScale selects how SimConfig's TauEst/TauKill are interpreted.
type TauScale int

// Tau interpretation modes.
const (
	// TauOfTMin (default): tau values are multiples of each job's TMin,
	// the convention of the paper's Tables I and II.
	TauOfTMin TauScale = iota
	// TauAbsolute: tau values are absolute seconds after job arrival, the
	// convention of the paper's testbed experiments (40 s / 80 s).
	TauAbsolute
)

// SimConfig shapes one simulation run.
type SimConfig struct {
	// Strategy is the speculation policy driving every job.
	Strategy Strategy `json:"strategy"`
	// Nodes and SlotsPerNode size the cluster; zero means 256 x 8.
	Nodes        int `json:"nodes,omitempty"`
	SlotsPerNode int `json:"slotsPerNode,omitempty"`
	// Seed makes the run reproducible; equal seeds give identical runs and
	// common random numbers across strategies.
	Seed uint64 `json:"seed,omitempty"`
	// TauEst and TauKill position the Chronos control instants, scaled per
	// TauScale. Zero values default to 0.3 and 0.6 of tmin.
	TauEst  float64 `json:"tauEst,omitempty"`
	TauKill float64 `json:"tauKill,omitempty"`
	// TauScale selects the interpretation of TauEst/TauKill.
	TauScale TauScale `json:"tauScale,omitempty"`
	// Econ drives the per-job optimizer and the reported utility. A zero
	// value defaults to theta=1e-4, price 1, rmin 0.
	Econ Econ `json:"econ,omitempty"`
	// FixedR bypasses the optimizer when >= 0 (ablations). Default: use
	// the optimizer (any negative value, and 0 value is distinguished via
	// UseFixedR).
	FixedR int `json:"fixedR,omitempty"`
	// UseFixedR enables FixedR (so that FixedR == 0 is expressible).
	UseFixedR bool `json:"useFixedR,omitempty"`
	// JVMMin and JVMMax bound the attempt startup delay; zeros mean 1-3 s.
	JVMMin float64 `json:"jvmMin,omitempty"`
	JVMMax float64 `json:"jvmMax,omitempty"`
	// ContentionP and ContentionMean, when positive, inject hotspot
	// background load (probability and mean slowdown).
	ContentionP    float64 `json:"contentionP,omitempty"`
	ContentionMean float64 `json:"contentionMean,omitempty"`
	// Spot, when non-nil, prices machine time against a synthetic
	// EC2-like spot market instead of the fixed Econ.UnitPrice.
	Spot *SpotMarket `json:"spot,omitempty"`
	// Failures, when non-nil, injects random node failures; running
	// attempts on a failing node are lost and strategies relaunch them.
	Failures *FailureModel `json:"failures,omitempty"`
	// UseHadoopEstimator makes the Chronos strategies predict completion
	// times with Hadoop's default (JVM-oblivious) estimator instead of the
	// paper's Eq. 30. Exists for the estimator ablation: it re-creates the
	// false-positive straggler detections the paper fixes.
	UseHadoopEstimator bool `json:"useHadoopEstimator,omitempty"`
	// ReportInterval, when > 0, restricts the AM to periodic progress
	// reports instead of continuous exact observation (as in real Hadoop).
	ReportInterval float64 `json:"reportInterval,omitempty"`
	// ReportNoise adds relative Gaussian error to each report (e.g. 0.1);
	// meaningful only with ReportInterval > 0.
	ReportNoise float64 `json:"reportNoise,omitempty"`
}

// FailureModel configures node-failure injection.
type FailureModel struct {
	// MTBF is the per-node mean time between failures (seconds).
	MTBF float64 `json:"mtbf"`
	// MTTR is the mean node repair time (seconds); zero means failed
	// nodes stay down.
	MTTR float64 `json:"mttr,omitempty"`
}

// SpotMarket configures time-varying VM pricing: a mean-reverting synthetic
// series standing in for EC2 spot-price history (see DESIGN.md).
type SpotMarket struct {
	// Mean is the long-run unit price.
	Mean float64 `json:"mean"`
	// Volatility is the per-step relative shock magnitude (default 0.15).
	Volatility float64 `json:"volatility,omitempty"`
	// StepSeconds is the repricing interval (default 300 s).
	StepSeconds float64 `json:"stepSeconds,omitempty"`
	// Seed drives the shocks (default: the simulation seed).
	Seed uint64 `json:"seed,omitempty"`
}

// Report summarizes one simulation run.
type Report struct {
	// Jobs is the number of jobs simulated.
	Jobs int `json:"jobs"`
	// PoCD is the fraction of jobs meeting their deadline.
	PoCD float64 `json:"pocd"`
	// MeanMachineTime and MeanCost are per-job averages.
	MeanMachineTime float64 `json:"meanMachineTime"`
	MeanCost        float64 `json:"meanCost"`
	// Utility is the measured net utility under the run's Econ.
	Utility float64 `json:"utility"`
	// RHistogram counts the optimizer-chosen r values (empty for
	// baselines).
	RHistogram map[int]int `json:"rHistogram,omitempty"`
}

// Simulate executes the job stream under the configured strategy on the
// discrete-event cluster and reports PoCD, cost, and utility. It is a
// one-shot fold over the streaming replay core (see Replay): every event is
// aggregated and only the final report returned.
func Simulate(cfg SimConfig, jobs []SimJob) (Report, error) {
	return SimulateContext(context.Background(), cfg, jobs)
}

// SimulateContext is Simulate with cancellation: the run stops between
// simulation events when ctx is cancelled and returns ctx's error.
func SimulateContext(ctx context.Context, cfg SimConfig, jobs []SimJob) (Report, error) {
	if len(jobs) == 0 {
		return Report{}, fmt.Errorf("chronos: no jobs to simulate")
	}
	return Replay(ctx, cfg, jobs, ReplayOptions{})
}

// spotSeries generates the market covering the whole job stream.
func (cfg SimConfig) spotSeries(jobs []SimJob) (trace.SpotPrices, error) {
	horizon := 0.0
	for _, j := range jobs {
		// Generous slack: stragglers can run far past their deadline; the
		// series extends constantly beyond its end anyway.
		if end := j.Arrival + 20*j.Deadline; end > horizon {
			horizon = end
		}
	}
	m := *cfg.Spot
	if m.Mean <= 0 {
		m.Mean = cfg.Econ.UnitPrice
	}
	if m.Volatility == 0 {
		m.Volatility = 0.15
	}
	if m.StepSeconds == 0 {
		m.StepSeconds = 300
	}
	if m.Seed == 0 {
		m.Seed = cfg.Seed
	}
	return trace.GenerateSpotPrices(trace.SpotConfig{
		Mean:       m.Mean,
		Volatility: m.Volatility,
		Reversion:  0.2,
		Step:       m.StepSeconds,
		Horizon:    math.Max(horizon, m.StepSeconds),
		Seed:       m.Seed,
	})
}

// withDefaults fills zero values.
func (cfg SimConfig) withDefaults() SimConfig {
	if cfg.Nodes == 0 {
		cfg.Nodes = 256
	}
	if cfg.SlotsPerNode == 0 {
		cfg.SlotsPerNode = 8
	}
	if cfg.TauEst == 0 && cfg.TauKill == 0 {
		cfg.TauEst, cfg.TauKill = 0.3, 0.6
		cfg.TauScale = TauOfTMin
	}
	if cfg.Econ == (Econ{}) {
		cfg.Econ = Econ{Theta: 1e-4, UnitPrice: 1}
	}
	if cfg.JVMMin == 0 && cfg.JVMMax == 0 {
		cfg.JVMMin, cfg.JVMMax = 1, 3
	}
	return cfg
}

// spec converts a SimJob to the internal job description.
func (j SimJob) spec(id int, cfg SimConfig) (mapreduce.JobSpec, error) {
	dist, err := pareto.New(j.TMin, j.Beta)
	if err != nil {
		return mapreduce.JobSpec{}, err
	}
	price := j.UnitPrice
	if price == 0 {
		price = cfg.Econ.UnitPrice
	}
	spec := mapreduce.JobSpec{
		ID:         id,
		Name:       "sim",
		NumTasks:   j.Tasks,
		Deadline:   j.Deadline,
		Dist:       dist,
		SplitBytes: 128 << 20,
		JVM:        mapreduce.JVMModel{Min: cfg.JVMMin, Max: cfg.JVMMax},
		UnitPrice:  price,
		Arrival:    j.Arrival,
	}
	if j.ReduceTasks > 0 {
		rtmin, rbeta := j.ReduceTMin, j.ReduceBeta
		if rtmin == 0 {
			rtmin = j.TMin
		}
		if rbeta == 0 {
			rbeta = j.Beta
		}
		rdist, err := pareto.New(rtmin, rbeta)
		if err != nil {
			return mapreduce.JobSpec{}, err
		}
		spec.Reduce = mapreduce.ReduceSpec{
			NumTasks:   j.ReduceTasks,
			Dist:       rdist,
			SplitBytes: 64 << 20,
		}
	}
	return spec, nil
}

// strategyFor instantiates the policy for one job (tau instants may be
// job-relative).
func (cfg SimConfig) strategyFor(j SimJob) (mapreduce.Strategy, error) {
	tauEst, tauKill := cfg.TauEst, cfg.TauKill
	if cfg.TauScale == TauOfTMin {
		tauEst *= j.TMin
		tauKill *= j.TMin
	}
	fixedR := -1
	if cfg.UseFixedR {
		fixedR = cfg.FixedR
	}
	ccfg := speculate.ChronosConfig{
		TauEst:  tauEst,
		TauKill: tauKill,
		Opt:     optimize.Config(cfg.Econ),
		FixedR:  fixedR,
	}
	if cfg.UseHadoopEstimator {
		ccfg.Estimator = mapreduce.HadoopEstimator
	}
	switch cfg.Strategy {
	case Clone:
		return speculate.Clone{Config: ccfg}, nil
	case SpeculativeRestart:
		return speculate.Restart{Config: ccfg}, nil
	case SpeculativeResume:
		return speculate.Resume{Config: ccfg}, nil
	case HadoopNS:
		return speculate.HadoopNS{}, nil
	case HadoopS:
		return speculate.HadoopS{}, nil
	case Mantri:
		return speculate.Mantri{}, nil
	case LATE:
		return speculate.LATE{}, nil
	default:
		return nil, fmt.Errorf("chronos: unknown strategy %d", cfg.Strategy)
	}
}

// Benchmark is a public view of one of the paper's testbed workloads.
type Benchmark struct {
	// Name is the benchmark name (Sort, SecondarySort, TeraSort,
	// WordCount).
	Name string
	// TMin and Beta describe the calibrated map-task time distribution.
	TMin, Beta float64
	// Deadline is the paper's deadline for the benchmark.
	Deadline float64
	// CPUBound distinguishes compute- from I/O-dominated benchmarks.
	CPUBound bool
}

// Benchmarks returns the four Figure 2 workloads.
func Benchmarks() []Benchmark {
	profs := workload.Profiles()
	out := make([]Benchmark, len(profs))
	for i, p := range profs {
		out[i] = Benchmark{
			Name:     p.Name,
			TMin:     p.Dist.TMin,
			Beta:     p.Dist.Beta,
			Deadline: p.Deadline,
			CPUBound: p.Class == workload.CPUBound,
		}
	}
	return out
}

// Jobs expands a benchmark into a stream of n identical jobs with the given
// task count, spaced spacing seconds apart.
func (b Benchmark) Jobs(n, tasks int, spacing float64) []SimJob {
	jobs := make([]SimJob, n)
	for i := range jobs {
		jobs[i] = SimJob{
			Tasks:    tasks,
			Deadline: b.Deadline,
			TMin:     b.TMin,
			Beta:     b.Beta,
			Arrival:  float64(i) * spacing,
		}
	}
	return jobs
}

// TraceConfig shapes a synthetic Google-like trace (see internal/trace for
// the substitution rationale).
type TraceConfig struct {
	// Jobs and HorizonSeconds size the trace (paper: 2700 jobs / 30 h).
	Jobs           int
	HorizonSeconds float64
	// DeadlineRatio sets each job's deadline to ratio x mean task time.
	DeadlineRatio float64
	// Seed drives the generation.
	Seed uint64
}

// SyntheticTrace generates a Google-trace-like job stream ready for
// Simulate.
func SyntheticTrace(cfg TraceConfig) ([]SimJob, error) {
	gen := trace.DefaultGeneratorConfig()
	if cfg.Jobs > 0 {
		gen.Jobs = cfg.Jobs
	}
	if cfg.HorizonSeconds > 0 {
		gen.Horizon = cfg.HorizonSeconds
	}
	if cfg.DeadlineRatio > 0 {
		gen.DeadlineRatio = cfg.DeadlineRatio
	}
	if cfg.Seed != 0 {
		gen.Seed = cfg.Seed
	}
	records, err := trace.Generate(gen)
	if err != nil {
		return nil, err
	}
	jobs := make([]SimJob, len(records))
	for i, r := range records {
		jobs[i] = SimJob{
			Tasks:    r.NumTasks,
			Deadline: r.Deadline,
			TMin:     r.Dist.TMin,
			Beta:     r.Dist.Beta,
			Arrival:  r.Arrival,
		}
	}
	return jobs, nil
}
