// trace_replay: a large-scale, trace-driven comparison over the streaming
// replay endpoint.
//
// This example mirrors the paper's Section VII-B evaluation — a
// Google-trace-like stream of MapReduce jobs replayed under every strategy —
// but instead of calling the in-process library it drives a live chronosd
// through the chronos/client package: it boots the daemon on a loopback
// port, asks client.Replay to generate the trace server-side, and consumes
// the NDJSON event stream (job_planned, job_completed, window_summary,
// replay_summary) as the simulation runs.
//
// Run with:
//
//	go run ./examples/trace_replay
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sort"

	"chronos"
	"chronos/client"
	"chronos/internal/server"
)

const (
	traceJobs    = 150
	traceHorizon = 2 * 3600
	traceSeed    = 7
)

func main() {
	// A live chronosd on a loopback port: the same daemon `cmd/chronosd`
	// runs in production.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	srv := server.New(server.Config{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	c := client.New("http://" + ln.Addr().String())

	order := []chronos.Strategy{
		chronos.HadoopNS, chronos.HadoopS, chronos.LATE, chronos.Mantri,
		chronos.Clone, chronos.SpeculativeRestart, chronos.SpeculativeResume,
	}
	fmt.Printf("replaying a %d-job generated trace over %s/v1/replay\n\n",
		traceJobs, c.Replicas()[0])

	results := make(map[chronos.Strategy]*chronos.ReplaySummary)
	for _, s := range order {
		sum, err := replayOnce(ctx, c, s)
		if err != nil {
			log.Fatal(err)
		}
		results[s] = sum
	}

	fmt.Printf("\n%-22s %-8s %-12s %-8s\n", "strategy", "PoCD", "mean cost", "jobs")
	for _, s := range order {
		sum := results[s]
		fmt.Printf("%-22s %-8.3f %-12.1f %-8d\n", s, sum.PoCD, sum.MeanCost, sum.Jobs)
	}

	// The distribution of optimizer-chosen r for the work-preserving
	// strategy (the Figure 5 view), read off the final stream event.
	resume := results[chronos.SpeculativeResume]
	var rs []int
	for r := range resume.RHistogram {
		rs = append(rs, r)
	}
	sort.Ints(rs)
	fmt.Println("\nSpeculative-Resume optimal-r distribution:")
	for _, r := range rs {
		fmt.Printf("  r=%d: %d jobs\n", r, resume.RHistogram[r])
	}

	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

// replayOnce streams one strategy's replay and returns its final summary.
// The trace is generated server-side — nothing is uploaded but the config.
func replayOnce(ctx context.Context, c *client.Client, s chronos.Strategy) (*chronos.ReplaySummary, error) {
	fmt.Printf("%v:\n", s)
	return c.Replay(ctx, client.ReplayRequest{
		Config: chronos.SimConfig{
			Strategy: s,
			Seed:     traceSeed, // common random numbers across strategies
			Econ:     chronos.Econ{Theta: 1e-4, UnitPrice: 1},
			// Ample capacity, as in the paper's trace-driven simulator.
			Nodes:        2048,
			SlotsPerNode: 8,
		},
		Trace: &client.ReplayTrace{
			Jobs:           traceJobs,
			HorizonSeconds: traceHorizon,
			DeadlineRatio:  2,
			Seed:           traceSeed,
		},
		WindowSeconds: 1800,
	}, func(ev *chronos.ReplayEvent) error {
		if ev.Kind == chronos.EventWindowSummary {
			w := ev.Window
			fmt.Printf("  t=%6.0fs  +%3d jobs  %3d/%3d done  running PoCD %.3f\n",
				w.End, w.Completed, w.Running.Jobs, w.Running.Submitted, w.Running.PoCD)
		}
		return nil
	})
}
