// trace_replay: a large-scale, trace-driven comparison over the streaming
// replay endpoint.
//
// This example mirrors the paper's Section VII-B evaluation — a
// Google-trace-like stream of MapReduce jobs replayed under every strategy —
// but instead of calling the in-process library it drives a live chronosd:
// it boots the daemon on a loopback port, asks POST /v1/replay to generate
// the trace server-side, and consumes the NDJSON event stream (job_planned,
// job_completed, window_summary, replay_summary) as the simulation runs.
//
// Run with:
//
//	go run ./examples/trace_replay
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"

	"chronos"
	"chronos/internal/server"
)

const (
	traceJobs    = 150
	traceHorizon = 2 * 3600
	traceSeed    = 7
)

func main() {
	// A live chronosd on a loopback port: the same daemon `cmd/chronosd`
	// runs in production.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	srv := server.New(server.Config{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	order := []chronos.Strategy{
		chronos.HadoopNS, chronos.HadoopS, chronos.LATE, chronos.Mantri,
		chronos.Clone, chronos.SpeculativeRestart, chronos.SpeculativeResume,
	}
	fmt.Printf("replaying a %d-job generated trace over POST %s/v1/replay\n\n", traceJobs, base)

	results := make(map[chronos.Strategy]*chronos.ReplaySummary)
	for _, s := range order {
		sum, err := replayOnce(base, s)
		if err != nil {
			log.Fatal(err)
		}
		results[s] = sum
	}

	fmt.Printf("\n%-22s %-8s %-12s %-8s\n", "strategy", "PoCD", "mean cost", "jobs")
	for _, s := range order {
		sum := results[s]
		fmt.Printf("%-22s %-8.3f %-12.1f %-8d\n", s, sum.PoCD, sum.MeanCost, sum.Jobs)
	}

	// The distribution of optimizer-chosen r for the work-preserving
	// strategy (the Figure 5 view), read off the final stream event.
	resume := results[chronos.SpeculativeResume]
	var rs []int
	for r := range resume.RHistogram {
		rs = append(rs, r)
	}
	sort.Ints(rs)
	fmt.Println("\nSpeculative-Resume optimal-r distribution:")
	for _, r := range rs {
		fmt.Printf("  r=%d: %d jobs\n", r, resume.RHistogram[r])
	}

	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

// replayOnce streams one strategy's replay and returns its final summary.
// The trace is generated server-side — nothing is uploaded but the config.
func replayOnce(base string, s chronos.Strategy) (*chronos.ReplaySummary, error) {
	req := map[string]any{
		"config": chronos.SimConfig{
			Strategy: s,
			Seed:     traceSeed, // common random numbers across strategies
			Econ:     chronos.Econ{Theta: 1e-4, UnitPrice: 1},
			// Ample capacity, as in the paper's trace-driven simulator.
			Nodes:        2048,
			SlotsPerNode: 8,
		},
		"trace": map[string]any{
			"jobs":           traceJobs,
			"horizonSeconds": traceHorizon,
			"deadlineRatio":  2,
			"seed":           traceSeed,
		},
		"windowSeconds": 1800,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/replay", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replay %v: HTTP %s", s, resp.Status)
	}

	fmt.Printf("%v:\n", s)
	var summary *chronos.ReplaySummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev chronos.ReplayEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, err
		}
		switch ev.Kind {
		case chronos.EventWindowSummary:
			w := ev.Window
			fmt.Printf("  t=%6.0fs  +%3d jobs  %3d/%3d done  running PoCD %.3f\n",
				w.End, w.Completed, w.Running.Jobs, w.Running.Submitted, w.Running.PoCD)
		case chronos.EventReplaySummary:
			summary = ev.Summary
		case chronos.EventError:
			return nil, fmt.Errorf("replay %v: %s", s, ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if summary == nil {
		return nil, fmt.Errorf("replay %v: stream ended without a summary", s)
	}
	return summary, nil
}
