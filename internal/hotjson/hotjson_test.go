package hotjson

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"chronos"
)

func mustPlan(t *testing.T) chronos.Plan {
	t.Helper()
	return chronos.Plan{
		Strategy:    chronos.SpeculativeResume,
		R:           2,
		PoCD:        0.999999,
		MachineTime: 1234.5678,
		Cost:        123.45678,
		Utility:     0.87654321,
	}
}

func TestAppendPlanResponseMatchesEncodingJSON(t *testing.T) {
	rem := 42.5
	cases := []PlanResponse{
		{Plan: mustPlan(t), Cached: true},
		{Plan: mustPlan(t), Cached: false, BudgetRemaining: &rem},
		{Plan: chronos.Plan{Strategy: chronos.Clone, PoCD: 1e-9, MachineTime: 1e21, Cost: 6.123e-9, Utility: -0.5}},
	}
	for _, c := range cases {
		want, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendPlanResponse(nil, &c)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("mismatch:\nwant %s\ngot  %s", want, got)
		}
	}
}

func TestAppendAdmitResponseMatchesEncodingJSON(t *testing.T) {
	plan := mustPlan(t)
	cases := []AdmitResponse{
		{Admitted: true, Tenant: "analytics", Plan: &plan, BudgetRemaining: 57.25},
		{Admitted: false, Tenant: "t<e>n&ant", Reason: "budget_exhausted", BudgetRemaining: 0},
	}
	for _, c := range cases {
		want, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendAdmitResponse(nil, &c)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("mismatch:\nwant %s\ngot  %s", want, got)
		}
	}
}

func TestAppendPlanInvalidStrategyErrors(t *testing.T) {
	p := chronos.Plan{Strategy: 0}
	if _, err := json.Marshal(&p); err == nil {
		t.Fatal("encoding/json unexpectedly marshaled invalid strategy")
	}
	if _, err := AppendPlan(nil, &p); err == nil {
		t.Fatal("AppendPlan accepted invalid strategy")
	}
	resp := PlanResponse{Plan: p}
	if _, err := AppendPlanResponse(nil, &resp); err == nil {
		t.Fatal("AppendPlanResponse accepted invalid strategy")
	}
}

func TestAppendReplayEventMatchesEncodingJSON(t *testing.T) {
	r := 3
	pocd := 0.75
	rem := 0.0
	cases := []chronos.ReplayEvent{
		{Kind: "job_planned", Seq: 1, Time: 0.5, Job: &chronos.ReplayJobEvent{ID: 7, Strategy: "Clone", Tasks: 10, Arrival: 0.5, Deadline: 300, R: &r}, TraceID: "abc"},
		{Kind: "job_completed", Seq: 2, Time: 310, Outcome: &chronos.ReplayOutcome{Finish: 290, MetDeadline: true, MachineTime: 123, Cost: 12.3}, PoCD: &pocd},
		{Kind: "window_summary", Seq: 3, Time: 600, Window: &chronos.ReplayWindow{Index: 1, Start: 0, End: 600, Completed: 4, Running: chronos.ReplaySummary{Jobs: 4, Submitted: 6, Met: 3, PoCD: 0.75, MeanMachineTime: 100, MeanCost: 10}}},
		{Kind: "replay_summary", Seq: 9, Time: 9000, Summary: &chronos.ReplaySummary{Jobs: 10, Met: 9, PoCD: 0.9, RHistogram: map[int]int{2: 7, 10: 3, -1: 1, 100: 4}}},
		{Kind: "budget_exhausted", Seq: 4, Time: 12, Tenant: "t", Needed: 3.5, Remaining: &rem, Error: "boom"},
	}
	for _, ev := range cases {
		want, err := json.Marshal(&ev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendReplayEvent(nil, &ev)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("mismatch for %s:\nwant %s\ngot  %s", ev.Kind, want, got)
		}
	}
}

func TestDecodePlanRequestSemantics(t *testing.T) {
	body := `{"unknown":{"nested":[1,"two",{"three":3}]},"JOB":{"tasks":5,"DEADLINE":250,"tmin":50,"beta":1.5,"tauEst":60,"tauKill":5,"phiEst":0.4},"econ":{"theta":0.001,"unitPrice":2,"rmin":0.5},"strategy":"clone","tenant":"acme","strategy":"best"}`
	var want, got PlanRequest
	if err := json.Unmarshal([]byte(body), &want); err != nil {
		t.Fatal(err)
	}
	if err := DecodePlanRequest([]byte(body), &got, nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	if got.Strategy != "best" {
		t.Fatalf("duplicate key should take the last value, got %q", got.Strategy)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	bad := []string{
		``, `{`, `{"job":}`, `[1,2]`, `"s"`, `12`, `true`,
		`{"job":{"tasks":01}}`, `{"job":{"deadline":1.}}`, `{"job":{"deadline":+1}}`,
		`{"job":{}}x`, `{"job":{},}`, `{"strategy":"a` + "\x01" + `"}`,
		`{"job":{"deadline":1e999}}`, `{"job":{"tasks":1.5}}`,
		strings.Repeat("[", 10001),
	}
	for _, body := range bad {
		var ref PlanRequest
		if err := json.Unmarshal([]byte(body), &ref); err == nil {
			t.Fatalf("encoding/json accepted %q — test expectation wrong", body)
		}
		var v PlanRequest
		if err := DecodePlanRequest([]byte(body), &v, nil); err == nil {
			t.Fatalf("DecodePlanRequest accepted malformed %q", body)
		}
	}
}

// TestDecodeZeroAlloc locks in the reason this package exists: decoding the
// hot request shapes allocates nothing (tenants resolve through the
// Interner, strategies through the built-in vocabulary).
func TestDecodeZeroAlloc(t *testing.T) {
	planBody := []byte(`{"job":{"tasks":10,"deadline":100,"tmin":10,"beta":1.5,"tauEst":12,"tauKill":2},"econ":{"theta":0.0001,"unitPrice":1},"strategy":"clone"}`)
	var pr PlanRequest
	if avg := testing.AllocsPerRun(200, func() {
		pr = PlanRequest{}
		if err := DecodePlanRequest(planBody, &pr, nil); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("DecodePlanRequest allocates %.1f times per op", avg)
	}
	admitBody := []byte(`{"tenant":"analytics","job":{"tasks":20,"deadline":300,"tmin":60,"beta":1.2},"strategy":"resume","econ":{"theta":0.001}}`)
	var ar AdmitRequest
	in := testInterner{}
	if avg := testing.AllocsPerRun(200, func() {
		ar = AdmitRequest{}
		if err := DecodeAdmitRequest(admitBody, &ar, in); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("DecodeAdmitRequest allocates %.1f times per op", avg)
	}
	if ar.Tenant != "analytics" || pr.Strategy != "clone" {
		t.Fatal("decoded values lost")
	}
}

// TestEncodeZeroAlloc: encoding hot responses into a reused buffer
// allocates nothing.
func TestEncodeZeroAlloc(t *testing.T) {
	plan := mustPlan(t)
	rem := 12.5
	resp := PlanResponse{Plan: plan, Cached: true, BudgetRemaining: &rem}
	admit := AdmitResponse{Admitted: true, Tenant: "analytics", Plan: &plan, BudgetRemaining: 90}
	buf := make([]byte, 0, 1024)
	if avg := testing.AllocsPerRun(200, func() {
		var err error
		if buf, err = AppendPlanResponse(buf[:0], &resp); err != nil {
			t.Fatal(err)
		}
		if buf, err = AppendAdmitResponse(buf[:0], &admit); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("hot response encode allocates %.1f times per op", avg)
	}
}
