package optimize

import (
	"fmt"
	"math"

	"chronos/internal/analysis"
)

// cappedScanMargin extends the feasibility scan past the unconstrained
// optimum. Expected machine time is monotone in r for Clone but can dip for
// the reactive strategies (straggler truncation), so an affordable plan may
// sit slightly above the unconstrained argmax; PoCD saturates geometrically,
// so a bounded margin covers every non-degenerate dip.
const cappedScanMargin = 64

// cappedScanCap bounds the scan width above the feasibility frontier
// against degenerate inputs whose unconstrained optimum lands near
// rSafetyCap. Machine time grows with r past the frontier in every
// non-degenerate model, so affordable plans concentrate at the window's
// low end.
const cappedScanCap = 4096

// SolveCapped maximizes U(r) subject to an expected-machine-time budget:
//
//	maximize   U(r) = log10(R(r) - Rmin) - theta*C*E[T](r)
//	subject to E[T](r) <= budget,  r >= 0 integer.
//
// This is the admission-control form of Algorithm 1: an online scheduler
// holds a finite machine-time ledger per tenant, and an arriving job may
// only be admitted with a plan it can pay for. When even the unconstrained
// optimum fits the budget it is returned unchanged; otherwise the integers
// around and below it are scanned for the best affordable plan.
//
// Errors distinguish the two rejection reasons an admission controller
// reports upstream: ErrInfeasible when no r reaches PoCD > RMin regardless
// of budget, and ErrBudgetTooSmall when feasible plans exist but none is
// affordable.
func SolveCapped(m analysis.Model, cfg Config, budget float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.Params().Validate(); err != nil {
		return Result{}, err
	}
	mm, pooled := acquire(m)
	if pooled {
		defer mm.release()
	}
	return solveCappedMemoized(mm, cfg, budget)
}

// SolveCappedStrategy is SolveCapped for a (strategy, params) pair through a
// pooled recurrence kernel, the allocation-free form the server's admission
// path uses.
func SolveCappedStrategy(s analysis.Strategy, p analysis.Params, cfg Config, budget float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	mm := acquireStrategy(s, p)
	defer mm.release()
	return solveCappedMemoized(mm, cfg, budget)
}

// solveCappedMemoized is SolveCapped after validation and memoization.
func solveCappedMemoized(m *memoModel, cfg Config, budget float64) (Result, error) {
	if math.IsNaN(budget) {
		return Result{}, fmt.Errorf("optimize: budget is NaN")
	}
	un, err := solveMemoized(m, cfg)
	if err != nil {
		return Result{}, err // ErrInfeasible: no budget can fix it
	}
	if un.MachineTime <= budget {
		return un, nil
	}

	// The unconstrained optimum is unaffordable; scan for the best feasible
	// plan. PoCD is nondecreasing in r, so the feasible region (PoCD >
	// RMin) is [rFeas, inf): bisect its frontier — un.R is known feasible —
	// and anchor the scan there, so a wide infeasible prefix (large Gamma)
	// cannot push the cheapest feasible plans past the scan cap.
	// Memoization makes the revisited r values slice hits.
	rFeas, hi := cappedScanWindow(m, cfg, un.R)
	best := Result{R: -1, Utility: math.Inf(-1)}
	cheapest := math.Inf(1)
	for r := rFeas; r <= hi; r++ {
		_, mt, u := m.scanProbe(cfg, r)
		if !math.IsInf(u, -1) && mt < cheapest {
			cheapest = mt
		}
		if mt > budget {
			continue
		}
		if u > best.Utility {
			best = Result{
				Strategy:    m.Name(),
				R:           r,
				Utility:     u,
				PoCD:        m.PoCD(r),
				MachineTime: mt,
				Cost:        cfg.UnitPrice * mt,
			}
		}
	}
	if best.R < 0 || math.IsInf(best.Utility, -1) {
		return Result{}, fmt.Errorf("%w: need %v, have %v", ErrBudgetTooSmall, cheapest, budget)
	}
	return best, nil
}

// cappedScanWindow derives the [rFeas, hi] scan range shared by SolveCapped
// and Frontier construction: bisect the feasibility frontier anchored at the
// known-feasible unconstrained optimum unR, then cap the width.
func cappedScanWindow(m *memoModel, cfg Config, unR int) (rFeas, hi int) {
	if math.IsInf(cfg.Utility(m, 0), -1) {
		lo, hiF := 0, unR // invariant: lo infeasible, hiF feasible
		for hiF-lo > 1 {
			mid := lo + (hiF-lo)/2
			if math.IsInf(cfg.Utility(m, mid), -1) {
				lo = mid
			} else {
				hiF = mid
			}
		}
		rFeas = hiF
	}
	hi = unR + cappedScanMargin
	if hi > rFeas+cappedScanCap {
		hi = rFeas + cappedScanCap
	}
	return rFeas, hi
}
