package server

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"chronos"
	"chronos/internal/hotjson"
	"chronos/internal/obs"
	"chronos/internal/tenant"
)

// replayRequest asks for a streaming trace replay. The job stream comes from
// exactly one of Jobs (an uploaded trace), Trace (a server-side synthetic
// Google-like trace), or Benchmark (a stream of one of the paper's testbed
// workloads), so long online-setting studies need not upload anything.
type replayRequest struct {
	// Config shapes the simulation (strategy, cluster, seed, ...); the same
	// shape POST /v1/simulate takes.
	Config chronos.SimConfig `json:"config"`
	// Jobs is an explicit uploaded trace.
	Jobs []chronos.SimJob `json:"jobs,omitempty"`
	// Trace generates a synthetic Google-like stream server-side.
	Trace *replayTraceSpec `json:"trace,omitempty"`
	// Benchmark generates a stream of identical jobs from one of the
	// paper's four testbed workloads.
	Benchmark *replayBenchSpec `json:"benchmark,omitempty"`
	// Tenant optionally routes the replay through a budget pool: each
	// completed job's machine time is debited from the ledger, and the
	// stream ends with a budget_exhausted event when the pool drains.
	Tenant string `json:"tenant,omitempty"`
	// WindowSeconds is the sim-time width of window_summary events; zero
	// disables them.
	WindowSeconds float64 `json:"windowSeconds,omitempty"`
}

// replayTraceSpec mirrors chronos.TraceConfig on the wire.
type replayTraceSpec struct {
	Jobs           int     `json:"jobs"`
	HorizonSeconds float64 `json:"horizonSeconds,omitempty"`
	DeadlineRatio  float64 `json:"deadlineRatio,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
}

// replayBenchSpec expands one named benchmark into a uniform job stream.
type replayBenchSpec struct {
	// Name is one of the paper's workloads (Sort, SecondarySort, TeraSort,
	// WordCount), case-insensitive.
	Name string `json:"name"`
	// Jobs and Tasks size the stream; SpacingSeconds separates arrivals.
	Jobs           int     `json:"jobs"`
	Tasks          int     `json:"tasks"`
	SpacingSeconds float64 `json:"spacingSeconds,omitempty"`
}

// replayMaxArrival bounds arrivals for /v1/replay. Streaming runs exist for
// long-horizon studies, so this is far looser than the /v1/simulate cap.
const replayMaxArrival = 1e8

// replayMinWindow is the smallest accepted windowSeconds (0 still disables
// windows). Sub-second windows over HTTP are pure event spam and a
// degenerate width must not be able to grind the boundary arithmetic.
const replayMinWindow = 1.0

// errReplayBudget aborts a tenant-routed replay whose pool drained; the
// budget_exhausted event has already been streamed when it is raised.
var errReplayBudget = errors.New("replay tenant budget exhausted")

// handleReplay serves POST /v1/replay: an NDJSON stream of replay events
// (job_planned, job_completed, window_summary, replay_summary — see the
// internal/replay catalog), flushed as they happen. The request context is
// checked between simulation events, so a disconnected client stops the
// replay promptly instead of leaving it running to completion.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req replayRequest
	if !s.decode(w, r, &req) {
		return
	}
	jobs, msg := s.resolveReplayJobs(req)
	if msg == "" {
		msg = validateReplayBounds(s.cfg, req, jobs)
	}
	if msg != "" {
		s.apiError(w, r, http.StatusBadRequest, "%s", msg)
		return
	}
	tr := obs.FromContext(r.Context())
	var pool *tenant.Pool
	if req.Tenant != "" {
		tr.SetTenant(req.Tenant)
		var ok bool
		if pool, ok = s.lookupPool(w, r, req.Tenant); !ok {
			return
		}
	}

	// Replays are whole-simulation CPU commitments; bound how many run at
	// once the same way the worker pool bounds optimizations, instead of
	// letting a burst of streams starve the cheap planning endpoints.
	select {
	case s.replaySem <- struct{}{}:
		defer func() { <-s.replaySem }()
	default:
		w.Header().Set("Retry-After", "1")
		s.apiError(w, r, http.StatusServiceUnavailable,
			"%d replays already running, limit %d", len(s.replaySem), cap(s.replaySem))
		return
	}

	// The response header is written lazily at the first event, so setup
	// failures (bad distribution parameters, unknown strategy) still get a
	// clean 400 instead of a broken 200 stream.
	stream := &ndjsonStream{
		w:  w,
		rc: http.NewResponseController(w),
		m:  s.metrics,
		tr: tr,
	}
	finish := s.metrics.replayStarted()
	defer finish()

	obs := chronos.ReplayObserverFunc(stream.write)
	if pool != nil {
		obs = s.debitingObserver(stream, s.tenantBudget(r.Context(), req.Tenant, pool), req.Tenant)
	}
	// The replay engine's memory tracks in-flight tasks; cap them with the
	// same ceiling /v1/simulate puts on a whole run, so a trace whose jobs
	// all arrive at once cannot materialize wholesale.
	_, err := chronos.Replay(r.Context(), req.Config, jobs, chronos.ReplayOptions{
		WindowSeconds: req.WindowSeconds,
		MaxOpenTasks:  s.cfg.MaxSimTotalTasks,
		Observer:      obs,
	})
	switch {
	case err == nil || errors.Is(err, errReplayBudget):
		// Complete stream, or a ledger stop already reported in-band.
	case !stream.started:
		// Nothing streamed yet: report as a plain HTTP error.
		s.apiError(w, r, http.StatusBadRequest, "%v", err)
	case r.Context().Err() != nil:
		// Client is gone; there is no one left to tell.
	default:
		// Mid-stream failure after a 200: report in-band and end.
		_ = stream.write(&chronos.ReplayEvent{
			Kind: chronos.EventError, Seq: stream.lastSeq + 1, Error: err.Error(),
		})
	}
}

// resolveReplayJobs materializes the job stream from whichever source the
// request names. A non-empty message is a 400.
func (s *Server) resolveReplayJobs(req replayRequest) ([]chronos.SimJob, string) {
	sources := 0
	for _, set := range []bool{len(req.Jobs) > 0, req.Trace != nil, req.Benchmark != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, "exactly one of jobs, trace, or benchmark must be given"
	}
	switch {
	case req.Trace != nil:
		t := req.Trace
		if t.Jobs < 1 || t.Jobs > s.cfg.MaxReplayJobs {
			return nil, fmt.Sprintf("trace.jobs must be in [1, %d]", s.cfg.MaxReplayJobs)
		}
		jobs, err := chronos.SyntheticTrace(chronos.TraceConfig{
			Jobs:           t.Jobs,
			HorizonSeconds: t.HorizonSeconds,
			DeadlineRatio:  t.DeadlineRatio,
			Seed:           t.Seed,
		})
		if err != nil {
			return nil, err.Error()
		}
		return jobs, ""
	case req.Benchmark != nil:
		b := req.Benchmark
		if b.Jobs < 1 || b.Jobs > s.cfg.MaxReplayJobs {
			return nil, fmt.Sprintf("benchmark.jobs must be in [1, %d]", s.cfg.MaxReplayJobs)
		}
		if b.Tasks < 1 {
			return nil, "benchmark.tasks must be >= 1"
		}
		if b.SpacingSeconds < 0 {
			return nil, "benchmark.spacingSeconds must be >= 0"
		}
		for _, bench := range chronos.Benchmarks() {
			if strings.EqualFold(bench.Name, b.Name) {
				return bench.Jobs(b.Jobs, b.Tasks, b.SpacingSeconds), ""
			}
		}
		return nil, fmt.Sprintf("unknown benchmark %q", b.Name)
	default:
		if len(req.Jobs) > s.cfg.MaxReplayJobs {
			return nil, fmt.Sprintf("replay has %d jobs, limit %d", len(req.Jobs), s.cfg.MaxReplayJobs)
		}
		return req.Jobs, ""
	}
}

// validateReplayBounds applies the serving sanity caps to a resolved stream.
// Unlike /v1/simulate there is no total-task ceiling: the streaming engine's
// memory is bounded by in-flight jobs, and wall-clock commitment is bounded
// by disconnect cancellation.
func validateReplayBounds(cfg Config, req replayRequest, jobs []chronos.SimJob) string {
	if req.WindowSeconds != 0 && !(req.WindowSeconds >= replayMinWindow) {
		return fmt.Sprintf("windowSeconds must be 0 (disabled) or >= %g", replayMinWindow)
	}
	if msg := validateSimConfigBounds(req.Config); msg != "" {
		return msg
	}
	return validateSimJobs(cfg, jobs, replayMaxArrival, 0)
}

// --- NDJSON plumbing ------------------------------------------------------

// ndjsonStream writes one JSON event per line, flushing each so consumers
// see events as they happen. The 200 header goes out with the first event.
// Each write's encode+write+flush accumulates into the request trace's
// replay_emit span, and the final replay_summary is stamped with the trace
// ID so the streamed result correlates with the server-side logs.
type ndjsonStream struct {
	w       http.ResponseWriter
	rc      *http.ResponseController
	m       *serverMetrics
	tr      *obs.Trace
	started bool
	lastSeq uint64
	// buf is the stream's reusable encode buffer: each event is encoded by
	// the reflection-free hotjson codec into the previous event's capacity,
	// so a million-event replay performs no per-event allocation.
	buf []byte
}

func (st *ndjsonStream) write(ev *chronos.ReplayEvent) error {
	emitStart := time.Now()
	defer func() { st.tr.Observe(obs.StageReplayEmit, time.Since(emitStart)) }()
	if ev.Kind == chronos.EventReplaySummary && st.tr != nil {
		ev.TraceID = st.tr.ID
	}
	st.lastSeq = ev.Seq
	if !st.started {
		st.started = true
		h := st.w.Header()
		h.Set("Content-Type", "application/x-ndjson")
		h.Set("Cache-Control", "no-store")
		// Replays legitimately outlive the server-wide write timeout;
		// disconnects are caught via the request context instead.
		_ = st.rc.SetWriteDeadline(time.Time{})
		st.w.WriteHeader(http.StatusOK)
	}
	line, err := hotjson.AppendReplayEvent(st.buf[:0], ev)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	st.buf = line
	if _, err := st.w.Write(line); err != nil {
		return err
	}
	st.m.replayEmit(ev.Kind == chronos.EventJobCompleted)
	// Flush errors surface on the next Write; ErrNotSupported just means a
	// buffering middleware will batch the stream.
	_ = st.rc.Flush()
	return nil
}

// debitingObserver wraps the stream with per-job tenant accounting: every
// settled job's machine time is debited from the tenant's budget (the raw
// pool, or the escrow-aware budget when fleet-exact accounting is on), and a
// failed debit emits a budget_exhausted event and stops the replay.
func (s *Server) debitingObserver(st *ndjsonStream, bud budgeter, name string) chronos.ReplayObserverFunc {
	return func(ev *chronos.ReplayEvent) error {
		if err := st.write(ev); err != nil {
			return err
		}
		if ev.Kind != chronos.EventJobCompleted || ev.Outcome == nil {
			return nil
		}
		ok, rem := bud.TryDebit(ev.Outcome.MachineTime)
		if ok {
			return nil
		}
		s.metrics.tenantReject(name, ReasonBudgetExhausted)
		_ = st.write(&chronos.ReplayEvent{
			Kind:      chronos.EventBudgetExhausted,
			Seq:       st.lastSeq + 1,
			Time:      ev.Time,
			Tenant:    name,
			Needed:    ev.Outcome.MachineTime,
			Remaining: &rem,
		})
		return errReplayBudget
	}
}
