// Command chronos-bench regenerates the tables and figures of the paper's
// evaluation section from the simulation substrate.
//
// Usage:
//
//	chronos-bench [-exp all|fig2|table1|table2|fig3|fig4|fig5] [-jobs N] [-seed S]
//
// -jobs scales the trace-driven experiments (the paper's full run uses 2700
// jobs; the default here is a faster 270).
package main

import (
	"flag"
	"fmt"
	"os"

	"chronos/internal/experiment"
	"chronos/internal/metrics"
	"chronos/internal/trace"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment to run: all, fig2, table1, table2, fig3, fig4, fig5, failures")
		jobs = flag.Int("jobs", 270, "number of trace jobs for the trace-driven experiments")
		seed = flag.Uint64("seed", 1, "root random seed")
	)
	flag.Parse()
	if err := run(*exp, *jobs, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "chronos-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, jobs int, seed uint64) error {
	runner := experiment.DefaultRunner()
	runner.Seed = seed
	// The CLI runs the full-size trace (jobs up to 2000 tasks); keep
	// capacity ample as in the paper's trace-driven simulator, so results
	// reflect scheduling policy rather than queueing collapse.
	runner.Nodes = 2048

	traceCfg := trace.DefaultGeneratorConfig()
	traceCfg.Jobs = jobs
	traceCfg.Seed = seed

	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("fig2") {
		ran = true
		rows, err := experiment.RunFigure2(runner, experiment.DefaultFig2Config())
		if err != nil {
			return err
		}
		fmt.Println("=== Figure 2: PoCD / Cost / Utility per benchmark ===")
		fmt.Println(experiment.Fig2Table(rows))
		// Figure 2(a) as bars, one chart per benchmark.
		byBench := map[string]*metrics.BarChart{}
		var order []string
		for _, row := range rows {
			c, ok := byBench[row.Benchmark]
			if !ok {
				c = metrics.NewBarChart("PoCD — " + row.Benchmark)
				byBench[row.Benchmark] = c
				order = append(order, row.Benchmark)
			}
			c.Add(row.Strategy, row.PoCD)
		}
		for _, name := range order {
			fmt.Println(byBench[name])
		}
	}
	if want("table1") {
		ran = true
		cfg := experiment.DefaultTableConfig()
		cfg.Trace = traceCfg
		tr := runner
		tr.ReportInterval, tr.ReportNoise = 2, 0.1 // Hadoop-style observation
		rows, err := experiment.RunTable1(tr, cfg)
		if err != nil {
			return err
		}
		fmt.Println("=== Table I: varying tauEst (tauKill - tauEst = 0.5*tmin) ===")
		fmt.Println(experiment.TableText(rows))
	}
	if want("table2") {
		ran = true
		cfg := experiment.DefaultTableConfig()
		cfg.Trace = traceCfg
		tr := runner
		tr.ReportInterval, tr.ReportNoise = 2, 0.1
		rows, err := experiment.RunTable2(tr, cfg)
		if err != nil {
			return err
		}
		fmt.Println("=== Table II: varying tauKill (fixed tauEst) ===")
		fmt.Println(experiment.TableText(rows))
	}
	if want("fig3") {
		ran = true
		cfg := experiment.DefaultFig3Config()
		cfg.Trace = traceCfg
		rows, err := experiment.RunFigure3(runner, cfg)
		if err != nil {
			return err
		}
		fmt.Println("=== Figure 3: PoCD / Cost / Utility vs theta ===")
		fmt.Println(experiment.Fig3Table(rows))
		// Cost-vs-theta profile per strategy (Figure 3(b) at a glance).
		costs := map[string][]float64{}
		var names []string
		for _, row := range rows {
			if _, ok := costs[row.Strategy]; !ok {
				names = append(names, row.Strategy)
			}
			costs[row.Strategy] = append(costs[row.Strategy], row.Cost)
		}
		fmt.Println("cost vs theta (left to right = growing theta):")
		for _, name := range names {
			fmt.Printf("  %-22s %s\n", name, metrics.Sparkline(costs[name]))
		}
		fmt.Println()
	}
	if want("fig4") {
		ran = true
		rows, err := experiment.RunFigure4(runner, experiment.DefaultFig4Config())
		if err != nil {
			return err
		}
		fmt.Println("=== Figure 4: PoCD / Cost / Utility vs beta ===")
		fmt.Println(experiment.Fig4Table(rows))
	}
	if want("fig5") {
		ran = true
		cfg := experiment.DefaultFig5Config()
		cfg.Fig3.Trace = traceCfg
		series, err := experiment.RunFigure5(runner, cfg)
		if err != nil {
			return err
		}
		fmt.Println("=== Figure 5: histogram of the optimal r ===")
		fmt.Println(experiment.Fig5Table(series))
	}
	if want("failures") {
		ran = true
		r := runner
		r.Nodes = 32 // small cluster so failures actually bite
		rows, err := experiment.RunFailures(r, experiment.DefaultFailureConfig())
		if err != nil {
			return err
		}
		fmt.Println("=== Extension: node-failure resilience ===")
		fmt.Println(experiment.FailureTable(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
