package optimize

import (
	"errors"
	"math"
	"testing"

	"chronos/internal/analysis"
	"chronos/internal/pareto"
)

func batchJob(n int, deadline float64, s analysis.Strategy) BatchJob {
	return BatchJob{
		Model: analysis.NewModel(s, analysis.Params{
			N:        n,
			Deadline: deadline,
			Task:     pareto.MustNew(10, 1.5),
			TauEst:   0.2 * deadline,
			TauKill:  0.4 * deadline,
		}),
	}
}

func TestBatchSolveRespectsBudget(t *testing.T) {
	jobs := []BatchJob{
		batchJob(10, 100, analysis.StrategyClone),
		batchJob(20, 80, analysis.StrategyResume),
		batchJob(5, 150, analysis.StrategyRestart),
	}
	var base float64
	for _, j := range jobs {
		base += j.Model.MachineTime(0)
	}
	budget := base * 1.5
	results, err := BatchSolve(jobs, budget)
	if err != nil {
		t.Fatal(err)
	}
	var spent float64
	for i, r := range results {
		if r.R < 0 {
			t.Errorf("job %d got r=%d", i, r.R)
		}
		spent += r.MachineTime
	}
	if spent > budget+1e-6 {
		t.Errorf("allocation spends %v over budget %v", spent, budget)
	}
	// Some budget must actually be used for speculation.
	allocated := 0
	for _, r := range results {
		allocated += r.R
	}
	if allocated == 0 {
		t.Error("no speculation allocated despite 50% headroom")
	}
}

func TestBatchSolveErrors(t *testing.T) {
	if _, err := BatchSolve(nil, 100); err == nil {
		t.Error("empty batch accepted")
	}
	jobs := []BatchJob{batchJob(10, 100, analysis.StrategyClone)}
	if _, err := BatchSolve(jobs, 1); !errors.Is(err, ErrBudgetTooSmall) {
		t.Errorf("tiny budget err = %v, want ErrBudgetTooSmall", err)
	}
	bad := []BatchJob{{Model: analysis.NewModel(analysis.StrategyClone, analysis.Params{})}}
	if _, err := BatchSolve(bad, 100); err == nil {
		t.Error("invalid job params accepted")
	}
}

func TestBatchSolvePrioritizesTightJobs(t *testing.T) {
	// A deadline-critical job and a slack one: with limited budget the
	// critical job must receive at least as many extra attempts.
	tight := batchJob(10, 40, analysis.StrategyClone)
	slack := batchJob(10, 4000, analysis.StrategyClone)
	base := tight.Model.MachineTime(0) + slack.Model.MachineTime(0)
	results, err := BatchSolve([]BatchJob{tight, slack}, base*1.2)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].R < results[1].R {
		t.Errorf("tight job got r=%d, slack job r=%d", results[0].R, results[1].R)
	}
}

// TestBatchSolveNearBruteForce compares the greedy allocation against
// exhaustive search on a small two-job instance over a grid of budgets.
func TestBatchSolveNearBruteForce(t *testing.T) {
	jobs := []BatchJob{
		batchJob(10, 100, analysis.StrategyClone),
		batchJob(15, 90, analysis.StrategyClone),
	}
	base := jobs[0].Model.MachineTime(0) + jobs[1].Model.MachineTime(0)
	for _, factor := range []float64{1.1, 1.5, 2, 3} {
		budget := base * factor
		got, err := BatchSolve(jobs, budget)
		if err != nil {
			t.Fatal(err)
		}
		gotU := BatchUtility(got)

		// Brute force over r pairs.
		bestU := math.Inf(-1)
		for r0 := 0; r0 <= 12; r0++ {
			for r1 := 0; r1 <= 12; r1++ {
				cost := jobs[0].Model.MachineTime(r0) + jobs[1].Model.MachineTime(r1)
				if cost > budget {
					continue
				}
				u := math.Log10(jobs[0].Model.PoCD(r0)) + math.Log10(jobs[1].Model.PoCD(r1))
				if u > bestU {
					bestU = u
				}
			}
		}
		// Greedy on (possibly non-concave below Gamma) instances: within a
		// small optimality gap.
		if gotU < bestU-0.02 {
			t.Errorf("budget %.0f: greedy utility %v, brute force %v", budget, gotU, bestU)
		}
	}
}

func TestBatchSolveInfeasibleRMin(t *testing.T) {
	j := batchJob(10, 100, analysis.StrategyClone)
	j.RMin = 0.999999999 // essentially unreachable
	results, err := BatchSolve([]BatchJob{j}, j.Model.MachineTime(0)*10)
	if err != nil {
		t.Fatal(err)
	}
	// The job stays infeasible; its utility is -Inf but the solver
	// terminates.
	if !math.IsInf(results[0].Utility, -1) && results[0].PoCD <= j.RMin {
		t.Errorf("utility %v with PoCD %v <= RMin", results[0].Utility, results[0].PoCD)
	}
}

func TestBatchUtility(t *testing.T) {
	rs := []BatchResult{{Utility: -1}, {Utility: -0.5}}
	if got := BatchUtility(rs); got != -1.5 {
		t.Errorf("BatchUtility = %v, want -1.5", got)
	}
}
