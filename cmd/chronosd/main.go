// Command chronosd runs the online speculation-planning service: an HTTP
// JSON API over the Chronos PoCD/cost optimization, with a sharded plan
// cache, a bounded optimization worker pool, multi-tenant budget pools,
// Prometheus metrics, and graceful shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	chronosd [-addr :8080] [-cache-capacity 4096] [-cache-shards 16]
//	         [-workers N] [-max-body 1048576] [-shutdown-grace 10s]
//	         [-tenants tenants.json]
//	         [-self http://host:port -peers url1,url2,... | -ring ring.json]
//
// Endpoints:
//
//	POST /v1/plan        optimal plan for one job (cached hot path)
//	POST /v1/plan/batch  shared-budget allocation across a job batch
//	POST /v1/admit       online admission control against a tenant budget pool
//	GET  /v1/tradeoff    PoCD/cost frontier for one strategy
//	POST /v1/simulate    bounded discrete-event what-if run (one JSON report)
//	POST /v1/replay      streaming trace replay: NDJSON per-job events, with
//	                     optional server-side trace generation and tenant
//	                     budget debiting
//	GET  /metrics        Prometheus text metrics
//	GET  /healthz        liveness probe
//
// With -self/-peers (or a -ring membership file), the replica joins a
// consistent-hash ring over the fleet: /v1/plan and /v1/admit requests whose
// plan key another replica owns are proxied there, so the fleet's LRU caches
// partition the keyspace instead of overlapping. An unreachable owner
// degrades to local computation (per-peer circuit breaking), never to a
// failed request.
//
// SIGHUP re-reads the -tenants and -ring config files: tenant reloads carry
// live ledger levels over for pools whose budget shape is unchanged and
// flush the plan cache; ring reloads swap the membership atomically. A
// failed reload keeps the previous configuration.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chronos/internal/ring"
	"chronos/internal/server"
	"chronos/internal/tenant"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cacheCapacity = flag.Int("cache-capacity", 4096, "total cached plans across shards (negative disables)")
		cacheShards   = flag.Int("cache-shards", 16, "plan cache shard count (rounded up to a power of two)")
		workers       = flag.Int("workers", 0, "max concurrent optimizations (0 = GOMAXPROCS)")
		maxBody       = flag.Int64("max-body", 1<<20, "request body limit in bytes")
		maxBatch      = flag.Int("max-batch-jobs", 1024, "jobs accepted per /v1/plan/batch call")
		maxSimJobs    = flag.Int("max-sim-jobs", 500, "jobs accepted per /v1/simulate call")
		maxSimTasks   = flag.Int("max-sim-tasks", 5000, "tasks per simulated job")
		maxSimTotal   = flag.Int("max-sim-total-tasks", 50000, "total tasks per /v1/simulate call")
		maxReplay     = flag.Int("max-replay-jobs", 100000, "jobs per /v1/replay stream")
		maxActive     = flag.Int("max-active-replays", 4, "concurrently running /v1/replay streams")
		readTimeout   = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout  = flag.Duration("write-timeout", 60*time.Second, "HTTP write timeout")
		grace         = flag.Duration("shutdown-grace", 10*time.Second, "graceful drain budget on shutdown")
		tenantsPath   = flag.String("tenants", "", "tenant budget-pool config file (JSON); SIGHUP reloads it")
		self          = flag.String("self", "", "this replica's base URL in the consistent-hash ring")
		peers         = flag.String("peers", "", "comma-separated fleet base URLs (ring membership)")
		ringPath      = flag.String("ring", "", "ring membership file (JSON {self, peers}); SIGHUP reloads it")
		forwardTO     = flag.Duration("forward-timeout", 2*time.Second, "cross-replica forward timeout before local fallback")
	)
	flag.Parse()

	var tenants *tenant.Registry
	if *tenantsPath != "" {
		var err error
		tenants, err = tenant.LoadFile(*tenantsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chronosd:", err)
			os.Exit(1)
		}
		log.Printf("chronosd loaded %d tenant pool(s) from %s", tenants.Len(), *tenantsPath)
	}

	membership := ring.Membership{Self: *self, Peers: ring.ParsePeers(*peers)}
	if *ringPath != "" {
		if membership.Enabled() {
			fmt.Fprintln(os.Stderr, "chronosd: -ring is mutually exclusive with -self/-peers")
			os.Exit(1)
		}
		var err error
		membership, err = ring.LoadFile(*ringPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chronosd:", err)
			os.Exit(1)
		}
	}
	if err := membership.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "chronosd:", err)
		os.Exit(1)
	}
	if membership.Enabled() {
		log.Printf("chronosd joining ring as %s with %d member(s)",
			ring.NormalizeURL(membership.Self), len(membership.Members()))
	}

	srv := server.New(server.Config{
		Addr:             *addr,
		CacheCapacity:    *cacheCapacity,
		CacheShards:      *cacheShards,
		Workers:          *workers,
		MaxBodyBytes:     *maxBody,
		MaxBatchJobs:     *maxBatch,
		MaxSimJobs:       *maxSimJobs,
		MaxSimTasks:      *maxSimTasks,
		MaxSimTotalTasks: *maxSimTotal,
		MaxReplayJobs:    *maxReplay,
		MaxActiveReplays: *maxActive,
		ReadTimeout:      *readTimeout,
		WriteTimeout:     *writeTimeout,
		ShutdownGrace:    *grace,
		Tenants:          tenants,
		Self:             membership.Self,
		Peers:            membership.Peers,
		ForwardTimeout:   *forwardTO,
	})

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One SIGHUP reloads every file-backed config: tenant budgets and ring
	// membership share the reload path, so fleet-wide rollouts need one
	// signal per replica, not one per subsystem.
	if *tenantsPath != "" || *ringPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					if *tenantsPath != "" {
						reloaded, err := tenant.LoadFile(*tenantsPath)
						if err != nil {
							log.Printf("chronosd: SIGHUP reload failed, keeping previous tenants: %v", err)
						} else {
							reloaded.Rebase(srv.Tenants())
							srv.SetTenants(reloaded)
							log.Printf("chronosd reloaded %d tenant pool(s) from %s (plan cache flushed)",
								reloaded.Len(), *tenantsPath)
						}
					}
					if *ringPath != "" {
						m, err := ring.LoadFile(*ringPath)
						if err != nil {
							log.Printf("chronosd: SIGHUP reload failed, keeping previous ring: %v", err)
						} else if err := srv.SetRing(m); err != nil {
							log.Printf("chronosd: SIGHUP ring swap failed, keeping previous ring: %v", err)
						} else {
							log.Printf("chronosd reloaded ring membership from %s (%d member(s))",
								*ringPath, len(m.Members()))
						}
					}
				}
			}
		}()
	}

	log.Printf("chronosd listening on %s", *addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "chronosd:", err)
		os.Exit(1)
	}
	hits, misses, entries := srv.CacheStats()
	log.Printf("chronosd stopped (cache: %d hits, %d misses, %d entries)",
		hits, misses, entries)
}
