// Package pareto implements the Pareto (Type I) distribution together with
// the order-statistic and conditional-expectation machinery that the Chronos
// analysis (Theorems 1-8 of the paper) is built on.
//
// Task attempt execution times in Chronos are modelled as i.i.d.
// Pareto(tmin, beta) random variables: tmin is the minimum execution time and
// beta is the tail index. Heavier tails (smaller beta) produce more severe
// stragglers. The package also provides deterministic sub-streams for
// reproducible sampling and a small adaptive-quadrature routine used by the
// closed-form cost expressions that contain non-elementary integrals.
package pareto

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// Dist is a Pareto Type I distribution with scale TMin > 0 and shape Beta > 0.
//
// The density is f(t) = Beta * TMin^Beta / t^(Beta+1) for t >= TMin and 0
// otherwise.
type Dist struct {
	// TMin is the scale parameter: the minimum value the variable can take.
	TMin float64
	// Beta is the shape (tail index). Values in (1, 2) produce the
	// heavy-tailed regime studied in the paper (finite mean, infinite
	// variance for Beta <= 2).
	Beta float64
}

// ErrInvalidParams reports a Pareto distribution with non-positive scale or
// shape.
var ErrInvalidParams = errors.New("pareto: parameters must be positive")

// New validates the parameters and returns the distribution.
func New(tmin, beta float64) (Dist, error) {
	d := Dist{TMin: tmin, Beta: beta}
	if err := d.Validate(); err != nil {
		return Dist{}, err
	}
	return d, nil
}

// MustNew is New but panics on invalid parameters. Intended for package-level
// defaults and tests.
func MustNew(tmin, beta float64) Dist {
	d, err := New(tmin, beta)
	if err != nil {
		panic(err)
	}
	return d
}

// Validate reports whether the parameters define a proper distribution.
func (d Dist) Validate() error {
	if !(d.TMin > 0) || !(d.Beta > 0) || math.IsInf(d.TMin, 0) || math.IsInf(d.Beta, 0) {
		return fmt.Errorf("%w: tmin=%v beta=%v", ErrInvalidParams, d.TMin, d.Beta)
	}
	return nil
}

// PDF returns the probability density at t.
func (d Dist) PDF(t float64) float64 {
	if t < d.TMin {
		return 0
	}
	return d.Beta * math.Pow(d.TMin, d.Beta) / math.Pow(t, d.Beta+1)
}

// CDF returns P(T <= t).
func (d Dist) CDF(t float64) float64 {
	if t <= d.TMin {
		return 0
	}
	return 1 - math.Pow(d.TMin/t, d.Beta)
}

// Survival returns P(T > t) = (tmin/t)^beta for t >= tmin and 1 otherwise.
func (d Dist) Survival(t float64) float64 {
	if t <= d.TMin {
		return 1
	}
	return math.Pow(d.TMin/t, d.Beta)
}

// Quantile returns the value t such that CDF(t) = p, for p in [0, 1).
// Quantile(0) == TMin; Quantile(1) is +Inf.
func (d Dist) Quantile(p float64) float64 {
	if p <= 0 {
		return d.TMin
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return d.TMin / math.Pow(1-p, 1/d.Beta)
}

// Mean returns E[T] = tmin*beta/(beta-1) for beta > 1 and +Inf otherwise.
func (d Dist) Mean() float64 {
	if d.Beta <= 1 {
		return math.Inf(1)
	}
	return d.TMin * d.Beta / (d.Beta - 1)
}

// Median returns the 50th percentile.
func (d Dist) Median() float64 { return d.Quantile(0.5) }

// Variance returns Var[T] for beta > 2 and +Inf otherwise.
func (d Dist) Variance() float64 {
	if d.Beta <= 2 {
		return math.Inf(1)
	}
	b := d.Beta
	return d.TMin * d.TMin * b / ((b - 1) * (b - 1) * (b - 2))
}

// Sample draws one variate using inverse-transform sampling.
func (d Dist) Sample(rng *rand.Rand) float64 {
	// 1-Float64() is in (0, 1], avoiding a division by zero.
	u := 1 - rng.Float64()
	return d.TMin / math.Pow(u, 1/d.Beta)
}

// SampleN draws n variates.
func (d Dist) SampleN(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// Scaled returns the distribution of c*T for c > 0, which is again Pareto
// with scale c*tmin and the same shape. This is how Speculative-Resume models
// the remaining work (1-phi)*T of a resumed task.
func (d Dist) Scaled(c float64) Dist {
	return Dist{TMin: c * d.TMin, Beta: d.Beta}
}

// ConditionedAbove returns the distribution of T given T > lo for lo >= tmin.
// By the Pareto "Lindy" property (Lemma 3 in the paper) this is again Pareto
// with scale lo and unchanged shape.
func (d Dist) ConditionedAbove(lo float64) Dist {
	if lo < d.TMin {
		lo = d.TMin
	}
	return Dist{TMin: lo, Beta: d.Beta}
}

// MinOf returns the distribution of min(T_1, ..., T_n) of n i.i.d. copies,
// which is Pareto(tmin, n*beta).
func (d Dist) MinOf(n int) Dist {
	return Dist{TMin: d.TMin, Beta: d.Beta * float64(n)}
}

// ExpectedMin returns E[min(T_1,...,T_n)] = tmin*n*beta/(n*beta - 1), the
// statement of Lemma 1. It returns +Inf when n*beta <= 1.
func (d Dist) ExpectedMin(n int) float64 {
	nb := float64(n) * d.Beta
	if nb <= 1 {
		return math.Inf(1)
	}
	return d.TMin * nb / (nb - 1)
}

// MeanBelow returns E[T | T <= upper] for upper > tmin. This is the paper's
// "Case 1" expression (Theorems 4 and 6):
//
//	E(T | T <= D) = tmin*D*beta*(tmin^(beta-1) - D^(beta-1)) /
//	                ((1-beta)*(D^beta - tmin^beta))
//
// For beta == 1 the expression has a removable singularity handled via the
// logarithmic limit.
func (d Dist) MeanBelow(upper float64) float64 {
	if upper <= d.TMin {
		return d.TMin
	}
	b, tm := d.Beta, d.TMin
	if math.Abs(b-1) < 1e-9 {
		// E[T | T<=D] = tm*D*ln(D/tm) / (D - tm) for beta == 1.
		return tm * upper * math.Log(upper/tm) / (upper - tm)
	}
	num := tm * upper * b * (math.Pow(tm, b-1) - math.Pow(upper, b-1))
	den := (1 - b) * (math.Pow(upper, b) - math.Pow(tm, b))
	return num / den
}

// MeanAbove returns E[T | T > lo] = lo*beta/(beta-1) (Lemma 3: the
// conditional law is Pareto(lo, beta)). Returns +Inf when beta <= 1.
func (d Dist) MeanAbove(lo float64) float64 {
	if lo < d.TMin {
		lo = d.TMin
	}
	if d.Beta <= 1 {
		return math.Inf(1)
	}
	return lo * d.Beta / (d.Beta - 1)
}

// String implements fmt.Stringer.
func (d Dist) String() string {
	return fmt.Sprintf("Pareto(tmin=%g, beta=%g)", d.TMin, d.Beta)
}
