package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"chronos/internal/obs"
	"chronos/internal/ring"
)

// Sharding headers. ForwardedFromHeader marks a request as already forwarded
// once (its value is the sender's self URL); a replica that receives it
// always computes locally, so ownership disagreements during a rolling
// membership change degrade to one extra hop, never a forwarding loop.
// ServedByHeader names the replica that actually computed (or cached) the
// response, which is how the ring demo and the fleet tests observe
// cross-replica serving.
const (
	ForwardedFromHeader = "X-Chronosd-Forwarded-From"
	ServedByHeader      = "X-Chronosd-Served-By"
)

// ringState is one immutable view of the fleet: the consistent-hash ring
// over the member URLs plus per-peer forwarding state. Membership changes
// (SetRing, typically on SIGHUP) swap in a whole new ringState; in-flight
// requests keep the view they started with.
type ringState struct {
	ring  *ring.Ring
	self  string
	peers map[string]*peerState // by member URL, excluding self
	// selfHdr is the precomputed ServedByHeader value assigned into hot
	// responses' header maps; immutable for the ringState's lifetime, so
	// sharing one slice across requests is safe.
	selfHdr []string
}

// peerState carries what this replica knows about one peer: its base URL and
// the circuit breaker guarding forwards to it. It survives membership
// reloads for peers that remain in the fleet, so a reload does not reset a
// deliberately opened circuit.
type peerState struct {
	base    string
	breaker breaker
}

// breaker is a consecutive-failure circuit breaker. After threshold
// consecutive forward failures the circuit opens for cooldown, during which
// forwards to the peer are skipped in favor of local computation — keeping a
// dead replica from adding a connect-timeout to every request it used to
// own.
type breaker struct {
	threshold int
	cooldown  time.Duration
	failures  atomic.Int32
	openUntil atomic.Int64 // unix nanos; 0 = closed
}

// allow reports whether a forward may be attempted now.
func (b *breaker) allow() bool {
	return time.Now().UnixNano() >= b.openUntil.Load()
}

// fail records one forward failure, opening the circuit at the threshold.
func (b *breaker) fail() {
	if int(b.failures.Add(1)) >= b.threshold {
		b.openUntil.Store(time.Now().Add(b.cooldown).UnixNano())
		b.failures.Store(0)
	}
}

// success closes the circuit.
func (b *breaker) success() {
	b.failures.Store(0)
	b.openUntil.Store(0)
}

// SetRing swaps the fleet membership, rebuilding the consistent-hash ring.
// A zero Membership disables sharding (every key is computed locally).
// chronosd calls this on SIGHUP alongside SetTenants, so one signal reloads
// both tenant budgets and ring membership. Circuit-breaker state carries
// over for peers present in both the old and new membership.
func (s *Server) SetRing(m ring.Membership) error {
	if !m.Enabled() {
		s.ringSt.Store(nil)
		return nil
	}
	if err := m.Validate(); err != nil {
		return err
	}
	members := m.Members()
	r := ring.New(members, s.cfg.RingVirtualNodes)
	self := ring.NormalizeURL(m.Self)
	old := s.ringSt.Load()
	peers := make(map[string]*peerState, len(members))
	for _, n := range r.Nodes() {
		if n == self {
			continue
		}
		if old != nil {
			if p, ok := old.peers[n]; ok {
				peers[n] = p
				continue
			}
		}
		peers[n] = &peerState{base: n, breaker: breaker{
			threshold: s.cfg.BreakerThreshold,
			cooldown:  s.cfg.BreakerCooldown,
		}}
	}
	s.ringSt.Store(&ringState{ring: r, self: self, peers: peers, selfHdr: []string{self}})
	return nil
}

// RingMembers returns the current membership view (empty when sharding is
// disabled). Exposed for tests and embedders.
func (s *Server) RingMembers() (self string, members []string) {
	rs := s.ringSt.Load()
	if rs == nil {
		return "", nil
	}
	return rs.self, rs.ring.Nodes()
}

// forwardToOwner implements the sharded serving path for one plan-keyed
// request. It returns true when the response has been fully written (the
// request was proxied to the owning replica); false means the caller must
// compute locally — either because this replica owns the key, sharding is
// off, the request already took its one forwarding hop, or the owner is
// unreachable (circuit open or forward failed) and we fall back to local
// computation rather than failing the request.
//
// payload is the decoded request, re-marshaled for the forward so that
// fields this replica resolved (e.g. tenant econ defaults) travel with it
// and the owner computes the exact cache key the routing decision used.
func (s *Server) forwardToOwner(w http.ResponseWriter, r *http.Request, path string, key []byte, payload any) bool {
	rs := s.ringSt.Load()
	if rs == nil {
		return false
	}
	// A replica that computes locally stamps itself; the proxy branch below
	// overwrites this with the owner's stamp when the forward succeeds. The
	// shared immutable slice goes straight into the header map (canonical
	// key) so the hot path's stamp does not allocate.
	w.Header()[ServedByHeader] = rs.selfHdr
	if r.Header.Get(ForwardedFromHeader) != "" {
		// Single-hop guard: this request was already forwarded once.
		s.metrics.ringReceivedForwards.Inc()
		return false
	}
	owner, ok := rs.ring.OwnerBytes(key)
	if !ok || owner == rs.self {
		return false
	}
	peer := rs.peers[owner]
	if peer == nil {
		// Membership raced a reload between Owner and the peer lookup;
		// serving locally is always safe.
		return false
	}
	if !peer.breaker.allow() {
		s.metrics.ringLocalFallbacks.Inc()
		return false
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		peer.base+path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedFromHeader, rs.self)
	// The trace ID travels with the forward so the owner's span record,
	// logs, and response carry the same ID this replica minted (or
	// honored); the whole round trip — request out through body read — is
	// one StageForward span on this side.
	tr := obs.FromContext(r.Context())
	if tr != nil {
		req.Header.Set(obs.TraceHeader, tr.ID)
	}
	fwdStart := time.Now()
	defer func() { tr.Observe(obs.StageForward, time.Since(fwdStart)) }()
	resp, err := s.forwardClient.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away mid-forward. The peer's health is not in
			// question — don't charge its breaker — and a local fallback
			// would compute a plan nobody reads; drop the request.
			return true
		}
		peer.breaker.fail()
		s.metrics.ringPeerError(owner)
		s.metrics.ringLocalFallbacks.Inc()
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= http.StatusInternalServerError {
		// The owner answered but is unhealthy; treat like unreachable and
		// compute locally rather than relaying its failure.
		_, _ = io.Copy(io.Discard, resp.Body)
		peer.breaker.fail()
		s.metrics.ringPeerError(owner)
		s.metrics.ringLocalFallbacks.Inc()
		return false
	}
	if resp.StatusCode == http.StatusNotFound {
		// Config drift during a rolling rollout: this replica resolved the
		// request (tenant lookup included) before forwarding, so an owner
		// 404 means its view disagrees — serve locally instead of failing a
		// request we know how to answer. The peer is healthy; don't touch
		// the breaker failure count.
		_, _ = io.Copy(io.Discard, resp.Body)
		s.metrics.ringLocalFallbacks.Inc()
		return false
	}
	// Buffer the full answer before committing the status line: an owner
	// that stalls mid-body inside the forward timeout must degrade to local
	// fallback, not to a 200 with a truncated JSON body the client cannot
	// decode. Plan and admit answers are small; the cap only guards a
	// misbehaving peer.
	relayed, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes+1))
	if err != nil || len(relayed) > maxRelayBytes {
		if r.Context().Err() != nil {
			return true // client gone mid-read; same as above
		}
		peer.breaker.fail()
		s.metrics.ringPeerError(owner)
		s.metrics.ringLocalFallbacks.Inc()
		return false
	}
	peer.breaker.success()
	s.metrics.ringForwarded(owner)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if sb := resp.Header.Get(ServedByHeader); sb != "" {
		w.Header().Set(ServedByHeader, sb)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(relayed)
	return true
}

// maxRelayBytes caps a buffered forwarded response. Far above any real plan
// or admit answer; a peer streaming more than this is broken.
const maxRelayBytes = 1 << 20
