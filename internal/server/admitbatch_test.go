package server

import (
	"net/http"
	"sync"
	"testing"

	"chronos"
)

func TestAdmitBatchEndpoint(t *testing.T) {
	mt := bestPlanMachineTime(t)
	r0, err := chronos.ExpectedMachineTime(chronos.Clone, testJob(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two optimal plans plus change that cannot cover a third even at r=0:
	// a 6-job batch must admit the front of the queue and reject the tail.
	budget := 2*mt + r0/2
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", budget)})

	jobs := make([]admitBatchJob, 6)
	for i := range jobs {
		jobs[i] = admitBatchJob{Job: testJob()}
	}
	got := decodeBody[admitBatchResponse](t, postJSON(t, ts.URL+"/v1/admit/batch",
		admitBatchRequest{Tenant: "etl", Jobs: jobs, Econ: testEcon()}))

	if got.Tenant != "etl" {
		t.Fatalf("tenant = %q, want etl", got.Tenant)
	}
	if len(got.Results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(got.Results), len(jobs))
	}
	var admitted float64
	admits := 0
	sawReject := false
	for i, res := range got.Results {
		if res.Admitted {
			if sawReject {
				t.Errorf("job %d admitted after an earlier budget rejection; "+
					"in-order allocation should drain monotonically", i)
			}
			if res.Plan == nil {
				t.Fatalf("job %d admitted without a plan", i)
			}
			admitted += res.Plan.MachineTime
			admits++
			continue
		}
		sawReject = true
		if res.Reason != ReasonBudgetExhausted {
			t.Errorf("job %d rejected with reason %q, want %q", i, res.Reason, ReasonBudgetExhausted)
		}
		if res.Plan != nil {
			t.Errorf("job %d rejection carried a plan", i)
		}
	}
	if admits < 2 {
		t.Fatalf("only %d of %d jobs admitted; budget covers at least 2", admits, len(jobs))
	}
	if !sawReject {
		t.Fatal("no job rejected; the batch never saturated the budget")
	}
	if got.Admitted != admits {
		t.Errorf("Admitted = %d, want %d", got.Admitted, admits)
	}
	if admitted > budget*(1+1e-9) {
		t.Fatalf("over-commit: batch admitted %v machine-seconds from a budget of %v", admitted, budget)
	}
	if got.BudgetRemaining < 0 {
		t.Errorf("budgetRemaining went negative: %v", got.BudgetRemaining)
	}
	if diff := admitted + got.BudgetRemaining - budget; diff > 1e-5 || diff < -1e-5 {
		t.Errorf("ledger leak: admitted %v + remaining %v != budget %v",
			admitted, got.BudgetRemaining, budget)
	}
}

func TestAdmitBatchErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", 1e6)})
	wantStatus := func(t *testing.T, req admitBatchRequest, want int) {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/admit/batch", req)
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("status = %d, want %d", resp.StatusCode, want)
		}
	}

	t.Run("missing tenant", func(t *testing.T) {
		wantStatus(t, admitBatchRequest{Jobs: []admitBatchJob{{Job: testJob()}}, Econ: testEcon()},
			http.StatusBadRequest)
	})
	t.Run("unknown tenant", func(t *testing.T) {
		wantStatus(t, admitBatchRequest{Tenant: "nope", Jobs: []admitBatchJob{{Job: testJob()}}},
			http.StatusNotFound)
	})
	t.Run("empty batch", func(t *testing.T) {
		wantStatus(t, admitBatchRequest{Tenant: "etl"}, http.StatusBadRequest)
	})
	t.Run("unknown strategy", func(t *testing.T) {
		wantStatus(t, admitBatchRequest{
			Tenant: "etl",
			Jobs:   []admitBatchJob{{Job: testJob()}, {Job: testJob(), Strategy: "dolly"}},
		}, http.StatusBadRequest)
	})
	t.Run("over the batch limit", func(t *testing.T) {
		srv, small := newTestServer(t, Config{
			Tenants: testRegistry(t, "etl", 1e6), MaxBatchJobs: 2,
		})
		_ = srv
		jobs := []admitBatchJob{{Job: testJob()}, {Job: testJob()}, {Job: testJob()}}
		resp := postJSON(t, small.URL+"/v1/admit/batch",
			admitBatchRequest{Tenant: "etl", Jobs: jobs, Econ: testEcon()})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
}

// TestAdmitBatchInfeasibleMixed: per-job infeasibility is a per-item
// rejection, not a whole-request failure, and does not block admissible
// neighbors.
func TestAdmitBatchInfeasibleMixed(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", 1e9)})
	// RMin 0.9 is attainable for testJob (see the pinned-jobs floor test)
	// but far out of reach for a deadline barely above the minimum runtime.
	econ := testEcon()
	econ.RMin = 0.9
	impossible := chronos.JobParams{
		Tasks: 10, Deadline: 10.5, TMin: 10, Beta: 1.5, TauEst: 3, TauKill: 6,
	}
	got := decodeBody[admitBatchResponse](t, postJSON(t, ts.URL+"/v1/admit/batch",
		admitBatchRequest{
			Tenant: "etl",
			Jobs:   []admitBatchJob{{Job: impossible}, {Job: testJob()}},
			Econ:   econ,
		}))
	if got.Results[0].Admitted || got.Results[0].Reason != ReasonInfeasible {
		t.Errorf("impossible job: admitted=%v reason=%q, want rejection with %q",
			got.Results[0].Admitted, got.Results[0].Reason, ReasonInfeasible)
	}
	if !got.Results[1].Admitted {
		t.Errorf("feasible neighbor rejected (%q)", got.Results[1].Reason)
	}
	if got.Admitted != 1 {
		t.Errorf("Admitted = %d, want 1", got.Admitted)
	}
}

// TestAdmitBatchSingleLeaseDebit is the batched-admission acceptance
// property: on a lease-holding (non-owner) replica of an escrow fleet, a
// whole batch settles against the tenant lease in ONE successful CAS —
// Lease.Debits() advances by the number of batches, not the number of
// admitted jobs. Run under -race this also exercises concurrent batches
// contending on the same lease.
func TestAdmitBatchSingleLeaseDebit(t *testing.T) {
	mt := bestPlanMachineTime(t)
	budget := 200 * mt // generous: every job in every batch admits
	servers, urls := escrowFleet(t, 3, "etl", budget)

	// Pick a replica that does NOT own the tenant: its admissions go through
	// the holder-side lease, which is where batching collapses the CAS count.
	holder := -1
	for i, s := range servers {
		if !s.escrow.ownsTenant("etl") {
			holder = i
			break
		}
	}
	if holder < 0 {
		t.Fatal("every replica claims to own the tenant; ring is degenerate")
	}

	const batches = 6
	const jobsPerBatch = 4
	var (
		mu       sync.Mutex
		admitted int
	)
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			jobs := make([]admitBatchJob, jobsPerBatch)
			for i := range jobs {
				// Distinct shapes per slot so the fan-out actually solves
				// several cells rather than hitting one cached plan.
				job := testJob()
				job.Tasks = 8 + (b*jobsPerBatch+i)%7
				jobs[i] = admitBatchJob{Job: job}
			}
			resp := postJSON(t, urls[holder]+"/v1/admit/batch",
				admitBatchRequest{Tenant: "etl", Jobs: jobs, Econ: testEcon()})
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				t.Errorf("batch %d: status = %d, want 200", b, resp.StatusCode)
				return
			}
			got := decodeBody[admitBatchResponse](t, resp)
			for i, res := range got.Results {
				if !res.Admitted {
					t.Errorf("batch %d job %d rejected (%q) under a generous budget", b, i, res.Reason)
				}
			}
			mu.Lock()
			admitted += got.Admitted
			mu.Unlock()
		}(b)
	}
	wg.Wait()

	if admitted != batches*jobsPerBatch {
		t.Fatalf("admitted %d of %d jobs; the lease-debit count below is only "+
			"meaningful when every batch settles", admitted, batches*jobsPerBatch)
	}
	debits := servers[holder].escrow.lease("etl").Debits()
	if debits != batches {
		t.Errorf("lease debits = %d for %d batches of %d jobs; "+
			"batched admission must cost one CAS per batch, not per job",
			debits, batches, jobsPerBatch)
	}
}

// TestAdmitBatchResultOrder pins the wire contract the ring-aware client
// relies on when it scatters a batch and reassembles the answers: results
// are positional — result i is job i's unconstrained optimal plan.
func TestAdmitBatchResultOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", 1e6)})
	jobs := make([]admitBatchJob, 4)
	want := make([]chronos.Plan, len(jobs))
	for i := range jobs {
		job := testJob()
		job.Tasks = 8 + i
		jobs[i] = admitBatchJob{Job: job}
		plan, err := chronos.OptimizeBest(job, testEcon())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = plan
	}
	got := decodeBody[admitBatchResponse](t, postJSON(t, ts.URL+"/v1/admit/batch",
		admitBatchRequest{Tenant: "etl", Jobs: jobs, Econ: testEcon()}))
	if len(got.Results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(got.Results), len(jobs))
	}
	for i, res := range got.Results {
		if !res.Admitted {
			t.Fatalf("job %d rejected under a huge budget: %s", i, res.Reason)
		}
		if *res.Plan != want[i] {
			t.Errorf("job %d: plan %+v, want %+v — results out of order?", i, *res.Plan, want[i])
		}
	}
}
