package analysis

import (
	"math"
	"testing"

	"chronos/internal/pareto"
)

// testParams returns the canonical parameter point used across tests:
// tmin=10, beta=1.5, D=100, tauEst=30, tauKill=60, N=10.
func testParams() Params {
	return Params{
		N:        10,
		Deadline: 100,
		Task:     pareto.MustNew(10, 1.5),
		TauEst:   30,
		TauKill:  60,
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
		want   error
	}{
		{"valid", func(p *Params) {}, nil},
		{"zero N", func(p *Params) { p.N = 0 }, ErrBadN},
		{"deadline below tmin", func(p *Params) { p.Deadline = 5 }, ErrBadDeadline},
		{"negative tauEst", func(p *Params) { p.TauEst = -1 }, ErrBadTau},
		{"tauKill before tauEst", func(p *Params) { p.TauKill = 10 }, ErrBadTau},
		{"tauKill after deadline", func(p *Params) { p.TauKill = 200 }, ErrBadTau},
		{"phi out of range", func(p *Params) { p.PhiEst = 1.5 }, ErrBadPhi},
		{"beta too small", func(p *Params) { p.Task.Beta = 0.9 }, ErrHeavyTail},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testParams()
			tt.mutate(&p)
			err := p.Validate()
			if tt.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !errorIs(err, tt.want) {
				t.Fatalf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func errorIs(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestDefaultPhiEst(t *testing.T) {
	p := testParams()
	phi := p.DefaultPhiEst()
	// tauEst*beta/((beta+1)*D) = 30*1.5/(2.5*100) = 0.18.
	if math.Abs(phi-0.18) > 1e-12 {
		t.Errorf("DefaultPhiEst() = %v, want 0.18", phi)
	}
	if phi < 0 || phi >= 1 {
		t.Errorf("DefaultPhiEst() = %v outside [0,1)", phi)
	}
}

func TestStrategyString(t *testing.T) {
	tests := []struct {
		s    Strategy
		want string
	}{
		{StrategyClone, "Clone"},
		{StrategyRestart, "Speculative-Restart"},
		{StrategyResume, "Speculative-Resume"},
		{Strategy(99), "Unknown"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestNewModel(t *testing.T) {
	p := testParams()
	for _, s := range Strategies() {
		m := NewModel(s, p)
		if m.Name() != s.String() {
			t.Errorf("NewModel(%v).Name() = %q, want %q", s, m.Name(), s.String())
		}
		if m.Params() != p {
			t.Errorf("NewModel(%v).Params() does not round-trip", s)
		}
	}
}

func TestNewModelPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewModel(unknown) did not panic")
		}
	}()
	NewModel(Strategy(0), testParams())
}

func TestClonePoCDFormula(t *testing.T) {
	p := testParams()
	c := Clone{P: p}
	for r := 0; r <= 5; r++ {
		single := math.Pow(p.Task.TMin/p.Deadline, p.Task.Beta)
		want := math.Pow(1-math.Pow(single, float64(r+1)), float64(p.N))
		if got := c.PoCD(r); math.Abs(got-want) > 1e-12 {
			t.Errorf("Clone PoCD(%d) = %v, want %v", r, got, want)
		}
	}
}

func TestHadoopNSMatchesCloneAtZero(t *testing.T) {
	p := testParams()
	if got, want := HadoopNSPoCD(p), (Clone{P: p}).PoCD(0); got != want {
		t.Errorf("HadoopNSPoCD = %v, want Clone.PoCD(0) = %v", got, want)
	}
	if got, want := HadoopNSMachineTime(p), float64(p.N)*p.Task.Mean(); got != want {
		t.Errorf("HadoopNSMachineTime = %v, want %v", got, want)
	}
}

func TestPoCDInUnitInterval(t *testing.T) {
	ps := []Params{
		testParams(),
		{N: 100, Deadline: 50, Task: pareto.MustNew(40, 1.1), TauEst: 5, TauKill: 9},
		{N: 1, Deadline: 11, Task: pareto.MustNew(10, 1.9), TauEst: 0.5, TauKill: 1},
	}
	for _, p := range ps {
		for _, m := range []Model{Clone{P: p}, Restart{P: p}, Resume{P: p}} {
			for r := 0; r <= 8; r++ {
				got := m.PoCD(r)
				if got < 0 || got > 1 || math.IsNaN(got) {
					t.Errorf("%s PoCD(%d) = %v outside [0,1]", m.Name(), r, got)
				}
			}
		}
	}
}

func TestPoCDMonotoneInR(t *testing.T) {
	p := testParams()
	for _, m := range []Model{Clone{P: p}, Restart{P: p}, Resume{P: p}} {
		prev := -1.0
		for r := 0; r <= 10; r++ {
			got := m.PoCD(r)
			if got < prev-1e-15 {
				t.Errorf("%s PoCD not monotone: PoCD(%d)=%v < PoCD(%d)=%v",
					m.Name(), r, got, r-1, prev)
			}
			prev = got
		}
	}
}

func TestPoCDMonotoneInDeadline(t *testing.T) {
	base := testParams()
	for _, m := range Strategies() {
		prev := -1.0
		for _, d := range []float64{70, 90, 110, 150, 300, 1000} {
			p := base
			p.Deadline = d
			got := NewModel(m, p).PoCD(2)
			if got < prev-1e-15 {
				t.Errorf("%v PoCD not monotone in D at D=%v: %v < %v", m, d, got, prev)
			}
			prev = got
		}
	}
}

// TestTheorem7Orderings checks R_Clone > R_S-Restart and
// R_S-Resume > R_S-Restart on a grid of parameters.
func TestTheorem7Orderings(t *testing.T) {
	for _, beta := range []float64{1.1, 1.5, 1.9} {
		for _, tauEst := range []float64{10, 30, 50} {
			for r := 1; r <= 5; r++ {
				p := testParams()
				p.Task.Beta = beta
				p.TauEst = tauEst
				cmp := CompareAtR(p, r)
				if !cmp.CloneOverRestart {
					t.Errorf("beta=%v tauEst=%v r=%d: Clone %v < Restart %v",
						beta, tauEst, r, cmp.Clone, cmp.Restart)
				}
				if !cmp.ResumeOverRestart {
					t.Errorf("beta=%v tauEst=%v r=%d: Resume %v < Restart %v",
						beta, tauEst, r, cmp.Res, cmp.Restart)
				}
			}
		}
	}
}

// TestCloneResumeCrossover verifies conclusion 3 of Theorem 7: Clone's PoCD
// overtakes Resume's exactly above the crossover r*.
func TestCloneResumeCrossover(t *testing.T) {
	p := testParams()
	p.PhiEst = 0.2
	rStar := CloneResumeCrossover(p)
	if math.IsInf(rStar, 0) || math.IsNaN(rStar) {
		t.Fatalf("crossover = %v, want finite", rStar)
	}
	clone, resume := Clone{P: p}, Resume{P: p}
	for r := 0; r <= 12; r++ {
		c, s := clone.PoCD(r), resume.PoCD(r)
		if float64(r) > rStar && c < s-1e-12 {
			t.Errorf("r=%d > r*=%.3f but Clone %v < Resume %v", r, rStar, c, s)
		}
		if float64(r) < rStar && c > s+1e-12 {
			t.Errorf("r=%d < r*=%.3f but Clone %v > Resume %v", r, rStar, c, s)
		}
	}
}

// TestGammaConcavity verifies the Theorem 8 thresholds: for every integer
// r >= ceil(Gamma), the PoCD second difference is non-positive (discrete
// concavity), and the per-task failure probability is below 1/N.
func TestGammaConcavity(t *testing.T) {
	grid := []Params{
		testParams(),
		{N: 50, Deadline: 80, Task: pareto.MustNew(10, 1.2), TauEst: 20, TauKill: 40},
		{N: 5, Deadline: 200, Task: pareto.MustNew(40, 1.8), TauEst: 50, TauKill: 100},
	}
	for _, p := range grid {
		for _, s := range Strategies() {
			m := NewModel(s, p)
			gamma := m.Gamma()
			start := int(math.Ceil(gamma))
			if start < 0 {
				start = 0
			}
			for r := start; r < start+10; r++ {
				d2 := m.PoCD(r+2) - 2*m.PoCD(r+1) + m.PoCD(r)
				if d2 > 1e-9 {
					t.Errorf("%s (N=%d): PoCD second difference at r=%d is %v > 0 (Gamma=%v)",
						m.Name(), p.N, r, d2, gamma)
				}
			}
		}
	}
}

func TestGammaSmall(t *testing.T) {
	// The paper observes Gamma is typically small (< 4). Check on the
	// canonical parameters.
	p := testParams()
	for _, s := range Strategies() {
		if g := NewModel(s, p).Gamma(); g > 4 {
			t.Errorf("%v Gamma = %v, expected < 4 on canonical params", s, g)
		}
	}
}

func TestMachineTimeIncreasingInR(t *testing.T) {
	p := testParams()
	for _, m := range []Model{Clone{P: p}, Restart{P: p}, Resume{P: p}} {
		prev := 0.0
		for r := 1; r <= 8; r++ {
			got := m.MachineTime(r)
			if got <= prev {
				t.Errorf("%s MachineTime(%d) = %v not increasing (prev %v)",
					m.Name(), r, got, prev)
			}
			prev = got
		}
	}
}

func TestCloneMachineTimeFormula(t *testing.T) {
	p := testParams()
	c := Clone{P: p}
	for r := 0; r <= 4; r++ {
		brp := p.Task.Beta * float64(r+1)
		want := float64(p.N) * (float64(r)*p.TauKill + p.Task.TMin + p.Task.TMin/(brp-1))
		if got := c.MachineTime(r); math.Abs(got-want) > 1e-9 {
			t.Errorf("Clone MachineTime(%d) = %v, want %v", r, got, want)
		}
	}
}

func TestRestartMachineTimeAtZeroIsMean(t *testing.T) {
	p := testParams()
	want := float64(p.N) * p.Task.Mean()
	if got := (Restart{P: p}).MachineTime(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("Restart MachineTime(0) = %v, want N*mean = %v", got, want)
	}
}

func TestPowInt(t *testing.T) {
	tests := []struct {
		x    float64
		n    int
		want float64
	}{
		{2, 0, 1},
		{2, 1, 2},
		{2, 10, 1024},
		{0.5, 2, 0.25},
		{3, -2, 1.0 / 9},
	}
	for _, tt := range tests {
		if got := powInt(tt.x, tt.n); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("powInt(%v, %d) = %v, want %v", tt.x, tt.n, got, tt.want)
		}
	}
}

func TestClampProb(t *testing.T) {
	if clampProb(-0.5) != 0 || clampProb(1.5) != 1 || clampProb(0.3) != 0.3 {
		t.Error("clampProb misbehaves")
	}
}

// --- Monte-Carlo validation of the closed forms ---------------------------

const (
	mcJobs = 60000
	mcTol  = 0.02 // absolute tolerance on probabilities; relative on times
)

// mcClone simulates the Clone model directly: per task, r+1 i.i.d. Pareto
// draws; the task completes at the minimum; killed attempts are charged
// tauKill each.
func mcClone(p Params, r int, seed uint64) (pocd, machineTime float64) {
	rng := pareto.NewStream(seed)
	met := 0
	var totalTime float64
	for j := 0; j < mcJobs; j++ {
		jobMeets := true
		for task := 0; task < p.N; task++ {
			w := math.Inf(1)
			for k := 0; k <= r; k++ {
				if x := p.Task.Sample(rng); x < w {
					w = x
				}
			}
			totalTime += float64(r)*p.TauKill + w
			if w > p.Deadline {
				jobMeets = false
			}
		}
		if jobMeets {
			met++
		}
	}
	return float64(met) / mcJobs, totalTime / mcJobs
}

func TestCloneVsMonteCarlo(t *testing.T) {
	p := testParams()
	// PoCD converges for any r; machine time is checked for r >= 1 where the
	// surviving minimum has finite variance (beta*(r+1) > 2).
	if gotP, _ := mcClone(p, 0, 11); math.Abs(gotP-(Clone{P: p}).PoCD(0)) > mcTol {
		t.Errorf("r=0: MC PoCD %v vs Theorem 1 %v", gotP, (Clone{P: p}).PoCD(0))
	}
	for _, r := range []int{1, 2, 4} {
		gotP, gotT := mcClone(p, r, 11)
		c := Clone{P: p}
		if wantP := c.PoCD(r); math.Abs(gotP-wantP) > mcTol {
			t.Errorf("r=%d: MC PoCD %v vs Theorem 1 %v", r, gotP, wantP)
		}
		wantT := c.MachineTime(r)
		if math.Abs(gotT-wantT)/wantT > mcTol {
			t.Errorf("r=%d: MC machine time %v vs Theorem 2 %v", r, gotT, wantT)
		}
	}
}

// mcRestart simulates Speculative-Restart with oracle straggler detection
// (the paper's analytic assumption): a task is a straggler iff its original
// attempt's execution time exceeds D.
func mcRestart(p Params, r int, seed uint64) (pocd, machineTime float64) {
	rng := pareto.NewStream(seed)
	met := 0
	var totalTime float64
	for j := 0; j < mcJobs; j++ {
		jobMeets := true
		for task := 0; task < p.N; task++ {
			t1 := p.Task.Sample(rng)
			if t1 <= p.Deadline {
				totalTime += t1
				continue
			}
			// Straggler: launch r restarts at tauEst; the survivor is the
			// attempt with the smallest post-tauEst remaining time.
			w := t1 - p.TauEst
			for k := 0; k < r; k++ {
				if x := p.Task.Sample(rng); x < w {
					w = x
				}
			}
			totalTime += p.TauEst + float64(r)*(p.TauKill-p.TauEst) + w
			if p.TauEst+w > p.Deadline {
				jobMeets = false
			}
		}
		if jobMeets {
			met++
		}
	}
	return float64(met) / mcJobs, totalTime / mcJobs
}

func TestRestartVsMonteCarlo(t *testing.T) {
	p := testParams()
	for _, r := range []int{1, 2, 4} {
		gotP, gotT := mcRestart(p, r, 23)
		m := Restart{P: p}
		if wantP := m.PoCD(r); math.Abs(gotP-wantP) > mcTol {
			t.Errorf("r=%d: MC PoCD %v vs Theorem 3 %v", r, gotP, wantP)
		}
		wantT := m.MachineTime(r)
		if math.Abs(gotT-wantT)/wantT > mcTol {
			t.Errorf("r=%d: MC machine time %v vs Theorem 4 %v", r, gotT, wantT)
		}
	}
}

// mcResume simulates Speculative-Resume with oracle detection: stragglers
// are killed at tauEst and r+1 attempts resume the remaining (1-phi) work.
func mcResume(p Params, r int, seed uint64) (pocd, machineTime float64) {
	rng := pareto.NewStream(seed)
	phi := p.phi()
	met := 0
	var totalTime float64
	for j := 0; j < mcJobs; j++ {
		jobMeets := true
		for task := 0; task < p.N; task++ {
			t1 := p.Task.Sample(rng)
			if t1 <= p.Deadline {
				totalTime += t1
				continue
			}
			w := math.Inf(1)
			for k := 0; k <= r; k++ {
				if x := (1 - phi) * p.Task.Sample(rng); x < w {
					w = x
				}
			}
			totalTime += p.TauEst + float64(r)*(p.TauKill-p.TauEst) + w
			if p.TauEst+w > p.Deadline {
				jobMeets = false
			}
		}
		if jobMeets {
			met++
		}
	}
	return float64(met) / mcJobs, totalTime / mcJobs
}

func TestResumeVsMonteCarlo(t *testing.T) {
	p := testParams()
	p.PhiEst = 0.2
	for _, r := range []int{0, 1, 3} {
		gotP, gotT := mcResume(p, r, 37)
		m := Resume{P: p}
		if wantP := m.PoCD(r); math.Abs(gotP-wantP) > mcTol {
			t.Errorf("r=%d: MC PoCD %v vs Theorem 5 %v", r, gotP, wantP)
		}
		wantT := m.MachineTime(r)
		if math.Abs(gotT-wantT)/wantT > 2*mcTol {
			t.Errorf("r=%d: MC machine time %v vs Theorem 6 %v", r, gotT, wantT)
		}
	}
}

// TestRestartSurvivorNumericAgree cross-checks the closed-form survivor time
// against the direct quadrature fallback.
func TestRestartSurvivorNumericAgree(t *testing.T) {
	p := testParams()
	m := Restart{P: p}
	for _, r := range []int{1, 2, 5} {
		a := m.expectedSurvivorTime(r)
		b := m.survivorTimeNumeric(r)
		if math.Abs(a-b)/b > 1e-4 {
			t.Errorf("r=%d: closed-form survivor %v vs numeric %v", r, a, b)
		}
	}
}

// TestDegenerateDeadline exercises the clamped corner where a restarted
// attempt cannot finish before the deadline at all.
func TestDegenerateDeadline(t *testing.T) {
	p := testParams()
	p.TauEst = 95 // D - tauEst = 5 < tmin = 10
	p.TauKill = 97
	re := Restart{P: p}
	// Extra attempts are useless: PoCD must equal Hadoop-NS for any r.
	want := HadoopNSPoCD(p)
	for r := 0; r <= 3; r++ {
		if got := re.PoCD(r); math.Abs(got-want) > 1e-12 {
			t.Errorf("degenerate Restart PoCD(%d) = %v, want %v", r, got, want)
		}
	}
	// Machine time must still be finite and positive.
	if mt := re.MachineTime(2); mt <= 0 || math.IsInf(mt, 0) || math.IsNaN(mt) {
		t.Errorf("degenerate Restart MachineTime = %v", mt)
	}
}
