package cluster

import (
	"math"

	"chronos/internal/pareto"
)

// ContentionModel produces a slowdown factor (>= 1) for an attempt granted a
// container at time now on the given node. It stands in for the background
// "Stress" applications the paper injects on its testbed: co-scheduled load
// inflates task service times multiplicatively.
type ContentionModel interface {
	Slowdown(now float64, nodeID int, seed uint64) float64
}

// NoContention returns slowdown 1 everywhere.
type NoContention struct{}

// Slowdown implements ContentionModel.
func (NoContention) Slowdown(float64, int, uint64) float64 { return 1 }

// HotspotContention models a cluster where a fraction of placements land on
// busy nodes: with probability P the attempt is slowed by a factor drawn
// from 1 + Exp(Mean-1); otherwise it runs at full speed. This produces the
// sporadic, node-local stragglers observed in production traces.
type HotspotContention struct {
	// P is the probability a placement is contended.
	P float64
	// Mean is the mean slowdown factor of contended placements (> 1).
	Mean float64
}

// Slowdown implements ContentionModel.
func (h HotspotContention) Slowdown(now float64, nodeID int, seed uint64) float64 {
	rng := pareto.NewStream(seed)
	if rng.Float64() >= h.P {
		return 1
	}
	extra := h.Mean - 1
	if extra <= 0 {
		return 1
	}
	return 1 + rng.ExpFloat64()*extra
}

// DiurnalContention modulates a base slowdown sinusoidally with time,
// modelling cluster-wide load cycles: slowdown(t) = 1 + Amplitude *
// (1 + sin(2*pi*t/Period)) / 2, jittered per placement.
type DiurnalContention struct {
	// Amplitude is the peak extra slowdown (e.g. 0.5 = up to 1.5x).
	Amplitude float64
	// Period is the cycle length in simulation seconds.
	Period float64
	// Jitter adds a uniform [0, Jitter) per-placement component.
	Jitter float64
}

// Slowdown implements ContentionModel.
func (d DiurnalContention) Slowdown(now float64, nodeID int, seed uint64) float64 {
	base := 1.0
	if d.Period > 0 {
		base += d.Amplitude * (1 + math.Sin(2*math.Pi*now/d.Period)) / 2
	}
	if d.Jitter > 0 {
		base += pareto.NewStream(seed).Float64() * d.Jitter
	}
	return base
}
