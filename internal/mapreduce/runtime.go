package mapreduce

import (
	"fmt"

	"chronos/internal/cluster"
	"chronos/internal/pareto"
	"chronos/internal/sim"
)

// Config tunes runtime behaviour.
type Config struct {
	// Seed drives all workload randomness. Attempt samples are keyed by
	// (seed, job, task, attempt index) so different strategies observe
	// common random numbers.
	Seed uint64
	// KillSiblingsOnFinish, when set, kills a task's other attempts the
	// moment one attempt finishes (what production Hadoop does). When
	// unset, redundant attempts keep running until a strategy kills them —
	// the accounting assumed by the paper's closed-form cost expressions.
	KillSiblingsOnFinish bool
	// SpotIntegral, when non-nil, prices container occupancy against a
	// time-varying spot market: it must return the integral of the unit
	// price over [from, to]. Jobs then accrue SpotCost and Job.Cost
	// reports it instead of UnitPrice * MachineTime.
	SpotIntegral func(from, to float64) float64
	// ReportInterval, when > 0, makes estimators observe progress only
	// through periodic reports (every ReportInterval seconds after the
	// first report at JVM-ready), as real Hadoop AMs do. Zero means
	// continuous exact observation.
	ReportInterval float64
	// ReportNoise perturbs each reported progress value multiplicatively
	// by a relative Gaussian error (e.g. 0.1 = 10% stddev). Requires
	// ReportInterval > 0. This reproduces the estimation inaccuracy the
	// paper attributes to limited observation at small tauEst.
	ReportNoise float64
	// DiscardJobs, when set, stops the runtime from retaining submitted
	// jobs in Jobs(): the caller owns each *Job's lifetime. The streaming
	// replay engine sets this so that memory stays proportional to the
	// in-flight job count instead of the whole trace.
	DiscardJobs bool
}

// Runtime is the application-master-style execution core: it owns jobs,
// launches attempts on cluster containers, tracks completions and machine
// time, and calls into the per-job speculation strategy.
type Runtime struct {
	// Eng is the discrete-event engine driving the simulation.
	Eng *sim.Engine
	// Cluster supplies containers.
	Cluster *cluster.Cluster

	cfg  Config
	jobs []*Job
	// OnJobDone, if set, is invoked when a job's last task completes.
	OnJobDone func(*Job)
	// OnJobSettled, if set, is invoked once per job when its accounting
	// closes: the job is Done and no attempt still holds (or waits for) a
	// container, so MachineTime and Cost are final. Redundant attempts may
	// outlive job completion under the paper's accounting (they run until a
	// strategy kills them or they finish), which is why settlement — not
	// completion — is the instant a streaming consumer may read the job's
	// cost and release its state.
	OnJobSettled func(*Job)
}

// NewRuntime builds a runtime on the engine and cluster.
func NewRuntime(eng *sim.Engine, cl *cluster.Cluster, cfg Config) *Runtime {
	return &Runtime{Eng: eng, Cluster: cl, cfg: cfg}
}

// Jobs returns all submitted jobs.
func (rt *Runtime) Jobs() []*Job { return rt.jobs }

// Submit registers a job and schedules its strategy to start at the job's
// arrival time.
func (rt *Runtime) Submit(spec JobSpec, strat Strategy) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if strat == nil {
		return nil, fmt.Errorf("mapreduce: job %d submitted without a strategy", spec.ID)
	}
	job := &Job{Spec: spec, strategy: strat, rt: rt, ChosenR: -1, ChosenReduceR: -1}
	job.Tasks = make([]*Task, 0, spec.NumTasks+spec.Reduce.NumTasks)
	for i := 0; i < spec.NumTasks; i++ {
		job.Tasks = append(job.Tasks, &Task{Job: job, ID: i, Stage: StageMap})
	}
	for i := 0; i < spec.Reduce.NumTasks; i++ {
		job.Tasks = append(job.Tasks, &Task{Job: job, ID: spec.NumTasks + i, Stage: StageReduce})
	}
	if !rt.cfg.DiscardJobs {
		rt.jobs = append(rt.jobs, job)
	}
	ctl := &Controller{rt: rt, job: job}
	rt.Eng.Schedule(spec.Arrival, func() { strat.Start(ctl) })
	return job, nil
}

// launch creates an attempt for the task starting at startFrac of the split
// and requests a container for it.
func (rt *Runtime) launch(ctl *Controller, t *Task, startFrac float64) *Attempt {
	if startFrac < 0 || startFrac >= 1 {
		panic(fmt.Sprintf("mapreduce: launch with startFrac %v", startFrac))
	}
	if t.Stage == StageReduce && !t.Job.MapDone {
		panic(fmt.Sprintf("mapreduce: job %d launched reduce task %d before map completion",
			t.Job.Spec.ID, t.ID))
	}
	a := &Attempt{
		Task:        t,
		Index:       t.nextAttempt,
		State:       AttemptQueued,
		RequestTime: rt.Eng.Now(),
		StartFrac:   startFrac,
	}
	t.nextAttempt++
	t.Attempts = append(t.Attempts, a)
	t.Job.liveAttempts++

	rt.Cluster.Request(func(ctr *cluster.Container) {
		if a.State != AttemptQueued {
			// Killed while waiting; hand the container straight back.
			rt.Cluster.Release(ctr)
			return
		}
		rt.startAttempt(ctl, a, ctr)
	})
	return a
}

// startAttempt binds a granted container to the attempt, samples its
// execution characteristics, and schedules its completion.
func (rt *Runtime) startAttempt(ctl *Controller, a *Attempt, ctr *cluster.Container) {
	spec := a.Task.Job.Spec
	stream := pareto.NewStream(rt.cfg.Seed,
		uint64(spec.ID), uint64(a.Task.ID), uint64(a.Index))

	dist := spec.Dist
	if a.Task.Stage == StageReduce {
		dist = spec.Reduce.Dist
	}
	a.State = AttemptRunning
	a.LaunchTime = rt.Eng.Now()
	a.JVMDelay = spec.JVM.Sample(stream)
	a.Intrinsic = dist.Sample(stream)
	a.Slowdown = ctr.Slowdown
	a.container = ctr

	ctr.SetRevokeHandler(func() { rt.attemptLost(ctl, a) })
	a.finishTimer = rt.Eng.Schedule(a.FinishTime(), func() { rt.finishAttempt(ctl, a) })
}

// finishAttempt completes an attempt and, if it is the task's first
// completion, the task (and possibly the job).
func (rt *Runtime) finishAttempt(ctl *Controller, a *Attempt) {
	now := rt.Eng.Now()
	a.State = AttemptFinished
	a.EndTime = now
	rt.releaseAndCharge(a)
	a.Task.Job.liveAttempts--
	defer rt.maybeSettle(a.Task.Job)

	t := a.Task
	if t.Done {
		return
	}
	t.Done = true
	t.FinishTime = now
	job := t.Job
	job.doneTasks++
	if t.Stage == StageMap {
		job.doneMapTasks++
	}

	if rt.cfg.KillSiblingsOnFinish {
		for _, sib := range t.Attempts {
			if sib != a {
				rt.kill(sib)
			}
		}
	}
	if ctl.taskDone != nil {
		ctl.taskDone(t)
	}
	if !job.MapDone && job.doneMapTasks == job.Spec.NumTasks {
		job.MapDone = true
		job.MapFinishTime = now
		if ctl.mapStageDone != nil {
			ctl.mapStageDone()
		}
	}
	if job.doneTasks == len(job.Tasks) {
		job.Done = true
		job.FinishTime = now
		if ctl.jobDone != nil {
			ctl.jobDone()
		}
		if rt.OnJobDone != nil {
			rt.OnJobDone(job)
		}
	}
}

// kill terminates a queued or running attempt; finished/killed/failed
// attempts are left untouched. Returns whether the attempt was live.
func (rt *Runtime) kill(a *Attempt) bool {
	switch a.State {
	case AttemptQueued:
		a.State = AttemptKilled
		a.EndTime = rt.Eng.Now()
	case AttemptRunning:
		a.State = AttemptKilled
		a.EndTime = rt.Eng.Now()
		a.finishTimer.Cancel()
		rt.releaseAndCharge(a)
	default:
		return false
	}
	a.Task.Job.liveAttempts--
	rt.maybeSettle(a.Task.Job)
	return true
}

// attemptLost handles a node failure under a running attempt.
func (rt *Runtime) attemptLost(ctl *Controller, a *Attempt) {
	if a.State != AttemptRunning {
		return
	}
	a.State = AttemptFailed
	a.EndTime = rt.Eng.Now()
	a.finishTimer.Cancel()
	rt.releaseAndCharge(a)
	a.Task.Job.liveAttempts--
	if ctl.attemptLost != nil {
		ctl.attemptLost(a)
	}
	rt.maybeSettle(a.Task.Job)
}

// maybeSettle fires OnJobSettled exactly once, when the job is complete and
// its last live attempt has released (or abandoned) its container.
func (rt *Runtime) maybeSettle(job *Job) {
	if !job.Done || job.liveAttempts > 0 || job.settled {
		return
	}
	job.settled = true
	if rt.OnJobSettled != nil {
		rt.OnJobSettled(job)
	}
}

// releaseAndCharge returns the attempt's container and accrues its machine
// time (and spot cost, when spot pricing is configured) to the job.
func (rt *Runtime) releaseAndCharge(a *Attempt) {
	if a.container == nil {
		return
	}
	job := a.Task.Job
	job.MachineTime += rt.Eng.Now() - a.LaunchTime
	if rt.cfg.SpotIntegral != nil {
		job.SpotCost += rt.cfg.SpotIntegral(a.LaunchTime, rt.Eng.Now())
	}
	rt.Cluster.Release(a.container)
	a.container = nil
}
