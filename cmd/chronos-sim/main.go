// Command chronos-sim runs a trace-driven simulation of a strategy on a
// synthetic Google-like job stream and reports PoCD, cost, and utility —
// the scaled-up counterpart of the paper's 30-hour, 2700-job evaluation.
//
// Usage:
//
//	chronos-sim -strategy resume -jobs 270 -horizon 10800 -theta 1e-4 [-seed 1]
//	chronos-sim -strategy all    -jobs 270
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"chronos"
)

var strategies = map[string]chronos.Strategy{
	"clone":   chronos.Clone,
	"restart": chronos.SpeculativeRestart,
	"resume":  chronos.SpeculativeResume,
	"ns":      chronos.HadoopNS,
	"hadoop":  chronos.HadoopS,
	"mantri":  chronos.Mantri,
	"late":    chronos.LATE,
}

func main() {
	var (
		strategy = flag.String("strategy", "resume", "clone, restart, resume, ns, hadoop, mantri, late, or all")
		jobs     = flag.Int("jobs", 270, "number of trace jobs")
		horizon  = flag.Float64("horizon", 3*3600, "arrival horizon (seconds)")
		ratio    = flag.Float64("deadline-ratio", 2, "deadline as a multiple of mean task time")
		theta    = flag.Float64("theta", 1e-4, "PoCD/cost tradeoff factor")
		price    = flag.Float64("price", 1, "VM unit price C")
		seed     = flag.Uint64("seed", 1, "root random seed")
		nodes    = flag.Int("nodes", 2048, "cluster nodes (8 slots each)")
	)
	flag.Parse()
	if err := run(*strategy, *jobs, *horizon, *ratio, *theta, *price, *seed, *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "chronos-sim:", err)
		os.Exit(1)
	}
}

func run(strategy string, jobs int, horizon, ratio, theta, price float64, seed uint64, nodes int) error {
	stream, err := chronos.SyntheticTrace(chronos.TraceConfig{
		Jobs:           jobs,
		HorizonSeconds: horizon,
		DeadlineRatio:  ratio,
		Seed:           seed,
	})
	if err != nil {
		return err
	}
	totalTasks := 0
	for _, j := range stream {
		totalTasks += j.Tasks
	}
	fmt.Printf("trace: %d jobs, %d tasks, %.1f h horizon, deadline = %.1fx mean\n\n",
		len(stream), totalTasks, horizon/3600, ratio)

	names := []string{strategy}
	if strategy == "all" {
		names = names[:0]
		for n := range strategies {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	fmt.Printf("%-22s %-8s %-12s %-10s\n", "strategy", "PoCD", "mean cost", "utility")
	fmt.Println(strings.Repeat("-", 56))
	for _, name := range names {
		s, ok := strategies[name]
		if !ok {
			return fmt.Errorf("unknown strategy %q", name)
		}
		rep, err := chronos.Simulate(chronos.SimConfig{
			Strategy:     s,
			Seed:         seed,
			Econ:         chronos.Econ{Theta: theta, UnitPrice: price},
			Nodes:        nodes,
			SlotsPerNode: 8,
		}, stream)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %-8.3f %-12.1f %-10.3f\n", s, rep.PoCD, rep.MeanCost, rep.Utility)
	}
	return nil
}
