// batch_budget: sharing a speculation budget across concurrent jobs.
//
// The paper's system model (Section III) has M jobs in the datacenter at
// once. When the operator caps total machine time, granting a speculative
// copy to one job means denying it to another. This example plans a mixed
// batch — tight-deadline interactive jobs next to slack batch jobs — under
// a range of budgets and shows where the extra attempts go.
//
// Run with:
//
//	go run ./examples/batch_budget
package main

import (
	"fmt"
	"log"

	"chronos"
)

func main() {
	// Three concurrent jobs with very different deadline pressure.
	jobs := []chronos.BatchJob{
		{
			// An interactive dashboard query: tight deadline.
			Strategy: chronos.SpeculativeResume,
			Params: chronos.JobParams{
				Tasks: 20, Deadline: 60, TMin: 12, Beta: 1.3,
				TauEst: 18, TauKill: 36,
			},
		},
		{
			// An hourly report: moderate deadline.
			Strategy: chronos.SpeculativeResume,
			Params: chronos.JobParams{
				Tasks: 40, Deadline: 240, TMin: 15, Beta: 1.5,
				TauEst: 72, TauKill: 144,
			},
		},
		{
			// A nightly batch job: slack deadline.
			Strategy: chronos.Clone,
			Params: chronos.JobParams{
				Tasks: 80, Deadline: 2400, TMin: 20, Beta: 1.7,
				TauEst: 0, TauKill: 720,
			},
		},
	}
	labels := []string{"interactive (D=60s)", "hourly (D=240s)", "nightly (D=2400s)"}

	// The floor: running everything once, with no speculation at all.
	var floor float64
	for _, j := range jobs {
		mt, err := chronos.ExpectedMachineTime(j.Strategy, j.Params, 0)
		if err != nil {
			log.Fatal(err)
		}
		floor += mt
	}
	fmt.Printf("r=0 floor: %.0f machine-seconds for the whole batch\n\n", floor)

	for _, headroom := range []float64{1.05, 1.2, 1.5, 2.0} {
		budget := floor * headroom
		plans, err := chronos.PlanBatch(jobs, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %.0f (%.0f%% headroom):\n", budget, (headroom-1)*100)
		for i, p := range plans {
			fmt.Printf("  %-22s r=%d  PoCD=%.4f  machine=%.0f\n",
				labels[i], p.R, p.PoCD, p.MachineTime)
		}
		fmt.Println()
	}
}
