package speculate

import (
	"math"
	"sort"

	"chronos/internal/mapreduce"
)

// LATE implements the LATE scheduler (Zaharia et al., OSDI'08) as an
// additional baseline: speculate on the task with the Longest Approximate
// Time to End, but only if its progress rate is below the SlowTaskThreshold
// percentile, and keep the number of concurrent speculative attempts under
// SpeculativeCap. LATE is not part of the paper's evaluation tables but is
// the lineage baseline Mantri and Chronos are positioned against.
type LATE struct {
	// CheckInterval is the monitoring period (default 5 s).
	CheckInterval float64
	// SlowTaskThreshold is the progress-rate percentile below which a task
	// qualifies for speculation (default 0.25, per the LATE paper).
	SlowTaskThreshold float64
	// SpeculativeCap bounds concurrently running speculative attempts per
	// job (default 10% of tasks, minimum 1).
	SpeculativeCap int
}

var _ mapreduce.Strategy = LATE{}

// Name implements mapreduce.Strategy.
func (LATE) Name() string { return "LATE" }

// Start implements mapreduce.Strategy.
func (l LATE) Start(ctl *mapreduce.Controller) {
	if l.CheckInterval <= 0 {
		l.CheckInterval = 5
	}
	if l.SlowTaskThreshold <= 0 {
		l.SlowTaskThreshold = 0.25
	}
	job := ctl.Job()
	if l.SpeculativeCap <= 0 {
		l.SpeculativeCap = len(job.Tasks) / 10
		if l.SpeculativeCap < 1 {
			l.SpeculativeCap = 1
		}
	}
	launchStaged(ctl)
	relaunchOnLoss(ctl)
	killLeftoversOnTaskDone(ctl)

	var tick func()
	tick = func() {
		if job.Done {
			return
		}
		l.pass(ctl)
		ctl.After(l.CheckInterval, tick)
	}
	ctl.After(l.CheckInterval, tick)
}

// pass runs one LATE monitoring cycle.
func (l LATE) pass(ctl *mapreduce.Controller) {
	job := ctl.Job()
	now := ctl.Now()

	// Collect progress rates of all original attempts that have reported.
	type cand struct {
		task *mapreduce.Task
		rate float64
		est  float64
	}
	var rates []float64
	var cands []cand
	speculating := 0
	for _, t := range job.Tasks {
		if len(t.Attempts) > 1 {
			// Count live speculative copies toward the cap.
			for _, a := range t.Attempts[1:] {
				if a.State == mapreduce.AttemptRunning || a.State == mapreduce.AttemptQueued {
					speculating++
				}
			}
		}
		if t.Done || len(t.Attempts) != 1 {
			continue
		}
		a := t.Attempts[0]
		if !a.Running() {
			continue
		}
		elapsed := now - a.LaunchTime
		if elapsed <= 0 {
			continue
		}
		rate := a.OwnProgress(now) / elapsed
		rates = append(rates, rate)
		est := mapreduce.HadoopEstimator(a, now)
		if math.IsInf(est, 1) {
			est = math.MaxFloat64
		}
		cands = append(cands, cand{task: t, rate: rate, est: est})
	}
	if len(cands) == 0 || speculating >= l.SpeculativeCap {
		return
	}

	// Slow-task threshold: rate below the configured percentile.
	sort.Float64s(rates)
	cut := rates[int(float64(len(rates))*l.SlowTaskThreshold)]

	// Speculate on the slow task with the longest approximate time to end.
	var pick *cand
	for i := range cands {
		c := &cands[i]
		if c.rate > cut {
			continue
		}
		if pick == nil || c.est > pick.est {
			pick = c
		}
	}
	if pick != nil {
		ctl.Launch(pick.task, 0)
	}
}
