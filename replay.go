package chronos

import (
	"context"

	"chronos/internal/cluster"
	"chronos/internal/mapreduce"
	"chronos/internal/optimize"
	"chronos/internal/replay"
	"chronos/internal/sim"
)

// The streaming replay API re-exports the internal event vocabulary so
// library consumers, the CLIs, and the chronosd NDJSON endpoint share one
// wire format.
type (
	// ReplayEvent is one entry of the event stream.
	ReplayEvent = replay.Event
	// ReplayEventKind discriminates stream entries.
	ReplayEventKind = replay.Kind
	// ReplayJobEvent identifies the subject job of an event.
	ReplayJobEvent = replay.JobEvent
	// ReplayOutcome is the settled accounting of a completed job.
	ReplayOutcome = replay.Outcome
	// ReplayWindow is one periodic aggregate.
	ReplayWindow = replay.Window
	// ReplaySummary is the cumulative aggregate view of a stream.
	ReplaySummary = replay.Summary
	// ReplayObserver receives events in emission order; returning an error
	// aborts the replay.
	ReplayObserver = replay.Observer
	// ReplayObserverFunc adapts a function to ReplayObserver.
	ReplayObserverFunc = replay.ObserverFunc
)

// The streamed event kinds.
const (
	EventJobPlanned      = replay.KindJobPlanned
	EventJobCompleted    = replay.KindJobCompleted
	EventWindowSummary   = replay.KindWindowSummary
	EventReplaySummary   = replay.KindReplaySummary
	EventBudgetExhausted = replay.KindBudgetExhausted
	EventError           = replay.KindError
)

// ReplayOptions tunes the streaming side of a replay; the simulation physics
// come from SimConfig.
type ReplayOptions struct {
	// WindowSeconds is the sim-time width of window_summary events; zero
	// disables them.
	WindowSeconds float64
	// Observer receives every event; nil folds aggregates only.
	Observer ReplayObserver
	// MaxOpenTasks aborts the replay when in-flight (submitted, unsettled)
	// jobs hold more than this many tasks; zero means unlimited. Serving
	// layers use it to bound one stream's memory, which is proportional to
	// in-flight tasks.
	MaxOpenTasks int
}

// Replay executes the job stream incrementally on the discrete-event
// cluster, emitting job_planned, job_completed and window_summary events as
// they happen, and returns the same Report a one-shot Simulate of the stream
// would. Jobs are materialized at their arrival instants and released when
// their accounting settles, so memory tracks the in-flight job count, not
// the trace length. Cancelling ctx stops the replay between events.
func Replay(ctx context.Context, cfg SimConfig, jobs []SimJob, opts ReplayOptions) (Report, error) {
	rt, rjobs, err := buildReplay(cfg.withDefaults(), jobs)
	if err != nil {
		return Report{}, err
	}
	sum, err := replay.Run(ctx, rt, rjobs, replay.Config{
		WindowSeconds: opts.WindowSeconds,
		MaxOpenTasks:  opts.MaxOpenTasks,
	}, opts.Observer)
	if err != nil {
		return Report{}, err
	}
	return reportFromSummary(sum, cfg.withDefaults()), nil
}

// buildReplay assembles the engine, cluster, runtime and per-job specs and
// strategies for one run of the stream. cfg must already have defaults.
func buildReplay(cfg SimConfig, jobs []SimJob) (*mapreduce.Runtime, []replay.Job, error) {
	eng := sim.NewEngine()
	var contention cluster.ContentionModel
	if cfg.ContentionP > 0 && cfg.ContentionMean > 1 {
		contention = cluster.HotspotContention{P: cfg.ContentionP, Mean: cfg.ContentionMean}
	}
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:        cfg.Nodes,
		SlotsPerNode: cfg.SlotsPerNode,
		Contention:   contention,
		Seed:         cfg.Seed ^ 0xBEEF,
	})
	if err != nil {
		return nil, nil, err
	}
	rtCfg := mapreduce.Config{
		Seed:           cfg.Seed,
		ReportInterval: cfg.ReportInterval,
		ReportNoise:    cfg.ReportNoise,
		DiscardJobs:    true,
	}
	if cfg.Spot != nil {
		series, err := cfg.spotSeries(jobs)
		if err != nil {
			return nil, nil, err
		}
		rtCfg.SpotIntegral = series.Integral
	}
	rt := mapreduce.NewRuntime(eng, cl, rtCfg)

	if cfg.Failures != nil && cfg.Failures.MTBF > 0 {
		horizon := 0.0
		for _, j := range jobs {
			if end := j.Arrival + 20*j.Deadline; end > horizon {
				horizon = end
			}
		}
		cluster.FailureInjector{
			MTBF:    cfg.Failures.MTBF,
			MTTR:    cfg.Failures.MTTR,
			Horizon: horizon,
			Seed:    cfg.Seed ^ 0xFA11,
		}.Install(eng, cl)
	}

	rjobs := make([]replay.Job, len(jobs))
	for i, j := range jobs {
		spec, err := j.spec(i, cfg)
		if err != nil {
			return nil, nil, err
		}
		strat, err := cfg.strategyFor(j)
		if err != nil {
			return nil, nil, err
		}
		rjobs[i] = replay.Job{Spec: spec, Strategy: strat}
	}
	return rt, rjobs, nil
}

// reportFromSummary folds the stream aggregates into the one-shot report.
func reportFromSummary(sum ReplaySummary, cfg SimConfig) Report {
	hist := sum.RHistogram
	if len(hist) == 0 {
		hist = map[int]int{}
	}
	econ := optimize.Config(cfg.Econ)
	return Report{
		Jobs:            sum.Jobs,
		PoCD:            sum.PoCD,
		MeanMachineTime: sum.MeanMachineTime,
		MeanCost:        sum.MeanCost,
		Utility:         econ.UtilityFromMeasured(sum.PoCD, sum.MeanCost),
		RHistogram:      hist,
	}
}
