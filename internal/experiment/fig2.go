package experiment

import (
	"math"

	"chronos/internal/mapreduce"
	"chronos/internal/metrics"
	"chronos/internal/optimize"
	"chronos/internal/speculate"
	"chronos/internal/workload"
)

// Fig2Config parameterizes the testbed-style experiment of Figure 2:
// 100 jobs of 10 tasks per benchmark; deadlines 100 s (Sort, TeraSort) and
// 150 s (SecondarySort, WordCount); tauEst = 40 s, tauKill = 80 s;
// theta = 1e-4; Rmin = measured PoCD of Hadoop-NS.
type Fig2Config struct {
	// Jobs is the number of jobs per benchmark (paper: 100).
	Jobs int
	// Tasks is the number of map tasks per job (paper: 10).
	Tasks int
	// TauEst and TauKill are the Chronos control instants (paper: 40, 80).
	TauEst, TauKill float64
	// Theta is the tradeoff factor (paper: 1e-4).
	Theta float64
	// UnitPrice is the per-machine-second VM price C.
	UnitPrice float64
	// JobSpacing separates consecutive job arrivals (seconds).
	JobSpacing float64
}

// DefaultFig2Config reproduces the paper's settings.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		Jobs:       100,
		Tasks:      10,
		TauEst:     40,
		TauKill:    80,
		Theta:      1e-4,
		UnitPrice:  1,
		JobSpacing: 400,
	}
}

// Fig2Row is one (benchmark, strategy) cell of Figures 2(a)-(c).
type Fig2Row struct {
	Benchmark string
	Strategy  string
	PoCD      float64
	Cost      float64
	Utility   float64
	RHist     *metrics.Histogram
}

// RunFigure2 executes the five strategies on the four benchmarks and
// returns rows in (benchmark, strategy) order. The Hadoop-NS PoCD of each
// benchmark is used as that benchmark's Rmin, so Hadoop-NS's own utility is
// -Inf, exactly as in Figure 2(c).
func RunFigure2(r Runner, cfg Fig2Config) ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, prof := range workload.Profiles() {
		specs := fig2Specs(prof, cfg)
		ccfg := speculate.ChronosConfig{
			TauEst:  cfg.TauEst,
			TauKill: cfg.TauKill,
			Opt:     optimize.Config{Theta: cfg.Theta, UnitPrice: cfg.UnitPrice},
			FixedR:  -1,
		}
		strategies := []mapreduce.Strategy{
			speculate.HadoopNS{},
			speculate.HadoopS{},
			speculate.Clone{Config: ccfg},
			speculate.Restart{Config: ccfg},
			speculate.Resume{Config: ccfg},
		}

		var rmin float64
		for _, strat := range strategies {
			subs := make([]submission, len(specs))
			for i, spec := range specs {
				subs[i] = submission{spec: spec, strat: strat}
			}
			stats, err := r.run(strat.Name(), subs)
			if err != nil {
				return nil, err
			}
			if strat.Name() == "Hadoop-NS" {
				rmin = stats.PoCD()
				// Keep Rmin strictly below 1 so feasible strategies exist.
				if rmin >= 1 {
					rmin = 1 - 1e-6
				}
			}
			ucfg := optimize.Config{Theta: cfg.Theta, UnitPrice: cfg.UnitPrice, RMin: rmin}
			pocd := stats.PoCD()
			utility := ucfg.UtilityFromMeasured(pocd, stats.MeanCost())
			if strat.Name() == "Hadoop-NS" {
				utility = math.Inf(-1) // R == Rmin by construction
			}
			rows = append(rows, Fig2Row{
				Benchmark: prof.Name,
				Strategy:  strat.Name(),
				PoCD:      pocd,
				Cost:      stats.MeanCost(),
				Utility:   utility,
				RHist:     stats.RHistogram(),
			})
		}
	}
	return rows, nil
}

// fig2Specs builds the job stream for one benchmark.
func fig2Specs(prof workload.Profile, cfg Fig2Config) []mapreduce.JobSpec {
	specs := make([]mapreduce.JobSpec, cfg.Jobs)
	for i := range specs {
		specs[i] = prof.JobSpec(i, cfg.Tasks, cfg.UnitPrice, float64(i)*cfg.JobSpacing)
	}
	return specs
}

// Fig2Table renders the rows as the three-column table of Figure 2.
func Fig2Table(rows []Fig2Row) *metrics.Table {
	t := metrics.NewTable("Benchmark", "Strategy", "PoCD", "Cost", "Utility")
	for _, row := range rows {
		t.AddRow(row.Benchmark, row.Strategy,
			metrics.FormatFloat(row.PoCD, 3),
			metrics.FormatFloat(row.Cost, 1),
			metrics.FormatFloat(row.Utility, 3))
	}
	return t
}
