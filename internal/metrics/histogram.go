package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts integer-valued observations (the optimal-r values of
// Figure 5).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add counts one observation.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the frequency of v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Mode returns the most frequent value (smallest wins ties); ok is false
// for an empty histogram.
func (h *Histogram) Mode() (v int, ok bool) {
	best, bestCount := 0, -1
	for _, k := range h.Keys() {
		if c := h.counts[k]; c > bestCount {
			best, bestCount = k, c
		}
	}
	return best, bestCount >= 0
}

// Keys returns the observed values in ascending order.
func (h *Histogram) Keys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Mean returns the average observation.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for k, c := range h.counts {
		sum += float64(k * c)
	}
	return sum / float64(h.total)
}

// String renders "v:count" pairs in ascending order.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, k := range h.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", k, h.counts[k])
	}
	return b.String()
}
