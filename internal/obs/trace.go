// Package obs is chronosd's request-scoped observability layer: trace IDs
// that follow a request across replicas, a lock-free per-stage span recorder
// for the serving hot path, a ring buffer of recent slow traces, and the
// pprof/trace debug surface. The serving layer (internal/server) threads a
// *Trace through every handler; this package owns the vocabulary so the
// server, the CLIs, and future fleet subsystems (gossip membership, escrow
// ledger) log and trace through one mechanism.
package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// TraceHeader carries a request's trace ID across forward hops and back to
// the client on every response. An inbound value is honored (after
// sanitizing) so callers and upstream proxies can stitch chronosd spans into
// their own traces; absent or unusable values get a freshly minted ID.
const TraceHeader = "X-Chronosd-Trace-Id"

// Stage indexes one instrumented phase of the serving hot path. Stages are
// accumulated, not exclusive: a batch request records many Solve spans, a
// forwarded request records the whole peer round trip under StageForward.
type Stage uint8

const (
	// StageQuantize is plan-key construction: float quantization plus
	// formatting of the cache/ring key.
	StageQuantize Stage = iota
	// StageCache is a sharded plan-cache lookup.
	StageCache
	// StageSolve is an Algorithm 1 optimization (cache miss, batch strategy
	// selection, or a budget-capped re-solve).
	StageSolve
	// StageDebit is a tenant-ledger debit attempt.
	StageDebit
	// StageEscrow is an escrow-lease round trip to the tenant's pool owner
	// (a synchronous top-up on the admit path, request out through response
	// body read).
	StageEscrow
	// StageForward is a cross-replica forward round trip (request out
	// through response body read).
	StageForward
	// StageReplayEmit is NDJSON replay-event encoding, write, and flush.
	StageReplayEmit
	// StageFlightWait is time a cold plan request spent parked behind another
	// request's in-flight solve for the same plan key (singleflight waiter).
	StageFlightWait
	// StageHeartbeat is one full health-monitor probe round over the
	// configured membership (not request-scoped; observed directly into the
	// stage histogram by the monitor goroutine).
	StageHeartbeat
	// StageHandoff is one warm cache handoff after a membership change:
	// dump, ownership diff, and the pushes to every new owner.
	StageHandoff

	// NumStages sizes per-stage arrays; keep it last.
	NumStages
)

var stageNames = [NumStages]string{
	"quantize", "cache", "solve", "debit", "escrow", "forward", "replay_emit",
	"flight_wait", "heartbeat", "handoff",
}

// String returns the stable label used in logs, metrics, and /debug/traces.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Trace is one request's span recorder. Stage observations are lock-free
// atomic accumulations (matching the internal/metrics style), so concurrent
// workers of one request — the batch fan-out — can record without
// interleaving or locking; the identity fields are written only by the
// request's own handler goroutine. A nil *Trace is valid everywhere and
// records nothing, so library call paths without a request context stay
// uninstrumented at zero cost.
type Trace struct {
	// ID is the request's trace ID: honored from the inbound TraceHeader or
	// minted at the edge.
	ID string
	// Route is the stable endpoint label ("/v1/plan", ...).
	Route string

	start  time.Time
	nanos  [NumStages]atomic.Int64
	counts [NumStages]atomic.Int64

	// Single-writer metadata (handler goroutine only).
	tenant string
	cached int8 // 0 unknown, 1 miss, 2 hit
}

// NewTrace starts a trace for route, honoring id when it is usable and
// minting otherwise.
func NewTrace(id, route string) *Trace {
	if !ValidID(id) {
		id = MintID()
	}
	return &Trace{ID: id, Route: route, start: time.Now()}
}

// Observe adds one stage span of duration d.
func (t *Trace) Observe(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.nanos[s].Add(int64(d))
	t.counts[s].Add(1)
}

// SetTenant records the budget pool the request was routed through. Handler
// goroutine only.
func (t *Trace) SetTenant(name string) {
	if t != nil {
		t.tenant = name
	}
}

// SetCached records whether the plan came from the cache. Handler goroutine
// only.
func (t *Trace) SetCached(hit bool) {
	if t == nil {
		return
	}
	if hit {
		t.cached = 2
	} else {
		t.cached = 1
	}
}

// Finish snapshots the trace once the response is written. status is the
// HTTP status, servedBy the replica that computed the answer (from the
// response header, empty when sharding is off), and forwardHop reports
// whether the request arrived already forwarded from a peer.
func (t *Trace) Finish(status int, elapsed time.Duration, servedBy string, forwardHop bool) *Snapshot {
	if t == nil {
		return nil
	}
	snap := &Snapshot{
		ID:         t.ID,
		Route:      t.Route,
		Status:     status,
		Start:      t.start,
		Seconds:    elapsed.Seconds(),
		Tenant:     t.tenant,
		ServedBy:   servedBy,
		ForwardHop: forwardHop,
	}
	if t.cached != 0 {
		hit := t.cached == 2
		snap.Cached = &hit
	}
	for s := Stage(0); s < NumStages; s++ {
		snap.StageNanos[s] = t.nanos[s].Load()
		snap.StageCounts[s] = t.counts[s].Load()
	}
	return snap
}

// Snapshot is the immutable record of one finished request: what /debug/traces
// serves and the request log line is built from. Stage data is kept as flat
// arrays so snapshotting stays one allocation on the hot path; MarshalJSON
// expands them into a keyed object for human consumption.
type Snapshot struct {
	ID         string
	Route      string
	Status     int
	Start      time.Time
	Seconds    float64
	Tenant     string
	Cached     *bool
	ServedBy   string
	ForwardHop bool
	StageNanos [NumStages]int64
	// StageCounts holds per-stage observation counts; for a well-formed
	// single-plan request each instrumented stage fires at most once, so a
	// higher count signals fan-out (batch) or retries.
	StageCounts [NumStages]int64
}

// StageSeconds returns the accumulated seconds spent in stage s.
func (sn *Snapshot) StageSeconds(s Stage) float64 {
	return float64(sn.StageNanos[s]) / 1e9
}

// ctxKey keys the trace in a request context.
type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil when the request is not
// traced (library callers, untraced test paths).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// MintID returns a fresh 128-bit lowercase-hex trace ID. IDs need collision
// resistance across a fleet, not unpredictability, so the process-seeded
// math/rand/v2 generator is enough and keeps minting off the hot path's
// syscall budget.
func MintID() string {
	var b [16]byte
	hi, lo := rand.Uint64(), rand.Uint64()
	for i := 0; i < 8; i++ {
		b[i] = byte(hi >> (56 - 8*i))
		b[8+i] = byte(lo >> (56 - 8*i))
	}
	return hex.EncodeToString(b[:])
}

// maxIDLen bounds honored inbound trace IDs; anything longer is replaced,
// keeping log lines and headers from amplifying attacker-chosen payloads.
const maxIDLen = 64

// ValidID reports whether an inbound trace ID is safe to honor: 1..64
// characters from [0-9A-Za-z._-]. Everything else — empty, oversized, or
// containing header/log-breaking bytes — gets a minted replacement.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > maxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}
