// Package replay is the incremental trace-replay core: it executes a stream
// of MapReduce jobs on the discrete-event cluster and emits typed per-job
// events (job_planned, job_completed, periodic window_summary aggregates)
// through an observer interface instead of accumulating one batch report.
// The root chronos.Simulate call, the CLIs, and the chronosd /v1/replay
// NDJSON endpoint are all thin consumers of this engine.
//
// The engine submits jobs lazily at their arrival instants and releases each
// job when its accounting settles, so memory stays proportional to the
// number of in-flight jobs rather than the trace length — long-horizon
// online studies do not need a job-count ceiling.
package replay

import (
	"context"
	"fmt"
	"math"
	"sort"

	"chronos/internal/mapreduce"
)

// maxWindowOrdinal bounds window ordinals to the range where float64 still
// resolves consecutive integers; past it, window arithmetic is meaningless.
const maxWindowOrdinal = 1 << 52

// Job pairs one stream entry's immutable spec with its driving strategy.
type Job struct {
	Spec     mapreduce.JobSpec
	Strategy mapreduce.Strategy
}

// Config tunes one replay run.
type Config struct {
	// WindowSeconds is the sim-time width of window_summary aggregates;
	// zero or negative disables them.
	WindowSeconds float64
	// PollEvery is the number of engine steps between context-cancellation
	// checks. Zero means 64. Cancellation is also observed at every emitted
	// event, so an idle stretch of the event queue cannot outrun it by
	// more than this many steps.
	PollEvery int
	// MaxOpenTasks aborts the replay when the tasks of in-flight
	// (submitted, unsettled) jobs exceed it; zero means unlimited. The
	// engine's memory is proportional to in-flight tasks, so a serving
	// layer sets this to keep one hostile trace (every job arriving at
	// once) from materializing the whole stream in memory.
	MaxOpenTasks int
}

// Run replays jobs on the runtime's engine and cluster, emitting events to
// obs (which may be nil for aggregate-only runs). It returns the final
// aggregates, or the first error from the observer, the context, or a
// stalled stream. The runtime must have been built with DiscardJobs; Run
// owns its OnJobSettled hook.
func Run(ctx context.Context, rt *mapreduce.Runtime, jobs []Job, cfg Config, obs Observer) (Summary, error) {
	if len(jobs) == 0 {
		return Summary{}, fmt.Errorf("replay: no jobs to replay")
	}
	pollEvery := cfg.PollEvery
	if pollEvery <= 0 {
		pollEvery = 64
	}
	for i, j := range jobs {
		if err := j.Spec.Validate(); err != nil {
			return Summary{}, err
		}
		if j.Strategy == nil {
			return Summary{}, fmt.Errorf("replay: job %d has no strategy", i)
		}
	}

	r := &run{
		rt:      rt,
		obs:     obs,
		rHist:   make(map[int]int),
		jobMT:   make([]float64, len(jobs)),
		jobCost: make([]float64, len(jobs)),
		byID:    make(map[int]int, len(jobs)),
	}
	for i, j := range jobs {
		if _, dup := r.byID[j.Spec.ID]; dup {
			return Summary{}, fmt.Errorf("replay: duplicate job ID %d", j.Spec.ID)
		}
		r.byID[j.Spec.ID] = i
	}

	// Lazy submission: one tiny timer per job materializes the job's task
	// and attempt state only when the stream reaches its arrival. Stable
	// arrival order keeps same-instant submissions in slice order, which
	// preserves the cluster-request ordering of the one-shot simulator.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	stableSortByArrival(order, jobs)
	eng := rt.Eng
	for _, idx := range order {
		j := jobs[idx]
		eng.Schedule(j.Spec.Arrival, func() {
			tasks := j.Spec.NumTasks + j.Spec.Reduce.NumTasks
			if cfg.MaxOpenTasks > 0 && r.openTasks+tasks > cfg.MaxOpenTasks && r.err == nil {
				r.err = fmt.Errorf(
					"replay: %d tasks in flight at t=%g would exceed the %d-task limit; spread arrivals or shrink jobs",
					r.openTasks+tasks, eng.Now(), cfg.MaxOpenTasks)
				return
			}
			job, err := rt.Submit(j.Spec, j.Strategy)
			if err != nil {
				// Specs were validated up front; a submit failure here is a
				// programming error worth surfacing loudly.
				panic(fmt.Sprintf("replay: submit job %d: %v", j.Spec.ID, err))
			}
			r.submitted++
			r.openTasks += tasks
			// The strategy's Start event was scheduled by Submit at this
			// same instant; this follow-up fires right after it, when the
			// plan (ChosenR) is recorded.
			eng.Schedule(eng.Now(), func() { r.emitPlanned(job, j.Strategy) })
		})
	}
	rt.OnJobSettled = func(job *mapreduce.Job) { r.settle(job) }

	// Drive the engine event by event so windows, cancellation, and
	// observer aborts interleave deterministically with the simulation.
	// Window boundaries derive from an integer ordinal (width * k), not a
	// float accumulator, so indices never collide under rounding.
	windowW := cfg.WindowSeconds
	windowK := 1
	steps := 0
	for r.settled < len(jobs) && r.err == nil {
		if steps%pollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return r.summary(), err
			}
		}
		steps++
		next, ok := eng.NextAt()
		if !ok {
			break
		}
		if windowW > 0 && windowW*float64(windowK) < next {
			// Events at exactly a boundary belong to the window that the
			// boundary closes, so summaries wait until the queue has moved
			// strictly past it. Only the first boundary in an event gap can
			// be non-quiet; the rest are skipped arithmetically, so a tiny
			// width cannot turn one gap into an unbounded ordinal walk.
			r.emitWindow(windowK, windowW)
			kf := math.Ceil(next / windowW)
			if kf >= maxWindowOrdinal {
				// Ordinals beyond float precision: no meaningful windows
				// remain, stop emitting them.
				windowW = 0
			} else {
				if k := int(kf); k > windowK {
					windowK = k
				} else {
					windowK++
				}
				for windowW > 0 && windowW*float64(windowK) < next {
					windowK++ // float-rounding guard; at most a step or two
				}
			}
		}
		if !eng.Step() {
			break
		}
	}
	if r.err != nil {
		return r.summary(), r.err
	}
	if err := ctx.Err(); err != nil {
		return r.summary(), err
	}
	if r.settled < len(jobs) {
		return r.summary(), fmt.Errorf(
			"replay: stream stalled with %d of %d jobs settled (cluster too small for the open jobs?)",
			r.settled, len(jobs))
	}
	// The final aggregates re-sum the per-job scalars in stream order, so
	// the fold is bit-identical to the one-shot simulator's post-run pass
	// regardless of the order jobs settled in.
	sum := r.summary()
	sum.MeanMachineTime, sum.MeanCost = 0, 0
	var mt, cost float64
	for i := range jobs {
		mt += r.jobMT[i]
		cost += r.jobCost[i]
	}
	if n := float64(r.settled); n > 0 {
		sum.MeanMachineTime = mt / n
		sum.MeanCost = cost / n
	}
	sum.RHistogram = r.rHist
	ev := &Event{Kind: KindReplaySummary, Time: eng.Now(), Summary: &sum}
	r.emit(ev)
	return sum, r.err
}

// run is the mutable state of one replay.
type run struct {
	rt  *mapreduce.Runtime
	obs Observer
	err error
	seq uint64

	submitted   int
	settled     int
	met         int
	openTasks   int
	machineTime float64
	cost        float64
	rHist       map[int]int
	// jobMT and jobCost record per-job scalars by stream index (byID maps
	// spec ID to index) so the final report can sum them in stream order —
	// float addition is order-sensitive and the one-shot report contract is
	// bit-identical results for a fixed seed.
	jobMT   []float64
	jobCost []float64
	byID    map[int]int

	// windowSettled and windowSubs snapshot the counters at the last
	// window boundary, for per-window deltas.
	windowSettled int
	windowSubs    int
}

// emit hands one event to the observer, assigning its sequence number. The
// first observer error latches and aborts the run loop.
func (r *run) emit(ev *Event) {
	ev.Seq = r.seq
	r.seq++
	if r.obs == nil || r.err != nil {
		return
	}
	if err := r.obs.OnEvent(ev); err != nil {
		r.err = err
	}
}

// emitPlanned reports a submitted job's chosen plan.
func (r *run) emitPlanned(job *mapreduce.Job, strat mapreduce.Strategy) {
	r.emit(&Event{
		Kind: KindJobPlanned,
		Time: r.rt.Eng.Now(),
		Job:  jobEvent(job, strat.Name()),
	})
}

// settle folds one settled job into the aggregates and reports it.
func (r *run) settle(job *mapreduce.Job) {
	r.settled++
	r.openTasks -= job.Spec.NumTasks + job.Spec.Reduce.NumTasks
	if job.MetDeadline() {
		r.met++
	}
	r.machineTime += job.MachineTime
	r.cost += job.Cost()
	if i, ok := r.byID[job.Spec.ID]; ok {
		r.jobMT[i] = job.MachineTime
		r.jobCost[i] = job.Cost()
	}
	if job.ChosenR >= 0 {
		r.rHist[job.ChosenR]++
	}
	pocd := float64(r.met) / float64(r.settled)
	r.emit(&Event{
		Kind: KindJobCompleted,
		Time: r.rt.Eng.Now(),
		Job:  jobEvent(job, job.StrategyName()),
		Outcome: &Outcome{
			Finish:      job.FinishTime,
			MetDeadline: job.MetDeadline(),
			Lateness:    job.FinishTime - job.Deadline(),
			MachineTime: job.MachineTime,
			Cost:        job.Cost(),
		},
		PoCD: &pocd,
	})
}

// emitWindow closes window ordinal k (spanning ((k-1)*width, k*width]),
// skipping quiet ones.
func (r *run) emitWindow(k int, width float64) {
	settled, subs := r.settled-r.windowSettled, r.submitted-r.windowSubs
	r.windowSettled = r.settled
	r.windowSubs = r.submitted
	if settled == 0 && subs == 0 {
		return
	}
	r.emit(&Event{
		Kind: KindWindowSummary,
		Time: width * float64(k),
		Window: &Window{
			Index:     k - 1,
			Start:     width * float64(k-1),
			End:       width * float64(k),
			Completed: settled,
			Running:   r.summary(),
		},
	})
}

// summary snapshots the cumulative aggregates.
func (r *run) summary() Summary {
	s := Summary{
		Jobs:      r.settled,
		Submitted: r.submitted,
		Met:       r.met,
	}
	if r.settled > 0 {
		n := float64(r.settled)
		s.PoCD = float64(r.met) / n
		s.MeanMachineTime = r.machineTime / n
		s.MeanCost = r.cost / n
	}
	return s
}

// jobEvent builds the identifying payload for one job.
func jobEvent(job *mapreduce.Job, strategy string) *JobEvent {
	je := &JobEvent{
		ID:          job.Spec.ID,
		Strategy:    strategy,
		Tasks:       job.Spec.NumTasks,
		ReduceTasks: job.Spec.Reduce.NumTasks,
		Arrival:     job.Spec.Arrival,
		Deadline:    job.Spec.Deadline,
	}
	if r := job.ChosenR; r >= 0 {
		je.R = &r
	}
	if r := job.ChosenReduceR; r >= 0 {
		je.ReduceR = &r
	}
	return je
}

// stableSortByArrival orders job indices by arrival, preserving slice order
// for equal instants so same-time submissions keep their stream order.
func stableSortByArrival(order []int, jobs []Job) {
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Spec.Arrival < jobs[order[b]].Spec.Arrival
	})
}
