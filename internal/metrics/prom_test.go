package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestLatencyHistogramBuckets(t *testing.T) {
	h := NewLatencyHistogram(0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	want := []uint64{1, 2, 3, 4}
	for i, w := range want {
		if snap.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, snap.Cumulative[i], w)
		}
	}
	if snap.Count != 4 {
		t.Errorf("count = %d, want 4", snap.Count)
	}
	if math.Abs(snap.Sum-5.555) > 1e-9 {
		t.Errorf("sum = %v, want 5.555", snap.Sum)
	}
}

func TestLatencyHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(g+1) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != 4000 {
		t.Errorf("count = %d, want 4000", snap.Count)
	}
	// Sum of 500 * sum_{g=1..8} g/1000 = 500 * 0.036 = 18.
	if math.Abs(snap.Sum-18) > 1e-6 {
		t.Errorf("sum = %v, want 18", snap.Sum)
	}
	if last := snap.Cumulative[len(snap.Cumulative)-1]; last != snap.Count {
		t.Errorf("final cumulative %d != count %d", last, snap.Count)
	}
}
