package mapreduce

import "chronos/internal/sim"

// Strategy is a per-job speculation policy. The runtime calls Start at the
// job's arrival; the strategy launches the original attempts, schedules its
// own control points (tauEst, tauKill, periodic checks), and reacts to task
// completions through the Controller hooks.
type Strategy interface {
	// Name identifies the strategy in metrics and reports.
	Name() string
	// Start begins executing the job: launch attempts and schedule control
	// events via ctl.
	Start(ctl *Controller)
}

// Controller is the strategy's handle on one job's execution. It scopes
// runtime operations to the job and carries the strategy's event hooks.
type Controller struct {
	rt  *Runtime
	job *Job

	taskDone     func(*Task)
	attemptLost  func(*Attempt)
	jobDone      func()
	mapStageDone func()
}

// Job returns the controlled job.
func (c *Controller) Job() *Job { return c.job }

// Now returns the current simulation time.
func (c *Controller) Now() float64 { return c.rt.Eng.Now() }

// SinceArrival returns the job-relative clock (0 at submission); tauEst and
// tauKill in the paper are on this clock.
func (c *Controller) SinceArrival() float64 { return c.rt.Eng.Now() - c.job.Spec.Arrival }

// Launch starts a new attempt of the task from the given split fraction
// (0 for a from-scratch attempt) and returns it. The attempt may wait for a
// container.
func (c *Controller) Launch(t *Task, startFrac float64) *Attempt {
	return c.rt.launch(c, t, startFrac)
}

// Kill terminates an attempt. Killing a finished or already-killed attempt
// is a no-op; the return value reports whether the attempt was live.
func (c *Controller) Kill(a *Attempt) bool { return c.rt.kill(a) }

// After schedules fn delay seconds from now; the timer is cancellable.
func (c *Controller) After(delay float64, fn func()) *sim.Timer {
	return c.rt.Eng.After(delay, fn)
}

// AtJobTime schedules fn at the job-relative instant rel (seconds after
// arrival). If that instant has passed, fn runs at the current time.
func (c *Controller) AtJobTime(rel float64, fn func()) *sim.Timer {
	at := c.job.Spec.Arrival + rel
	if at < c.rt.Eng.Now() {
		at = c.rt.Eng.Now()
	}
	return c.rt.Eng.Schedule(at, fn)
}

// OnTaskDone registers a hook invoked whenever one of the job's tasks
// completes.
func (c *Controller) OnTaskDone(fn func(*Task)) { c.taskDone = fn }

// OnAttemptLost registers a hook invoked when an attempt is lost to a node
// failure, letting the strategy relaunch it.
func (c *Controller) OnAttemptLost(fn func(*Attempt)) { c.attemptLost = fn }

// OnJobDone registers a hook invoked when the job's last task completes,
// e.g. to cancel outstanding control timers.
func (c *Controller) OnJobDone(fn func()) { c.jobDone = fn }

// OnMapStageDone registers a hook invoked when the last map task completes.
// Strategies with reduce stages launch and plan the reduce tasks here; the
// hook fires before reduce tasks become launchable events are processed,
// within the same simulation instant.
func (c *Controller) OnMapStageDone(fn func()) { c.mapStageDone = fn }

// FreeSlots reports the cluster's currently free container slots; Mantri's
// launch rule consults this.
func (c *Controller) FreeSlots() int {
	return c.rt.Cluster.Capacity() - c.rt.Cluster.InUse()
}

// QueueEmpty reports whether no allocation requests are waiting — Mantri
// only speculates when no (new) task is waiting for a container.
func (c *Controller) QueueEmpty() bool { return c.rt.Cluster.QueueLength() == 0 }
