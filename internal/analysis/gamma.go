package analysis

import "math"

// Every Chronos strategy has a per-task deadline-miss probability of the
// geometric form
//
//	q(r) = A * rho^(r+c),  0 < rho < 1,
//
// (Clone: A=1, rho=(tmin/D)^beta, c=1; S-Restart: A=(tmin/D)^beta,
// rho=(tmin/(D-tauEst))^beta, c=0; S-Resume: A=(tmin/D)^beta,
// rho=((1-phi)*tmin/(D-tauEst))^beta, c=1).
//
// The job PoCD R(r) = (1-q(r))^N is concave in r exactly when q(r) < 1/N
// (the second derivative of (1-A*e^{x ln rho})^N changes sign at q = 1/N).
// Theorem 8 states these thresholds per strategy; concavityThreshold solves
// q(r) = 1/N for r in the general form.
//
// Note: the published expression for Gamma_{S-Resume} (Eq. 29 of the paper)
// carries a sign typo — applying it literally would make PoCD "concave" for
// all r >= 0 even when q(0) > 1/N. We implement the threshold derived
// directly from the concavity condition q(r) < 1/N, which reproduces the
// paper's Gamma_Clone (Eq. 27) and Gamma_{S-Restart} (Eq. 28) exactly.
func concavityThreshold(a, rho, c float64, n int) float64 {
	if rho <= 0 || rho >= 1 || a <= 0 {
		return -1 // degenerate: treat as concave everywhere relevant
	}
	// Solve A * rho^(r+c) = 1/N  =>  r = (-ln(N*A))/ln(rho) - c.
	r := -math.Log(float64(n)*a)/math.Log(rho) - c
	if math.IsNaN(r) {
		return -1
	}
	return r
}
