package trace

import (
	"errors"
	"math"

	"chronos/internal/pareto"
)

// ErrTooFewSamples reports a fit attempted on fewer than two samples.
var ErrTooFewSamples = errors.New("trace: need at least 2 samples to fit")

// FitPareto estimates Pareto(tmin, beta) from empirical execution-time
// samples by maximum likelihood:
//
//	tmin = min(x_i),   beta = n / sum(ln(x_i / tmin)).
//
// This is how the paper turns each Google-trace job's observed execution
// time distribution into the Pareto used to regenerate task times.
func FitPareto(samples []float64) (pareto.Dist, error) {
	if len(samples) < 2 {
		return pareto.Dist{}, ErrTooFewSamples
	}
	tmin := math.Inf(1)
	for _, x := range samples {
		if x <= 0 || math.IsNaN(x) {
			return pareto.Dist{}, errors.New("trace: samples must be positive")
		}
		if x < tmin {
			tmin = x
		}
	}
	var logSum float64
	for _, x := range samples {
		logSum += math.Log(x / tmin)
	}
	if logSum <= 0 {
		// All samples identical: degenerate, return a near-deterministic fit.
		return pareto.New(tmin, 100)
	}
	beta := float64(len(samples)) / logSum
	return pareto.New(tmin, beta)
}
