// Package analysis implements the closed-form PoCD (Probability of
// Completion before Deadline) and expected machine-running-time expressions
// of the Chronos paper (Theorems 1-6), the strategy comparisons of Theorem 7,
// and the concavity thresholds of Theorem 8.
//
// All expressions assume a job of N parallel tasks whose attempt execution
// times are i.i.d. Pareto(tmin, beta), a job deadline D, a straggler-detection
// time tauEst and a kill time tauKill (both relative to job start).
package analysis

import (
	"errors"
	"fmt"
	"math"

	"chronos/internal/pareto"
)

// Params collects the analytic inputs shared by every strategy model.
type Params struct {
	// N is the number of parallel tasks in the job. The job meets its
	// deadline only if all N tasks do.
	N int
	// Deadline is the job deadline D (seconds from job start).
	Deadline float64
	// Task is the per-attempt execution time distribution.
	Task pareto.Dist
	// TauEst is the straggler-detection instant for the speculative
	// strategies (ignored by Clone, which is proactive).
	TauEst float64
	// TauKill is the instant at which all but the best attempt are killed.
	TauKill float64
	// PhiEst is the average progress fraction of an original attempt at
	// TauEst, given that it is a straggler. Used by Speculative-Resume
	// (work preserved by the new attempts). If zero, DefaultPhiEst is a
	// reasonable model-derived choice.
	PhiEst float64
}

// Validation errors.
var (
	ErrBadN        = errors.New("analysis: N must be >= 1")
	ErrBadDeadline = errors.New("analysis: deadline must exceed tmin")
	ErrBadTau      = errors.New("analysis: need 0 <= tauEst <= tauKill <= deadline")
	ErrBadPhi      = errors.New("analysis: phiEst must be in [0, 1)")
	ErrHeavyTail   = errors.New("analysis: beta must exceed 1 for finite expected cost")
)

// Validate reports whether the parameters are in the regime the closed forms
// cover.
func (p Params) Validate() error {
	if err := p.Task.Validate(); err != nil {
		return err
	}
	if p.N < 1 {
		return fmt.Errorf("%w: got %d", ErrBadN, p.N)
	}
	if !(p.Deadline > p.Task.TMin) {
		return fmt.Errorf("%w: D=%v tmin=%v", ErrBadDeadline, p.Deadline, p.Task.TMin)
	}
	if p.TauEst < 0 || p.TauKill < p.TauEst || p.TauKill > p.Deadline {
		return fmt.Errorf("%w: tauEst=%v tauKill=%v D=%v", ErrBadTau, p.TauEst, p.TauKill, p.Deadline)
	}
	if p.PhiEst < 0 || p.PhiEst >= 1 {
		return fmt.Errorf("%w: got %v", ErrBadPhi, p.PhiEst)
	}
	if p.Task.Beta <= 1 {
		return fmt.Errorf("%w: beta=%v", ErrHeavyTail, p.Task.Beta)
	}
	return nil
}

// DefaultPhiEst returns a model-consistent value for PhiEst: the expected
// progress tauEst/T of an original attempt at tauEst, conditioned on the
// attempt being a straggler (T > D). For T ~ Pareto(D, beta) (Lemma 3),
// E[1/T] = beta/((beta+1)*D), hence
//
//	E[tauEst/T | T > D] = tauEst * beta / ((beta+1) * D).
func (p Params) DefaultPhiEst() float64 {
	b := p.Task.Beta
	phi := p.TauEst * b / ((b + 1) * p.Deadline)
	return math.Min(phi, 0.999)
}

// phi returns the effective PhiEst, substituting the default when unset.
func (p Params) phi() float64 {
	if p.PhiEst > 0 {
		return p.PhiEst
	}
	return p.DefaultPhiEst()
}

// clampProb confines a probability expression to [0, 1]; the closed forms can
// exceed these bounds in degenerate corners (e.g. D - tauEst < tmin, where a
// freshly launched attempt can never meet the deadline).
func clampProb(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}

// pocdFromTaskFailure converts a per-task failure probability into a job
// PoCD: the job meets the deadline iff all N tasks do.
func pocdFromTaskFailure(q float64, n int) float64 {
	return math.Pow(1-clampProb(q), float64(n))
}
