package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"chronos"
	"chronos/internal/hotjson"
	"chronos/internal/obs"
)

// This file is the zero-allocation serving core for the plan/admit hot path:
// pooled request/response buffers, the reflection-free hotjson wiring, and
// the buffered writeJSON used by every other endpoint. A cached plan or a
// warm admit allocates nothing between the body read and the response write
// (net/http's own per-request machinery aside), which TestHotPathZeroAlloc
// pins down.

// hotBuf carries every per-request scratch object the plan/admit handlers
// need: body and response buffers, the plan-key buffer, and the wire structs
// themselves, so a request borrows one pool object instead of allocating
// each piece.
type hotBuf struct {
	in  []byte // request body
	out []byte // encoded response body
	key []byte // plan cache / ring key

	planReq   planRequest
	planResp  planResponse
	admitReq  admitRequest
	admitResp admitResponse

	// plan and rem back the response-struct pointers (admitResp.Plan,
	// planResp.BudgetRemaining), which would otherwise escape to the heap.
	plan chronos.Plan
	rem  float64
}

var hotBufPool = sync.Pool{New: func() any {
	return &hotBuf{
		in:  make([]byte, 0, 4096),
		out: make([]byte, 0, 2048),
		key: make([]byte, 0, 128),
	}
}}

func getHotBuf() *hotBuf { return hotBufPool.Get().(*hotBuf) }

// putHotBuf clears the request's strings and pointers (so the pool does not
// pin tenant names or a stale plan across requests) and returns the object.
// Buffers grown past the retention cap are dropped: one huge body must not
// turn the pool into a ballast of megabyte slabs.
func putHotBuf(hb *hotBuf) {
	const maxRetain = 64 << 10
	if cap(hb.in) > maxRetain || cap(hb.out) > maxRetain {
		return
	}
	hb.planReq = planRequest{}
	hb.planResp = planResponse{}
	hb.admitReq = admitRequest{}
	hb.admitResp = admitResponse{}
	hb.plan = chronos.Plan{}
	hb.rem = 0
	hotBufPool.Put(hb)
}

// jsonContentType is the shared Content-Type header value for every JSON
// response. Assigned into the header map directly (the key is already in
// canonical form): net/http may serialize headers after the handler returns,
// so only an immutable package-lifetime slice — never a pooled one — is safe
// to share across requests.
var jsonContentType = []string{"application/json"}

// readBody reads the whole request body into buf (reusing its capacity),
// answering 413/400 itself on failure. The loop grows buf with append so a
// pooled buffer keeps its high-water capacity across requests.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, buf []byte) ([]byte, bool) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, true
		}
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.apiError(w, r, http.StatusRequestEntityTooLarge,
					"request body exceeds %d bytes", tooBig.Limit)
			} else {
				s.apiError(w, r, http.StatusBadRequest, "reading request body: %v", err)
			}
			return buf, false
		}
	}
}

// writeHotBody commits a pre-encoded JSON response. The body is written
// synchronously into net/http's connection buffer, so the caller may reuse
// it as soon as this returns; Content-Length comes from net/http's own
// small-response buffering.
func writeHotBody(w http.ResponseWriter, code int, body []byte) {
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// InternString makes *Server a hotjson.Interner: tenant names decode to the
// registry's canonical pool-name strings, so a known tenant's admit request
// allocates no string. Unknown values fall back to the decoder's own copy.
func (s *Server) InternString(b []byte) (string, bool) {
	if p := s.tenants.Load().GetBytes(b); p != nil {
		return p.Name(), true
	}
	return "", false
}

// encodeFailed records a response-encode failure — previously these were
// silently dropped on the floor by writeJSON — and answers a static 500
// envelope. Counted in chronosd_response_encode_failures_total.
func (s *Server) encodeFailed(w http.ResponseWriter, r *http.Request, err error) {
	s.metrics.encodeFailures.Inc()
	traceID := ""
	if tr := obs.FromContext(r.Context()); tr != nil {
		traceID = tr.ID
	}
	s.logOp().Warn("response encode failed",
		"endpoint", r.URL.Path, "trace_id", traceID, "error", err.Error())
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = io.WriteString(w, `{"error":"response encoding failed","code":"internal"}`)
}

// encBufPool holds the staging buffers for the reflection-based writeJSON.
// Separate from hotBufPool: error paths call writeJSON while the handler
// still holds its hotBuf.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON encodes v through encoding/json into a pooled buffer and commits
// it in one write — the cold-endpoint sibling of writeHotBody. Staging the
// encode means a failure surfaces as a counted, logged 500 instead of a
// silently truncated 200, and small responses gain Content-Length.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		encBufPool.Put(buf)
	}()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		s.encodeFailed(w, r, err)
		return
	}
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(code)
	_, _ = buf.WriteTo(w)
}

// writeAdmitResponse encodes hb.admitResp into the pooled response buffer
// and commits it. Every /v1/admit outcome — admit, reject, budget-exhausted
// — answers 200 with the decision payload.
func (s *Server) writeAdmitResponse(w http.ResponseWriter, r *http.Request, hb *hotBuf) {
	out, err := hotjson.AppendAdmitResponse(hb.out[:0], &hb.admitResp)
	if err != nil {
		s.encodeFailed(w, r, err)
		return
	}
	hb.out = out
	writeHotBody(w, http.StatusOK, out)
}
