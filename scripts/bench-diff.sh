#!/usr/bin/env bash
# bench-diff.sh — reports how the two most recent committed benchmark
# snapshots (BENCH_<n>.json, numerically ordered) compare, so a PR's perf
# story is one command instead of manual JSON spelunking. Non-blocking by
# design: it renders a report, it does not gate — the gate lives in
# bench-json.sh --check.
#
# Usage:
#   scripts/bench-diff.sh [OLD.json NEW.json]
#
# With no arguments the two highest-numbered BENCH_*.json in the repo root
# are compared. When both snapshots carry raw go-test output alongside
# (BENCH_<n>.txt) and benchstat is installed, benchstat does the statistics;
# otherwise the JSON summaries are diffed directly with awk — no tool
# installation required.
set -euo pipefail
cd "$(dirname "$0")/.."

old="${1:-}"
new="${2:-}"
if [ -z "$old" ] || [ -z "$new" ]; then
  # Numeric sort on the PR number embedded in the filename.
  mapfile -t snaps < <(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
  if [ "${#snaps[@]}" -lt 2 ]; then
    echo "bench-diff: need two committed BENCH_*.json snapshots, found ${#snaps[@]}"
    exit 0
  fi
  old="${snaps[-2]}"
  new="${snaps[-1]}"
fi

echo "== bench diff: $old -> $new =="

old_txt="${old%.json}.txt"
new_txt="${new%.json}.txt"
if command -v benchstat >/dev/null 2>&1 && [ -f "$old_txt" ] && [ -f "$new_txt" ]; then
  benchstat "$old_txt" "$new_txt"
  exit 0
fi
if [ -f "$old_txt" ] && [ -f "$new_txt" ]; then
  echo "(benchstat not installed; diffing the JSON summaries — raw output in $old_txt / $new_txt)"
fi

# Flatten {"entry": {"field": value}} pairs out of one snapshot.
flatten() {
  awk '
    /^    "/ {
      entry = $1; gsub(/[":]/, "", entry)
      line = $0
      while (match(line, /"[a-z_]+": *[0-9.]+/)) {
        kv = substr(line, RSTART, RLENGTH)
        line = substr(line, RSTART + RLENGTH)
        split(kv, parts, /": */)
        key = parts[1]; gsub(/"/, "", key)
        print entry "." key, parts[2]
      }
    }' "$1"
}

join <(flatten "$old" | sort) <(flatten "$new" | sort) | awk '
  {
    old = $2; new = $3
    delta = (old == 0) ? "" : sprintf("%+.1f%%", (new / old - 1) * 100)
    printf "%-34s %14g -> %14g  %s\n", $1, old, new, delta
  }'
echo
echo "ns_per_op and bytes_per_op: lower is better. *_per_sec: higher is better."
echo "allocs_per_op is deterministic; any increase is a real regression."
