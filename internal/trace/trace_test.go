package trace

import (
	"errors"
	"math"
	"sort"
	"testing"

	"chronos/internal/pareto"
)

func TestGenerateDefault(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != cfg.Jobs {
		t.Fatalf("generated %d jobs, want %d", len(jobs), cfg.Jobs)
	}
	arrivals := make([]float64, len(jobs))
	for i, j := range jobs {
		arrivals[i] = j.Arrival
		if j.ID != i {
			t.Errorf("job %d has ID %d (want arrival-order keys)", i, j.ID)
		}
		if j.Arrival < 0 || j.Arrival > cfg.Horizon {
			t.Errorf("job %d arrival %v outside [0, %v]", i, j.Arrival, cfg.Horizon)
		}
		if j.NumTasks < cfg.MinTasks || j.NumTasks > cfg.MaxTasks {
			t.Errorf("job %d tasks %d outside [%d, %d]", i, j.NumTasks, cfg.MinTasks, cfg.MaxTasks)
		}
		if err := j.Dist.Validate(); err != nil {
			t.Errorf("job %d dist: %v", i, err)
		}
		if j.Dist.Beta <= cfg.BetaLow-1e-9 || j.Dist.Beta > cfg.BetaHigh+1e-9 {
			t.Errorf("job %d beta %v outside bounds", i, j.Dist.Beta)
		}
		want := cfg.DeadlineRatio * j.Dist.Mean()
		if math.Abs(j.Deadline-want) > 1e-9 {
			t.Errorf("job %d deadline %v, want ratio*mean %v", i, j.Deadline, want)
		}
	}
	if !sort.Float64sAreSorted(arrivals) {
		t.Error("jobs not sorted by arrival")
	}
	// Task-count distribution must be heavy-tailed: log-uniform over
	// [5, 2000] gives a median near sqrt(5*2000) = 100.
	counts := make([]int, len(jobs))
	for i, j := range jobs {
		counts[i] = j.NumTasks
	}
	sort.Ints(counts)
	median := counts[len(counts)/2]
	if median < 30 || median > 330 {
		t.Errorf("median task count %d, want log-uniform-ish ~100", median)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace generation not deterministic")
		}
	}
	cfg.Seed = 2
	c, _ := Generate(cfg)
	same := 0
	for i := range a {
		if a[i].NumTasks == c[i].NumTasks {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	mutations := []func(*GeneratorConfig){
		func(c *GeneratorConfig) { c.Jobs = 0 },
		func(c *GeneratorConfig) { c.Horizon = 0 },
		func(c *GeneratorConfig) { c.MinTasks = 0 },
		func(c *GeneratorConfig) { c.MaxTasks = 1 },
		func(c *GeneratorConfig) { c.TMinLow = 0 },
		func(c *GeneratorConfig) { c.BetaLow = 0.9 },
		func(c *GeneratorConfig) { c.DeadlineRatio = 1 },
	}
	for i, m := range mutations {
		cfg := DefaultGeneratorConfig()
		m(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTotalTasks(t *testing.T) {
	jobs := []JobRecord{{NumTasks: 5}, {NumTasks: 7}}
	if got := TotalTasks(jobs); got != 12 {
		t.Errorf("TotalTasks = %d, want 12", got)
	}
}

func TestFitParetoRecovers(t *testing.T) {
	truth := pareto.MustNew(12, 1.6)
	rng := pareto.NewStream(5)
	samples := truth.SampleN(rng, 20000)
	fit, err := FitPareto(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.TMin-truth.TMin)/truth.TMin > 0.01 {
		t.Errorf("fitted tmin %v, want ~%v", fit.TMin, truth.TMin)
	}
	if math.Abs(fit.Beta-truth.Beta)/truth.Beta > 0.05 {
		t.Errorf("fitted beta %v, want ~%v", fit.Beta, truth.Beta)
	}
}

func TestFitParetoErrors(t *testing.T) {
	if _, err := FitPareto([]float64{1}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("one sample: err = %v", err)
	}
	if _, err := FitPareto([]float64{1, -2}); err == nil {
		t.Error("negative sample accepted")
	}
	// Identical samples: degenerate near-deterministic fit.
	fit, err := FitPareto([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.TMin != 5 || fit.Beta < 50 {
		t.Errorf("degenerate fit = %v", fit)
	}
}

func TestSpotPricesAt(t *testing.T) {
	s := SpotPrices{Times: []float64{0, 10, 20}, Prices: []float64{1, 2, 3}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		t    float64
		want float64
	}{
		{-5, 1}, {0, 1}, {5, 1}, {10, 2}, {15, 2}, {20, 3}, {100, 3},
	}
	for _, tt := range tests {
		if got := s.At(tt.t); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestSpotPricesMean(t *testing.T) {
	s := SpotPrices{Times: []float64{0, 10, 30}, Prices: []float64{1, 4, 9}}
	// Time-weighted: (1*10 + 4*20) / 30 = 3.
	if got := s.Mean(); math.Abs(got-3) > 1e-12 {
		t.Errorf("Mean() = %v, want 3", got)
	}
	single := SpotPrices{Times: []float64{0}, Prices: []float64{7}}
	if got := single.Mean(); got != 7 {
		t.Errorf("single-point Mean() = %v, want 7", got)
	}
}

func TestSpotPricesValidate(t *testing.T) {
	bad := []SpotPrices{
		{},
		{Times: []float64{0, 1}, Prices: []float64{1}},
		{Times: []float64{0, 0}, Prices: []float64{1, 2}},
		{Times: []float64{0, 1}, Prices: []float64{1, -2}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad series %d accepted", i)
		}
	}
}

func TestGenerateSpotPrices(t *testing.T) {
	cfg := SpotConfig{Mean: 0.05, Volatility: 0.1, Reversion: 0.2, Step: 60, Horizon: 36000, Seed: 3}
	s, err := GenerateSpotPrices(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mean reversion keeps the time average near the configured mean.
	if m := s.Mean(); math.Abs(m-cfg.Mean)/cfg.Mean > 0.25 {
		t.Errorf("series mean %v, want near %v", m, cfg.Mean)
	}
	// The floor holds.
	for _, p := range s.Prices {
		if p < cfg.Mean*0.2-1e-12 {
			t.Errorf("price %v below floor", p)
		}
	}
}

func TestGenerateSpotPricesValidation(t *testing.T) {
	bad := []SpotConfig{
		{Mean: 0, Step: 1, Horizon: 10, Reversion: 0.5},
		{Mean: 1, Step: 0, Horizon: 10, Reversion: 0.5},
		{Mean: 1, Step: 10, Horizon: 5, Reversion: 0.5},
		{Mean: 1, Step: 1, Horizon: 10, Reversion: 0},
		{Mean: 1, Step: 1, Horizon: 10, Reversion: 1.5},
	}
	for i, cfg := range bad {
		if _, err := GenerateSpotPrices(cfg); err == nil {
			t.Errorf("bad spot config %d accepted", i)
		}
	}
}

func TestSpotIntegral(t *testing.T) {
	s := SpotPrices{Times: []float64{0, 10, 30}, Prices: []float64{1, 4, 9}}
	tests := []struct {
		a, b float64
		want float64
	}{
		{0, 10, 10},  // whole first segment
		{0, 30, 90},  // 1*10 + 4*20
		{5, 15, 25},  // 1*5 + 4*5
		{30, 40, 90}, // last price extends
		{-10, 0, 10}, // first price extends backwards
		{12, 12, 0},  // empty interval
		{25, 35, 65}, // 4*5 + 9*5
	}
	for _, tt := range tests {
		if got := s.Integral(tt.a, tt.b); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Integral(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
	// Reversed bounds negate.
	if got := s.Integral(15, 5); math.Abs(got+25) > 1e-9 {
		t.Errorf("reversed Integral = %v, want -25", got)
	}
	// Consistency with Mean over the covered span.
	if got, want := s.Integral(0, 30), s.Mean()*30; math.Abs(got-want) > 1e-9 {
		t.Errorf("Integral(0,30) = %v, want Mean*30 = %v", got, want)
	}
}
