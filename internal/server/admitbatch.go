package server

import (
	"fmt"
	"net/http"
	"time"

	"chronos"
	"chronos/internal/obs"
	"chronos/internal/plankey"
)

// POST /v1/admit/batch: admission decisions for several same-tenant jobs in
// one round trip. The jobs share one solve fan-out across the worker pool
// (each selection is a cache hit or a full solve) and — the point — one
// atomic ledger debit for the whole accepted set: with escrow accounting on,
// a batch of N admits costs one CAS on the tenant's lease instead of N, so
// high-arrival tenants stop serializing on their own budget counter.
//
// The batch is never forwarded: its jobs span plan-key owners, so there is
// no single replica to forward to. Any replica can serve it correctly (the
// tenant debit goes through this replica's escrow lease; only cache
// partitioning is diluted); the ring-aware client groups jobs by owner and
// posts one sub-batch per owning replica to keep even that.

// admitBatchRequest asks for admission decisions for several jobs against
// one tenant's budget.
type admitBatchRequest struct {
	// Tenant names the budget pool to admit against. Required.
	Tenant string `json:"tenant"`
	// Jobs are the arriving jobs, decided independently but debited once.
	Jobs []admitBatchJob `json:"jobs"`
	// Econ overrides the tenant's planning defaults field by field for every
	// job in the batch; zero fields fall back to the pool's defaults.
	Econ chronos.Econ `json:"econ,omitempty"`
}

// admitBatchJob is one arriving job in a batch admission.
type admitBatchJob struct {
	Job chronos.JobParams `json:"job"`
	// Strategy optionally pins one Chronos strategy; empty or "best"
	// optimizes all three.
	Strategy string `json:"strategy,omitempty"`
}

// admitBatchResult is one job's decision, in request order.
type admitBatchResult struct {
	Admitted bool `json:"admitted"`
	// Plan is the admitted speculation plan, already debited. Absent on
	// rejection.
	Plan *chronos.Plan `json:"plan,omitempty"`
	// Reason is the structured rejection reason (ReasonBudgetExhausted or
	// ReasonInfeasible). Absent on admission.
	Reason string `json:"reason,omitempty"`
}

type admitBatchResponse struct {
	Tenant  string             `json:"tenant"`
	Results []admitBatchResult `json:"results"`
	// Admitted counts the accepted jobs (the true entries in Results).
	Admitted int `json:"admitted"`
	// BudgetRemaining is the pool's machine-time level after the batch's
	// single debit.
	BudgetRemaining float64 `json:"budgetRemaining"`
}

// handleAdmitBatch serves POST /v1/admit/batch.
func (s *Server) handleAdmitBatch(w http.ResponseWriter, r *http.Request) {
	var req admitBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	tr := obs.FromContext(r.Context())
	tr.SetTenant(req.Tenant)
	pool, ok := s.lookupPool(w, r, req.Tenant)
	if !ok {
		return
	}
	if len(req.Jobs) == 0 {
		s.apiError(w, r, http.StatusBadRequest, "batch has no jobs")
		return
	}
	if len(req.Jobs) > s.cfg.MaxBatchJobs {
		s.apiError(w, r, http.StatusBadRequest,
			"batch has %d jobs, limit %d", len(req.Jobs), s.cfg.MaxBatchJobs)
		return
	}
	econ := tenantEcon(req.Econ, pool)

	// Resolve every job's strategy and plan key up front; an unparseable
	// strategy name is the request's fault, not an admission decision.
	type batchJob struct {
		strat chronos.Strategy
		best  bool
		key   []byte
		err   error
	}
	jobs := make([]batchJob, len(req.Jobs))
	for i, j := range req.Jobs {
		strat, best, ok := keyStrategy(j.Strategy)
		if !ok {
			s.apiError(w, r, http.StatusBadRequest, "job %d: unknown strategy %q", i, j.Strategy)
			return
		}
		jobs[i] = batchJob{
			strat: strat, best: best,
			key: plankey.AppendKey(nil, cacheStrategyName(strat, best), j.Job, econ),
		}
	}

	// One solve fan-out warms the cache for every distinct cell, so the
	// sequential allocation below is all cache hits.
	s.pool.fanOut(len(req.Jobs), func(i int) {
		// Pool goroutines run outside net/http's per-connection recover;
		// contain panics to the one job instead of crashing the daemon.
		defer func() {
			if p := recover(); p != nil {
				jobs[i].err = fmt.Errorf("job %d: %w: %v", i, errInternal, p)
			}
		}()
		_, _, err := s.cachedPlanKeyedBytes(tr, jobs[i].key, jobs[i].strat, jobs[i].best, req.Jobs[i].Job, econ)
		jobs[i].err = err
	})

	bud := s.tenantBudget(r.Context(), req.Tenant, pool)
	plans := make([]chronos.Plan, len(req.Jobs))
	results := make([]admitBatchResult, len(req.Jobs))
	for attempt := 0; attempt < admitDebitRetries; attempt++ {
		// Allocate against a snapshot of the ledger: jobs are decided in
		// request order, each squeezed into whatever the ones before it left.
		remaining := bud.Remaining()
		left := remaining
		total := 0.0
		admitted := 0
		for i := range jobs {
			results[i] = admitBatchResult{}
			if jobs[i].err != nil {
				if reason := rejectReason(jobs[i].err); reason != "" {
					results[i].Reason = reason
					continue
				}
				s.apiError(w, r, planStatus(jobs[i].err), "%v", jobs[i].err)
				return
			}
			plan, err := s.planWithinBudget(tr, jobs[i].key, jobs[i].strat, jobs[i].best,
				req.Jobs[i].Job, econ, left)
			if err != nil {
				if reason := rejectReason(err); reason != "" {
					results[i].Reason = reason
					continue
				}
				s.apiError(w, r, planStatus(err), "job %d: %v", i, err)
				return
			}
			plans[i] = plan
			results[i].Admitted = true
			results[i].Plan = &plans[i]
			total += plan.MachineTime
			left -= plan.MachineTime
			admitted++
		}
		if admitted == 0 {
			s.finishAdmitBatch(w, r, req.Tenant, results, 0, remaining)
			return
		}
		// The whole accepted set settles in ONE debit. Clamp to the snapshot
		// the allocation ran against, so per-item float accumulation cannot
		// push the total an epsilon past a ledger that would otherwise cover
		// it (same guard as /v1/plan/batch).
		debit := total
		if debit > remaining {
			debit = remaining
		}
		dStart := time.Now()
		ok, rem := bud.TryDebit(debit)
		tr.Observe(obs.StageDebit, time.Since(dStart))
		if ok {
			s.finishAdmitBatch(w, r, req.Tenant, results, admitted, rem)
			return
		}
		// A concurrent admit drained the snapshot we planned against;
		// re-allocate against the new level.
	}
	// Retries exhausted: the ledger is being drained faster than we can plan
	// against it. Reject the whole batch on budget grounds.
	for i := range results {
		if results[i].Admitted {
			results[i] = admitBatchResult{Reason: ReasonBudgetExhausted}
		}
	}
	s.finishAdmitBatch(w, r, req.Tenant, results, 0, bud.Remaining())
}

// finishAdmitBatch counts the decisions into the tenant metrics and writes
// the response.
func (s *Server) finishAdmitBatch(w http.ResponseWriter, r *http.Request, tenantName string, results []admitBatchResult, admitted int, remaining float64) {
	for i := range results {
		switch {
		case results[i].Admitted:
			s.metrics.planServed(results[i].Plan.Strategy.String())
			s.metrics.tenantAdmit(tenantName, results[i].Plan.Strategy.String())
		case results[i].Reason != "":
			s.metrics.tenantReject(tenantName, results[i].Reason)
		}
	}
	s.writeJSON(w, r, http.StatusOK, admitBatchResponse{
		Tenant:          tenantName,
		Results:         results,
		Admitted:        admitted,
		BudgetRemaining: remaining,
	})
}
