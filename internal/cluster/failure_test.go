package cluster

import (
	"testing"

	"chronos/internal/sim"
)

func TestRecoverNode(t *testing.T) {
	_, c := newTestCluster(t, 2, 2)
	if _, err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 2 {
		t.Fatalf("capacity after failure = %d, want 2", c.Capacity())
	}
	if err := c.RecoverNode(0); err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 4 {
		t.Errorf("capacity after recovery = %d, want 4", c.Capacity())
	}
	// Recovery is idempotent and bounds-checked.
	if err := c.RecoverNode(0); err != nil {
		t.Errorf("second recovery errored: %v", err)
	}
	if err := c.RecoverNode(9); err == nil {
		t.Error("out-of-range recovery accepted")
	}
}

func TestRecoveryDispatchesWaiters(t *testing.T) {
	_, c := newTestCluster(t, 1, 1)
	if _, err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	granted := false
	c.Request(func(ctr *Container) {
		granted = true
		c.Release(ctr)
	})
	if granted {
		t.Fatal("request granted while the only node is down")
	}
	if err := c.RecoverNode(0); err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Error("recovery did not dispatch the waiting request")
	}
}

func TestFailureInjectorDisabled(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Nodes: 4, SlotsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n := (FailureInjector{}).Install(eng, c); n != 0 {
		t.Errorf("disabled injector armed %d nodes", n)
	}
	if eng.Pending() != 0 {
		t.Errorf("disabled injector scheduled %d events", eng.Pending())
	}
}

func TestFailureInjectorFailsAndRecovers(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Nodes: 8, SlotsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	fi := FailureInjector{MTBF: 100, MTTR: 20, Horizon: 2000, Seed: 3}
	if n := fi.Install(eng, c); n != 8 {
		t.Fatalf("armed %d nodes, want 8", n)
	}
	// Track the capacity trajectory.
	minCap, sawRecovery := c.Capacity(), false
	prev := c.Capacity()
	for eng.Step() {
		if cap := c.Capacity(); cap != prev {
			if cap < minCap {
				minCap = cap
			}
			if cap > prev {
				sawRecovery = true
			}
			prev = cap
		}
	}
	if minCap == 16 {
		t.Error("no failure ever reduced capacity")
	}
	if !sawRecovery {
		t.Error("no node ever recovered")
	}
	// All failures bounded by the horizon, and the engine drained.
	if eng.Pending() != 0 {
		t.Errorf("%d events still pending", eng.Pending())
	}
}

func TestFailureInjectorDeterministic(t *testing.T) {
	run := func() uint64 {
		eng := sim.NewEngine()
		c, err := New(eng, Config{Nodes: 4, SlotsPerNode: 1})
		if err != nil {
			t.Fatal(err)
		}
		FailureInjector{MTBF: 50, MTTR: 10, Horizon: 1000, Seed: 7}.Install(eng, c)
		eng.Run()
		return eng.Processed()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("injector not deterministic: %d vs %d events", a, b)
	}
}
