package optimize

import "chronos/internal/analysis"

// memoModel caches PoCD and MachineTime evaluations by r. The closed-form
// theorems cost hundreds of floating-point operations per call, and both the
// Algorithm 1 bracketing search and the greedy batch allocator re-evaluate
// the same r values many times (the batch loop is O(total_r * M) model
// calls, most of them repeats). Memoization turns those repeats into map
// hits. Not safe for concurrent use; wrap per solve call.
type memoModel struct {
	analysis.Model
	pocd map[int]float64
	mt   map[int]float64
}

// Memoize wraps a model with per-r caching of PoCD and MachineTime.
// Wrapping an already-memoized model returns it unchanged.
func Memoize(m analysis.Model) analysis.Model {
	if _, ok := m.(*memoModel); ok {
		return m
	}
	return &memoModel{
		Model: m,
		pocd:  make(map[int]float64),
		mt:    make(map[int]float64),
	}
}

func (m *memoModel) PoCD(r int) float64 {
	if v, ok := m.pocd[r]; ok {
		return v
	}
	v := m.Model.PoCD(r)
	m.pocd[r] = v
	return v
}

func (m *memoModel) MachineTime(r int) float64 {
	if v, ok := m.mt[r]; ok {
		return v
	}
	v := m.Model.MachineTime(r)
	m.mt[r] = v
	return v
}
