// Command chronos-opt solves the joint PoCD/cost optimization for a job and
// prints the optimal plan per strategy plus the tradeoff frontier, the way
// the Chronos AM would at job submission.
//
// Usage:
//
//	chronos-opt -tasks 10 -deadline 100 -tmin 10 -beta 1.5 \
//	            -tau-est 30 -tau-kill 60 -theta 1e-4 -price 1 [-rmin 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"chronos"
)

func main() {
	var (
		tasks    = flag.Int("tasks", 10, "number of parallel tasks N")
		deadline = flag.Float64("deadline", 100, "job deadline D (seconds)")
		tmin     = flag.Float64("tmin", 10, "Pareto scale tmin of task times")
		beta     = flag.Float64("beta", 1.5, "Pareto tail index beta (>1)")
		tauEst   = flag.Float64("tau-est", 30, "straggler-detection instant (seconds)")
		tauKill  = flag.Float64("tau-kill", 60, "attempt-pruning instant (seconds)")
		theta    = flag.Float64("theta", 1e-4, "PoCD/cost tradeoff factor")
		price    = flag.Float64("price", 1, "VM unit price C")
		rmin     = flag.Float64("rmin", 0, "minimum acceptable PoCD")
		maxR     = flag.Int("curve", 6, "tradeoff-curve points to print (0 disables)")
	)
	flag.Parse()

	params := chronos.JobParams{
		Tasks:    *tasks,
		Deadline: *deadline,
		TMin:     *tmin,
		Beta:     *beta,
		TauEst:   *tauEst,
		TauKill:  *tauKill,
	}
	econ := chronos.Econ{Theta: *theta, UnitPrice: *price, RMin: *rmin}

	if err := run(params, econ, *maxR); err != nil {
		fmt.Fprintln(os.Stderr, "chronos-opt:", err)
		os.Exit(1)
	}
}

func run(params chronos.JobParams, econ chronos.Econ, maxR int) error {
	fmt.Printf("job: N=%d D=%.1fs task~Pareto(%.1f, %.2f) tauEst=%.1f tauKill=%.1f\n",
		params.Tasks, params.Deadline, params.TMin, params.Beta, params.TauEst, params.TauKill)
	fmt.Printf("econ: theta=%g C=%g Rmin=%g\n\n", econ.Theta, econ.UnitPrice, econ.RMin)

	best, err := chronos.OptimizeBest(params, econ)
	if err != nil {
		return err
	}
	for _, s := range chronos.ChronosStrategies() {
		plan, err := chronos.Optimize(s, params, econ)
		if err != nil {
			fmt.Printf("%-20s infeasible: %v\n", s, err)
			continue
		}
		marker := " "
		if plan.Strategy == best.Strategy && plan.R == best.R {
			marker = "*"
		}
		fmt.Printf("%s %-20s r*=%d  PoCD=%.4f  E[T]=%.1f  cost=%.1f  utility=%.4f\n",
			marker, s, plan.R, plan.PoCD, plan.MachineTime, plan.Cost, plan.Utility)
	}

	if maxR > 0 {
		fmt.Printf("\ntradeoff frontier (%s):\n", best.Strategy)
		curve, err := chronos.TradeoffCurve(best.Strategy, params, econ, maxR)
		if err != nil {
			return err
		}
		fmt.Println("  r   PoCD     E[T]      utility")
		for _, pt := range curve {
			fmt.Printf("  %-3d %.4f  %-9.1f %.4f\n", pt.R, pt.PoCD, pt.MachineTime, pt.Utility)
		}
	}
	return nil
}
