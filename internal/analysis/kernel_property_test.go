package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

// The Evaluator kernel's contract is BIT identity with the plain models:
// cache keys, frontier tables, and the golden files all assume a kernel-built
// plan equals a model-built plan float for float. These tests pin that
// contract three ways across randomized parameter points: kernel vs model,
// kernel vs test-local straightforward reimplementations of the closed forms
// (so a bug shared by kernel and model refactors still gets caught), and the
// direct-probe path vs the Seek/Advance incremental path.

// refPoCD re-derives Theorems 1, 3, 5 from scratch: no hoisting, no tables,
// just the published formulas over powInt.
func refPoCD(s Strategy, p Params, r int) float64 {
	switch s {
	case StrategyClone:
		q := powInt(p.Task.Survival(p.Deadline), r+1)
		return pocdFromTaskFailure(q, p.N)
	case StrategyRestart:
		failOrig := p.Task.Survival(p.Deadline)
		failExtra := clampProb(p.Task.Survival(p.Deadline - p.TauEst))
		if p.Deadline-p.TauEst <= p.Task.TMin {
			failExtra = 1
		}
		return pocdFromTaskFailure(failOrig*powInt(failExtra, r), p.N)
	default: // StrategyResume
		phi := p.phi()
		failOrig := p.Task.Survival(p.Deadline)
		remaining := p.Task.Scaled(1 - phi)
		failExtra := clampProb(remaining.Survival(p.Deadline - p.TauEst))
		if p.Deadline-p.TauEst <= remaining.TMin {
			failExtra = 1
		}
		return pocdFromTaskFailure(failOrig*powInt(failExtra, r+1), p.N)
	}
}

// refMachineTime re-derives Theorems 2, 4, 6 with the models' exact operation
// order but none of the kernel's caching.
func refMachineTime(s Strategy, p Params, r int) float64 {
	switch s {
	case StrategyClone:
		return float64(p.N) * (float64(r)*p.TauKill + p.Task.ExpectedMin(r+1))
	case StrategyRestart:
		if r == 0 {
			return float64(p.N) * p.Task.Mean()
		}
		pMiss := p.Task.Survival(p.Deadline)
		meanHit := p.Task.MeanBelow(p.Deadline)
		straggler := p.TauEst + float64(r)*(p.TauKill-p.TauEst) + restartSurvivor(p, r)
		return float64(p.N) * (meanHit*(1-pMiss) + straggler*pMiss)
	default: // StrategyResume
		phi := p.phi()
		pMiss := p.Task.Survival(p.Deadline)
		meanHit := p.Task.MeanBelow(p.Deadline)
		if r < 0 {
			r = 0
		}
		survivor := resumeSurvivor(p.Task.TMin, p.Task.Beta, 1-phi, r)
		straggler := p.TauEst + float64(r)*(p.TauKill-p.TauEst) + survivor
		return float64(p.N) * (meanHit*(1-pMiss) + straggler*pMiss)
	}
}

// sameBits reports float64 equality at the bit level (NaN == NaN, 0 != -0).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// kernelProbeRs covers the optimizer's working range: the dense small-r scan,
// a few mid-range points, and large r values deep into the powTab range.
var kernelProbeRs = []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 100, 1023, 1 << 14, 1<<20 - 1, 1 << 20}

// TestPropertyKernelBitIdentical: for random parameter points, the Evaluator
// returns bit-identical PoCD, MachineTime, and Gamma to both the plain model
// and the from-scratch reference forms, at every probed r.
func TestPropertyKernelBitIdentical(t *testing.T) {
	f := func(nRaw, dRaw, bRaw, tRaw uint32) bool {
		p := propParams(nRaw, dRaw, bRaw, tRaw)
		if p.Validate() != nil {
			return true
		}
		var e Evaluator
		for _, s := range Strategies() {
			m := NewModel(s, p)
			e.Reset(s, p)
			if !sameBits(e.Gamma(), m.Gamma()) {
				t.Logf("%v gamma: kernel %v model %v", s, e.Gamma(), m.Gamma())
				return false
			}
			for _, r := range kernelProbeRs {
				kp, kt := e.PoCD(r), e.MachineTime(r)
				if !sameBits(kp, m.PoCD(r)) || !sameBits(kt, m.MachineTime(r)) {
					t.Logf("%v r=%d: kernel (%v, %v) model (%v, %v)",
						s, r, kp, kt, m.PoCD(r), m.MachineTime(r))
					return false
				}
				if !sameBits(kp, refPoCD(s, p, r)) || !sameBits(kt, refMachineTime(s, p, r)) {
					t.Logf("%v r=%d: kernel (%v, %v) reference (%v, %v)",
						s, r, kp, kt, refPoCD(s, p, r), refMachineTime(s, p, r))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyKernelAdvance: the incremental Seek/Advance path yields the
// same bits as direct probes, stepping through a contiguous range.
func TestPropertyKernelAdvance(t *testing.T) {
	f := func(nRaw, dRaw, bRaw, tRaw uint32, startRaw uint8) bool {
		p := propParams(nRaw, dRaw, bRaw, tRaw)
		if p.Validate() != nil {
			return true
		}
		start := int(startRaw % 64)
		var e Evaluator
		for _, s := range Strategies() {
			e.Reset(s, p)
			e.Seek(start)
			for r := start; r < start+32; r++ {
				pr := e.Advance()
				if pr.R != r {
					t.Logf("%v: Advance cursor %d, want %d", s, pr.R, r)
					return false
				}
				if !sameBits(pr.PoCD, e.PoCD(r)) || !sameBits(pr.MachineTime, e.MachineTime(r)) {
					t.Logf("%v r=%d: Advance (%v, %v) direct (%v, %v)",
						s, r, pr.PoCD, pr.MachineTime, e.PoCD(r), e.MachineTime(r))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWaveModelKernel: the wave wrapper, which evaluates sliced waves
// through the kernel, returns bit-identical values to slicing evaluated by
// the plain models.
func TestPropertyWaveModelKernel(t *testing.T) {
	f := func(nRaw, dRaw, bRaw, tRaw uint32, slotRaw uint8, rRaw uint8) bool {
		p := propParams(nRaw, dRaw, bRaw, tRaw)
		if p.Validate() != nil {
			return true
		}
		slots := int(slotRaw%64) + 1
		r := int(rRaw % 12)
		for _, s := range Strategies() {
			inner := NewModel(s, p)
			w, err := NewWaveModel(inner, slots)
			if err != nil {
				t.Logf("wave model: %v", err)
				return false
			}
			// Reference: the same slicing rules evaluated by a plain model.
			waves := w.WavesAtR(r)
			wantPoCD, wantMT := inner.PoCD(r), inner.MachineTime(r)
			if waves > 1 {
				wp := w.waveParams(waves)
				if wp.Deadline <= wp.Task.TMin || wp.TauKill > wp.Deadline {
					wantPoCD = 0
				} else {
					wantPoCD = NewModel(s, wp).PoCD(r)
				}
				if wp.Deadline > wp.Task.TMin {
					wantMT = NewModel(s, wp).MachineTime(r)
				}
			}
			if !sameBits(w.PoCD(r), wantPoCD) || !sameBits(w.MachineTime(r), wantMT) {
				t.Logf("%v slots=%d r=%d: wave (%v, %v) reference (%v, %v)",
					s, slots, r, w.PoCD(r), w.MachineTime(r), wantPoCD, wantMT)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPowTab: the squares table replays powInt's exact multiply
// sequence, so every in-range exponent matches bit for bit; out-of-range
// exponents (negative, >= 2^powTabBits) fall back to powInt by construction.
func TestPropertyPowTab(t *testing.T) {
	f := func(xRaw uint32, nRaw uint32) bool {
		// Bases in (0, 1], the probability range the kernel uses.
		x := (float64(xRaw%1_000_000) + 1) / 1_000_000
		var tab powTab
		tab.init(x)
		exps := []int{
			0, 1, 2, 3, int(nRaw % 64), int(nRaw % 4096), int(nRaw) % (1 << powTabBits),
			1<<powTabBits - 1, 1 << powTabBits, -3,
		}
		for _, n := range exps {
			if !sameBits(tab.pow(n), powInt(x, n)) {
				t.Logf("x=%v n=%d: powTab %v powInt %v", x, n, tab.pow(n), powInt(x, n))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// tailSimpson evaluates Theorem 4's non-elementary integral by brute-force
// composite Simpson under the double substitution u = 1/w (mapping the
// infinite domain to (0, 1/dBar]) followed by u = s^6/dBar on s in [0, 1].
// Near w = inf the transformed integrand behaves like u^(beta(r+1)-2), whose
// fractional power is a branch singularity that would cap Simpson at low
// order; the power substitution lifts it to at least s^5 smoothness (exponent
// 6*(beta(r+1)-2)+5 >= 6.2 on this grid), restoring O(h^4) convergence. This
// is the high-resolution reference the series is pinned against: unlike the
// production adaptive quadrature, its error here is far below the series'
// own ~1e-14.
func tailSimpson(b, d, te, br, tm, dBar float64) float64 {
	f := func(s float64) float64 {
		if s == 0 {
			return 0
		}
		u := s * s * s * s * s * s / dBar
		w := 1 / u
		// g(u)*du/ds with g the 1/w-transformed integrand and du/ds = 6s^5/dBar.
		return math.Pow(d/(w+te), b) * math.Pow(tm/w, br) / (u * u) *
			6 * s * s * s * s * s / dBar
	}
	const n = 50_000 // even
	h := 1.0 / n
	sum := f(0) + f(1)
	for i := 1; i < n; i++ {
		weight := 4.0
		if i%2 == 0 {
			weight = 2.0
		}
		sum += weight * f(float64(i)*h)
	}
	return sum * h / 3
}

// TestRestartSurvivorTailSeries pins the series evaluation of Theorem 4's
// non-elementary integral against brute-force Simpson on a parameter grid
// away from the underflow corners, where both evaluations are accurate.
func TestRestartSurvivorTailSeries(t *testing.T) {
	for _, beta := range []float64{1.1, 1.5, 2.0, 3.0} {
		for _, dOverTm := range []float64{1.5, 2.5, 4.0, 6.0} {
			for _, teFrac := range []float64{0.1, 0.25, 0.4} {
				for r := 1; r <= 6; r++ {
					tm := 10.0
					d := tm * dOverTm
					te := teFrac * d
					dBar := d - te
					if dBar <= tm {
						continue
					}
					br := beta * float64(r)
					got := restartSurvivorTail(tm, beta, d, te, br, dBar)
					want := tailSimpson(beta, d, te, br, tm, dBar)
					if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-9 {
						t.Errorf("beta=%v D/tm=%v te/D=%v r=%d: series %v simpson %v rel %v",
							beta, dOverTm, teFrac, r, got, want, rel)
					}
				}
			}
		}
	}
}
