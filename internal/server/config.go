// Package server implements chronosd, the online speculation-planning
// service: a stdlib-only HTTP JSON front end over the chronos analytic and
// simulation layers. A cluster scheduler consults it per arriving
// deadline-critical job (POST /v1/plan), per admission batch under a shared
// machine-time budget (POST /v1/plan/batch), and for offline what-if
// analysis (GET /v1/tradeoff, POST /v1/simulate). Hot-path plans are served
// from a sharded LRU cache keyed by quantized job parameters, and all
// traffic is observable through GET /metrics in Prometheus text format.
package server

import (
	"log/slog"
	"runtime"
	"time"

	"chronos/internal/tenant"
)

// Config shapes one chronosd instance. The zero value is usable: every
// field has a production-sane default filled in by withDefaults.
type Config struct {
	// Addr is the listen address (host:port). Default ":8080".
	Addr string

	// CacheShards is the number of independently locked cache shards;
	// rounded up to a power of two. Default 16.
	CacheShards int
	// CacheCapacity is the total number of cached plans across all shards.
	// Zero means 4096; negative disables the cache.
	CacheCapacity int

	// Workers bounds the number of concurrent optimizations across all
	// batch requests. Default GOMAXPROCS.
	Workers int

	// MaxBodyBytes caps request bodies; larger requests get 413.
	// Default 1 MiB.
	MaxBodyBytes int64

	// MaxBatchJobs caps the jobs accepted by one /v1/plan/batch call.
	// Default 1024.
	MaxBatchJobs int
	// MaxSimJobs and MaxSimTasks bound /v1/simulate runs (jobs per run,
	// tasks per job) so a single request cannot monopolize the server.
	// Defaults 500 and 5000.
	MaxSimJobs  int
	MaxSimTasks int
	// MaxSimTotalTasks bounds the summed task count of one simulation
	// request (the discrete-event cost driver). Default 50000.
	MaxSimTotalTasks int
	// MaxTradeoffPoints caps the r range of /v1/tradeoff. Default 256.
	MaxTradeoffPoints int

	// MaxReplayJobs caps the jobs of one POST /v1/replay stream (uploaded
	// or generated server-side). The streaming engine's memory tracks
	// in-flight jobs rather than the trace, so this is deliberately far
	// above MaxSimJobs; it bounds CPU commitment, not allocation.
	// Default 100000.
	MaxReplayJobs int
	// MaxActiveReplays bounds concurrently running /v1/replay streams;
	// excess requests get 503 with Retry-After. Replays are long
	// whole-simulation CPU commitments, so this keeps a burst of them from
	// starving the planning hot path. Default 4.
	MaxActiveReplays int

	// Self and Peers are the initial consistent-hash ring membership: Self
	// is this replica's advertised base URL, Peers the fleet's base URLs
	// (Self may be included or not). Both empty disables sharding; Peers
	// without Self is a startup error. Swappable at runtime with
	// Server.SetRing.
	Self  string
	Peers []string
	// RingVirtualNodes is the per-member virtual-node count of the ring.
	// Zero means ring.DefaultVirtualNodes.
	RingVirtualNodes int
	// ForwardTimeout bounds one cross-replica forward before local
	// fallback. Default 2 s.
	ForwardTimeout time.Duration
	// BreakerThreshold is the consecutive forward failures that open a
	// peer's circuit; BreakerCooldown is how long an open circuit skips the
	// peer before admitting a single half-open probe. Defaults 3 and 5 s.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// HeartbeatInterval turns on health-driven membership: every interval,
	// this replica probes each configured member's GET /healthz and evicts
	// or re-admits members from its effective ring view (see health.go).
	// Zero (the default) disables the monitor — membership stays static.
	HeartbeatInterval time.Duration
	// SuspectAfter is the consecutive failed probes before a member is
	// suspected dead and evicted; ReadmitAfter the consecutive successes
	// before a suspect is re-admitted. Defaults 3 and 2.
	SuspectAfter int
	ReadmitAfter int
	// Replication is the hot-key copy count R: each cached plan lives on
	// its ring owner plus the next R−1 ring successors (the owner pushes
	// copies asynchronously), and forwards read from a replica when the
	// owner is unreachable. 1 (the default) keeps single-copy placement.
	Replication int

	// Logger receives structured logs: sampled per-request lines (trace ID,
	// route, status, stage breakdown) and unsampled 5xx lines. Nil disables
	// request logging entirely — the zero-config embedded/test server and
	// the benchmarks run silent.
	Logger *slog.Logger
	// LogSample logs every Nth request line (5xx lines always log). Zero or
	// one logs every request; production fleets raise it so the cached plan
	// path does not pay a JSON encode per request.
	LogSample int
	// TraceRingSize is how many finished request snapshots /debug/traces
	// retains. Zero means obs.DefaultTraceRingSize (256).
	TraceRingSize int

	// Tenants is the initial multi-tenant budget registry. Nil disables
	// tenant routing: /v1/admit answers 404 and the tenant field on
	// /v1/plan and /v1/plan/batch is rejected. Swappable at runtime with
	// Server.SetTenants.
	Tenants *tenant.Registry

	// Escrow turns on fleet-exact tenant accounting: the ring owner of each
	// tenant key holds the authoritative pool, every other replica debits a
	// local lease topped up over the internal /v1/escrow/lease API. Off, the
	// fleet runs the legacy per-replica approximation (each replica holds a
	// full copy of every pool).
	Escrow bool
	// Store is the snapshot+WAL durability layer for escrow accounting and
	// the plan-cache dump (opened from -data-dir). Nil keeps the ledger
	// memory-only; escrow still enforces fleet-exactness, it just cannot
	// survive an owner restart.
	Store *tenant.Store
	// EscrowLeaseTTL is how long a lease stays valid without a renewal
	// before the owner reclaims its escrow. Default tenant.DefaultLeaseTTL.
	EscrowLeaseTTL time.Duration
	// EscrowLeaseFraction is the share of a tenant's total budget one holder
	// targets for its local lease (top-ups ask for enough to reach it).
	// Default 0.1.
	EscrowLeaseFraction float64
	// EscrowSnapshotInterval is how often the owner folds the WAL into a
	// fresh snapshot. Default 30 s.
	EscrowSnapshotInterval time.Duration

	// ReadTimeout, WriteTimeout and IdleTimeout are the http.Server
	// limits. Defaults 10 s / 60 s / 120 s (writes include simulation
	// runs, hence the longer budget).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// ShutdownGrace bounds graceful drain on shutdown. Default 10 s.
	ShutdownGrace time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatchJobs <= 0 {
		c.MaxBatchJobs = 1024
	}
	if c.MaxSimJobs <= 0 {
		c.MaxSimJobs = 500
	}
	if c.MaxSimTasks <= 0 {
		c.MaxSimTasks = 5000
	}
	if c.MaxSimTotalTasks <= 0 {
		c.MaxSimTotalTasks = 50000
	}
	if c.MaxTradeoffPoints <= 0 {
		c.MaxTradeoffPoints = 256
	}
	if c.MaxReplayJobs <= 0 {
		c.MaxReplayJobs = 100000
	}
	if c.MaxActiveReplays <= 0 {
		c.MaxActiveReplays = 4
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.EscrowLeaseTTL <= 0 {
		c.EscrowLeaseTTL = tenant.DefaultLeaseTTL
	}
	if c.EscrowLeaseFraction <= 0 || c.EscrowLeaseFraction > 1 {
		c.EscrowLeaseFraction = 0.1
	}
	if c.EscrowSnapshotInterval <= 0 {
		c.EscrowSnapshotInterval = 30 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 60 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 120 * time.Second
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	return c
}
