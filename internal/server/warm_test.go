package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"testing"

	"chronos"
	"chronos/internal/ring"
	"chronos/internal/tenant"
)

// TestCacheOwnedTruncatesAtWarmCap pins the maxCacheWarmEntries bound on
// both sides of the peer-warm path: a holder owning far more cached keys
// than the cap gets exactly the cap from GET /v1/cache/owned, and
// WarmFromPeers loads exactly that many and terminates.
func TestCacheOwnedTruncatesAtWarmCap(t *testing.T) {
	const total = 3 * maxCacheWarmEntries
	s, ts := newTestServer(t, Config{CacheCapacity: 4 * maxCacheWarmEntries})
	holder := "http://holder.invalid:9"
	if err := s.SetRing(ring.Membership{Self: ts.URL, Peers: []string{holder}}); err != nil {
		t.Fatal(err)
	}
	entries := make([]savedPlan, total)
	for i := range entries {
		entries[i] = savedPlan{Key: fmt.Sprintf("warm-key-%d", i), Plan: chronos.Plan{Strategy: chronos.Clone, PoCD: 1}}
	}
	if got := s.cache.load(entries); got != total {
		t.Fatalf("cache.load loaded %d entries, want %d", got, total)
	}

	// On a 2-member ring the holder owns roughly half of the keys — well
	// above the cap, so the response must truncate to exactly the cap.
	resp, err := http.Get(ts.URL + "/v1/cache/owned?holder=" + url.QueryEscape(holder))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache/owned: status = %d, want 200", resp.StatusCode)
	}
	out := decodeBody[cacheOwnedResponse](t, resp)
	if len(out.Plans) != maxCacheWarmEntries {
		t.Fatalf("cache/owned returned %d plans, want the %d cap (holder owns ~%d of %d keys)",
			len(out.Plans), maxCacheWarmEntries, total/2, total)
	}
	rs := s.ringSt.Load()
	for _, p := range out.Plans {
		if owner, _ := rs.ring.Owner(p.Key); owner != holder {
			t.Fatalf("cache/owned leaked key %q owned by %q, want only %q", p.Key, owner, holder)
		}
	}

	// Pull side: the warming replica loads the capped response and stops.
	w := New(Config{CacheCapacity: 4 * maxCacheWarmEntries})
	if err := w.SetRing(ring.Membership{Self: holder, Peers: []string{ts.URL}}); err != nil {
		t.Fatal(err)
	}
	if got := w.WarmFromPeers(context.Background()); got != maxCacheWarmEntries {
		t.Fatalf("WarmFromPeers loaded %d entries, want %d", got, maxCacheWarmEntries)
	}
	if _, _, n := w.CacheStats(); n != maxCacheWarmEntries {
		t.Fatalf("warmed replica caches %d entries, want %d", n, maxCacheWarmEntries)
	}
}

// TestCorruptCacheDumpIsSkippedAndRewritten: a torn plancache.json (the
// dump a power loss mid-write could leave without the fsync ceremony) must
// not stop the server from booting; the next graceful shutdown rewrites a
// valid dump that the following boot warms from.
func TestCorruptCacheDumpIsSkippedAndRewritten(t *testing.T) {
	dir := t.TempDir()
	open := func() *tenant.Store {
		st, err := tenant.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if err := os.WriteFile(filepath.Join(dir, cacheDumpFile), []byte(`[{"key":"torn-mid-wr`), 0o644); err != nil {
		t.Fatal(err)
	}

	store1 := open()
	s1, ts1 := newTestServer(t, Config{Store: store1})
	if _, _, n := s1.CacheStats(); n != 0 {
		t.Fatalf("corrupt dump warmed %d entries, want 0", n)
	}
	resp := postJSON(t, ts1.URL+"/v1/plan", planRequest{Job: testJob(), Econ: testEcon()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan after corrupt-dump boot: status = %d, want 200", resp.StatusCode)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s1.Close() // durably rewrites the dump
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := open()
	s2, _ := newTestServer(t, Config{Store: store2})
	t.Cleanup(func() {
		s2.Close()
		_ = store2.Close()
	})
	if _, _, n := s2.CacheStats(); n != 1 {
		t.Fatalf("recovered boot warmed %d entries, want the 1 plan served before shutdown", n)
	}
}
