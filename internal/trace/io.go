package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Trace I/O: job streams round-trip through a small CSV schema so that
// generated traces can be archived, inspected, or replaced with records
// distilled from a real cluster trace (the Google trace's job events reduce
// to exactly these columns after Pareto fitting — see FitPareto).
//
// Schema (with header):
//
//	id,arrival,num_tasks,tmin,beta,deadline

// csvHeader is the canonical column order.
var csvHeader = []string{"id", "arrival", "num_tasks", "tmin", "beta", "deadline"}

// WriteCSV encodes the job stream.
func WriteCSV(w io.Writer, jobs []JobRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, j := range jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			formatF(j.Arrival),
			strconv.Itoa(j.NumTasks),
			formatF(j.Dist.TMin),
			formatF(j.Dist.Beta),
			formatF(j.Deadline),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a job stream written by WriteCSV (or hand-assembled in
// the same schema). Records are validated: positive task counts and tmin,
// beta > 1, positive deadlines, non-negative arrivals.
func ReadCSV(r io.Reader) ([]JobRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want)
		}
	}

	var jobs []JobRecord
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		job, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

// parseRecord decodes and validates one CSV row.
func parseRecord(rec []string) (JobRecord, error) {
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return JobRecord{}, fmt.Errorf("bad id %q", rec[0])
	}
	arrival, err := parseF(rec[1], "arrival")
	if err != nil {
		return JobRecord{}, err
	}
	numTasks, err := strconv.Atoi(rec[2])
	if err != nil {
		return JobRecord{}, fmt.Errorf("bad num_tasks %q", rec[2])
	}
	tmin, err := parseF(rec[3], "tmin")
	if err != nil {
		return JobRecord{}, err
	}
	beta, err := parseF(rec[4], "beta")
	if err != nil {
		return JobRecord{}, err
	}
	deadline, err := parseF(rec[5], "deadline")
	if err != nil {
		return JobRecord{}, err
	}

	switch {
	case arrival < 0:
		return JobRecord{}, fmt.Errorf("negative arrival %v", arrival)
	case numTasks < 1:
		return JobRecord{}, fmt.Errorf("num_tasks %d < 1", numTasks)
	case tmin <= 0:
		return JobRecord{}, fmt.Errorf("tmin %v <= 0", tmin)
	case beta <= 1:
		return JobRecord{}, fmt.Errorf("beta %v <= 1", beta)
	case deadline <= 0:
		return JobRecord{}, fmt.Errorf("deadline %v <= 0", deadline)
	}
	job := JobRecord{
		ID:       id,
		Arrival:  arrival,
		NumTasks: numTasks,
		Deadline: deadline,
	}
	job.Dist.TMin = tmin
	job.Dist.Beta = beta
	return job, nil
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func parseF(s, field string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", field, s)
	}
	return v, nil
}
