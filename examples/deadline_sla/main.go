// deadline_sla: budget planning against PoCD targets.
//
// A cloud operator offering deadline SLAs needs to answer: "to promise
// completion-before-deadline with probability p, which strategy do I run,
// with how many speculative copies, and what machine-time budget does that
// imply?" This example walks the tradeoff frontier of Section V for a batch
// analytics job at increasingly strict SLA levels.
//
// Run with:
//
//	go run ./examples/deadline_sla
package main

import (
	"fmt"
	"log"

	"chronos"
)

func main() {
	// A 50-task hourly reporting job with a tight 2-minute deadline on a
	// contended cluster (Pareto tail index 1.3 — heavy stragglers).
	job := chronos.JobParams{
		Tasks:    50,
		Deadline: 120,
		TMin:     15,
		Beta:     1.3,
		TauEst:   36,
		TauKill:  72,
	}
	econ := chronos.Econ{Theta: 1e-4, UnitPrice: 1}

	fmt.Println("SLA planning for a 50-task job, D = 120 s, tasks ~ Pareto(15, 1.3)")
	fmt.Println()
	fmt.Printf("%-8s %-22s %-4s %-10s %-12s\n", "target", "cheapest strategy", "r", "PoCD", "budget (C*s)")

	for _, target := range []float64{0.90, 0.95, 0.99, 0.999, 0.9999} {
		best := chronos.Plan{}
		found := false
		for _, s := range chronos.ChronosStrategies() {
			plan, err := chronos.MinCostForPoCD(s, job, econ, target)
			if err != nil {
				continue // this strategy cannot reach the target
			}
			if !found || plan.Cost < best.Cost {
				best, found = plan, true
			}
		}
		if !found {
			fmt.Printf("%-8.4f unreachable with any strategy\n", target)
			continue
		}
		fmt.Printf("%-8.4f %-22s %-4d %-10.4f %-12.1f\n",
			target, best.Strategy, best.R, best.PoCD, best.Cost)
	}

	// The other direction: what is the best achievable PoCD for a fixed
	// budget? Walk the Speculative-Resume frontier.
	fmt.Println("\nSpeculative-Resume frontier (budget -> achievable PoCD):")
	curve, err := chronos.TradeoffCurve(chronos.SpeculativeResume, job, econ, 6)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range curve {
		fmt.Printf("  r=%d  budget=%8.1f  PoCD=%.5f\n", pt.R, pt.Cost, pt.PoCD)
	}
}
