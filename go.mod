module chronos

go 1.22
