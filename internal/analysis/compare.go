package analysis

import "math"

// powInt computes x^n for integer n >= 0 by repeated squaring; it avoids the
// accuracy loss of math.Pow for exact small integer exponents and is the
// hot-path power in the PoCD formulas.
func powInt(x float64, n int) float64 {
	if n < 0 {
		return 1 / powInt(x, -n)
	}
	result := 1.0
	for n > 0 {
		if n&1 == 1 {
			result *= x
		}
		x *= x
		n >>= 1
	}
	return result
}

// Theorem 7 establishes, for a common r:
//
//  1. R_Clone > R_S-Restart (always),
//  2. R_S-Resume > R_S-Restart (whenever D-tauEst >= (1-phi)*tmin),
//  3. R_Clone >< R_S-Resume with a crossover in r.
//
// CompareAtR evaluates all three orderings from the closed forms.

// Comparison reports the Theorem 7 orderings at a given r.
type Comparison struct {
	R                   int
	CloneOverRestart    bool // conclusion 1
	ResumeOverRestart   bool // conclusion 2
	CloneOverResume     bool // conclusion 3 at this r
	CloneResumeCrossR   float64
	Clone, Restart, Res float64 // the three PoCDs
}

// CompareAtR evaluates the three PoCDs and their orderings at r.
func CompareAtR(p Params, r int) Comparison {
	c := Clone{P: p}.PoCD(r)
	re := Restart{P: p}.PoCD(r)
	rs := Resume{P: p}.PoCD(r)
	return Comparison{
		R:                 r,
		CloneOverRestart:  c >= re,
		ResumeOverRestart: rs >= re,
		CloneOverResume:   c >= rs,
		CloneResumeCrossR: CloneResumeCrossover(p),
		Clone:             c,
		Restart:           re,
		Res:               rs,
	}
}

// CloneResumeCrossover returns the r above which Clone's PoCD exceeds
// Speculative-Resume's (conclusion 3 of Theorem 7). Comparing per-task
// failure probabilities,
//
//	q_Clone(r)/q_Resume(r) = [(D-tauEst) / ((1-phi)*D)]^(beta*(r+1)) *
//	                         (D / tmin)^... (after cancellation)
//
// solving q_Clone(r) = q_Resume(r) for real r gives
//
//	r* = ln((1-phi)*tmin / (D-tauEst)) / ln((D-tauEst) / ((1-phi)*D)).
//
// (The published Eq. 60 carries stray beta exponents that cancel in the
// derivation from Eq. 59; the formula here is consistent with Eq. 59 and is
// property-tested against the raw PoCD formulas.)
//
// For a straggler, D-tauEst < (1-phi)*D, so the log base is < 1 and Clone
// wins for r > r*. Returns -Inf if Clone wins for every r >= 0, +Inf if
// Resume always wins.
func CloneResumeCrossover(p Params) float64 {
	phi := p.phi()
	dBar := p.Deadline - p.TauEst
	phiBar := 1 - phi
	den := math.Log(dBar / (phiBar * p.Deadline))
	num := math.Log(phiBar * p.Task.TMin / dBar)
	if den == 0 {
		if num < 0 {
			return math.Inf(-1) // equal bases: Clone never overtaken
		}
		return math.Inf(1)
	}
	return num / den
}
