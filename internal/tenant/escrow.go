// Escrow ledger: the fleet-exact budget machinery. One replica — the ring
// owner of the tenant key — is the tenant's pool owner and holds the
// authoritative token bucket. Every other replica debits a local Lease, a
// sub-budget the owner escrowed to it. Because a grant debits the pool
// before the lease exists, the sum of budget spendable anywhere in the fleet
// (pool level + outstanding escrow) never exceeds the configured budget:
// over-commit is impossible by construction, not by synchronization luck.
//
// Conservative accounting rules keep the invariant through every failure:
//
//   - A grant debits the pool first and is WAL-logged; the holder only
//     learns about budget the owner has already given up.
//   - A holder's spent reports shrink its outstanding escrow but never touch
//     the pool (the grant already paid).
//   - A released lease credits back only its unspent escrow.
//   - A reclaimed lease (holder silent past TTL) credits back nothing: the
//     owner cannot know how much of the escrow was spent, so it treats all
//     of it as spent. The fleet under-admits by at most one lease per
//     crashed holder — never over-admits.
package tenant

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLeaseTTL is the escrow lease lifetime when the serving layer does
// not configure one. Holders renew at one third of it.
const DefaultLeaseTTL = 15 * time.Second

// EscrowLedger is the owner-side escrow state for every tenant this replica
// is authoritative for. All methods are safe for concurrent use.
//
// Locking: every ledger mutation appends its WAL record while still holding
// e.mu, and Compact holds e.mu across both the state capture and the store
// write. That single ordering (e.mu, then the store's own lock) is what makes
// recovery bit-exact: no record can slip between "folded into the snapshot"
// and "survives in the truncated WAL", so boot replay applies each mutation
// exactly once.
type EscrowLedger struct {
	mu     sync.Mutex
	reg    *Registry
	leases map[leaseKey]*escrowGrant
	store  *Store // nil: exact but not durable
	ttl    time.Duration
	now    func() time.Time
}

// escrowGrant is one holder's outstanding lease as the owner sees it.
type escrowGrant struct {
	escrow float64
	expiry time.Time
}

// NewEscrowLedger builds a ledger over reg. store may be nil (no
// durability); ttl <= 0 means DefaultLeaseTTL.
func NewEscrowLedger(reg *Registry, store *Store, ttl time.Duration) *EscrowLedger {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &EscrowLedger{
		reg:    reg,
		leases: make(map[leaseKey]*escrowGrant),
		store:  store,
		ttl:    ttl,
		now:    time.Now,
	}
}

// TTL returns the lease lifetime grants carry.
func (e *EscrowLedger) TTL() time.Duration { return e.ttl }

// pool resolves tenant against the live registry under e.mu.
func (e *EscrowLedger) pool(tenant string) (*Pool, error) {
	p := e.reg.Get(tenant)
	if p == nil {
		return nil, fmt.Errorf("tenant: unknown pool %q", tenant)
	}
	return p, nil
}

// DebitLocal is the owner's own serving debit: authoritative, WAL-logged.
func (e *EscrowLedger) DebitLocal(tenant string, cost float64) (ok bool, remaining float64) {
	e.mu.Lock()
	p, err := e.pool(tenant)
	if err != nil {
		e.mu.Unlock()
		return false, 0
	}
	ok, remaining = p.TryDebit(cost)
	if ok && cost > 0 {
		// Under e.mu, like every other ledger append: a concurrent Compact
		// must never snapshot the post-debit level and then leave this record
		// alive in the WAL (boot would apply the debit twice).
		_ = e.store.Append(Record{Op: OpDebit, Tenant: tenant, Amount: cost})
	}
	e.mu.Unlock()
	return ok, remaining
}

// Grant escrows up to want machine-seconds from tenant's pool into holder's
// lease, extending the lease expiry. spent is the holder's debits since its
// last report and is acknowledged first (shrinking the outstanding escrow),
// so one round trip both settles and tops up. granted may be zero when the
// pool is dry. release ends the lease instead, crediting unspent escrow
// back.
func (e *EscrowLedger) Grant(tenant, holder string, spent, want float64, release bool) (granted, poolRemaining float64, err error) {
	if holder == "" {
		return 0, 0, fmt.Errorf("tenant: escrow holder must be non-empty")
	}
	if spent < 0 || math.IsNaN(spent) || want < 0 || math.IsNaN(want) {
		return 0, 0, fmt.Errorf("tenant: escrow amounts must be non-negative")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	p, err := e.pool(tenant)
	if err != nil {
		return 0, 0, err
	}
	k := leaseKey{tenant, holder}
	g := e.leases[k]

	if spent > 0 && g != nil {
		ack := spent
		if ack > g.escrow {
			// A holder can briefly report more spend than the owner tracks
			// (e.g. the owner reclaimed and re-granted around a partition);
			// never let the report drive escrow negative.
			ack = g.escrow
		}
		g.escrow -= ack
		_ = e.store.Append(Record{Op: OpSpent, Tenant: tenant, Holder: holder, Amount: ack})
	}

	if release {
		if g != nil {
			if g.escrow > 0 {
				p.Credit(g.escrow)
				_ = e.store.Append(Record{Op: OpCredit, Tenant: tenant, Amount: g.escrow})
			}
			delete(e.leases, k)
			_ = e.store.Append(Record{Op: OpRelease, Tenant: tenant, Holder: holder})
		}
		return 0, p.Remaining(), nil
	}

	granted, poolRemaining = p.DebitUpTo(want)
	if g == nil {
		g = &escrowGrant{}
		e.leases[k] = g
	}
	g.escrow += granted
	g.expiry = e.now().Add(e.ttl)
	if granted > 0 {
		_ = e.store.Append(Record{
			Op: OpGrant, Tenant: tenant, Holder: holder,
			Amount: granted, ExpiryUnixNano: g.expiry.UnixNano(),
		})
	} else if g.escrow > 0 {
		// A renewal against a dry pool still extends the lease in memory; it
		// must extend it on disk too, or a restarted owner restores the lease
		// with a stale expiry and reclaims escrow the live holder is spending.
		_ = e.store.Append(Record{
			Op: OpRenew, Tenant: tenant, Holder: holder,
			ExpiryUnixNano: g.expiry.UnixNano(),
		})
	}
	return granted, poolRemaining, nil
}

// Reclaimed describes one lease ended because its holder went silent.
type Reclaimed struct {
	Tenant string
	Holder string
	// Escrow is the outstanding (conservatively forfeited) escrow.
	Escrow float64
}

// ReclaimExpired ends every lease whose expiry has passed. The outstanding
// escrow is treated as spent — no credit — so a holder that died mid-lease
// can never cause over-commit; with a refilling pool the forfeited budget
// grows back.
func (e *EscrowLedger) ReclaimExpired() []Reclaimed {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	var out []Reclaimed
	for k, g := range e.leases {
		if g.expiry.After(now) {
			continue
		}
		out = append(out, Reclaimed{Tenant: k.tenant, Holder: k.holder, Escrow: g.escrow})
		delete(e.leases, k)
		_ = e.store.Append(Record{Op: OpReclaim, Tenant: k.tenant, Holder: k.holder})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Holder < out[j].Holder
	})
	return out
}

// Outstanding returns the lease count and summed escrow for tenant.
func (e *EscrowLedger) Outstanding(tenant string) (holders int, escrow float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k, g := range e.leases {
		if k.tenant == tenant {
			holders++
			escrow += g.escrow
		}
	}
	return holders, escrow
}

// Restore loads the recovered store state into the live registry: pool
// levels are clamped to the (possibly reconfigured) budgets and outstanding
// leases resume with their persisted expiries. Call once at boot, before
// serving. Tenants present in the state but absent from the registry are
// dropped. Returns the leases that were already expired at restore time,
// reclaimed exactly as ReclaimExpired would.
func (e *EscrowLedger) Restore(state Snapshot) []Reclaimed {
	e.mu.Lock()
	for name, level := range state.Pools {
		if p := e.reg.Get(name); p != nil {
			p.SetLevel(level)
		}
	}
	for _, l := range state.Leases {
		if e.reg.Get(l.Tenant) == nil || l.Escrow <= 0 {
			continue
		}
		e.leases[leaseKey{l.Tenant, l.Holder}] = &escrowGrant{
			escrow: l.Escrow,
			expiry: time.Unix(0, l.ExpiryUnixNano),
		}
	}
	e.mu.Unlock()
	return e.ReclaimExpired()
}

// SnapshotState captures the current pool levels and outstanding leases.
// For durability use Compact, which captures the state and writes the
// snapshot under one hold of the ledger lock; this accessor is for
// inspection only.
func (e *EscrowLedger) SnapshotState() (pools map[string]float64, leases []LeaseRecord) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

// snapshotLocked is SnapshotState's body; the caller holds e.mu.
func (e *EscrowLedger) snapshotLocked() (pools map[string]float64, leases []LeaseRecord) {
	pools = make(map[string]float64, e.reg.Len())
	for _, p := range e.reg.Pools() {
		pools[p.Name()] = p.Remaining()
	}
	leases = make([]LeaseRecord, 0, len(e.leases))
	for k, g := range e.leases {
		leases = append(leases, LeaseRecord{
			Tenant: k.tenant, Holder: k.holder,
			Escrow: g.escrow, ExpiryUnixNano: g.expiry.UnixNano(),
		})
	}
	sort.Slice(leases, func(i, j int) bool {
		if leases[i].Tenant != leases[j].Tenant {
			return leases[i].Tenant < leases[j].Tenant
		}
		return leases[i].Holder < leases[j].Holder
	})
	return pools, leases
}

// Compact snapshots the current state into the store and truncates the WAL.
// e.mu is held across both the capture and the store write: because every
// mutation appends its WAL record under e.mu too, no grant or debit can land
// between "state captured" and "WAL truncated" — the snapshot's sequence
// number exactly covers the records it folded in, and nothing else is lost.
func (e *EscrowLedger) Compact() error {
	if e.store == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	pools, leases := e.snapshotLocked()
	return e.store.Compact(pools, leases)
}

// WALFailures reports how many ledger appends the store has failed to
// persist, and the most recent error. Nonzero means recovered state can be
// stale (spent budget resurrected at the next boot); the serving layer
// surfaces it as a health condition. A nil or store-less ledger reports zero.
func (e *EscrowLedger) WALFailures() (uint64, error) {
	return e.store.AppendFailures()
}

// Rebase moves the ledger onto a reloaded registry. Pools that carried
// their token bucket across the reload (same budget shape — see
// Registry.Rebase) already reflect every grant, so their leases ride along
// untouched. Pools that started fresh (new, or reshaped budget) have full
// buckets that do NOT account for outstanding leases, so the summed escrow
// is re-debited from them — otherwise a reload would double-count leased
// budget: once in the holder's lease and once in the fresh pool. Leases of
// tenants that disappeared are dropped.
func (e *EscrowLedger) Rebase(old, fresh *Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reg = fresh
	reserve := make(map[string]float64)
	for k, g := range e.leases {
		p := fresh.Get(k.tenant)
		if p == nil {
			delete(e.leases, k)
			continue
		}
		if p.SharesLedger(old.Get(k.tenant)) {
			continue // grants already debited from this bucket
		}
		reserve[k.tenant] += g.escrow
	}
	for name, escrow := range reserve {
		p := fresh.Get(name)
		p.ForceDebit(escrow)
		_ = e.store.Append(Record{Op: OpDebit, Tenant: name, Amount: escrow})
	}
}

// --- holder side ----------------------------------------------------------

// leaseMicros is the Lease fixed-point scale: one micro machine-second.
const leaseMicros = 1e6

// Lease is the holder-side sub-budget: the lock-free fast path every
// non-owner replica debits against. Levels are fixed-point micro
// machine-seconds in an atomic, so the serving path's debit is one CAS —
// no mutex, no owner round trip.
type Lease struct {
	level atomic.Int64 // remaining, micro machine-seconds
	spent atomic.Int64 // debited since the last owner report
	// debits counts successful TryDebit calls — the lease CAS operations.
	// Batched admission exists to collapse N per-job debits into one; the
	// escrow fleet test reads this counter to prove it actually does.
	debits atomic.Uint64
}

// TryDebit deducts cost if the lease covers it. Costs round up to the next
// micro machine-second, so fixed-point truncation can never under-charge.
func (l *Lease) TryDebit(cost float64) (ok bool, remaining float64) {
	if cost < 0 || math.IsNaN(cost) {
		cost = 0
	}
	c := int64(math.Ceil(cost * leaseMicros))
	for {
		cur := l.level.Load()
		if cur < c {
			return false, float64(cur) / leaseMicros
		}
		if l.level.CompareAndSwap(cur, cur-c) {
			l.spent.Add(c)
			l.debits.Add(1)
			return true, float64(cur-c) / leaseMicros
		}
	}
}

// Fund adds a granted amount to the lease.
func (l *Lease) Fund(amount float64) {
	if amount <= 0 || math.IsNaN(amount) {
		return
	}
	l.level.Add(int64(amount * leaseMicros))
}

// Level returns the remaining lease budget.
func (l *Lease) Level() float64 {
	return float64(l.level.Load()) / leaseMicros
}

// Debits returns the number of successful TryDebit calls over the lease's
// lifetime.
func (l *Lease) Debits() uint64 {
	return l.debits.Load()
}

// TakeSpent atomically returns and resets the spend accumulated since the
// last call — the amount the next owner report acknowledges. Refund returns
// a taken amount that could not be reported (owner unreachable), so the next
// report carries it instead of losing the acknowledgment.
func (l *Lease) TakeSpent() float64 {
	return float64(l.spent.Swap(0)) / leaseMicros
}

// Refund re-adds an unreported spent amount after a failed owner report.
func (l *Lease) Refund(spent float64) {
	if spent <= 0 || math.IsNaN(spent) {
		return
	}
	l.spent.Add(int64(spent * leaseMicros))
}
