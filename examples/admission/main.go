// Example admission starts an in-process chronosd instance with two tenant
// budget pools (loaded from the adjacent tenants.json, the same format the
// chronosd -tenants flag reads) and plays the paper's online setting: jobs
// arrive one at a time and POST /v1/admit answers accept/reject plus a plan
// in one round trip, debiting each accepted plan's expected machine time
// from the tenant's ledger. Once the pool runs dry the optimizer first
// squeezes plans down to what the remaining budget affords, then rejects
// with a structured reason.
//
// Run with:
//
//	go run ./examples/admission
package main

import (
	"bytes"
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"chronos/internal/server"
	"chronos/internal/tenant"
)

//go:embed tenants.json
var tenantsJSON []byte

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "admission:", err)
		os.Exit(1)
	}
}

func run() error {
	pools, err := tenant.Parse(tenantsJSON)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{Tenants: pools})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("chronosd serving on", base)

	job := map[string]any{
		"tasks": 10, "deadline": 100, "tmin": 10, "beta": 1.5,
		"tauEst": 30, "tauKill": 60,
	}

	// A stream of identical deadline-critical jobs for one tenant. The
	// econ field is omitted: the pool's defaults (theta, unitPrice, rmin)
	// apply. Watch the ledger drain, the plans shrink, and the admissions
	// flip to structured rejections.
	fmt.Println("\n--- POST /v1/admit until etl-nightly is exhausted ---")
	for i := 1; ; i++ {
		body, err := post(base+"/v1/admit", map[string]any{
			"tenant": "etl-nightly", "job": job,
		})
		if err != nil {
			return err
		}
		fmt.Printf("job %2d: %s\n", i, body)
		if strings.Contains(body, `"admitted":false`) {
			break
		}
		if i > 50 {
			return fmt.Errorf("pool never exhausted after %d admits", i)
		}
	}

	// The same ledger also backs tenant-routed planning: /v1/plan with a
	// tenant field debits the pool (429 once it cannot pay).
	fmt.Println("\n--- POST /v1/plan routed through the ad-hoc pool ---")
	for i := 1; i <= 3; i++ {
		body, err := post(base+"/v1/plan", map[string]any{
			"tenant": "ad-hoc", "job": job,
		})
		if err != nil {
			return err
		}
		fmt.Printf("plan %d: %s\n", i, body)
	}

	// Per-tenant observability: admits, rejects by reason, plans by
	// strategy, and the live ledger levels.
	fmt.Println("\n--- GET /metrics (tenant excerpt) ---")
	body, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "chronosd_tenant_") {
			fmt.Println(line)
		}
	}

	cancel()
	return <-done
}

func post(url string, payload any) (string, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(body)), nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(body)), nil
}
