package optimize

import (
	"errors"
	"math"
	"strings"
	"testing"

	"chronos/internal/analysis"
	"chronos/internal/pareto"
)

func cappedModel(t *testing.T, s analysis.Strategy) analysis.Model {
	t.Helper()
	dist, err := pareto.New(10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	p := analysis.Params{
		N: 10, Deadline: 100, Task: dist, TauEst: 30, TauKill: 60,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return analysis.NewModel(s, p)
}

func TestSolveCappedMatchesSolveWhenBudgetIsLoose(t *testing.T) {
	for _, s := range analysis.Strategies() {
		m := cappedModel(t, s)
		cfg := Config{Theta: 1e-4, UnitPrice: 1}
		un, err := Solve(m, cfg)
		if err != nil {
			t.Fatalf("%v: Solve: %v", s, err)
		}
		got, err := SolveCapped(m, cfg, un.MachineTime*2)
		if err != nil {
			t.Fatalf("%v: SolveCapped: %v", s, err)
		}
		if got != un {
			t.Errorf("%v: loose budget changed the plan: got %+v, want %+v", s, got, un)
		}
	}
}

func TestSolveCappedRespectsBudget(t *testing.T) {
	m := cappedModel(t, analysis.StrategyClone)
	cfg := Config{Theta: 1e-4, UnitPrice: 1}
	un, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if un.R == 0 {
		t.Skip("unconstrained optimum already r=0; cannot squeeze")
	}
	// A budget strictly between r=0 and the optimum's machine time must
	// yield an affordable, lower-r plan.
	budget := (m.MachineTime(0) + un.MachineTime) / 2
	got, err := SolveCapped(m, cfg, budget)
	if err != nil {
		t.Fatal(err)
	}
	if got.MachineTime > budget {
		t.Errorf("plan costs %v, budget %v", got.MachineTime, budget)
	}
	if got.R >= un.R {
		t.Errorf("squeezed plan r=%d should be below unconstrained r=%d", got.R, un.R)
	}
	if got.Utility > un.Utility {
		t.Errorf("constrained utility %v exceeds unconstrained %v", got.Utility, un.Utility)
	}
	// The scan must pick the best affordable r, not just any.
	for r := 0; r <= un.R; r++ {
		if m.MachineTime(r) <= budget && cfg.Utility(m, r) > got.Utility {
			t.Errorf("r=%d is affordable with utility %v > chosen %v",
				r, cfg.Utility(m, r), got.Utility)
		}
	}
}

func TestSolveCappedBudgetTooSmall(t *testing.T) {
	m := cappedModel(t, analysis.StrategyClone)
	cfg := Config{Theta: 1e-4, UnitPrice: 1}
	// Below even the r=0 machine time, nothing is affordable.
	_, err := SolveCapped(m, cfg, m.MachineTime(0)/2)
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Errorf("err = %v, want ErrBudgetTooSmall", err)
	}
	_, err = SolveCapped(m, cfg, 0)
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Errorf("zero budget: err = %v, want ErrBudgetTooSmall", err)
	}
}

// TestSolveCappedInfeasiblePrefix anchors the scan at the feasibility
// frontier: with an RMin that rules out small r, the squeezed plan must
// still be found (and satisfy the floor) rather than being rejected
// because the window opened on infeasible territory.
func TestSolveCappedInfeasiblePrefix(t *testing.T) {
	m := cappedModel(t, analysis.StrategyClone)
	cfg := Config{Theta: 1e-4, UnitPrice: 1, RMin: 0.9} // PoCD(0) ~ 0.73: r=0 infeasible
	if !math.IsInf(cfg.Utility(m, 0), -1) {
		t.Fatal("test premise broken: r=0 should be infeasible at RMin 0.9")
	}
	un, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the frontier by scan (small here) to size a budget between the
	// cheapest feasible plan and the unconstrained optimum.
	rFeas := 0
	for math.IsInf(cfg.Utility(m, rFeas), -1) {
		rFeas++
	}
	if rFeas >= un.R {
		t.Skip("no room between the frontier and the optimum")
	}
	budget := (m.MachineTime(rFeas) + un.MachineTime) / 2
	got, err := SolveCapped(m, cfg, budget)
	if err != nil {
		t.Fatal(err)
	}
	if got.MachineTime > budget {
		t.Errorf("plan costs %v, budget %v", got.MachineTime, budget)
	}
	if got.PoCD <= cfg.RMin {
		t.Errorf("plan PoCD %v at or below RMin %v", got.PoCD, cfg.RMin)
	}
	// Below the frontier's cost, rejection must name a finite need.
	_, err = SolveCapped(m, cfg, m.MachineTime(rFeas)/2)
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Fatalf("err = %v, want ErrBudgetTooSmall", err)
	}
	if s := err.Error(); strings.Contains(s, "+Inf") {
		t.Errorf("rejection names an infinite need: %s", s)
	}
}

func TestSolveCappedInfeasibleBeatsBudget(t *testing.T) {
	m := cappedModel(t, analysis.StrategyClone)
	cfg := Config{Theta: 1e-4, UnitPrice: 1, RMin: 1 - 1e-12}
	// RMin unreachable: infeasible no matter the budget.
	_, err := SolveCapped(m, cfg, math.Inf(1))
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}
