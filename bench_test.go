package chronos

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section. Run it with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigureN / BenchmarkTableN executes the corresponding
// experiment once per iteration and prints the regenerated rows on the
// first iteration (compare against EXPERIMENTS.md). Micro-benchmarks for
// the hot paths (Pareto sampling, the event queue, Algorithm 1) follow.

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"chronos/internal/analysis"
	"chronos/internal/experiment"
	"chronos/internal/optimize"
	"chronos/internal/pareto"
	"chronos/internal/sim"
)

// printOnce guards the one-time table dumps so -benchtime doesn't spam.
var printOnce sync.Map

func dumpOnce(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n=== %s ===\n%s\n", key, text)
	}
}

// BenchmarkFigure2 regenerates Figure 2(a)-(c): PoCD, cost, and utility of
// Hadoop-NS, Hadoop-S, Clone, S-Restart, and S-Resume on the four testbed
// benchmarks (100 jobs x 10 tasks each, deadlines 100/150 s, tauEst=40,
// tauKill=80, theta=1e-4).
func BenchmarkFigure2(b *testing.B) {
	r := experiment.DefaultRunner()
	cfg := experiment.DefaultFig2Config()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFigure2(r, cfg)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce("Figure 2 (PoCD / Cost / Utility per benchmark)",
			experiment.Fig2Table(rows).String())
	}
}

// BenchmarkTable1 regenerates Table I: the tauEst sweep with
// tauKill - tauEst fixed at 0.5*tmin on the trace-driven simulation.
func BenchmarkTable1(b *testing.B) {
	r := experiment.DefaultRunner()
	// The tau sweeps only bite when the AM observes progress the way real
	// Hadoop does: periodic, noisy reports.
	r.ReportInterval = 2
	r.ReportNoise = 0.1
	cfg := experiment.DefaultTableConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunTable1(r, cfg)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce("Table I (varying tauEst, tauKill-tauEst = 0.5*tmin)",
			experiment.TableText(rows).String())
	}
}

// BenchmarkTable2 regenerates Table II: the tauKill sweep with tauEst
// fixed.
func BenchmarkTable2(b *testing.B) {
	r := experiment.DefaultRunner()
	r.ReportInterval = 2
	r.ReportNoise = 0.1
	cfg := experiment.DefaultTableConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunTable2(r, cfg)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce("Table II (varying tauKill, fixed tauEst)",
			experiment.TableText(rows).String())
	}
}

// BenchmarkFigure3 regenerates Figure 3(a)-(c): PoCD, cost, and utility of
// Mantri, Clone, S-Restart, and S-Resume versus the tradeoff factor theta.
func BenchmarkFigure3(b *testing.B) {
	r := experiment.DefaultRunner()
	cfg := experiment.DefaultFig3Config()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFigure3(r, cfg)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce("Figure 3 (PoCD / Cost / Utility vs theta)",
			experiment.Fig3Table(rows).String())
	}
}

// BenchmarkFigure4 regenerates Figure 4(a)-(c): PoCD, cost, and utility of
// the five strategies versus the Pareto tail index beta, with deadlines at
// 2x the mean task time.
func BenchmarkFigure4(b *testing.B) {
	r := experiment.DefaultRunner()
	cfg := experiment.DefaultFig4Config()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFigure4(r, cfg)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce("Figure 4 (PoCD / Cost / Utility vs beta)",
			experiment.Fig4Table(rows).String())
	}
}

// BenchmarkFigure5 regenerates Figure 5: the histogram of the
// optimizer-chosen r for Clone and S-Resume at theta = 1e-5 and 1e-4.
func BenchmarkFigure5(b *testing.B) {
	r := experiment.DefaultRunner()
	cfg := experiment.DefaultFig5Config()
	for i := 0; i < b.N; i++ {
		series, err := experiment.RunFigure5(r, cfg)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce("Figure 5 (histogram of optimal r)",
			experiment.Fig5Table(series).String())
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ------------

// BenchmarkAblationEstimator compares the Chronos estimator (Eq. 30)
// against Hadoop's default estimator inside the Speculative-Resume
// strategy: the design choice motivating Section VI-B. Hadoop's estimator
// folds the JVM startup delay into the processing rate and overestimates
// completion times, producing false-positive straggler detections and
// wasted speculative attempts.
func BenchmarkAblationEstimator(b *testing.B) {
	jobs := Benchmarks()[0].Jobs(100, 10, 400)
	for i := 0; i < b.N; i++ {
		base := SimConfig{
			Strategy: SpeculativeResume, Seed: 21,
			TauEst: 40, TauKill: 80, TauScale: TauAbsolute,
		}
		exact, err := Simulate(base, jobs)
		if err != nil {
			b.Fatal(err)
		}
		hadoopCfg := base
		hadoopCfg.UseHadoopEstimator = true
		hadoop, err := Simulate(hadoopCfg, jobs)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce("Ablation: estimator (S-Resume, Eq. 30 vs Hadoop default)", fmt.Sprintf(
			"chronos (eq. 30): PoCD=%.3f cost=%.1f\nhadoop default:   PoCD=%.3f cost=%.1f",
			exact.PoCD, exact.MeanCost, hadoop.PoCD, hadoop.MeanCost))
	}
}

// BenchmarkAblationFixedR sweeps fixed r against the optimizer's choice,
// quantifying what Algorithm 1 buys over static replication (Dolly-style
// fixed cloning).
func BenchmarkAblationFixedR(b *testing.B) {
	jobs := Benchmarks()[0].Jobs(100, 10, 400)
	for i := 0; i < b.N; i++ {
		var out string
		for r := 0; r <= 3; r++ {
			rep, err := Simulate(SimConfig{
				Strategy: Clone, Seed: 22,
				TauEst: 40, TauKill: 80, TauScale: TauAbsolute,
				UseFixedR: true, FixedR: r,
			}, jobs)
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("fixed r=%d: PoCD=%.3f cost=%.1f utility=%.3f\n",
				r, rep.PoCD, rep.MeanCost, rep.Utility)
		}
		opt, err := Simulate(SimConfig{
			Strategy: Clone, Seed: 22,
			TauEst: 40, TauKill: 80, TauScale: TauAbsolute,
		}, jobs)
		if err != nil {
			b.Fatal(err)
		}
		out += fmt.Sprintf("optimized:  PoCD=%.3f cost=%.1f utility=%.3f",
			opt.PoCD, opt.MeanCost, opt.Utility)
		dumpOnce("Ablation: fixed r vs Algorithm 1 (Clone)", out)
	}
}

// --- Micro-benchmarks on the hot paths ------------------------------------

// BenchmarkParetoSample measures inverse-transform sampling.
func BenchmarkParetoSample(b *testing.B) {
	d := pareto.MustNew(10, 1.5)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(rng)
	}
}

// BenchmarkEventQueue measures schedule+fire throughput of the DES core.
func BenchmarkEventQueue(b *testing.B) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.After(1, func() {})
		eng.Step()
	}
}

// BenchmarkAlgorithm1 measures one full joint optimization (the per-job
// work the AM does at submission).
func BenchmarkAlgorithm1(b *testing.B) {
	p := analysis.Params{
		N: 100, Deadline: 100, Task: pareto.MustNew(10, 1.5),
		TauEst: 30, TauKill: 60,
	}
	cfg := optimize.Config{Theta: 1e-4, UnitPrice: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range analysis.Strategies() {
			if _, err := optimize.Solve(analysis.NewModel(s, p), cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClosedFormPoCD measures a single Theorem 5 evaluation.
func BenchmarkClosedFormPoCD(b *testing.B) {
	m := analysis.Resume{P: analysis.Params{
		N: 100, Deadline: 100, Task: pareto.MustNew(10, 1.5),
		TauEst: 30, TauKill: 60,
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.PoCD(i % 8)
	}
}

// BenchmarkSimulateJob measures end-to-end DES throughput for one 10-task
// job under S-Resume.
func BenchmarkSimulateJob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Simulate(SimConfig{
			Strategy: SpeculativeResume,
			Seed:     uint64(i),
			TauEst:   40, TauKill: 80, TauScale: TauAbsolute,
		}, []SimJob{{Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5}})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionFailures runs the failure-resilience extension: PoCD and
// cost of Hadoop-NS, S-Restart, and S-Resume as node MTBF shrinks (the
// paper's closing remark on S-Resume under system breakdown, quantified).
func BenchmarkExtensionFailures(b *testing.B) {
	r := experiment.DefaultRunner()
	r.Nodes = 32
	cfg := experiment.DefaultFailureConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFailures(r, cfg)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce("Extension: node-failure resilience",
			experiment.FailureTable(rows).String())
	}
}
