package server

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"chronos"
	"chronos/internal/tenant"
)

// testRegistry builds a single-pool registry with a fixed (non-refilling)
// budget.
func testRegistry(t *testing.T, name string, budget float64) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		name: {Budget: budget},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// bestPlanMachineTime is the machine time of the unconstrained optimal plan
// for testJob/testEcon, used to size pool budgets.
func bestPlanMachineTime(t *testing.T) float64 {
	t.Helper()
	plan, err := chronos.OptimizeBest(testJob(), testEcon())
	if err != nil {
		t.Fatal(err)
	}
	return plan.MachineTime
}

func TestAdmitEndpoint(t *testing.T) {
	mt := bestPlanMachineTime(t)
	// Room for exactly two optimal plans plus change that cannot cover a
	// third at r=0.
	r0, err := chronos.ExpectedMachineTime(chronos.Clone, testJob(), 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := 2*mt + r0/2
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", budget)})

	req := admitRequest{Tenant: "etl", Job: testJob(), Econ: testEcon()}
	var admitted float64
	admits := 0
	for i := 0; i < 10; i++ {
		resp := postJSON(t, ts.URL+"/v1/admit", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d, want 200", i, resp.StatusCode)
		}
		got := decodeBody[admitResponse](t, resp)
		if got.Tenant != "etl" {
			t.Fatalf("tenant = %q, want etl", got.Tenant)
		}
		if !got.Admitted {
			if got.Reason != ReasonBudgetExhausted {
				t.Fatalf("request %d rejected with reason %q, want %q",
					i, got.Reason, ReasonBudgetExhausted)
			}
			if got.Plan != nil {
				t.Fatal("rejection carried a plan")
			}
			break
		}
		if got.Plan == nil {
			t.Fatalf("request %d admitted without a plan", i)
		}
		if got.Plan.MachineTime > budget-admitted {
			t.Fatalf("request %d plan costs %v with only %v left",
				i, got.Plan.MachineTime, budget-admitted)
		}
		admitted += got.Plan.MachineTime
		admits++
		if got.BudgetRemaining < 0 {
			t.Fatalf("budgetRemaining went negative: %v", got.BudgetRemaining)
		}
	}
	if admits < 2 {
		t.Fatalf("only %d admissions before exhaustion, want >= 2", admits)
	}
	if admitted > budget {
		t.Fatalf("over-commit: admitted %v from a budget of %v", admitted, budget)
	}
}

// TestAdmitSqueezedPlan verifies the capped solve: with a remainder between
// the r=0 cost and the unconstrained optimum, admission succeeds with a
// cheaper, affordable plan instead of rejecting.
func TestAdmitSqueezedPlan(t *testing.T) {
	plan, err := chronos.OptimizeBest(testJob(), testEcon())
	if err != nil {
		t.Fatal(err)
	}
	if plan.R == 0 {
		t.Skip("optimal plan already r=0; nothing to squeeze")
	}
	r0, err := chronos.ExpectedMachineTime(plan.Strategy, testJob(), 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := (r0 + plan.MachineTime) / 2
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", budget)})

	got := decodeBody[admitResponse](t, postJSON(t, ts.URL+"/v1/admit",
		admitRequest{Tenant: "etl", Job: testJob(), Econ: testEcon()}))
	if !got.Admitted {
		t.Fatalf("want squeezed admission, got rejection (%s)", got.Reason)
	}
	if got.Plan.MachineTime > budget {
		t.Errorf("squeezed plan costs %v, budget %v", got.Plan.MachineTime, budget)
	}
	if got.Plan.Utility > plan.Utility {
		t.Errorf("squeezed utility %v exceeds unconstrained %v", got.Plan.Utility, plan.Utility)
	}
}

func TestAdmitTenantDefaults(t *testing.T) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"sla": {Budget: 1e6, Theta: 1e-4, UnitPrice: 1, RMin: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Tenants: reg})

	// No econ in the request: the pool's defaults must apply, including
	// its PoCD floor.
	got := decodeBody[admitResponse](t, postJSON(t, ts.URL+"/v1/admit",
		admitRequest{Tenant: "sla", Job: testJob()}))
	if !got.Admitted {
		t.Fatalf("want admission under tenant defaults, got %q", got.Reason)
	}
	if got.Plan.PoCD <= 0.5 {
		t.Errorf("plan PoCD %v at or below the tenant's RMin 0.5", got.Plan.PoCD)
	}
}

func TestAdmitInfeasible(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", 1e9)})
	econ := testEcon()
	econ.RMin = 0.999999999
	impossible := chronos.JobParams{
		Tasks: 10, Deadline: 10.5, TMin: 10, Beta: 1.5, TauEst: 3, TauKill: 6,
	}
	got := decodeBody[admitResponse](t, postJSON(t, ts.URL+"/v1/admit",
		admitRequest{Tenant: "etl", Job: impossible, Econ: econ}))
	if got.Admitted {
		t.Fatal("impossible job admitted")
	}
	if got.Reason != ReasonInfeasible {
		t.Errorf("reason = %q, want %q", got.Reason, ReasonInfeasible)
	}
}

func TestAdmitErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", 100)})

	t.Run("missing tenant", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/admit", admitRequest{Job: testJob(), Econ: testEcon()})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("unknown tenant", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/admit",
			admitRequest{Tenant: "nope", Job: testJob(), Econ: testEcon()})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d, want 404", resp.StatusCode)
		}
	})

	t.Run("unknown strategy", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/admit",
			admitRequest{Tenant: "etl", Job: testJob(), Econ: testEcon(), Strategy: "dolly"})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("invalid params", func(t *testing.T) {
		bad := testJob()
		bad.Beta = 0.5
		resp := postJSON(t, ts.URL+"/v1/admit",
			admitRequest{Tenant: "etl", Job: bad, Econ: testEcon()})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("no tenants configured", func(t *testing.T) {
		_, bare := newTestServer(t, Config{})
		resp := postJSON(t, bare.URL+"/v1/admit",
			admitRequest{Tenant: "etl", Job: testJob(), Econ: testEcon()})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d, want 404", resp.StatusCode)
		}
	})
}

// TestAdmitConcurrentNoOvercommit hammers /v1/admit from many goroutines
// against one nearly-exhausted pool and asserts the ledger never grants
// more machine time than the budget holds. Run with -race in CI.
func TestAdmitConcurrentNoOvercommit(t *testing.T) {
	mt := bestPlanMachineTime(t)
	budget := 3.4 * mt // a handful of admissions, then contention
	srv, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", budget)})

	const goroutines = 16
	const perG = 4
	var (
		mu       sync.Mutex
		admitted float64
		admits   int
		rejects  int
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp := postJSON(t, ts.URL+"/v1/admit",
					admitRequest{Tenant: "etl", Job: testJob(), Econ: testEcon()})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d, want 200", resp.StatusCode)
					resp.Body.Close()
					return
				}
				got := decodeBody[admitResponse](t, resp)
				mu.Lock()
				if got.Admitted {
					admitted += got.Plan.MachineTime
					admits++
				} else {
					rejects++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if admits == 0 {
		t.Fatal("no admissions")
	}
	if rejects == 0 {
		t.Fatal("no rejections: the pool never saturated, over-commit untested")
	}
	if admitted > budget*(1+1e-9) {
		t.Fatalf("over-commit: admitted %v machine-seconds from a budget of %v", admitted, budget)
	}
	remaining := srv.Tenants().Get("etl").Remaining()
	if remaining < 0 {
		t.Fatalf("ledger went negative: %v", remaining)
	}
	if diff := admitted + remaining - budget; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("ledger leak: admitted %v + remaining %v != budget %v", admitted, remaining, budget)
	}
}

func TestPlanTenantRouting(t *testing.T) {
	mt := bestPlanMachineTime(t)
	budget := 1.5 * mt
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", budget)})

	req := planRequest{Job: testJob(), Econ: testEcon(), Tenant: "etl"}
	first := decodeBody[planResponse](t, postJSON(t, ts.URL+"/v1/plan", req))
	if first.BudgetRemaining == nil {
		t.Fatal("tenant-routed plan missing budgetRemaining")
	}
	if got := *first.BudgetRemaining; got > budget-mt+1e-9 {
		t.Errorf("budgetRemaining = %v, want <= %v", got, budget-mt)
	}

	// The second identical request is a cache hit but cannot pay: 1.5
	// optimal plans do not cover two. /v1/plan never squeezes — that is
	// /v1/admit's job.
	resp := postJSON(t, ts.URL+"/v1/plan", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	errBody := decodeBody[errorResponse](t, resp)
	if errBody.Reason != ReasonBudgetExhausted {
		t.Errorf("reason = %q, want %q", errBody.Reason, ReasonBudgetExhausted)
	}

	t.Run("unknown tenant", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/plan",
			planRequest{Job: testJob(), Econ: testEcon(), Tenant: "nope"})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d, want 404", resp.StatusCode)
		}
	})
}

func TestBatchTenantRouting(t *testing.T) {
	mt := bestPlanMachineTime(t)
	budget := 4 * mt
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", budget)})

	// No explicit budget: the allocation runs against the pool's
	// remainder and debits what it allocates.
	req := batchRequest{
		Jobs:   []batchJobRequest{{Job: testJob()}, {Job: testJob()}},
		Econ:   testEcon(),
		Tenant: "etl",
	}
	got := decodeBody[batchResponse](t, postJSON(t, ts.URL+"/v1/plan/batch", req))
	if len(got.Plans) != 2 {
		t.Fatalf("got %d plans, want 2", len(got.Plans))
	}
	if got.Budget > budget {
		t.Errorf("effective budget %v exceeds pool budget %v", got.Budget, budget)
	}
	if got.BudgetRemaining == nil {
		t.Fatal("tenant-routed batch missing budgetRemaining")
	}
	wantRem := budget - got.TotalMachineTime
	if diff := *got.BudgetRemaining - wantRem; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("budgetRemaining = %v, want %v", *got.BudgetRemaining, wantRem)
	}

	// The tenant's PoCD floor binds jobs that pin a strategy (and so skip
	// best-of-three selection): their allocator RMin falls back to the
	// pool default.
	t.Run("tenant rmin floors pinned jobs", func(t *testing.T) {
		reg, err := tenant.NewRegistry(map[string]tenant.Limits{
			"sla": {Budget: 1e6, RMin: 0.9},
		})
		if err != nil {
			t.Fatal(err)
		}
		_, slaTS := newTestServer(t, Config{Tenants: reg})
		got := decodeBody[batchResponse](t, postJSON(t, slaTS.URL+"/v1/plan/batch",
			batchRequest{
				Jobs:   []batchJobRequest{{Job: testJob(), Strategy: "clone"}},
				Tenant: "sla",
			}))
		if got.Plans[0].PoCD <= 0.9 {
			t.Errorf("pinned job PoCD %v at or below the tenant's RMin 0.9", got.Plans[0].PoCD)
		}
	})

	// A negative budget is malformed, not an implicit full-pool grant.
	t.Run("negative budget is 400", func(t *testing.T) {
		neg := req
		neg.Budget = -5
		resp := postJSON(t, ts.URL+"/v1/plan/batch", neg)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})

	// An explicit request budget below the r=0 floor is the request's
	// fault, not the ledger's: 422 like a tenantless batch, even though
	// the pool could cover far more.
	t.Run("tiny explicit budget is 422 not 429", func(t *testing.T) {
		small := req
		small.Budget = 1
		resp := postJSON(t, ts.URL+"/v1/plan/batch", small)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("status = %d, want 422", resp.StatusCode)
		}
	})

	// Drain the pool, then the same batch must be rejected with 429.
	for i := 0; i < 20; i++ {
		resp := postJSON(t, ts.URL+"/v1/plan/batch", req)
		if resp.StatusCode == http.StatusTooManyRequests {
			errBody := decodeBody[errorResponse](t, resp)
			if errBody.Reason != ReasonBudgetExhausted {
				t.Errorf("reason = %q, want %q", errBody.Reason, ReasonBudgetExhausted)
			}
			return
		}
		resp.Body.Close()
	}
	t.Fatal("pool never exhausted for batch requests")
}

func TestSetTenantsFlushesCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", 1e6)})
	postJSON(t, ts.URL+"/v1/plan", planRequest{Job: testJob(), Econ: testEcon()}).Body.Close()
	if _, _, entries := srv.CacheStats(); entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	srv.SetTenants(testRegistry(t, "etl", 1e6))
	if _, _, entries := srv.CacheStats(); entries != 0 {
		t.Errorf("entries after SetTenants = %d, want 0 (cache flushed)", entries)
	}
}

func TestTenantMetrics(t *testing.T) {
	mt := bestPlanMachineTime(t)
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", 1.5*mt)})

	req := admitRequest{Tenant: "etl", Job: testJob(), Econ: testEcon()}
	for i := 0; i < 6; i++ { // one optimal admit, maybe squeezed ones, then rejects
		postJSON(t, ts.URL+"/v1/admit", req).Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`chronosd_tenant_admits_total{tenant="etl"}`,
		`chronosd_tenant_rejects_total{tenant="etl",reason="budget_exhausted"}`,
		`chronosd_tenant_plans_total{tenant="etl",strategy=`,
		`chronosd_tenant_budget_remaining{tenant="etl"}`,
		// Admit-served plans count in the global series too.
		`chronosd_plans_total{strategy=`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n--- got:\n%s", want, body)
		}
	}
}
