package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// This file holds the concurrency-safe primitives behind chronosd's
// /metrics endpoint: a lock-free counter and a fixed-bucket latency
// histogram whose snapshot matches the Prometheus histogram conventions
// (cumulative bucket counts plus _sum and _count). The simulation-side
// accumulators above are single-goroutine by design; these are the serving
// counterparts, safe under arbitrary handler concurrency.

// Counter is a monotonically increasing, concurrency-safe counter.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// DefaultLatencyBuckets covers 100 µs to 10 s, the plausible range from a
// cache hit to a bounded simulation run.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// LatencyHistogram accumulates duration observations (in seconds) into
// fixed buckets with lock-free atomics.
type LatencyHistogram struct {
	bounds []float64       // ascending upper bounds; implicit +Inf last
	counts []atomic.Uint64 // len(bounds)+1; counts[i] = observations <= bounds[i]'s bucket

	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// NewLatencyHistogram builds a histogram over the given ascending bucket
// upper bounds; with no bounds it uses DefaultLatencyBuckets.
func NewLatencyHistogram(bounds ...float64) *LatencyHistogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &LatencyHistogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one duration in seconds.
func (h *LatencyHistogram) Observe(seconds float64) {
	// Binary-search the first bound >= seconds; the overflow bucket is last.
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough view for text exposition:
// Cumulative[i] counts observations in buckets 0..i (Prometheus `le`
// semantics); the final entry equals Count.
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []uint64
	Count      uint64
	Sum        float64
}

// Snapshot renders the histogram state. Concurrent observations may tear
// across buckets by a few counts — acceptable for monitoring output.
func (h *LatencyHistogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.counts)),
		Sum:        math.Float64frombits(h.sumBits.Load()),
	}
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		snap.Cumulative[i] = running
	}
	snap.Count = running
	return snap
}
