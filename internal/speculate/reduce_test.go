package speculate

import (
	"testing"

	"chronos/internal/cluster"
	"chronos/internal/mapreduce"
	"chronos/internal/pareto"
	"chronos/internal/sim"
)

// reduceSpec returns a two-stage job: 8 map tasks feeding 4 reduce tasks.
func reduceSpec() mapreduce.JobSpec {
	spec := baseSpec()
	spec.NumTasks = 8
	spec.Deadline = 200
	spec.Reduce = mapreduce.ReduceSpec{
		NumTasks:   4,
		Dist:       pareto.MustNew(8, 1.6),
		SplitBytes: 64 << 20,
	}
	return spec
}

func runReduceJob(t *testing.T, strat mapreduce.Strategy, seed uint64) *mapreduce.Job {
	t.Helper()
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 16, SlotsPerNode: 8})
	if err != nil {
		t.Fatal(err)
	}
	rt := mapreduce.NewRuntime(eng, cl, mapreduce.Config{Seed: seed})
	job, err := rt.Submit(reduceSpec(), strat)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !job.Done {
		t.Fatalf("%s: two-stage job did not complete", strat.Name())
	}
	return job
}

func TestReduceStageAllStrategies(t *testing.T) {
	strategies := []mapreduce.Strategy{
		HadoopNS{}, HadoopS{}, Mantri{}, LATE{},
		Clone{Config: chronosCfg()}, Restart{Config: chronosCfg()}, Resume{Config: chronosCfg()},
	}
	for _, strat := range strategies {
		job := runReduceJob(t, strat, 51)

		if !job.MapDone {
			t.Errorf("%s: MapDone not set", strat.Name())
		}
		if job.MapFinishTime > job.FinishTime {
			t.Errorf("%s: map finished at %v after job finish %v",
				strat.Name(), job.MapFinishTime, job.FinishTime)
		}
		if got := len(job.MapTasks()); got != 8 {
			t.Errorf("%s: %d map tasks, want 8", strat.Name(), got)
		}
		if got := len(job.ReduceTasks()); got != 4 {
			t.Errorf("%s: %d reduce tasks, want 4", strat.Name(), got)
		}
		// The barrier: no reduce attempt may start before the last map task
		// finished.
		for _, rt := range job.ReduceTasks() {
			if rt.Stage != mapreduce.StageReduce {
				t.Errorf("%s: reduce task %d has stage %v", strat.Name(), rt.ID, rt.Stage)
			}
			if len(rt.Attempts) == 0 {
				t.Errorf("%s: reduce task %d never attempted", strat.Name(), rt.ID)
				continue
			}
			for _, a := range rt.Attempts {
				if a.RequestTime < job.MapFinishTime-1e-9 {
					t.Errorf("%s: reduce attempt requested at %v before map finish %v",
						strat.Name(), a.RequestTime, job.MapFinishTime)
				}
			}
		}
	}
}

func TestReduceStagePlansSeparately(t *testing.T) {
	job := runReduceJob(t, Resume{Config: chronosCfg()}, 53)
	if job.ChosenR < 0 {
		t.Error("map-stage r not recorded")
	}
	if job.ChosenReduceR < 0 {
		t.Error("reduce-stage r not recorded")
	}
}

func TestReduceStageCloneClonesBothStages(t *testing.T) {
	cfg := chronosCfg()
	cfg.FixedR = 2
	job := runReduceJob(t, Clone{Config: cfg}, 55)
	for _, task := range job.Tasks {
		if len(task.Attempts) != 3 {
			t.Errorf("%v task %d has %d attempts, want 3", task.Stage, task.ID, len(task.Attempts))
		}
	}
	if job.ChosenR != 2 || job.ChosenReduceR != 2 {
		t.Errorf("recorded r = %d/%d, want 2/2", job.ChosenR, job.ChosenReduceR)
	}
}

func TestMapOnlyJobHasNoReduceState(t *testing.T) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 16, SlotsPerNode: 8})
	if err != nil {
		t.Fatal(err)
	}
	rt := mapreduce.NewRuntime(eng, cl, mapreduce.Config{Seed: 57})
	job, err := rt.Submit(baseSpec(), HadoopNS{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(job.ReduceTasks()) != 0 {
		t.Error("map-only job has reduce tasks")
	}
	if !job.MapDone || job.MapFinishTime != job.FinishTime {
		t.Errorf("map-only: MapDone=%v MapFinishTime=%v FinishTime=%v",
			job.MapDone, job.MapFinishTime, job.FinishTime)
	}
	if job.ChosenReduceR != -1 {
		t.Errorf("map-only ChosenReduceR = %d, want -1", job.ChosenReduceR)
	}
}

func TestReduceSpecValidation(t *testing.T) {
	spec := reduceSpec()
	spec.Reduce.Dist.TMin = 0
	if err := spec.Validate(); err == nil {
		t.Error("bad reduce dist accepted")
	}
	spec = reduceSpec()
	spec.Reduce.SplitBytes = 0
	if err := spec.Validate(); err == nil {
		t.Error("zero reduce split accepted")
	}
	spec = reduceSpec()
	spec.MapDeadlineFrac = 1.2
	if err := spec.Validate(); err == nil {
		t.Error("bad map deadline fraction accepted")
	}
}

func TestMapBudget(t *testing.T) {
	spec := baseSpec()
	if got := spec.MapBudget(); got != spec.Deadline {
		t.Errorf("map-only MapBudget = %v, want full deadline", got)
	}
	spec = reduceSpec()
	if got := spec.MapBudget(); got != 100 { // default 0.5 of 200
		t.Errorf("default MapBudget = %v, want 100", got)
	}
	spec.MapDeadlineFrac = 0.7
	if got := spec.MapBudget(); got != 140 {
		t.Errorf("MapBudget with frac 0.7 = %v, want 140", got)
	}
}

func TestReduceUsesOwnDistribution(t *testing.T) {
	job := runReduceJob(t, HadoopNS{}, 59)
	// Reduce intrinsic times come from Pareto(8, 1.6): all >= 8 and
	// statistically distinct from the map stage's tmin=10.
	for _, task := range job.ReduceTasks() {
		for _, a := range task.Attempts {
			if a.Intrinsic < 8 {
				t.Errorf("reduce intrinsic %v below reduce tmin 8", a.Intrinsic)
			}
		}
	}
	for _, task := range job.MapTasks() {
		for _, a := range task.Attempts {
			if a.Intrinsic < 10 {
				t.Errorf("map intrinsic %v below map tmin 10", a.Intrinsic)
			}
		}
	}
}

func TestLaunchReduceBeforeMapPanics(t *testing.T) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 4, SlotsPerNode: 8})
	if err != nil {
		t.Fatal(err)
	}
	rt := mapreduce.NewRuntime(eng, cl, mapreduce.Config{Seed: 61})
	bad := hookedStrategy{start: func(ctl *mapreduce.Controller) {
		defer func() {
			if recover() == nil {
				t.Error("launching a reduce task before map completion did not panic")
			}
		}()
		ctl.Launch(ctl.Job().ReduceTasks()[0], 0)
	}}
	if _, err := rt.Submit(reduceSpec(), bad); err != nil {
		t.Fatal(err)
	}
	eng.Run()
}

type hookedStrategy struct {
	start func(ctl *mapreduce.Controller)
}

func (hookedStrategy) Name() string                    { return "hooked" }
func (h hookedStrategy) Start(c *mapreduce.Controller) { h.start(c) }
