package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"chronos"
	"chronos/internal/hotjson"
	"chronos/internal/obs"
	"chronos/internal/optimize"
	"chronos/internal/plankey"
	"chronos/internal/tenant"
)

// Structured rejection reasons reported by POST /v1/admit and used as the
// reason label on chronosd_tenant_rejects_total.
const (
	// ReasonBudgetExhausted: the tenant's ledger cannot pay for any
	// feasible plan right now. With a refilling pool the job may be
	// admittable later.
	ReasonBudgetExhausted = "budget_exhausted"
	// ReasonInfeasible: no attempt count reaches the tenant's required
	// PoCD — the deadline cannot be met at RMin no matter the budget.
	ReasonInfeasible = "infeasible_deadline"
)

// admitDebitRetries bounds the solve-then-debit loop. The solve runs
// against a snapshot of the pool's level; when a concurrent admit wins the
// race for that remainder the debit fails and the job is re-planned against
// the shrunken ledger instead of over-committing it.
const admitDebitRetries = 3

// admitRequest asks for an online admission decision (can this tenant
// afford a feasible speculation plan for the arriving job?); admitResponse
// answers it. Both are served by the reflection-free internal/hotjson codec,
// so the wire structs live there and the handlers alias them.
type (
	admitRequest  = hotjson.AdmitRequest
	admitResponse = hotjson.AdmitResponse
)

// handleAdmit serves POST /v1/admit: accept/reject + plan in one round
// trip, the paper's online setting. The optimizer runs against the tenant's
// remaining budget; an accepted plan is debited atomically, a rejection
// carries a structured reason.
func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	hb := getHotBuf()
	defer putHotBuf(hb)
	var ok bool
	if hb.in, ok = s.readBody(w, r, hb.in); !ok {
		return
	}
	req := &hb.admitReq
	if err := hotjson.DecodeAdmitRequest(hb.in, req, s); err != nil {
		s.apiError(w, r, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	tr := obs.FromContext(r.Context())
	tr.SetTenant(req.Tenant)
	pool, ok := s.lookupPool(w, r, req.Tenant)
	if !ok {
		return
	}
	strat, best, ok := keyStrategy(req.Strategy)
	if !ok {
		s.apiError(w, r, http.StatusBadRequest, "unknown strategy %q", req.Strategy)
		return
	}
	econ := tenantEcon(req.Econ, pool)
	// Sharded serving: admission decisions for a non-owned plan key run on
	// the owning replica (its cache holds the unconstrained optimum and its
	// ledger takes the debit — replicas run identical tenant configs, so
	// each holds one shard of a tenant's fleet-wide budget). The forwarded
	// request carries the filled econ so the owner keys its cache
	// identically.
	req.Econ = econ
	qStart := time.Now()
	hb.key = plankey.AppendKey(hb.key[:0], cacheStrategyName(strat, best), req.Job, econ)
	tr.Observe(obs.StageQuantize, time.Since(qStart))
	if s.forwardToOwner(w, r, "/v1/admit", hb.key, req) {
		return
	}

	// The debit target: the raw pool in the legacy per-replica mode, the
	// escrow-aware budget (authoritative pool on the tenant owner, local
	// lease elsewhere) when fleet-exact accounting is on.
	bud := s.tenantBudget(r.Context(), req.Tenant, pool)
	for attempt := 0; attempt < admitDebitRetries; attempt++ {
		remaining := bud.Remaining()
		plan, err := s.planWithinBudget(tr, hb.key, strat, best, req.Job, econ, remaining)
		if err != nil {
			if reason := rejectReason(err); reason != "" {
				s.rejectAdmit(w, r, hb, reason, remaining)
				return
			}
			s.apiError(w, r, planStatus(err), "%v", err)
			return
		}
		dStart := time.Now()
		ok, rem := bud.TryDebit(plan.MachineTime)
		tr.Observe(obs.StageDebit, time.Since(dStart))
		if ok {
			s.metrics.planServed(plan.Strategy.String())
			s.metrics.tenantAdmit(req.Tenant, plan.Strategy.String())
			hb.plan = plan
			hb.admitResp = admitResponse{
				Admitted: true, Tenant: req.Tenant, Plan: &hb.plan, BudgetRemaining: rem,
			}
			s.writeAdmitResponse(w, r, hb)
			return
		}
		// A concurrent admit drained the snapshot we planned against;
		// re-plan against the new level.
	}
	s.rejectAdmit(w, r, hb, ReasonBudgetExhausted, bud.Remaining())
}

// rejectAdmit answers one /v1/admit rejection: counted per tenant and
// reason, 200 with the structured decision payload.
func (s *Server) rejectAdmit(w http.ResponseWriter, r *http.Request, hb *hotBuf, reason string, remaining float64) {
	s.metrics.tenantReject(hb.admitReq.Tenant, reason)
	hb.admitResp = admitResponse{
		Tenant: hb.admitReq.Tenant, Reason: reason, BudgetRemaining: remaining,
	}
	s.writeAdmitResponse(w, r, hb)
}

// cachedPlan returns the unconstrained optimal plan for one job,
// consulting and populating the sharded plan cache. Every planning path —
// /v1/plan, the batch strategy fan-out, and admission control — goes
// through here, so cache policy (and its stage instrumentation) lives in
// one place. tr may be nil for untraced callers.
func (s *Server) cachedPlan(tr *obs.Trace, strat chronos.Strategy, best bool, job chronos.JobParams, econ chronos.Econ) (plan chronos.Plan, cached bool, err error) {
	qStart := time.Now()
	key := planKey(cacheStrategyName(strat, best), job, econ)
	tr.Observe(obs.StageQuantize, time.Since(qStart))
	return s.cachedPlanKeyed(tr, key, strat, best, job, econ)
}

// cachedPlanKeyed is cachedPlan for callers that already computed the plan
// key — the sharded handlers, which need it for the ownership lookup before
// the cache is consulted — so the ~10-float fmt of planKey runs once per
// request, not twice.
func (s *Server) cachedPlanKeyed(tr *obs.Trace, key string, strat chronos.Strategy, best bool, job chronos.JobParams, econ chronos.Econ) (plan chronos.Plan, cached bool, err error) {
	cStart := time.Now()
	plan, hit := s.cache.get(key)
	tr.Observe(obs.StageCache, time.Since(cStart))
	if hit {
		return plan, true, nil
	}
	return s.solveAndCache(tr, key, strat, best, job, econ)
}

// cachedPlanKeyedBytes is cachedPlanKeyed for the hot handlers, whose key
// still lives in the pooled request buffer: a cache hit probes the shard map
// without materializing the key string, so the hot path allocates nothing.
func (s *Server) cachedPlanKeyedBytes(tr *obs.Trace, key []byte, strat chronos.Strategy, best bool, job chronos.JobParams, econ chronos.Econ) (plan chronos.Plan, cached bool, err error) {
	cStart := time.Now()
	plan, hit := s.cache.getBytes(key)
	tr.Observe(obs.StageCache, time.Since(cStart))
	if hit {
		return plan, true, nil
	}
	return s.solveAndCache(tr, string(key), strat, best, job, econ)
}

// solveAndCache runs the unconstrained solve on a cache miss and populates
// the cache. Concurrent misses for the same key are collapsed through the
// singleflight table: one leader solves while the others park on its done
// channel and share the outcome (reported as cached=false — a waiter's plan
// was not served from the LRU, it piggybacked on a live solve).
func (s *Server) solveAndCache(tr *obs.Trace, key string, strat chronos.Strategy, best bool, job chronos.JobParams, econ chronos.Econ) (plan chronos.Plan, cached bool, err error) {
	call, leader := s.flight.join(key)
	if !leader {
		// Counted on entry, not exit, so the waiter population is observable
		// while the leader's solve is still in flight.
		s.metrics.flightWaiters.Inc()
		wStart := time.Now()
		<-call.done
		tr.Observe(obs.StageFlightWait, time.Since(wStart))
		return call.plan, false, call.err
	}
	s.metrics.flightLeaders.Inc()
	if s.solveHook != nil {
		s.solveHook(key)
	}
	sStart := time.Now()
	if best {
		plan, err = chronos.OptimizeBest(job, econ)
	} else {
		plan, err = chronos.Optimize(strat, job, econ)
	}
	tr.Observe(obs.StageSolve, time.Since(sStart))
	if err != nil {
		plan = chronos.Plan{}
	} else {
		// Cache before leaving the flight table so later misses for this key
		// hit the LRU instead of starting a fresh solve, then enqueue the
		// entry's async push to its ring successors (no-op unless this
		// replica owns the key and replication is on).
		s.cache.put(key, plan)
		s.replicateHot(key, plan)
	}
	s.flight.complete(key, call, plan, err)
	return plan, false, err
}

// planWithinBudget returns the best plan whose expected machine time fits
// budget. The unconstrained optimum is looked up in (and populates) the
// plan cache under the caller's precomputed key — squeezed plans depend on
// the transient ledger level and are never cached. What is cached, attached
// to the same entry, is the cell's precomputed feasibility frontier
// (chronos.BudgetFrontier): the first budget-squeezed admit in a cell pays
// the bisection and window scan once, and every later squeeze in the warm
// cell answers from the table with no model evaluations (and, on the admit
// path, no allocation).
func (s *Server) planWithinBudget(tr *obs.Trace, key []byte, strat chronos.Strategy, best bool, job chronos.JobParams, econ chronos.Econ, budget float64) (chronos.Plan, error) {
	plan, _, err := s.cachedPlanKeyedBytes(tr, key, strat, best, job, econ)
	if err != nil {
		return chronos.Plan{}, err
	}
	if plan.MachineTime <= budget {
		return plan, nil
	}
	sStart := time.Now()
	defer func() { tr.Observe(obs.StageSolve, time.Since(sStart)) }()
	if bf := s.cache.frontierBytes(key); bf != nil {
		return bf.PlanWithinBudget(budget)
	}
	var bf *chronos.BudgetFrontier
	var ferr error
	if best {
		bf, ferr = chronos.NewBudgetFrontierBest(job, econ)
	} else {
		bf, ferr = chronos.NewBudgetFrontier(strat, job, econ)
	}
	if ferr != nil {
		// Unreachable after a successful unconstrained solve for the same
		// cell (construction fails only on budget-independent grounds), but
		// fall back to the direct capped solve so behavior is identical even
		// for, say, a corrupted persisted cache entry.
		if best {
			return chronos.OptimizeBestWithinBudget(job, econ, budget)
		}
		return chronos.OptimizeWithinBudget(strat, job, econ, budget)
	}
	s.cache.setFrontier(string(key), bf)
	return bf.PlanWithinBudget(budget)
}

// rejectBudget answers a tenant-routed /v1/plan or /v1/plan/batch whose
// ledger cannot pay: 429 with the structured reason (carried both as the
// envelope code and the legacy reason field), counted per tenant.
// (/v1/admit reports the same condition in its own 200 decision payload.)
func (s *Server) rejectBudget(w http.ResponseWriter, r *http.Request, tenantName, format string, args ...any) {
	s.metrics.tenantReject(tenantName, ReasonBudgetExhausted)
	resp := errorResponse{
		Error:  fmt.Sprintf(format, args...),
		Code:   codeBudgetExhausted,
		Reason: ReasonBudgetExhausted,
	}
	if tr := obs.FromContext(r.Context()); tr != nil {
		resp.TraceID = tr.ID
	}
	s.writeJSON(w, r, http.StatusTooManyRequests, resp)
}

// rejectReason maps optimization failures onto the admission-control
// rejection vocabulary; "" marks errors that are the request's fault
// (reported as HTTP errors instead).
func rejectReason(err error) string {
	switch {
	case errors.Is(err, optimize.ErrBudgetTooSmall):
		return ReasonBudgetExhausted
	case errors.Is(err, optimize.ErrInfeasible):
		return ReasonInfeasible
	}
	return ""
}

// lookupPool resolves a tenant name against the live registry, writing the
// HTTP error on failure.
func (s *Server) lookupPool(w http.ResponseWriter, r *http.Request, name string) (*tenant.Pool, bool) {
	if name == "" {
		s.apiError(w, r, http.StatusBadRequest, "tenant is required")
		return nil, false
	}
	reg := s.tenants.Load()
	if reg.Len() == 0 {
		s.apiError(w, r, http.StatusNotFound, "no tenant pools configured")
		return nil, false
	}
	pool := reg.Get(name)
	if pool == nil {
		s.apiError(w, r, http.StatusNotFound, "unknown tenant %q", name)
		return nil, false
	}
	return pool, true
}

// tenantBudget picks the debit interface for one tenant-routed request: the
// raw pool when escrow accounting is off (the legacy per-replica
// approximation), the escrow-aware budget when it is on.
func (s *Server) tenantBudget(ctx context.Context, name string, pool *tenant.Pool) budgeter {
	if s.escrow == nil {
		return pool
	}
	return s.escrow.budgetFor(ctx, name, pool)
}

// tenantEcon fills zero economic fields from the pool's defaults.
func tenantEcon(e chronos.Econ, pool *tenant.Pool) chronos.Econ {
	l := pool.Limits()
	if e.Theta == 0 {
		e.Theta = l.Theta
	}
	if e.UnitPrice == 0 {
		e.UnitPrice = l.UnitPrice
	}
	if e.RMin == 0 {
		e.RMin = l.RMin
	}
	return e
}
