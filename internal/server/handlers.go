package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"chronos"
	"chronos/internal/hotjson"
	"chronos/internal/obs"
	"chronos/internal/optimize"
	"chronos/internal/plankey"
	"chronos/internal/tenant"
)

// --- wire types -----------------------------------------------------------

// planRequest asks for one job's optimal speculation plan; planResponse
// answers it. Both are served by the reflection-free internal/hotjson codec
// (fuzz-verified byte-compatible with encoding/json), so the wire structs
// live there and the handlers alias them.
type (
	planRequest  = hotjson.PlanRequest
	planResponse = hotjson.PlanResponse
)

// batchJobRequest is one member of a shared-budget batch.
type batchJobRequest struct {
	// Strategy pins the job's strategy; empty or "best" lets the server
	// pick the per-job utility winner before the budget allocation.
	Strategy string            `json:"strategy,omitempty"`
	Job      chronos.JobParams `json:"job"`
	// RMin is the job's minimum acceptable PoCD inside the allocator.
	// Zero falls back to the batch econ's rmin (which tenant routing fills
	// from the pool's default), so a tenant's PoCD floor binds pinned jobs
	// too.
	RMin float64 `json:"rmin,omitempty"`
}

type batchRequest struct {
	Jobs []batchJobRequest `json:"jobs"`
	// Budget is the shared machine-time budget B. Must be positive unless
	// Tenant is set, in which case it is optional and is additionally
	// capped by the pool's remaining budget.
	Budget float64 `json:"budget"`
	// Econ drives per-job strategy selection for jobs without a pinned
	// strategy. Ignored (may be zero) when every job pins one.
	Econ chronos.Econ `json:"econ,omitempty"`
	// Tenant optionally routes the batch through a named budget pool: the
	// allocation runs against min(Budget, pool remaining) and its total
	// machine time is debited from the ledger (429 when it cannot cover
	// it).
	Tenant string `json:"tenant,omitempty"`
}

type batchPlanResponse struct {
	Strategy    chronos.Strategy `json:"strategy"`
	R           int              `json:"r"`
	PoCD        float64          `json:"pocd"`
	MachineTime float64          `json:"machineTime"`
}

type batchResponse struct {
	Plans []batchPlanResponse `json:"plans"`
	// TotalMachineTime is the expected machine time of the allocation;
	// always <= budget.
	TotalMachineTime float64 `json:"totalMachineTime"`
	// Budget is the effective budget the allocation ran against (the
	// request's budget, capped by the tenant pool when routed).
	Budget float64 `json:"budget"`
	// BudgetRemaining is the tenant pool's post-debit level; present only
	// for tenant-routed requests.
	BudgetRemaining *float64 `json:"budgetRemaining,omitempty"`
}

type tradeoffPoint struct {
	R           int     `json:"r"`
	PoCD        float64 `json:"pocd"`
	MachineTime float64 `json:"machineTime"`
	Cost        float64 `json:"cost"`
	// Utility is null when the point is below RMin (utility -Inf).
	Utility *float64 `json:"utility"`
}

type tradeoffResponse struct {
	Strategy chronos.Strategy `json:"strategy"`
	Points   []tradeoffPoint  `json:"points"`
}

type simulateRequest struct {
	Config chronos.SimConfig `json:"config"`
	Jobs   []chronos.SimJob  `json:"jobs"`
}

type simulateResponse struct {
	Jobs            int     `json:"jobs"`
	PoCD            float64 `json:"pocd"`
	MeanMachineTime float64 `json:"meanMachineTime"`
	MeanCost        float64 `json:"meanCost"`
	// Utility is null when the measured PoCD is at or below RMin.
	Utility    *float64    `json:"utility"`
	RHistogram map[int]int `json:"rHistogram,omitempty"`
}

// errorResponse is the error envelope every /v1 endpoint answers with:
// human-readable error text, a stable machine-readable code, and the
// request's trace ID so a client-side error report can be joined to the
// server-side logs and /debug/traces without extra plumbing.
type errorResponse struct {
	Error string `json:"error"`
	// Code is the stable machine-readable error class (bad_request,
	// not_found, budget_exhausted, ...).
	Code string `json:"code,omitempty"`
	// TraceID is the request's trace ID (the X-Chronosd-Trace-Id value).
	TraceID string `json:"traceId,omitempty"`
	// Reason is the legacy alias of Code kept for pre-envelope readers; on
	// tenant-ledger rejections it carries the structured admission-control
	// reason (e.g. "budget_exhausted"), exactly as it always did.
	Reason string `json:"reason,omitempty"`
}

// Stable error codes carried in errorResponse.Code.
const (
	codeBadRequest      = "bad_request"
	codeNotFound        = "not_found"
	codePayloadTooLarge = "payload_too_large"
	codeUnprocessable   = "unprocessable"
	codeBudgetExhausted = ReasonBudgetExhausted
	codeUnavailable     = "unavailable"
	codeInternal        = "internal"
	// codeNotOwner answers an escrow lease call that landed on a replica
	// that does not own the tenant key (membership race).
	codeNotOwner = "not_owner"
)

// errorCodeForStatus maps an HTTP status onto the default error code; call
// sites with a more specific class (budget_exhausted, not_owner) pass it
// explicitly via writeError.
func errorCodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return codeBadRequest
	case http.StatusNotFound:
		return codeNotFound
	case http.StatusRequestEntityTooLarge:
		return codePayloadTooLarge
	case http.StatusUnprocessableEntity:
		return codeUnprocessable
	case http.StatusTooManyRequests:
		return codeBudgetExhausted
	case http.StatusServiceUnavailable:
		return codeUnavailable
	}
	if status >= http.StatusInternalServerError {
		return codeInternal
	}
	return codeBadRequest
}

// --- helpers --------------------------------------------------------------

// writeError emits the unified error envelope with an explicit code; the
// trace ID comes from the request context (empty for untraced callers).
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	resp := errorResponse{
		Error: fmt.Sprintf(format, args...),
		Code:  code,
	}
	if tr := obs.FromContext(r.Context()); tr != nil {
		resp.TraceID = tr.ID
	}
	s.writeJSON(w, r, status, resp)
}

// apiError is writeError with the code derived from the status.
func (s *Server) apiError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	s.writeError(w, r, status, errorCodeForStatus(status), format, args...)
}

// decode parses the JSON body, writing 413 for oversize bodies (the
// middleware installs http.MaxBytesReader) and 400 for malformed JSON.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.apiError(w, r, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		s.apiError(w, r, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	return true
}

// errInternal marks failures that are the server's fault, not the
// request's.
var errInternal = errors.New("internal error")

// planStatus maps optimization failures to HTTP codes: infeasible problems
// are well-formed but unsatisfiable (422), server-side faults are 500, and
// everything else is a bad request.
func planStatus(err error) int {
	if errors.Is(err, errInternal) {
		return http.StatusInternalServerError
	}
	if errors.Is(err, optimize.ErrInfeasible) ||
		errors.Is(err, optimize.ErrBudgetTooSmall) ||
		errors.Is(err, optimize.ErrUnreachablePoCD) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// finitePtr returns &x, or nil when x is not a finite float (JSON has no
// encoding for Inf/NaN).
func finitePtr(x float64) *float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return nil
	}
	return &x
}

// --- handlers -------------------------------------------------------------

// handlePlan serves POST /v1/plan: the per-arrival planning hot path. The
// sharded cache short-circuits repeated requests for quantization-equal
// jobs. Tenant-routed requests additionally debit the plan's machine time
// from the named pool, with 429 when the ledger cannot cover it. The whole
// path — body read, hotjson decode, key build, cache probe, encode, write —
// runs on one pooled hotBuf and allocates nothing on a cache hit.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	hb := getHotBuf()
	defer putHotBuf(hb)
	var ok bool
	if hb.in, ok = s.readBody(w, r, hb.in); !ok {
		return
	}
	req := &hb.planReq
	if err := hotjson.DecodePlanRequest(hb.in, req, s); err != nil {
		s.apiError(w, r, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	tr := obs.FromContext(r.Context())
	strat, best, ok := keyStrategy(req.Strategy)
	if !ok {
		s.apiError(w, r, http.StatusBadRequest, "unknown strategy %q", req.Strategy)
		return
	}
	var pool *tenant.Pool
	if req.Tenant != "" {
		tr.SetTenant(req.Tenant)
		if pool, ok = s.lookupPool(w, r, req.Tenant); !ok {
			return
		}
		req.Econ = tenantEcon(req.Econ, pool)
	}
	// Sharded serving: when another replica owns this plan key, proxy the
	// request there so the fleet's caches partition the keyspace instead of
	// overlapping. The forwarded request carries the tenant-filled econ, so
	// the owner's cache key matches this routing decision.
	qStart := time.Now()
	hb.key = plankey.AppendKey(hb.key[:0], cacheStrategyName(strat, best), req.Job, req.Econ)
	tr.Observe(obs.StageQuantize, time.Since(qStart))
	if s.forwardToOwner(w, r, "/v1/plan", hb.key, req) {
		return
	}
	plan, cached, err := s.cachedPlanKeyedBytes(tr, hb.key, strat, best, req.Job, req.Econ)
	if err != nil {
		s.apiError(w, r, planStatus(err), "%v", err)
		return
	}
	tr.SetCached(cached)
	resp := &hb.planResp
	*resp = planResponse{Plan: plan, Cached: cached}
	if pool != nil {
		bud := s.tenantBudget(r.Context(), req.Tenant, pool)
		dStart := time.Now()
		ok, rem := bud.TryDebit(plan.MachineTime)
		tr.Observe(obs.StageDebit, time.Since(dStart))
		if !ok {
			s.rejectBudget(w, r, req.Tenant,
				"tenant %q cannot cover the plan: needs %g machine-seconds, %g remaining",
				req.Tenant, plan.MachineTime, rem)
			return
		}
		s.metrics.tenantAdmit(req.Tenant, plan.Strategy.String())
		hb.rem = rem
		resp.BudgetRemaining = &hb.rem
	}
	s.metrics.planServed(plan.Strategy.String())
	out, err := hotjson.AppendPlanResponse(hb.out[:0], resp)
	if err != nil {
		s.encodeFailed(w, r, err)
		return
	}
	hb.out = out
	writeHotBody(w, http.StatusOK, out)
}

// handleBatch serves POST /v1/plan/batch: shared-budget allocation across M
// concurrent jobs. Per-job strategy selection (for jobs without a pinned
// strategy) fans out across the bounded worker pool and reuses the plan
// cache; the coupled budget split then runs through the greedy
// marginal-gain allocator (optimize.BatchSolve).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decode(w, r, &req) {
		return
	}
	tr := obs.FromContext(r.Context())
	if len(req.Jobs) == 0 {
		s.apiError(w, r, http.StatusBadRequest, "batch has no jobs")
		return
	}
	if len(req.Jobs) > s.cfg.MaxBatchJobs {
		s.apiError(w, r, http.StatusBadRequest,
			"batch has %d jobs, limit %d", len(req.Jobs), s.cfg.MaxBatchJobs)
		return
	}
	var pool *tenant.Pool
	if req.Tenant != "" {
		tr.SetTenant(req.Tenant)
		var ok bool
		if pool, ok = s.lookupPool(w, r, req.Tenant); !ok {
			return
		}
		req.Econ = tenantEcon(req.Econ, pool)
	}
	if pool == nil {
		if !(req.Budget > 0) {
			s.apiError(w, r, http.StatusBadRequest, "budget must be positive")
			return
		}
	} else if req.Budget < 0 || math.IsNaN(req.Budget) {
		// Only an omitted (zero) budget means "use the pool's remainder";
		// a negative or NaN budget is malformed, not a full-pool grant.
		s.apiError(w, r, http.StatusBadRequest,
			"budget must be positive, or omitted for tenant-routed batches")
		return
	}

	// Resolve every job's strategy, fanning the unpinned ones out across
	// the worker pool (each selection is a full three-strategy solve or a
	// cache hit).
	strategies := make([]chronos.Strategy, len(req.Jobs))
	errs := make([]error, len(req.Jobs))
	s.pool.fanOut(len(req.Jobs), func(i int) {
		// Pool goroutines run outside net/http's per-connection recover;
		// contain panics to the one job instead of crashing the daemon.
		defer func() {
			if p := recover(); p != nil {
				errs[i] = fmt.Errorf("job %d: %w: %v", i, errInternal, p)
			}
		}()
		jr := req.Jobs[i]
		strat, best, ok := keyStrategy(jr.Strategy)
		if !ok {
			errs[i] = fmt.Errorf("job %d: unknown strategy %q", i, jr.Strategy)
			return
		}
		if !best {
			strategies[i] = strat
			return
		}
		// tr is shared across the fan-out; its stage accumulation is atomic,
		// so concurrent selections fold into one batch-wide span.
		plan, _, err := s.cachedPlan(tr, 0, true, jr.Job, req.Econ)
		if err != nil {
			errs[i] = fmt.Errorf("job %d: %w", i, err)
			return
		}
		strategies[i] = plan.Strategy
	})
	for _, err := range errs {
		if err != nil {
			s.apiError(w, r, planStatus(err), "%v", err)
			return
		}
	}

	batch := make([]chronos.BatchJob, len(req.Jobs))
	for i, jr := range req.Jobs {
		rmin := jr.RMin
		if rmin == 0 {
			rmin = req.Econ.RMin
		}
		batch[i] = chronos.BatchJob{Strategy: strategies[i], Params: jr.Job, RMin: rmin}
	}

	// Allocate and, when tenant-routed, debit the allocation's total
	// machine time from the pool. The allocation runs against a snapshot
	// of the ledger; a failed debit means a concurrent request drained it,
	// so re-allocate against the new level instead of over-committing.
	var (
		plans           []chronos.BatchPlan
		budget          float64
		total           float64
		budgetRemaining *float64
		bud             budgeter
	)
	if pool != nil {
		bud = s.tenantBudget(r.Context(), req.Tenant, pool)
	}
	for attempt := 0; ; attempt++ {
		budget = req.Budget
		capped := false // whether the pool, not the request, set the budget
		if pool != nil {
			remaining := bud.Remaining()
			if budget <= 0 || budget > remaining {
				budget = remaining
				capped = true
			}
		}
		var err error
		plans, err = chronos.PlanBatch(batch, budget)
		if err != nil {
			// A too-small budget is only the tenant ledger's fault when
			// the ledger set it; an explicit request budget below the r=0
			// floor gets the same 422 a tenantless batch would.
			if capped && errors.Is(err, optimize.ErrBudgetTooSmall) {
				s.rejectBudget(w, r, req.Tenant,
					"tenant %q cannot cover the batch: %v", req.Tenant, err)
				return
			}
			s.apiError(w, r, planStatus(err), "%v", err)
			return
		}
		total = 0
		for _, p := range plans {
			total += p.MachineTime
		}
		if pool == nil {
			break
		}
		// BatchSolve tolerates 1e-9 of float slop above its budget; clamp
		// the debit to the allocation budget so the ledger's strict
		// comparison cannot deterministically reject an affordable batch.
		debit := total
		if debit > budget {
			debit = budget
		}
		dStart := time.Now()
		ok, rem := bud.TryDebit(debit)
		tr.Observe(obs.StageDebit, time.Since(dStart))
		if ok {
			budgetRemaining = &rem
			break
		}
		if attempt+1 >= admitDebitRetries {
			s.rejectBudget(w, r, req.Tenant,
				"tenant %q cannot cover the batch: needs %g machine-seconds",
				req.Tenant, total)
			return
		}
	}

	resp := batchResponse{
		Plans:           make([]batchPlanResponse, len(plans)),
		Budget:          budget,
		BudgetRemaining: budgetRemaining,
	}
	for i, p := range plans {
		s.metrics.planServed(strategies[i].String())
		if pool != nil {
			s.metrics.tenantAdmit(req.Tenant, strategies[i].String())
		}
		resp.Plans[i] = batchPlanResponse{
			Strategy:    strategies[i],
			R:           p.R,
			PoCD:        p.PoCD,
			MachineTime: p.MachineTime,
		}
		resp.TotalMachineTime += p.MachineTime
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// handleTradeoff serves GET /v1/tradeoff: the PoCD/cost frontier for one
// strategy, r = 0..maxR.
func (s *Server) handleTradeoff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	strat, err := chronos.ParseStrategy(q.Get("strategy"))
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	var params chronos.JobParams
	var econ chronos.Econ
	var parseErr error
	qInt := func(name string, def int) int {
		v := q.Get(name)
		if v == "" {
			return def
		}
		n, err := strconv.Atoi(v)
		if err != nil && parseErr == nil {
			parseErr = fmt.Errorf("query param %s: %v", name, err)
		}
		return n
	}
	qFloat := func(name string, def float64) float64 {
		v := q.Get(name)
		if v == "" {
			return def
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil && parseErr == nil {
			parseErr = fmt.Errorf("query param %s: %v", name, err)
		}
		return f
	}
	params.Tasks = qInt("tasks", 0)
	params.Deadline = qFloat("deadline", 0)
	params.TMin = qFloat("tmin", 0)
	params.Beta = qFloat("beta", 0)
	params.TauEst = qFloat("tauEst", 0)
	params.TauKill = qFloat("tauKill", 0)
	params.PhiEst = qFloat("phiEst", 0)
	econ.Theta = qFloat("theta", 1e-4)
	econ.UnitPrice = qFloat("price", 1)
	econ.RMin = qFloat("rmin", 0)
	maxR := qInt("maxR", 8)
	if parseErr != nil {
		s.apiError(w, r, http.StatusBadRequest, "%v", parseErr)
		return
	}
	if maxR < 0 || maxR > s.cfg.MaxTradeoffPoints {
		s.apiError(w, r, http.StatusBadRequest,
			"maxR must be in [0, %d]", s.cfg.MaxTradeoffPoints)
		return
	}
	curve, err := chronos.TradeoffCurve(strat, params, econ, maxR)
	if err != nil {
		s.apiError(w, r, planStatus(err), "%v", err)
		return
	}
	resp := tradeoffResponse{Strategy: strat, Points: make([]tradeoffPoint, len(curve))}
	for i, pt := range curve {
		resp.Points[i] = tradeoffPoint{
			R:           pt.R,
			PoCD:        pt.PoCD,
			MachineTime: pt.MachineTime,
			Cost:        pt.Cost,
			Utility:     finitePtr(pt.Utility),
		}
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// handleSimulate serves POST /v1/simulate: a bounded discrete-event what-if
// run, answered as one aggregate report. It runs on the same streaming
// replay core as POST /v1/replay (fold the events, return the final
// summary), and honors the request context: a disconnected client cancels
// the simulation between events instead of leaving it running to
// completion. Size limits keep one request from monopolizing the instance;
// larger studies belong on /v1/replay or in the offline CLIs.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		s.apiError(w, r, http.StatusBadRequest, "simulation has no jobs")
		return
	}
	if len(req.Jobs) > s.cfg.MaxSimJobs {
		s.apiError(w, r, http.StatusBadRequest,
			"simulation has %d jobs, limit %d", len(req.Jobs), s.cfg.MaxSimJobs)
		return
	}
	if msg := validateSimBounds(s.cfg, req); msg != "" {
		s.apiError(w, r, http.StatusBadRequest, "%s", msg)
		return
	}
	report, err := chronos.SimulateContext(r.Context(), req.Config, req.Jobs)
	if err != nil {
		if r.Context().Err() != nil {
			// Client is gone; the status code is a formality.
			return
		}
		s.apiError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, r, http.StatusOK, simulateResponse{
		Jobs:            report.Jobs,
		PoCD:            report.PoCD,
		MeanMachineTime: report.MeanMachineTime,
		MeanCost:        report.MeanCost,
		Utility:         finitePtr(report.Utility),
		RHistogram:      report.RHistogram,
	})
}

// Hard sanity caps on /v1/simulate beyond the configurable task limits.
// They bound the allocations and event counts one request can force
// (cluster nodes, spot-price series length, failure-injection events); the
// unbounded studies belong in the offline CLIs.
const (
	simMaxNodes        = 4096
	simMaxSlotsPerNode = 64
	simMaxDeadline     = 1e5 // seconds; also bounds the event horizon
	simMaxArrival      = 1e6
	simMinSpotStep     = 60 // seconds between repricings
	simMinMTBF         = 60 // seconds between per-node failures
)

// validateSimBounds returns a rejection message, or "" when the request is
// within serving bounds.
func validateSimBounds(cfg Config, req simulateRequest) string {
	if msg := validateSimConfigBounds(req.Config); msg != "" {
		return msg
	}
	return validateSimJobs(cfg, req.Jobs, simMaxArrival, cfg.MaxSimTotalTasks)
}

// validateSimConfigBounds checks the cluster- and model-shaping knobs shared
// by /v1/simulate and /v1/replay.
func validateSimConfigBounds(c chronos.SimConfig) string {
	if c.Nodes < 0 || c.Nodes > simMaxNodes {
		return fmt.Sprintf("nodes must be in [0, %d]", simMaxNodes)
	}
	if c.SlotsPerNode < 0 || c.SlotsPerNode > simMaxSlotsPerNode {
		return fmt.Sprintf("slotsPerNode must be in [0, %d]", simMaxSlotsPerNode)
	}
	if c.Spot != nil && c.Spot.StepSeconds != 0 && c.Spot.StepSeconds < simMinSpotStep {
		return fmt.Sprintf("spot.stepSeconds must be 0 (default) or >= %d", simMinSpotStep)
	}
	if c.Failures != nil && c.Failures.MTBF > 0 && c.Failures.MTBF < simMinMTBF {
		return fmt.Sprintf("failures.mtbf must be >= %d seconds", simMinMTBF)
	}
	return ""
}

// validateSimJobs checks per-job bounds. maxTotalTasks == 0 means no
// stream-wide task ceiling (the streaming replay path, whose memory is
// bounded by in-flight jobs rather than trace size).
func validateSimJobs(cfg Config, jobs []chronos.SimJob, maxArrival float64, maxTotalTasks int) string {
	total := 0
	for i, j := range jobs {
		if j.Tasks < 1 || j.ReduceTasks < 0 {
			return fmt.Sprintf("job %d: tasks must be >= 1 and reduceTasks >= 0", i)
		}
		tasks := j.Tasks + j.ReduceTasks
		if tasks > cfg.MaxSimTasks {
			return fmt.Sprintf("job %d has %d tasks, limit %d per job", i, tasks, cfg.MaxSimTasks)
		}
		if !(j.Deadline > 0) || j.Deadline > simMaxDeadline {
			return fmt.Sprintf("job %d: deadline must be in (0, %g]", i, float64(simMaxDeadline))
		}
		if j.Arrival < 0 || j.Arrival > maxArrival {
			return fmt.Sprintf("job %d: arrival must be in [0, %g]", i, maxArrival)
		}
		total += tasks
	}
	if maxTotalTasks > 0 && total > maxTotalTasks {
		return fmt.Sprintf("simulation has %d total tasks, limit %d", total, maxTotalTasks)
	}
	return ""
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writePrometheus(w, s.cache, s.tenants.Load(), s.ringSt.Load(), s.escrow)
}
