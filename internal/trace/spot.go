package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"chronos/internal/pareto"
)

// SpotPrices is a piecewise-constant VM price series, standing in for the
// Amazon EC2 spot-price history the paper multiplies machine time by. Times
// are strictly increasing; Prices[i] applies on [Times[i], Times[i+1]).
type SpotPrices struct {
	Times  []float64
	Prices []float64
}

// Validate reports structural errors.
func (s SpotPrices) Validate() error {
	if len(s.Times) == 0 || len(s.Times) != len(s.Prices) {
		return errors.New("trace: spot series needs equal, non-empty times and prices")
	}
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i] <= s.Times[i-1] {
			return fmt.Errorf("trace: spot times not increasing at %d", i)
		}
	}
	for i, p := range s.Prices {
		if p <= 0 {
			return fmt.Errorf("trace: spot price %v at %d", p, i)
		}
	}
	return nil
}

// At returns the price in effect at time t (the first price before Times[0]).
func (s SpotPrices) At(t float64) float64 {
	i := sort.SearchFloat64s(s.Times, t)
	// SearchFloat64s returns the first index with Times[i] >= t; the price
	// in effect is the previous segment unless t hits a boundary exactly.
	if i < len(s.Times) && s.Times[i] == t {
		return s.Prices[i]
	}
	if i == 0 {
		return s.Prices[0]
	}
	return s.Prices[i-1]
}

// Integral returns the integral of the price over [a, b] — the exact spot
// cost of one machine occupied over that interval. Prices extend constantly
// beyond both ends of the series.
func (s SpotPrices) Integral(a, b float64) float64 {
	if b < a {
		return -s.Integral(b, a)
	}
	var total float64
	// Walk the segments overlapping [a, b]. Segment i covers
	// [Times[i], Times[i+1]); the last segment extends to +inf, and
	// Prices[0] extends to -inf.
	for i := range s.Prices {
		segStart := math.Inf(-1)
		if i > 0 {
			segStart = s.Times[i]
		}
		segEnd := math.Inf(1)
		if i+1 < len(s.Times) {
			segEnd = s.Times[i+1]
		}
		lo := math.Max(a, segStart)
		hi := math.Min(b, segEnd)
		if hi > lo {
			total += s.Prices[i] * (hi - lo)
		}
	}
	return total
}

// Mean returns the time-weighted average price over the series' span (the
// fixed C used by the paper's experiments).
func (s SpotPrices) Mean() float64 {
	if len(s.Prices) == 1 {
		return s.Prices[0]
	}
	var weighted, span float64
	for i := 0; i+1 < len(s.Times); i++ {
		dt := s.Times[i+1] - s.Times[i]
		weighted += s.Prices[i] * dt
		span += dt
	}
	return weighted / span
}

// SpotConfig shapes a synthetic mean-reverting spot-price series.
type SpotConfig struct {
	// Mean is the long-run price level (e.g. 0.0116 $/h for m4.large-like
	// instances, expressed per second in simulations if desired).
	Mean float64
	// Volatility is the per-step relative shock magnitude.
	Volatility float64
	// Reversion in (0, 1] pulls the price back toward Mean each step.
	Reversion float64
	// Step is the sampling interval in seconds.
	Step float64
	// Horizon is the series length in seconds.
	Horizon float64
	// Floor bounds the price from below as a fraction of Mean (default 0.2).
	Floor float64
	// Seed drives the shocks.
	Seed uint64
}

// GenerateSpotPrices synthesizes an EC2-like series: mean-reverting
// multiplicative random walk with a floor, mimicking the bursty-but-anchored
// behaviour of historical spot markets.
func GenerateSpotPrices(cfg SpotConfig) (SpotPrices, error) {
	if cfg.Mean <= 0 || cfg.Step <= 0 || cfg.Horizon < cfg.Step {
		return SpotPrices{}, fmt.Errorf("trace: bad spot config %+v", cfg)
	}
	if cfg.Reversion <= 0 || cfg.Reversion > 1 {
		return SpotPrices{}, fmt.Errorf("trace: reversion %v outside (0, 1]", cfg.Reversion)
	}
	floor := cfg.Floor
	if floor <= 0 {
		floor = 0.2
	}
	rng := pareto.NewStream(cfg.Seed, 0x5907)
	n := int(cfg.Horizon/cfg.Step) + 1
	s := SpotPrices{Times: make([]float64, n), Prices: make([]float64, n)}
	price := cfg.Mean
	for i := 0; i < n; i++ {
		s.Times[i] = float64(i) * cfg.Step
		s.Prices[i] = price
		shock := (rng.Float64()*2 - 1) * cfg.Volatility
		price += cfg.Reversion*(cfg.Mean-price) + cfg.Mean*shock
		if price < cfg.Mean*floor {
			price = cfg.Mean * floor
		}
	}
	return s, nil
}
