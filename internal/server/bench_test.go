package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"chronos/internal/tenant"
)

// The tracked serving benchmarks (cached plan, cold plan, admit) call the
// handlers directly with the reusable request/writer pair from
// zeroalloc_test.go, so they measure the handler itself — JSON decode,
// cache, solve, ledger, JSON encode — and the reported allocs/op is the
// handler's own allocation profile, not the ~29-allocation floor net/http's
// connection bookkeeping and the routing middleware impose per request. The
// batch and escrow benchmarks stay on the full httptest stack: their cost is
// dominated by real work, not harness noise. Run with:
//
//	go test -bench=BenchmarkPlanHandler -benchmem ./internal/server/
//
// The cached benchmark replays one request body so every call after the
// first hits the sharded plan cache; the cold benchmark walks a parameter
// grid wider than the cache so every call solves Algorithm 1 for all three
// strategies. Their ratio is the cache's speedup on the hot path.

// BenchmarkPlanHandlerCached measures the hot path: repeated plans for the
// same (quantized) job served from the cache.
func BenchmarkPlanHandlerCached(b *testing.B) {
	s := New(Config{})
	body, req, w := zeroAllocRequest(b, "/v1/plan",
		planRequest{Job: testJob(), Econ: testEcon()})
	s.handlePlan(w, req) // warm the cache
	if w.code != http.StatusOK {
		b.Fatalf("warmup status = %d, want 200", w.code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.off = 0
		s.handlePlan(w, req)
	}
	b.StopTimer()
	if w.code != http.StatusOK {
		b.Fatalf("status = %d, want 200", w.code)
	}
	hits, _, _ := s.CacheStats()
	if hits < uint64(b.N) {
		b.Fatalf("only %d cache hits over %d requests", hits, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "plans/s")
}

// BenchmarkPlanHandlerCold measures the miss path: every request carries a
// distinct deadline drawn from a grid far wider than the cache, so each one
// runs the full three-strategy optimization.
func BenchmarkPlanHandlerCold(b *testing.B) {
	s := New(Config{CacheCapacity: 64})
	// 256 distinct deadlines in [100, 164): resolvable at six significant
	// digits, and cycling them through 64 LRU slots evicts each long
	// before it comes around again, so every request misses.
	const grid = 256
	bodies := make([]*rewindBody, grid)
	reqs := make([]*http.Request, grid)
	var w *reuseRW
	for i := range bodies {
		job := testJob()
		job.Deadline = 100 + float64(i)*0.25
		bodies[i], reqs[i], w = zeroAllocRequest(b, "/v1/plan",
			planRequest{Job: job, Econ: testEcon()})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := bodies[i%grid]
		body.off = 0
		s.handlePlan(w, reqs[i%grid])
	}
	b.StopTimer()
	if w.code != http.StatusOK {
		b.Fatalf("status = %d, want 200", w.code)
	}
	_, misses, _ := s.CacheStats()
	if misses < uint64(b.N) {
		b.Fatalf("only %d cache misses over %d requests", misses, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "plans/s")
}

// BenchmarkAdmitHandler measures the online admission path: cached optimal
// plan plus an atomic ledger debit per request, against a pool deep enough
// to never reject. This is the per-arrival decision latency of the paper's
// online setting, tracked per PR in BENCH_*.json.
func BenchmarkAdmitHandler(b *testing.B) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"bench": {Budget: 1e18},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{Tenants: reg})
	body, req, w := zeroAllocRequest(b, "/v1/admit",
		admitRequest{Tenant: "bench", Job: testJob(), Econ: testEcon()})
	s.handleAdmit(w, req) // warm the cache
	if w.code != http.StatusOK {
		b.Fatalf("warmup status = %d, want 200", w.code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.off = 0
		s.handleAdmit(w, req)
	}
	b.StopTimer()
	if w.code != http.StatusOK {
		b.Fatalf("status = %d, want 200", w.code)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "admits/s")
}

// BenchmarkAdmitHandlerEscrow is BenchmarkAdmitHandler with fleet-exact
// accounting on: the admit debits the escrow ledger's authoritative pool
// (owner path — a solo replica owns every tenant) instead of the bare token
// bucket. The delta against BenchmarkAdmitHandler is the price of exactness
// without durability.
func BenchmarkAdmitHandlerEscrow(b *testing.B) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"bench": {Budget: 1e18},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{Tenants: reg, Escrow: true})
	defer s.Close()
	h := s.Handler()
	raw, err := json.Marshal(admitRequest{Tenant: "bench", Job: testJob(), Econ: testEcon()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/admit", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "admits/s")
}

// BenchmarkAdmitHandlerEscrowWAL adds snapshot+WAL durability: every admit
// appends one debit record. The delta against BenchmarkAdmitHandlerEscrow is
// the WAL's cost on the admission path.
func BenchmarkAdmitHandlerEscrowWAL(b *testing.B) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"bench": {Budget: 1e18},
	})
	if err != nil {
		b.Fatal(err)
	}
	store, err := tenant.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	s := New(Config{Tenants: reg, Escrow: true, Store: store})
	defer s.Close()
	h := s.Handler()
	raw, err := json.Marshal(admitRequest{Tenant: "bench", Job: testJob(), Econ: testEcon()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/admit", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "admits/s")
}

// BenchmarkAdmitBatchHandler measures batched admission: 16 warm-cache
// admissions settled in one ledger debit. Compare per-job cost against
// BenchmarkAdmitHandler to see what the batch amortizes.
func BenchmarkAdmitBatchHandler(b *testing.B) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"bench": {Budget: 1e18},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{Tenants: reg})
	h := s.Handler()
	jobs := make([]admitBatchJob, 16)
	for i := range jobs {
		job := testJob()
		job.Tasks = 5 + i
		jobs[i] = admitBatchJob{Job: job}
	}
	raw, err := json.Marshal(admitBatchRequest{Tenant: "bench", Jobs: jobs, Econ: testEcon()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/admit/batch", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(jobs))/b.Elapsed().Seconds(), "admits/s")
}

// BenchmarkBatchHandler measures a 64-job shared-budget allocation with
// best-of-three selection fanned out across the worker pool.
func BenchmarkBatchHandler(b *testing.B) {
	s := New(Config{})
	h := s.Handler()
	jobs := make([]batchJobRequest, 64)
	for i := range jobs {
		job := testJob()
		job.Tasks = 5 + i%20
		jobs[i] = batchJobRequest{Job: job}
	}
	raw, err := json.Marshal(batchRequest{Jobs: jobs, Budget: 500000, Econ: testEcon()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/plan/batch", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(jobs))/b.Elapsed().Seconds(), "plans/s")
}
