package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Table renders aligned plain-text tables: the output format of the
// benchmark harness that regenerates the paper's tables and figure series.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends one row; cells beyond the header count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddSummaryRow formats a Summary as a row (PoCD to 3 decimals, cost to 1,
// utility to 3; -Inf utility renders as "-inf").
func (t *Table) AddSummaryRow(s Summary) {
	t.AddRow(s.Strategy, FormatFloat(s.PoCD, 3), FormatFloat(s.Cost, 1), FormatFloat(s.Utility, 3))
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float with the given decimal places, mapping
// infinities to "-inf"/"+inf".
func FormatFloat(v float64, decimals int) string {
	if math.IsInf(v, -1) {
		return "-inf"
	}
	if math.IsInf(v, 1) {
		return "+inf"
	}
	return fmt.Sprintf("%.*f", decimals, v)
}
