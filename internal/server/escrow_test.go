package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"chronos/internal/tenant"
)

// escrowFleet boots an n-replica ring with escrow accounting on and an
// identical single-tenant config per replica (the deployment contract), as
// cmd/chronosd replicas sharing one tenants.json would.
func escrowFleet(t *testing.T, n int, tenantName string, budget float64) ([]*Server, []string) {
	t.Helper()
	servers, listeners := newRingFleet(t, n, func(i int) Config {
		return Config{
			Tenants: testRegistry(t, tenantName, budget),
			Escrow:  true,
		}
	})
	urls := make([]string, n)
	for i, ts := range listeners {
		urls[i] = ts.URL
	}
	for _, s := range servers {
		t.Cleanup(s.Close)
	}
	return servers, urls
}

// TestFleetEscrowNeverOverCommits is the tentpole acceptance property:
// concurrent admits spread across every replica of a 3-replica fleet can
// never debit more machine time, fleet-wide, than the tenant's single
// configured budget. Run under -race this also exercises the lease CAS
// path, the synchronous top-up, and the owner's grant lock concurrently.
func TestFleetEscrowNeverOverCommits(t *testing.T) {
	mt := bestPlanMachineTime(t)
	budget := 6 * mt // room for ~6 optimal plans across the whole fleet
	_, urls := escrowFleet(t, 3, "etl", budget)

	const workers = 6
	const perWorker = 8
	var (
		mu       sync.Mutex
		admitted float64
		admits   int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Distinct job shapes spread plan keys (and so serving
				// replicas) across the ring; the request entry point rotates
				// across replicas too.
				job := testJob()
				job.Tasks = 8 + (w*perWorker+i)%7
				req := admitRequest{Tenant: "etl", Job: job, Econ: testEcon()}
				raw, err := json.Marshal(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(urls[(w+i)%len(urls)]+"/v1/admit",
					"application/json", strings.NewReader(string(raw)))
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("admit: status %d body %s err %v", resp.StatusCode, body, err)
					return
				}
				var dec admitResponse
				if err := json.Unmarshal(body, &dec); err != nil {
					t.Error(err)
					return
				}
				if dec.Admitted {
					mu.Lock()
					admitted += dec.Plan.MachineTime
					admits++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	if admits == 0 {
		t.Fatal("no admits succeeded; escrow leasing is not granting budget")
	}
	if admitted > budget*(1+1e-9) {
		t.Fatalf("fleet admitted %g machine-seconds against a %g budget: over-committed by %g",
			admitted, budget, admitted-budget)
	}
	t.Logf("fleet admitted %d plans, %g of %g machine-seconds", admits, admitted, budget)

	// The escrow surface is observable: some replica owns the tenant and
	// reports outstanding escrow, and the lease/grant counters exist.
	sawOutstanding := false
	for _, u := range urls {
		text := getMetricsText(t, u)
		if strings.Contains(text, `chronosd_escrow_outstanding{tenant="etl"}`) {
			sawOutstanding = true
		}
	}
	if !sawOutstanding {
		t.Error("no replica exposes chronosd_escrow_outstanding for the tenant")
	}
}

// TestEscrowRestartRestoresLevels: a pool owner that dies without a
// graceful shutdown (WAL only, no final snapshot) and one that shuts down
// cleanly both come back with exactly the level they had — no lost and no
// duplicated debits.
func TestEscrowRestartRestoresLevels(t *testing.T) {
	dir := t.TempDir()
	mt := bestPlanMachineTime(t)
	budget := 4 * mt

	open := func() *tenant.Store {
		st, err := tenant.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	admitOnce := func(url string, tasks int) float64 {
		job := testJob()
		job.Tasks = tasks
		resp := postJSON(t, url+"/v1/admit", admitRequest{Tenant: "etl", Job: job, Econ: testEcon()})
		dec := decodeBody[admitResponse](t, resp)
		if !dec.Admitted {
			t.Fatalf("admit(tasks=%d) rejected: %s", tasks, dec.Reason)
		}
		return dec.BudgetRemaining
	}

	// Generation 1: two debits, then a hard crash (the store is closed to
	// flush file handles, but the server never compacts or releases).
	store1 := open()
	srv1, ts1 := newTestServer(t, Config{
		Tenants: testRegistry(t, "etl", budget), Escrow: true, Store: store1,
	})
	admitOnce(ts1.URL, 10)
	wantRemaining := admitOnce(ts1.URL, 11)
	_ = srv1 // deliberately not Closed: simulates a crash
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 2 boots from the anchor snapshot + WAL replay.
	store2 := open()
	srv2, ts2 := newTestServer(t, Config{
		Tenants: testRegistry(t, "etl", budget), Escrow: true, Store: store2,
	})
	got := srv2.Tenants().Get("etl").Remaining()
	if diff := got - wantRemaining; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("after crash restart: remaining = %g, want %g (lost or duplicated debits)", got, wantRemaining)
	}

	// Generation 2 spends more, then shuts down gracefully (final compact).
	wantRemaining = admitOnce(ts2.URL, 12)
	srv2.Close()
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 3 boots from the compacted snapshot alone.
	store3 := open()
	srv3, _ := newTestServer(t, Config{
		Tenants: testRegistry(t, "etl", budget), Escrow: true, Store: store3,
	})
	defer srv3.Close()
	got = srv3.Tenants().Get("etl").Remaining()
	if diff := got - wantRemaining; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("after graceful restart: remaining = %g, want %g", got, wantRemaining)
	}
}

// leaseViaHTTP drives the owner-side escrow API directly, playing a remote
// holder.
func leaseViaHTTP(t *testing.T, url string, req escrowLeaseRequest) escrowLeaseResponse {
	t.Helper()
	resp := postJSON(t, url+escrowPath, req)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("escrow lease: status %d: %s", resp.StatusCode, body)
	}
	return decodeBody[escrowLeaseResponse](t, resp)
}

// TestSetTenantsRebaseWithOutstandingLeases: a SIGHUP tenant reload must
// not double-count budget that is out on lease. A same-shape reload carries
// the ledger (level unchanged); a reshaped reload starts a fresh bucket and
// re-debits the outstanding escrow from it.
func TestSetTenantsRebaseWithOutstandingLeases(t *testing.T) {
	const budget = 1000.0
	srv, ts := newTestServer(t, Config{
		Tenants: testRegistry(t, "etl", budget), Escrow: true,
	})
	defer srv.Close()

	// A remote holder leases 300 machine-seconds of escrow.
	grant := leaseViaHTTP(t, ts.URL, escrowLeaseRequest{
		Tenant: "etl", Holder: "http://holder.example:1", Want: 300,
	})
	if grant.Granted != 300 {
		t.Fatalf("granted = %g, want 300", grant.Granted)
	}
	if got := srv.Tenants().Get("etl").Remaining(); got != 700 {
		t.Fatalf("post-grant remaining = %g, want 700", got)
	}

	// Same-shape reload: the pool carries its ledger, so the lease stays
	// accounted exactly once.
	reload1 := testRegistry(t, "etl", budget)
	reload1.Rebase(srv.Tenants())
	srv.SetTenants(reload1)
	if got := srv.Tenants().Get("etl").Remaining(); got != 700 {
		t.Fatalf("after same-shape reload: remaining = %g, want 700", got)
	}

	// Reshaped reload (budget doubled): the fresh bucket must be re-debited
	// by the outstanding 300, not start at the full 2000.
	reload2 := testRegistry(t, "etl", 2*budget)
	reload2.Rebase(srv.Tenants())
	srv.SetTenants(reload2)
	if got := srv.Tenants().Get("etl").Remaining(); got != 1700 {
		t.Fatalf("after reshaped reload: remaining = %g, want 1700 (leased budget double-counted?)", got)
	}

	// The holder comes back from the lease: 100 spent, 200 unspent. The
	// release credits exactly the unspent escrow.
	leaseViaHTTP(t, ts.URL, escrowLeaseRequest{
		Tenant: "etl", Holder: "http://holder.example:1", Spent: 100, Release: true,
	})
	if got := srv.Tenants().Get("etl").Remaining(); got != 1900 {
		t.Fatalf("after release: remaining = %g, want 1900", got)
	}
}

// TestErrorEnvelopeUnified: every /v1 error carries the unified envelope —
// error text, stable code, and the request's trace ID — while readers of
// the legacy reason field still see it on budget rejections.
func TestErrorEnvelopeUnified(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t, "etl", 1)})

	cases := []struct {
		name       string
		do         func() *http.Response
		wantStatus int
		wantCode   string
	}{
		{
			name: "bad json",
			do: func() *http.Response {
				resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader("{"))
				if err != nil {
					t.Fatal(err)
				}
				return resp
			},
			wantStatus: http.StatusBadRequest,
			wantCode:   codeBadRequest,
		},
		{
			name: "unknown tenant",
			do: func() *http.Response {
				return postJSON(t, ts.URL+"/v1/admit", admitRequest{Tenant: "nope", Job: testJob()})
			},
			wantStatus: http.StatusNotFound,
			wantCode:   codeNotFound,
		},
		{
			name: "budget exhausted",
			do: func() *http.Response {
				return postJSON(t, ts.URL+"/v1/plan",
					planRequest{Tenant: "etl", Job: testJob(), Econ: testEcon()})
			},
			wantStatus: http.StatusTooManyRequests,
			wantCode:   codeBudgetExhausted,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do()
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			var env errorResponse
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("not an error envelope: %s", raw)
			}
			if env.Error == "" {
				t.Error("envelope error text is empty")
			}
			if env.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", env.Code, tc.wantCode)
			}
			if env.TraceID == "" {
				t.Error("envelope trace ID is empty")
			}
			if header := resp.Header.Get("X-Chronosd-Trace-Id"); env.TraceID != header {
				t.Errorf("envelope trace ID %q != response header %q", env.TraceID, header)
			}
			// Compatibility: a pre-envelope reader that only knows the
			// legacy reason field still sees structured budget rejections.
			if tc.wantStatus == http.StatusTooManyRequests {
				var legacy struct {
					Error  string `json:"error"`
					Reason string `json:"reason"`
				}
				if err := json.Unmarshal(raw, &legacy); err != nil {
					t.Fatal(err)
				}
				if legacy.Reason != ReasonBudgetExhausted {
					t.Errorf("legacy reason = %q, want %q", legacy.Reason, ReasonBudgetExhausted)
				}
			}
		})
	}
}

// TestEscrowLeaseNotOwner: a lease call that lands on a non-owner answers
// 409/not_owner so a holder racing a membership reload re-resolves instead
// of splitting the pool across two owners.
func TestEscrowLeaseNotOwner(t *testing.T) {
	servers, urls := escrowFleet(t, 2, "etl", 1000)
	// Find the replica that does NOT own the tenant key.
	nonOwner := -1
	for i, s := range servers {
		if !s.escrow.ownsTenant("etl") {
			nonOwner = i
		}
	}
	if nonOwner == -1 {
		t.Fatal("both replicas claim tenant ownership")
	}
	resp := postJSON(t, urls[nonOwner]+escrowPath, escrowLeaseRequest{
		Tenant: "etl", Holder: "http://holder.example:1", Want: 10,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
	env := decodeBody[errorResponse](t, resp)
	if env.Code != codeNotOwner {
		t.Errorf("code = %q, want %q", env.Code, codeNotOwner)
	}
}

// TestEscrowSoloFallsBackToOwnerPath: with sharding off, one replica owns
// every tenant and escrow mode degrades to direct WAL-logged pool debits —
// admission behavior is indistinguishable from legacy mode.
func TestEscrowSoloFallsBackToOwnerPath(t *testing.T) {
	mt := bestPlanMachineTime(t)
	srv, ts := newTestServer(t, Config{
		Tenants: testRegistry(t, "etl", 2*mt+1), Escrow: true,
	})
	defer srv.Close()
	admits := 0
	for i := 0; i < 5; i++ {
		resp := postJSON(t, ts.URL+"/v1/admit", admitRequest{Tenant: "etl", Job: testJob(), Econ: testEcon()})
		dec := decodeBody[admitResponse](t, resp)
		if dec.Admitted {
			admits++
		}
	}
	if admits < 2 {
		t.Fatalf("admits = %d, want >= 2 (escrow solo mode rejects affordable jobs)", admits)
	}
}
