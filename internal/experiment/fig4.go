package experiment

import (
	"chronos/internal/mapreduce"
	"chronos/internal/metrics"
	"chronos/internal/optimize"
	"chronos/internal/pareto"
	"chronos/internal/speculate"
)

// Fig4Config parameterizes the beta sweep of Figure 4: task execution times
// are Pareto(tmin, beta) with beta swept over the heavy-tail range, and each
// job's deadline is 2x the mean task execution time.
type Fig4Config struct {
	// Betas is the sweep (paper: 1.1 through 1.9).
	Betas []float64
	// TMin is the Pareto scale shared by the sweep.
	TMin float64
	// Jobs and Tasks shape the batch per beta point.
	Jobs, Tasks int
	// DeadlineRatio multiplies the mean task time (paper: 2).
	DeadlineRatio float64
	// TauEstFactor and TauKillFactor position the control instants in
	// units of tmin.
	TauEstFactor, TauKillFactor float64
	// Theta and UnitPrice configure the optimizer and measured utility.
	Theta, UnitPrice float64
	// RMin enters the measured utility.
	RMin float64
}

// DefaultFig4Config mirrors the paper's sweep at reduced scale.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Betas:         []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9},
		TMin:          10,
		Jobs:          150,
		Tasks:         10,
		DeadlineRatio: 2,
		TauEstFactor:  0.3,
		TauKillFactor: 0.6,
		Theta:         1e-4,
		UnitPrice:     1,
	}
}

// Fig4Row is one (beta, strategy) point of Figures 4(a)-(c).
type Fig4Row struct {
	Beta     float64
	Strategy string
	PoCD     float64
	Cost     float64
	Utility  float64
}

// RunFigure4 sweeps beta over the five strategies of Figure 4.
func RunFigure4(r Runner, cfg Fig4Config) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, beta := range cfg.Betas {
		dist, err := pareto.New(cfg.TMin, beta)
		if err != nil {
			return nil, err
		}
		deadline := cfg.DeadlineRatio * dist.Mean()
		ccfg := speculate.ChronosConfig{
			TauEst:  cfg.TauEstFactor * cfg.TMin,
			TauKill: cfg.TauKillFactor * cfg.TMin,
			Opt:     optimize.Config{Theta: cfg.Theta, RMin: cfg.RMin, UnitPrice: cfg.UnitPrice},
			FixedR:  -1,
		}
		strategies := []mapreduce.Strategy{
			speculate.HadoopNS{},
			speculate.HadoopS{},
			speculate.Clone{Config: ccfg},
			speculate.Restart{Config: ccfg},
			speculate.Resume{Config: ccfg},
		}
		for _, strat := range strategies {
			subs := make([]submission, cfg.Jobs)
			for i := range subs {
				subs[i] = submission{
					spec: mapreduce.JobSpec{
						ID:         i,
						Name:       "fig4",
						NumTasks:   cfg.Tasks,
						Deadline:   deadline,
						Dist:       dist,
						SplitBytes: 128 << 20,
						JVM:        mapreduce.JVMModel{Min: 1, Max: 3},
						UnitPrice:  cfg.UnitPrice,
						Arrival:    float64(i) * deadline * 4,
					},
					strat: strat,
				}
			}
			stats, err := r.run(strat.Name(), subs)
			if err != nil {
				return nil, err
			}
			ucfg := optimize.Config{Theta: cfg.Theta, RMin: cfg.RMin, UnitPrice: cfg.UnitPrice}
			rows = append(rows, Fig4Row{
				Beta:     beta,
				Strategy: strat.Name(),
				PoCD:     stats.PoCD(),
				Cost:     stats.MeanCost(),
				Utility:  stats.Utility(ucfg),
			})
		}
	}
	return rows, nil
}

// Fig4Table renders the beta sweep.
func Fig4Table(rows []Fig4Row) *metrics.Table {
	t := metrics.NewTable("beta", "Strategy", "PoCD", "Cost", "Utility")
	for _, row := range rows {
		t.AddRow(
			metrics.FormatFloat(row.Beta, 1),
			row.Strategy,
			metrics.FormatFloat(row.PoCD, 3),
			metrics.FormatFloat(row.Cost, 1),
			metrics.FormatFloat(row.Utility, 3))
	}
	return t
}
