// Example chronosd_client starts an in-process chronosd instance and
// drives every endpoint through the importable chronos/client package, the
// way a cluster scheduler would: a single-job plan (twice, showing the
// cache hit), a shared-budget batch, a tradeoff curve, and a what-if
// simulation, finishing with the server's own Prometheus metrics. Against a
// sharded fleet the same code routes plan-keyed requests straight to the
// owning replica — build the client with NewFleet and the replicas' -self
// URLs instead of New.
//
// Run with:
//
//	go run ./examples/chronosd_client
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"strings"

	"chronos"
	"chronos/client"
	"chronos/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chronosd_client:", err)
		os.Exit(1)
	}
}

func run() error {
	// Boot chronosd on an ephemeral local port.
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	c := client.New("http://" + ln.Addr().String())
	fmt.Println("chronosd serving on", c.Replicas()[0])

	job := chronos.JobParams{
		Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5,
		TauEst: 30, TauKill: 60,
	}
	econ := chronos.Econ{Theta: 1e-4, UnitPrice: 1}

	// 1) Single-job planning — the scheduler's per-arrival hot path. The
	// second identical request is served from the sharded plan cache.
	fmt.Println("\n--- client.Plan (cold, then cached) ---")
	for i := 0; i < 2; i++ {
		plan, err := c.Plan(ctx, client.PlanRequest{Job: job, Econ: econ})
		if err != nil {
			return err
		}
		fmt.Printf("strategy=%v r=%d pocd=%.4f machineTime=%.1f cached=%v\n",
			plan.Plan.Strategy, plan.Plan.R, plan.Plan.PoCD,
			plan.Plan.MachineTime, plan.Cached)
	}

	// 2) Shared-budget batch: four concurrent jobs, one machine-time
	// budget; strategies picked per job, then the budget split greedily.
	fmt.Println("\n--- client.PlanBatch ---")
	batch, err := c.PlanBatch(ctx, client.BatchRequest{
		Jobs: []client.BatchJob{
			{Job: job},
			{Job: job, Strategy: "clone"},
			{Job: job, RMin: 0.5},
			{Job: job, Strategy: "s-resume"},
		},
		Budget: 5000,
		Econ:   econ,
	})
	if err != nil {
		return err
	}
	for i, p := range batch.Plans {
		fmt.Printf("job %d: strategy=%v r=%d pocd=%.4f machineTime=%.1f\n",
			i, p.Strategy, p.R, p.PoCD, p.MachineTime)
	}
	fmt.Printf("total machine time %.1f of budget %.1f\n",
		batch.TotalMachineTime, batch.Budget)

	// 3) The PoCD/cost frontier for Clone, r = 0..5.
	fmt.Println("\n--- client.Tradeoff ---")
	curve, err := c.Tradeoff(ctx, "clone", job, econ, 5)
	if err != nil {
		return err
	}
	for _, pt := range curve.Points {
		fmt.Printf("r=%d pocd=%.4f cost=%.1f\n", pt.R, pt.PoCD, pt.Cost)
	}

	// 4) A bounded what-if simulation of the same job class.
	fmt.Println("\n--- client.Simulate ---")
	sim, err := c.Simulate(ctx, client.SimulateRequest{
		Config: chronos.SimConfig{
			Strategy: chronos.SpeculativeResume, Seed: 7,
			TauEst: 40, TauKill: 80, TauScale: 1,
		},
		Jobs: []chronos.SimJob{
			{Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5},
			{Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5, Arrival: 50},
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("jobs=%d pocd=%.3f meanMachineTime=%.1f meanCost=%.1f\n",
		sim.Jobs, sim.PoCD, sim.MeanMachineTime, sim.MeanCost)

	// 5) The serving metrics, filtered to the cache and plan counters.
	fmt.Println("\n--- client.Metrics (excerpt) ---")
	metricsText, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(metricsText, "\n") {
		if strings.HasPrefix(line, "chronosd_plan") {
			fmt.Println(line)
		}
	}

	cancel()
	return <-done
}
