package mapreduce

import (
	"math"
	"testing"

	"chronos/internal/cluster"
	"chronos/internal/sim"
)

// observeHarness runs a single-task job under a report-configured runtime
// and returns the (running) original attempt.
func observeHarness(t *testing.T, cfg Config, until float64) (*sim.Engine, *Attempt) {
	t.Helper()
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 2, SlotsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(eng, cl, cfg)
	spec := testSpec()
	spec.NumTasks = 1
	spec.JVM = JVMModel{Min: 2, Max: 2}
	job, err := rt.Submit(spec, plainStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(until)
	return eng, job.Tasks[0].Attempts[0]
}

func TestObserveContinuousByDefault(t *testing.T) {
	_, a := observeHarness(t, Config{Seed: 1}, 6)
	obs := a.Observe(6)
	if !obs.Valid {
		t.Fatal("no observation after JVM-ready under continuous mode")
	}
	if obs.At != 6 {
		t.Errorf("continuous observation at %v, want query time 6", obs.At)
	}
	if math.Abs(obs.Progress-a.OwnProgress(6)) > 1e-12 {
		t.Errorf("continuous observation %v != exact progress %v", obs.Progress, a.OwnProgress(6))
	}
}

func TestObservePeriodicReports(t *testing.T) {
	_, a := observeHarness(t, Config{Seed: 1, ReportInterval: 5}, 14)
	// JVM ready at 2; reports at 7 and 12; the first useful report is k=1.
	if obs := a.Observe(4); obs.Valid {
		t.Errorf("observation before the first report: %+v", obs)
	}
	obs := a.Observe(14)
	if !obs.Valid {
		t.Fatal("no observation at t=14 with reports at 7 and 12")
	}
	if obs.At != 12 {
		t.Errorf("observation timestamp %v, want last report at 12", obs.At)
	}
	if math.Abs(obs.Progress-a.OwnProgress(12)) > 1e-12 {
		t.Errorf("report progress %v != exact progress at report time %v",
			obs.Progress, a.OwnProgress(12))
	}
}

func TestObserveNoiseDeterministic(t *testing.T) {
	_, a := observeHarness(t, Config{Seed: 1, ReportInterval: 5, ReportNoise: 0.2}, 14)
	o1 := a.Observe(14)
	o2 := a.Observe(14)
	if !o1.Valid || o1 != o2 {
		t.Errorf("noisy observation not deterministic: %+v vs %+v", o1, o2)
	}
	if o1.Progress <= 0 || o1.Progress > 1 {
		t.Errorf("noisy progress %v out of range", o1.Progress)
	}
	// Noise actually perturbs (with overwhelming probability).
	if math.Abs(o1.Progress-a.OwnProgress(12)) < 1e-12 {
		t.Error("noise had no effect on the report")
	}
}

func TestEstimatorsDegradeGracefullyWithReports(t *testing.T) {
	// Under periodic exact reports, the Chronos estimator evaluated at the
	// report instants equals the truth; between reports it uses the stale
	// report and still returns the exact value (linear progress).
	_, a := observeHarness(t, Config{Seed: 1, ReportInterval: 5}, 14)
	want := a.FinishTime()
	if got := ChronosEstimator(a, 14); math.Abs(got-want) > 1e-9 {
		t.Errorf("ChronosEstimator with exact periodic reports = %v, want %v", got, want)
	}
	// Before the first report: unknown.
	if got := ChronosEstimator(a, 3); !math.IsInf(got, 1) {
		t.Errorf("ChronosEstimator before first report = %v, want +Inf", got)
	}
	if got := HadoopEstimator(a, 3); !math.IsInf(got, 1) {
		t.Errorf("HadoopEstimator before first report = %v, want +Inf", got)
	}
}

func TestNoisyEstimatesScatterAroundTruth(t *testing.T) {
	// With 10% report noise, Chronos estimates deviate from the truth but
	// remain within a plausible band. Query at t=11: the attempt (intrinsic
	// >= tmin = 10, ready at 2) is still running, with one report at t=7.
	_, a := observeHarness(t, Config{Seed: 3, ReportInterval: 5, ReportNoise: 0.1}, 11)
	truth := a.FinishTime()
	got := ChronosEstimator(a, 11)
	if math.IsInf(got, 0) {
		t.Fatal("no estimate despite reports")
	}
	if got == truth {
		t.Error("noisy estimate exactly equals truth")
	}
	if got < truth/2 || got > truth*2 {
		t.Errorf("noisy estimate %v implausibly far from truth %v", got, truth)
	}
}

// TestReportsCreateEstimationMistakes is the behavioural point of the
// feature: with noisy periodic reports, straggler detection at tauEst makes
// mistakes, so a Speculative-Restart run launches extra attempts for some
// non-stragglers and/or misses some stragglers — unlike the exact-estimator
// run, which is perfect in this substrate.
func TestReportsCreateEstimationMistakes(t *testing.T) {
	count := func(cfg Config) (falsePos int) {
		eng := sim.NewEngine()
		cl, err := cluster.New(eng, cluster.Config{Nodes: 64, SlotsPerNode: 8})
		if err != nil {
			t.Fatal(err)
		}
		rt := NewRuntime(eng, cl, cfg)
		deadline := 100.0
		var jobs []*Job
		for i := 0; i < 150; i++ {
			spec := testSpec()
			spec.ID = i
			spec.NumTasks = 10
			spec.Deadline = deadline
			spec.Arrival = float64(i) * 400
			job, err := rt.Submit(spec, restartProbe{})
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job)
		}
		eng.Run()
		for _, job := range jobs {
			for _, task := range job.Tasks {
				orig := task.Attempts[0]
				isStrag := orig.JVMDelay+orig.FullSplitTime() > deadline
				if !isStrag && len(task.Attempts) > 1 {
					falsePos++
				}
			}
		}
		return falsePos
	}
	exact := count(Config{Seed: 9})
	noisy := count(Config{Seed: 9, ReportInterval: 5, ReportNoise: 0.25})
	if exact != 0 {
		t.Errorf("exact estimator produced %d false positives", exact)
	}
	if noisy == 0 {
		t.Error("noisy reports produced no false positives; feature inert")
	}
}

// restartProbe is a minimal Speculative-Restart-like strategy used to count
// detection mistakes: at tauEst=30 it launches one extra attempt for every
// task whose Chronos estimate exceeds the deadline.
type restartProbe struct{}

func (restartProbe) Name() string { return "restart-probe" }

func (restartProbe) Start(ctl *Controller) {
	job := ctl.Job()
	for _, task := range job.Tasks {
		ctl.Launch(task, 0)
	}
	ctl.AtJobTime(30, func() {
		now := ctl.Now()
		for _, task := range job.Tasks {
			if task.Done {
				continue
			}
			best := task.BestRunning(now, ChronosEstimator)
			if best != nil && ChronosEstimator(best, now) > job.Deadline() {
				ctl.Launch(task, 0)
			}
		}
	})
}
