//go:build !race

package server

// raceEnabled reports whether this test binary was built with -race, which
// instruments allocations and defeats sync.Pool reuse — allocation-count
// assertions are only meaningful without it.
const raceEnabled = false
