#!/usr/bin/env bash
# ring-demo.sh — boots 3 chronosd replicas joined into one consistent-hash
# ring and demonstrates the point of plan-key sharding: a plan computed via
# replica A is a cache hit when the same job is requested via replica B,
# because both forward the key to its single owning replica. Also used as
# the CI smoke step for the ring serving path (make ring-demo).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT_BASE="${RING_DEMO_PORT_BASE:-18080}"
BIN="$(mktemp -d)/chronosd"
echo "== building chronosd =="
go build -o "$BIN" ./cmd/chronosd

PORTS=($((PORT_BASE + 1)) $((PORT_BASE + 2)) $((PORT_BASE + 3)))
PEERS=""
for p in "${PORTS[@]}"; do
  PEERS="${PEERS:+$PEERS,}http://127.0.0.1:$p"
done

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

echo "== starting 3 replicas (ring: $PEERS) =="
for p in "${PORTS[@]}"; do
  "$BIN" -addr "127.0.0.1:$p" -self "http://127.0.0.1:$p" -peers "$PEERS" &
  PIDS+=($!)
done

for p in "${PORTS[@]}"; do
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$p/healthz" >/dev/null 2>&1 && break
    sleep 0.1
  done
  curl -sf "http://127.0.0.1:$p/healthz" >/dev/null \
    || { echo "FAIL: replica on port $p never became healthy"; exit 1; }
done

BODY='{"job":{"tasks":100,"deadline":3600,"tmin":40,"beta":1.6,"tauEst":300,"tauKill":600},"econ":{"theta":0.0001,"unitPrice":1}}'
A="http://127.0.0.1:${PORTS[0]}"
B="http://127.0.0.1:${PORTS[1]}"

echo "== plan via replica A ($A) =="
HDRS_A="$(mktemp)"
R1="$(curl -sf -D "$HDRS_A" -X POST -H 'Content-Type: application/json' -d "$BODY" "$A/v1/plan")"
echo "$R1"
OWNER="$(awk -F': ' 'tolower($1)=="x-chronosd-served-by" {gsub(/\r/,"",$2); print $2}' "$HDRS_A")"
echo "   served by: $OWNER"
grep -q '"cached":false' <<<"$R1" \
  || { echo "FAIL: first plan should not be cached"; exit 1; }

echo "== same job via replica B ($B) =="
HDRS_B="$(mktemp)"
R2="$(curl -sf -D "$HDRS_B" -X POST -H 'Content-Type: application/json' -d "$BODY" "$B/v1/plan")"
echo "$R2"
OWNER2="$(awk -F': ' 'tolower($1)=="x-chronosd-served-by" {gsub(/\r/,"",$2); print $2}' "$HDRS_B")"
echo "   served by: $OWNER2"
grep -q '"cached":true' <<<"$R2" \
  || { echo "FAIL: plan via B should hit the cache entry planned via A"; exit 1; }
[ "$OWNER" = "$OWNER2" ] \
  || { echo "FAIL: the two requests were served by different owners ($OWNER vs $OWNER2)"; exit 1; }
rm -f "$HDRS_A" "$HDRS_B"

echo "== ring metrics on replica A =="
curl -sf "$A/metrics" | grep '^chronosd_ring_'

echo
echo "OK: cross-replica cache hit — planned via A, hit via B, owned by $OWNER"
