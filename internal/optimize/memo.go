package optimize

import (
	"math"
	"sync"

	"chronos/internal/analysis"
)

// memoDenseCap bounds the slice-backed region of the memo. Optimal r values
// cluster near zero (PoCD saturates geometrically), and the capped/frontier
// scans are bounded by cappedScanCap = 4096, so realistic solves never leave
// the dense region; probes beyond it land in lazily-built overflow maps.
const memoDenseCap = 1 << 13

// memoModel caches PoCD and MachineTime evaluations by r. The closed-form
// theorems cost hundreds of floating-point operations per call, and both the
// Algorithm 1 bracketing search and the greedy batch allocator re-evaluate
// the same r values many times (the batch loop is O(total_r * M) model
// calls, most of them repeats).
//
// Two things distinguish it from a plain map-backed memo. First, when the
// wrapped model is one of the three raw strategy structs, bind routes all
// evaluation through an embedded analysis.Evaluator — the recurrence kernel
// that hoists the r-invariant terms of the closed forms — without a separate
// allocation. Second, the caches are dense NaN-sentinel slices indexed by r
// rather than maps, so a pooled memoModel solves without allocating: the
// slices keep their capacity across pool cycles. A genuine NaN model output
// is simply recomputed on each probe, which is correct, just not cached.
//
// Not safe for concurrent use; acquire one per solve call.
type memoModel struct {
	model analysis.Model // evaluation target; &ev when strategy-bound
	ev    analysis.Evaluator
	pocd  []float64 // dense r-indexed caches; NaN marks an empty slot
	mt    []float64
	// overflow for probes at r >= memoDenseCap (degenerate inputs only)
	pocdOv map[int]float64
	mtOv   map[int]float64
}

var _ analysis.Model = (*memoModel)(nil)

var memoPool = sync.Pool{New: func() any { return new(memoModel) }}

// Memoize wraps a model with per-r caching of PoCD and MachineTime.
// Wrapping an already-memoized model returns it unchanged. The wrapper is
// heap-allocated and garbage-collected; internal callers use acquire /
// acquireStrategy to recycle wrappers through a pool instead.
func Memoize(m analysis.Model) analysis.Model {
	if mm, ok := m.(*memoModel); ok {
		return mm
	}
	mm := new(memoModel)
	mm.bind(m)
	return mm
}

// acquire returns a pooled memo over m, or m itself when it is already a
// memoModel. The caller owns the wrapper iff pooled is true, and must then
// release it after the last use of any value derived from it.
func acquire(m analysis.Model) (mm *memoModel, pooled bool) {
	if c, ok := m.(*memoModel); ok {
		return c, false
	}
	mm = memoPool.Get().(*memoModel)
	mm.bind(m)
	return mm, true
}

// acquireStrategy returns a pooled memo evaluating (s, p) through the
// recurrence kernel, skipping the interface round-trip entirely.
func acquireStrategy(s analysis.Strategy, p analysis.Params) *memoModel {
	mm := memoPool.Get().(*memoModel)
	mm.ev.Reset(s, p)
	mm.model = &mm.ev
	mm.clearCaches()
	return mm
}

// bind points the memo at its evaluation target, routing raw strategy
// structs through the embedded kernel.
func (m *memoModel) bind(base analysis.Model) {
	switch b := base.(type) {
	case analysis.Clone:
		m.ev.Reset(analysis.StrategyClone, b.P)
		m.model = &m.ev
	case analysis.Restart:
		m.ev.Reset(analysis.StrategyRestart, b.P)
		m.model = &m.ev
	case analysis.Resume:
		m.ev.Reset(analysis.StrategyResume, b.P)
		m.model = &m.ev
	default:
		m.model = base
	}
	m.clearCaches()
}

func (m *memoModel) clearCaches() {
	m.pocd = m.pocd[:0]
	m.mt = m.mt[:0]
	m.pocdOv = nil
	m.mtOv = nil
}

// release returns the memo to the pool. The dense slices keep their capacity
// (at most memoDenseCap entries each); the rare overflow maps are dropped.
func (m *memoModel) release() {
	m.model = nil
	m.clearCaches()
	memoPool.Put(m)
}

func denseLoad(s []float64, r int) (float64, bool) {
	if r >= 0 && r < len(s) {
		if v := s[r]; !math.IsNaN(v) {
			return v, true
		}
	}
	return 0, false
}

func denseStore(s []float64, r int, v float64) []float64 {
	for len(s) <= r {
		s = append(s, math.NaN())
	}
	s[r] = v
	return s
}

func (m *memoModel) PoCD(r int) float64 {
	if r < memoDenseCap {
		if v, ok := denseLoad(m.pocd, r); ok {
			return v
		}
		v := m.model.PoCD(r)
		m.pocd = denseStore(m.pocd, r, v)
		return v
	}
	if v, ok := m.pocdOv[r]; ok {
		return v
	}
	v := m.model.PoCD(r)
	if m.pocdOv == nil {
		m.pocdOv = make(map[int]float64)
	}
	m.pocdOv[r] = v
	return v
}

func (m *memoModel) MachineTime(r int) float64 {
	if r < memoDenseCap {
		if v, ok := denseLoad(m.mt, r); ok {
			return v
		}
		v := m.model.MachineTime(r)
		m.mt = denseStore(m.mt, r, v)
		return v
	}
	if v, ok := m.mtOv[r]; ok {
		return v
	}
	v := m.model.MachineTime(r)
	if m.mtOv == nil {
		m.mtOv = make(map[int]float64)
	}
	m.mtOv[r] = v
	return v
}

// Name implements Model.
func (m *memoModel) Name() string { return m.model.Name() }

// Params implements Model.
func (m *memoModel) Params() analysis.Params { return m.model.Params() }

// Gamma implements Model.
func (m *memoModel) Gamma() float64 { return m.model.Gamma() }

// scanProbe evaluates (pocd, machine time, utility) at r for the sequential
// scan loops (Phase 2, the capped scan, frontier construction). When the
// memo is kernel-bound it rides the Evaluator's Advance cursor — the squares
// table built at Reset makes sequential probes popcount-cheap — and either
// way both metrics land in the memo for the Result assembly that follows.
func (m *memoModel) scanProbe(cfg Config, r int) (pocd, mt, u float64) {
	pocd, okP := denseLoad(m.pocd, r)
	mt, okM := denseLoad(m.mt, r)
	if !okP || !okM {
		if r >= memoDenseCap {
			return m.PoCD(r), m.MachineTime(r), cfg.Utility(m, r)
		}
		if m.model == &m.ev {
			m.ev.Seek(r)
			pr := m.ev.Advance()
			if !okP {
				pocd = pr.PoCD
				m.pocd = denseStore(m.pocd, r, pocd)
			}
			if !okM {
				mt = pr.MachineTime
				m.mt = denseStore(m.mt, r, mt)
			}
		} else {
			if !okP {
				pocd = m.PoCD(r)
			}
			if !okM {
				mt = m.MachineTime(r)
			}
		}
	}
	return pocd, mt, cfg.utilityAt(pocd, mt)
}
