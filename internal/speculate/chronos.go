package speculate

import (
	"math"

	"chronos/internal/analysis"
	"chronos/internal/mapreduce"
)

// The three Chronos strategies share their stage orchestration: the map
// stage runs from job arrival; if the job has a reduce stage, it is planned
// separately when the last map task commits (the paper: "PoCD for map and
// reduce stages can be optimized separately"), against the deadline budget
// remaining at that instant.

// Clone is the proactive Chronos strategy: r+1 attempts of every task start
// at stage begin; at tauKill the best-progress attempt survives.
type Clone struct {
	Config ChronosConfig
}

var _ mapreduce.Strategy = Clone{}

// Name implements mapreduce.Strategy.
func (Clone) Name() string { return "Clone" }

// Start implements mapreduce.Strategy.
func (s Clone) Start(ctl *mapreduce.Controller) {
	cfg := s.Config.withDefaults()
	relaunchOnLoss(ctl)
	runStages(ctl, func(st stage) { s.runStage(ctl, cfg, st) })
}

// runStage launches the clones for one stage and schedules the prune.
func (s Clone) runStage(ctl *mapreduce.Controller, cfg ChronosConfig, st stage) {
	r := cfg.chooseStageR(analysis.StrategyClone, ctl.Job(), st)
	st.recordR(ctl.Job(), r)
	for _, t := range st.tasks {
		for k := 0; k <= r; k++ {
			ctl.Launch(t, 0)
		}
	}
	ctl.After(cfg.TauKill, func() {
		for _, t := range st.tasks {
			keepBestKillRest(ctl, t, cfg.Estimator)
		}
	})
}

// Restart is the reactive restart strategy: stragglers detected at tauEst
// (estimated completion beyond the deadline) get r extra from-scratch
// attempts; at tauKill the best attempt of each task survives.
type Restart struct {
	Config ChronosConfig
}

var _ mapreduce.Strategy = Restart{}

// Name implements mapreduce.Strategy.
func (Restart) Name() string { return "Speculative-Restart" }

// Start implements mapreduce.Strategy.
func (s Restart) Start(ctl *mapreduce.Controller) {
	cfg := s.Config.withDefaults()
	relaunchOnLoss(ctl)
	runStages(ctl, func(st stage) { s.runStage(ctl, cfg, st) })
}

// runStage launches originals, detects stragglers at stage-relative tauEst,
// and prunes at tauKill.
func (s Restart) runStage(ctl *mapreduce.Controller, cfg ChronosConfig, st stage) {
	job := ctl.Job()
	r := cfg.chooseStageR(analysis.StrategyRestart, job, st)
	st.recordR(job, r)
	for _, t := range st.tasks {
		ctl.Launch(t, 0)
	}
	ctl.After(cfg.TauEst, func() {
		now := ctl.Now()
		for _, t := range st.tasks {
			if t.Done || !isStraggler(t, now, cfg.Estimator, job.Deadline()) {
				continue
			}
			for k := 0; k < r; k++ {
				ctl.Launch(t, 0)
			}
		}
	})
	ctl.After(cfg.TauKill, func() {
		for _, t := range st.tasks {
			keepBestKillRest(ctl, t, cfg.Estimator)
		}
	})
}

// Resume is the work-preserving reactive strategy: a straggler detected at
// tauEst is killed and replaced by r+1 attempts that continue from the
// anticipated byte offset (Eq. 31), skipping already-processed data.
type Resume struct {
	Config ChronosConfig
}

var _ mapreduce.Strategy = Resume{}

// Name implements mapreduce.Strategy.
func (Resume) Name() string { return "Speculative-Resume" }

// Start implements mapreduce.Strategy.
func (s Resume) Start(ctl *mapreduce.Controller) {
	cfg := s.Config.withDefaults()
	relaunchOnLoss(ctl)
	runStages(ctl, func(st stage) { s.runStage(ctl, cfg, st) })
}

// runStage launches originals, replaces stragglers with resumed attempts at
// stage-relative tauEst, and prunes at tauKill.
func (s Resume) runStage(ctl *mapreduce.Controller, cfg ChronosConfig, st stage) {
	job := ctl.Job()
	r := cfg.chooseStageR(analysis.StrategyResume, job, st)
	st.recordR(job, r)
	for _, t := range st.tasks {
		ctl.Launch(t, 0)
	}
	ctl.After(cfg.TauEst, func() {
		now := ctl.Now()
		for _, t := range st.tasks {
			if t.Done {
				continue
			}
			orig := t.BestRunning(now, cfg.Estimator)
			if orig == nil || cfg.Estimator(orig, now) <= job.Deadline() {
				continue
			}
			// Work-preserving handoff: new attempts start past the bytes
			// the original will have processed by the time their JVMs are
			// up; then the straggler is killed.
			frac := mapreduce.AnticipatedResumeFrac(orig, now)
			if frac >= 1 {
				continue // effectively done; let it finish
			}
			for _, a := range t.Active() {
				ctl.Kill(a)
			}
			for k := 0; k <= r; k++ {
				ctl.Launch(t, frac)
			}
		}
	})
	ctl.After(cfg.TauKill, func() {
		for _, t := range st.tasks {
			keepBestKillRest(ctl, t, cfg.Estimator)
		}
	})
}

// stage bundles the per-stage planning context.
type stage struct {
	kind mapreduce.StageKind
	// tasks are the stage's tasks.
	tasks []*mapreduce.Task
	// budget is the planning deadline for the optimizer (seconds from the
	// stage start).
	budget float64
}

// recordR stores the chosen r on the job for the Figure 5 histograms.
func (st stage) recordR(job *mapreduce.Job, r int) {
	if st.kind == mapreduce.StageReduce {
		job.ChosenReduceR = r
	} else {
		job.ChosenR = r
	}
}

// runStages invokes run for the map stage now and, if the job has a reduce
// stage, again when the map stage commits — with the reduce budget set to
// the deadline time remaining at that instant.
func runStages(ctl *mapreduce.Controller, run func(stage)) {
	job := ctl.Job()
	run(stage{
		kind:   mapreduce.StageMap,
		tasks:  job.MapTasks(),
		budget: job.Spec.MapBudget(),
	})
	if !job.Spec.Reduce.Enabled() {
		return
	}
	ctl.OnMapStageDone(func() {
		remaining := job.Deadline() - ctl.Now()
		run(stage{
			kind:   mapreduce.StageReduce,
			tasks:  job.ReduceTasks(),
			budget: remaining,
		})
	})
}

// isStraggler reports whether the task's best running attempt is estimated
// to miss the absolute deadline. Tasks with no running attempt (still queued
// under cluster contention) are stragglers by definition.
func isStraggler(t *mapreduce.Task, now float64, est mapreduce.Estimator, deadline float64) bool {
	best := t.BestRunning(now, est)
	if best == nil {
		return true
	}
	return est(best, now) > deadline
}

// relaunchOnLoss recovers from node failures by launching a fresh attempt
// for the lost one's task (restart semantics: resume state on the failed
// node is gone).
func relaunchOnLoss(ctl *mapreduce.Controller) {
	ctl.OnAttemptLost(func(a *mapreduce.Attempt) {
		if !a.Task.Done {
			ctl.Launch(a.Task, 0)
		}
	})
}

// stageParams builds the analytic inputs for one stage of a job.
func stageParams(job *mapreduce.Job, st stage, cfg ChronosConfig) analysis.Params {
	spec := job.Spec
	dist := spec.Dist
	if st.kind == mapreduce.StageReduce {
		dist = spec.Reduce.Dist
	}
	budget := st.budget
	if math.IsNaN(budget) || budget <= 0 {
		budget = dist.TMin * 1.01 // hopeless budget; validation will reject
	}
	return analysis.Params{
		N:        len(st.tasks),
		Deadline: budget,
		Task:     dist,
		TauEst:   cfg.TauEst,
		TauKill:  cfg.TauKill,
	}
}
