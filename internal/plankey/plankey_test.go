package plankey

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"chronos"
)

func TestKeyQuantizesNoise(t *testing.T) {
	base := chronos.JobParams{Tasks: 20, Deadline: 100, TMin: 10, Beta: 1.5, TauEst: 30, TauKill: 60}
	econ := chronos.Econ{Theta: 1e-4, UnitPrice: 1}
	noisy := base
	noisy.Deadline += 1e-9 // sub-ppm measurement noise
	if Key("", base, econ) != Key("", noisy, econ) {
		t.Fatal("sub-ppm perturbation changed the key")
	}
	far := base
	far.Deadline = 101
	if Key("", base, econ) == Key("", far, econ) {
		t.Fatal("distinct deadlines share a key")
	}
}

func TestKeySeparatesStrategies(t *testing.T) {
	p := chronos.JobParams{Tasks: 5, Deadline: 50, TMin: 5, Beta: 2, TauEst: 10, TauKill: 20}
	e := chronos.Econ{Theta: 1e-4, UnitPrice: 1}
	if Key("", p, e) == Key(chronos.Clone.String(), p, e) {
		t.Fatal("best-of-three and pinned Clone share a key")
	}
}

func TestCanonicalStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"", "", true},
		{"best", "", true},
		{" Best ", "", true},
		{"clone", chronos.Clone.String(), true},
		{"s-resume", chronos.SpeculativeResume.String(), true},
		{"warp-drive", "", false},
	}
	for _, c := range cases {
		got, ok := CanonicalStrategy(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("CanonicalStrategy(%q) = (%q, %v), want (%q, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestAppendKeyMatchesHistoricalFormat pins AppendKey to the fmt.Sprintf
// %.6g format Key used before the hot path stopped allocating. Persisted
// cache dumps and ring placement depend on the bytes never changing.
func TestAppendKeyMatchesHistoricalFormat(t *testing.T) {
	legacy := func(strategy string, p chronos.JobParams, e chronos.Econ) string {
		return fmt.Sprintf("%s|%d|%.6g|%.6g|%.6g|%.6g|%.6g|%.6g|%.6g|%.6g|%.6g",
			strategy, p.Tasks, p.Deadline, p.TMin, p.Beta, p.TauEst, p.TauKill,
			p.PhiEst, e.Theta, e.UnitPrice, e.RMin)
	}
	rng := rand.New(rand.NewSource(8))
	floats := []float64{0, -0.0 * 1, 1, -1, 0.1, 1e-9, 1e21, 123456.789,
		math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1), math.NaN(),
		1.0 / 3.0, 6.62607e-34}
	pick := func() float64 {
		if rng.Intn(3) == 0 {
			return floats[rng.Intn(len(floats))]
		}
		return math.Float64frombits(rng.Uint64())
	}
	for i := 0; i < 5000; i++ {
		p := chronos.JobParams{
			Tasks: rng.Intn(1 << 20), Deadline: pick(), TMin: pick(), Beta: pick(),
			TauEst: pick(), TauKill: pick(), PhiEst: pick(),
		}
		e := chronos.Econ{Theta: pick(), UnitPrice: pick(), RMin: pick()}
		strategy := []string{"", "Clone", "Speculative-Resume"}[rng.Intn(3)]
		want := legacy(strategy, p, e)
		if got := Key(strategy, p, e); got != want {
			t.Fatalf("Key diverged from historical format:\nwant %q\ngot  %q (params %+v econ %+v)", want, got, p, e)
		}
		if got := string(AppendKey([]byte("prefix"), strategy, p, e)); got != "prefix"+want {
			t.Fatalf("AppendKey with prefix diverged: %q", got)
		}
	}
}

func TestAppendKeyZeroAlloc(t *testing.T) {
	p := chronos.JobParams{Tasks: 20, Deadline: 100, TMin: 10, Beta: 1.5, TauEst: 30, TauKill: 60}
	e := chronos.Econ{Theta: 1e-4, UnitPrice: 1}
	buf := make([]byte, 0, 256)
	if avg := testing.AllocsPerRun(200, func() {
		buf = AppendKey(buf[:0], "Clone", p, e)
	}); avg != 0 {
		t.Fatalf("AppendKey allocates %.1f times per op", avg)
	}
}
