package replay_test

// The replay core is exercised through the public chronos.Replay surface —
// the same entry point the CLIs and chronosd use — so these tests double as
// API-contract tests for the streaming layer.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"chronos"
)

func testJobs(n int) []chronos.SimJob {
	jobs := make([]chronos.SimJob, n)
	for i := range jobs {
		jobs[i] = chronos.SimJob{
			Tasks:    4 + i%3,
			Deadline: 300,
			TMin:     10,
			Beta:     1.5,
			Arrival:  float64(i) * 40,
		}
	}
	return jobs
}

func testConfig() chronos.SimConfig {
	return chronos.SimConfig{
		Strategy:     chronos.SpeculativeResume,
		Seed:         42,
		Nodes:        16,
		SlotsPerNode: 8,
	}
}

// collect replays the stream and returns the marshaled NDJSON bytes plus
// the decoded events.
func collect(t *testing.T, cfg chronos.SimConfig, jobs []chronos.SimJob, window float64) ([]byte, []chronos.ReplayEvent, chronos.Report) {
	t.Helper()
	var buf bytes.Buffer
	var events []chronos.ReplayEvent
	rep, err := chronos.Replay(context.Background(), cfg, jobs, chronos.ReplayOptions{
		WindowSeconds: window,
		Observer: chronos.ReplayObserverFunc(func(ev *chronos.ReplayEvent) error {
			line, err := json.Marshal(ev)
			if err != nil {
				return err
			}
			buf.Write(line)
			buf.WriteByte('\n')
			events = append(events, *ev)
			return nil
		}),
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return buf.Bytes(), events, rep
}

func TestEventStreamDeterminism(t *testing.T) {
	jobs := testJobs(12)
	cfg := testConfig()
	a, _, _ := collect(t, cfg, jobs, 120)
	b, _, _ := collect(t, cfg, jobs, 120)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different event streams")
	}
	cfg.Seed++
	c, _, _ := collect(t, cfg, jobs, 120)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical event streams")
	}
}

func TestEventStreamShape(t *testing.T) {
	jobs := testJobs(12)
	_, events, rep := collect(t, testConfig(), jobs, 120)

	var planned, completed, windows, summaries int
	lastTime := math.Inf(-1)
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Time < lastTime {
			t.Fatalf("event %d time %v precedes %v", i, ev.Time, lastTime)
		}
		lastTime = ev.Time
		switch ev.Kind {
		case chronos.EventJobPlanned:
			planned++
			if ev.Job == nil || ev.Job.R == nil {
				t.Fatalf("job_planned %d missing job or plan: %+v", i, ev)
			}
		case chronos.EventJobCompleted:
			completed++
			if ev.Job == nil || ev.Outcome == nil || ev.PoCD == nil {
				t.Fatalf("job_completed %d missing payload: %+v", i, ev)
			}
			if ev.Outcome.MachineTime <= 0 {
				t.Fatalf("job_completed %d machine time %v", i, ev.Outcome.MachineTime)
			}
			wantLate := ev.Outcome.Finish - (ev.Job.Arrival + ev.Job.Deadline)
			if math.Abs(ev.Outcome.Lateness-wantLate) > 1e-9 {
				t.Fatalf("job_completed %d lateness %v, want %v", i, ev.Outcome.Lateness, wantLate)
			}
		case chronos.EventWindowSummary:
			windows++
			if ev.Window == nil || ev.Window.End <= ev.Window.Start {
				t.Fatalf("bad window %+v", ev.Window)
			}
		case chronos.EventReplaySummary:
			summaries++
			if i != len(events)-1 {
				t.Fatalf("replay_summary at %d of %d", i, len(events))
			}
			if ev.Summary == nil || ev.Summary.Jobs != len(jobs) {
				t.Fatalf("bad final summary %+v", ev.Summary)
			}
		default:
			t.Fatalf("unexpected kind %q", ev.Kind)
		}
	}
	if planned != len(jobs) || completed != len(jobs) {
		t.Fatalf("planned %d / completed %d events, want %d each", planned, completed, len(jobs))
	}
	if windows == 0 {
		t.Fatal("no window summaries emitted")
	}
	if summaries != 1 {
		t.Fatalf("%d replay_summary events", summaries)
	}
	if rep.Jobs != len(jobs) {
		t.Fatalf("report jobs %d", rep.Jobs)
	}
}

// TestFoldMatchesSimulate pins the tentpole contract: the one-shot Simulate
// is exactly the fold of the event stream.
func TestFoldMatchesSimulate(t *testing.T) {
	jobs := testJobs(15)
	cfg := testConfig()
	_, events, streamed := collect(t, cfg, jobs, 0)
	direct, err := chronos.Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Jobs != direct.Jobs || streamed.PoCD != direct.PoCD ||
		streamed.MeanMachineTime != direct.MeanMachineTime ||
		streamed.MeanCost != direct.MeanCost || streamed.Utility != direct.Utility {
		t.Fatalf("streamed report %+v != direct %+v", streamed, direct)
	}
	if len(streamed.RHistogram) != len(direct.RHistogram) {
		t.Fatalf("histograms differ: %v vs %v", streamed.RHistogram, direct.RHistogram)
	}
	for k, v := range direct.RHistogram {
		if streamed.RHistogram[k] != v {
			t.Fatalf("histograms differ at %d: %v vs %v", k, streamed.RHistogram, direct.RHistogram)
		}
	}
	// And the final stream event carries the same aggregates.
	final := events[len(events)-1]
	if final.Kind != chronos.EventReplaySummary {
		t.Fatalf("last event %q", final.Kind)
	}
	if final.Summary.MeanCost != direct.MeanCost || final.Summary.PoCD != direct.PoCD {
		t.Fatalf("summary event %+v != direct report %+v", final.Summary, direct)
	}
}

func TestObserverAbort(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	_, err := chronos.Replay(context.Background(), testConfig(), testJobs(10), chronos.ReplayOptions{
		Observer: chronos.ReplayObserverFunc(func(*chronos.ReplayEvent) error {
			n++
			if n == 3 {
				return boom
			}
			return nil
		}),
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 3 {
		t.Fatalf("observer saw %d events after abort", n)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := chronos.Replay(ctx, testConfig(), testJobs(10), chronos.ReplayOptions{
		Observer: chronos.ReplayObserverFunc(func(*chronos.ReplayEvent) error {
			n++
			if n == 2 {
				cancel() // simulate a client vanishing mid-stream
			}
			return nil
		}),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= 20 {
		t.Fatalf("replay kept emitting %d events after cancellation", n)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := chronos.Replay(ctx, testConfig(), testJobs(3), chronos.ReplayOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEmptyStream(t *testing.T) {
	if _, err := chronos.Replay(context.Background(), testConfig(), nil, chronos.ReplayOptions{}); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestOutOfOrderArrivals(t *testing.T) {
	jobs := testJobs(8)
	// Shuffle arrivals out of stream order; the engine must still replay by
	// arrival time.
	jobs[0].Arrival, jobs[5].Arrival = jobs[5].Arrival, jobs[0].Arrival
	_, events, rep := collect(t, testConfig(), jobs, 0)
	if rep.Jobs != len(jobs) {
		t.Fatalf("jobs %d", rep.Jobs)
	}
	last := math.Inf(-1)
	for _, ev := range events {
		if ev.Kind == chronos.EventJobPlanned {
			if ev.Job.Arrival < last {
				t.Fatalf("job %d planned out of arrival order", ev.Job.ID)
			}
			last = ev.Job.Arrival
		}
	}
}

func TestMaxOpenTasksAborts(t *testing.T) {
	// Every job arrives at t=0: in-flight tasks hit 5*6=30 immediately,
	// beyond the 20-task cap, so the replay must refuse to materialize
	// the stream rather than allocate it wholesale.
	jobs := make([]chronos.SimJob, 5)
	for i := range jobs {
		jobs[i] = chronos.SimJob{Tasks: 6, Deadline: 300, TMin: 10, Beta: 1.5}
	}
	_, err := chronos.Replay(context.Background(), testConfig(), jobs, chronos.ReplayOptions{
		MaxOpenTasks: 20,
	})
	if err == nil {
		t.Fatal("coincident arrivals over the open-task cap were accepted")
	}
	// The same stream spread out stays under the cap and completes.
	for i := range jobs {
		jobs[i].Arrival = float64(i) * 1000
	}
	rep, err := chronos.Replay(context.Background(), testConfig(), jobs, chronos.ReplayOptions{
		MaxOpenTasks: 20,
	})
	if err != nil {
		t.Fatalf("spread stream rejected: %v", err)
	}
	if rep.Jobs != len(jobs) {
		t.Fatalf("jobs %d", rep.Jobs)
	}
}

func TestReduceStageEvents(t *testing.T) {
	jobs := []chronos.SimJob{
		{Tasks: 6, Deadline: 400, TMin: 10, Beta: 1.5, ReduceTasks: 3},
	}
	_, events, _ := collect(t, testConfig(), jobs, 0)
	done := events[len(events)-2] // last job_completed precedes the summary
	if done.Kind != chronos.EventJobCompleted {
		t.Fatalf("penultimate event %q", done.Kind)
	}
	if done.Job.ReduceTasks != 3 || done.Job.ReduceR == nil {
		t.Fatalf("reduce stage not reflected: %+v", done.Job)
	}
}
