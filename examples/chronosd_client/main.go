// Example chronosd_client starts an in-process chronosd instance and
// drives every endpoint the way a cluster scheduler would: a single-job
// plan (twice, showing the cache hit), a shared-budget batch, a tradeoff
// curve, and a what-if simulation, finishing with the server's own
// Prometheus metrics.
//
// Run with:
//
//	go run ./examples/chronosd_client
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"chronos/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chronosd_client:", err)
		os.Exit(1)
	}
}

func run() error {
	// Boot chronosd on an ephemeral local port.
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("chronosd serving on", base)

	job := map[string]any{
		"tasks": 10, "deadline": 100, "tmin": 10, "beta": 1.5,
		"tauEst": 30, "tauKill": 60,
	}
	econ := map[string]any{"theta": 1e-4, "unitPrice": 1}

	// 1) Single-job planning — the scheduler's per-arrival hot path. The
	// second identical request is served from the sharded plan cache.
	fmt.Println("\n--- POST /v1/plan (cold, then cached) ---")
	for i := 0; i < 2; i++ {
		body, err := post(base+"/v1/plan", map[string]any{"job": job, "econ": econ})
		if err != nil {
			return err
		}
		fmt.Println(body)
	}

	// 2) Shared-budget batch: four concurrent jobs, one machine-time
	// budget; strategies picked per job, then the budget split greedily.
	fmt.Println("\n--- POST /v1/plan/batch ---")
	batch := map[string]any{
		"jobs": []map[string]any{
			{"job": job},
			{"job": job, "strategy": "clone"},
			{"job": job, "rmin": 0.5},
			{"job": job, "strategy": "s-resume"},
		},
		"budget": 5000,
		"econ":   econ,
	}
	body, err := post(base+"/v1/plan/batch", batch)
	if err != nil {
		return err
	}
	fmt.Println(body)

	// 3) The PoCD/cost frontier for Clone, r = 0..5.
	fmt.Println("\n--- GET /v1/tradeoff ---")
	body, err = get(base + "/v1/tradeoff?strategy=clone&tasks=10&deadline=100&tmin=10&beta=1.5&tauEst=30&tauKill=60&theta=1e-4&price=1&maxR=5")
	if err != nil {
		return err
	}
	fmt.Println(body)

	// 4) A bounded what-if simulation of the same job class.
	fmt.Println("\n--- POST /v1/simulate ---")
	sim := map[string]any{
		"config": map[string]any{
			"strategy": "s-resume", "seed": 7,
			"tauEst": 40, "tauKill": 80, "tauScale": 1,
		},
		"jobs": []map[string]any{
			{"tasks": 10, "deadline": 100, "tmin": 10, "beta": 1.5},
			{"tasks": 10, "deadline": 100, "tmin": 10, "beta": 1.5, "arrival": 50},
		},
	}
	body, err = post(base+"/v1/simulate", sim)
	if err != nil {
		return err
	}
	fmt.Println(body)

	// 5) The serving metrics, filtered to the cache and plan counters.
	fmt.Println("\n--- GET /metrics (excerpt) ---")
	body, err = get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "chronosd_plan") {
			fmt.Println(line)
		}
	}

	cancel()
	return <-done
}

func post(url string, payload any) (string, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	return readBody(resp)
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	return readBody(resp)
}

func readBody(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	body := strings.TrimSpace(string(raw))
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	return body, nil
}
