package optimize

import (
	"errors"
	"math"

	"chronos/internal/analysis"
)

// ErrUnreachablePoCD reports a PoCD target that no number of extra attempts
// can reach (e.g. target 1.0, or a deadline below tmin).
var ErrUnreachablePoCD = errors.New("optimize: PoCD target unreachable for any r")

// maxInverseR bounds the inverse search; PoCD(r) converges geometrically so
// realistic targets are reached within tens of attempts.
const maxInverseR = 4096

// MinCostForPoCD returns the cheapest configuration that meets a PoCD
// target: because PoCD is non-decreasing and machine time strictly
// increasing in r, the minimum-cost feasible point is the smallest r with
// PoCD(r) >= target. This is the "user budget for desired PoCD" direction of
// the tradeoff described in the paper's introduction.
func MinCostForPoCD(m analysis.Model, cfg Config, target float64) (Result, error) {
	if target <= 0 || target > 1 {
		return Result{}, ErrUnreachablePoCD
	}
	mm, pooled := acquire(m)
	if pooled {
		defer mm.release()
	}
	m = mm
	for r := 0; r <= maxInverseR; r++ {
		if m.PoCD(r) >= target {
			mt := m.MachineTime(r)
			return Result{
				Strategy:    m.Name(),
				R:           r,
				Utility:     cfg.Utility(m, r),
				PoCD:        m.PoCD(r),
				MachineTime: mt,
				Cost:        cfg.UnitPrice * mt,
			}, nil
		}
	}
	return Result{}, ErrUnreachablePoCD
}

// CheapestStrategyForPoCD evaluates all three strategies against a PoCD
// target and returns the one meeting it at the lowest cost.
func CheapestStrategyForPoCD(p analysis.Params, cfg Config, target float64) (Result, error) {
	best := Result{Cost: math.Inf(1)}
	found := false
	for _, s := range analysis.Strategies() {
		mm := acquireStrategy(s, p)
		res, err := MinCostForPoCD(mm, cfg, target)
		mm.release()
		if err != nil {
			continue
		}
		if res.Cost < best.Cost {
			best = res
			found = true
		}
	}
	if !found {
		return Result{}, ErrUnreachablePoCD
	}
	return best, nil
}

// MaxPoCDForBudget returns the configuration with the highest PoCD whose
// cost stays within budget — the other direction of the tradeoff frontier.
func MaxPoCDForBudget(m analysis.Model, cfg Config, budget float64) (Result, error) {
	mm, pooled := acquire(m)
	if pooled {
		defer mm.release()
	}
	m = mm
	best := Result{R: -1}
	for r := 0; r <= maxInverseR; r++ {
		mt := m.MachineTime(r)
		cost := cfg.UnitPrice * mt
		if cost > budget {
			break // cost is strictly increasing in r
		}
		if pocd := m.PoCD(r); best.R < 0 || pocd > best.PoCD {
			best = Result{
				Strategy:    m.Name(),
				R:           r,
				Utility:     cfg.Utility(m, r),
				PoCD:        pocd,
				MachineTime: mt,
				Cost:        cost,
			}
		}
	}
	if best.R < 0 {
		return Result{}, errors.New("optimize: budget below the cost of r=0")
	}
	return best, nil
}
