package analysis

import (
	"math"

	"chronos/internal/pareto"
)

// Restart is the analytic model of the Speculative-Restart strategy: one
// attempt per task starts at time zero; at tauEst tasks whose estimated
// completion exceeds the deadline receive r extra attempts that restart the
// work from scratch; at tauKill the best attempt is kept.
type Restart struct {
	P Params
}

var _ Model = Restart{}

// Name implements Model.
func (Restart) Name() string { return "Speculative-Restart" }

// Params implements Model.
func (s Restart) Params() Params { return s.P }

// PoCD implements Theorem 3:
//
//	R_S-Restart = [1 - tmin^(beta*(r+1)) / (D^beta * (D-tauEst)^(beta*r))]^N.
//
// The original attempt misses with probability (tmin/D)^beta; each of the r
// restarted attempts has only D-tauEst seconds left, so it misses with
// probability (tmin/(D-tauEst))^beta.
func (s Restart) PoCD(r int) float64 {
	p := s.P
	failOrig := p.Task.Survival(p.Deadline)
	failExtra := clampProb(p.Task.Survival(p.Deadline - p.TauEst))
	if p.Deadline-p.TauEst <= p.Task.TMin {
		failExtra = 1 // a restarted attempt cannot finish in time
	}
	q := failOrig * powInt(failExtra, r)
	return pocdFromTaskFailure(q, p.N)
}

// MachineTime implements Theorem 4. Conditioning on whether the original
// attempt is a straggler (T1 > D):
//
//	E(T) = E(Tj | T1<=D) P(T1<=D) + E(Tj | T1>D) P(T1>D)
//
// with E(Tj | T1<=D) the truncated Pareto mean, and for the straggler branch
//
//	E(Tj | T1>D) = tauEst + r*(tauKill - tauEst) + E(W^all | T1>D)
//
// where W^all = min(T1 - tauEst, T2, ..., Tr+1) is the post-tauEst running
// time of the surviving attempt. Lemma 3 replaces T1|T1>D by a Pareto with
// scale D, giving the closed form of Eq. 16 (with its one non-elementary
// integral evaluated by adaptive quadrature).
func (s Restart) MachineTime(r int) float64 {
	p := s.P
	pMiss := p.Task.Survival(p.Deadline)
	meanHit := p.Task.MeanBelow(p.Deadline)

	if r == 0 {
		// No extra attempts are ever launched: machine time is just the
		// attempt execution time, E(T) = N * E[T1].
		return float64(p.N) * p.Task.Mean()
	}

	straggler := p.TauEst + float64(r)*(p.TauKill-p.TauEst) + s.expectedSurvivorTime(r)
	perTask := meanHit*(1-pMiss) + straggler*pMiss
	return float64(p.N) * perTask
}

// expectedSurvivorTime returns E[min(T1-tauEst, T2, ..., Tr+1) | T1 > D]:
// the expected post-tauEst running time of the attempt that is kept.
func (s Restart) expectedSurvivorTime(r int) float64 {
	return restartSurvivor(s.P, r)
}

// restartSurvivor is the package-level form of expectedSurvivorTime, shared
// with the Evaluator kernel so both produce bit-identical values.
//
// Writing That = T1 | T1 > D ~ Pareto(D, beta) (Lemma 3):
//
//	E[W] = tmin + Int_tmin^inf P(That - tauEst >= w) * P(T >= w)^r dw
//	     = tmin + Int_tmin^{D-tauEst} (tmin/w)^(beta r) dw
//	            + Int_{D-tauEst}^inf (D/(w+tauEst))^beta (tmin/w)^(beta r) dw.
//
// The first integral is elementary (with a log limit at beta*r == 1); the
// second has the convergent series form evaluated by restartSurvivorTail.
func restartSurvivor(p Params, r int) float64 {
	tm, b, d, te := p.Task.TMin, p.Task.Beta, p.Deadline, p.TauEst
	dBar := d - te
	if dBar <= tm {
		// The survivor is effectively the (conditioned) original: the extra
		// attempts cannot even reach tmin of processing before the original
		// would have had to finish. Integrate the general form numerically.
		return Restart{P: p}.survivorTimeNumeric(r)
	}
	br := b * float64(r)

	var head float64 // Int_tmin^{D-tauEst} (tmin/w)^(beta r) dw
	if math.Abs(br-1) < 1e-9 {
		head = tm * math.Log(dBar/tm)
	} else {
		head = tm/(br-1) - math.Pow(tm, br)/((br-1)*math.Pow(dBar, br-1))
	}

	return tm + head + restartSurvivorTail(tm, b, d, te, br, dBar)
}

// tailSeriesMaxTerms caps the series below; sized so every parameter set
// whose scale factor (tmin/D)^(beta*r) has not underflowed converges within
// it (the slow-convergence corner te/D -> 1 forces tmin/D -> 0, which caps
// beta*r long before the term count grows past this).
const tailSeriesMaxTerms = 1 << 15

// restartSurvivorTail evaluates the non-elementary integral of Theorem 4,
//
//	Int_{D-tauEst}^inf (D/(w+tauEst))^beta (tmin/w)^(beta*r) dw,
//
// by the substitution v = w + tauEst and a generalized binomial expansion of
// (1 - tauEst/v)^(-beta*r), which turns it into the all-positive convergent
// series
//
//	D * (tmin/D)^k * Sum_n C(k+n-1, n) * y^n / (beta+k+n-1),
//
// with k = beta*r and y = tauEst/D < 1 - tmin/D (guaranteed by the caller's
// D - tauEst > tmin branch). Each term follows from the last by one
// multiply-add, replacing the adaptive quadrature that used to dominate the
// entire cold-path solve (~95% of a three-strategy optimization). The
// quadrature remains as the fallback for the (extreme-corner) parameter sets
// the capped series cannot settle.
func restartSurvivorTail(tm, b, d, te, br, dBar float64) float64 {
	scale := d * math.Pow(tm/d, br)
	if scale == 0 {
		// The integrand's mass underflowed; every series term carries the
		// same factor, so the tail is exactly zero at float64 precision.
		return 0
	}
	y := te / d
	sum, c := 0.0, 1.0
	bk := b + br - 1 // denominator offset: beta + k - 1 > 0 since beta > 1
	for n := 0; n < tailSeriesMaxTerms; n++ {
		fn := float64(n)
		term := c / (bk + fn)
		sum += term
		// Terms rise until the ratio y*(k+n)/(n+1) drops below 1, then decay
		// geometrically; once decreasing, the remaining tail is bounded by
		// term * rho / (1 - rho).
		rho := y * (br + fn) / (fn + 1)
		if rho < 1 && term*rho <= (1-rho)*sum*1e-16 {
			return scale * sum
		}
		c *= (br + fn) / (fn + 1) * y
	}
	return pareto.Integrate(func(w float64) float64 {
		return math.Pow(d/(w+te), b) * math.Pow(tm/w, br)
	}, dBar, math.Inf(1))
}

// survivorTimeNumeric evaluates E[W] by direct quadrature of
// P(That - tauEst >= w) * P(T >= w)^r without assuming D-tauEst >= tmin.
func (s Restart) survivorTimeNumeric(r int) float64 {
	p := s.P
	tm, b, d, te := p.Task.TMin, p.Task.Beta, p.Deadline, p.TauEst
	integrand := func(w float64) float64 {
		pOrig := 1.0
		if w > d-te {
			pOrig = math.Pow(d/(w+te), b)
		}
		pExtra := 1.0
		if w > tm {
			pExtra = math.Pow(tm/w, b*float64(r))
		}
		return pOrig * pExtra
	}
	return tm + pareto.Integrate(integrand, tm, math.Inf(1))
}

// Gamma implements the Theorem 8 (Eq. 28) threshold for Speculative-Restart.
func (s Restart) Gamma() float64 {
	p := s.P
	a := p.Task.Survival(p.Deadline)
	rho := clampProb(p.Task.Survival(p.Deadline - p.TauEst))
	return concavityThreshold(a, rho, 0, p.N)
}
