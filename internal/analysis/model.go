package analysis

// Model is the analytic interface shared by the three Chronos strategies.
// PoCD and MachineTime are the two sides of the paper's tradeoff; Gamma is
// the Theorem 8 concavity threshold consumed by the optimizer.
type Model interface {
	// Name returns the canonical strategy name ("Clone",
	// "Speculative-Restart", "Speculative-Resume").
	Name() string
	// PoCD returns the probability that the job completes before its
	// deadline when r extra attempts are used (Theorems 1, 3, 5).
	PoCD(r int) float64
	// MachineTime returns the expected total machine running time of the
	// job (the execution-cost side of the tradeoff; Theorems 2, 4, 6).
	MachineTime(r int) float64
	// Gamma returns the threshold above which PoCD — and hence the net
	// utility — is concave in r (Theorem 8).
	Gamma() float64
	// Params exposes the underlying analytic parameters.
	Params() Params
}

// Strategy enumerates the analyzable strategies.
type Strategy int

// The three Chronos strategies.
const (
	StrategyClone Strategy = iota + 1
	StrategyRestart
	StrategyResume
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyClone:
		return "Clone"
	case StrategyRestart:
		return "Speculative-Restart"
	case StrategyResume:
		return "Speculative-Resume"
	default:
		return "Unknown"
	}
}

// NewModel constructs the analytic model for a strategy.
func NewModel(s Strategy, p Params) Model {
	switch s {
	case StrategyClone:
		return Clone{P: p}
	case StrategyRestart:
		return Restart{P: p}
	case StrategyResume:
		return Resume{P: p}
	default:
		panic("analysis: unknown strategy")
	}
}

// Strategies lists the three Chronos strategies in paper order.
func Strategies() []Strategy {
	return []Strategy{StrategyClone, StrategyRestart, StrategyResume}
}

// HadoopNSPoCD returns the PoCD of default Hadoop without speculation: every
// task has a single attempt, so this is the Clone formula at r = 0.
func HadoopNSPoCD(p Params) float64 {
	return Clone{P: p}.PoCD(0)
}

// HadoopNSMachineTime returns the expected machine time without speculation:
// N times the unconditional Pareto mean.
func HadoopNSMachineTime(p Params) float64 {
	return float64(p.N) * p.Task.Mean()
}
