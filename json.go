package chronos

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ParseStrategy resolves a strategy name as it appears in the paper, the CLI
// flags, or the chronosd wire format. Matching is case-insensitive and
// tolerates the common short forms ("clone", "restart", "resume", "late").
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "clone":
		return Clone, nil
	case "speculative-restart", "s-restart", "restart":
		return SpeculativeRestart, nil
	case "speculative-resume", "s-resume", "resume":
		return SpeculativeResume, nil
	case "hadoop-ns", "hadoopns":
		return HadoopNS, nil
	case "hadoop-s", "hadoops":
		return HadoopS, nil
	case "mantri":
		return Mantri, nil
	case "late":
		return LATE, nil
	default:
		return 0, fmt.Errorf("chronos: unknown strategy %q", name)
	}
}

// MarshalJSON encodes the strategy as its canonical name, so plans read
// {"strategy":"Speculative-Resume",...} on the wire instead of a bare enum.
// Out-of-range values (including the zero Strategy — the enum is 1-based)
// are an error: their String() form "Unknown" can never be unmarshaled, so
// silently emitting it would produce JSON that no decoder round-trips.
// (Surfaced by FuzzPlanRequestJSON.)
func (s Strategy) MarshalJSON() ([]byte, error) {
	if s < Clone || s > LATE {
		return nil, fmt.Errorf("chronos: cannot marshal invalid strategy %d", int(s))
	}
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts either a strategy name (preferred) or the numeric
// enum value, so hand-written requests and round-tripped plans both decode.
func (s *Strategy) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		parsed, perr := ParseStrategy(name)
		if perr != nil {
			return perr
		}
		*s = parsed
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("chronos: strategy must be a name or integer: %w", err)
	}
	if n < int(Clone) || n > int(LATE) {
		return fmt.Errorf("chronos: strategy %d out of range", n)
	}
	*s = Strategy(n)
	return nil
}
