package analysis

// Resume is the analytic model of the Speculative-Resume strategy: stragglers
// detected at tauEst are killed, and r+1 fresh attempts continue from the
// last processed byte offset, i.e. they only process the remaining (1-phi)
// fraction of the split.
type Resume struct {
	P Params
}

var _ Model = Resume{}

// Name implements Model.
func (Resume) Name() string { return "Speculative-Resume" }

// Params implements Model.
func (s Resume) Params() Params { return s.P }

// PoCD implements Theorem 5:
//
//	R_S-Resume = [1 - (1-phi)^(beta*(r+1)) * tmin^(beta*(r+2)) /
//	                  (D^beta * (D-tauEst)^(beta*(r+1)))]^N.
//
// The original misses with probability (tmin/D)^beta; each resumed attempt
// processes (1-phi) of the work, so its remaining time is (1-phi)*T and it
// misses with probability ((1-phi)*tmin/(D-tauEst))^beta; the task misses
// only if the original was a straggler and all r+1 resumed attempts miss.
func (s Resume) PoCD(r int) float64 {
	p := s.P
	phi := p.phi()
	failOrig := p.Task.Survival(p.Deadline)
	remaining := p.Task.Scaled(1 - phi)
	failExtra := clampProb(remaining.Survival(p.Deadline - p.TauEst))
	if p.Deadline-p.TauEst <= remaining.TMin {
		failExtra = 1
	}
	q := failOrig * powInt(failExtra, r+1)
	return pocdFromTaskFailure(q, p.N)
}

// MachineTime implements Theorem 6. The non-straggler branch matches
// Theorem 4; for a straggler, the original runs until tauEst, r resumed
// attempts run from tauEst to tauKill and are killed, and the survivor is
// the minimum of r+1 i.i.d. copies of (1-phi)*T:
//
//	E(Tj | T1>D) = tauEst + r*(tauKill-tauEst)
//	             + tmin*(1-phi)^(beta*(r+1)) / (beta*(r+1)-1) + tmin.
func (s Resume) MachineTime(r int) float64 {
	p := s.P
	phi := p.phi()
	pMiss := p.Task.Survival(p.Deadline)
	meanHit := p.Task.MeanBelow(p.Deadline)

	if r < 0 {
		r = 0
	}
	survivor := resumeSurvivor(p.Task.TMin, p.Task.Beta, 1-phi, r)
	straggler := p.TauEst + float64(r)*(p.TauKill-p.TauEst) + survivor

	perTask := meanHit*(1-pMiss) + straggler*pMiss
	return float64(p.N) * perTask
}

// Gamma implements the Theorem 8 threshold for Speculative-Resume (see the
// note in gamma.go about the sign typo in the published Eq. 29).
func (s Resume) Gamma() float64 {
	p := s.P
	phi := p.phi()
	a := p.Task.Survival(p.Deadline)
	remaining := p.Task.Scaled(1 - phi)
	rho := clampProb(remaining.Survival(p.Deadline - p.TauEst))
	return concavityThreshold(a, rho, 1, p.N)
}
