package experiment

import (
	"chronos/internal/mapreduce"
	"chronos/internal/metrics"
	"chronos/internal/optimize"
	"chronos/internal/speculate"
	"chronos/internal/trace"
)

// TableConfig parameterizes the Table I / Table II sweeps. Both tables come
// from the trace-driven simulation; tauEst and tauKill are expressed as
// multiples of each job's tmin, per the paper.
type TableConfig struct {
	// Trace shapes the synthetic job stream.
	Trace trace.GeneratorConfig
	// Theta and RMin configure the measured-utility computation.
	Theta float64
	RMin  float64
	// UnitPrice is the per-machine-second VM price C (e.g. the mean of a
	// generated spot series).
	UnitPrice float64
}

// DefaultTableConfig mirrors the paper's simulation at reduced scale.
func DefaultTableConfig() TableConfig {
	return TableConfig{
		Trace:     scaledTrace(120),
		Theta:     1e-5,
		UnitPrice: 1,
	}
}

// scaledTrace returns the default generator shrunk to n jobs with modest
// task counts, keeping unit tests and benchmarks fast.
func scaledTrace(n int) trace.GeneratorConfig {
	cfg := trace.DefaultGeneratorConfig()
	cfg.Jobs = n
	cfg.MaxTasks = 100
	return cfg
}

// TableRow is one row of Table I or Table II.
type TableRow struct {
	Strategy string
	// TauEstFactor and TauKillFactor are the sweep coordinates, in units
	// of each job's tmin.
	TauEstFactor, TauKillFactor float64
	PoCD                        float64
	Cost                        float64
	Utility                     float64
}

// RunTable1 reproduces Table I: varying tauEst with tauKill - tauEst fixed
// at 0.5*tmin. Clone has only tauEst = 0; S-Restart and S-Resume sweep
// tauEst in {0.1, 0.3, 0.5}*tmin.
func RunTable1(r Runner, cfg TableConfig) ([]TableRow, error) {
	jobs, err := trace.Generate(cfg.Trace)
	if err != nil {
		return nil, err
	}
	var rows []TableRow

	// Clone: tauEst fixed at 0, tauKill = 0.5*tmin.
	row, err := runTableCell(r, cfg, jobs, "Clone", 0, 0.5)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	for _, name := range []string{"Speculative-Restart", "Speculative-Resume"} {
		for _, estFactor := range []float64{0.1, 0.3, 0.5} {
			row, err := runTableCell(r, cfg, jobs, name, estFactor, estFactor+0.5)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunTable2 reproduces Table II: varying tauKill with tauEst fixed. Clone
// sweeps tauKill in {0.4, 0.6, 0.8}*tmin at tauEst = 0; the speculative
// strategies use tauEst = 0.3*tmin.
func RunTable2(r Runner, cfg TableConfig) ([]TableRow, error) {
	jobs, err := trace.Generate(cfg.Trace)
	if err != nil {
		return nil, err
	}
	var rows []TableRow
	for _, killFactor := range []float64{0.4, 0.6, 0.8} {
		row, err := runTableCell(r, cfg, jobs, "Clone", 0, killFactor)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, name := range []string{"Speculative-Restart", "Speculative-Resume"} {
		for _, killFactor := range []float64{0.4, 0.6, 0.8} {
			row, err := runTableCell(r, cfg, jobs, name, 0.3, killFactor)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runTableCell executes one (strategy, tauEst, tauKill) sweep point over
// the whole trace.
func runTableCell(r Runner, cfg TableConfig, jobs []trace.JobRecord,
	strategy string, estFactor, killFactor float64) (TableRow, error) {

	subs := make([]submission, len(jobs))
	for i, rec := range jobs {
		spec := traceSpec(rec, cfg.UnitPrice)
		ccfg := speculate.ChronosConfig{
			TauEst:  estFactor * rec.Dist.TMin,
			TauKill: killFactor * rec.Dist.TMin,
			Opt:     optimize.Config{Theta: cfg.Theta, RMin: cfg.RMin, UnitPrice: cfg.UnitPrice},
			FixedR:  -1,
		}
		subs[i] = submission{spec: spec, strat: chronosByName(strategy, ccfg)}
	}
	stats, err := r.run(strategy, subs)
	if err != nil {
		return TableRow{}, err
	}
	ucfg := optimize.Config{Theta: cfg.Theta, RMin: cfg.RMin, UnitPrice: cfg.UnitPrice}
	return TableRow{
		Strategy:      strategy,
		TauEstFactor:  estFactor,
		TauKillFactor: killFactor,
		PoCD:          stats.PoCD(),
		Cost:          stats.MeanCost(),
		Utility:       stats.Utility(ucfg),
	}, nil
}

// traceSpec converts a trace record into a submit-ready spec.
func traceSpec(rec trace.JobRecord, price float64) mapreduce.JobSpec {
	return mapreduce.JobSpec{
		ID:         rec.ID,
		Name:       "trace",
		NumTasks:   rec.NumTasks,
		Deadline:   rec.Deadline,
		Dist:       rec.Dist,
		SplitBytes: 128 << 20,
		JVM:        mapreduce.JVMModel{Min: 1, Max: 3},
		UnitPrice:  price,
		Arrival:    rec.Arrival,
	}
}

// chronosByName builds the named Chronos strategy.
func chronosByName(name string, cfg speculate.ChronosConfig) mapreduce.Strategy {
	switch name {
	case "Clone":
		return speculate.Clone{Config: cfg}
	case "Speculative-Restart":
		return speculate.Restart{Config: cfg}
	case "Speculative-Resume":
		return speculate.Resume{Config: cfg}
	default:
		panic("experiment: unknown Chronos strategy " + name)
	}
}

// TableText renders sweep rows in the paper's Table I/II layout.
func TableText(rows []TableRow) *metrics.Table {
	t := metrics.NewTable("Strategy", "tauEst", "tauKill", "PoCD", "Cost", "Utility")
	for _, row := range rows {
		t.AddRow(row.Strategy,
			metrics.FormatFloat(row.TauEstFactor, 1)+"*tmin",
			metrics.FormatFloat(row.TauKillFactor, 1)+"*tmin",
			metrics.FormatFloat(row.PoCD, 3),
			metrics.FormatFloat(row.Cost, 1),
			metrics.FormatFloat(row.Utility, 3))
	}
	return t
}
