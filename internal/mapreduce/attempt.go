package mapreduce

import (
	"math"

	"chronos/internal/cluster"
	"chronos/internal/pareto"
	"chronos/internal/sim"
)

// AttemptState is the lifecycle of a task attempt.
type AttemptState int

// Attempt lifecycle states.
const (
	// AttemptQueued: waiting for a container.
	AttemptQueued AttemptState = iota + 1
	// AttemptRunning: holding a container and (after the JVM delay)
	// processing data.
	AttemptRunning
	// AttemptFinished: processed its full byte range.
	AttemptFinished
	// AttemptKilled: killed by a strategy or by task completion.
	AttemptKilled
	// AttemptFailed: lost its container to a node failure.
	AttemptFailed
)

// String implements fmt.Stringer.
func (s AttemptState) String() string {
	switch s {
	case AttemptQueued:
		return "queued"
	case AttemptRunning:
		return "running"
	case AttemptFinished:
		return "finished"
	case AttemptKilled:
		return "killed"
	case AttemptFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Attempt is a single execution attempt of a task. Its processing model is
// linear: after a JVM startup delay the attempt processes its byte range at
// constant rate, completing the range in Slowdown * Intrinsic * (1-StartFrac)
// seconds, where Intrinsic is the attempt's sampled full-split processing
// time.
type Attempt struct {
	// Task backlink.
	Task *Task
	// Index is the per-task attempt index (0 = original). It keys the
	// random stream so that strategies are compared on common random
	// numbers.
	Index int
	// State is the lifecycle state.
	State AttemptState
	// RequestTime is when the container was requested.
	RequestTime float64
	// LaunchTime is tlau: the container grant instant.
	LaunchTime float64
	// JVMDelay is the sampled startup delay; the first progress report
	// (tFP) arrives at LaunchTime + JVMDelay.
	JVMDelay float64
	// StartFrac is the fraction of the split already processed when the
	// attempt starts (non-zero only for Speculative-Resume attempts).
	StartFrac float64
	// Intrinsic is the sampled Pareto full-split processing time.
	Intrinsic float64
	// Slowdown is the contention factor of the attempt's container.
	Slowdown float64
	// EndTime is when the attempt finished, was killed, or failed.
	EndTime float64

	container   *cluster.Container
	finishTimer *sim.Timer
}

// JVMReady returns tFP, the instant the attempt starts processing data and
// reports progress for the first time.
func (a *Attempt) JVMReady() float64 { return a.LaunchTime + a.JVMDelay }

// FullSplitTime returns the wall-clock time the attempt would need to
// process the entire split: Slowdown * Intrinsic.
func (a *Attempt) FullSplitTime() float64 { return a.Slowdown * a.Intrinsic }

// FinishTime returns the attempt's (oracle) completion instant, assuming it
// is not killed: JVMReady + FullSplitTime * (1 - StartFrac).
func (a *Attempt) FinishTime() float64 {
	return a.JVMReady() + a.FullSplitTime()*(1-a.StartFrac)
}

// Progress returns the task-level progress score of the attempt at now: the
// fraction of the split processed, counting the StartFrac inherited from a
// killed original. Zero before the attempt starts processing.
func (a *Attempt) Progress(now float64) float64 {
	switch a.State {
	case AttemptFinished:
		return 1
	case AttemptQueued:
		return a.StartFrac
	case AttemptKilled, AttemptFailed:
		now = a.EndTime
	}
	ready := a.JVMReady()
	if now <= ready || a.FullSplitTime() <= 0 {
		// Not processing yet, or killed before ever being granted a
		// container (FullSplitTime is unsampled and zero).
		return a.StartFrac
	}
	p := a.StartFrac + (now-ready)/a.FullSplitTime()
	if p > 1 {
		p = 1
	}
	return p
}

// OwnProgress returns the attempt's progress over its own byte range
// [StartFrac, 1): the quantity a real Hadoop attempt reports.
func (a *Attempt) OwnProgress(now float64) float64 {
	p := a.Progress(now)
	if a.StartFrac >= 1 {
		return 1
	}
	own := (p - a.StartFrac) / (1 - a.StartFrac)
	if own < 0 {
		return 0
	}
	return own
}

// Running reports whether the attempt currently holds a container.
func (a *Attempt) Running() bool { return a.State == AttemptRunning }

// BytesProcessed returns the absolute number of split bytes processed by
// now, including the inherited offset.
func (a *Attempt) BytesProcessed(now float64) int64 {
	split := a.Task.Job.Spec.SplitBytes
	if a.Task.Stage == StageReduce {
		split = a.Task.Job.Spec.Reduce.SplitBytes
	}
	return int64(a.Progress(now) * float64(split))
}

// Observation is what the AM knows about an attempt's progress at a given
// time: the progress value and the instant it was reported.
type Observation struct {
	// Progress is the attempt's own-range progress as last reported.
	Progress float64
	// At is the report timestamp (== query time under continuous
	// observation).
	At float64
	// Valid is false before the first useful report.
	Valid bool
}

// Observe returns the attempt's latest progress report at time now. With
// ReportInterval unset the observation is continuous and exact; otherwise
// reports arrive every interval after JVM-ready, optionally perturbed by
// ReportNoise (deterministic per report, so repeated queries agree).
func (a *Attempt) Observe(now float64) Observation {
	var rt *Runtime
	if a.Task != nil && a.Task.Job != nil {
		rt = a.Task.Job.rt
	}
	interval := 0.0
	noise := 0.0
	if rt != nil {
		interval = rt.cfg.ReportInterval
		noise = rt.cfg.ReportNoise
	}
	if interval <= 0 {
		own := a.OwnProgress(now)
		if now <= a.JVMReady() || own <= 0 {
			return Observation{}
		}
		return Observation{Progress: own, At: now, Valid: true}
	}
	tFP := a.JVMReady()
	if now <= tFP {
		return Observation{}
	}
	// Report k covers tFP + k*interval; the first useful (non-zero) report
	// is k = 1.
	k := math.Floor((now - tFP) / interval)
	if k < 1 {
		return Observation{}
	}
	tObs := tFP + k*interval
	if end := a.endOfProcessing(); tObs > end {
		tObs = end // no reports after the attempt stopped
	}
	p := a.OwnProgress(tObs)
	if p <= 0 {
		return Observation{}
	}
	if noise > 0 && p < 1 {
		spec := a.Task.Job.Spec
		stream := pareto.NewStream(rt.cfg.Seed,
			0x0B5, uint64(spec.ID), uint64(a.Task.ID), uint64(a.Index), uint64(k))
		p *= 1 + noise*stream.NormFloat64()
		if p <= 1e-6 {
			p = 1e-6
		}
		if p > 1 {
			p = 1
		}
	}
	return Observation{Progress: p, At: tObs, Valid: true}
}

// endOfProcessing returns the last instant the attempt was producing
// progress.
func (a *Attempt) endOfProcessing() float64 {
	switch a.State {
	case AttemptFinished, AttemptKilled, AttemptFailed:
		return a.EndTime
	default:
		return math.Inf(1)
	}
}
