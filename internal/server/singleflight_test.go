package server

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chronos"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleflightCollapsesColdMisses pins the miss-collapse contract: N
// concurrent cold requests for one plan key run exactly one solve, every
// response carries the identical plan, and the other N-1 requests are
// accounted as waiters. Run under -race this also exercises the
// join/complete synchronization.
func TestSingleflightCollapsesColdMisses(t *testing.T) {
	const n = 16
	srv, ts := newTestServer(t, Config{})

	var solves atomic.Int64
	release := make(chan struct{})
	srv.solveHook = func(string) {
		solves.Add(1)
		// Park the leader so every other request must join as a waiter; the
		// cache stays cold until the test releases the gate.
		<-release
	}

	req := planRequest{Job: testJob(), Econ: testEcon()}
	plans := make([]chronos.Plan, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/plan", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status = %d, want 200", i, resp.StatusCode)
				resp.Body.Close()
				return
			}
			plans[i] = decodeBody[planResponse](t, resp).Plan
		}(i)
	}

	// All n requests miss the cold cache: one becomes the leader (blocked in
	// the hook), the rest must register as waiters before we open the gate.
	waitFor(t, "all waiters to join", func() bool {
		return srv.metrics.flightWaiters.Value() == n-1
	})
	close(release)
	wg.Wait()

	if got := solves.Load(); got != 1 {
		t.Fatalf("solves = %d, want exactly 1 for %d concurrent cold requests", got, n)
	}
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Errorf("plan %d = %+v, differs from leader's %+v", i, plans[i], plans[0])
		}
	}
	if got := srv.metrics.flightLeaders.Value(); got != 1 {
		t.Errorf("flightLeaders = %d, want 1", got)
	}
	if got := srv.metrics.flightWaiters.Value(); got != n-1 {
		t.Errorf("flightWaiters = %d, want %d", got, n-1)
	}

	// The leader populated the cache before leaving the flight table, so a
	// late arrival is a plain hit: no new leader, no new waiter.
	late := decodeBody[planResponse](t, postJSON(t, ts.URL+"/v1/plan", req))
	if !late.Cached {
		t.Error("post-flight request should be served from cache")
	}
	if got := srv.metrics.flightLeaders.Value(); got != 1 {
		t.Errorf("flightLeaders after cache hit = %d, want still 1", got)
	}
}

// TestSingleflightEvictionStorm drives K distinct plan keys with M concurrent
// requests each through a single-entry cache, so every put evicts the
// previous key. The flight table, not the LRU, is what bounds duplicate
// work: exactly K solves run.
func TestSingleflightEvictionStorm(t *testing.T) {
	const (
		keys       = 5
		perKey     = 6
		wantSolves = keys
	)
	srv, ts := newTestServer(t, Config{CacheShards: 1, CacheCapacity: 1})

	var solves atomic.Int64
	release := make(chan struct{})
	srv.solveHook = func(string) {
		solves.Add(1)
		<-release
	}

	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		job := testJob()
		job.Tasks = 10 + k // distinct quantized plan keys
		req := planRequest{Job: job, Econ: testEcon()}
		for i := 0; i < perKey; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp := postJSON(t, ts.URL+"/v1/plan", req)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d, want 200", resp.StatusCode)
				}
				resp.Body.Close()
			}()
		}
	}

	// One leader per key parks in the hook; everyone else becomes a waiter.
	waitFor(t, "leaders and waiters to assemble", func() bool {
		return solves.Load() == wantSolves &&
			srv.metrics.flightWaiters.Value() == keys*(perKey-1)
	})
	close(release)
	wg.Wait()

	if got := solves.Load(); got != wantSolves {
		t.Fatalf("solves = %d, want %d (one per distinct key)", got, wantSolves)
	}
	if got := srv.metrics.flightLeaders.Value(); got != wantSolves {
		t.Errorf("flightLeaders = %d, want %d", got, wantSolves)
	}
	if entries := srv.cache.len(); entries > 1 {
		t.Errorf("cache entries = %d, want <= 1 under a single-entry cache", entries)
	}
}
