package speculate

import (
	"math"

	"chronos/internal/mapreduce"
)

// HadoopNS is default Hadoop with speculation disabled: one attempt per
// task, no monitoring, run everything to completion.
type HadoopNS struct{}

var _ mapreduce.Strategy = HadoopNS{}

// Name implements mapreduce.Strategy.
func (HadoopNS) Name() string { return "Hadoop-NS" }

// Start implements mapreduce.Strategy.
func (HadoopNS) Start(ctl *mapreduce.Controller) {
	launchStaged(ctl)
	relaunchOnLoss(ctl)
}

// HadoopS reproduces default Hadoop speculation: once at least one task of
// the job has finished, the AM periodically compares each running task's
// estimated completion time with the mean completion time of finished tasks
// and launches one extra attempt for the task with the largest (positive)
// difference — at most one speculative attempt per task, using Hadoop's
// JVM-oblivious estimator.
type HadoopS struct {
	// CheckInterval is the monitoring period (default 5 s).
	CheckInterval float64
}

var _ mapreduce.Strategy = HadoopS{}

// Name implements mapreduce.Strategy.
func (HadoopS) Name() string { return "Hadoop-S" }

// Start implements mapreduce.Strategy.
func (s HadoopS) Start(ctl *mapreduce.Controller) {
	interval := s.CheckInterval
	if interval <= 0 {
		interval = 5
	}
	job := ctl.Job()
	launchStaged(ctl)
	relaunchOnLoss(ctl)
	killLeftoversOnTaskDone(ctl)

	var tick func()
	tick = func() {
		if job.Done {
			return
		}
		s.speculateOnce(ctl)
		ctl.After(interval, tick)
	}
	ctl.After(interval, tick)
}

// speculateOnce runs one monitoring pass.
func (s HadoopS) speculateOnce(ctl *mapreduce.Controller) {
	job := ctl.Job()
	now := ctl.Now()

	// Hadoop only speculates after at least one task has finished.
	meanDone, nDone := meanTaskDuration(job)
	if nDone == 0 {
		return
	}

	var worst *mapreduce.Task
	worstDiff := 0.0
	for _, t := range job.Tasks {
		if t.Done || len(t.Running()) == 0 {
			continue
		}
		// One speculative attempt per task at a time.
		if len(t.Attempts) > 1 {
			continue
		}
		a := t.Attempts[0]
		est := mapreduce.HadoopEstimator(a, now)
		if math.IsInf(est, 1) {
			continue
		}
		// Compare estimated remaining completion against the average
		// duration of finished tasks (both on the task-duration clock).
		diff := (est - a.LaunchTime) - meanDone
		if diff > worstDiff {
			worstDiff, worst = diff, t
		}
	}
	if worst != nil {
		ctl.Launch(worst, 0)
	}
}

// meanTaskDuration returns the mean winning-attempt duration of the job's
// finished tasks.
func meanTaskDuration(job *mapreduce.Job) (mean float64, n int) {
	var sum float64
	for _, t := range job.Tasks {
		if !t.Done {
			continue
		}
		for _, a := range t.Attempts {
			if a.State == mapreduce.AttemptFinished {
				sum += a.EndTime - a.LaunchTime
				n++
				break
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// Mantri reproduces the paper's description of Mantri: while containers are
// free and no task is waiting for one, keep launching extra attempts for
// tasks whose estimated remaining time exceeds the average task execution
// time by RemainingMargin (30 s in the paper), up to MaxExtra extra attempts
// per task; periodically keep only the best-progress attempt of each task.
type Mantri struct {
	// CheckInterval is the monitoring period (default 5 s).
	CheckInterval float64
	// RemainingMargin is the required excess of estimated remaining time
	// over the mean task time (default 30 s, per the paper).
	RemainingMargin float64
	// MaxExtra caps extra attempts per task (default 3, per the paper).
	MaxExtra int
}

var _ mapreduce.Strategy = Mantri{}

// Name implements mapreduce.Strategy.
func (Mantri) Name() string { return "Mantri" }

// Start implements mapreduce.Strategy.
func (m Mantri) Start(ctl *mapreduce.Controller) {
	if m.CheckInterval <= 0 {
		m.CheckInterval = 5
	}
	if m.RemainingMargin <= 0 {
		m.RemainingMargin = 30
	}
	if m.MaxExtra <= 0 {
		m.MaxExtra = 3
	}
	job := ctl.Job()
	launchStaged(ctl)
	relaunchOnLoss(ctl)
	killLeftoversOnTaskDone(ctl)

	var tick func()
	tick = func() {
		if job.Done {
			return
		}
		m.pass(ctl)
		ctl.After(m.CheckInterval, tick)
	}
	ctl.After(m.CheckInterval, tick)
}

// pass runs one Mantri monitoring cycle. Mantri estimates completion with
// Hadoop-style progress reports (it predates the Chronos JVM-aware
// estimator), launches an extra attempt per tick for every outlier task,
// and kills a duplicate only when some sibling is clearly — at least twice —
// faster. The aggressive launch/late kill combination is what runs up
// Mantri's cost in Figure 3(b).
func (m Mantri) pass(ctl *mapreduce.Controller) {
	job := ctl.Job()
	now := ctl.Now()
	est := mapreduce.HadoopEstimator

	// Unlike the Chronos strategies, Mantri never kills the original
	// straggler early and lets duplicates ride until the task commits
	// (killLeftoversOnTaskDone then reaps them). Pruning mid-flight on raw
	// progress score — the literal reading of "leaves one attempt with the
	// best progress running" — keeps long-running stragglers over fresh
	// fast copies in a heavy-tailed substrate and collapses PoCD, which
	// contradicts the measured Mantri profile (high PoCD at high cost), so
	// duplicates are retained. The sustained parallel duplicates are what
	// run up Mantri's cost in Figure 3(b).

	meanDur, nDone := meanTaskDuration(job)
	if nDone == 0 {
		return
	}

	// Launch-phase: only when there is idle capacity and nothing queued.
	// Mantri "keeps launching new attempts" for an outlier until more than
	// MaxExtra extra attempts are active, so a flagged task is burst-filled
	// to the cap — and refilled on later ticks if the prune above discarded
	// copies while the task still looks like an outlier.
	for _, t := range job.Tasks {
		if ctl.FreeSlots() <= 0 || !ctl.QueueEmpty() {
			return
		}
		if t.Done || len(t.Active())-1 >= m.MaxExtra {
			continue
		}
		best := t.BestRunning(now, est)
		if best == nil {
			continue
		}
		remaining := est(best, now) - now
		if remaining > meanDur+m.RemainingMargin {
			for len(t.Active())-1 < m.MaxExtra {
				ctl.Launch(t, 0)
			}
		}
	}
}
