package plankey

import (
	"testing"

	"chronos"
)

func TestKeyQuantizesNoise(t *testing.T) {
	base := chronos.JobParams{Tasks: 20, Deadline: 100, TMin: 10, Beta: 1.5, TauEst: 30, TauKill: 60}
	econ := chronos.Econ{Theta: 1e-4, UnitPrice: 1}
	noisy := base
	noisy.Deadline += 1e-9 // sub-ppm measurement noise
	if Key("", base, econ) != Key("", noisy, econ) {
		t.Fatal("sub-ppm perturbation changed the key")
	}
	far := base
	far.Deadline = 101
	if Key("", base, econ) == Key("", far, econ) {
		t.Fatal("distinct deadlines share a key")
	}
}

func TestKeySeparatesStrategies(t *testing.T) {
	p := chronos.JobParams{Tasks: 5, Deadline: 50, TMin: 5, Beta: 2, TauEst: 10, TauKill: 20}
	e := chronos.Econ{Theta: 1e-4, UnitPrice: 1}
	if Key("", p, e) == Key(chronos.Clone.String(), p, e) {
		t.Fatal("best-of-three and pinned Clone share a key")
	}
}

func TestCanonicalStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"", "", true},
		{"best", "", true},
		{" Best ", "", true},
		{"clone", chronos.Clone.String(), true},
		{"s-resume", chronos.SpeculativeResume.String(), true},
		{"warp-drive", "", false},
	}
	for _, c := range cases {
		got, ok := CanonicalStrategy(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("CanonicalStrategy(%q) = (%q, %v), want (%q, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}
