# Local targets mirror .github/workflows/ci.yml one for one, so `make ci`
# reproduces exactly what a PR is gated on.

GO ?= go

.PHONY: all fmt vet build test bench bench-json bench-check bench-diff cover ring-demo ci

all: build

fmt: ## fail if any file needs gofmt
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench: ## one-iteration benchmark smoke run (the CI bench-smoke job)
	@$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > bench.txt 2>&1; \
		rc=$$?; cat bench.txt; exit $$rc

bench-json: ## regenerate the per-PR perf trajectory JSON (BENCH_<n>.json)
	./scripts/bench-json.sh $(or $(OUT),bench.json)

bench-check: ## fail on >10% cached- or cold-plan slowdown, any alloc growth, or a replay throughput drop vs baseline
	./scripts/bench-json.sh --check $(or $(BASELINE),BENCH_10.json)

bench-diff: ## report the delta between the last two committed BENCH_*.json
	./scripts/bench-diff.sh

cover: ## -race suite + per-package coverage + the server+tenant gate
	./scripts/coverage.sh

ring-demo: ## 3-replica consistent-hash ring smoke: plan via A, cache hit via B
	./scripts/ring-demo.sh

# cover subsumes test (its single -race run is both gates), so ci does not
# execute the suite twice.
ci: fmt vet build cover bench ring-demo
