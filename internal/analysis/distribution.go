package analysis

import (
	"math"
	"sort"
)

// PoCD is a point evaluation of the job completion-time distribution:
// R(r) = P(T_job <= D). Because every strategy's closed form holds for any
// deadline value, re-evaluating the model at deadline t yields the full CDF
// F(t) = P(T_job <= t) — the distributional view behind SLA quantiles
// ("what deadline can I promise at the 99th percentile?").

// CompletionCDF returns F(t) = P(job completes by t) for the strategy model
// at the given r. The control instants tauEst/tauKill stay fixed (they are
// schedule parameters, not functions of the queried t); t values at or
// below tauKill fall back to the no-speculation bound for reactive
// strategies, and 0 below tmin.
func CompletionCDF(m Model, r int, t float64) float64 {
	p := m.Params()
	if t <= p.Task.TMin {
		return 0
	}
	q := p
	q.Deadline = t
	// Keep the schedule valid for the shifted-deadline evaluation: if the
	// queried t precedes the kill instant, the speculative machinery has
	// not produced a survivor yet; the completion probability is governed
	// by the original attempts alone (Clone's r+1 clones still count).
	if t <= q.TauKill {
		q.TauEst = 0
		q.TauKill = 0
		switch m.(type) {
		case Clone:
			return Clone{P: q}.PoCD(r)
		default:
			return Clone{P: q}.PoCD(0) // only originals are running
		}
	}
	return NewModel(strategyOf(m), q).PoCD(r)
}

// CompletionQuantile returns the smallest t with CompletionCDF >= prob, via
// bisection on the monotone CDF. Returns +Inf for prob >= 1 and tmin for
// prob <= 0.
func CompletionQuantile(m Model, r int, prob float64) float64 {
	p := m.Params()
	if prob <= 0 {
		return p.Task.TMin
	}
	if prob >= 1 {
		return math.Inf(1)
	}
	// Bracket: the CDF is 0 at tmin and approaches 1; grow the upper
	// bound geometrically.
	lo, hi := p.Task.TMin, math.Max(p.Deadline, 2*p.Task.TMin)
	for CompletionCDF(m, r, hi) < prob {
		hi *= 2
		if hi > 1e12 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if CompletionCDF(m, r, mid) >= prob {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// DeadlineForPoCD returns the tightest deadline the strategy can promise at
// the target PoCD with r extra attempts — the SLA-quoting direction.
func DeadlineForPoCD(m Model, r int, target float64) float64 {
	return CompletionQuantile(m, r, target)
}

// EmpiricalCDF builds a step CDF from samples (e.g. measured job completion
// times) for comparison against the analytic curve.
type EmpiricalCDF struct {
	sorted []float64
}

// NewEmpiricalCDF copies and sorts the samples.
func NewEmpiricalCDF(samples []float64) EmpiricalCDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return EmpiricalCDF{sorted: s}
}

// At returns the empirical P(X <= t).
func (e EmpiricalCDF) At(t float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, t)
	// SearchFloat64s finds the first index >= t; include equal values.
	for i < len(e.sorted) && e.sorted[i] == t {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample count.
func (e EmpiricalCDF) N() int { return len(e.sorted) }

// KolmogorovDistance returns the maximum absolute gap between the empirical
// CDF and a reference CDF evaluated at the sample points — the KS statistic
// used by the validation tests to compare simulation and theory.
func (e EmpiricalCDF) KolmogorovDistance(ref func(float64) float64) float64 {
	worst := 0.0
	n := float64(len(e.sorted))
	for i, x := range e.sorted {
		r := ref(x)
		// Compare against both step edges.
		if d := math.Abs(float64(i)/n - r); d > worst {
			worst = d
		}
		if d := math.Abs(float64(i+1)/n - r); d > worst {
			worst = d
		}
	}
	return worst
}
