package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"chronos"
	"chronos/internal/obs"
)

// Hot-key replication and warm handoff. Writes stay single-owner — the ring
// owner of a plan key is the one replica that solves and caches it — but
// with replication factor R > 1 the owner asynchronously pushes each entry
// it solves to the key's next R−1 ring successors over POST /v1/cache/push.
// Reads may then use any replica: forwardToOwner walks the same successor
// list when the owner's circuit is open, so a previously-hot key survives
// its owner dying without a cold recompute. The same push endpoint carries
// the warm handoff: when a membership change remaps arcs, the old view's
// holders stream the remapped entries to their new owners instead of
// letting that slice of the keyspace go cold.

// replicaPushBatch caps the entries drained into one replication push, and
// pushChunk caps the entries of one POST /v1/cache/push request (the body
// must stay well under the receiver's MaxBodyBytes).
const (
	replicaPushBatch = 256
	pushChunk        = 256
)

// replicator is the background fan-out goroutine's inbox. Pushes are
// best-effort: a full channel drops the entry (the replica would be warmed
// by the next solve or the handoff path), so the solve path never blocks on
// a slow peer.
type replicator struct {
	ch chan savedPlan
}

// replicateHot enqueues one freshly solved entry for push to its replica
// set. Called by the singleflight leader right after the cache fill; the
// owner check keeps a drifted non-owner (local fallback solves) from
// spraying copies.
func (s *Server) replicateHot(key string, plan chronos.Plan) {
	if s.replic == nil {
		return
	}
	rs := s.ringSt.Load()
	if rs == nil || rs.replication <= 1 {
		return
	}
	if owner, ok := rs.ring.Owner(key); !ok || owner != rs.self {
		return
	}
	select {
	case s.replic.ch <- savedPlan{Key: key, Plan: plan}:
	default:
	}
}

// runReplicator drains the replication inbox in batches, grouping entries by
// target replica so a burst of solves costs one push per peer, not one per
// entry. Started by New when cfg.Replication > 1; stopped by Close.
func (s *Server) runReplicator() {
	defer close(s.replicDone)
	for {
		select {
		case <-s.replicStop:
			return
		case sp := <-s.replic.ch:
			batch := append(make([]savedPlan, 0, replicaPushBatch), sp)
		drain:
			for len(batch) < replicaPushBatch {
				select {
				case next := <-s.replic.ch:
					batch = append(batch, next)
				default:
					break drain
				}
			}
			s.pushReplicas(batch)
		}
	}
}

// pushReplicas fans one batch out to each entry's successor replicas.
func (s *Server) pushReplicas(batch []savedPlan) {
	rs := s.ringSt.Load()
	if rs == nil || rs.replication <= 1 {
		return
	}
	byPeer := make(map[string][]savedPlan)
	for _, sp := range batch {
		for _, n := range rs.ring.Successors(sp.Key, rs.replication) {
			if n == rs.self {
				continue
			}
			byPeer[n] = append(byPeer[n], sp)
		}
	}
	for peer, plans := range byPeer {
		s.pushPlans(peer, plans)
	}
}

// pushPlans POSTs plans to peer's /v1/cache/push in bounded chunks,
// returning how many entries the peer acknowledged loading. Failures are
// logged and skipped: replication and handoff are warmth optimizations, a
// missed copy just means a cold solve later.
func (s *Server) pushPlans(peer string, plans []savedPlan) int {
	loaded := 0
	for len(plans) > 0 {
		chunk := plans
		if len(chunk) > pushChunk {
			chunk = chunk[:pushChunk]
		}
		plans = plans[len(chunk):]
		raw, err := json.Marshal(cacheOwnedResponse{Plans: chunk})
		if err != nil {
			s.logOp().Error("cache push encode failed", "error", err.Error())
			return loaded
		}
		req, err := http.NewRequest(http.MethodPost, peer+"/v1/cache/push", bytes.NewReader(raw))
		if err != nil {
			return loaded
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(obs.TraceHeader, obs.MintID())
		resp, err := s.forwardClient.Do(req)
		if err != nil {
			s.logOp().Warn("cache push: peer unreachable", "peer", peer, "error", err.Error())
			return loaded
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			s.logOp().Warn("cache push: peer refused", "peer", peer, "status", resp.StatusCode)
			return loaded
		}
		loaded += len(chunk)
	}
	return loaded
}

// handleCachePush ingests replicated or handed-off entries into the local
// cache. Internal fleet surface like /v1/escrow/lease: plans are a pure
// function of their key, so loading a stale or duplicate copy is harmless.
func (s *Server) handleCachePush(w http.ResponseWriter, r *http.Request) {
	var req cacheOwnedResponse
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Plans) > maxCacheWarmEntries {
		req.Plans = req.Plans[:maxCacheWarmEntries]
	}
	s.writeJSON(w, r, http.StatusOK, map[string]int{"loaded": s.cache.load(req.Plans)})
}

// handoffRemapped streams the hot entries whose ownership moved in a
// membership change (old → cur) to their new owners, capped per target at
// maxCacheWarmEntries like the pull-side warm path. Runs in the background
// from applyRing: a reshard should cost the fleet a bounded push, not a
// cold keyspace slice.
func (s *Server) handoffRemapped(old, cur *ringState) {
	start := time.Now()
	byPeer := make(map[string][]savedPlan)
	for _, e := range s.cache.dump() {
		owner, ok := cur.ring.Owner(e.Key)
		if !ok || owner == cur.self {
			continue
		}
		if oldOwner, ok := old.ring.Owner(e.Key); ok && oldOwner == owner {
			// Ownership did not move; the owner warmed this key on its own
			// write path.
			continue
		}
		if len(byPeer[owner]) < maxCacheWarmEntries {
			byPeer[owner] = append(byPeer[owner], e)
		}
	}
	total := 0
	for peer, plans := range byPeer {
		total += s.pushPlans(peer, plans)
	}
	if total > 0 {
		s.metrics.ringHandoffEntries.Add(uint64(total))
		s.logOp().Info("cache handoff", "entries", total, "targets", len(byPeer),
			"members", len(cur.ring.Nodes()))
	}
	s.metrics.stageSeconds[obs.StageHandoff].Observe(time.Since(start).Seconds())
}
