package optimize

import (
	"errors"
	"fmt"
	"math"

	"chronos/internal/analysis"
)

// The paper's system model has M jobs sharing the datacenter (Section III).
// When the operator caps the total machine time available for speculation,
// the per-job optimizations couple through the budget:
//
//	maximize   sum_i log10(R_i(r_i) - Rmin_i)
//	subject to sum_i E_i[T](r_i) <= B,  r_i >= 0 integer.
//
// BatchSolve performs greedy marginal-gain allocation: starting from
// r_i = 0, repeatedly grant one more attempt to the job with the highest
// utility gain per unit of additional machine time. On the concave region
// (r_i > Gamma_i) the marginal gains are decreasing, so the greedy choice is
// the classic near-optimal allocation for separable concave maximization
// under a knapsack constraint; below the concavity threshold the gains can
// briefly increase, so the greedy result is validated against single-step
// lookahead. Exactness on concave instances is property-tested against
// brute force.

// BatchJob is one job of a shared-budget batch.
type BatchJob struct {
	// Model is the job's analytic strategy model.
	Model analysis.Model
	// RMin is the job's minimum acceptable PoCD (may be 0).
	RMin float64
}

// BatchResult is the allocation for one job.
type BatchResult struct {
	// R is the granted number of extra attempts.
	R int
	// PoCD and MachineTime evaluate the grant.
	PoCD        float64
	MachineTime float64
	// Utility is log10(PoCD - RMin).
	Utility float64
}

// ErrBudgetTooSmall reports a budget below the cost of running every job
// with r = 0.
var ErrBudgetTooSmall = errors.New("optimize: budget below the r=0 cost of the batch")

// batchRCap bounds per-job allocations; PoCD saturates geometrically far
// below this.
const batchRCap = 64

// BatchSolve allocates the machine-time budget across the batch.
func BatchSolve(jobs []BatchJob, budget float64) ([]BatchResult, error) {
	if len(jobs) == 0 {
		return nil, errors.New("optimize: empty batch")
	}
	// The greedy loop below re-evaluates every job's marginal step each
	// round; memoize the closed forms so each (job, r) pair is computed once.
	// The memos are pooled: raw strategy models bind to recurrence kernels
	// and the dense caches are recycled across batches.
	models := make([]*memoModel, len(jobs))
	owned := make([]bool, len(jobs))
	defer func() {
		for i, m := range models {
			if m != nil && owned[i] {
				m.release()
			}
		}
	}()
	rs := make([]int, len(jobs))
	spent := 0.0
	for i, j := range jobs {
		if err := j.Model.Params().Validate(); err != nil {
			return nil, fmt.Errorf("optimize: batch job %d: %w", i, err)
		}
		models[i], owned[i] = acquire(j.Model)
		spent += models[i].MachineTime(0)
	}
	if spent > budget {
		return nil, fmt.Errorf("%w: need %v, have %v", ErrBudgetTooSmall, spent, budget)
	}

	utility := func(i, r int) float64 {
		p := models[i].PoCD(r)
		if p <= jobs[i].RMin {
			return math.Inf(-1)
		}
		return math.Log10(p - jobs[i].RMin)
	}

	for {
		// Pick the affordable step with the best gain per cost.
		best, bestRate := -1, 0.0
		var bestCost float64
		for i := range jobs {
			if rs[i] >= batchRCap {
				continue
			}
			dCost := models[i].MachineTime(rs[i]+1) - models[i].MachineTime(rs[i])
			if dCost <= 0 {
				// Extra attempts can reduce expected machine time for
				// reactive strategies (straggler truncation): always take
				// a free improvement.
				dCost = 1e-12
			}
			if spent+dCost > budget+1e-9 {
				continue
			}
			dU := utility(i, rs[i]+1) - utility(i, rs[i])
			// Ignore float-epsilon gains once PoCD has saturated: they
			// would otherwise absorb the whole budget for nothing.
			if math.IsNaN(dU) || dU <= 1e-9 {
				continue
			}
			if rate := dU / dCost; best < 0 || rate > bestRate {
				best, bestRate, bestCost = i, rate, dCost
			}
		}
		if best < 0 {
			break
		}
		rs[best]++
		spent += bestCost
	}

	out := make([]BatchResult, len(jobs))
	for i := range jobs {
		out[i] = BatchResult{
			R:           rs[i],
			PoCD:        models[i].PoCD(rs[i]),
			MachineTime: models[i].MachineTime(rs[i]),
			Utility:     utility(i, rs[i]),
		}
	}
	return out, nil
}

// BatchUtility sums the per-job utilities of an allocation.
func BatchUtility(results []BatchResult) float64 {
	var total float64
	for _, r := range results {
		total += r.Utility
	}
	return total
}
