package server

import (
	"sync"

	"chronos"
)

// planFlight collapses concurrent cold misses for one plan key into a single
// solve. Without it, a thundering herd — a hot cell evicted under pressure,
// or a fleet member booting with a cold cache — burns one full three-strategy
// solve per concurrent request for the same key. With it, the first request
// (the leader) solves and populates the cache; the others (waiters) park on
// the call's done channel and share the leader's plan and error.
//
// The leader caches the plan BEFORE leaving the flight table, so a request
// that misses the cache after the leader left finds the entry on its next
// lookup rather than re-solving; the only duplicate-solve window left is a
// cache miss that joins after the leader both cached and left, which the LRU
// then absorbs as a hit.
type planFlight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight solve.
type flightCall struct {
	done chan struct{} // closed when plan/err are ready
	plan chronos.Plan
	err  error
}

// join returns the call for key, creating it if absent. leader reports
// whether the caller owns the solve (and must complete + leave) or should
// wait on call.done.
func (f *planFlight) join(key string) (call *flightCall, leader bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		return c, false
	}
	if f.calls == nil {
		f.calls = make(map[string]*flightCall)
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	return c, true
}

// complete publishes the leader's outcome and releases the waiters. The
// caller must have cached the plan first (see the ordering note above).
func (f *planFlight) complete(key string, call *flightCall, plan chronos.Plan, err error) {
	call.plan, call.err = plan, err
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(call.done)
}
