package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"chronos/internal/obs"
	"chronos/internal/ring"
)

// Sharding headers. ForwardedFromHeader marks a request as already forwarded
// once (its value is the sender's self URL); a replica that receives it
// always computes locally, so ownership disagreements during a rolling
// membership change degrade to one extra hop, never a forwarding loop.
// ServedByHeader names the replica that actually computed (or cached) the
// response, which is how the ring demo and the fleet tests observe
// cross-replica serving.
const (
	ForwardedFromHeader = "X-Chronosd-Forwarded-From"
	ServedByHeader      = "X-Chronosd-Served-By"
)

// ringState is one immutable view of the fleet: the consistent-hash ring
// over the member URLs plus per-peer forwarding state. Membership changes
// (SetRing, typically on SIGHUP) swap in a whole new ringState; in-flight
// requests keep the view they started with.
type ringState struct {
	ring  *ring.Ring
	self  string
	peers map[string]*peerState // by member URL, excluding self
	// replication is the hot-key copy count R: the owner plus the next R−1
	// ring successors hold each cached plan, and a forward that cannot reach
	// the owner reads from a replica before falling back to cold compute.
	replication int
	// selfHdr is the precomputed ServedByHeader value assigned into hot
	// responses' header maps; immutable for the ringState's lifetime, so
	// sharing one slice across requests is safe.
	selfHdr []string
}

// peerState carries what this replica knows about one peer: its base URL and
// the circuit breaker guarding forwards to it. It survives membership
// reloads for peers that remain in the fleet, so a reload does not reset a
// deliberately opened circuit.
type peerState struct {
	base    string
	breaker breaker
}

// breaker is a consecutive-failure circuit breaker with a half-open probe.
// After threshold consecutive forward failures the circuit opens for
// cooldown, during which forwards to the peer are skipped in favor of local
// computation — keeping a dead replica from adding a connect-timeout to
// every request it used to own. When the cooldown expires, exactly ONE
// request wins the CAS in allow and becomes the half-open probe; everyone
// else keeps falling back locally until that probe's verdict lands. A
// successful probe closes the circuit, a failed one re-opens it for a fresh
// cooldown — so a still-dead peer costs at most one connect-timeout per
// cooldown window, not threshold of them.
//
// The whole state machine lives in one atomic word (gate) so a trip is a
// single CAS: there is no window where the state says open but the deadline
// is stale, and two goroutines can never both observe the threshold
// crossing (the old Add-then-Store counter reset allowed exactly that).
type breaker struct {
	threshold int
	cooldown  time.Duration
	// failures counts consecutive failures while the circuit is closed,
	// advanced by CAS so a concurrent failure is never clobbered.
	failures atomic.Int32
	// gate encodes the state: gateClosed, gateProbing (a half-open probe is
	// in flight), or a positive open-until deadline in unix nanos.
	gate atomic.Int64
}

const (
	gateClosed  int64 = 0
	gateProbing int64 = -1
	// gateExpired is an already-elapsed open deadline: the state an aborted
	// probe restores, so the next request immediately becomes the new probe.
	gateExpired int64 = 1
)

// allow reports whether a forward may be attempted now. Winning the
// open→probing CAS claims the single half-open probe slot; the caller MUST
// settle it by calling fail, success, or abort.
func (b *breaker) allow() bool {
	g := b.gate.Load()
	switch {
	case g == gateClosed:
		return true
	case g == gateProbing:
		return false
	default:
		if time.Now().UnixNano() < g {
			return false
		}
		return b.gate.CompareAndSwap(g, gateProbing)
	}
}

// fail records one forward failure: a failed half-open probe re-opens the
// circuit immediately; a closed-state failure advances the consecutive
// counter and trips at the threshold. A failure while the circuit is
// already open (an in-flight straggler) only bumps the counter — it never
// extends the open window, so a trickle of stragglers cannot postpone the
// next probe forever.
func (b *breaker) fail() {
	if b.gate.CompareAndSwap(gateProbing, time.Now().Add(b.cooldown).UnixNano()) {
		b.failures.Store(0)
		return
	}
	for {
		n := b.failures.Load()
		if !b.failures.CompareAndSwap(n, n+1) {
			continue
		}
		if int(n+1) >= b.threshold && b.gate.CompareAndSwap(gateClosed, time.Now().Add(b.cooldown).UnixNano()) {
			b.failures.Store(0)
		}
		return
	}
}

// success closes the circuit (and settles a half-open probe as passed).
func (b *breaker) success() {
	b.failures.Store(0)
	b.gate.Store(gateClosed)
}

// abort releases a claimed half-open probe slot without judging the peer
// (the client went away mid-probe, so the attempt proves nothing). The gate
// is restored to an already-expired deadline: the next request becomes the
// new probe instead of the slot leaking forever.
func (b *breaker) abort() {
	b.gate.CompareAndSwap(gateProbing, gateExpired)
}

// SetRing swaps the operator-configured fleet membership, rebuilding the
// consistent-hash ring. A zero Membership disables sharding (every key is
// computed locally). chronosd calls this on SIGHUP alongside SetTenants, so
// one signal reloads both tenant budgets and ring membership.
//
// The configured membership is the operator's intent; the ring actually
// served from is the EFFECTIVE membership — configured minus the members
// the health monitor currently suspects dead (self is never suspect). A
// reload therefore composes with health state instead of resurrecting a
// replica the monitor just evicted.
func (s *Server) SetRing(m ring.Membership) error {
	if !m.Enabled() {
		s.health.mu.Lock()
		s.health.configured = ring.Membership{}
		s.health.suspects, s.health.fails, s.health.oks = nil, nil, nil
		s.health.mu.Unlock()
		s.applyRing("", nil)
		return nil
	}
	if err := m.Validate(); err != nil {
		return err
	}
	self := ring.NormalizeURL(m.Self)
	s.health.mu.Lock()
	s.health.configured = m
	s.health.pruneLocked(m.Members())
	members := s.health.effectiveLocked(self)
	s.health.mu.Unlock()
	s.applyRing(self, members)
	return nil
}

// applyRing swaps in a new effective ring over members (nil disables
// sharding). Circuit-breaker state carries over for peers present in both
// the old and new view; an evicted peer's breaker is dropped, so a
// re-admitted member starts with a closed circuit. When the member set
// actually changed, the remapped slice of the hot cache is streamed to its
// new owners in the background (warm handoff).
func (s *Server) applyRing(self string, members []string) {
	if len(members) == 0 {
		s.ringSt.Store(nil)
		return
	}
	r := ring.New(members, s.cfg.RingVirtualNodes)
	old := s.ringSt.Load()
	peers := make(map[string]*peerState, len(members))
	for _, n := range r.Nodes() {
		if n == self {
			continue
		}
		if old != nil {
			if p, ok := old.peers[n]; ok {
				peers[n] = p
				continue
			}
		}
		peers[n] = &peerState{base: n, breaker: breaker{
			threshold: s.cfg.BreakerThreshold,
			cooldown:  s.cfg.BreakerCooldown,
		}}
	}
	cur := &ringState{
		ring:        r,
		self:        self,
		peers:       peers,
		replication: s.cfg.Replication,
		selfHdr:     []string{self},
	}
	s.ringSt.Store(cur)
	if old != nil && old.self == self && !sameMembers(old.ring.Nodes(), r.Nodes()) {
		go s.handoffRemapped(old, cur)
	}
}

// sameMembers compares two sorted member lists.
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RingMembers returns the current membership view (empty when sharding is
// disabled). Exposed for tests and embedders.
func (s *Server) RingMembers() (self string, members []string) {
	rs := s.ringSt.Load()
	if rs == nil {
		return "", nil
	}
	return rs.self, rs.ring.Nodes()
}

// forwardToOwner implements the sharded serving path for one plan-keyed
// request. It returns true when the response has been fully written (the
// request was proxied to the owning replica or a live replica of the key);
// false means the caller must compute locally — either because this replica
// owns the key (or holds a replica copy of it), sharding is off, the
// request already took its one forwarding hop, or no replica of the key is
// reachable and we fall back to local computation rather than failing the
// request.
//
// With replication factor R > 1 the key's targets are the owner followed by
// the next R−1 ring successors — the replicas the owner pushes hot entries
// to — tried in order, skipping any whose circuit is open. A response served
// by a non-owner counts as a replica read: the warm copy answered while the
// owner was down, which is the entire point of the replication factor.
//
// payload is the decoded request, re-marshaled for the forward so that
// fields this replica resolved (e.g. tenant econ defaults) travel with it
// and the owner computes the exact cache key the routing decision used.
func (s *Server) forwardToOwner(w http.ResponseWriter, r *http.Request, path string, key []byte, payload any) bool {
	rs := s.ringSt.Load()
	if rs == nil {
		return false
	}
	// A replica that computes locally stamps itself; the proxy branch below
	// overwrites this with the owner's stamp when the forward succeeds. The
	// shared immutable slice goes straight into the header map (canonical
	// key) so the hot path's stamp does not allocate.
	w.Header()[ServedByHeader] = rs.selfHdr
	if r.Header.Get(ForwardedFromHeader) != "" {
		// Single-hop guard: this request was already forwarded once.
		s.metrics.ringReceivedForwards.Inc()
		return false
	}
	owner, ok := rs.ring.OwnerBytes(key)
	if !ok || owner == rs.self {
		return false
	}
	var body []byte // marshaled before the first actual forward attempt
	for i, target := range rs.targetsFor(key, owner) {
		if target == rs.self {
			// This replica holds (or should hold) a replica copy of the key:
			// serve it from the local cache instead of forwarding onward. A
			// warm local copy is a replica read; a cold one just means the
			// local fallback recomputes.
			if i > 0 && s.cache.peekBytes(key) {
				s.metrics.ringReplicaReads.Inc()
			}
			return false
		}
		peer := rs.peers[target]
		if peer == nil {
			// Membership raced a reload between Owner and the peer lookup;
			// serving locally is always safe.
			return false
		}
		if !peer.breaker.allow() {
			continue
		}
		if body == nil {
			var err error
			if body, err = json.Marshal(payload); err != nil {
				peer.breaker.abort()
				return false
			}
		}
		switch s.forwardTo(w, r, rs, peer, path, body) {
		case fwdServed:
			if i > 0 {
				s.metrics.ringReplicaReads.Inc()
			}
			return true
		case fwdClientGone:
			// The client went away mid-forward. The peer's health is not in
			// question — its breaker was released, not charged — and a local
			// fallback would compute a plan nobody reads; drop the request.
			return true
		case fwdServeLocal:
			s.metrics.ringLocalFallbacks.Inc()
			return false
		case fwdPeerDown:
			// Breaker charged inside forwardTo; try the next replica.
		}
	}
	s.metrics.ringLocalFallbacks.Inc()
	return false
}

// targetsFor returns the replicas to try for key, owner first. With R == 1
// that is just the owner (no slice walk, no allocation beyond the literal);
// with R > 1 the ring's successor list already leads with the owner.
func (rs *ringState) targetsFor(key []byte, owner string) []string {
	if rs.replication <= 1 {
		return []string{owner}
	}
	return rs.ring.SuccessorsBytes(key, rs.replication)
}

// forwardOutcome is one forward attempt's verdict.
type forwardOutcome int

const (
	// fwdServed: the peer's response was relayed; the request is done.
	fwdServed forwardOutcome = iota
	// fwdPeerDown: the peer failed (unreachable, 5xx, or bad body); its
	// breaker has been charged and the caller may try the next replica.
	fwdPeerDown
	// fwdServeLocal: the peer is healthy but declined (404 ownership
	// drift); compute locally, trying further replicas would be wrong.
	fwdServeLocal
	// fwdClientGone: our client disconnected mid-forward; drop the request.
	fwdClientGone
)

// forwardTo performs one forward attempt against peer and settles its
// breaker: success/404 close it, failure charges it, a client disconnect
// releases a claimed half-open probe without judging the peer.
func (s *Server) forwardTo(w http.ResponseWriter, r *http.Request, rs *ringState, peer *peerState, path string, body []byte) forwardOutcome {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		peer.base+path, bytes.NewReader(body))
	if err != nil {
		peer.breaker.abort()
		return fwdServeLocal
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedFromHeader, rs.self)
	// The trace ID travels with the forward so the peer's span record,
	// logs, and response carry the same ID this replica minted (or
	// honored); each attempt — request out through body read — is one
	// StageForward span on this side.
	tr := obs.FromContext(r.Context())
	if tr != nil {
		req.Header.Set(obs.TraceHeader, tr.ID)
	}
	fwdStart := time.Now()
	defer func() { tr.Observe(obs.StageForward, time.Since(fwdStart)) }()
	resp, err := s.forwardClient.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			peer.breaker.abort()
			return fwdClientGone
		}
		peer.breaker.fail()
		s.metrics.ringPeerError(peer.base)
		return fwdPeerDown
	}
	defer resp.Body.Close()
	if resp.StatusCode >= http.StatusInternalServerError {
		// The peer answered but is unhealthy; treat like unreachable and
		// let the caller degrade rather than relaying its failure.
		_, _ = io.Copy(io.Discard, resp.Body)
		peer.breaker.fail()
		s.metrics.ringPeerError(peer.base)
		return fwdPeerDown
	}
	if resp.StatusCode == http.StatusNotFound {
		// Config drift during a rolling rollout: this replica resolved the
		// request (tenant lookup included) before forwarding, so a peer 404
		// means its view disagrees — serve locally instead of failing a
		// request we know how to answer. The peer is demonstrably alive, so
		// this settles a half-open probe as passed and resets the
		// consecutive-failure count.
		_, _ = io.Copy(io.Discard, resp.Body)
		peer.breaker.success()
		return fwdServeLocal
	}
	// Buffer the full answer before committing the status line: a peer
	// that stalls mid-body inside the forward timeout must degrade to local
	// fallback, not to a 200 with a truncated JSON body the client cannot
	// decode. Plan and admit answers are small; the cap only guards a
	// misbehaving peer.
	relayed, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes+1))
	if err != nil || len(relayed) > maxRelayBytes {
		if r.Context().Err() != nil {
			peer.breaker.abort()
			return fwdClientGone
		}
		peer.breaker.fail()
		s.metrics.ringPeerError(peer.base)
		return fwdPeerDown
	}
	peer.breaker.success()
	s.metrics.ringForwarded(peer.base)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if sb := resp.Header.Get(ServedByHeader); sb != "" {
		w.Header().Set(ServedByHeader, sb)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(relayed)
	return fwdServed
}

// maxRelayBytes caps a buffered forwarded response. Far above any real plan
// or admit answer; a peer streaming more than this is broken.
const maxRelayBytes = 1 << 20
