// Package metrics aggregates simulation outcomes into the three quantities
// the paper's evaluation reports — PoCD, cost, and net utility — plus the
// optimal-r histograms of Figure 5, and renders aligned text tables.
package metrics

import (
	"math"

	"chronos/internal/mapreduce"
	"chronos/internal/optimize"
)

// StrategyStats accumulates per-job outcomes for one strategy.
type StrategyStats struct {
	// Name is the strategy label.
	Name string

	jobs        int
	met         int
	machineTime float64
	cost        float64
	rHist       *Histogram
	finished    int
}

// NewStrategyStats returns an empty accumulator.
func NewStrategyStats(name string) *StrategyStats {
	return &StrategyStats{Name: name, rHist: NewHistogram()}
}

// Observe folds one completed job into the stats.
func (s *StrategyStats) Observe(job *mapreduce.Job) {
	s.jobs++
	if job.Done {
		s.finished++
	}
	if job.MetDeadline() {
		s.met++
	}
	s.machineTime += job.MachineTime
	s.cost += job.Cost()
	if job.ChosenR >= 0 {
		s.rHist.Add(job.ChosenR)
	}
}

// Jobs returns the number of observed jobs.
func (s *StrategyStats) Jobs() int { return s.jobs }

// Finished returns the number of jobs that ran to completion.
func (s *StrategyStats) Finished() int { return s.finished }

// PoCD returns the fraction of jobs that met their deadline.
func (s *StrategyStats) PoCD() float64 {
	if s.jobs == 0 {
		return 0
	}
	return float64(s.met) / float64(s.jobs)
}

// MeanMachineTime returns the mean per-job machine running time.
func (s *StrategyStats) MeanMachineTime() float64 {
	if s.jobs == 0 {
		return 0
	}
	return s.machineTime / float64(s.jobs)
}

// MeanCost returns the mean per-job price-weighted cost — the "Cost" axis of
// the paper's figures.
func (s *StrategyStats) MeanCost() float64 {
	if s.jobs == 0 {
		return 0
	}
	return s.cost / float64(s.jobs)
}

// Utility computes the measured net utility under cfg, as the evaluation
// does: log10(PoCD - RMin) - theta * mean cost.
func (s *StrategyStats) Utility(cfg optimize.Config) float64 {
	return cfg.UtilityFromMeasured(s.PoCD(), s.MeanCost())
}

// RHistogram returns the distribution of the optimizer-chosen r values
// (Figure 5).
func (s *StrategyStats) RHistogram() *Histogram { return s.rHist }

// Summary is a snapshot row of the stats.
type Summary struct {
	Strategy string
	Jobs     int
	PoCD     float64
	Cost     float64
	Utility  float64
}

// Summarize snapshots the accumulator under cfg.
func (s *StrategyStats) Summarize(cfg optimize.Config) Summary {
	return Summary{
		Strategy: s.Name,
		Jobs:     s.jobs,
		PoCD:     s.PoCD(),
		Cost:     s.MeanCost(),
		Utility:  s.Utility(cfg),
	}
}

// Welford computes running mean/variance without storing samples; used for
// the per-experiment dispersion numbers in EXPERIMENTS.md.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds in one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
