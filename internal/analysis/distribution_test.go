package analysis

import (
	"math"
	"testing"

	"chronos/internal/pareto"
)

func TestCompletionCDFMatchesPoCDAtDeadline(t *testing.T) {
	p := testParams()
	for _, s := range Strategies() {
		m := NewModel(s, p)
		for r := 0; r <= 3; r++ {
			if got, want := CompletionCDF(m, r, p.Deadline), m.PoCD(r); math.Abs(got-want) > 1e-12 {
				t.Errorf("%v r=%d: CDF(D) = %v, PoCD = %v", s, r, got, want)
			}
		}
	}
}

func TestCompletionCDFMonotone(t *testing.T) {
	p := testParams()
	for _, s := range Strategies() {
		m := NewModel(s, p)
		prev := -1.0
		for _, x := range []float64{5, 10, 20, 40, 61, 80, 100, 200, 1000, 1e6} {
			got := CompletionCDF(m, 2, x)
			if got < prev-1e-12 {
				t.Errorf("%v: CDF not monotone at t=%v: %v < %v", s, x, got, prev)
			}
			if got < 0 || got > 1 {
				t.Errorf("%v: CDF(%v) = %v", s, x, got)
			}
			prev = got
		}
	}
}

func TestCompletionCDFEdges(t *testing.T) {
	m := Clone{P: testParams()}
	if got := CompletionCDF(m, 1, 5); got != 0 {
		t.Errorf("CDF below tmin = %v, want 0", got)
	}
	if got := CompletionCDF(m, 1, 1e9); got < 0.999999 {
		t.Errorf("CDF at huge t = %v, want ~1", got)
	}
}

func TestCompletionQuantileInvertsCDF(t *testing.T) {
	// The modeled CDF jumps at tauKill for the reactive strategies (the
	// speculative survivor appears there), so the quantile is the smallest
	// t with CDF(t) >= prob — it need not hit prob exactly.
	p := testParams()
	for _, s := range Strategies() {
		m := NewModel(s, p)
		for _, prob := range []float64{0.5, 0.9, 0.99} {
			q := CompletionQuantile(m, 2, prob)
			if got := CompletionCDF(m, 2, q); got < prob-1e-6 {
				t.Errorf("%v: CDF(quantile(%v)) = %v below target", s, prob, got)
			}
			// Minimality: just below q the CDF is still under the target.
			if below := CompletionCDF(m, 2, q*(1-1e-3)); below > prob+1e-6 {
				t.Errorf("%v: CDF just below quantile(%v) = %v already meets target",
					s, prob, below)
			}
		}
	}
}

func TestCompletionQuantileEdges(t *testing.T) {
	m := Resume{P: testParams()}
	if got := CompletionQuantile(m, 1, 0); got != m.P.Task.TMin {
		t.Errorf("quantile(0) = %v, want tmin", got)
	}
	if got := CompletionQuantile(m, 1, 1); !math.IsInf(got, 1) {
		t.Errorf("quantile(1) = %v, want +Inf", got)
	}
}

func TestDeadlineForPoCDIsSufficient(t *testing.T) {
	p := testParams()
	m := NewModel(StrategyResume, p)
	d := DeadlineForPoCD(m, 2, 0.999)
	// Promise that deadline: the PoCD at it must reach the target.
	if got := CompletionCDF(m, 2, d); got < 0.999-1e-6 {
		t.Errorf("promised deadline %v only reaches PoCD %v", d, got)
	}
	// More extra attempts tighten the quotable deadline.
	if d4 := DeadlineForPoCD(m, 4, 0.999); d4 > d+1e-9 {
		t.Errorf("deadline with r=4 (%v) looser than with r=2 (%v)", d4, d)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	e := NewEmpiricalCDF([]float64{1, 2, 2, 3})
	tests := []struct {
		t    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	var empty EmpiricalCDF
	if empty.At(5) != 0 {
		t.Error("empty CDF not 0")
	}
}

// TestAnalyticCDFAgainstMonteCarlo draws full job completion times from the
// Clone model and checks the analytic CDF with a KS-style bound.
func TestAnalyticCDFAgainstMonteCarlo(t *testing.T) {
	p := testParams()
	m := Clone{P: p}
	const r = 1
	rng := pareto.NewStream(77)
	const jobs = 20000
	samples := make([]float64, jobs)
	for j := range samples {
		jobMax := 0.0
		for task := 0; task < p.N; task++ {
			w := math.Inf(1)
			for k := 0; k <= r; k++ {
				if x := p.Task.Sample(rng); x < w {
					w = x
				}
			}
			if w > jobMax {
				jobMax = w
			}
		}
		samples[j] = jobMax
	}
	e := NewEmpiricalCDF(samples)
	// Evaluate only beyond tauKill, where the full closed form applies.
	dist := e.KolmogorovDistance(func(x float64) float64 {
		if x <= p.TauKill {
			return e.At(x) // skip the region the analytic CDF approximates
		}
		return CompletionCDF(m, r, x)
	})
	if dist > 0.02 {
		t.Errorf("KS distance between analytic and simulated CDF = %v", dist)
	}
}
