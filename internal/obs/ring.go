package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// TraceRing keeps the last capacity finished request snapshots. Inserts are
// O(1) under one mutex (once per request, after the response is written, so
// the lock is off the client-visible latency path); readers get the slowest
// of the retained window, which is what an operator debugging a latency
// regression wants: "what were the worst recent requests and where did they
// spend their time".
type TraceRing struct {
	mu   sync.Mutex
	buf  []*Snapshot
	next int
	n    uint64 // lifetime inserts
}

// DefaultTraceRingSize is the retained-snapshot window when the serving
// config leaves it zero.
const DefaultTraceRingSize = 256

// NewTraceRing builds a ring retaining up to capacity snapshots (<= 0 takes
// DefaultTraceRingSize).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceRingSize
	}
	return &TraceRing{buf: make([]*Snapshot, capacity)}
}

// Add inserts one finished snapshot, evicting the oldest when full. Nil
// receivers and nil snapshots are ignored.
func (r *TraceRing) Add(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.n++
	r.mu.Unlock()
}

// Slowest returns up to n retained snapshots, slowest first (n <= 0 returns
// all retained). The returned slice is a fresh copy; snapshots themselves
// are immutable.
func (r *TraceRing) Slowest(n int) []*Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*Snapshot, 0, len(r.buf))
	for _, s := range r.buf {
		if s != nil {
			out = append(out, s)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Find returns the most recent retained snapshot with the given trace ID, or
// nil. A forwarded request leaves one snapshot per replica it touched; Find
// on each replica's ring is how tests and the ring demo assert cross-replica
// propagation.
func (r *TraceRing) Find(id string) *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Walk backwards from the most recent insert.
	for i := 0; i < len(r.buf); i++ {
		s := r.buf[(r.next-1-i+2*len(r.buf))%len(r.buf)]
		if s != nil && s.ID == id {
			return s
		}
	}
	return nil
}

// Len returns the number of retained snapshots.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n >= uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(r.n)
}

// stageJSON is the wire form of one stage's accumulated span.
type stageJSON struct {
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// snapshotJSON is the /debug/traces wire form of a Snapshot.
type snapshotJSON struct {
	TraceID    string               `json:"traceId"`
	Route      string               `json:"route"`
	Status     int                  `json:"status"`
	Start      time.Time            `json:"start"`
	Seconds    float64              `json:"seconds"`
	Tenant     string               `json:"tenant,omitempty"`
	Cached     *bool                `json:"cached,omitempty"`
	ServedBy   string               `json:"servedBy,omitempty"`
	ForwardHop bool                 `json:"forwardHop,omitempty"`
	Stages     map[string]stageJSON `json:"stages,omitempty"`
}

// MarshalJSON renders the snapshot with stages as a keyed object, omitting
// stages that never fired. The map is built here, at exposition time, so the
// per-request Finish path stays a single flat allocation.
func (sn *Snapshot) MarshalJSON() ([]byte, error) {
	out := snapshotJSON{
		TraceID:    sn.ID,
		Route:      sn.Route,
		Status:     sn.Status,
		Start:      sn.Start,
		Seconds:    sn.Seconds,
		Tenant:     sn.Tenant,
		Cached:     sn.Cached,
		ServedBy:   sn.ServedBy,
		ForwardHop: sn.ForwardHop,
	}
	for s := Stage(0); s < NumStages; s++ {
		if sn.StageCounts[s] == 0 {
			continue
		}
		if out.Stages == nil {
			out.Stages = make(map[string]stageJSON, int(NumStages))
		}
		out.Stages[s.String()] = stageJSON{
			Seconds: sn.StageSeconds(s),
			Count:   sn.StageCounts[s],
		}
	}
	return json.Marshal(out)
}
