package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"chronos/internal/obs"
	"chronos/internal/ring"
	"chronos/internal/tenant"
)

// Server is one chronosd instance: HTTP handlers over the chronos planning
// core, a sharded plan cache, a bounded optimization worker pool, a
// hot-swappable tenant registry, consistent-hash plan-key sharding across a
// replica fleet, and Prometheus-style metrics.
type Server struct {
	cfg     Config
	cache   *planCache
	pool    *workerPool
	metrics *serverMetrics
	mux     *http.ServeMux
	tenants atomic.Pointer[tenant.Registry]
	// ringSt is the current fleet-membership view; nil disables sharding.
	// Swapped atomically by SetRing (SIGHUP reload path).
	ringSt atomic.Pointer[ringState]
	// forwardClient issues cross-replica forwards; its timeout bounds how
	// long a request waits on a peer before local fallback.
	forwardClient *http.Client
	// replaySem bounds concurrently running /v1/replay streams; each
	// running replay holds one slot.
	replaySem chan struct{}
	// traces retains finished request snapshots for GET /debug/traces;
	// reqLog emits the sampled structured request lines. Both tolerate
	// being unused (reqLog is nil without a configured logger).
	traces *obs.TraceRing
	reqLog *obs.Logger
	// escrow is the fleet-exact tenant accounting subsystem; nil when
	// cfg.Escrow is off (the legacy per-replica approximation).
	escrow *escrowManager
	// flight collapses concurrent cold-miss solves per plan key: one leader
	// runs the optimizer, waiters share its result (see singleflight.go).
	flight planFlight
	// health is the heartbeat monitor's membership view (health.go): the
	// configured ring plus the members currently suspected dead. The
	// effective ring in ringSt is derived from it.
	health healthState
	// healthStop/healthDone bracket the heartbeat goroutine's lifetime
	// (nil when cfg.HeartbeatInterval is 0).
	healthStop chan struct{}
	healthDone chan struct{}
	// replic is the hot-key replication inbox (replicate.go); nil when
	// cfg.Replication <= 1. replicStop/replicDone bracket its goroutine.
	replic     *replicator
	replicStop chan struct{}
	replicDone chan struct{}
	// solveHook, when set (tests), runs in the singleflight leader just
	// before the solve — the hook point for counting and gating real solves.
	solveHook func(key string)
	closeOnce sync.Once
}

// discardLogger backs logOp when no logger is configured, so subsystem code
// logs unconditionally without nil checks.
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 128}))

// logOp returns the operational (non-request) structured log target; never
// nil.
func (s *Server) logOp() *slog.Logger {
	if l := s.reqLog.Op(); l != nil {
		return l
	}
	return discardLogger
}

// New builds a server from cfg (zero fields take defaults). Invalid ring
// membership in cfg (peers without a self URL) panics: it is a startup
// misconfiguration that would otherwise silently disable sharding —
// cmd/chronosd validates flags first, so operators see a flag error, not
// this panic.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:           cfg,
		cache:         newPlanCache(cfg.CacheShards, cfg.CacheCapacity),
		pool:          newWorkerPool(cfg.Workers),
		metrics:       newServerMetrics(),
		forwardClient: &http.Client{Timeout: cfg.ForwardTimeout},
		replaySem:     make(chan struct{}, cfg.MaxActiveReplays),
		traces:        obs.NewTraceRing(cfg.TraceRingSize),
		reqLog:        obs.FromSlog(cfg.Logger, cfg.LogSample),
	}
	if cfg.Tenants != nil {
		s.tenants.Store(cfg.Tenants)
	}
	if err := s.SetRing(ring.Membership{Self: cfg.Self, Peers: cfg.Peers}); err != nil {
		panic(fmt.Sprintf("server.New: %v", err))
	}
	if cfg.Escrow {
		led := tenant.NewEscrowLedger(cfg.Tenants, cfg.Store, cfg.EscrowLeaseTTL)
		if cfg.Store != nil {
			// Fold the recovered snapshot+WAL state into the live pools; any
			// lease whose holder never came back is conservatively reclaimed.
			for _, rec := range led.Restore(cfg.Store.State()) {
				s.logOp().Warn("escrow lease reclaimed at boot",
					"tenant", rec.Tenant, "holder", rec.Holder, "escrow", rec.Escrow)
			}
			// Anchor snapshot: WAL records are deltas against the latest
			// snapshot, so the restored absolute levels must be compacted
			// before the first post-boot append.
			if err := led.Compact(); err != nil {
				s.logOp().Error("escrow anchor snapshot failed", "error", err.Error())
			}
		}
		s.escrow = newEscrowManager(s, led)
		go s.escrow.run()
	}
	s.loadCache()
	if cfg.Replication > 1 {
		s.replic = &replicator{ch: make(chan savedPlan, 4*replicaPushBatch)}
		s.replicStop = make(chan struct{})
		s.replicDone = make(chan struct{})
		go s.runReplicator()
	}
	if cfg.HeartbeatInterval > 0 {
		s.healthStop = make(chan struct{})
		s.healthDone = make(chan struct{})
		go s.runHealthMonitor()
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/plan", "/v1/plan", s.handlePlan)
	s.route("POST /v1/plan/batch", "/v1/plan/batch", s.handleBatch)
	s.route("POST /v1/admit", "/v1/admit", s.handleAdmit)
	s.route("POST /v1/admit/batch", "/v1/admit/batch", s.handleAdmitBatch)
	s.route("GET /v1/tradeoff", "/v1/tradeoff", s.handleTradeoff)
	s.route("POST /v1/simulate", "/v1/simulate", s.handleSimulate)
	s.route("POST /v1/replay", "/v1/replay", s.handleReplay)
	s.route("POST "+escrowPath, escrowPath, s.handleEscrowLease)
	s.route("GET /v1/cache/owned", "/v1/cache/owned", s.handleCacheOwned)
	s.route("POST /v1/cache/push", "/v1/cache/push", s.handleCachePush)
	s.route("GET /healthz", "/healthz", s.handleHealthz)
	s.route("GET /metrics", "/metrics", s.handleMetrics)
	// The slow-trace buffer is also reachable on the serving listener (it is
	// a cheap JSON GET); the pprof surface is only on DebugHandler, so
	// profiling never shares the serving listener. Registered outside
	// route(): inspecting traces should not itself mint traces.
	s.mux.Handle("GET /debug/traces", obs.TracesHandler(s.traces))
	return s
}

// DebugHandler returns the debug surface chronosd serves on a separate
// -debug-addr listener: /debug/pprof/* plus /debug/traces.
func (s *Server) DebugHandler() http.Handler { return obs.DebugMux(s.traces) }

// Traces exposes the retained slow-trace ring (tests, embedders).
func (s *Server) Traces() *obs.TraceRing { return s.traces }

// Tenants returns the live tenant registry (nil when none is configured).
func (s *Server) Tenants() *tenant.Registry { return s.tenants.Load() }

// SetTenants swaps in a new tenant registry — chronosd calls this on SIGHUP
// after reloading the config file — and flushes the plan cache, so no plan
// computed under the previous tenant defaults outlives the config change.
// Carrying live ledger levels across the swap is the caller's choice via
// tenant.Registry.Rebase.
func (s *Server) SetTenants(reg *tenant.Registry) {
	old := s.tenants.Load()
	s.tenants.Store(reg)
	if s.escrow != nil {
		// Rebased pools must not double-count budget already escrowed into
		// outstanding leases: the ledger re-debits their escrow from any pool
		// that did not carry its ledger across the swap.
		s.escrow.led.Rebase(old, reg)
	}
	s.FlushCache()
}

// Close stops the heartbeat monitor and replication fan-out, releases this
// replica's escrow leases back to their owners, compacts the ledger into a
// final snapshot, and dumps the hot plan cache under the data dir for the
// next boot's warm start. Safe to call more than once; a server without
// those subsystems closes as a no-op.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.healthStop != nil {
			close(s.healthStop)
			<-s.healthDone
		}
		if s.replicStop != nil {
			close(s.replicStop)
			<-s.replicDone
		}
		if s.escrow != nil {
			s.escrow.shutdown()
		}
		s.saveCache()
	})
}

// FlushCache empties the plan cache.
func (s *Server) FlushCache() { s.cache.flush() }

// route registers pattern with the instrumentation middleware: request body
// capping, latency measurement, per-endpoint/status counting under the
// stable label name, and request-scoped tracing — every request gets a
// trace ID (honored from the inbound X-Chronosd-Trace-Id or minted here),
// stamped on the response, carried in the request context for the handlers'
// stage spans, and finished into the slow-trace ring, the per-stage
// histograms, and the sampled structured request log.
func (s *Server) route(pattern, label string, h http.HandlerFunc) {
	em := s.metrics.endpoint(label)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		start := time.Now()
		tr := obs.NewTrace(r.Header.Get(obs.TraceHeader), label)
		w.Header().Set(obs.TraceHeader, tr.ID)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r.WithContext(obs.NewContext(r.Context(), tr)))
		elapsed := time.Since(start)
		em.observe(rec.code, elapsed.Seconds())
		// ServedByHeader is stamped by the sharded path (self or, after a
		// successful proxy, the owning replica); reading it back here keeps
		// the snapshot consistent with what the client saw.
		snap := tr.Finish(rec.code, elapsed,
			rec.Header().Get(ServedByHeader),
			r.Header.Get(ForwardedFromHeader) != "")
		s.metrics.observeStages(snap)
		s.traces.Add(snap)
		s.reqLog.Request(snap)
	})
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's Flush
// and SetWriteDeadline, which the /v1/replay NDJSON stream depends on.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Handler returns the routed handler (also used by tests and embedders).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled, then
// drains gracefully within cfg.ShutdownGrace.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve serves on ln until ctx is cancelled (the listener is closed by the
// underlying http.Server on shutdown). Useful with a port-0 listener in
// tests and examples.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
		IdleTimeout:  s.cfg.IdleTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		// Surface the Serve return (http.ErrServerClosed on clean exit).
		if err := <-errCh; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}

// CacheStats exposes hit/miss/size counters for logging and tests.
func (s *Server) CacheStats() (hits, misses uint64, entries int) {
	hits, misses = s.cache.stats()
	return hits, misses, s.cache.len()
}
