#!/usr/bin/env bash
# bench-json.sh — runs the serving benchmarks and wraps `go test -bench`
# output into stable JSON, so the repo carries a visible perf trajectory
# (BENCH_<pr>.json per PR) instead of burying numbers in CI artifacts. The
# raw `go test -bench` output is kept alongside as <out>.txt — benchstat
# food, and the ground truth the JSON summarizes.
#
# Usage:
#   scripts/bench-json.sh [out.json]          write the benchmark JSON (+ .txt)
#   scripts/bench-json.sh --check BASELINE    rerun the cached-plan and admit
#                                             benchmarks and fail if ns/op
#                                             regressed more than
#                                             BENCH_TOLERANCE_PCT (10%) or
#                                             allocs/op grew at all versus the
#                                             committed baseline
#
# The tracked numbers: cached /v1/plan (the hot path), cold /v1/plan (full
# three-strategy solve), /v1/admit (plan + ledger debit), /v1/admit/batch
# (16 admits, one debit), escrowed /v1/admit with and without WAL durability
# (the price of fleet-exact budgets), and replay engine throughput in
# jobs/sec. Every benchmark runs with -benchmem, so each entry also records
# allocs_per_op and bytes_per_op: the zero-allocation hot path is part of
# the trajectory, not just the timings. Each benchmark runs -count times and
# the best (minimum ns/op and allocs, maximum rate) is kept: best-of-N is
# the standard way to cut scheduler noise out of regression gates.
#
# Timing baselines are hardware-bound: compare ns/op only on the same
# machine class, and refresh the committed baseline when CI hardware moves.
# Allocation counts are NOT hardware-bound — allocs/op is deterministic, so
# the allocation gate holds with zero tolerance on any machine.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-3}"
BENCHTIME="${BENCH_TIME:-1s}"
TOLERANCE="${BENCH_TOLERANCE_PCT:-10}"

# run_bench <pkg> <bench-regex> -> raw `go test -bench` output
run_bench() {
  go test -run '^$' -bench "$2" -benchtime "$BENCHTIME" -benchmem -count "$COUNT" "$1"
}

# min_ns <raw> <bench-name> -> minimum ns/op across runs. The name matches
# exactly, modulo go test's optional -GOMAXPROCS suffix, so AdmitHandler
# never swallows AdmitHandlerEscrow's rows.
min_ns() {
  awk -v name="$2" '$1 ~ "^"name"(-[0-9]+)?$" {print $3}' <<<"$1" | sort -n | head -1
}

# min_unit <raw> <bench-name> <unit> -> minimum per-unit value across runs
# (used for B/op and allocs/op, where lower is better and the columns float
# depending on which metrics a benchmark reports)
min_unit() {
  awk -v name="$2" -v unit="$3" '
    $1 ~ "^"name"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == unit) print $i }
  ' <<<"$1" | sort -n | head -1
}

# max_metric <raw> <bench-name> <unit> -> maximum custom metric across runs
max_metric() {
  awk -v name="$2" -v unit="$3" '
    $1 ~ "^"name"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == unit) print $i }
  ' <<<"$1" | sort -rn | head -1
}

# base_field <baseline.json> <entry> <field> -> that entry's field, if present
base_field() {
  sed -n 's/.*"'"$2"'"[^}]*"'"$3"'": *\([0-9.]*\).*/\1/p' "$1" | head -1
}

check_mode=false
if [ "${1:-}" = "--check" ]; then
  check_mode=true
  baseline="${2:?usage: bench-json.sh --check BASELINE.json}"
fi

if $check_mode; then
  echo "== bench regression gate vs $baseline (ns >${TOLERANCE}% or any alloc growth fails) =="
  raw="$(run_bench ./internal/server/ 'BenchmarkPlanHandlerCached$|BenchmarkPlanHandlerCold$|BenchmarkAdmitHandler$')"
  echo "$raw"
  # ns/op gates: cached plan (the hot path) and cold plan (the solver
  # engine). Both compare against the committed baseline with the same
  # percentage tolerance. Baselines that predate a gate skip it.
  for gate in "plan_cached:BenchmarkPlanHandlerCached" "plan_cold:BenchmarkPlanHandlerCold"; do
    entry="${gate%%:*}" bench="${gate##*:}"
    base_ns="$(base_field "$baseline" "$entry" ns_per_op)"
    [ -n "$base_ns" ] || { echo "skip: no $entry.ns_per_op in $baseline"; continue; }
    now_ns="$(min_ns "$raw" "$bench")"
    [ -n "$now_ns" ] || { echo "FAIL: no $bench result"; exit 1; }
    awk -v now="$now_ns" -v base="$base_ns" -v tol="$TOLERANCE" -v entry="$entry" 'BEGIN {
      pct = (now / base - 1) * 100
      printf "%s: %.0f ns/op now vs %.0f ns/op baseline (%+.1f%%)\n", entry, now, base, pct
      if (pct > tol) {
        printf "FAIL: %s regressed %.1f%% (> %s%% tolerance)\n", entry, pct, tol
        exit 1
      }
      printf "OK: %s within the %s%% regression tolerance\n", entry, tol
    }'
  done
  # Allocation gate: allocs/op is deterministic, so any growth over the
  # baseline is a real regression — no tolerance. Baselines written before
  # allocs were tracked simply skip this gate.
  for gate in "plan_cached:BenchmarkPlanHandlerCached" "plan_cold:BenchmarkPlanHandlerCold" "admit:BenchmarkAdmitHandler"; do
    entry="${gate%%:*}" bench="${gate##*:}"
    base_allocs="$(base_field "$baseline" "$entry" allocs_per_op)"
    [ -n "$base_allocs" ] || { echo "skip: no $entry.allocs_per_op in $baseline"; continue; }
    now_allocs="$(min_unit "$raw" "$bench" allocs/op)"
    [ -n "$now_allocs" ] || { echo "FAIL: no allocs/op for $bench (is -benchmem on?)"; exit 1; }
    awk -v now="$now_allocs" -v base="$base_allocs" -v entry="$entry" 'BEGIN {
      printf "%s: %d allocs/op now vs %d baseline\n", entry, now, base
      if (now > base) {
        printf "FAIL: %s allocates %d/op, baseline holds %d/op\n", entry, now, base
        exit 1
      }
    }'
  done
  echo "OK: no allocation regressions"
  # Replay throughput floor: jobs/sec is a rate (higher is better), so the
  # gate is the mirror of the ns/op one — fail when the rate drops more than
  # the tolerance below the committed baseline.
  replay_base="$(base_field "$baseline" replay jobs_per_sec)"
  if [ -n "$replay_base" ]; then
    replay_raw="$(run_bench ./internal/replay/ 'BenchmarkReplayThroughput$')"
    echo "$replay_raw"
    replay_now="$(max_metric "$replay_raw" BenchmarkReplayThroughput jobs/sec)"
    [ -n "$replay_now" ] || { echo "FAIL: no BenchmarkReplayThroughput result"; exit 1; }
    awk -v now="$replay_now" -v base="$replay_base" -v tol="$TOLERANCE" 'BEGIN {
      pct = (now / base - 1) * 100
      printf "replay: %.0f jobs/sec now vs %.0f baseline (%+.1f%%)\n", now, base, pct
      if (-pct > tol) {
        printf "FAIL: replay throughput dropped %.1f%% (> %s%% tolerance)\n", -pct, tol
        exit 1
      }
      printf "OK: replay within the %s%% throughput tolerance\n", tol
    }'
  else
    echo "skip: no replay.jobs_per_sec in $baseline"
  fi
  exit 0
fi

out="${1:-bench.json}"
echo "== serving benchmarks (count=$COUNT, benchtime=$BENCHTIME) =="
server_raw="$(run_bench ./internal/server/ 'BenchmarkPlanHandlerCached$|BenchmarkPlanHandlerCold$|BenchmarkAdmitHandler$|BenchmarkAdmitBatchHandler$|BenchmarkAdmitHandlerEscrow$|BenchmarkAdmitHandlerEscrowWAL$')"
echo "$server_raw"
replay_raw="$(run_bench ./internal/replay/ 'BenchmarkReplayThroughput$')"
echo "$replay_raw"

cached_ns="$(min_ns "$server_raw" BenchmarkPlanHandlerCached)"
cached_rate="$(max_metric "$server_raw" BenchmarkPlanHandlerCached plans/s)"
cold_ns="$(min_ns "$server_raw" BenchmarkPlanHandlerCold)"
cold_rate="$(max_metric "$server_raw" BenchmarkPlanHandlerCold plans/s)"
admit_ns="$(min_ns "$server_raw" BenchmarkAdmitHandler)"
admit_rate="$(max_metric "$server_raw" BenchmarkAdmitHandler admits/s)"
admit_batch_ns="$(min_ns "$server_raw" BenchmarkAdmitBatchHandler)"
admit_batch_rate="$(max_metric "$server_raw" BenchmarkAdmitBatchHandler admits/s)"
escrow_ns="$(min_ns "$server_raw" BenchmarkAdmitHandlerEscrow)"
escrow_rate="$(max_metric "$server_raw" BenchmarkAdmitHandlerEscrow admits/s)"
escrow_wal_ns="$(min_ns "$server_raw" BenchmarkAdmitHandlerEscrowWAL)"
escrow_wal_rate="$(max_metric "$server_raw" BenchmarkAdmitHandlerEscrowWAL admits/s)"
replay_jobs="$(max_metric "$replay_raw" BenchmarkReplayThroughput jobs/sec)"

for v in "$cached_ns" "$cold_ns" "$admit_ns" "$admit_batch_ns" "$escrow_ns" "$escrow_wal_ns" "$replay_jobs"; do
  [ -n "$v" ] || { echo "FAIL: missing benchmark result"; exit 1; }
done

# mem_fields <bench-name> -> the allocs/bytes JSON fragment for one entry
mem_fields() {
  local allocs bytes
  allocs="$(min_unit "$server_raw" "$1" allocs/op)"
  bytes="$(min_unit "$server_raw" "$1" B/op)"
  printf '"allocs_per_op": %s, "bytes_per_op": %s' "${allocs:-0}" "${bytes:-0}"
}

raw_out="${out%.json}.txt"
{ echo "$server_raw"; echo "$replay_raw"; } > "$raw_out"

cpu="$(awk -F': ' '/^cpu:/ {print $2; exit}' <<<"$server_raw")"
cat > "$out" <<EOF
{
  "schema": 2,
  "go": "$(go env GOVERSION)",
  "cpu": "$cpu",
  "count": $COUNT,
  "benchtime": "$BENCHTIME",
  "benchmarks": {
    "plan_cached": {"ns_per_op": $cached_ns, "plans_per_sec": ${cached_rate:-0}, $(mem_fields BenchmarkPlanHandlerCached)},
    "plan_cold": {"ns_per_op": $cold_ns, "plans_per_sec": ${cold_rate:-0}, $(mem_fields BenchmarkPlanHandlerCold)},
    "admit": {"ns_per_op": $admit_ns, "admits_per_sec": ${admit_rate:-0}, $(mem_fields BenchmarkAdmitHandler)},
    "admit_batch": {"ns_per_op": $admit_batch_ns, "admits_per_sec": ${admit_batch_rate:-0}, $(mem_fields BenchmarkAdmitBatchHandler)},
    "admit_escrow": {"ns_per_op": $escrow_ns, "admits_per_sec": ${escrow_rate:-0}, $(mem_fields BenchmarkAdmitHandlerEscrow)},
    "admit_escrow_wal": {"ns_per_op": $escrow_wal_ns, "admits_per_sec": ${escrow_wal_rate:-0}, $(mem_fields BenchmarkAdmitHandlerEscrowWAL)},
    "replay": {"jobs_per_sec": $replay_jobs}
  }
}
EOF
echo "wrote $out and $raw_out"
