package mapreduce

import (
	"math"
	"testing"

	"chronos/internal/cluster"
	"chronos/internal/pareto"
	"chronos/internal/sim"
)

// plainStrategy launches one original attempt per task and does nothing
// else: the Hadoop-NS behaviour, enough to exercise the runtime.
type plainStrategy struct{}

func (plainStrategy) Name() string { return "plain" }

func (plainStrategy) Start(ctl *Controller) {
	for _, t := range ctl.Job().Tasks {
		ctl.Launch(t, 0)
	}
}

func testSpec() JobSpec {
	return JobSpec{
		ID:         1,
		Name:       "test",
		NumTasks:   4,
		Deadline:   100,
		Dist:       pareto.MustNew(10, 1.5),
		SplitBytes: 1 << 27,
		JVM:        JVMModel{Min: 2, Max: 2},
		UnitPrice:  1,
	}
}

func newHarness(t *testing.T, cfg Config) (*sim.Engine, *cluster.Cluster, *Runtime) {
	t.Helper()
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 8, SlotsPerNode: 8})
	if err != nil {
		t.Fatal(err)
	}
	return eng, cl, NewRuntime(eng, cl, cfg)
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*JobSpec)
		ok     bool
	}{
		{"valid", func(s *JobSpec) {}, true},
		{"no tasks", func(s *JobSpec) { s.NumTasks = 0 }, false},
		{"bad dist", func(s *JobSpec) { s.Dist.TMin = 0 }, false},
		{"zero deadline", func(s *JobSpec) { s.Deadline = 0 }, false},
		{"zero split", func(s *JobSpec) { s.SplitBytes = 0 }, false},
		{"negative jvm", func(s *JobSpec) { s.JVM.Min = -1 }, false},
		{"jvm max below min", func(s *JobSpec) { s.JVM = JVMModel{Min: 3, Max: 1} }, false},
		{"negative arrival", func(s *JobSpec) { s.Arrival = -5 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := testSpec()
			tt.mutate(&s)
			if err := s.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, ok=%v", err, tt.ok)
			}
		})
	}
}

func TestSubmitRejectsNilStrategy(t *testing.T) {
	_, _, rt := newHarness(t, Config{})
	if _, err := rt.Submit(testSpec(), nil); err == nil {
		t.Error("Submit with nil strategy succeeded")
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	eng, cl, rt := newHarness(t, Config{Seed: 1})
	job, err := rt.Submit(testSpec(), plainStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !job.Done {
		t.Fatal("job did not complete")
	}
	if job.DoneTasks() != 4 {
		t.Errorf("DoneTasks = %d, want 4", job.DoneTasks())
	}
	// Every attempt finished exactly once; machine time matches the meter.
	var total float64
	for _, task := range job.Tasks {
		if len(task.Attempts) != 1 {
			t.Errorf("task %d has %d attempts, want 1", task.ID, len(task.Attempts))
		}
		a := task.Attempts[0]
		if a.State != AttemptFinished {
			t.Errorf("task %d attempt state %v", task.ID, a.State)
		}
		total += a.EndTime - a.LaunchTime
	}
	if math.Abs(job.MachineTime-total) > 1e-9 {
		t.Errorf("job machine time %v, attempt sum %v", job.MachineTime, total)
	}
	if math.Abs(cl.Meter().MachineTime()-total) > 1e-9 {
		t.Errorf("cluster meter %v, attempt sum %v", cl.Meter().MachineTime(), total)
	}
	// Finish time = max attempt finish; attempt model = jvm + intrinsic.
	for _, task := range job.Tasks {
		a := task.Attempts[0]
		want := a.LaunchTime + a.JVMDelay + a.Intrinsic
		if math.Abs(a.EndTime-want) > 1e-9 {
			t.Errorf("attempt end %v, want launch+jvm+intrinsic = %v", a.EndTime, want)
		}
	}
}

func TestArrivalDelaysStart(t *testing.T) {
	eng, _, rt := newHarness(t, Config{Seed: 1})
	spec := testSpec()
	spec.Arrival = 50
	job, err := rt.Submit(spec, plainStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for _, task := range job.Tasks {
		if task.Attempts[0].LaunchTime < 50 {
			t.Errorf("attempt launched at %v before arrival 50", task.Attempts[0].LaunchTime)
		}
	}
	if job.FinishTime < 50 {
		t.Errorf("job finished at %v before arrival", job.FinishTime)
	}
}

func TestCommonRandomNumbersAcrossRuns(t *testing.T) {
	run := func() []float64 {
		eng, _, rt := newHarness(t, Config{Seed: 42})
		job, _ := rt.Submit(testSpec(), plainStrategy{})
		eng.Run()
		var xs []float64
		for _, task := range job.Tasks {
			xs = append(xs, task.Attempts[0].Intrinsic)
		}
		return xs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("intrinsic samples differ across identical runs: %v vs %v", a, b)
		}
	}
}

func TestProgressModel(t *testing.T) {
	a := &Attempt{
		State:      AttemptRunning,
		LaunchTime: 10,
		JVMDelay:   5,
		StartFrac:  0.25,
		Intrinsic:  100,
		Slowdown:   2,
	}
	// JVMReady = 15; full split time = 200; finish = 15 + 200*0.75 = 165.
	if got := a.JVMReady(); got != 15 {
		t.Errorf("JVMReady = %v, want 15", got)
	}
	if got := a.FinishTime(); got != 165 {
		t.Errorf("FinishTime = %v, want 165", got)
	}
	// Before the JVM is ready the attempt reports only the inherited offset.
	if got := a.Progress(12); got != 0.25 {
		t.Errorf("Progress before JVM ready = %v, want 0.25 (inherited)", got)
	}
	if got := a.Progress(15); got != 0.25 {
		t.Errorf("Progress at JVM ready = %v, want 0.25 (inherited)", got)
	}
	// At t=115: 100s of processing /200 = 0.5 of split, plus 0.25 = 0.75.
	if got := a.Progress(115); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Progress(115) = %v, want 0.75", got)
	}
	if got := a.Progress(1e6); got != 1 {
		t.Errorf("Progress clamps at %v, want 1", got)
	}
	// Own progress excludes the inherited offset: at t=115, own = 2/3.
	if got := a.OwnProgress(115); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("OwnProgress(115) = %v, want 2/3", got)
	}
}

func TestProgressFrozenAfterKill(t *testing.T) {
	a := &Attempt{
		State:      AttemptKilled,
		LaunchTime: 0,
		JVMDelay:   0,
		Intrinsic:  100,
		Slowdown:   1,
		EndTime:    30,
	}
	if got := a.Progress(1000); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("killed attempt progress = %v, want frozen 0.3", got)
	}
}

func TestBytesProcessed(t *testing.T) {
	eng, _, rt := newHarness(t, Config{Seed: 3})
	job, _ := rt.Submit(testSpec(), plainStrategy{})
	eng.RunUntil(5)
	a := job.Tasks[0].Attempts[0]
	wantFrac := a.Progress(5)
	want := int64(wantFrac * float64(job.Spec.SplitBytes))
	if got := a.BytesProcessed(5); got != want {
		t.Errorf("BytesProcessed = %d, want %d", got, want)
	}
}

func TestChronosEstimatorExact(t *testing.T) {
	a := &Attempt{
		State:      AttemptRunning,
		LaunchTime: 0,
		JVMDelay:   8,
		Intrinsic:  50,
		Slowdown:   1.5,
	}
	// True finish = 8 + 75 = 83.
	for _, now := range []float64{10, 30, 60} {
		if got := ChronosEstimator(a, now); math.Abs(got-83) > 1e-9 {
			t.Errorf("ChronosEstimator at %v = %v, want 83", now, got)
		}
	}
	if got := OracleEstimator(a, 10); math.Abs(got-83) > 1e-9 {
		t.Errorf("OracleEstimator = %v, want 83", got)
	}
}

func TestChronosEstimatorExactForResumed(t *testing.T) {
	a := &Attempt{
		State:      AttemptRunning,
		LaunchTime: 40,
		JVMDelay:   5,
		StartFrac:  0.6,
		Intrinsic:  100,
		Slowdown:   1,
	}
	// Finish = 45 + 100*0.4 = 85.
	for _, now := range []float64{50, 70, 80} {
		if got := ChronosEstimator(a, now); math.Abs(got-85) > 1e-9 {
			t.Errorf("ChronosEstimator(resumed) at %v = %v, want 85", now, got)
		}
	}
}

func TestHadoopEstimatorOverestimatesUnderJVMDelay(t *testing.T) {
	a := &Attempt{
		State:      AttemptRunning,
		LaunchTime: 0,
		JVMDelay:   8,
		Intrinsic:  50,
		Slowdown:   1,
	}
	// True finish 58. Hadoop divides by a rate dragged down by the JVM
	// delay, so its estimate must strictly exceed the truth.
	for _, now := range []float64{10, 20, 40} {
		h := HadoopEstimator(a, now)
		if h <= a.FinishTime() {
			t.Errorf("HadoopEstimator at %v = %v, want > true %v", now, h, a.FinishTime())
		}
	}
	// With zero JVM delay Hadoop is exact in the linear model.
	a.JVMDelay = 0
	if got := HadoopEstimator(a, 20); math.Abs(got-50) > 1e-9 {
		t.Errorf("HadoopEstimator without JVM delay = %v, want 50", got)
	}
}

func TestEstimatorsBeforeFirstReport(t *testing.T) {
	a := &Attempt{State: AttemptRunning, LaunchTime: 0, JVMDelay: 10, Intrinsic: 50, Slowdown: 1}
	if got := HadoopEstimator(a, 5); !math.IsInf(got, 1) {
		t.Errorf("HadoopEstimator before first report = %v, want +Inf", got)
	}
	if got := ChronosEstimator(a, 5); !math.IsInf(got, 1) {
		t.Errorf("ChronosEstimator before first report = %v, want +Inf", got)
	}
}

func TestEstimatorsOnFinishedAttempt(t *testing.T) {
	a := &Attempt{State: AttemptFinished, EndTime: 42}
	if got := HadoopEstimator(a, 100); got != 42 {
		t.Errorf("HadoopEstimator(finished) = %v, want 42", got)
	}
	if got := ChronosEstimator(a, 100); got != 42 {
		t.Errorf("ChronosEstimator(finished) = %v, want 42", got)
	}
	if got := OracleEstimator(a, 100); got != 42 {
		t.Errorf("OracleEstimator(finished) = %v, want 42", got)
	}
}

func TestAnticipatedResumeFrac(t *testing.T) {
	a := &Attempt{
		State:      AttemptRunning,
		LaunchTime: 0,
		JVMDelay:   10,
		Intrinsic:  200,
		Slowdown:   1,
	}
	// At now=50: progress = 40/200 = 0.2; rate = 0.2/40 = 0.005/s;
	// extra = 0.005*10 = 0.05; anticipated = 0.25.
	if got := AnticipatedResumeFrac(a, 50); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("AnticipatedResumeFrac = %v, want 0.25", got)
	}
	// Before first report: just the current (zero) progress.
	if got := AnticipatedResumeFrac(a, 5); got != 0 {
		t.Errorf("AnticipatedResumeFrac before report = %v, want 0", got)
	}
}

func TestKillRunningAttempt(t *testing.T) {
	eng, cl, rt := newHarness(t, Config{Seed: 5})
	var job *Job
	j, err := rt.Submit(testSpec(), plainStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	job = j
	ctl := &Controller{rt: rt, job: job}
	eng.Schedule(1, func() {
		a := job.Tasks[0].Attempts[0]
		if !ctl.Kill(a) {
			t.Error("Kill returned false for running attempt")
		}
		if a.State != AttemptKilled {
			t.Errorf("state = %v, want killed", a.State)
		}
		if ctl.Kill(a) {
			t.Error("second Kill returned true")
		}
	})
	eng.Run()
	// The killed task never completes, so the job must not be Done.
	if job.Done {
		t.Error("job completed despite killed-only task")
	}
	if job.DoneTasks() != 3 {
		t.Errorf("DoneTasks = %d, want 3", job.DoneTasks())
	}
	// Machine time still accounted for the killed attempt's 1 second.
	a := job.Tasks[0].Attempts[0]
	if got := a.EndTime - a.LaunchTime; math.Abs(got-1) > 1e-9 {
		t.Errorf("killed attempt ran %v, want 1", got)
	}
	_ = cl
}

func TestKillQueuedAttempt(t *testing.T) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 1, SlotsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(eng, cl, Config{Seed: 6})
	spec := testSpec()
	spec.NumTasks = 2 // second task's attempt must queue behind the first
	job, err := rt.Submit(spec, plainStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	ctl := &Controller{rt: rt, job: job}
	eng.Schedule(0.5, func() {
		queued := job.Tasks[1].Attempts[0]
		if queued.State != AttemptQueued {
			t.Fatalf("expected queued attempt, got %v", queued.State)
		}
		if !ctl.Kill(queued) {
			t.Error("Kill(queued) returned false")
		}
	})
	eng.Run()
	// The killed queued attempt never consumed machine time.
	killed := job.Tasks[1].Attempts[0]
	if killed.State != AttemptKilled {
		t.Errorf("state = %v, want killed", killed.State)
	}
	// The cluster must not leak its slot: the first task's attempt finishes
	// and releases; total releases = 2 (one real, one immediate handback).
	if cl.InUse() != 0 {
		t.Errorf("cluster InUse = %d after run, want 0", cl.InUse())
	}
}

func TestKillSiblingsOnFinish(t *testing.T) {
	eng, _, rt := newHarness(t, Config{Seed: 7, KillSiblingsOnFinish: true})
	spec := testSpec()
	spec.NumTasks = 1
	job, err := rt.Submit(spec, cloneTestStrategy{extra: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !job.Done {
		t.Fatal("job did not finish")
	}
	finished, killed := 0, 0
	for _, a := range job.Tasks[0].Attempts {
		switch a.State {
		case AttemptFinished:
			finished++
		case AttemptKilled:
			killed++
			if a.EndTime != job.Tasks[0].FinishTime {
				t.Errorf("sibling killed at %v, want task finish %v", a.EndTime, job.Tasks[0].FinishTime)
			}
		}
	}
	if finished != 1 || killed != 3 {
		t.Errorf("finished=%d killed=%d, want 1/3", finished, killed)
	}
}

// cloneTestStrategy launches 1+extra attempts per task at arrival.
type cloneTestStrategy struct{ extra int }

func (cloneTestStrategy) Name() string { return "clone-test" }

func (s cloneTestStrategy) Start(ctl *Controller) {
	for _, t := range ctl.Job().Tasks {
		for k := 0; k <= s.extra; k++ {
			ctl.Launch(t, 0)
		}
	}
}

func TestSiblingsKeepRunningWithoutFlag(t *testing.T) {
	eng, _, rt := newHarness(t, Config{Seed: 7})
	spec := testSpec()
	spec.NumTasks = 1
	job, err := rt.Submit(spec, cloneTestStrategy{extra: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Without the flag every attempt runs to completion.
	for _, a := range job.Tasks[0].Attempts {
		if a.State != AttemptFinished {
			t.Errorf("attempt state %v, want finished", a.State)
		}
	}
}

func TestTaskDoneAndJobDoneHooks(t *testing.T) {
	eng, _, rt := newHarness(t, Config{Seed: 8})
	var tasksDone int
	var jobDone bool
	strat := hookStrategy{
		onStart: func(ctl *Controller) {
			ctl.OnTaskDone(func(*Task) { tasksDone++ })
			ctl.OnJobDone(func() { jobDone = true })
			for _, t := range ctl.Job().Tasks {
				ctl.Launch(t, 0)
			}
		},
	}
	var doneCallback int
	rt.OnJobDone = func(*Job) { doneCallback++ }
	if _, err := rt.Submit(testSpec(), strat); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if tasksDone != 4 {
		t.Errorf("task-done hook ran %d times, want 4", tasksDone)
	}
	if !jobDone {
		t.Error("job-done hook did not run")
	}
	if doneCallback != 1 {
		t.Errorf("runtime OnJobDone ran %d times, want 1", doneCallback)
	}
}

type hookStrategy struct {
	onStart func(ctl *Controller)
}

func (hookStrategy) Name() string          { return "hook" }
func (h hookStrategy) Start(c *Controller) { h.onStart(c) }

func TestNodeFailureInvokesAttemptLost(t *testing.T) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 2, SlotsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(eng, cl, Config{Seed: 9})
	var lost []*Attempt
	strat := hookStrategy{
		onStart: func(ctl *Controller) {
			ctl.OnAttemptLost(func(a *Attempt) {
				lost = append(lost, a)
				// Relaunch from scratch, as Speculative-Restart would.
				ctl.Launch(a.Task, 0)
			})
			for _, t := range ctl.Job().Tasks {
				ctl.Launch(t, 0)
			}
		},
	}
	job, err := rt.Submit(testSpec(), strat)
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(1, func() {
		if _, err := cl.FailNode(0); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if len(lost) == 0 {
		t.Fatal("no attempts lost despite node failure")
	}
	for _, a := range lost {
		if a.State != AttemptFailed {
			t.Errorf("lost attempt state = %v, want failed", a.State)
		}
	}
	if !job.Done {
		t.Error("job did not recover from node failure")
	}
}

func TestBestRunningAndMaxProgress(t *testing.T) {
	eng, _, rt := newHarness(t, Config{Seed: 10})
	spec := testSpec()
	spec.NumTasks = 1
	job, err := rt.Submit(spec, cloneTestStrategy{extra: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5)
	task := job.Tasks[0]
	best := task.BestRunning(5, OracleEstimator)
	if best == nil {
		t.Fatal("BestRunning returned nil with 3 running attempts")
	}
	for _, a := range task.Running() {
		if a.FinishTime() < best.FinishTime() {
			t.Errorf("BestRunning missed the fastest attempt")
		}
	}
	mp := task.MaxProgress(5)
	if mp <= 0 || mp > 1 {
		t.Errorf("MaxProgress = %v", mp)
	}
	eng.Run()
	if got := task.MaxProgress(1e9); got != 1 {
		t.Errorf("MaxProgress of done task = %v, want 1", got)
	}
}

func TestLaunchBadFracPanics(t *testing.T) {
	eng, _, rt := newHarness(t, Config{})
	job, err := rt.Submit(testSpec(), plainStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1)
	ctl := &Controller{rt: rt, job: job}
	defer func() {
		if recover() == nil {
			t.Fatal("Launch(frac=1) did not panic")
		}
	}()
	ctl.Launch(job.Tasks[0], 1.0)
}

func TestAtJobTimeClampsPast(t *testing.T) {
	eng, _, rt := newHarness(t, Config{})
	job, err := rt.Submit(testSpec(), plainStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10)
	ctl := &Controller{rt: rt, job: job}
	fired := -1.0
	ctl.AtJobTime(5, func() { fired = eng.Now() }) // 5 is in the past
	eng.Run()
	if fired != 10 {
		t.Errorf("past AtJobTime fired at %v, want now (10)", fired)
	}
}

func TestJVMModelSample(t *testing.T) {
	rng := pareto.NewStream(1)
	constant := JVMModel{Min: 3, Max: 3}
	if got := constant.Sample(rng); got != 3 {
		t.Errorf("constant JVM sample = %v, want 3", got)
	}
	ranged := JVMModel{Min: 2, Max: 4}
	for i := 0; i < 1000; i++ {
		if got := ranged.Sample(rng); got < 2 || got >= 4 {
			t.Fatalf("ranged JVM sample = %v outside [2, 4)", got)
		}
	}
}

func TestAttemptStateString(t *testing.T) {
	states := map[AttemptState]string{
		AttemptQueued:   "queued",
		AttemptRunning:  "running",
		AttemptFinished: "finished",
		AttemptKilled:   "killed",
		AttemptFailed:   "failed",
		AttemptState(0): "unknown",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("state %d String() = %q, want %q", s, got, want)
		}
	}
}
