package workload

import (
	"math"
	"testing"
)

func TestProfilesAreValid(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Dist.Validate(); err != nil {
			t.Errorf("%s: invalid dist: %v", p.Name, err)
		}
		if p.Dist.Beta >= 2 {
			t.Errorf("%s: beta %v >= 2, paper measures beta < 2", p.Name, p.Dist.Beta)
		}
		if p.Deadline <= p.Dist.TMin {
			t.Errorf("%s: deadline %v <= tmin %v", p.Name, p.Deadline, p.Dist.TMin)
		}
		spec := p.JobSpec(1, 10, 1, 0)
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: JobSpec invalid: %v", p.Name, err)
		}
	}
}

func TestPaperDeadlines(t *testing.T) {
	// Figure 2: D=100 for Sort and TeraSort, D=150 for SecondarySort and
	// WordCount.
	if Sort.Deadline != 100 || TeraSort.Deadline != 100 {
		t.Error("Sort/TeraSort deadline must be 100")
	}
	if SecondarySort.Deadline != 150 || WordCount.Deadline != 150 {
		t.Error("SecondarySort/WordCount deadline must be 150")
	}
}

func TestClassAssignment(t *testing.T) {
	if Sort.Class != IOBound || SecondarySort.Class != IOBound {
		t.Error("Sort/SecondarySort must be I/O bound")
	}
	if TeraSort.Class != CPUBound || WordCount.Class != CPUBound {
		t.Error("TeraSort/WordCount must be CPU bound")
	}
	if IOBound.String() != "io-bound" || CPUBound.String() != "cpu-bound" || Class(0).String() != "unknown" {
		t.Error("Class.String misbehaves")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("TeraSort")
	if err != nil || p.Name != "TeraSort" {
		t.Errorf("ByName(TeraSort) = %v, %v", p, err)
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestDeadlineTightness(t *testing.T) {
	for _, p := range Profiles() {
		tight := p.DeadlineTightness()
		// Deadlines should be meaningful: roughly 0.8x to 3x the mean task
		// time, i.e. deadline-critical but not impossible.
		if tight < 0.7 || tight > 3 {
			t.Errorf("%s: deadline tightness %v outside the deadline-critical regime", p.Name, tight)
		}
	}
}

func TestJobSpecFields(t *testing.T) {
	spec := WordCount.JobSpec(7, 10, 0.5, 33)
	if spec.ID != 7 || spec.NumTasks != 10 || spec.UnitPrice != 0.5 || spec.Arrival != 33 {
		t.Errorf("JobSpec fields wrong: %+v", spec)
	}
	if spec.Name != "WordCount" || spec.Deadline != 150 {
		t.Errorf("JobSpec profile fields wrong: %+v", spec)
	}
}

func TestUniformGenerator(t *testing.T) {
	ds, err := UniformGenerator{}.Generate(1<<30+17, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Splits) != 10 {
		t.Fatalf("got %d splits, want 10", len(ds.Splits))
	}
	// All but the last split equal.
	for _, s := range ds.Splits[:9] {
		if s.Bytes != ds.Splits[0].Bytes {
			t.Errorf("uniform split %d has %d bytes", s.Index, s.Bytes)
		}
	}
	if ds.Name != "RandomWriter" {
		t.Errorf("default generator name = %q", ds.Name)
	}
	if got := (UniformGenerator{Label: "TeraGen"}).Name(); got != "TeraGen" {
		t.Errorf("labelled generator name = %q", got)
	}
}

func TestSkewedGenerator(t *testing.T) {
	ds, err := SkewedGenerator{Skew: 1.2}.Generate(1<<30, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Skewed: max split much larger than min split.
	minB, maxB := ds.Splits[0].Bytes, ds.Splits[0].Bytes
	for _, s := range ds.Splits {
		if s.Bytes < minB {
			minB = s.Bytes
		}
		if s.Bytes > maxB {
			maxB = s.Bytes
		}
	}
	if float64(maxB) < 3*float64(minB) {
		t.Errorf("skewed generator produced max/min = %d/%d, want pronounced skew", maxB, minB)
	}
	// Deterministic in the seed.
	ds2, _ := SkewedGenerator{Skew: 1.2}.Generate(1<<30, 50, 2)
	for i := range ds.Splits {
		if ds.Splits[i] != ds2.Splits[i] {
			t.Fatal("skewed generator not deterministic")
		}
	}
}

func TestGeneratorArgValidation(t *testing.T) {
	if _, err := (UniformGenerator{}).Generate(0, 5, 1); err == nil {
		t.Error("accepted zero bytes")
	}
	if _, err := (UniformGenerator{}).Generate(100, 0, 1); err == nil {
		t.Error("accepted zero splits")
	}
	if _, err := (SkewedGenerator{}).Generate(5, 10, 1); err == nil {
		t.Error("accepted more splits than bytes")
	}
}

func TestDatasetValidateCatchesCorruption(t *testing.T) {
	ds, _ := UniformGenerator{}.Generate(1000, 4, 1)
	ds.Splits[2].Offset += 5
	if err := ds.Validate(); err == nil {
		t.Error("Validate missed offset corruption")
	}
}

func TestDeadlinePolicies(t *testing.T) {
	d := Sort.Dist
	if got := (FixedDeadline{D: 42}).Deadline(d, 10); got != 42 {
		t.Errorf("FixedDeadline = %v", got)
	}
	if got := (MeanRatioDeadline{Ratio: 2}).Deadline(d, 10); math.Abs(got-2*d.Mean()) > 1e-9 {
		t.Errorf("MeanRatioDeadline = %v, want %v", got, 2*d.Mean())
	}
	q := (QuantileDeadline{Q: 0.9}).Deadline(d, 10)
	if math.Abs(d.CDF(q)-0.9) > 1e-9 {
		t.Errorf("QuantileDeadline CDF = %v, want 0.9", d.CDF(q))
	}
}
