package speculate

import (
	"math"
	"testing"

	"chronos/internal/analysis"
	"chronos/internal/cluster"
	"chronos/internal/mapreduce"
	"chronos/internal/optimize"
	"chronos/internal/pareto"
	"chronos/internal/sim"
)

// batchResult aggregates a batch run for one strategy.
type batchResult struct {
	pocd        float64
	meanMachine float64
	jobs        []*mapreduce.Job
}

// runBatch executes jobs identical up to their random streams under one
// strategy on an uncontended, amply provisioned cluster.
func runBatch(t *testing.T, strat mapreduce.Strategy, numJobs int, spec mapreduce.JobSpec, seed uint64) batchResult {
	t.Helper()
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 64, SlotsPerNode: 16})
	if err != nil {
		t.Fatal(err)
	}
	rt := mapreduce.NewRuntime(eng, cl, mapreduce.Config{Seed: seed})
	var jobs []*mapreduce.Job
	for i := 0; i < numJobs; i++ {
		s := spec
		s.ID = i
		// Sequential batches: jobs spaced far apart so capacity is ample.
		s.Arrival = float64(i) * (spec.Deadline * 10)
		job, err := rt.Submit(s, strat)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	eng.Run()

	met := 0
	var machine float64
	for _, j := range jobs {
		if !j.Done {
			t.Fatalf("%s: job %d did not complete", strat.Name(), j.Spec.ID)
		}
		if j.MetDeadline() {
			met++
		}
		machine += j.MachineTime
	}
	return batchResult{
		pocd:        float64(met) / float64(numJobs),
		meanMachine: machine / float64(numJobs),
		jobs:        jobs,
	}
}

func baseSpec() mapreduce.JobSpec {
	return mapreduce.JobSpec{
		Name:       "unit",
		NumTasks:   10,
		Deadline:   100,
		Dist:       pareto.MustNew(10, 1.5),
		SplitBytes: 1 << 27,
		UnitPrice:  1,
	}
}

func chronosCfg() ChronosConfig {
	return ChronosConfig{
		TauEst:  30,
		TauKill: 60,
		Opt:     optimize.Config{Theta: 1e-4, UnitPrice: 1},
		FixedR:  -1,
	}
}

const batchJobs = 400

func TestStrategyNames(t *testing.T) {
	tests := []struct {
		s    mapreduce.Strategy
		want string
	}{
		{HadoopNS{}, "Hadoop-NS"},
		{HadoopS{}, "Hadoop-S"},
		{Mantri{}, "Mantri"},
		{LATE{}, "LATE"},
		{Clone{}, "Clone"},
		{Restart{}, "Speculative-Restart"},
		{Resume{}, "Speculative-Resume"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestHadoopNSMatchesClosedForm(t *testing.T) {
	spec := baseSpec()
	res := runBatch(t, HadoopNS{}, batchJobs, spec, 101)
	want := analysis.HadoopNSPoCD(analysis.Params{
		N: spec.NumTasks, Deadline: spec.Deadline, Task: spec.Dist,
	})
	if math.Abs(res.pocd-want) > 0.05 {
		t.Errorf("Hadoop-NS simulated PoCD %v vs closed form %v", res.pocd, want)
	}
	// One attempt per task, always.
	for _, j := range res.jobs {
		for _, task := range j.Tasks {
			if len(task.Attempts) != 1 {
				t.Fatalf("Hadoop-NS launched %d attempts", len(task.Attempts))
			}
		}
	}
}

func TestCloneMatchesClosedForm(t *testing.T) {
	spec := baseSpec()
	cfg := chronosCfg()
	cfg.FixedR = 2
	res := runBatch(t, Clone{Config: cfg}, batchJobs, spec, 7)

	model := analysis.Clone{P: analysis.Params{
		N: spec.NumTasks, Deadline: spec.Deadline, Task: spec.Dist,
		TauEst: cfg.TauEst, TauKill: cfg.TauKill,
	}}
	if want := model.PoCD(2); math.Abs(res.pocd-want) > 0.05 {
		t.Errorf("Clone simulated PoCD %v vs Theorem 1 %v", res.pocd, want)
	}
	// Machine time: Theorem 2 charges every loser exactly tauKill, an upper
	// bound; the simulator releases attempts that finish early, so the
	// DES-consistent expectation per task is (r+1)*E[min(T, tauKill)] plus
	// the survivor's overshoot past tauKill. Check the simulated mean sits
	// between that floor and the Theorem 2 ceiling.
	upper := model.MachineTime(2)
	d := spec.Dist
	eMinTK := d.MeanBelow(cfg.TauKill)*d.CDF(cfg.TauKill) + cfg.TauKill*d.Survival(cfg.TauKill)
	lower := float64(spec.NumTasks) * 3 * eMinTK // r+1 = 3 attempts
	if res.meanMachine > upper*1.02 {
		t.Errorf("Clone simulated machine time %v above Theorem 2 ceiling %v", res.meanMachine, upper)
	}
	if res.meanMachine < lower*0.95 {
		t.Errorf("Clone simulated machine time %v below DES floor %v", res.meanMachine, lower)
	}
}

func TestCloneLaunchesRPlusOne(t *testing.T) {
	cfg := chronosCfg()
	cfg.FixedR = 3
	res := runBatch(t, Clone{Config: cfg}, 5, baseSpec(), 3)
	for _, j := range res.jobs {
		if j.ChosenR != 3 {
			t.Errorf("ChosenR = %d, want 3", j.ChosenR)
		}
		for _, task := range j.Tasks {
			if len(task.Attempts) != 4 {
				t.Errorf("task has %d attempts, want 4", len(task.Attempts))
			}
		}
	}
}

func TestCloneOptimizerPicksR(t *testing.T) {
	res := runBatch(t, Clone{Config: chronosCfg()}, 3, baseSpec(), 4)
	want, err := optimize.Solve(
		analysis.Clone{P: analysis.Params{
			N: 10, Deadline: 100, Task: baseSpec().Dist, TauEst: 30, TauKill: 60,
		}},
		optimize.Config{Theta: 1e-4, UnitPrice: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.jobs {
		if j.ChosenR != want.R {
			t.Errorf("ChosenR = %d, optimizer says %d", j.ChosenR, want.R)
		}
	}
}

func TestRestartSpeculatesOnlyOnStragglers(t *testing.T) {
	cfg := chronosCfg()
	cfg.FixedR = 2
	res := runBatch(t, Restart{Config: cfg}, batchJobs, baseSpec(), 11)
	deadline := baseSpec().Deadline
	for _, j := range res.jobs {
		for _, task := range j.Tasks {
			orig := task.Attempts[0]
			isStrag := orig.JVMDelay+orig.Intrinsic > deadline
			if task.FinishTime-j.Spec.Arrival <= cfg.TauEst && len(task.Attempts) > 1 {
				t.Errorf("task finished before tauEst but has %d attempts", len(task.Attempts))
			}
			if isStrag && !task.Done {
				continue
			}
			if !isStrag && len(task.Attempts) != 1 {
				// The Chronos estimator is exact in this substrate, so
				// non-stragglers must never receive extra attempts.
				t.Errorf("non-straggler task got %d attempts (orig time %v)",
					len(task.Attempts), orig.Intrinsic)
			}
			if isStrag && len(task.Attempts) != 3 {
				t.Errorf("straggler got %d attempts, want 3 (r=2 extras)", len(task.Attempts))
			}
		}
	}
	// PoCD against Theorem 3.
	model := analysis.Restart{P: analysis.Params{
		N: 10, Deadline: 100, Task: baseSpec().Dist, TauEst: 30, TauKill: 60,
	}}
	if want := model.PoCD(2); math.Abs(res.pocd-want) > 0.05 {
		t.Errorf("Restart simulated PoCD %v vs Theorem 3 %v", res.pocd, want)
	}
}

func TestResumeKillsOriginalAndResumesOffset(t *testing.T) {
	cfg := chronosCfg()
	cfg.FixedR = 2
	res := runBatch(t, Resume{Config: cfg}, batchJobs, baseSpec(), 13)
	for _, j := range res.jobs {
		for _, task := range j.Tasks {
			if len(task.Attempts) == 1 {
				continue // not a straggler
			}
			orig := task.Attempts[0]
			if orig.State != mapreduce.AttemptKilled {
				t.Errorf("straggler original state %v, want killed", orig.State)
			}
			if len(task.Attempts) != 4 {
				t.Errorf("straggler has %d attempts, want 1 original + 3 resumed", len(task.Attempts))
			}
			for _, a := range task.Attempts[1:] {
				if a.StartFrac <= 0 {
					t.Errorf("resumed attempt StartFrac = %v, want > 0", a.StartFrac)
				}
				// Work preservation: resumed attempts skip at least the
				// bytes the original had processed at detection.
				if a.StartFrac < orig.Progress(orig.EndTime)-1e-9 {
					t.Errorf("resumed attempt starts at %v before original's offset %v",
						a.StartFrac, orig.Progress(orig.EndTime))
				}
			}
		}
	}
}

func TestResumePoCDBeatsRestart(t *testing.T) {
	cfg := chronosCfg()
	cfg.FixedR = 1
	restart := runBatch(t, Restart{Config: cfg}, batchJobs, baseSpec(), 17)
	resume := runBatch(t, Resume{Config: cfg}, batchJobs, baseSpec(), 17)
	// Theorem 7(2): Resume dominates Restart at equal r. With common random
	// numbers the ordering holds tightly; allow MC slack.
	if resume.pocd < restart.pocd-0.02 {
		t.Errorf("Resume PoCD %v < Restart PoCD %v", resume.pocd, restart.pocd)
	}
	if resume.meanMachine > restart.meanMachine*1.05 {
		t.Errorf("Resume machine time %v exceeds Restart %v", resume.meanMachine, restart.meanMachine)
	}
}

func TestChronosStrategiesBeatHadoopNS(t *testing.T) {
	spec := baseSpec()
	cfg := chronosCfg()
	ns := runBatch(t, HadoopNS{}, batchJobs, spec, 19)
	for _, strat := range []mapreduce.Strategy{
		Clone{Config: cfg}, Restart{Config: cfg}, Resume{Config: cfg},
	} {
		res := runBatch(t, strat, batchJobs, spec, 19)
		if res.pocd < ns.pocd {
			t.Errorf("%s PoCD %v below Hadoop-NS %v", strat.Name(), res.pocd, ns.pocd)
		}
	}
}

func TestAfterTauKillOneAttemptPerTask(t *testing.T) {
	cfg := chronosCfg()
	cfg.FixedR = 3
	spec := baseSpec()
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 64, SlotsPerNode: 16})
	if err != nil {
		t.Fatal(err)
	}
	rt := mapreduce.NewRuntime(eng, cl, mapreduce.Config{Seed: 23})
	job, err := rt.Submit(spec, Clone{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(cfg.TauKill + 0.001)
	for _, task := range job.Tasks {
		if n := len(task.Running()); n > 1 {
			t.Errorf("task %d has %d running attempts after tauKill", task.ID, n)
		}
	}
	eng.Run()
	if !job.Done {
		t.Error("job did not complete")
	}
}

func TestHadoopSSpeculatesAfterFirstFinish(t *testing.T) {
	spec := baseSpec()
	res := runBatch(t, HadoopS{CheckInterval: 5}, batchJobs, spec, 29)
	for _, j := range res.jobs {
		var firstDone float64 = math.Inf(1)
		for _, task := range j.Tasks {
			if task.FinishTime < firstDone {
				firstDone = task.FinishTime
			}
		}
		for _, task := range j.Tasks {
			for _, a := range task.Attempts[1:] {
				if a.RequestTime < firstDone {
					t.Errorf("speculative attempt launched at %v before first task finish %v",
						a.RequestTime, firstDone)
				}
			}
			if len(task.Attempts) > 2 {
				t.Errorf("Hadoop-S launched %d attempts for one task, cap is 2", len(task.Attempts))
			}
		}
	}
	// Speculation must help over no speculation.
	ns := runBatch(t, HadoopNS{}, batchJobs, spec, 29)
	if res.pocd < ns.pocd-0.02 {
		t.Errorf("Hadoop-S PoCD %v below Hadoop-NS %v", res.pocd, ns.pocd)
	}
}

func TestMantriRespectsCaps(t *testing.T) {
	res := runBatch(t, Mantri{CheckInterval: 5, RemainingMargin: 30, MaxExtra: 3},
		batchJobs/2, baseSpec(), 31)
	for _, j := range res.jobs {
		for _, task := range j.Tasks {
			if extras := len(task.Attempts) - 1; extras > 3 {
				t.Errorf("Mantri launched %d extras, cap 3", extras)
			}
		}
	}
}

func TestMantriKeepsBestAfterPrune(t *testing.T) {
	// Mantri's PoCD must at least match Hadoop-NS (it only adds attempts).
	ns := runBatch(t, HadoopNS{}, batchJobs, baseSpec(), 37)
	mantri := runBatch(t, Mantri{}, batchJobs, baseSpec(), 37)
	if mantri.pocd < ns.pocd-0.02 {
		t.Errorf("Mantri PoCD %v below Hadoop-NS %v", mantri.pocd, ns.pocd)
	}
}

func TestLATECapAndThreshold(t *testing.T) {
	spec := baseSpec()
	spec.NumTasks = 20
	res := runBatch(t, LATE{CheckInterval: 5, SpeculativeCap: 2}, 50, spec, 41)
	for _, j := range res.jobs {
		for _, task := range j.Tasks {
			if len(task.Attempts) > 2 {
				t.Errorf("LATE launched %d attempts per task, want <= 2", len(task.Attempts))
			}
		}
	}
}

func TestChooseRFallsBackOnInfeasible(t *testing.T) {
	cfg := chronosCfg()
	cfg.Opt.RMin = 0.99999999 // infeasible: forces optimizer error
	spec := baseSpec()
	spec.Deadline = 10.5
	cfg.TauEst = 0.2
	cfg.TauKill = 0.4
	if r := cfg.chooseR(analysis.StrategyClone, spec); r != 1 {
		t.Errorf("chooseR fallback = %d, want 1", r)
	}
}

func TestFixedROverridesOptimizer(t *testing.T) {
	cfg := chronosCfg()
	cfg.FixedR = 7
	if r := cfg.chooseR(analysis.StrategyResume, baseSpec()); r != 7 {
		t.Errorf("chooseR with FixedR = %d, want 7", r)
	}
}

func TestStrategiesSurviveNodeFailure(t *testing.T) {
	for _, strat := range []mapreduce.Strategy{
		HadoopNS{}, HadoopS{}, Mantri{}, LATE{},
		Clone{Config: chronosCfg()}, Restart{Config: chronosCfg()}, Resume{Config: chronosCfg()},
	} {
		eng := sim.NewEngine()
		cl, err := cluster.New(eng, cluster.Config{Nodes: 4, SlotsPerNode: 16})
		if err != nil {
			t.Fatal(err)
		}
		rt := mapreduce.NewRuntime(eng, cl, mapreduce.Config{Seed: 43})
		job, err := rt.Submit(baseSpec(), strat)
		if err != nil {
			t.Fatal(err)
		}
		eng.Schedule(2, func() {
			if _, err := cl.FailNode(0); err != nil {
				t.Error(err)
			}
		})
		eng.Run()
		if !job.Done {
			t.Errorf("%s: job did not recover from node failure", strat.Name())
		}
	}
}
