package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"chronos/internal/obs"
)

// TestTraceIDStampedOnEveryResponse pins the edge contract: every response —
// success, client error, even a liveness probe — carries X-Chronosd-Trace-Id,
// honoring a usable inbound ID and minting otherwise.
func TestTraceIDStampedOnEveryResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/plan", planRequest{Job: testJob(), Econ: testEcon()})
	minted := resp.Header.Get(obs.TraceHeader)
	if !obs.ValidID(minted) {
		t.Errorf("plan response trace ID %q is not a valid minted ID", minted)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, "caller-chosen.id-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if got := resp2.Header.Get(obs.TraceHeader); got != "caller-chosen.id-42" {
		t.Errorf("healthz trace ID = %q, want the honored inbound ID", got)
	}

	req3, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	req3.Header.Set(obs.TraceHeader, "bad id with spaces")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp3.StatusCode)
	}
	got := resp3.Header.Get(obs.TraceHeader)
	if !obs.ValidID(got) || got == "bad id with spaces" {
		t.Errorf("unusable inbound ID produced %q, want a minted replacement", got)
	}
}

// TestPlanTraceRecordsStages drives one cold and one cached plan and checks
// the retained snapshots: the cold request spent time in quantize+cache+solve,
// the cached one in quantize+cache only, and both carry the cached flag.
func TestPlanTraceRecordsStages(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := planRequest{Job: testJob(), Econ: testEcon()}

	ids := make([]string, 2)
	for i := range ids {
		resp := postJSON(t, ts.URL+"/v1/plan", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, resp.StatusCode)
		}
		ids[i] = resp.Header.Get(obs.TraceHeader)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	cold := s.Traces().Find(ids[0])
	if cold == nil {
		t.Fatalf("no snapshot for cold trace %q", ids[0])
	}
	if cold.Route != "/v1/plan" {
		t.Errorf("cold route = %q", cold.Route)
	}
	for _, st := range []obs.Stage{obs.StageQuantize, obs.StageCache, obs.StageSolve} {
		if cold.StageCounts[st] == 0 {
			t.Errorf("cold plan did not record stage %s", st)
		}
	}
	if cold.Cached == nil || *cold.Cached {
		t.Errorf("cold snapshot cached = %v, want false", cold.Cached)
	}

	hit := s.Traces().Find(ids[1])
	if hit == nil {
		t.Fatalf("no snapshot for cached trace %q", ids[1])
	}
	if hit.StageCounts[obs.StageSolve] != 0 {
		t.Error("cached plan recorded a solve stage")
	}
	if hit.StageCounts[obs.StageCache] == 0 {
		t.Error("cached plan did not record the cache lookup")
	}
	if hit.Cached == nil || !*hit.Cached {
		t.Errorf("cached snapshot cached = %v, want true", hit.Cached)
	}
	if hit.Seconds <= 0 || hit.StageSeconds(obs.StageCache) <= 0 {
		t.Errorf("cached snapshot has non-positive timings: total %g, cache %g",
			hit.Seconds, hit.StageSeconds(obs.StageCache))
	}
}

// TestFleetTraceSpansForwardHop is the acceptance scenario: one /v1/plan
// request sent with an explicit trace ID through a non-owning replica must
// leave the SAME trace ID in the response header and in BOTH replicas' span
// records — the forwarder's with a forward span, the owner's marked as the
// forwarded hop with the solve work.
func TestFleetTraceSpansForwardHop(t *testing.T) {
	servers, listeners := newRingFleet(t, 3, func(int) Config { return Config{} })
	req := planRequest{Job: testJob(), Econ: testEcon()}
	owner := fleetOwner(t, servers, listeners, req)
	via := (owner + 1) % 3

	const traceID = "fleet-trace-test-1"
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, listeners[via].URL+"/v1/plan", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != traceID {
		t.Errorf("response trace ID = %q, want %q to survive the forward hop", got, traceID)
	}
	if got := resp.Header.Get(ServedByHeader); got != listeners[owner].URL {
		t.Fatalf("served by %q, want owner %q (test needs a real forward)", got, listeners[owner].URL)
	}

	fwd := servers[via].Traces().Find(traceID)
	if fwd == nil {
		t.Fatal("forwarding replica retained no snapshot for the trace")
	}
	if fwd.StageCounts[obs.StageForward] == 0 {
		t.Error("forwarding replica's snapshot has no forward span")
	}
	if fwd.ForwardHop {
		t.Error("forwarding replica marked itself as the forwarded hop")
	}
	if fwd.ServedBy != listeners[owner].URL {
		t.Errorf("forwarder snapshot servedBy = %q, want owner", fwd.ServedBy)
	}
	if fwd.StageSeconds(obs.StageForward) <= 0 {
		t.Error("forward span has no accumulated time")
	}

	own := servers[owner].Traces().Find(traceID)
	if own == nil {
		t.Fatal("owning replica retained no snapshot for the trace")
	}
	if !own.ForwardHop {
		t.Error("owner's snapshot is not marked as a forwarded hop")
	}
	if own.StageCounts[obs.StageSolve] == 0 {
		t.Error("owner's snapshot has no solve span (it computed the plan)")
	}
	if own.StageCounts[obs.StageForward] != 0 {
		t.Error("owner recorded a forward span; the loop guard should prevent a second hop")
	}

	// The third replica never saw the request.
	third := (owner + 2) % 3
	if third == via {
		third = (owner + 1) % 3
	}
	for i, s := range servers {
		if i == via || i == owner {
			continue
		}
		if s.Traces().Find(traceID) != nil {
			t.Errorf("replica %d retained a snapshot for a request it never served", i)
		}
	}
}

// TestConcurrentRequestsKeepTracesIsolated hammers one server with parallel
// plan requests under -race: every response gets a distinct minted trace ID
// and every retained snapshot's stage counts are internally consistent (a
// single-plan request records each fired stage exactly once — interleaved
// recording across requests would inflate them).
func TestConcurrentRequestsKeepTracesIsolated(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceRingSize: 4096})
	const workers = 8
	const perWorker = 25

	var mu sync.Mutex
	seen := make(map[string]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				job := testJob()
				job.Deadline = 100 + float64((w*perWorker+i)%31)
				resp := postJSON(t, ts.URL+"/v1/plan", planRequest{Job: job, Econ: testEcon()})
				id := resp.Header.Get(obs.TraceHeader)
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d", resp.StatusCode)
					return
				}
				mu.Lock()
				if seen[id] {
					t.Errorf("trace ID %q minted twice", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if got := s.Traces().Len(); got != workers*perWorker {
		t.Fatalf("ring retains %d snapshots, want %d", got, workers*perWorker)
	}
	for _, snap := range s.Traces().Slowest(0) {
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			if c := snap.StageCounts[st]; c > 1 {
				t.Errorf("trace %s stage %s fired %d times; spans bled across requests",
					snap.ID, st, c)
			}
		}
		if snap.StageCounts[obs.StageQuantize] != 1 {
			t.Errorf("trace %s missing its quantize span", snap.ID)
		}
	}
}

// TestDebugTracesEndpointOnServingMux exercises GET /debug/traces on the
// serving listener: slowest-first JSON with per-stage breakdowns, and the
// inspection itself must not mint traces into the ring.
func TestDebugTracesEndpointOnServingMux(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/plan", planRequest{Job: testJob(), Econ: testEcon()})
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/debug/traces?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d traces, want 2 (n=2)", len(out))
	}
	if out[0]["seconds"].(float64) < out[1]["seconds"].(float64) {
		t.Error("traces are not sorted slowest first")
	}
	for _, entry := range out {
		if entry["route"] != "/v1/plan" {
			t.Errorf("route = %v", entry["route"])
		}
		stages, ok := entry["stages"].(map[string]any)
		if !ok || len(stages) == 0 {
			t.Errorf("trace %v has no stage breakdown", entry["traceId"])
		}
	}

	// Inspecting traces must not insert new ones: the ring still holds
	// exactly the three plan requests.
	if got := s.Traces().Len(); got != 3 {
		t.Errorf("ring retains %d snapshots after inspection, want 3", got)
	}
}

// TestDebugHandlerServesPprof pins the separate -debug-addr surface: pprof
// index and /debug/traces are reachable on DebugHandler, and the serving mux
// does NOT expose pprof.
func TestDebugHandlerServesPprof(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	resp, err := http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: status %d, body %.80s", resp.StatusCode, body)
	}

	resp2, err := http.Get(dbg.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("debug traces on debug mux: status = %d", resp2.StatusCode)
	}

	resp3, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode == http.StatusOK {
		t.Error("serving listener exposes /debug/pprof/; it must stay on -debug-addr")
	}
}

// TestRequestLogLine injects a buffer-backed slog logger and checks the
// structured request line: trace ID, route, status, cache flag, and the stage
// group all land in one JSON object.
func TestRequestLogLine(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&syncWriter{w: &buf, mu: &mu}, nil))
	_, ts := newTestServer(t, Config{Logger: logger})

	resp := postJSON(t, ts.URL+"/v1/plan", planRequest{Job: testJob(), Econ: testEcon()})
	traceID := resp.Header.Get(obs.TraceHeader)
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1: %q", len(lines), buf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("request line is not JSON: %v", err)
	}
	if entry["msg"] != "request" {
		t.Errorf("msg = %v", entry["msg"])
	}
	if entry["traceId"] != traceID {
		t.Errorf("traceId = %v, want %q", entry["traceId"], traceID)
	}
	if entry["route"] != "/v1/plan" {
		t.Errorf("route = %v", entry["route"])
	}
	if entry["status"] != float64(http.StatusOK) {
		t.Errorf("status = %v", entry["status"])
	}
	if entry["cached"] != false {
		t.Errorf("cached = %v, want false", entry["cached"])
	}
	stages, ok := entry["stages"].(map[string]any)
	if !ok {
		t.Fatalf("log line has no stages group: %v", entry)
	}
	if _, ok := stages["solve"]; !ok {
		t.Errorf("stages group %v is missing the solve span", stages)
	}
}

// TestMetricsExposeStageHistograms checks the Prometheus surface: after one
// plan request the chronosd_stage_seconds family carries per-stage series
// with counts, and the replay_emit stage stays absent until a replay runs.
func TestMetricsExposeStageHistograms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/plan", planRequest{Job: testJob(), Econ: testEcon()})
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	text := getMetricsText(t, ts.URL)
	for _, stage := range []string{"quantize", "cache", "solve"} {
		line := `chronosd_stage_seconds_count{stage="` + stage + `"}`
		if got := metricValue(text, line); got != "1" {
			t.Errorf("%s = %q, want 1", line, got)
		}
	}
	emitLine := `chronosd_stage_seconds_count{stage="replay_emit"}`
	if got := metricValue(text, emitLine); got != "" && got != "0" {
		t.Errorf("%s = %q before any replay", emitLine, got)
	}
}

// TestReplaySummaryCarriesTraceID streams a small replay and asserts the
// final replay_summary event is stamped with the request's trace ID, so a
// stored stream output can be joined back to the server-side logs.
func TestReplaySummaryCarriesTraceID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := replayRequest{
		Config:    smallSimConfig(),
		Benchmark: &replayBenchSpec{Name: "Sort", Jobs: 3, Tasks: 5},
	}
	resp := postJSON(t, ts.URL+"/v1/replay", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	traceID := resp.Header.Get(obs.TraceHeader)

	var summaryTrace string
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ev map[string]any
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		switch ev["event"] {
		case "replay_summary":
			summaryTrace, _ = ev["traceId"].(string)
		default:
			if id, ok := ev["traceId"]; ok {
				t.Errorf("event %v carries a trace ID %v; only replay_summary should", ev["event"], id)
			}
		}
	}
	if summaryTrace != traceID {
		t.Errorf("replay_summary traceId = %q, want response header's %q", summaryTrace, traceID)
	}
}

// syncWriter serializes writes from the handler goroutines with the test's
// reads.
type syncWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
