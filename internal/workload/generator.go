package workload

import (
	"fmt"

	"chronos/internal/pareto"
)

// Split describes one generated input split: the unit of work a map task
// consumes. Generators reproduce the roles of RandomWriter (Sort), TeraGen
// (TeraSort) and the random-pair generator (SecondarySort) from the paper's
// setup: they decide how many bytes each task must process and how skewed
// the split sizes are.
type Split struct {
	// Index is the split ordinal within the dataset.
	Index int
	// Bytes is the split length.
	Bytes int64
	// Offset is the byte offset of the split in the whole dataset.
	Offset int64
}

// Dataset is a generated input: a list of splits covering TotalBytes.
type Dataset struct {
	// Name labels the generator that produced the data.
	Name string
	// Splits covers the dataset contiguously.
	Splits []Split
	// TotalBytes is the dataset size.
	TotalBytes int64
}

// Generator produces datasets. Implementations are deterministic in the
// seed.
type Generator interface {
	// Name identifies the generator (e.g. "RandomWriter").
	Name() string
	// Generate produces numSplits splits covering totalBytes.
	Generate(totalBytes int64, numSplits int, seed uint64) (Dataset, error)
}

// UniformGenerator cuts the dataset into equal splits — RandomWriter and
// TeraGen both produce uniform blocks.
type UniformGenerator struct {
	// Label is the generator name (defaults to "RandomWriter").
	Label string
}

var _ Generator = UniformGenerator{}

// Name implements Generator.
func (g UniformGenerator) Name() string {
	if g.Label == "" {
		return "RandomWriter"
	}
	return g.Label
}

// Generate implements Generator.
func (g UniformGenerator) Generate(totalBytes int64, numSplits int, seed uint64) (Dataset, error) {
	if err := checkGenArgs(totalBytes, numSplits); err != nil {
		return Dataset{}, err
	}
	per := totalBytes / int64(numSplits)
	ds := Dataset{Name: g.Name(), TotalBytes: totalBytes}
	var off int64
	for i := 0; i < numSplits; i++ {
		sz := per
		if i == numSplits-1 {
			sz = totalBytes - off // remainder goes to the last split
		}
		ds.Splits = append(ds.Splits, Split{Index: i, Bytes: sz, Offset: off})
		off += sz
	}
	return ds, nil
}

// SkewedGenerator produces splits whose sizes follow a bounded Pareto,
// modelling record-level skew (the regime Hadoop-S wastes attempts on,
// per the paper's introduction). Skew > 0 controls heaviness; sizes are
// normalized to sum to totalBytes.
type SkewedGenerator struct {
	// Skew is the Pareto tail index of raw split sizes (smaller = more
	// skewed). Values in (1, 3] are sensible; default 1.5.
	Skew float64
}

var _ Generator = SkewedGenerator{}

// Name implements Generator.
func (SkewedGenerator) Name() string { return "SkewedPairGen" }

// Generate implements Generator.
func (g SkewedGenerator) Generate(totalBytes int64, numSplits int, seed uint64) (Dataset, error) {
	if err := checkGenArgs(totalBytes, numSplits); err != nil {
		return Dataset{}, err
	}
	skew := g.Skew
	if skew <= 0 {
		skew = 1.5
	}
	dist, err := pareto.New(1, skew)
	if err != nil {
		return Dataset{}, fmt.Errorf("workload: %w", err)
	}
	rng := pareto.NewStream(seed)
	raw := make([]float64, numSplits)
	var sum float64
	for i := range raw {
		raw[i] = dist.Sample(rng)
		sum += raw[i]
	}
	ds := Dataset{Name: g.Name(), TotalBytes: totalBytes}
	var off int64
	for i, w := range raw {
		sz := int64(w / sum * float64(totalBytes))
		if sz < 1 {
			sz = 1
		}
		if i == numSplits-1 {
			sz = totalBytes - off
		}
		ds.Splits = append(ds.Splits, Split{Index: i, Bytes: sz, Offset: off})
		off += sz
	}
	return ds, nil
}

func checkGenArgs(totalBytes int64, numSplits int) error {
	if totalBytes <= 0 {
		return fmt.Errorf("workload: totalBytes %d <= 0", totalBytes)
	}
	if numSplits < 1 || int64(numSplits) > totalBytes {
		return fmt.Errorf("workload: numSplits %d out of range for %d bytes", numSplits, totalBytes)
	}
	return nil
}

// Validate checks dataset invariants: contiguous coverage, positive sizes.
func (d Dataset) Validate() error {
	var off int64
	for i, s := range d.Splits {
		if s.Index != i {
			return fmt.Errorf("workload: split %d has index %d", i, s.Index)
		}
		if s.Bytes <= 0 {
			return fmt.Errorf("workload: split %d has %d bytes", i, s.Bytes)
		}
		if s.Offset != off {
			return fmt.Errorf("workload: split %d offset %d, want %d", i, s.Offset, off)
		}
		off += s.Bytes
	}
	if off != d.TotalBytes {
		return fmt.Errorf("workload: splits cover %d bytes, want %d", off, d.TotalBytes)
	}
	return nil
}
